package ruu_test

import (
	"fmt"
	"testing"

	"ruu"
	"ruu/internal/exec"
	"ruu/internal/machine"
	"ruu/internal/progsynth"
)

// propConfigs is the configuration pool the property tests rotate
// through.
var propConfigs = []ruu.Config{
	{Engine: ruu.EngineSimple},
	{Engine: ruu.EngineTomasulo, Entries: 2},
	{Engine: ruu.EngineTagUnit, Entries: 2, TagUnitSize: 10},
	{Engine: ruu.EngineRSPool, Entries: 6, TagUnitSize: 10},
	{Engine: ruu.EngineReorder, Entries: 6},
	{Engine: ruu.EngineReorderBypass, Entries: 6},
	{Engine: ruu.EngineReorderFuture, Entries: 10},
	{Engine: ruu.EngineRSTU, Entries: 4},
	{Engine: ruu.EngineRSTU, Entries: 12, Paths: 2},
	{Engine: ruu.EngineRUU, Entries: 4, Bypass: ruu.BypassFull},
	{Engine: ruu.EngineRUU, Entries: 12, Bypass: ruu.BypassNone},
	{Engine: ruu.EngineRUU, Entries: 9, Bypass: ruu.BypassLimited},
	{Engine: ruu.EngineRUU, Entries: 16, Bypass: ruu.BypassFull, CounterBits: 1},
	{Engine: ruu.EngineRUU, Entries: 7, Bypass: ruu.BypassLimited, CounterBits: 2},
	{Engine: ruu.EngineRUU, Entries: 6, Bypass: ruu.BypassFull,
		Machine: machine.Config{LoadRegs: 1}},
}

func runSynth(t *testing.T, seed int64, opts progsynth.Options, cfg ruu.Config, spec bool) {
	t.Helper()
	prog := progsynth.Generate(seed, opts)
	ref, refRes, err := exec.Reference(prog, progsynth.NewState(seed, opts), 0)
	if err != nil {
		t.Fatalf("seed %d: reference: %v", seed, err)
	}
	if refRes.Trap != nil {
		t.Fatalf("seed %d: generator produced a trapping program: %v", seed, refRes.Trap)
	}
	cfg.Machine.Speculate = spec
	m, err := ruu.NewMachine(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	st := progsynth.NewState(seed, opts)
	res, err := m.Run(prog, st)
	if err != nil {
		t.Fatalf("seed %d cfg %+v: run: %v", seed, cfg, err)
	}
	if res.Trap != nil {
		t.Fatalf("seed %d cfg %+v: unexpected trap %v", seed, cfg, res.Trap)
	}
	if res.Stats.Instructions != refRes.Executed {
		t.Errorf("seed %d cfg %+v: executed %d, reference %d", seed, cfg, res.Stats.Instructions, refRes.Executed)
	}
	if !st.EqualRegs(ref) {
		t.Errorf("seed %d cfg %+v: registers differ: %v", seed, cfg, st.DiffRegs(ref))
	}
	if d := st.Mem.FirstDiff(ref.Mem); d >= 0 {
		t.Errorf("seed %d cfg %+v: memory differs at %d", seed, cfg, d)
	}
}

// TestPropertyRandomPrograms runs randomly synthesized programs through
// every engine configuration: architectural equivalence with the
// functional executor is the property.
func TestPropertyRandomPrograms(t *testing.T) {
	opts := progsynth.Options{Nested: true}
	for seed := int64(1); seed <= 60; seed++ {
		cfg := propConfigs[int(seed)%len(propConfigs)]
		t.Run(fmt.Sprintf("seed=%d/%s", seed, cfg.Engine), func(t *testing.T) {
			runSynth(t, seed, opts, cfg, false)
		})
	}
}

// TestPropertySpeculation does the same with data-dependent forward
// branches and the speculative RUU, exercising misprediction squash.
func TestPropertySpeculation(t *testing.T) {
	opts := progsynth.Options{Nested: true, CondBranches: true}
	sizes := []int{4, 6, 10, 24}
	bypass := []ruu.BypassKind{ruu.BypassFull, ruu.BypassNone, ruu.BypassLimited}
	for seed := int64(100); seed <= 160; seed++ {
		cfg := ruu.Config{
			Engine:  ruu.EngineRUU,
			Entries: sizes[int(seed)%len(sizes)],
			Bypass:  bypass[int(seed)%len(bypass)],
		}
		t.Run(fmt.Sprintf("seed=%d/n=%d/%s", seed, cfg.Entries, cfg.Bypass), func(t *testing.T) {
			runSynth(t, seed, opts, cfg, true)
		})
	}
}

// TestPropertyCondBranchesNonSpec runs the branchy programs through the
// non-speculative engines too (forward branches resolve in decode).
func TestPropertyCondBranchesNonSpec(t *testing.T) {
	opts := progsynth.Options{Nested: true, CondBranches: true}
	for seed := int64(200); seed <= 230; seed++ {
		cfg := propConfigs[int(seed)%len(propConfigs)]
		t.Run(fmt.Sprintf("seed=%d/%s", seed, cfg.Engine), func(t *testing.T) {
			runSynth(t, seed, opts, cfg, false)
		})
	}
}

// TestGeneratorDeterminism: equal seeds must generate equal programs.
func TestGeneratorDeterminism(t *testing.T) {
	a := progsynth.Generate(7, progsynth.Options{Nested: true, CondBranches: true})
	b := progsynth.Generate(7, progsynth.Options{Nested: true, CondBranches: true})
	if len(a.Instructions) != len(b.Instructions) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Instructions), len(b.Instructions))
	}
	for i := range a.Instructions {
		if a.Instructions[i] != b.Instructions[i] {
			t.Fatalf("instruction %d differs: %v vs %v", i, a.Instructions[i], b.Instructions[i])
		}
	}
}
