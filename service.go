package ruu

import (
	"context"
	"fmt"

	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/livermore"
	"ruu/internal/sched"
	"ruu/internal/store"
)

// This file is the simulation-service layer over the experiment
// harness (tables.go): a Runner owns a sched.Pool worker pool plus a
// content-addressed result cache, and re-expresses every table and
// ablation generator as a flat fan-out of independent kernel runs. The
// simulator itself stays single-threaded per run; the Runner only
// schedules whole runs. Results are byte-identical to the serial path
// by construction — sched.Map returns results in submission order, and
// each job is a pure function of its configuration, program, and
// initial state (which is exactly what the cache key covers).
//
// The package-level functions (RunKernels, Sweep, Table1..Table7, the
// ablations) keep their original serial, goroutine-free behaviour by
// delegating to a nil-pool Runner. cmd/tables and cmd/ruuserve build
// parallel Runners explicitly.

// DefaultCacheEntries is the default capacity of a Runner's result
// cache: one entry per (config, kernel) simulation outcome. A full
// table regeneration is ~1.5k runs; 4096 keeps every distinct
// simulation of a tables invocation resident.
const DefaultCacheEntries = 4096

// RunnerConfig parameterises NewRunner.
type RunnerConfig struct {
	// Workers is the worker-pool size (default runtime.GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pool's job queue (default 4x Workers).
	QueueDepth int
	// CacheEntries sizes the content-addressed result cache (default
	// DefaultCacheEntries; negative disables caching).
	CacheEntries int
	// Store, when non-nil, layers a disk-backed persistent result
	// store under the in-memory cache (ignored when caching is
	// disabled): memory misses fall through to disk and completed
	// results are written through, so a restarted Runner serves its
	// previous working set without re-simulating.
	Store *store.Store
}

// Runner executes experiment-harness work on a worker pool with a
// content-addressed result cache. The zero Runner (and a nil *Runner)
// is valid: it runs everything serially on the calling goroutine with
// no cache, exactly like the package-level functions.
type Runner struct {
	pool *sched.Pool
}

// serialRunner backs the package-level harness functions: nil pool, no
// goroutines, no cache.
var serialRunner = &Runner{}

// NewRunner returns a Runner with a started worker pool.
func NewRunner(cfg RunnerConfig) *Runner {
	var cache *sched.Cache
	if cfg.CacheEntries >= 0 {
		n := cfg.CacheEntries
		if n == 0 {
			n = DefaultCacheEntries
		}
		cache = sched.NewCache(n)
		if cfg.Store != nil {
			cache.WithBacking(persistBacking{s: cfg.Store})
		}
	}
	return &Runner{pool: sched.New(sched.Config{
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		Cache:      cache,
	})}
}

// Close drains and stops the worker pool; queued jobs still complete.
// Closing the zero Runner is a no-op.
func (r *Runner) Close() {
	if r != nil && r.pool != nil {
		r.pool.Close()
	}
}

// Pool exposes the underlying scheduler pool (nil for a serial
// Runner) — the server's /metrics endpoint reads its counters.
func (r *Runner) Pool() *sched.Pool {
	if r == nil {
		return nil
	}
	return r.pool
}

// poolFor returns the pool to fan a configuration out on: nil (serial)
// when an observer is attached, because probes are single-stream
// consumers and concurrent runs would interleave their events.
func (r *Runner) poolFor(cfg Config) *sched.Pool {
	if r == nil || cfg.Machine.Probe != nil || cfg.Machine.Trace != nil {
		return nil
	}
	return r.pool
}

// jobKey returns the content address of one simulation: every Config
// field, the encoded program, and the complete initial architectural
// state. NoKey (uncacheable) when an observer is attached — a cache
// hit would silently skip the observer's event stream — or when the
// program does not encode.
func jobKey(cfg Config, u *Unit, st *State) sched.Key {
	if cfg.Machine.Probe != nil || cfg.Machine.Trace != nil {
		return sched.NoKey
	}
	parcels, err := isa.Encode(u.Prog)
	if err != nil {
		return sched.NoKey
	}
	h := sched.NewHasher()
	h.String("engine", string(cfg.Engine))
	h.Int("entries", int64(cfg.Entries))
	h.Int("paths", int64(cfg.Paths))
	h.Int("tagunitsize", int64(cfg.TagUnitSize))
	h.String("bypass", string(cfg.Bypass))
	h.Int("nibits", int64(cfg.CounterBits))
	h.Int("width", int64(cfg.CommitWidth))
	// The machine frame is hashed through its Go representation so a
	// field added to machine.Config can never silently alias two
	// different timings (Probe and Trace are nil here by the guard
	// above, so the rendering is stable).
	h.String("machine", fmt.Sprintf("%#v", cfg.Machine))
	h.Words("prog", len(parcels), func(i int) int64 { return int64(parcels[i]) })
	h.Words("regs", isa.NumRegs, func(i int) int64 { return st.Reg(isa.FromFlat(i)) })
	h.Int("pc", int64(st.PC))
	h.Bool("halted", st.Halted)
	h.Words("mem", st.Mem.Size(), func(i int) int64 { return st.Mem.Peek(int64(i)) })
	return h.Sum()
}

// kernelKey is jobKey for a built-in kernel run; NoKey when the kernel
// fails to build (the job itself will surface that error).
func kernelKey(cfg Config, k *livermore.Kernel) sched.Key {
	u, err := k.Unit()
	if err != nil {
		return sched.NoKey
	}
	st, err := k.NewState()
	if err != nil {
		return sched.NoKey
	}
	return jobKey(cfg, u, st)
}

// kernelSpec is one flattened (configuration, kernel) job of a sweep
// or ablation fan-out.
type kernelSpec struct {
	cfg Config
	k   *livermore.Kernel
	// wrap, when non-empty, prefixes job errors ("entries=8",
	// "RSTU (10)"), matching the serial harness's error text.
	wrap string
}

// runSpecs fans the flattened job list out on the pool (or runs it
// serially for a nil pool), returning per-spec results in spec order.
// Each job carries a display name ("LLL3 entries=16") so a traced
// sweep shows recognisable slices in the scheduler track.
func runSpecs(ctx context.Context, p *sched.Pool, specs []kernelSpec) ([]KernelRun, error) {
	return sched.MapNamed(ctx, p, len(specs),
		func(i int) string {
			if specs[i].wrap != "" {
				return specs[i].k.Name + " " + specs[i].wrap
			}
			return specs[i].k.Name + " baseline"
		},
		func(i int) sched.Key { return kernelKey(specs[i].cfg, specs[i].k) },
		func(_ context.Context, i int) (KernelRun, error) {
			kr, err := runKernel(specs[i].cfg, specs[i].k)
			if err != nil && specs[i].wrap != "" {
				return kr, fmt.Errorf("%s: %w", specs[i].wrap, err)
			}
			return kr, err
		})
}

// kernelSpecs appends one spec per Livermore kernel under cfg.
func kernelSpecs(specs []kernelSpec, cfg Config, wrap string) []kernelSpec {
	for _, k := range livermore.Kernels() {
		specs = append(specs, kernelSpec{cfg: cfg, k: k, wrap: wrap})
	}
	return specs
}

// RunKernels executes every Livermore kernel under cfg on the Runner's
// pool, verifying each final state (see the package-level RunKernels).
func (r *Runner) RunKernels(ctx context.Context, cfg Config) ([]KernelRun, error) {
	return runSpecs(ctx, r.poolFor(cfg), kernelSpecs(nil, cfg, ""))
}

// Sweep runs the kernel suite at each entry count with cfg as the
// template, fanning the whole (baseline + sizes) x kernels matrix out
// as one flat job list, and aggregates exactly like the serial Sweep —
// the output is byte-identical.
func (r *Runner) Sweep(ctx context.Context, cfg Config, sizes []int) ([]SpeedupRow, error) {
	bound, err := DataflowLimit(cfg.Machine)
	if err != nil {
		return nil, err
	}
	specs := kernelSpecs(nil, Config{Engine: EngineSimple, Machine: cfg.Machine}, "")
	for _, n := range sizes {
		c := cfg
		c.Entries = n
		specs = kernelSpecs(specs, c, fmt.Sprintf("entries=%d", n))
	}
	runs, err := runSpecs(ctx, r.poolFor(cfg), specs)
	if err != nil {
		return nil, err
	}
	nk := len(livermore.Kernels())
	baseTotal := Totals(runs[:nk])
	limit := float64(baseTotal.Cycles) / float64(bound)
	rows := make([]SpeedupRow, 0, len(sizes))
	for i, n := range sizes {
		t := Totals(runs[nk*(i+1) : nk*(i+2)])
		rows = append(rows, SpeedupRow{
			Entries:   n,
			Speedup:   float64(baseTotal.Cycles) / float64(t.Cycles),
			IssueRate: t.IssueRate(),
			Limit:     limit,
		})
	}
	return rows, nil
}

// Table1 regenerates Table 1 on the Runner's pool.
func (r *Runner) Table1(ctx context.Context) ([]Table1Row, error) {
	runs, err := r.RunKernels(ctx, Config{Engine: EngineSimple})
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(runs)+1)
	for _, kr := range runs {
		rows = append(rows, Table1Row{kr.Kernel, kr.Instructions, kr.Cycles, kr.IssueRate()})
	}
	t := Totals(runs)
	rows = append(rows, Table1Row{t.Kernel, t.Instructions, t.Cycles, t.IssueRate()})
	return rows, nil
}

// Table2 through Table7 regenerate the paper's sweep tables on the
// Runner's pool; see the package-level functions for what each table
// is.
func (r *Runner) Table2(ctx context.Context) ([]SpeedupRow, error) {
	return r.Sweep(ctx, Config{Engine: EngineRSTU}, RSTUSizes)
}

func (r *Runner) Table3(ctx context.Context) ([]SpeedupRow, error) {
	return r.Sweep(ctx, Config{Engine: EngineRSTU, Paths: 2}, RSTUSizes)
}

func (r *Runner) Table4(ctx context.Context) ([]SpeedupRow, error) {
	return r.Sweep(ctx, Config{Engine: EngineRUU, Bypass: BypassFull}, RUUSizes)
}

func (r *Runner) Table5(ctx context.Context) ([]SpeedupRow, error) {
	return r.Sweep(ctx, Config{Engine: EngineRUU, Bypass: BypassNone}, RUUSizes)
}

func (r *Runner) Table6(ctx context.Context) ([]SpeedupRow, error) {
	return r.Sweep(ctx, Config{Engine: EngineRUU, Bypass: BypassLimited}, RUUSizes)
}

func (r *Runner) Table7(ctx context.Context) ([]SpeedupRow, error) {
	cfg := Config{Engine: EngineRUU, Bypass: BypassFull}
	cfg.Machine.Speculate = true
	return r.Sweep(ctx, cfg, RUUSizes)
}

// labeledConfig is one row of an ablation: a display label and the
// configuration it measures.
type labeledConfig struct {
	label string
	cfg   Config
}

// ablate fans (baseline + each configuration) x kernels out as one
// flat job list and aggregates into ablation rows, byte-identical to
// the serial ablation loops.
func (r *Runner) ablate(ctx context.Context, cfgs []labeledConfig) ([]AblationRow, error) {
	specs := kernelSpecs(nil, Config{Engine: EngineSimple}, "")
	for _, c := range cfgs {
		specs = kernelSpecs(specs, c.cfg, c.label)
	}
	// Observed configs force the serial path; an ablation mixes
	// configs, so serialise if any of them carries an observer.
	p := r.poolFor(Config{})
	for _, c := range cfgs {
		if r.poolFor(c.cfg) == nil {
			p = nil
		}
	}
	runs, err := runSpecs(ctx, p, specs)
	if err != nil {
		return nil, err
	}
	nk := len(livermore.Kernels())
	baseCycles := Totals(runs[:nk]).Cycles
	rows := make([]AblationRow, 0, len(cfgs))
	for i, c := range cfgs {
		t := Totals(runs[nk*(i+1) : nk*(i+2)])
		rows = append(rows, AblationRow{c.label, float64(baseCycles) / float64(t.Cycles), t.IssueRate()})
	}
	return rows, nil
}

// AblationRSOrganisation runs ablation A1 on the Runner's pool.
func (r *Runner) AblationRSOrganisation(ctx context.Context) ([]AblationRow, error) {
	return r.ablate(ctx, ablationRSOrganisationConfigs())
}

// AblationPreciseSchemes runs ablation A4 on the Runner's pool.
func (r *Runner) AblationPreciseSchemes(ctx context.Context, size int) ([]AblationRow, error) {
	return r.ablate(ctx, ablationPreciseSchemesConfigs(size))
}

// AblationInstructionBuffers runs ablation A5 on the Runner's pool.
func (r *Runner) AblationInstructionBuffers(ctx context.Context, size int) ([]AblationRow, error) {
	return r.ablate(ctx, ablationInstructionBuffersConfigs(size))
}

// AblationCounterWidth runs ablation A2 on the Runner's pool.
func (r *Runner) AblationCounterWidth(ctx context.Context, size int) ([]AblationRow, error) {
	return r.ablate(ctx, ablationCounterWidthConfigs(size))
}

// AblationLoadRegs runs ablation A3 on the Runner's pool.
func (r *Runner) AblationLoadRegs(ctx context.Context, size int) ([]AblationRow, error) {
	return r.ablate(ctx, ablationLoadRegsConfigs(size))
}

// SimOutcome is the cacheable result of one program simulation: the
// run statistics plus the verification verdict. It is plain data — the
// property that lets the service cache and replay it.
type SimOutcome struct {
	Engine       string           `json:"engine"`
	Instructions int64            `json:"instructions"`
	Cycles       int64            `json:"cycles"`
	IssueRate    float64          `json:"issue_rate"`
	Branches     int64            `json:"branches"`
	Taken        int64            `json:"taken"`
	Mispredicts  int64            `json:"mispredicts,omitempty"`
	MaxInFlight  int              `json:"max_in_flight"`
	IBufMisses   int64            `json:"ibuf_misses,omitempty"`
	Stalls       map[string]int64 `json:"stalls"`
	Trap         string           `json:"trap,omitempty"`
	Precise      bool             `json:"precise,omitempty"`
	Verified     bool             `json:"verified"`
}

// ProgramKey returns the content address a (cfg, u, verify) program
// simulation is cached — and routed across the fabric — under; NoKey
// when the job is uncacheable (observer attached or unencodable
// program).
func ProgramKey(cfg Config, u *Unit, verify bool) sched.Key {
	key := jobKey(cfg, u, NewState(u))
	if key.IsZero() {
		return key
	}
	if !verify {
		// The verdict is part of the outcome, so verified and
		// unverified runs must not share a cache slot.
		h := sched.NewHasher()
		h.Bytes("unverified", key[:])
		key = h.Sum()
	}
	return key
}

// SubmitProgram enqueues one program simulation and returns a wait
// function redeeming its outcome — the split that lets a batch submit
// every item before waiting on any, so the pool runs them concurrently
// while results are still consumed in submission order. On a serial
// Runner the returned function runs the simulation when called.
func (r *Runner) SubmitProgram(ctx context.Context, cfg Config, u *Unit, verify bool) (func(context.Context) (SimOutcome, error), error) {
	run := func(context.Context) (any, error) {
		return simulateUnit(cfg, u, verify)
	}
	p := r.poolFor(cfg)
	if p == nil {
		return func(ctx context.Context) (SimOutcome, error) {
			if err := ctx.Err(); err != nil {
				return SimOutcome{}, err
			}
			v, err := run(ctx)
			if err != nil {
				return SimOutcome{}, err
			}
			return v.(SimOutcome), nil
		}, nil
	}
	t, err := p.Submit(ctx, ProgramKey(cfg, u, verify), run)
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context) (SimOutcome, error) {
		v, err := t.Wait(ctx)
		if err != nil {
			return SimOutcome{}, err
		}
		return v.(SimOutcome), nil
	}, nil
}

// RunProgram simulates one assembled unit under cfg as a single pool
// job, returning the run statistics. With verify set, the final state
// is checked against the functional reference and a mismatch is an
// error. Identical submissions (same config, program, initial state)
// are answered from the content-addressed cache.
func (r *Runner) RunProgram(ctx context.Context, cfg Config, u *Unit, verify bool) (SimOutcome, error) {
	wait, err := r.SubmitProgram(ctx, cfg, u, verify)
	if err != nil {
		return SimOutcome{}, err
	}
	return wait(ctx)
}

// simulateUnit is the body of a RunProgram job.
func simulateUnit(cfg Config, u *Unit, verify bool) (SimOutcome, error) {
	st := NewState(u)
	m, err := NewMachine(cfg)
	if err != nil {
		return SimOutcome{}, err
	}
	res, err := m.Run(u.Prog, st)
	if err != nil {
		return SimOutcome{}, err
	}
	out := SimOutcome{
		Engine:       m.Engine().Name(),
		Instructions: res.Stats.Instructions,
		Cycles:       res.Stats.Cycles,
		IssueRate:    res.Stats.IssueRate(),
		Branches:     res.Stats.Branches,
		Taken:        res.Stats.Taken,
		Mispredicts:  res.Stats.Mispredicts,
		MaxInFlight:  res.Stats.MaxInFlight,
		IBufMisses:   res.Stats.IBufMisses,
		Stalls:       res.Stats.StallsByName(),
	}
	if res.Trap != nil {
		out.Trap = res.Trap.Error()
		out.Precise = res.Precise
		return out, nil
	}
	if verify {
		ref, refRes, err := exec.Reference(u.Prog, NewState(u), 0)
		if err != nil {
			return SimOutcome{}, fmt.Errorf("reference: %w", err)
		}
		if res.Stats.Instructions != refRes.Executed {
			return SimOutcome{}, fmt.Errorf("verify: instruction count %d != reference %d", res.Stats.Instructions, refRes.Executed)
		}
		if !st.EqualRegs(ref) {
			return SimOutcome{}, fmt.Errorf("verify: registers differ from reference: %v", st.DiffRegs(ref))
		}
		if d := st.Mem.FirstDiff(ref.Mem); d >= 0 {
			return SimOutcome{}, fmt.Errorf("verify: memory differs from reference at word %d", d)
		}
		out.Verified = true
	}
	return out, nil
}
