package ruu_test

import (
	"testing"

	"ruu"
)

// These tests pin the paper's qualitative results — the shape of every
// table — so that a regression in any engine's timing model is caught:
// who wins, by roughly what factor, and where the crossovers fall.

const eps = 1e-9

func sweep(t *testing.T, f func() ([]ruu.SpeedupRow, error)) []ruu.SpeedupRow {
	t.Helper()
	rows, err := f()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	return rows
}

func at(t *testing.T, rows []ruu.SpeedupRow, n int) ruu.SpeedupRow {
	t.Helper()
	for _, r := range rows {
		if r.Entries == n {
			return r
		}
	}
	t.Fatalf("no row for %d entries", n)
	return ruu.SpeedupRow{}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	rows, err := ruu.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("%d rows, want 14 kernels + total", len(rows))
	}
	var sumI, sumC int64
	for _, r := range rows[:14] {
		sumI += r.Instructions
		sumC += r.Cycles
		// The paper's regime: well below the 1/cycle limit, above 0.2.
		if r.IssueRate < 0.2 || r.IssueRate > 0.6 {
			t.Errorf("%s: baseline issue rate %.3f outside [0.2, 0.6]", r.Kernel, r.IssueRate)
		}
	}
	total := rows[14]
	if total.Instructions != sumI || total.Cycles != sumC {
		t.Error("total row is not the sum of the kernels")
	}
	if total.IssueRate < 0.25 || total.IssueRate > 0.55 {
		t.Errorf("aggregate baseline rate %.3f outside the paper's regime (~0.44)", total.IssueRate)
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	rows := sweep(t, ruu.Table2)
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup < rows[i-1].Speedup-0.02 {
			t.Errorf("RSTU speedup not monotone: %d->%d: %.3f -> %.3f",
				rows[i-1].Entries, rows[i].Entries, rows[i-1].Speedup, rows[i].Speedup)
		}
	}
	small, sat := at(t, rows, 3), at(t, rows, 30)
	if small.Speedup > 1.30 {
		t.Errorf("RSTU@3 speedup %.3f: a 3-entry RSTU should barely beat simple issue (paper: 0.965)", small.Speedup)
	}
	if sat.Speedup < 1.55 || sat.Speedup > 2.05 {
		t.Errorf("RSTU@30 speedup %.3f outside the paper's band (~1.82)", sat.Speedup)
	}
	// Saturation: the last two sizes within 2%.
	if prev := at(t, rows, 25); sat.Speedup > prev.Speedup*1.02 {
		t.Errorf("RSTU not saturated by 25-30 entries: %.3f -> %.3f", prev.Speedup, sat.Speedup)
	}
}

func TestTable3SecondPathBarelyHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	t2 := sweep(t, ruu.Table2)
	t3 := sweep(t, ruu.Table3)
	for i := range t2 {
		if t3[i].Speedup < t2[i].Speedup-0.02 {
			t.Errorf("entries=%d: 2 paths slower (%.3f) than 1 (%.3f)", t2[i].Entries, t3[i].Speedup, t2[i].Speedup)
		}
		// The paper's "reservoir" argument: the second path adds at most
		// a few percent because decode fills at 1 instruction/cycle.
		if t3[i].Speedup > t2[i].Speedup*1.06 {
			t.Errorf("entries=%d: second path helps too much: %.3f vs %.3f",
				t2[i].Entries, t3[i].Speedup, t2[i].Speedup)
		}
	}
}

func TestTables456BypassOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	full := sweep(t, ruu.Table4)
	none := sweep(t, ruu.Table5)
	lim := sweep(t, ruu.Table6)
	for i := range full {
		n := full[i].Entries
		if n < 8 {
			continue // below ~8 entries the organisations are within noise
		}
		if !(full[i].Speedup+eps >= lim[i].Speedup && lim[i].Speedup+eps >= none[i].Speedup) {
			t.Errorf("entries=%d: bypass ordering violated: full=%.3f limited=%.3f none=%.3f",
				n, full[i].Speedup, lim[i].Speedup, none[i].Speedup)
		}
	}
	// Large-RUU magnitudes.
	f50, n50, l50 := at(t, full, 50), at(t, none, 50), at(t, lim, 50)
	if f50.Speedup < 1.5 || f50.Speedup > 1.95 {
		t.Errorf("RUU+bypass@50 speedup %.3f outside the paper's band (~1.79)", f50.Speedup)
	}
	if n50.Speedup > f50.Speedup-0.2 {
		t.Errorf("no-bypass penalty too small: %.3f vs %.3f", n50.Speedup, f50.Speedup)
	}
	if l50.Speedup < n50.Speedup+0.1 {
		t.Errorf("limited bypass recovers too little: %.3f vs none %.3f", l50.Speedup, n50.Speedup)
	}
	// A tiny RUU runs slower than simple issue (paper: 0.853 at 3).
	if f3 := at(t, full, 3); f3.Speedup > 1.05 {
		t.Errorf("RUU@3 speedup %.3f; expected <= ~1 (paper: 0.853)", f3.Speedup)
	}
}

func TestTable4ApproachesRSTU(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	// The paper's headline: the RUU with bypass, while also providing
	// precise interrupts, comes close to the (imprecise) RSTU at larger
	// sizes.
	rstu := at(t, sweep(t, ruu.Table2), 30)
	ruuF := at(t, sweep(t, ruu.Table4), 50)
	if ruuF.Speedup < rstu.Speedup*0.90 {
		t.Errorf("RUU@50 (%.3f) not within 10%% of RSTU@30 (%.3f)", ruuF.Speedup, rstu.Speedup)
	}
}

func TestTable7SpeculationBeatsTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	base := sweep(t, ruu.Table4)
	spec := sweep(t, ruu.Table7)
	b, s := at(t, base, 20), at(t, spec, 20)
	if s.Speedup <= b.Speedup {
		t.Errorf("speculation (%.3f) does not beat blocking branches (%.3f) at 20 entries", s.Speedup, b.Speedup)
	}
}

func TestAblationCounterWidth(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	rows, err := ruu.AblationCounterWidth(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// n=1 (single instance) must cost performance; n=3 vs n=4 must not
	// differ (the paper: 7 instances always sufficed).
	if rows[0].Speedup >= rows[2].Speedup {
		t.Errorf("1-bit counters (%.3f) not slower than 3-bit (%.3f)", rows[0].Speedup, rows[2].Speedup)
	}
	if d := rows[3].Speedup - rows[2].Speedup; d > 0.01 || d < -0.01 {
		t.Errorf("4-bit counters change performance (%.3f vs %.3f): 7 instances should suffice", rows[3].Speedup, rows[2].Speedup)
	}
}

func TestAblationLoadRegs(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	rows, err := ruu.AblationLoadRegs(15)
	if err != nil {
		t.Fatal(err)
	}
	// 1 load register must hurt; 6 vs 8 must not matter (the paper used
	// 6, noting 4 sufficed for most cases).
	first, six, eight := rows[0], rows[4], rows[5]
	if first.Speedup >= six.Speedup {
		t.Errorf("1 load register (%.3f) not slower than 6 (%.3f)", first.Speedup, six.Speedup)
	}
	if d := eight.Speedup - six.Speedup; d > 0.01 || d < -0.01 {
		t.Errorf("8 load registers change performance (%.3f vs %.3f)", eight.Speedup, six.Speedup)
	}
}

func TestAblationRSOrganisation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	rows, err := ruu.AblationRSOrganisation()
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]float64{}
	for _, r := range rows {
		by[r.Label] = r.Speedup
	}
	if by["RSTU (20)"] <= by["RSTU (10)"]-0.02 {
		t.Errorf("RSTU 20 (%.3f) not >= RSTU 10 (%.3f)", by["RSTU (20)"], by["RSTU (10)"])
	}
	// The RUU pays a modest price for precise interrupts relative to the
	// RSTU at equal size, but stays within 20%.
	if by["RUU (20, bypass)"] < by["RSTU (20)"]*0.8 {
		t.Errorf("RUU 20 (%.3f) too far below RSTU 20 (%.3f)", by["RUU (20, bypass)"], by["RSTU (20)"])
	}
}
