GO ?= go

.PHONY: all build test race vet bench lint lint-fix-check

all: build test vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# lint runs ruulint, the repo's own static-analysis suite
# (see docs/ANALYSIS.md). A finding is a build failure. Findings are
# also written as JSON lines to out/ruulint.json for tooling (the CI
# problem matcher consumes the plain-text output).
lint:
	$(GO) build ./...
	@mkdir -p out
	@$(GO) run ./cmd/ruulint -json ./... > out/ruulint.json; st=$$?; \
	if [ $$st -ne 0 ] && [ $$st -ne 1 ] ; then exit $$st; fi; \
	$(GO) run ./cmd/ruulint ./...

# lint-fix-check is the CI fail-fast gate: formatting and lint findings
# fail before the slower race/bench stages run.
lint-fix-check:
	@unformatted=$$(gofmt -l . | grep -v '^out/' || true); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) run ./cmd/ruulint ./...
