GO ?= go

.PHONY: all build test race vet bench bench-json bench-smoke lint lint-timing lint-fix-check dfa analyze serve quickstart-http fabric-smoke

all: build test vet lint analyze

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-json runs the benchmark suite via cmd/ruubench and records a
# BENCH_<stamp>.json trajectory point at the repo root, comparing
# against the newest committed point (report-only; see -compare for a
# gating diff). docs/OBSERVABILITY.md describes the schema.
bench-json:
	$(GO) run ./cmd/ruubench -benchtime $(or $(BENCHTIME),1s)

# bench-smoke is the CI variant: one iteration per benchmark, written
# to out/ (not committed), plus a schema check over the committed
# trajectory and the fresh point.
bench-smoke:
	@mkdir -p out
	$(GO) run ./cmd/ruubench -benchtime 1x -out out/BENCH_smoke.json
	$(GO) run ./cmd/ruubench -checkschema BENCH_*.json out/BENCH_smoke.json

# lint runs ruulint, the repo's own static-analysis suite
# (see docs/ANALYSIS.md). A finding is a build failure. One invocation
# produces every format off a single load and shared callgraph: the
# plain-text findings (the CI problem matcher consumes these), JSON
# lines in out/ruulint.json for tooling, a SARIF 2.1.0 log in
# out/ruulint.sarif for GitHub code scanning, a per-pass timing
# summary on stderr, and a machine-readable timing report in
# out/lint-timings.json. The incremental cache (out/lintcache/) is on
# by default, so an unchanged tree answers in milliseconds; `make
# lint-timing` measures the cold/warm split explicitly.
lint:
	$(GO) build ./...
	@mkdir -p out
	$(GO) run ./cmd/ruulint -out out/ruulint.json -sarif out/ruulint.sarif -timings -timings-out out/lint-timings.json ./...

# lint-timing is the cache benchmark as a Make step: a cold run (cache
# bypassed and repopulated) then a warm run of the identical command,
# each writing its timing report to out/. CI uploads both JSON files as
# the lint-timings artifact; the warm report's cache_full_hit must be
# true and its total_ns sits ~2-3 orders of magnitude under cold.
lint-timing:
	$(GO) build ./...
	@mkdir -p out
	$(GO) run ./cmd/ruulint -cold -timings -timings-out out/lint-timings-cold.json ./...
	$(GO) run ./cmd/ruulint -timings -timings-out out/lint-timings-warm.json ./...

# analyze runs ruudfa, the ISA-level static analysis (see docs/DFA.md):
# value-aware program lint (abstract interpretation), the static
# memory-dependence summary, the hazard census, and the dataflow-limit
# oracle, over the built-in Livermore kernels and the standalone
# example programs. An error-severity finding is a build failure;
# advisory notes are not. The per-program results are also written as
# JSON lines to out/dfa.json and as a SARIF 2.1.0 log to out/dfa.sarif
# (the CI artifacts; the SARIF log feeds GitHub code scanning).
analyze:
	$(GO) build ./...
	@mkdir -p out
	@$(GO) run ./cmd/ruudfa -json -sarif out/dfa.sarif > out/dfa.json; st=$$?; \
	if [ $$st -ne 0 ] && [ $$st -ne 1 ] ; then exit $$st; fi; \
	$(GO) run ./cmd/ruudfa
	$(GO) run ./cmd/ruudfa examples/asm/*.s

# dfa is the historical name for the analyze gate.
dfa: analyze

# serve runs the ruuserve HTTP API on :8093 (see docs/SERVICE.md).
serve:
	$(GO) run ./cmd/ruuserve

# quickstart-http exercises the ruuserve HTTP API end to end: the
# client self-hosts the service on a loopback port, simulates a
# program, runs an async sweep job, checks the cache-hit metrics, and
# drains the server. CI runs this to cover the HTTP path.
quickstart-http:
	$(GO) run ./examples/quickstart/client

# fabric-smoke boots a two-worker sweep fabric (coordinator + workers,
# all in-process on loopback ports), pushes a small /v1/batch through
# it, and diffs the NDJSON stream byte-for-byte against a serial
# reference server — including after killing one worker mid-run. CI
# runs this to cover the distributed path end to end.
fabric-smoke:
	$(GO) run ./examples/quickstart/fabric

# lint-fix-check is the CI fail-fast gate: formatting and lint findings
# fail before the slower race/bench stages run. The timing summary
# shows where the lint wall-clock goes.
lint-fix-check:
	@unformatted=$$(gofmt -l . | grep -v '^out/' || true); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) run ./cmd/ruulint -timings ./...
