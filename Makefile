GO ?= go

.PHONY: all build test race vet bench lint

all: build test vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# lint runs ruulint, the repo's own static-analysis suite
# (see docs/ANALYSIS.md). A finding is a build failure.
lint:
	$(GO) build ./...
	$(GO) run ./cmd/ruulint ./...
