GO ?= go

.PHONY: all build test race vet bench

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
