package ruu_test

import (
	"fmt"
	"testing"

	"ruu"
	"ruu/internal/exec"
	"ruu/internal/livermore"
	"ruu/internal/machine"
)

// engineMatrix is the set of configurations exercised by the
// cross-engine correctness tests: every issue mechanism, several sizes,
// all bypass variants, and the speculative RUU.
func engineMatrix() []ruu.Config {
	var cfgs []ruu.Config
	cfgs = append(cfgs, ruu.Config{Engine: ruu.EngineSimple})
	cfgs = append(cfgs, ruu.Config{Engine: ruu.EngineTomasulo, Entries: 2})
	cfgs = append(cfgs, ruu.Config{Engine: ruu.EngineTomasulo, Entries: 4})
	cfgs = append(cfgs, ruu.Config{Engine: ruu.EngineTagUnit, Entries: 2, TagUnitSize: 12})
	cfgs = append(cfgs, ruu.Config{Engine: ruu.EngineRSPool, Entries: 8, TagUnitSize: 12})
	cfgs = append(cfgs, ruu.Config{Engine: ruu.EngineReorder, Entries: 8})
	cfgs = append(cfgs, ruu.Config{Engine: ruu.EngineReorderBypass, Entries: 8})
	cfgs = append(cfgs, ruu.Config{Engine: ruu.EngineReorderFuture, Entries: 8})
	for _, n := range []int{3, 6, 10, 25} {
		cfgs = append(cfgs, ruu.Config{Engine: ruu.EngineRSTU, Entries: n})
	}
	cfgs = append(cfgs, ruu.Config{Engine: ruu.EngineRSTU, Entries: 10, Paths: 2})
	for _, b := range []ruu.BypassKind{ruu.BypassFull, ruu.BypassNone, ruu.BypassLimited} {
		for _, n := range []int{3, 8, 15, 50} {
			cfgs = append(cfgs, ruu.Config{Engine: ruu.EngineRUU, Entries: n, Bypass: b})
		}
	}
	// Speculative RUU (§7 extension).
	for _, n := range []int{8, 20} {
		cfgs = append(cfgs, ruu.Config{
			Engine: ruu.EngineRUU, Entries: n, Bypass: ruu.BypassFull,
			Machine: machine.Config{Speculate: true},
		})
	}
	return cfgs
}

func cfgName(c ruu.Config) string {
	n := fmt.Sprintf("%s-%d", c.Engine, c.Entries)
	if c.Engine == ruu.EngineRUU {
		b := c.Bypass
		if b == "" {
			b = ruu.BypassFull
		}
		n += "-" + string(b)
	}
	if c.Paths > 1 {
		n += fmt.Sprintf("-%dp", c.Paths)
	}
	if c.Machine.Speculate {
		n += "-spec"
	}
	return n
}

// TestEnginesMatchReference is the central architectural-equivalence
// invariant: every engine configuration, run on every Livermore kernel,
// must finish with register file and memory identical to the functional
// executor, with the same dynamic instruction and branch counts.
func TestEnginesMatchReference(t *testing.T) {
	kernels := livermore.Kernels()
	for _, cfg := range engineMatrix() {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			for _, k := range kernels {
				u, err := k.Unit()
				if err != nil {
					t.Fatalf("%s: %v", k.Name, err)
				}
				ref, refRes, err := exec.Reference(u.Prog, mustState(t, k), 0)
				if err != nil {
					t.Fatalf("%s: reference: %v", k.Name, err)
				}
				m, err := ruu.NewMachine(cfg)
				if err != nil {
					t.Fatalf("%s: %v", k.Name, err)
				}
				st := mustState(t, k)
				res, err := m.Run(u.Prog, st)
				if err != nil {
					t.Fatalf("%s: run: %v", k.Name, err)
				}
				if res.Trap != nil {
					t.Fatalf("%s: unexpected trap %v", k.Name, res.Trap)
				}
				if got := res.Stats.Instructions; got != refRes.Executed {
					t.Errorf("%s: executed %d instructions, reference %d", k.Name, got, refRes.Executed)
				}
				if res.Stats.Branches != refRes.Branches {
					t.Errorf("%s: %d branches, reference %d", k.Name, res.Stats.Branches, refRes.Branches)
				}
				if res.Stats.Taken != refRes.Taken {
					t.Errorf("%s: %d taken, reference %d", k.Name, res.Stats.Taken, refRes.Taken)
				}
				if !st.EqualRegs(ref) {
					t.Errorf("%s: register state differs from reference: %v", k.Name, st.DiffRegs(ref))
				}
				if d := st.Mem.FirstDiff(ref.Mem); d >= 0 {
					t.Errorf("%s: memory differs from reference at word %d: got %#x want %#x",
						k.Name, d, st.Mem.Peek(d), ref.Mem.Peek(d))
				}
				if err := k.Verify(st); err != nil {
					t.Errorf("%s: kernel check: %v", k.Name, err)
				}
				if res.Stats.IssueRate() > 1.0 {
					t.Errorf("%s: issue rate %.3f exceeds the 1/cycle decode limit", k.Name, res.Stats.IssueRate())
				}
			}
		})
	}
}

func mustState(t *testing.T, k *livermore.Kernel) *exec.State {
	t.Helper()
	st, err := k.NewState()
	if err != nil {
		t.Fatal(err)
	}
	return st
}
