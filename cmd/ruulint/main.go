// Command ruulint runs the repository's static-analysis passes
// (internal/analysis) over the module: determinism hygiene in
// simulation packages, obs probe coverage in the issue engines, the
// precise-state mutation discipline, hot-path allocation freedom, enum
// switch exhaustiveness, and paper-constant conformance.
//
// Usage:
//
//	ruulint ./...              # whole module (the only supported pattern)
//	ruulint -list              # describe the passes
//	ruulint -passes precisestate,probeemit ./...
//	ruulint -json ./...        # one JSON object per finding per line
//
// Findings print as file:line:col: [pass] message, relative to the
// working directory; with -json, as one {"pos","pass","msg"} object per
// line. Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ruu/internal/analysis"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list the passes and exit")
		passes = flag.String("passes", "", "comma-separated pass names to run (default: all)")
		asJSON = flag.Bool("json", false, "emit one JSON object per finding per line")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ruulint [-list] [-json] [-passes p1,p2] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	if flag.NArg() > 1 || (flag.NArg() == 1 && flag.Arg(0) != "./...") {
		fmt.Fprintf(os.Stderr, "ruulint: only the whole-module pattern ./... is supported\n")
		os.Exit(2)
	}

	mod, err := analysis.Load(root)
	if err != nil {
		fatal(err)
	}
	all := analysis.DefaultPasses(mod.Path)
	if *list {
		for _, p := range all {
			fmt.Printf("%-16s %s\n", p.Name, p.Doc)
		}
		return
	}
	selected, err := selectPasses(all, *passes)
	if err != nil {
		fatal(err)
	}

	findings := analysis.Check(mod.Packages, selected)
	cwd, _ := os.Getwd()
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		if *asJSON {
			if err := enc.Encode(jsonFinding{
				Pos:  fmt.Sprintf("%s:%d:%d", name, f.Pos.Line, f.Pos.Column),
				Pass: f.Pass,
				Msg:  f.Message,
			}); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, f.Pos.Line, f.Pos.Column, f.Pass, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ruulint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding is the -json line format, one object per finding.
type jsonFinding struct {
	Pos  string `json:"pos"` // file:line:col, relative to the working directory
	Pass string `json:"pass"`
	Msg  string `json:"msg"`
}

// moduleRoot ascends from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func selectPasses(all []*analysis.Pass, names string) ([]*analysis.Pass, error) {
	if names == "" {
		return all, nil
	}
	byName := map[string]*analysis.Pass{}
	for _, p := range all {
		byName[p.Name] = p
	}
	var out []*analysis.Pass
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q (try -list)", n)
		}
		out = append(out, p)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ruulint: %v\n", err)
	os.Exit(2)
}
