// Command ruulint runs the repository's static-analysis passes
// (internal/analysis) over the module: determinism hygiene in
// simulation packages, obs probe coverage in the issue engines, the
// precise-state mutation discipline, hot-path allocation freedom, enum
// switch exhaustiveness, paper-constant conformance, the service-layer
// concurrency and HTTP-contract passes (mutexguard, ctxflow,
// goroutineleak, httpcontract), the SSA value-flow passes (nilness,
// policycontract), plus the suppression meta-pass.
//
// Usage:
//
//	ruulint ./...              # whole module (the only supported pattern)
//	ruulint -list              # describe the passes
//	ruulint -passes precisestate,probeemit ./...
//	ruulint -json ./...        # one JSON object per finding per line
//	ruulint -out f.json -sarif f.sarif ./...   # machine formats, one load
//	ruulint -timings ./...     # wall-clock summary on stderr
//	ruulint -timings-out t.json ./...          # same summary as JSON
//	ruulint -cold ./...        # ignore cached entries, repopulate them
//	ruulint -cache=false ./... # bypass the cache entirely
//
// By default runs go through the persistent incremental cache under
// out/lintcache/ (module-relative; -cache-dir overrides): per-(pass,
// package) finding sets keyed by content hashes, so an unchanged tree
// lints without type-checking and an edit re-analyzes only the
// packages whose hash inputs moved. Cached results are byte-identical
// to a cold run's.
//
// Findings print as file:line:col: [pass] message, relative to the
// working directory; with -json, as one {"pos","pass","msg"} object per
// line. -out writes the JSON lines to a file and -sarif writes a SARIF
// 2.1.0 log (for GitHub code scanning), both from the same single pass
// run as the terminal output. Exit status: 0 clean, 1 findings, 2
// usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ruu/internal/analysis"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the passes and exit")
		passes   = flag.String("passes", "", "comma-separated pass names to run (default: all)")
		cache    = flag.Bool("cache", true, "use the persistent incremental lint cache")
		cacheDir = flag.String("cache-dir", "out/lintcache", "cache directory, relative to the module root")
		cold     = flag.Bool("cold", false, "ignore cached entries but still write fresh ones")
	)
	out := analysis.RegisterOutputFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ruulint [-list] [-json] [-out file] [-sarif file] [-timings] [-timings-out file] [-passes p1,p2] [-cache=false] [-cache-dir dir] [-cold] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	if flag.NArg() > 1 || (flag.NArg() == 1 && flag.Arg(0) != "./...") {
		fmt.Fprintf(os.Stderr, "ruulint: only the whole-module pattern ./... is supported\n")
		os.Exit(2)
	}

	modPath, err := analysis.ModulePathOf(root)
	if err != nil {
		fatal(err)
	}
	all := analysis.DefaultPasses(modPath)
	if *list {
		for _, p := range all {
			fmt.Printf("%-16s %s\n", p.Name, p.Doc)
		}
		return
	}
	selected, err := selectPasses(all, *passes)
	if err != nil {
		fatal(err)
	}

	// One pass run feeds every output format below; on the cached path
	// an unchanged tree answers from disk without type-checking.
	start := time.Now()
	var (
		findings    []analysis.Finding
		passTimings []analysis.PassTiming
		stats       analysis.CacheStats
	)
	if *cache {
		dir := *cacheDir
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, dir)
		}
		findings, passTimings, stats, err = analysis.CheckCached(root, dir, selected, *cold)
		if err != nil {
			fatal(err)
		}
	} else {
		loadStart := time.Now()
		mod, err := analysis.Load(root)
		if err != nil {
			fatal(err)
		}
		stats.LoadElapsed = time.Since(loadStart)
		snap := analysis.NewSnapshot(mod.Packages)
		findings, passTimings = analysis.CheckSnapshot(snap, selected)
	}
	report := analysis.NewTimingsReport("ruulint", time.Since(start), passTimings, len(findings), stats)

	cwd, _ := os.Getwd()
	if out.Out != "" {
		f, err := os.Create(out.Out)
		if err != nil {
			fatal(err)
		}
		if err := writeJSONLines(f, findings, cwd); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if out.SARIF != "" {
		b, err := analysis.MarshalSARIF(findings, selected, root)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(out.SARIF, b, 0o644); err != nil {
			fatal(err)
		}
	}
	if out.JSON {
		if err := writeJSONLines(os.Stdout, findings, cwd); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", relTo(cwd, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Pass, f.Message)
		}
	}
	if out.Timings {
		report.Print(os.Stderr)
	}
	if out.TimingsOut != "" {
		if err := report.WriteFile(out.TimingsOut); err != nil {
			fatal(err)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ruulint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding is the -json line format, one object per finding.
type jsonFinding struct {
	Pos  string `json:"pos"` // file:line:col, relative to the working directory
	Pass string `json:"pass"`
	Msg  string `json:"msg"`
}

// writeJSONLines encodes findings one JSON object per line.
func writeJSONLines(w io.Writer, findings []analysis.Finding, cwd string) error {
	enc := json.NewEncoder(w)
	for _, f := range findings {
		err := enc.Encode(jsonFinding{
			Pos:  fmt.Sprintf("%s:%d:%d", relTo(cwd, f.Pos.Filename), f.Pos.Line, f.Pos.Column),
			Pass: f.Pass,
			Msg:  f.Message,
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// relTo shortens name relative to dir when it lies inside it.
func relTo(dir, name string) string {
	if dir == "" {
		return name
	}
	if rel, err := filepath.Rel(dir, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

// moduleRoot ascends from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func selectPasses(all []*analysis.Pass, names string) ([]*analysis.Pass, error) {
	if names == "" {
		return all, nil
	}
	byName := map[string]*analysis.Pass{}
	for _, p := range all {
		byName[p.Name] = p
	}
	var out []*analysis.Pass
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q (try -list)", n)
		}
		out = append(out, p)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ruulint: %v\n", err)
	os.Exit(2)
}
