// Command ruubench runs the repository benchmark suite
// (internal/bench — the same workloads as `go test -bench .`) and
// records the results as a schema'd BENCH_<stamp>.json trajectory
// point, so simulator performance is tracked in-repo across commits.
//
// Usage:
//
//	ruubench                          # run suite, write BENCH_<stamp>.json, diff vs newest existing
//	ruubench -benchtime 1x            # one iteration per benchmark (CI smoke)
//	ruubench -run 'Simulator'         # filter by regexp
//	ruubench -out results.json        # explicit output path
//	ruubench -compare OLD.json NEW.json   # no run: diff two files, exit 1 on regression
//	ruubench -checkschema BENCH_*.json    # no run: validate files against the schema
//
// A regression is a benchmark whose ns/op grew by more than -threshold
// (default 1.30, i.e. 30%) against the comparison baseline. The normal
// run mode reports regressions without failing (single-run noise);
// -compare exits non-zero so CI can gate on a deliberate comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"time"

	"ruu/internal/bench"
)

// Schema identifies the BENCH_*.json file format; bump it only with a
// migration of the committed trajectory files.
const Schema = "ruu-bench/1"

// File is one trajectory point: an environment header plus one Result
// per benchmark, in suite order.
type File struct {
	Schema     string   `json:"schema"`
	Stamp      string   `json:"stamp"` // UTC, 20060102T150405Z — sorts lexically
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []Result `json:"benchmarks"`
}

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Metrics carries the benchmark's custom ReportMetric values
	// (simcycles/s, speedup, issue-rate, instr/s).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ruubench: ")
	var (
		benchtime   = flag.String("benchtime", "1s", "per-benchmark budget: a duration, or Nx for a fixed iteration count")
		runFilter   = flag.String("run", "", "only run benchmarks matching this regexp")
		out         = flag.String("out", "", "output path (default BENCH_<stamp>.json in -dir)")
		dir         = flag.String("dir", ".", "directory holding the BENCH_*.json trajectory")
		threshold   = flag.Float64("threshold", 1.30, "ns/op growth ratio reported as a regression")
		compareMode = flag.Bool("compare", false, "compare two files (OLD NEW args), exit 1 on regression; no benchmarks run")
		checkSchema = flag.Bool("checkschema", false, "validate the given files against the schema; no benchmarks run")
	)
	flag.Parse()

	switch {
	case *compareMode:
		if flag.NArg() != 2 {
			log.Fatal("-compare needs exactly two arguments: OLD.json NEW.json")
		}
		old, err := load(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		cur, err := load(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		if n := report(old, cur, *threshold); n > 0 {
			os.Exit(1)
		}
		return
	case *checkSchema:
		if flag.NArg() == 0 {
			log.Fatal("-checkschema needs at least one file argument")
		}
		bad := 0
		for _, path := range flag.Args() {
			if _, err := load(path); err != nil {
				log.Printf("%v", err)
				bad++
			} else {
				fmt.Printf("%s: ok\n", path)
			}
		}
		if bad > 0 {
			os.Exit(1)
		}
		return
	}

	var filter *regexp.Regexp
	if *runFilter != "" {
		var err error
		filter, err = regexp.Compile(*runFilter)
		if err != nil {
			log.Fatalf("-run: %v", err)
		}
	}
	budget, fixedN, err := parseBenchtime(*benchtime)
	if err != nil {
		log.Fatalf("-benchtime: %v", err)
	}

	f := File{
		Schema:     Schema,
		Stamp:      time.Now().UTC().Format("20060102T150405Z"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, bm := range bench.Suite() {
		if filter != nil && !filter.MatchString(bm.Name) {
			continue
		}
		res, err := measure(bm, budget, fixedN)
		if err != nil {
			log.Fatalf("%s: %v", bm.Name, err)
		}
		fmt.Printf("%-28s %8d x %12.0f ns/op %10.1f allocs/op\n",
			res.Name, res.Iterations, res.NsPerOp, res.AllocsPerOp)
		f.Benchmarks = append(f.Benchmarks, res)
	}
	if len(f.Benchmarks) == 0 {
		log.Fatal("no benchmarks matched")
	}

	path := *out
	if path == "" {
		path = filepath.Join(*dir, "BENCH_"+f.Stamp+".json")
	}
	prev, prevPath := newestOther(*dir, path)
	if err := save(path, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(f.Benchmarks))
	if prev != nil {
		fmt.Printf("comparing against %s\n", prevPath)
		report(prev, &f, *threshold)
	}
}

// parseBenchtime accepts a Go-style benchtime: "Nx" for a fixed
// iteration count, otherwise a duration budget.
func parseBenchtime(s string) (time.Duration, int, error) {
	if n := len(s); n > 1 && s[n-1] == 'x' {
		var c int
		if _, err := fmt.Sscanf(s[:n-1], "%d", &c); err != nil || c < 1 {
			return 0, 0, fmt.Errorf("invalid iteration count %q", s)
		}
		return 0, c, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, 0, err
	}
	return d, 0, nil
}

// benchFailure carries a Fatal/Fatalf out of a benchmark body.
type benchFailure struct{ msg string }

// rig is the command-line bench.B: it measures wall time and
// allocations around the workload, honouring ResetTimer the way
// testing.B does (restart both clocks).
type rig struct {
	start        time.Time
	startMallocs uint64
	startBytes   uint64
	metrics      map[string]float64
}

func newRig() *rig {
	r := &rig{metrics: map[string]float64{}}
	r.ResetTimer()
	return r
}

func (r *rig) Fatal(args ...any)                 { panic(benchFailure{fmt.Sprintln(args...)}) }
func (r *rig) Fatalf(format string, args ...any) { panic(benchFailure{fmt.Sprintf(format, args...)}) }
func (r *rig) ReportMetric(n float64, unit string) {
	r.metrics[unit] = n
}
func (r *rig) ResetTimer() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.startMallocs = ms.Mallocs
	r.startBytes = ms.TotalAlloc
	r.start = time.Now()
}
func (r *rig) Elapsed() time.Duration { return time.Since(r.start) }
func (r *rig) Helper()                {}

// runOnce executes n iterations under a fresh rig, returning the rig
// and the workload's failure (if any).
func runOnce(bm bench.Benchmark, n int) (r *rig, elapsed time.Duration, allocs, bytes uint64, err error) {
	defer func() {
		if p := recover(); p != nil {
			if bf, ok := p.(benchFailure); ok {
				err = fmt.Errorf("%s", bf.msg)
				return
			}
			panic(p)
		}
	}()
	r = newRig()
	bm.Run(r, n)
	elapsed = r.Elapsed()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	allocs = ms.Mallocs - r.startMallocs
	bytes = ms.TotalAlloc - r.startBytes
	return r, elapsed, allocs, bytes, nil
}

// measure calibrates the iteration count toward the budget (like
// testing.B: grow geometrically until the run fills the budget), or
// runs exactly fixedN iterations when benchtime was "Nx".
func measure(bm bench.Benchmark, budget time.Duration, fixedN int) (Result, error) {
	n := 1
	if fixedN > 0 {
		n = fixedN
	}
	for {
		r, elapsed, allocs, bytes, err := runOnce(bm, n)
		if err != nil {
			return Result{}, err
		}
		if fixedN > 0 || elapsed >= budget || n >= 1_000_000 {
			return Result{
				Name:        bm.Name,
				Iterations:  n,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
				AllocsPerOp: float64(allocs) / float64(n),
				BytesPerOp:  float64(bytes) / float64(n),
				Metrics:     r.metrics,
			}, nil
		}
		// Aim 20% past the budget so the next run usually lands it.
		grow := 2.0
		if elapsed > 0 {
			grow = 1.2 * float64(budget) / float64(elapsed)
		}
		next := int(float64(n) * grow)
		if next <= n {
			next = n + 1
		}
		if next > 100*n {
			next = 100 * n
		}
		n = next
	}
}

// load reads and schema-checks one trajectory file.
func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, Schema)
	}
	if f.Stamp == "" || len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: missing stamp or benchmarks", path)
	}
	for _, r := range f.Benchmarks {
		if r.Name == "" || r.Iterations < 1 || r.NsPerOp <= 0 {
			return nil, fmt.Errorf("%s: malformed result %+v", path, r)
		}
	}
	return &f, nil
}

func save(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// newestOther returns the lexically newest BENCH_*.json in dir other
// than exclude (stamps sort lexically), or nil when none parses.
func newestOther(dir, exclude string) (*File, string) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, ""
	}
	sort.Sort(sort.Reverse(sort.StringSlice(matches)))
	for _, m := range matches {
		if sameFile(m, exclude) {
			continue
		}
		if f, err := load(m); err == nil {
			return f, m
		}
	}
	return nil, ""
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

// report prints the per-benchmark delta and returns the number of
// regressions (ns/op growth beyond threshold).
func report(old, cur *File, threshold float64) int {
	prev := map[string]Result{}
	for _, r := range old.Benchmarks {
		prev[r.Name] = r
	}
	regressions := 0
	for _, r := range cur.Benchmarks {
		p, ok := prev[r.Name]
		if !ok {
			fmt.Printf("%-28s (new)\n", r.Name)
			continue
		}
		ratio := r.NsPerOp / p.NsPerOp
		verdict := ""
		if ratio > threshold {
			verdict = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-28s %12.0f -> %12.0f ns/op  (%+.1f%%)%s\n",
			r.Name, p.NsPerOp, r.NsPerOp, (ratio-1)*100, verdict)
	}
	if regressions > 0 {
		fmt.Printf("%d regression(s) beyond %.0f%% threshold\n", regressions, (threshold-1)*100)
	}
	return regressions
}
