// Command ruuserve exposes the simulator as an HTTP/JSON service:
// synchronous single-program simulation, asynchronous sweep jobs over
// the Livermore suite, health, and scheduler/cache metrics — all backed
// by one worker pool and one content-addressed result cache.
//
// Usage:
//
//	ruuserve                         # listen on :8093, GOMAXPROCS workers
//	ruuserve -addr :9000 -workers 8
//	ruuserve -cachesize 0            # default cache; negative disables
//
// Endpoints (see docs/SERVICE.md for the full reference):
//
//	POST   /v1/simulate   run one program (inline asm or built-in kernel)
//	POST   /v1/sweep      start an async entry-count sweep job
//	GET    /v1/jobs/{id}  poll a sweep job
//	DELETE /v1/jobs/{id}  cancel a sweep job
//	GET    /healthz       liveness (reports draining during shutdown)
//	GET    /metrics       scheduler depth, cache hit rate, latency histograms
//
// On SIGINT/SIGTERM the server drains gracefully: new POSTs get 503,
// in-flight requests and jobs run to completion, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ruu"
	"ruu/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ruuserve: ")
	var (
		addr      = flag.String("addr", ":8093", "listen address")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the simulation scheduler")
		cachesize = flag.Int("cachesize", ruu.DefaultCacheEntries, "result-cache capacity in entries (0 = default, negative = disabled)")
		maxBody   = flag.Int64("max-body", server.DefaultMaxRequestBytes, "request body size limit in bytes")
		timeout   = flag.Duration("timeout", server.DefaultRequestTimeout, "per-request simulation deadline")
		drainFor  = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	runner := ruu.NewRunner(ruu.RunnerConfig{Workers: *workers, CacheEntries: *cachesize})
	defer runner.Close()

	srv := server.New(server.Config{
		Runner:          runner,
		MaxRequestBytes: *maxBody,
		RequestTimeout:  *timeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (%d workers, cache %d entries)", *addr, *workers, *cachesize)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: refuse new work, let in-flight HTTP requests
	// and async sweep jobs finish, then stop the pool.
	log.Printf("draining (budget %v)...", *drainFor)
	srv.StartDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("job drain: %v", err)
	}
	log.Print("drained")
}
