// Command ruuserve exposes the simulator as an HTTP/JSON service:
// synchronous single-program simulation, asynchronous sweep jobs over
// the Livermore suite, health, and scheduler/cache metrics — all backed
// by one worker pool and one content-addressed result cache.
//
// Usage:
//
//	ruuserve                         # listen on :8093, GOMAXPROCS workers
//	ruuserve -addr :9000 -workers 8
//	ruuserve -cachesize 0            # default cache; negative disables
//	ruuserve -debug-addr :6060      # pprof on a separate admin listener
//	ruuserve -store-dir /var/ruu    # persistent result store (warm restarts)
//	ruuserve -coordinator http://w1:8093,http://w2:8093
//	                                 # fabric coordinator over two workers
//
// With -store-dir, completed results are written through to a
// disk-backed content-addressed store and survive restarts: a
// redeployed server answers its previous working set from disk.
//
// With -coordinator, this instance routes POST /v1/batch items to the
// listed workers by consistent-hash job key (retrying on a different
// worker on connect/5xx failure, health-checking members in and out of
// the ring); other endpoints still run on the local pool.
//
// Endpoints (see docs/SERVICE.md for the full reference):
//
//	POST   /v1/simulate   run one program (inline asm or built-in kernel)
//	POST   /v1/batch      run many programs, results streamed as NDJSON
//	POST   /v1/sweep      start an async entry-count sweep job
//	GET    /v1/jobs/{id}  poll a sweep job
//	DELETE /v1/jobs/{id}  cancel a sweep job
//	GET    /v1/trace      recent job spans as a Chrome trace document
//	GET    /healthz       liveness, draining state, and build info
//	GET    /metrics       JSON by default; Prometheus text with Accept: text/plain
//
// With -debug-addr set, net/http/pprof is served on that address under
// /debug/pprof/ — an admin-only listener, never the public API mux.
//
// On SIGINT/SIGTERM the server drains gracefully: new POSTs get 503
// with Retry-After, in-flight requests and jobs run to completion,
// then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ruu"
	"ruu/internal/fabric"
	"ruu/internal/server"
	"ruu/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ruuserve: ")
	var (
		addr      = flag.String("addr", ":8093", "listen address")
		debugAddr = flag.String("debug-addr", "", "admin listen address for /debug/pprof/ (empty = disabled)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the simulation scheduler")
		cachesize = flag.Int("cachesize", ruu.DefaultCacheEntries, "result-cache capacity in entries (0 = default, negative = disabled)")
		maxBody   = flag.Int64("max-body", server.DefaultMaxRequestBytes, "request body size limit in bytes")
		timeout   = flag.Duration("timeout", server.DefaultRequestTimeout, "per-request simulation deadline")
		maxJobs   = flag.Int("max-jobs", server.DefaultMaxActiveJobs, "max queued+running sweep jobs before 429 (negative = unlimited)")
		drainFor  = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		logJobs   = flag.Bool("log-jobs", false, "log one line per finished scheduler job (debug level)")

		storeDir      = flag.String("store-dir", "", "directory of the persistent result store (empty = memory only)")
		storeMaxBytes = flag.Int64("store-max-bytes", 0, "persistent-store byte bound (0 = 1 GiB default, negative = unbounded)")
		coordinator   = flag.String("coordinator", "", "comma-separated worker base URLs; non-empty runs this instance as the fabric coordinator")
		healthEvery   = flag.Duration("health-interval", 2*time.Second, "fabric worker health-check period (coordinator mode)")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *logJobs {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMaxBytes})
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		log.Printf("persistent store at %s (%d entries warm)", *storeDir, st.Stats().Entries)
	}

	var coord *fabric.Coordinator
	if *coordinator != "" {
		workerURLs := strings.Split(*coordinator, ",")
		for i := range workerURLs {
			workerURLs[i] = strings.TrimSuffix(strings.TrimSpace(workerURLs[i]), "/")
		}
		var err error
		coord, err = fabric.New(fabric.Config{
			Workers:        workerURLs,
			HealthInterval: *healthEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer coord.Close()
		log.Printf("coordinator over %d workers: %s", len(workerURLs), *coordinator)
	}

	runner := ruu.NewRunner(ruu.RunnerConfig{Workers: *workers, CacheEntries: *cachesize, Store: st})
	defer runner.Close()

	srv := server.New(server.Config{
		Runner:          runner,
		MaxRequestBytes: *maxBody,
		RequestTimeout:  *timeout,
		MaxActiveJobs:   *maxJobs,
		Store:           st,
		Fabric:          coord,
		Log:             logger,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *debugAddr != "" {
		// pprof lives on its own mux and listener so profiling is never
		// reachable through the public API address.
		admin := http.NewServeMux()
		admin.HandleFunc("/debug/pprof/", pprof.Index)
		admin.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		admin.HandleFunc("/debug/pprof/profile", pprof.Profile)
		admin.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		admin.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, admin); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (%d workers, cache %d entries)", *addr, *workers, *cachesize)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: refuse new work, let in-flight HTTP requests
	// and async sweep jobs finish, then stop the pool.
	log.Printf("draining (budget %v)...", *drainFor)
	srv.StartDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("job drain: %v", err)
	}
	log.Print("drained")
}
