// Command lltrace is the workbench for programs of the model
// architecture: it assembles, disassembles, dumps parcel encodings, and
// produces dynamic traces the way the paper's CRAY-1 trace tools [15]
// fed its simulators.
//
// Usage:
//
//	lltrace -kernel LLL1 -dis          # disassemble a built-in kernel
//	lltrace -kernel LLL1 -parcels      # dump the 16-bit parcel encoding
//	lltrace -kernel LLL3 -trace -n 40  # first 40 dynamic instructions
//	lltrace prog.s -dis                # same for an assembly file
package main

import (
	"flag"
	"fmt"
	"log"

	"ruu"
	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/livermore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lltrace: ")
	var (
		kernel  = flag.String("kernel", "", "use a built-in Livermore kernel (LLL1..LLL14)")
		dis     = flag.Bool("dis", false, "print the disassembly")
		parcels = flag.Bool("parcels", false, "print the 16-bit parcel encoding")
		trace   = flag.Bool("trace", false, "print the dynamic instruction trace")
		n       = flag.Int("n", 100, "maximum trace entries to print")
		stats   = flag.Bool("stats", false, "print static and dynamic statistics")
	)
	flag.Parse()

	var (
		unit *ruu.Unit
		st   *exec.State
		err  error
	)
	switch {
	case *kernel != "":
		k := livermore.ByName(*kernel)
		if k == nil {
			log.Fatalf("unknown kernel %q", *kernel)
		}
		unit, err = k.Unit()
		if err != nil {
			log.Fatal(err)
		}
		st, err = k.NewState()
		if err != nil {
			log.Fatal(err)
		}
	case flag.NArg() == 1:
		unit, err = ruu.AssembleFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		st = ruu.NewState(unit)
	default:
		log.Fatal("need -kernel NAME or an assembly file argument")
	}

	initial := st.Clone()

	if !*dis && !*parcels && !*trace && !*stats {
		*dis = true
	}

	if *dis {
		fmt.Print(asm.Disassemble(unit.Prog))
	}
	if *parcels {
		ps, err := isa.Encode(unit.Prog)
		if err != nil {
			log.Fatal(err)
		}
		for i, p := range ps {
			fmt.Printf("%04x", uint16(p))
			if i%8 == 7 {
				fmt.Println()
			} else {
				fmt.Print(" ")
			}
		}
		if len(ps)%8 != 0 {
			fmt.Println()
		}
		fmt.Printf("; %d parcels, %d instructions\n", len(ps), len(unit.Prog.Instructions))
	}
	if *trace {
		count := 0
		_, err := st.Run(unit.Prog, 0, func(pc int, ins isa.Instruction) {
			if count < *n {
				fmt.Printf("%6d  pc=%-4d %s\n", count, pc, ins)
			}
			count++
		})
		if err != nil {
			log.Fatal(err)
		}
		if count > *n {
			fmt.Printf("... (%d more)\n", count-*n)
		}
	}
	if *stats {
		res, err := initial.Run(unit.Prog, 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		_, total := unit.Prog.ParcelAddrs()
		fmt.Printf("static  : %d instructions, %d parcels\n", len(unit.Prog.Instructions), total)
		fmt.Printf("dynamic : %d instructions, %d branches (%d taken), %d loads, %d stores\n",
			res.Executed, res.Branches, res.Taken, res.Loads, res.Stores)
	}
}
