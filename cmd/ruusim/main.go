// Command ruusim runs a program — an assembly file or a built-in
// Livermore kernel — on a chosen issue mechanism and prints the run
// statistics.
//
// Usage:
//
//	ruusim -kernel LLL1                          # built-in kernel, RUU
//	ruusim -engine rstu -entries 20 -kernel LLL5
//	ruusim -engine ruu -bypass none prog.s       # assembly file
//	ruusim -speculate -kernel LLL3               # §7 conditional execution
//	ruusim -kernel LLL1 -trace-out t.json        # Perfetto-loadable trace
//	ruusim -kernel LLL1 -metrics                 # occupancy/residency tables
//	ruusim -kernel LLL1 -pipetrace 40            # textual pipeline timeline
//	ruusim -synth -seed 7                        # random synthesized program
//	ruusim -synth -synthruns 32 -workers 8       # 32-seed sweep across 8 cores
//	ruusim -list                                 # list built-in kernels
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"ruu"
	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/issue"
	"ruu/internal/livermore"
	"ruu/internal/machine"
	"ruu/internal/obs"
	"ruu/internal/progsynth"
	"ruu/internal/report"
	"ruu/internal/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ruusim: ")
	var (
		engine    = flag.String("engine", "ruu", "issue mechanism: simple, tomasulo, tagunit, rspool, rstu, ruu, reorder, reorder-bypass, reorder-future")
		entries   = flag.Int("entries", isa.PaperDefaultRUUEntries, "RSTU/RUU entries (or stations per unit)")
		paths     = flag.Int("paths", 1, "RSTU dispatch paths")
		bypass    = flag.String("bypass", "full", "RUU bypass: full, none, limited")
		counter   = flag.Int("counterbits", isa.PaperCounterBits, "RUU NI/LI counter width")
		loadRegs  = flag.Int("loadregs", isa.PaperLoadRegs, "number of load registers")
		speculate = flag.Bool("speculate", false, "enable branch prediction + conditional execution (RUU)")
		kernel    = flag.String("kernel", "", "run a built-in Livermore kernel (LLL1..LLL14)")
		synth     = flag.Bool("synth", false, "run a randomly synthesized program (see -seed)")
		seed      = flag.Int64("seed", 1, "seed for -synth program and data generation")
		synthRuns = flag.Int("synthruns", 1, "with -synth: sweep this many consecutive seeds (seed..seed+N-1)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the -synthruns sweep")
		list      = flag.Bool("list", false, "list built-in kernels")
		verify    = flag.Bool("verify", true, "check the final state against the functional reference")
		pipetrace = flag.Int("pipetrace", 0, "print a pipeline timeline for the first N committed instructions")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON file (open in Perfetto)")
		metrics   = flag.Bool("metrics", false, "print occupancy/residency/stall tables after the run")
		ibuf      = flag.Bool("ibuf", false, "model CRAY-1-style instruction buffers instead of ideal fetch")
		jsonOut   = flag.Bool("json", false, "emit the run statistics as JSON")
	)
	flag.Parse()

	if *list {
		for _, k := range livermore.Kernels() {
			fmt.Printf("%-7s %s\n", k.Name, k.Description)
		}
		return
	}

	if *synthRuns > 1 {
		if !*synth {
			log.Fatal("-synthruns requires -synth")
		}
		if *kernel != "" {
			log.Fatal("-synth and -kernel are mutually exclusive")
		}
		cfg := ruu.Config{
			Engine:      ruu.EngineKind(*engine),
			Entries:     *entries,
			Paths:       *paths,
			Bypass:      ruu.BypassKind(*bypass),
			CounterBits: *counter,
			Machine: machine.Config{
				LoadRegs:           *loadRegs,
				Speculate:          *speculate,
				InstructionBuffers: *ibuf,
			},
		}
		if err := synthSweep(cfg, *seed, *synthRuns, *workers, *verify, *jsonOut, *traceOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	var (
		unit *ruu.Unit
		st   *exec.State
		kk   *livermore.Kernel
		err  error
	)
	switch {
	case *synth:
		if *kernel != "" {
			log.Fatal("-synth and -kernel are mutually exclusive")
		}
		opts := progsynth.Options{Nested: true, CondBranches: true}
		unit = &ruu.Unit{Prog: progsynth.Generate(*seed, opts)}
		st = progsynth.NewState(*seed, opts)
	case *kernel != "":
		kk = livermore.ByName(*kernel)
		if kk == nil {
			log.Fatalf("unknown kernel %q (try -list)", *kernel)
		}
		unit, err = kk.Unit()
		if err != nil {
			log.Fatal(err)
		}
		st, err = kk.NewState()
		if err != nil {
			log.Fatal(err)
		}
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		unit, err = ruu.Assemble(string(src))
		if err != nil {
			log.Fatal(err)
		}
		st = ruu.NewState(unit)
	default:
		log.Fatal("need -kernel NAME or an assembly file argument (-h for help)")
	}

	// Observability consumers: each is a probe on the same event stream.
	disasm := ruu.Disasm(unit)
	var probes []ruu.Probe
	var mc *ruu.MetricsCollector
	if *metrics || *jsonOut {
		mc = ruu.NewMetricsCollector()
		probes = append(probes, mc)
	}
	var tracer *ruu.ChromeTracer
	var traceFile *os.File
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		tracer = ruu.NewChromeTracer(traceFile)
		tracer.SetDisasm(disasm)
		probes = append(probes, tracer)
	}
	var viewer *ruu.PipeViewer
	if *pipetrace > 0 {
		// Keep stdout machine-readable under -json: the timeline moves
		// to stderr.
		vout := os.Stdout
		if *jsonOut {
			vout = os.Stderr
		}
		viewer = ruu.NewPipeViewer(vout, *pipetrace)
		viewer.SetDisasm(disasm)
		probes = append(probes, viewer)
	}

	cfg := ruu.Config{
		Engine:      ruu.EngineKind(*engine),
		Entries:     *entries,
		Paths:       *paths,
		Bypass:      ruu.BypassKind(*bypass),
		CounterBits: *counter,
		Machine: machine.Config{
			LoadRegs:           *loadRegs,
			Speculate:          *speculate,
			InstructionBuffers: *ibuf,
			Probe:              ruu.CombineProbes(probes...),
		},
	}
	m, err := ruu.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ref, refRes, err := exec.Reference(unit.Prog, st.Clone(), 0)
	if err != nil {
		log.Fatal(err)
	}

	res, err := m.Run(unit.Prog, st)
	if viewer != nil {
		if cerr := viewer.Close(); cerr != nil {
			log.Printf("pipetrace: %v", cerr)
		}
	}
	if tracer != nil {
		cerr := tracer.Close()
		if cerr == nil {
			cerr = traceFile.Close()
		}
		if cerr != nil {
			log.Fatalf("trace-out: %v", cerr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	if res.Trap != nil {
		log.Fatalf("trapped: %v (precise=%v)", res.Trap, res.Precise)
	}

	if *jsonOut {
		out := struct {
			Engine       string             `json:"engine"`
			Cycles       int64              `json:"cycles"`
			Instructions int64              `json:"instructions"`
			IssueRate    float64            `json:"issue_rate"`
			Branches     int64              `json:"branches"`
			Taken        int64              `json:"taken"`
			Mispredicts  int64              `json:"mispredicts,omitempty"`
			MaxInFlight  int                `json:"max_in_flight"`
			IBufMisses   int64              `json:"ibuf_misses,omitempty"`
			Stalls       map[string]int64   `json:"stalls"`
			Metrics      ruu.MetricsSummary `json:"metrics"`
		}{
			Engine:       m.Engine().Name(),
			Cycles:       res.Stats.Cycles,
			Instructions: res.Stats.Instructions,
			IssueRate:    res.Stats.IssueRate(),
			Branches:     res.Stats.Branches,
			Taken:        res.Stats.Taken,
			Mispredicts:  res.Stats.Mispredicts,
			MaxInFlight:  res.Stats.MaxInFlight,
			IBufMisses:   res.Stats.IBufMisses,
			Stalls:       res.Stats.StallsByName(),
			Metrics:      mc.Summary(),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("engine        : %s\n", m.Engine().Name())
	fmt.Printf("instructions  : %d\n", res.Stats.Instructions)
	fmt.Printf("cycles        : %d\n", res.Stats.Cycles)
	fmt.Printf("issue rate    : %.3f\n", res.Stats.IssueRate())
	fmt.Printf("branches      : %d (%d taken", res.Stats.Branches, res.Stats.Taken)
	if *speculate {
		fmt.Printf(", %d mispredicted", res.Stats.Mispredicts)
	}
	fmt.Printf(")\n")
	fmt.Printf("peak in-flight: %d\n", res.Stats.MaxInFlight)
	if *ibuf {
		fmt.Printf("ibuf misses   : %d\n", res.Stats.IBufMisses)
	}
	fmt.Printf("decode stalls :")
	for r := issue.StallReason(1); r < issue.NumStallReasons; r++ {
		if n := res.Stats.Stalls[r]; n > 0 {
			fmt.Printf(" %s=%d", r, n)
		}
	}
	fmt.Println()
	if *traceOut != "" {
		fmt.Printf("trace         : %s (open in ui.perfetto.dev)\n", *traceOut)
	}

	if mc != nil && *metrics {
		for _, t := range mc.Tables() {
			fmt.Println()
			t.WriteText(os.Stdout)
		}
	}

	if *verify {
		ok := true
		if res.Stats.Instructions != refRes.Executed {
			fmt.Printf("VERIFY: instruction count %d != reference %d\n", res.Stats.Instructions, refRes.Executed)
			ok = false
		}
		if !st.EqualRegs(ref) {
			fmt.Printf("VERIFY: registers differ from reference: %v\n", st.DiffRegs(ref))
			ok = false
		}
		if d := st.Mem.FirstDiff(ref.Mem); d >= 0 {
			fmt.Printf("VERIFY: memory differs from reference at word %d\n", d)
			ok = false
		}
		if kk != nil {
			if err := kk.Verify(st); err != nil {
				fmt.Printf("VERIFY: kernel check failed: %v\n", err)
				ok = false
			}
		}
		if ok {
			fmt.Println("verify        : final state matches the functional reference")
		} else {
			os.Exit(1)
		}
	}
}

// synthRow is one seed's outcome in a -synthruns sweep.
type synthRow struct {
	Seed         int64   `json:"seed"`
	Instructions int64   `json:"instructions"`
	Cycles       int64   `json:"cycles"`
	IssueRate    float64 `json:"issue_rate"`
	Trap         string  `json:"trap,omitempty"`
	Verified     bool    `json:"verified"`
}

// synthSweep runs n synthesized programs (seeds seed..seed+n-1) on the
// scheduler's worker pool, verifying each against the functional
// reference, and prints one row per seed. Results come back in seed
// order regardless of worker count (sched.Map's ordering guarantee), so
// the output is identical to a serial sweep.
//
// With traceOut set, the sweep writes one merged Chrome trace-event
// document: the scheduler's job spans (process 0, one track per
// worker) next to each seed's pipeline trace (process i+1, one track
// per dynamic instruction) — the whole sweep on one Perfetto timeline.
func synthSweep(cfg ruu.Config, seed int64, n, workers int, verify, jsonOut bool, traceOut string) error {
	p := sched.New(sched.Config{Workers: workers})
	defer p.Close()
	var (
		spans *obs.SpanRecorder
		frags []*bytes.Buffer
	)
	if traceOut != "" {
		spans = obs.NewSpanRecorder()
		p.SetOnJobSpan(spans.Record)
		frags = make([]*bytes.Buffer, n)
		for i := range frags {
			frags[i] = &bytes.Buffer{}
		}
	}
	opts := progsynth.Options{Nested: true, CondBranches: true}
	rows, err := sched.MapNamed(context.Background(), p, n,
		func(i int) string { return fmt.Sprintf("seed %d", seed+int64(i)) },
		nil,
		func(_ context.Context, i int) (synthRow, error) {
			s := seed + int64(i)
			prog := progsynth.Generate(s, opts)
			st := progsynth.NewState(s, opts)
			jobCfg := cfg
			var tracer *obs.ChromeTracer
			if frags != nil {
				// Each seed traces into its own fragment under its own
				// trace pid; pid 0 is the scheduler's span track.
				tracer = obs.NewChromeTracerFragment(frags[i], i+1)
				tracer.SetProcessName(fmt.Sprintf("seed %d", s))
				tracer.SetDisasm(ruu.Disasm(&ruu.Unit{Prog: prog}))
				jobCfg.Machine.Probe = tracer
			}
			m, err := ruu.NewMachine(jobCfg)
			if err != nil {
				return synthRow{}, err
			}
			if tracer != nil {
				defer tracer.Close() //nolint:errcheck // write errors surface at merge
			}
			var ref *exec.State
			var refRes exec.RunResult
			if verify {
				ref, refRes, err = exec.Reference(prog, progsynth.NewState(s, opts), 0)
				if err != nil {
					return synthRow{}, fmt.Errorf("seed %d: reference: %w", s, err)
				}
			}
			res, err := m.Run(prog, st)
			if err != nil {
				return synthRow{}, fmt.Errorf("seed %d: %w", s, err)
			}
			row := synthRow{
				Seed:         s,
				Instructions: res.Stats.Instructions,
				Cycles:       res.Stats.Cycles,
				IssueRate:    res.Stats.IssueRate(),
			}
			if res.Trap != nil {
				row.Trap = res.Trap.Error()
				return row, nil
			}
			if verify {
				if res.Stats.Instructions != refRes.Executed {
					return row, fmt.Errorf("seed %d: instruction count %d != reference %d", s, res.Stats.Instructions, refRes.Executed)
				}
				if !st.EqualRegs(ref) {
					return row, fmt.Errorf("seed %d: registers differ from reference: %v", s, st.DiffRegs(ref))
				}
				if d := st.Mem.FirstDiff(ref.Mem); d >= 0 {
					return row, fmt.Errorf("seed %d: memory differs from reference at word %d", s, d)
				}
				row.Verified = true
			}
			return row, nil
		})
	if err != nil {
		return err
	}
	if traceOut != "" {
		if err := writeSweepTrace(traceOut, frags, spans); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		if !jsonOut {
			fmt.Printf("trace         : %s (open in ui.perfetto.dev)\n", traceOut)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	t := report.New(fmt.Sprintf("Synthesized sweep: %d seeds from %d (%s)", n, seed, cfg.Engine),
		"Seed", "Instructions", "Cycles", "Issue Rate", "Verified")
	for _, r := range rows {
		verdict := fmt.Sprintf("%v", r.Verified)
		if r.Trap != "" {
			verdict = "trap: " + r.Trap
		}
		t.Add(r.Seed, r.Instructions, r.Cycles, r.IssueRate, verdict)
	}
	t.WriteText(os.Stdout)
	return nil
}

// writeSweepTrace merges the per-seed pipeline fragments and the
// scheduler's job spans into one Chrome trace-event document.
func writeSweepTrace(path string, frags []*bytes.Buffer, spans *obs.SpanRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	for _, frag := range frags {
		if frag.Len() == 0 {
			continue
		}
		if !first {
			if _, err := w.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(frag.Bytes()); err != nil {
			return err
		}
		first = false
	}
	if spans.Len() > 0 {
		if !first {
			if _, err := w.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := spans.WriteChromeTraceFragment(w); err != nil {
			return err
		}
		first = false
	}
	end := "\n]}\n"
	if first {
		end = "]}\n"
	}
	if _, err := w.WriteString(end); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}
