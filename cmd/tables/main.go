// Command tables regenerates every table of the paper's evaluation
// section (and this reproduction's extension and ablation tables) from
// scratch, printing them in the paper's layout.
//
// Usage:
//
//	tables                # all tables
//	tables -table 4       # just Table 4
//	tables -table A1      # ablation A1
//	tables -markdown      # markdown output (for EXPERIMENTS.md)
//	tables -workers 8     # fan kernel runs out across 8 workers
//
// Every table is generated through the simulation service (ruu.Runner):
// the (configuration, kernel) matrix fans out across -workers cores and
// repeated configurations are answered from the content-addressed result
// cache. The output is byte-identical to the serial path at any worker
// count (golden-tested in service_test.go).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"ruu"
	"ruu/internal/report"
)

// paperSpeedups holds the paper's published speedup columns for
// side-by-side comparison.
var paperSpeedups = map[string]map[int]float64{
	"2": {3: 0.965, 4: 1.140, 5: 1.294, 6: 1.424, 7: 1.479, 8: 1.553, 9: 1.587, 10: 1.642, 15: 1.763, 20: 1.798, 25: 1.820, 30: 1.821},
	"3": {3: 0.976, 4: 1.155, 5: 1.310, 6: 1.442, 7: 1.515, 8: 1.586, 9: 1.634, 10: 1.667, 15: 1.796, 20: 1.832, 25: 1.843, 30: 1.845},
	"4": {3: 0.853, 4: 0.937, 6: 1.077, 8: 1.246, 10: 1.378, 12: 1.502, 15: 1.597, 20: 1.668, 25: 1.713, 30: 1.755, 40: 1.780, 50: 1.786},
	"5": {3: 0.825, 4: 0.906, 6: 1.030, 8: 1.070, 10: 1.102, 12: 1.190, 15: 1.212, 20: 1.291, 25: 1.337, 30: 1.365, 40: 1.447, 50: 1.475},
	"6": {3: 0.846, 4: 0.928, 6: 1.064, 8: 1.115, 10: 1.266, 12: 1.303, 15: 1.420, 20: 1.448, 25: 1.484, 30: 1.505, 40: 1.518, 50: 1.547},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	table := flag.String("table", "", "table to regenerate: 1-7, A1, A2, A3, A4, A5 (default: all)")
	markdown := flag.Bool("markdown", false, "emit markdown instead of aligned text")
	csv := flag.Bool("csv", false, "emit comma-separated values (for plotting)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the simulation scheduler (1 = serial)")
	cachesize := flag.Int("cachesize", ruu.DefaultCacheEntries, "result-cache capacity in entries (0 = default, negative = disabled)")
	flag.Parse()

	ctx := context.Background()
	runner := ruu.NewRunner(ruu.RunnerConfig{Workers: *workers, CacheEntries: *cachesize})
	defer runner.Close()

	emit := func(t *report.Table) {
		switch {
		case *csv:
			t.WriteCSV(os.Stdout)
		case *markdown:
			t.WriteMarkdown(os.Stdout)
		default:
			t.WriteText(os.Stdout)
		}
		fmt.Println()
	}

	want := func(name string) bool {
		return *table == "" || strings.EqualFold(*table, name)
	}

	if want("1") {
		rows, err := runner.Table1(ctx)
		if err != nil {
			log.Fatal(err)
		}
		t := report.New("Table 1: Statistics for the Benchmark Programs (simple issue)",
			"Benchmark", "Instructions", "Clock Cycles", "Issue Rate")
		for _, r := range rows {
			t.Add(r.Kernel, r.Instructions, r.Cycles, r.IssueRate)
		}
		emit(t)
	}

	sweeps := []struct {
		id    string
		title string
		f     func(context.Context) ([]ruu.SpeedupRow, error)
	}{
		{"2", "Table 2: Relative Speedup and Issue Rate with a RSTU", runner.Table2},
		{"3", "Table 3: RSTU with 2 Data Paths", runner.Table3},
		{"4", "Table 4: RUU with Bypass Logic", runner.Table4},
		{"5", "Table 5: RUU without Bypass Logic", runner.Table5},
		{"6", "Table 6: RUU with Limited Bypass Logic (A future file)", runner.Table6},
		{"7", "Table 7 (extension): RUU with Branch Prediction and Conditional Execution", runner.Table7},
	}
	for _, s := range sweeps {
		if !want(s.id) {
			continue
		}
		rows, err := s.f(ctx)
		if err != nil {
			log.Fatal(err)
		}
		emitSweep(emit, s.id, s.title, rows)
	}

	ablations := []struct {
		id    string
		title string
		f     func(context.Context) ([]ruu.AblationRow, error)
	}{
		{"A1", "Ablation A1: Reservation-Station Organisations (§3.1-§3.2.3, §5)",
			runner.AblationRSOrganisation},
		{"A4", "Ablation A4: Precise-Interrupt Schemes (Smith & Pleszkun vs the RUU, 12 entries)",
			func(ctx context.Context) ([]ruu.AblationRow, error) { return runner.AblationPreciseSchemes(ctx, 12) }},
		{"A5", "Ablation A5: Instruction-Buffer Fetch Model (RUU 12, full bypass)",
			func(ctx context.Context) ([]ruu.AblationRow, error) {
				return runner.AblationInstructionBuffers(ctx, 12)
			}},
		{"A2", "Ablation A2: NI/LI Counter Width (RUU 15, full bypass)",
			func(ctx context.Context) ([]ruu.AblationRow, error) { return runner.AblationCounterWidth(ctx, 15) }},
		{"A3", "Ablation A3: Number of Load Registers (RUU 15, full bypass)",
			func(ctx context.Context) ([]ruu.AblationRow, error) { return runner.AblationLoadRegs(ctx, 15) }},
	}
	for _, a := range ablations {
		if !want(a.id) {
			continue
		}
		rows, err := a.f(ctx)
		if err != nil {
			log.Fatal(err)
		}
		t := report.New(a.title, "Configuration", "Relative Speedup", "Issue Rate")
		for _, r := range rows {
			t.Add(r.Label, r.Speedup, r.IssueRate)
		}
		emit(t)
	}
}

func emitSweep(emit func(*report.Table), id, title string, rows []ruu.SpeedupRow) {
	paper := paperSpeedups[id]
	cols := []string{"Entries", "Relative Speedup", "Issue Rate"}
	if paper != nil {
		cols = append(cols, "Paper Speedup")
	}
	// The dataflow limit (internal/dfa) is the speedup ceiling for the
	// sweep's machine timing: no entry count can exceed it.
	cols = append(cols, "Dataflow Limit")
	t := report.New(title, cols...)
	for _, r := range rows {
		if paper != nil {
			t.Add(r.Entries, r.Speedup, r.IssueRate, paper[r.Entries], r.Limit)
		} else {
			t.Add(r.Entries, r.Speedup, r.IssueRate, r.Limit)
		}
	}
	emit(t)
}
