// Command ruudfa runs the ISA-level dataflow analysis (internal/dfa)
// over assembled programs: the dynamic hazard census (RAW/WAR/WAW
// pairs), the dataflow-limit oracle (the cycle count no engine can
// beat), the static memory-dependence summary, and the program lint —
// the value-free rules (uninitialized reads, dead stores, unreachable
// instructions, loop-dead writes) plus the value-aware rules the
// abstract interpretation enables (oob-access, loop-invariant-load)
// and the executor cross-check (must-alias-violation).
//
// Usage:
//
//	ruudfa                     # all built-in Livermore kernels
//	ruudfa -kernel LLL3        # one built-in kernel
//	ruudfa prog.s other.s      # assembly files
//	ruudfa -json ...           # one JSON object per program per line
//	ruudfa -out f.json ...     # also write the JSON lines to a file
//	ruudfa -sarif f.sarif ...  # also write a SARIF 2.1.0 log
//	ruudfa -timings ...        # per-program wall-clock summary on stderr
//	ruudfa -timings-out t.json # same summary as JSON
//
// The machine-output flag set (-json, -out, -sarif, -timings,
// -timings-out) is shared with ruulint through
// analysis.RegisterOutputFlags, so the two analysis CLIs cannot drift.
//
// Lint findings print as program: severity: position: [rule] message,
// deterministically ordered by (file, line, rule). Exit status: 0
// clean (advisory notes do not gate), 1 error-severity findings, 2
// usage, assembly, or replay error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ruu/internal/analysis"
	"ruu/internal/asm"
	"ruu/internal/dfa"
	"ruu/internal/exec"
	"ruu/internal/livermore"
	"ruu/internal/machine"
	"ruu/internal/report"
)

func main() {
	kernel := flag.String("kernel", "", "analyze one built-in Livermore kernel (LLL1..LLL14)")
	out := analysis.RegisterOutputFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ruudfa [-json] [-out file] [-sarif file] [-timings] [-timings-out file] [-kernel NAME | file.s ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var progs []program
	switch {
	case *kernel != "":
		if flag.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "ruudfa: -kernel and file arguments are mutually exclusive\n")
			os.Exit(2)
		}
		k := livermore.ByName(*kernel)
		if k == nil {
			fatal(fmt.Errorf("unknown kernel %q", *kernel))
		}
		progs = append(progs, kernelProgram(k))
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			progs = append(progs, fileProgram(path))
		}
	default:
		for _, k := range livermore.Kernels() {
			progs = append(progs, kernelProgram(k))
		}
	}

	mc := machine.DefaultConfig()
	bcfg := dfa.BoundConfig{Lat: mc.Lat, FwdLatency: mc.FwdLatency}

	start := time.Now()
	var results []result
	var perProgram []analysis.PassTiming
	totalFindings := 0
	for _, p := range progs {
		progStart := time.Now()
		r, err := analyze(p, bcfg)
		if err != nil {
			fatal(err)
		}
		results = append(results, r)
		perProgram = append(perProgram, analysis.PassTiming{
			Name: p.name, Findings: len(r.Findings), Elapsed: time.Since(progStart),
		})
		totalFindings += len(r.Findings)
	}
	timRep := analysis.NewTimingsReport("ruudfa", time.Since(start), perProgram, totalFindings, analysis.CacheStats{})

	if out.SARIF != "" {
		cwd, _ := os.Getwd()
		b, err := marshalSARIF(results, cwd)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(out.SARIF, b, 0o644); err != nil {
			fatal(err)
		}
	}
	if out.Out != "" {
		f, err := os.Create(out.Out)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		for _, r := range results {
			if err := enc.Encode(r); err != nil {
				fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if out.Timings {
		timRep.Print(os.Stderr)
	}
	if out.TimingsOut != "" {
		if err := timRep.WriteFile(out.TimingsOut); err != nil {
			fatal(err)
		}
	}

	nErrors, nNotes := 0, 0
	if out.JSON {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range results {
			if err := enc.Encode(r); err != nil {
				fatal(err)
			}
			ne, nn := r.count()
			nErrors += ne
			nNotes += nn
		}
	} else {
		tbl := report.New("ISA dataflow analysis",
			"Program", "Instrs", "RAW", "WAR", "WAW", "Branches", "Taken", "Mem Deps", "Crit Path", "Dataflow Limit")
		for _, r := range results {
			c, b, d := r.Census, r.Bound, r.MemDeps
			tbl.Add(r.Program, c.DynInstrs, c.RAW, c.WAR, c.WAW, c.Branches, c.Taken,
				fmt.Sprintf("%d/%d/%d", d.Must, d.May, d.Carried), b.CritPath, b.Cycles)
		}
		tbl.WriteText(os.Stdout)
		for _, r := range results {
			for _, f := range r.Findings {
				fmt.Printf("%s: %s: %s\n", r.Program, f.Severity, f.Text)
			}
			ne, nn := r.count()
			nErrors += ne
			nNotes += nn
		}
	}
	if nErrors > 0 {
		fmt.Fprintf(os.Stderr, "ruudfa: %d error finding(s), %d note(s)\n", nErrors, nNotes)
		os.Exit(1)
	}
	if nNotes > 0 {
		fmt.Fprintf(os.Stderr, "ruudfa: %d advisory note(s)\n", nNotes)
	}
}

// program is one analyzable input: a name, the file the findings
// locate into (a virtual livermore/NAME.s path for built-in kernels),
// and loaders for its unit and initial state.
type program struct {
	name  string
	file  string
	unit  func() (*asm.Unit, error)
	state func() (*exec.State, error)
}

func kernelProgram(k *livermore.Kernel) program {
	return program{
		name:  k.Name,
		file:  "livermore/" + k.Name + ".s",
		unit:  k.Unit,
		state: k.NewState,
	}
}

func fileProgram(path string) program {
	load := func() (*asm.Unit, error) { return asm.AssembleFile(path) }
	return program{
		name: filepath.Base(path),
		file: path,
		unit: load,
		state: func() (*exec.State, error) {
			u, err := load()
			if err != nil {
				return nil, err
			}
			return exec.NewState(u.NewMemory()), nil
		},
	}
}

// result is the analysis output for one program (also the -json line
// format).
type result struct {
	Program  string        `json:"program"`
	File     string        `json:"file"`
	Census   dfa.Census    `json:"census"`
	Bound    dfa.Bound     `json:"bound"`
	MemDeps  memdepSummary `json:"memdeps"`
	Findings []jsonFinding `json:"findings"`
}

// memdepSummary condenses the static memory-dependence edges.
type memdepSummary struct {
	Edges   int `json:"edges"`
	Must    int `json:"must"`
	May     int `json:"may"`
	Carried int `json:"carried"`
}

type jsonFinding struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Line     int    `json:"line"` // source line, 0 when unknown
	Idx      int    `json:"idx"`  // instruction index
	Text     string `json:"text"`
}

// count returns the result's (error, note) finding tallies.
func (r result) count() (errors, notes int) {
	for _, f := range r.Findings {
		if f.Severity == dfa.SevNote.String() {
			notes++
		} else {
			errors++
		}
	}
	return errors, notes
}

func analyze(p program, bcfg dfa.BoundConfig) (result, error) {
	r := result{Program: p.name, File: p.file, Findings: []jsonFinding{}}
	u, err := p.unit()
	if err != nil {
		return r, err
	}
	st, err := p.state()
	if err != nil {
		return r, err
	}
	ai := dfa.Analyze(u.Prog).InterpretState(st)
	findings := ai.Lint()
	// The cross-check replays the program (consuming st) and reports
	// must-alias-violation when the executor contradicts the static
	// alias classification.
	xfs, err := ai.CrossCheckMemDeps(st, 0)
	if err != nil {
		return r, fmt.Errorf("%s: %w", p.name, err)
	}
	findings = append(findings, xfs...)
	// Deterministic (file, line, rule) order: the file is the program,
	// so within it sort by line, rule, then instruction index for
	// synthesized line-0 entries.
	sort.SliceStable(findings, func(i, j int) bool {
		if findings[i].Line != findings[j].Line {
			return findings[i].Line < findings[j].Line
		}
		if findings[i].Rule != findings[j].Rule {
			return findings[i].Rule < findings[j].Rule
		}
		return findings[i].Idx < findings[j].Idx
	})
	for _, f := range findings {
		r.Findings = append(r.Findings, jsonFinding{
			Rule:     f.Rule.String(),
			Severity: f.Rule.Severity().String(),
			Line:     f.Line,
			Idx:      f.Idx,
			Text:     f.String(),
		})
	}
	d := ai.MemDeps()
	r.MemDeps = memdepSummary{Edges: len(d.Edges), Must: d.Must, May: d.May, Carried: d.Carried}
	st, err = p.state()
	if err != nil {
		return r, err
	}
	r.Census, err = dfa.ComputeCensus(u.Prog, st, 0)
	if err != nil {
		return r, fmt.Errorf("%s: %w", p.name, err)
	}
	if r.Census.Trap != nil {
		return r, fmt.Errorf("%s: census replay trapped: %v", p.name, r.Census.Trap)
	}
	st, err = p.state()
	if err != nil {
		return r, err
	}
	r.Bound, err = dfa.ComputeBound(u.Prog, st, bcfg)
	if err != nil {
		return r, fmt.Errorf("%s: %w", p.name, err)
	}
	if r.Bound.Trap != nil {
		return r, fmt.Errorf("%s: bound replay trapped: %v", p.name, r.Bound.Trap)
	}
	return r, nil
}

// marshalSARIF renders every finding across all results as one SARIF
// 2.1.0 log via the shared writer. Results are ordered by (file, line,
// rule) so the log is byte-stable across runs.
func marshalSARIF(results []result, root string) ([]byte, error) {
	var rules []analysis.SARIFRule
	for r := dfa.Rule(0); r < dfa.NumRules; r++ {
		rules = append(rules, analysis.SARIFRule{ID: r.String(), Doc: r.Doc()})
	}
	var out []analysis.SARIFResult
	for _, r := range results {
		for _, f := range r.Findings {
			level := "error"
			if f.Severity == dfa.SevNote.String() {
				level = "note"
			}
			out = append(out, analysis.SARIFResult{
				RuleID:  f.Rule,
				Level:   level,
				Message: f.Text,
				URI:     r.File,
				Line:    f.Line,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].URI != out[j].URI {
			return out[i].URI < out[j].URI
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].RuleID < out[j].RuleID
	})
	return analysis.MarshalSARIFLog("ruudfa", rules, out, root)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ruudfa: %v\n", err)
	os.Exit(2)
}
