// Command ruudfa runs the ISA-level dataflow analysis (internal/dfa)
// over assembled programs: the dynamic hazard census (RAW/WAR/WAW
// pairs), the dataflow-limit oracle (the cycle count no engine can
// beat), and the program lint (uninitialized reads, dead stores,
// unreachable instructions, loop-dead writes).
//
// Usage:
//
//	ruudfa                     # all built-in Livermore kernels
//	ruudfa -kernel LLL3        # one built-in kernel
//	ruudfa prog.s other.s      # assembly files
//	ruudfa -json ...           # one JSON object per program per line
//
// Lint findings print as program: position: [rule] message. Exit
// status: 0 clean, 1 lint findings, 2 usage, assembly, or replay error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ruu/internal/asm"
	"ruu/internal/dfa"
	"ruu/internal/exec"
	"ruu/internal/livermore"
	"ruu/internal/machine"
	"ruu/internal/report"
)

func main() {
	var (
		kernel = flag.String("kernel", "", "analyze one built-in Livermore kernel (LLL1..LLL14)")
		asJSON = flag.Bool("json", false, "emit one JSON object per program per line")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ruudfa [-json] [-kernel NAME | file.s ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var progs []program
	switch {
	case *kernel != "":
		if flag.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "ruudfa: -kernel and file arguments are mutually exclusive\n")
			os.Exit(2)
		}
		k := livermore.ByName(*kernel)
		if k == nil {
			fatal(fmt.Errorf("unknown kernel %q", *kernel))
		}
		progs = append(progs, kernelProgram(k))
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			progs = append(progs, fileProgram(path))
		}
	default:
		for _, k := range livermore.Kernels() {
			progs = append(progs, kernelProgram(k))
		}
	}

	mc := machine.DefaultConfig()
	bcfg := dfa.BoundConfig{Lat: mc.Lat, FwdLatency: mc.FwdLatency}

	var results []result
	for _, p := range progs {
		r, err := analyze(p, bcfg)
		if err != nil {
			fatal(err)
		}
		results = append(results, r)
	}

	nFindings := 0
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range results {
			if err := enc.Encode(r); err != nil {
				fatal(err)
			}
			nFindings += len(r.Findings)
		}
	} else {
		tbl := report.New("ISA dataflow analysis",
			"Program", "Instrs", "RAW", "WAR", "WAW", "Branches", "Taken", "Crit Path", "Dataflow Limit")
		for _, r := range results {
			c, b := r.Census, r.Bound
			tbl.Add(r.Program, c.DynInstrs, c.RAW, c.WAR, c.WAW, c.Branches, c.Taken, b.CritPath, b.Cycles)
		}
		tbl.WriteText(os.Stdout)
		for _, r := range results {
			for _, f := range r.Findings {
				fmt.Printf("%s: %s\n", r.Program, f.Text)
				nFindings++
			}
		}
	}
	if nFindings > 0 {
		fmt.Fprintf(os.Stderr, "ruudfa: %d lint finding(s)\n", nFindings)
		os.Exit(1)
	}
}

// program is one analyzable input: a name and loaders for its unit and
// initial state.
type program struct {
	name  string
	unit  func() (*asm.Unit, error)
	state func() (*exec.State, error)
}

func kernelProgram(k *livermore.Kernel) program {
	return program{name: k.Name, unit: k.Unit, state: k.NewState}
}

func fileProgram(path string) program {
	load := func() (*asm.Unit, error) { return asm.AssembleFile(path) }
	return program{
		name: filepath.Base(path),
		unit: load,
		state: func() (*exec.State, error) {
			u, err := load()
			if err != nil {
				return nil, err
			}
			return exec.NewState(u.NewMemory()), nil
		},
	}
}

// result is the analysis output for one program (also the -json line
// format).
type result struct {
	Program  string        `json:"program"`
	Census   dfa.Census    `json:"census"`
	Bound    dfa.Bound     `json:"bound"`
	Findings []jsonFinding `json:"findings"`
}

type jsonFinding struct {
	Rule string `json:"rule"`
	Line int    `json:"line"` // source line, 0 when unknown
	Idx  int    `json:"idx"`  // instruction index
	Text string `json:"text"`
}

func analyze(p program, bcfg dfa.BoundConfig) (result, error) {
	r := result{Program: p.name, Findings: []jsonFinding{}}
	u, err := p.unit()
	if err != nil {
		return r, err
	}
	for _, f := range dfa.Lint(u.Prog) {
		r.Findings = append(r.Findings, jsonFinding{
			Rule: f.Rule.String(), Line: f.Line, Idx: f.Idx, Text: f.String(),
		})
	}
	st, err := p.state()
	if err != nil {
		return r, err
	}
	r.Census, err = dfa.ComputeCensus(u.Prog, st, 0)
	if err != nil {
		return r, fmt.Errorf("%s: %w", p.name, err)
	}
	if r.Census.Trap != nil {
		return r, fmt.Errorf("%s: census replay trapped: %v", p.name, r.Census.Trap)
	}
	st, err = p.state()
	if err != nil {
		return r, err
	}
	r.Bound, err = dfa.ComputeBound(u.Prog, st, bcfg)
	if err != nil {
		return r, fmt.Errorf("%s: %w", p.name, err)
	}
	if r.Bound.Trap != nil {
		return r, fmt.Errorf("%s: bound replay trapped: %v", p.name, r.Bound.Trap)
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ruudfa: %v\n", err)
	os.Exit(2)
}
