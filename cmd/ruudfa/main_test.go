package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ruu/internal/dfa"
	"ruu/internal/livermore"
	"ruu/internal/machine"
)

func allKernelPrograms() []program {
	var ps []program
	for _, k := range livermore.Kernels() {
		ps = append(ps, kernelProgram(k))
	}
	return ps
}

// fixture trips three rules at three distinct lines: an uninitialized
// read (error), a loop-invariant load (advisory note), and a dead
// store (error).
const fixture = `
    addai A6, A5, 1
    lai   A0, 3
    lai   A1, 50
loop:
    lda   A2, 0(A1)
    adda  A6, A6, A2
    addai A0, A0, -1
    janz  loop
    lai   A4, 7
    lai   A4, 8
    halt
`

func writeFixture(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func analyzeFixture(t *testing.T, name string) result {
	t.Helper()
	mc := machine.DefaultConfig()
	r, err := analyze(fileProgram(writeFixture(t, name)), dfa.BoundConfig{Lat: mc.Lat, FwdLatency: mc.FwdLatency})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFindingOrder pins the deterministic (file, line, rule) ordering
// of ruudfa findings: the JSON line format always lists them sorted by
// source line, ties broken by rule.
func TestFindingOrder(t *testing.T) {
	r := analyzeFixture(t, "fixture.s")
	var rules, sevs []string
	lastLine := 0
	for _, f := range r.Findings {
		rules = append(rules, f.Rule)
		sevs = append(sevs, f.Severity)
		if f.Line < lastLine {
			t.Errorf("findings out of line order: line %d after %d", f.Line, lastLine)
		}
		lastLine = f.Line
	}
	wantRules := []string{"uninit-read", "loop-invariant-load", "dead-store"}
	if strings.Join(rules, ",") != strings.Join(wantRules, ",") {
		t.Fatalf("finding rules = %v, want %v", rules, wantRules)
	}
	wantSevs := []string{"error", "note", "error"}
	if strings.Join(sevs, ",") != strings.Join(wantSevs, ",") {
		t.Errorf("finding severities = %v, want %v", sevs, wantSevs)
	}
	if ne, nn := r.count(); ne != 2 || nn != 1 {
		t.Errorf("count = %d errors, %d notes, want 2, 1", ne, nn)
	}

	// Byte-stable: a second analysis of the same program serializes to
	// the same JSON.
	r2 := analyzeFixture(t, "fixture.s")
	r2.File = r.File // distinct temp dirs; everything else must match
	b1, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("JSON not byte-stable:\n%s\n%s", b1, b2)
	}
}

// TestSARIFOutput pins the shared-writer SARIF log: the ruudfa driver
// name, per-severity levels, and byte stability with results ordered
// by (file, line, rule) across programs.
func TestSARIFOutput(t *testing.T) {
	r := analyzeFixture(t, "fixture.s")
	ra, rb := r, r
	ra.File, rb.File = "b.s", "a.s"
	b1, err := marshalSARIF([]result{ra, rb}, "")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := marshalSARIF([]result{ra, rb}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("SARIF output not byte-stable")
	}
	s := string(b1)
	if !strings.Contains(s, `"name": "ruudfa"`) {
		t.Error("missing ruudfa driver name")
	}
	if !strings.Contains(s, `"level": "note"`) || !strings.Contains(s, `"level": "error"`) {
		t.Error("missing severity levels in SARIF results")
	}
	// Results are sorted by file first: every a.s location precedes
	// every b.s location.
	if first, second := strings.Index(s, `"uri": "a.s"`), strings.Index(s, `"uri": "b.s"`); first < 0 || second < 0 || first > second {
		t.Errorf("SARIF results not sorted by file: a.s at %d, b.s at %d", first, second)
	}
	var log map[string]any
	if err := json.Unmarshal(b1, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
}

// TestKernelAnalysisClean pins the built-in kernels free of
// error-severity findings through the full CLI analysis path.
func TestKernelAnalysisClean(t *testing.T) {
	mc := machine.DefaultConfig()
	bcfg := dfa.BoundConfig{Lat: mc.Lat, FwdLatency: mc.FwdLatency}
	for _, p := range allKernelPrograms() {
		r, err := analyze(p, bcfg)
		if err != nil {
			t.Fatal(err)
		}
		if ne, _ := r.count(); ne != 0 {
			t.Errorf("%s: %d error finding(s): %v", r.Program, ne, r.Findings)
		}
		if r.MemDeps.Edges != r.MemDeps.Must+r.MemDeps.May {
			t.Errorf("%s: memdep summary inconsistent: %+v", r.Program, r.MemDeps)
		}
	}
}
