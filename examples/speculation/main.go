// Speculation: the paper's §7 future-work sketch, made concrete. The RUU
// "provides a very powerful mechanism for nullifying instructions", so a
// two-bit branch predictor can drive conditional execution down predicted
// paths; a misprediction rolls the queue's tail back (unwinding the NI/LI
// instance counters and speculatively bound load registers) and redirects
// fetch. This example compares blocking branches against conditional
// execution on the kernel suite and shows the misprediction accounting.
package main

import (
	"fmt"
	"log"
	"os"

	"ruu"
	"ruu/internal/livermore"
	"ruu/internal/machine"
	"ruu/internal/report"
)

func main() {
	log.SetFlags(0)

	t := report.New("Blocking branches vs conditional execution (RUU, full bypass)",
		"Entries", "Cycles (blocking)", "Cycles (speculative)", "Speedup from §7", "Issue Rate (spec)")
	for _, n := range []int{8, 12, 20, 30} {
		plain := ruu.Config{Engine: ruu.EngineRUU, Entries: n, Bypass: ruu.BypassFull}
		spec := plain
		spec.Machine = machine.Config{Speculate: true}

		pRuns, err := ruu.RunKernels(plain)
		if err != nil {
			log.Fatal(err)
		}
		sRuns, err := ruu.RunKernels(spec)
		if err != nil {
			log.Fatal(err)
		}
		p, s := ruu.Totals(pRuns), ruu.Totals(sRuns)
		t.Add(n, p.Cycles, s.Cycles, float64(p.Cycles)/float64(s.Cycles), s.IssueRate())
	}
	t.WriteText(os.Stdout)
	fmt.Println()

	// Per-kernel misprediction behaviour at one size.
	t2 := report.New("Prediction accuracy per kernel (RUU 20, speculative)",
		"Kernel", "Branches", "Taken", "Mispredicts", "Accuracy")
	for _, k := range livermore.Kernels() {
		unit, err := k.Unit()
		if err != nil {
			log.Fatal(err)
		}
		cfg := ruu.Config{Engine: ruu.EngineRUU, Entries: 20, Bypass: ruu.BypassFull}
		cfg.Machine.Speculate = true
		m, err := ruu.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		st, err := k.NewState()
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run(unit.Prog, st)
		if err != nil {
			log.Fatal(err)
		}
		if res.Trap != nil {
			log.Fatalf("%s: %v", k.Name, res.Trap)
		}
		if err := k.Verify(st); err != nil {
			log.Fatalf("%s: speculative run produced a wrong answer: %v", k.Name, err)
		}
		acc := 1.0
		if res.Stats.Branches > 0 {
			acc = 1 - float64(res.Stats.Mispredicts)/float64(res.Stats.Branches)
		}
		t2.Add(k.Name, res.Stats.Branches, res.Stats.Taken, res.Stats.Mispredicts,
			fmt.Sprintf("%.1f%%", acc*100))
	}
	t2.WriteText(os.Stdout)
	fmt.Println("\nEvery speculative run above was verified against the kernel's Go mirror:")
	fmt.Println("nullification never let a wrong-path instruction reach architectural state.")
}
