; SAXPY: z[i] = a*x[i] + y[i] over 32 elements. The scalar a loads once
; before the loop; each iteration is a load-load-multiply-add-store
; chain, so the dataflow limit is dominated by the FMul+FAdd latencies.
;
; Analyze it with:   go run ./cmd/ruudfa examples/asm/saxpy.s
.equ  n 32
.f64  a 1.5
.array x 32
.array y 32
.array z 32

    lai   A7, 0
    lai   A1, 0          ; index
    lai   A0, =n         ; loop countdown
    lds   S4, =a(A7)     ; scalar a
loop:
    lds   S1, =x(A1)
    lds   S2, =y(A1)
    fmul  S1, S1, S4
    fadd  S1, S1, S2
    sts   S1, =z(A1)
    addai A1, A1, 1
    addai A0, A0, -1
    janz  loop
    halt
