; Dot product of two 64-element vectors (the quickstart program as a
; standalone source file): the loop counter counts down in A0 (the
; CRAY-style branch register), the index runs in A1, and the sum
; accumulates in S1.
;
; Analyze it with:   go run ./cmd/ruudfa examples/asm/dotproduct.s
; Trace it with:     go run ./cmd/lltrace examples/asm/dotproduct.s
.equ  n 64
.array x 64
.array y 64
.word result 0

    lai   A7, 0
    lai   A1, 0          ; index
    lai   A0, =n         ; loop countdown
    lsi   S1, 0          ; sum
loop:
    lds   S2, =x(A1)
    lds   S3, =y(A1)
    fmul  S2, S2, S3
    addai A0, A0, -1
    fadd  S1, S1, S2
    addai A1, A1, 1
    janz  loop
    sts   S1, =result(A7)
    halt
