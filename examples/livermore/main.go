// Livermore: the paper's experiment end to end — run the 14 Lawrence
// Livermore loops on every issue mechanism and print the per-kernel and
// aggregate comparison, reproducing the structure of the paper's
// evaluation (Tables 1-6) in one view.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ruu"
	"ruu/internal/report"
)

func main() {
	log.SetFlags(0)
	entries := flag.Int("entries", 12, "RSTU/RUU entry count")
	flag.Parse()

	configs := []struct {
		label string
		cfg   ruu.Config
	}{
		{"simple", ruu.Config{Engine: ruu.EngineSimple}},
		{"tomasulo", ruu.Config{Engine: ruu.EngineTomasulo, Entries: 3}},
		{"rstu", ruu.Config{Engine: ruu.EngineRSTU, Entries: *entries}},
		{"ruu/full", ruu.Config{Engine: ruu.EngineRUU, Entries: *entries, Bypass: ruu.BypassFull}},
		{"ruu/none", ruu.Config{Engine: ruu.EngineRUU, Entries: *entries, Bypass: ruu.BypassNone}},
		{"ruu/limited", ruu.Config{Engine: ruu.EngineRUU, Entries: *entries, Bypass: ruu.BypassLimited}},
		{"ruu/spec", func() ruu.Config {
			c := ruu.Config{Engine: ruu.EngineRUU, Entries: *entries, Bypass: ruu.BypassFull}
			c.Machine.Speculate = true
			return c
		}()},
	}

	// Per-kernel cycles under every configuration.
	perKernel := map[string][]int64{}
	var kernels []string
	totals := make([]int64, len(configs))
	for ci, c := range configs {
		runs, err := ruu.RunKernels(c.cfg)
		if err != nil {
			log.Fatalf("%s: %v", c.label, err)
		}
		for _, r := range runs {
			if ci == 0 {
				kernels = append(kernels, r.Kernel)
			}
			perKernel[r.Kernel] = append(perKernel[r.Kernel], r.Cycles)
		}
		totals[ci] = ruu.Totals(runs).Cycles
	}

	cols := []string{"Kernel"}
	for _, c := range configs {
		cols = append(cols, c.label)
	}
	t := report.New(fmt.Sprintf("Cycles per kernel (%d entries); every result verified against the functional reference", *entries), cols...)
	for _, k := range kernels {
		row := make([]any, 0, len(configs)+1)
		row = append(row, k)
		for _, cyc := range perKernel[k] {
			row = append(row, cyc)
		}
		t.Add(row...)
	}
	t.WriteText(os.Stdout)

	fmt.Println()
	t2 := report.New("Aggregate (all 14 loops)", "Configuration", "Cycles", "Speedup vs simple")
	for ci, c := range configs {
		t2.Add(c.label, totals[ci], float64(totals[0])/float64(totals[ci]))
	}
	t2.WriteText(os.Stdout)
}
