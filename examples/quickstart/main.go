// Quickstart: assemble a small program, run it on a 12-entry Register
// Update Unit, and print the run statistics — the minimal end-to-end use
// of the public API.
package main

import (
	"fmt"
	"log"

	"ruu"
)

// A dot product in the model architecture's assembly: the loop counter
// counts down in A0 (the CRAY-style branch register), the index runs in
// A1, and the sum accumulates in S1.
const src = `
.equ  n 64
.array x 64
.array y 64
.word result 0

    lai   A7, 0
    lai   A1, 0          ; index
    lai   A0, =n         ; loop countdown
    lsi   S1, 0          ; sum
loop:
    lds   S2, =x(A1)
    lds   S3, =y(A1)
    fmul  S2, S2, S3
    addai A0, A0, -1
    fadd  S1, S1, S2
    addai A1, A1, 1
    janz  loop
    sts   S1, =result(A7)
    halt
`

func main() {
	unit, err := ruu.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}

	// Fill the input arrays (the assembler's data image only reserves
	// them).
	st := ruu.NewState(unit)
	x, y := unit.Symbols["x"], unit.Symbols["y"]
	for i := int64(0); i < 64; i++ {
		st.Mem.Poke(x+i, ruu.FloatBits(float64(i)*0.25))
		st.Mem.Poke(y+i, ruu.FloatBits(2.0))
	}

	m, err := ruu.NewMachine(ruu.Config{
		Engine:  ruu.EngineRUU,
		Entries: 12,
		Bypass:  ruu.BypassFull,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run(unit.Prog, st)
	if err != nil {
		log.Fatal(err)
	}
	if res.Trap != nil {
		log.Fatalf("trapped: %v", res.Trap)
	}

	fmt.Printf("result        = %g\n", ruu.Float(st.Mem.Peek(unit.Symbols["result"])))
	fmt.Printf("instructions  = %d\n", res.Stats.Instructions)
	fmt.Printf("cycles        = %d\n", res.Stats.Cycles)
	fmt.Printf("issue rate    = %.3f instructions/cycle\n", res.Stats.IssueRate())
	fmt.Printf("branches      = %d (%d taken)\n", res.Stats.Branches, res.Stats.Taken)
	fmt.Printf("peak RUU fill = %d entries\n", res.Stats.MaxInFlight)
}
