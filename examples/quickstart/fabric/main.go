// Fabric smoke test: boot a two-worker sweep fabric plus a serial
// reference server, push one small /v1/batch through both, and require
// the NDJSON result streams to be byte-identical — the distributed
// path must be invisible in the results. Then kill one worker and
// re-post: the coordinator ejects it, retries on the survivor, and the
// stream must still match the golden. `make fabric-smoke` runs this in
// CI after the single-server quickstart.
//
// Everything is self-contained: workers, coordinator, and the serial
// reference all run in-process on loopback ports.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"ruu"
	"ruu/internal/fabric"
	"ruu/internal/server"
)

// batchBody is the smoke batch: a handful of items spanning the
// engines, including a duplicate (items 0 and 3 must produce identical
// lines).
const batchBody = `{"items":[
	{"engine":"ruu","entries":8,"kernel":"LLL1"},
	{"engine":"rstu","entries":10,"kernel":"LLL3"},
	{"engine":"ruu","entries":16,"bypass":"none","kernel":"LLL7"},
	{"engine":"ruu","entries":8,"kernel":"LLL1"},
	{"engine":"simple","kernel":"LLL12"}
]}`

func main() {
	log.SetFlags(0)
	log.SetPrefix("fabric-smoke: ")
	client := &http.Client{Timeout: 2 * time.Minute}

	// Serial golden: the zero-value Runner runs every job on the
	// calling goroutine — no pool, no cache, no fabric.
	serialBase, serialStop := host(server.Config{Runner: &ruu.Runner{}})
	defer serialStop()
	golden := postBatch(client, serialBase)
	log.Printf("serial golden: %d result lines", lines(golden))

	// Two workers, each with its own pool, and a coordinator routing
	// batch items across them by consistent-hash job key.
	var workerURLs []string
	for i := 0; i < 2; i++ {
		r := ruu.NewRunner(ruu.RunnerConfig{Workers: 2})
		defer r.Close()
		base, stop := host(server.Config{Runner: r})
		defer stop()
		workerURLs = append(workerURLs, base)
	}
	coord, err := fabric.New(fabric.Config{
		Workers:     workerURLs,
		BackoffBase: 5 * time.Millisecond,
		BackoffCap:  50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	coordBase, coordStop := host(server.Config{Runner: &ruu.Runner{}, Fabric: coord})
	defer coordStop()

	got := postBatch(client, coordBase)
	if !bytes.Equal(got, golden) {
		log.Fatalf("fabric batch differs from serial golden:\n--- fabric ---\n%s--- serial ---\n%s", got, golden)
	}
	routed := coord.Stats().Routed
	fmt.Printf("fabric over 2 workers: byte-identical to serial (%d lines, %d items routed)\n",
		lines(got), routed)
	if routed == 0 {
		log.Fatal("coordinator routed nothing — batch did not go through the fabric")
	}

	// Worker loss: stop worker 0 hard and re-post. Connect failures
	// eject it from the ring; retries land every item on the survivor,
	// and the stream must still match the golden byte for byte.
	stopWorker(workerURLs[0])
	got = postBatch(client, coordBase)
	if !bytes.Equal(got, golden) {
		log.Fatalf("post-worker-loss batch differs from serial golden:\n%s", got)
	}
	fmt.Printf("after killing worker 0: still byte-identical (%d retried)\n", coord.Stats().Retried)

	// The coordinator's scrape must show the routing counters moving
	// and the dead worker marked unhealthy.
	scrape := scrapeText(client, coordBase+"/metrics")
	for _, want := range []string{"ruu_fabric_routed_total", "ruu_fabric_worker_healthy"} {
		if !strings.Contains(scrape, want) {
			log.Fatalf("coordinator scrape missing %s", want)
		}
	}
	fmt.Println("fabric smoke: OK")
}

// servers tracks the http.Server per base URL so stopWorker can kill
// one abruptly (no drain — the point is an unreachable worker).
var servers = map[string]*http.Server{}

// host starts a server in-process on a loopback port and returns its
// base URL and a graceful-shutdown func.
func host(cfg server.Config) (string, func()) {
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck // reported via requests failing
	base := "http://" + ln.Addr().String()
	servers[base] = httpSrv
	return base, func() {
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck // smoke teardown
		srv.Drain(ctx)        //nolint:errcheck // smoke teardown
	}
}

// stopWorker closes the listener out from under a worker so the next
// connection attempt fails outright.
func stopWorker(base string) {
	if err := servers[base].Close(); err != nil {
		log.Fatal(err)
	}
}

// postBatch posts the smoke batch and returns the raw NDJSON stream.
func postBatch(c *http.Client, base string) []byte {
	resp, err := c.Post(base+"/v1/batch", "application/json", strings.NewReader(batchBody))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s/v1/batch: HTTP %d: %s", base, resp.StatusCode, buf.Bytes())
	}
	body := buf.Bytes()
	if bytes.Contains(body, []byte(`"error"`)) {
		log.Fatalf("batch stream carries an error line:\n%s", body)
	}
	return body
}

// lines counts the NDJSON result lines in a batch stream.
func lines(b []byte) int {
	return bytes.Count(b, []byte("\n"))
}

// scrapeText fetches a Prometheus text exposition.
func scrapeText(c *http.Client, url string) string {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := c.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(raw)
}
