// Quickstart for the simulation service: drive the ruuserve HTTP API
// end to end — simulate a program, run an asynchronous sweep job, poll
// it, and read the scheduler/cache metrics.
//
// By default the example is self-contained: it starts the service
// in-process on a loopback port, exercises it over real HTTP, and
// shuts it down gracefully (this is what `make quickstart-http` runs
// in CI). Point it at an already-running server with -addr:
//
//	ruuserve -addr :8093 &
//	go run ./examples/quickstart/client -addr http://localhost:8093
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"ruu"
	"ruu/internal/server"

	"flag"
)

// The same dot product as examples/quickstart, but submitted as JSON
// over the wire instead of assembled in-process. The data arrays are
// initialised with assembler directives because the HTTP API runs the
// program from its data image.
const src = `
.equ    n 64
.farray x 64 0.25
.farray y 64 2.0
.word   result 0

    lai   A7, 0
    lai   A1, 0          ; index
    lai   A0, =n         ; loop countdown
    lsi   S1, 0          ; sum
loop:
    lds   S2, =x(A1)
    lds   S3, =y(A1)
    fmul  S2, S2, S3
    addai A0, A0, -1
    fadd  S1, S1, S2
    addai A1, A1, 1
    janz  loop
    sts   S1, =result(A7)
    halt
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart-client: ")
	addr := flag.String("addr", "", "base URL of a running ruuserve (default: self-host in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		var shutdown func()
		base, shutdown = selfHost()
		defer shutdown()
	}
	client := &http.Client{Timeout: 2 * time.Minute}

	// 1. Synchronous simulation: POST the program, get the verified
	// outcome back.
	var sim struct {
		Outcome   ruu.SimOutcome `json:"outcome"`
		ElapsedMS int64          `json:"elapsed_ms"`
	}
	postJSON(client, base+"/v1/simulate", map[string]any{
		"engine":  "ruu",
		"entries": 12,
		"asm":     src,
	}, &sim)
	fmt.Printf("simulate: engine=%s instructions=%d cycles=%d issue-rate=%.3f verified=%v\n",
		sim.Outcome.Engine, sim.Outcome.Instructions, sim.Outcome.Cycles,
		sim.Outcome.IssueRate, sim.Outcome.Verified)

	// 2. The same submission again: answered from the content-addressed
	// cache (see the hit counter in step 4).
	postJSON(client, base+"/v1/simulate", map[string]any{
		"engine":  "ruu",
		"entries": 12,
		"asm":     src,
	}, &sim)
	fmt.Printf("resubmit: cycles=%d (elapsed %dms)\n", sim.Outcome.Cycles, sim.ElapsedMS)

	// 3. Asynchronous sweep job over the Livermore suite: 202 + poll.
	var job struct {
		ID    string           `json:"id"`
		State string           `json:"state"`
		URL   string           `json:"url"`
		Rows  []ruu.SpeedupRow `json:"rows"`
		Error string           `json:"error"`
	}
	postJSON(client, base+"/v1/sweep", map[string]any{
		"engine": "rstu",
		"sizes":  []int{3, 6, 10},
	}, &job)
	fmt.Printf("sweep: %s %s\n", job.ID, job.State)
	for job.State == "queued" || job.State == "running" {
		time.Sleep(50 * time.Millisecond)
		getJSON(client, base+job.URL, &job)
	}
	if job.State != "done" {
		log.Fatalf("sweep job ended %s: %s", job.State, job.Error)
	}
	for _, r := range job.Rows {
		fmt.Printf("  entries=%-3d speedup=%.3f issue-rate=%.3f (dataflow limit %.3f)\n",
			r.Entries, r.Speedup, r.IssueRate, r.Limit)
	}

	// 4. Metrics: scheduler depth, cache hit rate, latency histograms.
	var metrics struct {
		Scheduler struct {
			Workers   int `json:"workers"`
			Submitted int `json:"submitted"`
			Completed int `json:"completed"`
			Cache     struct {
				Entries int `json:"entries"`
				Hits    int `json:"hits"`
				Misses  int `json:"misses"`
			} `json:"cache"`
		} `json:"scheduler"`
	}
	getJSON(client, base+"/metrics", &metrics)
	s := metrics.Scheduler
	fmt.Printf("metrics: workers=%d submitted=%d completed=%d cache hits=%d misses=%d\n",
		s.Workers, s.Submitted, s.Completed, s.Cache.Hits, s.Cache.Misses)
	if s.Cache.Hits == 0 {
		log.Fatal("expected the resubmission to hit the result cache")
	}
}

// selfHost starts the service in-process on a loopback port and
// returns its base URL and a graceful-shutdown func.
func selfHost() (string, func()) {
	runner := ruu.NewRunner(ruu.RunnerConfig{})
	srv := server.New(server.Config{Runner: runner})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck // reported via requests failing
	base := "http://" + ln.Addr().String()
	log.Printf("self-hosted ruuserve on %s", base)
	return base, func() {
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if err := srv.Drain(ctx); err != nil {
			log.Printf("drain: %v", err)
		}
		runner.Close()
		log.Print("drained and stopped")
	}
}

func postJSON(c *http.Client, url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out, url)
}

func getJSON(c *http.Client, url string, out any) {
	resp, err := c.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out, url)
}

func decode(resp *http.Response, out any, url string) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		log.Fatalf("%s: %v (%s)", url, err, raw)
	}
}
