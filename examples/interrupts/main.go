// Interrupts: a demand-paging demonstration of the paper's central claim.
//
// A kernel's output array sits on an unmapped page. On the RUU, the first
// store to it raises a page fault that reaches the head of the queue with
// the architectural state precise: the handler maps the page and resumes
// at the faulting instruction, and the program finishes with a correct
// result. On the RSTU — which resolves dependencies just as well but
// updates registers out of program order — the same fault leaves a state
// that matches no instruction boundary, so execution cannot be resumed.
package main

import (
	"fmt"
	"log"

	"ruu"
	"ruu/internal/exec"
	"ruu/internal/livermore"
)

func main() {
	log.SetFlags(0)
	k := livermore.ByName("LLL12")
	unit, err := k.Unit()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== RUU: precise interrupt, demand paging works ===")
	{
		st, err := k.NewState()
		if err != nil {
			log.Fatal(err)
		}
		// The page holding most of the input array is not resident, so
		// the fault strikes mid-loop with many instructions in flight.
		faultAddr := unit.Symbols["y"] + 500
		st.Mem.Unmap(faultAddr)

		m, err := ruu.NewMachine(ruu.Config{Engine: ruu.EngineRUU, Entries: 12})
		if err != nil {
			log.Fatal(err)
		}
		m.SetHandler(func(s *exec.State, ev ruu.InterruptEvent) ruu.InterruptAction {
			fmt.Printf("page fault at cycle %d: pc=%d addr=%d precise=%v\n",
				ev.Cycle, ev.Trap.PC, ev.Trap.Addr, ev.Precise)
			fmt.Printf("  handler: mapping page and resuming at the faulting instruction\n")
			s.Mem.Map(ev.Trap.Addr)
			return ruu.InterruptAction{Resume: true, ResumePC: ev.Trap.PC}
		})
		res, err := m.Run(unit.Prog, st)
		if err != nil {
			log.Fatal(err)
		}
		if res.Trap != nil {
			log.Fatalf("unrecovered trap: %v", res.Trap)
		}
		if err := k.Verify(st); err != nil {
			log.Fatalf("wrong result after demand paging: %v", err)
		}
		fmt.Printf("completed: %d instructions, %d cycles, %d interrupt(s); result verified correct\n\n",
			res.Stats.Instructions, res.Stats.Cycles, res.Stats.Interrupts)
	}

	fmt.Println("=== RSTU: the same fault is imprecise ===")
	{
		st, err := k.NewState()
		if err != nil {
			log.Fatal(err)
		}
		st.Mem.Unmap(unit.Symbols["y"] + 500)

		m, err := ruu.NewMachine(ruu.Config{Engine: ruu.EngineRSTU, Entries: 12})
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run(unit.Prog, st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stopped at cycle %d with %v; precise=%v\n", res.Stats.Cycles, res.Trap, res.Precise)

		// Show that the stop state matches no instruction boundary: run
		// the functional reference for exactly the retired count and
		// compare.
		ref, err := k.NewState()
		if err != nil {
			log.Fatal(err)
		}
		ref.Mem.Map(unit.Symbols["y"] + 500)
		for i := int64(0); i < res.Stats.Instructions; i++ {
			if _, trap := ref.Step(unit.Prog); trap != nil {
				break
			}
		}
		diffs := st.DiffRegs(ref)
		fmt.Printf("registers differing from the %d-instruction boundary: %v\n", res.Stats.Instructions, diffs)
		fmt.Println("no consistent restart point exists: the OS could not page and resume")
	}

	fmt.Println()
	fmt.Println("=== RUU: asynchronous (timer) interrupt at a commit boundary ===")
	{
		st, err := k.NewState()
		if err != nil {
			log.Fatal(err)
		}
		m, err := ruu.NewMachine(ruu.Config{Engine: ruu.EngineRUU, Entries: 12})
		if err != nil {
			log.Fatal(err)
		}
		m.ScheduleExternal(5000) // a device raises an interrupt mid-run
		m.SetHandler(func(s *exec.State, ev ruu.InterruptEvent) ruu.InterruptAction {
			fmt.Printf("external interrupt at cycle %d: restart pc=%d precise=%v\n",
				ev.Cycle, ev.Trap.PC, ev.Precise)
			fmt.Println("  handler: servicing the device and resuming exactly where commit stopped")
			return ruu.InterruptAction{Resume: true, ResumePC: ev.Trap.PC}
		})
		res, err := m.Run(unit.Prog, st)
		if err != nil {
			log.Fatal(err)
		}
		if res.Trap != nil {
			log.Fatalf("unrecovered: %v", res.Trap)
		}
		if err := k.Verify(st); err != nil {
			log.Fatalf("wrong result after external interrupt: %v", err)
		}
		fmt.Printf("completed with a verified-correct result after %d interrupt(s)\n", res.Stats.Interrupts)
	}
}
