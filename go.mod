module ruu

go 1.22
