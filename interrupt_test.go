package ruu_test

import (
	"fmt"
	"testing"

	"ruu"
	"ruu/internal/exec"
	"ruu/internal/livermore"
	"ruu/internal/machine"
	"ruu/internal/progsynth"
)

// nthMemOpInjector returns a fault injector that faults the n-th dynamic
// memory operation (0-based). Engines consult the injector exactly once
// per dynamic memory operation.
func nthMemOpInjector(n int) machine.FaultInjector {
	count := 0
	return func(pc int, addr int64) *exec.Trap {
		count++
		if count-1 == n {
			return &exec.Trap{Kind: exec.TrapPageFault, PC: pc, Addr: addr}
		}
		return nil
	}
}

// referencePrefix executes exactly n dynamic instructions functionally
// and returns the resulting state.
func referencePrefix(t *testing.T, k *livermore.Kernel, n int64) *exec.State {
	t.Helper()
	st, err := k.NewState()
	if err != nil {
		t.Fatal(err)
	}
	u, _ := k.Unit()
	for i := int64(0); i < n; i++ {
		if _, trap := st.Step(u.Prog); trap != nil {
			t.Fatalf("reference prefix trapped unexpectedly at %d: %v", i, trap)
		}
		if st.Halted {
			t.Fatalf("reference halted at %d before prefix end %d", i, n)
		}
	}
	return st
}

// TestPreciseInterruptPrefixState is the paper's central claim: when a
// fault reaches the RUU head, the architectural state is exactly the
// functional state at the faulting instruction's boundary — every older
// instruction committed, nothing younger visible.
func TestPreciseInterruptPrefixState(t *testing.T) {
	k := livermore.ByName("LLL1")
	u, err := k.Unit()
	if err != nil {
		t.Fatal(err)
	}
	for _, bypass := range []ruu.BypassKind{ruu.BypassFull, ruu.BypassNone, ruu.BypassLimited} {
		for _, n := range []int{0, 1, 17, 100, 555} {
			t.Run(fmt.Sprintf("%s/memop=%d", bypass, n), func(t *testing.T) {
				m, err := ruu.NewMachine(ruu.Config{Engine: ruu.EngineRUU, Entries: 12, Bypass: bypass})
				if err != nil {
					t.Fatal(err)
				}
				m.SetFaultInjector(nthMemOpInjector(n))
				st, _ := k.NewState()
				res, err := m.Run(u.Prog, st)
				if err != nil {
					t.Fatal(err)
				}
				if res.Trap == nil {
					t.Fatal("expected a trap")
				}
				if !res.Precise {
					t.Fatal("RUU reported an imprecise trap")
				}
				// Committed count = instructions strictly before the fault.
				ref := referencePrefix(t, k, res.Stats.Instructions)
				if ref.PC != res.Trap.PC {
					t.Errorf("trap PC %d, but reference prefix stops at PC %d", res.Trap.PC, ref.PC)
				}
				if !st.EqualRegs(ref) {
					t.Errorf("registers not precise: differ at %v", st.DiffRegs(ref))
				}
				if d := st.Mem.FirstDiff(ref.Mem); d >= 0 {
					t.Errorf("memory not precise: differs at word %d", d)
				}
			})
		}
	}
}

// TestPreciseInterruptResume repairs the fault in a handler and resumes
// at the trapping instruction; the program must complete with the exact
// unfaulted result.
func TestPreciseInterruptResume(t *testing.T) {
	for _, spec := range []bool{false, true} {
		for _, n := range []int{3, 250, 900} {
			t.Run(fmt.Sprintf("spec=%v/memop=%d", spec, n), func(t *testing.T) {
				k := livermore.ByName("LLL7")
				u, _ := k.Unit()
				cfg := ruu.Config{Engine: ruu.EngineRUU, Entries: 16}
				cfg.Machine.Speculate = spec
				m, err := ruu.NewMachine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				m.SetFaultInjector(nthMemOpInjector(n))
				handled := 0
				m.SetHandler(func(st *exec.State, ev ruu.InterruptEvent) ruu.InterruptAction {
					if !ev.Precise {
						t.Errorf("handler saw imprecise event")
					}
					handled++
					// The injector fires only once, so retrying the
					// faulting instruction succeeds.
					return ruu.InterruptAction{Resume: true, ResumePC: ev.Trap.PC}
				})
				st, _ := k.NewState()
				res, err := m.Run(u.Prog, st)
				if err != nil {
					t.Fatal(err)
				}
				if res.Trap != nil {
					t.Fatalf("trap not recovered: %v", res.Trap)
				}
				if handled != 1 || res.Stats.Interrupts != 1 {
					t.Fatalf("handled=%d interrupts=%d, want 1/1", handled, res.Stats.Interrupts)
				}
				if err := k.Verify(st); err != nil {
					t.Fatalf("post-resume result wrong: %v", err)
				}
			})
		}
	}
}

// TestPreciseInterruptPageFault exercises the real page-fault path: a
// page is unmapped up front; the handler maps it and resumes — demand
// paging, which is the paper's motivating use case for precise
// interrupts ("if virtual memory is to be used with a pipelined CPU, it
// is crucial that interrupts be precise").
func TestPreciseInterruptPageFault(t *testing.T) {
	k := livermore.ByName("LLL12")
	u, _ := k.Unit()
	st, _ := k.NewState()
	xBase := u.Symbols["x"]
	st.Mem.Unmap(xBase) // the kernel's output page is not resident

	m, err := ruu.NewMachine(ruu.Config{Engine: ruu.EngineRUU, Entries: 12, Bypass: ruu.BypassLimited})
	if err != nil {
		t.Fatal(err)
	}
	faults := 0
	m.SetHandler(func(s *exec.State, ev ruu.InterruptEvent) ruu.InterruptAction {
		if ev.Trap.Kind != exec.TrapPageFault {
			t.Fatalf("want page fault, got %v", ev.Trap)
		}
		faults++
		s.Mem.Map(ev.Trap.Addr)
		return ruu.InterruptAction{Resume: true, ResumePC: ev.Trap.PC}
	})
	res, err := m.Run(u.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatalf("unrecovered trap: %v", res.Trap)
	}
	if faults == 0 {
		t.Fatal("the unmapped page never faulted")
	}
	if err := k.Verify(st); err != nil {
		t.Fatalf("result after demand paging wrong: %v", err)
	}
}

// TestExplicitTrapPrecise: the TRAP instruction faults at commit; a
// handler resuming past it continues execution.
func TestExplicitTrapPrecise(t *testing.T) {
	u, err := ruu.Assemble(`
    lai  A1, 5
    lai  A2, 7
    adda A3, A1, A2
    trap
    adda A4, A3, A3
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ruu.NewMachine(ruu.Config{Engine: ruu.EngineRUU, Entries: 8})
	m.SetHandler(func(st *exec.State, ev ruu.InterruptEvent) ruu.InterruptAction {
		if ev.Trap.Kind != exec.TrapExplicit || ev.Trap.PC != 3 {
			t.Fatalf("unexpected trap %v", ev.Trap)
		}
		if got := st.A[3]; got != 12 {
			t.Fatalf("older instruction not committed at trap: A3=%d", got)
		}
		if got := st.A[4]; got != 0 {
			t.Fatalf("younger instruction visible at trap: A4=%d", got)
		}
		return ruu.InterruptAction{Resume: true, ResumePC: ev.Trap.PC + 1}
	})
	st := ruu.NewState(u)
	res, err := m.Run(u.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatalf("unrecovered: %v", res.Trap)
	}
	if st.A[4] != 24 {
		t.Fatalf("A4 = %d, want 24", st.A[4])
	}
}

// TestImpreciseEnginesAreImprecise demonstrates the problem the RUU
// solves: for the same injected fault, the RSTU (and friends) stop in a
// state that is NOT the functional state at any instruction boundary.
func TestImpreciseEnginesAreImprecise(t *testing.T) {
	k := livermore.ByName("LLL1")
	u, _ := k.Unit()
	for _, cfg := range []ruu.Config{
		{Engine: ruu.EngineRSTU, Entries: 15},
		{Engine: ruu.EngineTomasulo, Entries: 3},
		{Engine: ruu.EngineRSPool, Entries: 10, TagUnitSize: 15},
	} {
		t.Run(string(cfg.Engine), func(t *testing.T) {
			m, err := ruu.NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.SetFaultInjector(nthMemOpInjector(300))
			st, _ := k.NewState()
			res, err := m.Run(u.Prog, st)
			if err != nil {
				t.Fatal(err)
			}
			if res.Trap == nil {
				t.Fatal("expected a trap")
			}
			if res.Precise {
				t.Fatalf("%s claims to be precise", cfg.Engine)
			}
			// The machine stopped with instructions in flight whose
			// results never arrived, and with younger register updates
			// already applied: the retired count cannot identify a
			// consistent boundary. Show the state mismatches the
			// functional prefix at the retired count.
			ref := referencePrefix(t, k, res.Stats.Instructions)
			if st.EqualRegs(ref) && st.Mem.FirstDiff(ref.Mem) < 0 {
				t.Fatalf("%s happened to stop precisely; pick a deeper injection point for the demonstration", cfg.Engine)
			}
		})
	}
}

// TestPreciseInterruptRandomPoints is the property-based form: random
// programs, random fault points, all three bypass modes, with and
// without speculation — prefix equality and post-resume correctness must
// hold everywhere.
func TestPreciseInterruptRandomPoints(t *testing.T) {
	opts := progsynth.Options{Nested: true, CondBranches: true}
	bypass := []ruu.BypassKind{ruu.BypassFull, ruu.BypassNone, ruu.BypassLimited}
	for seed := int64(300); seed <= 340; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			prog := progsynth.Generate(seed, opts)
			ref, refRes, err := exec.Reference(prog, progsynth.NewState(seed, opts), 0)
			if err != nil {
				t.Fatal(err)
			}
			if refRes.Loads+refRes.Stores == 0 {
				t.Skip("no memory operations in this program")
			}
			n := int(seed % (refRes.Loads + refRes.Stores))
			cfg := ruu.Config{Engine: ruu.EngineRUU, Entries: 5 + int(seed%20), Bypass: bypass[seed%3]}
			cfg.Machine.Speculate = seed%2 == 0
			m, err := ruu.NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.SetFaultInjector(nthMemOpInjector(n))
			resumed := false
			m.SetHandler(func(st *exec.State, ev ruu.InterruptEvent) ruu.InterruptAction {
				resumed = true
				return ruu.InterruptAction{Resume: true, ResumePC: ev.Trap.PC}
			})
			st := progsynth.NewState(seed, opts)
			res, err := m.Run(prog, st)
			if err != nil {
				t.Fatal(err)
			}
			if res.Trap != nil {
				t.Fatalf("unrecovered trap: %v", res.Trap)
			}
			if !resumed {
				t.Fatal("fault never taken (injector miscounted?)")
			}
			if res.Stats.Instructions != refRes.Executed {
				t.Errorf("executed %d, want %d", res.Stats.Instructions, refRes.Executed)
			}
			if !st.EqualRegs(ref) {
				t.Errorf("registers differ after resume: %v", st.DiffRegs(ref))
			}
			if d := st.Mem.FirstDiff(ref.Mem); d >= 0 {
				t.Errorf("memory differs after resume at %d", d)
			}
		})
	}
}
