package ruu_test

import (
	"testing"

	"ruu"
)

// TestAllEnginesCommitCount checks the cross-engine invariant of the
// probe stream: on every issue mechanism, each architecturally executed
// instruction produces exactly one commit event (and none twice) — the
// property the metrics collector and trace exporter rely on.
func TestAllEnginesCommitCount(t *testing.T) {
	src := `
.array buf 1
	lai A1, 8
	lai A0, 8
	lsi S1, 3
	fadd S2, S1, S1
	fmul S3, S2, S1
	lai A2, =buf
	sts S3, 0(A2)
	lds S4, 0(A2)
	nop
loop:
	addai A3, A3, 1
	addai A0, A0, -1
	janz loop
	halt
`
	for _, ek := range []ruu.EngineKind{ruu.EngineSimple, ruu.EngineTomasulo, ruu.EngineTagUnit, ruu.EngineRSPool, ruu.EngineRSTU, ruu.EngineRUU, ruu.EngineReorder, ruu.EngineReorderBypass, ruu.EngineReorderFuture} {
		unit, err := ruu.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		rec := ruu.NewProbeRecorder()
		cfg := ruu.Config{Engine: ek}
		cfg.Machine.Probe = rec
		m, err := ruu.NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(unit.Prog, ruu.NewState(unit))
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap != nil {
			t.Fatalf("%s: trap %v", ek, res.Trap)
		}
		if int64(len(rec.Committed())) != res.Stats.Instructions {
			t.Errorf("%s: commits %d != instructions %d", ek, len(rec.Committed()), res.Stats.Instructions)
		}
		seen := map[int64]bool{}
		for _, id := range rec.Committed() {
			if seen[id] {
				t.Errorf("%s: I%d committed twice", ek, id)
			}
			seen[id] = true
		}
	}
}
