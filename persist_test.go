package ruu

import (
	"bytes"
	"context"
	"testing"

	"ruu/internal/livermore"
	"ruu/internal/store"
)

func TestPersistCodecRoundTrip(t *testing.T) {
	outcome := SimOutcome{
		Engine:       "ruu",
		Instructions: 424214,
		Cycles:       352174,
		IssueRate:    1.2045387,
		Branches:     9000,
		Taken:        4500,
		MaxInFlight:  16,
		Stalls:       map[string]int64{"ruu_full": 12, "raw": 3},
		Verified:     true,
	}
	data, ok := encodeCached(outcome)
	if !ok {
		t.Fatal("encodeCached rejected SimOutcome")
	}
	got, ok := decodeCached(data)
	if !ok {
		t.Fatal("decodeCached rejected its own encoding")
	}
	if gotOut, ok := got.(SimOutcome); !ok || gotOut.Cycles != outcome.Cycles || gotOut.Stalls["ruu_full"] != 12 || gotOut.IssueRate != outcome.IssueRate {
		t.Fatalf("round trip mangled SimOutcome: %#v", got)
	}

	kr := KernelRun{Kernel: "LLL3", Instructions: 100, Cycles: 80}
	data, ok = encodeCached(kr)
	if !ok {
		t.Fatal("encodeCached rejected KernelRun")
	}
	if got, ok := decodeCached(data); !ok || got.(KernelRun) != kr {
		t.Fatalf("round trip mangled KernelRun: %#v", got)
	}
}

func TestPersistCodecRejects(t *testing.T) {
	if _, ok := encodeCached("a string"); ok {
		t.Fatal("encodeCached accepted an unknown shape")
	}
	for name, data := range map[string][]byte{
		"garbage":      []byte("not json"),
		"unknown type": []byte(`{"type":"Future","value":{}}`),
		"bad value":    []byte(`{"type":"SimOutcome","value":[1,2]}`),
	} {
		if _, ok := decodeCached([]byte(data)); ok {
			t.Errorf("decodeCached accepted %s", name)
		}
	}
}

// TestPersistCodecByteStable: encoding the same outcome twice — and
// encoding a decode of it — must produce identical bytes. This is the
// property the cross-wire golden tests lean on.
func TestPersistCodecByteStable(t *testing.T) {
	outcome := SimOutcome{
		Engine:    "ruu",
		Cycles:    3,
		IssueRate: 0.1 + 0.2, // a float with no short decimal form
		Stalls:    map[string]int64{"b": 2, "a": 1, "c": 3},
	}
	d1, _ := encodeCached(outcome)
	d2, _ := encodeCached(outcome)
	if !bytes.Equal(d1, d2) {
		t.Fatalf("re-encoding differs:\n%s\n%s", d1, d2)
	}
	decoded, ok := decodeCached(d1)
	if !ok {
		t.Fatal("decode failed")
	}
	d3, _ := encodeCached(decoded)
	if !bytes.Equal(d1, d3) {
		t.Fatalf("decode->encode differs:\n%s\n%s", d1, d3)
	}
}

// TestRunnerServesFromStoreAcrossRestart is the library-level half of
// the persist-and-reload guarantee: a fresh Runner over the same store
// directory answers a previously computed program without running the
// simulator again.
func TestRunnerServesFromStoreAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	u, err := livermore.ByName("LLL3").Unit()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Engine: EngineRUU, Entries: 8, Bypass: BypassFull}

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(RunnerConfig{Workers: 2, Store: st1})
	first, err := r1.RunProgram(context.Background(), cfg, u, true)
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2 := NewRunner(RunnerConfig{Workers: 2, Store: st2})
	defer r2.Close()
	second, err := r2.RunProgram(context.Background(), cfg, u, true)
	if err != nil {
		t.Fatal(err)
	}

	d1, _ := encodeCached(first)
	d2, _ := encodeCached(second)
	if !bytes.Equal(d1, d2) {
		t.Fatalf("restart changed the outcome:\n%s\n%s", d1, d2)
	}
	if n := r2.Pool().Metrics().Completed; n != 0 {
		t.Fatalf("restarted runner executed %d jobs, want 0 (store hit)", n)
	}
	if hits := st2.Stats().Hits; hits < 1 {
		t.Fatalf("store recorded %d hits, want >= 1", hits)
	}
}
