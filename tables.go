package ruu

import (
	"context"
	"fmt"

	"ruu/internal/machine"

	"ruu/internal/dfa"
	"ruu/internal/fu"
	"ruu/internal/isa"
	"ruu/internal/livermore"
)

// This file is the experiment harness: it regenerates every table of the
// paper's evaluation (and this reproduction's extension/ablation tables)
// from scratch. See DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Every generator here delegates to the serial (nil-pool) Runner; the
// scheduler-backed parallel versions are the Runner methods in
// service.go, which produce byte-identical output (golden-tested in
// service_test.go).

// KernelRun is the outcome of one kernel under one configuration.
type KernelRun struct {
	Kernel       string
	Instructions int64
	Cycles       int64
}

// IssueRate returns instructions per cycle.
func (k KernelRun) IssueRate() float64 {
	if k.Cycles == 0 {
		return 0
	}
	return float64(k.Instructions) / float64(k.Cycles)
}

// RunKernels executes every Livermore kernel under cfg, verifying each
// final state against both the functional reference and the kernel's Go
// mirror (an experiment that produces wrong answers is not an
// experiment).
func RunKernels(cfg Config) ([]KernelRun, error) {
	return serialRunner.RunKernels(context.Background(), cfg)
}

func runKernel(cfg Config, k *livermore.Kernel) (KernelRun, error) {
	u, err := k.Unit()
	if err != nil {
		return KernelRun{}, fmt.Errorf("%s: %w", k.Name, err)
	}
	st, err := k.NewState()
	if err != nil {
		return KernelRun{}, fmt.Errorf("%s: %w", k.Name, err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		return KernelRun{}, err
	}
	res, err := m.Run(u.Prog, st)
	if err != nil {
		return KernelRun{}, fmt.Errorf("%s: %w", k.Name, err)
	}
	if res.Trap != nil {
		return KernelRun{}, fmt.Errorf("%s: unexpected trap %v", k.Name, res.Trap)
	}
	if err := k.Verify(st); err != nil {
		return KernelRun{}, fmt.Errorf("%s: wrong answer under %s: %w", k.Name, cfg.Engine, err)
	}
	return KernelRun{Kernel: k.Name, Instructions: res.Stats.Instructions, Cycles: res.Stats.Cycles}, nil
}

// Totals sums a run set, computing the aggregate issue rate the way the
// paper does: total instructions over total cycles, not a mean of rates.
func Totals(runs []KernelRun) KernelRun {
	t := KernelRun{Kernel: "Total"}
	for _, r := range runs {
		t.Instructions += r.Instructions
		t.Cycles += r.Cycles
	}
	return t
}

// Table1Row is one row of Table 1: baseline statistics per kernel.
type Table1Row struct {
	Kernel       string
	Instructions int64
	Cycles       int64
	IssueRate    float64
}

// Table1 reproduces Table 1: the simple issue mechanism on each of the
// 14 kernels, plus the total.
func Table1() ([]Table1Row, error) {
	return serialRunner.Table1(context.Background())
}

// SpeedupRow is one row of the size-sweep tables (Tables 2-7): an entry
// count, the speedup relative to simple issue (total cycles ratio over
// the whole kernel suite), the aggregate instruction issue rate, and
// the dataflow-limit speedup — the ceiling no entry count can exceed
// (internal/dfa's oracle; constant down a sweep since it depends only
// on the machine timing, not on the issue mechanism).
type SpeedupRow struct {
	Entries   int
	Speedup   float64
	IssueRate float64
	Limit     float64
}

// DataflowLimit sums the per-kernel dataflow limits (internal/dfa's
// latency-weighted critical path over the dynamic trace) across the
// whole kernel suite under the given machine timing. Zero-value timing
// fields take the machine defaults, matching what NewMachine runs with.
func DataflowLimit(mcfg MachineConfig) (int64, error) {
	d := machine.DefaultConfig()
	bcfg := dfa.BoundConfig{Lat: mcfg.Lat, FwdLatency: mcfg.FwdLatency}
	if bcfg.Lat == (fu.Latencies{}) {
		bcfg.Lat = d.Lat
	}
	if bcfg.FwdLatency <= 0 {
		bcfg.FwdLatency = d.FwdLatency
	}
	var total int64
	for _, k := range livermore.Kernels() {
		u, err := k.Unit()
		if err != nil {
			return 0, fmt.Errorf("%s: %w", k.Name, err)
		}
		st, err := k.NewState()
		if err != nil {
			return 0, fmt.Errorf("%s: %w", k.Name, err)
		}
		b, err := dfa.ComputeBound(u.Prog, st, bcfg)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", k.Name, err)
		}
		if b.Trap != nil {
			return 0, fmt.Errorf("%s: bound replay trapped: %v", k.Name, b.Trap)
		}
		total += b.Cycles
	}
	return total, nil
}

// Sweep runs the kernel suite at each entry count, with cfg as the
// template (its Entries field is overwritten), and reports speedups
// relative to the simple baseline, alongside the dataflow-limit
// ceiling.
func Sweep(cfg Config, sizes []int) ([]SpeedupRow, error) {
	return serialRunner.Sweep(context.Background(), cfg, sizes)
}

// The paper's sweep sizes.
var (
	// RSTUSizes are the entry counts of Tables 2 and 3, from the
	// canonical sweep list in internal/isa/paperconst.go.
	RSTUSizes = append([]int(nil), isa.PaperRSTUSizes[:]...)
	// RUUSizes are the entry counts of Tables 4, 5 and 6.
	RUUSizes = append([]int(nil), isa.PaperRUUSizes[:]...)
)

// Table2 reproduces Table 2: RSTU speedup and issue rate, one dispatch
// path.
func Table2() ([]SpeedupRow, error) { return serialRunner.Table2(context.Background()) }

// Table3 reproduces Table 3: RSTU with two dispatch paths (one issue
// unit, one result bus, one path to the register file).
func Table3() ([]SpeedupRow, error) { return serialRunner.Table3(context.Background()) }

// Table4 reproduces Table 4: RUU with bypass logic.
func Table4() ([]SpeedupRow, error) { return serialRunner.Table4(context.Background()) }

// Table5 reproduces Table 5: RUU without bypass logic.
func Table5() ([]SpeedupRow, error) { return serialRunner.Table5(context.Background()) }

// Table6 reproduces Table 6: RUU with limited bypass logic (the A
// register file duplicated as a future file).
func Table6() ([]SpeedupRow, error) { return serialRunner.Table6(context.Background()) }

// Table7 is this reproduction's extension experiment (the paper's §7
// future work): the RUU with branch prediction and conditional execution.
func Table7() ([]SpeedupRow, error) { return serialRunner.Table7(context.Background()) }

// AblationRow is one row of an ablation table.
type AblationRow struct {
	Label     string
	Speedup   float64
	IssueRate float64
}

// AblationRSOrganisation compares the reservation-station organisations
// of §3.1-§3.2.3 at matched total station counts (A1 in DESIGN.md).
func AblationRSOrganisation() ([]AblationRow, error) {
	return serialRunner.AblationRSOrganisation(context.Background())
}

func ablationRSOrganisationConfigs() []labeledConfig {
	return []labeledConfig{
		{"tomasulo (2/unit, per-register tags)", Config{Engine: EngineTomasulo, Entries: 2}},
		{"tag unit (2/unit, TU=20)", Config{Engine: EngineTagUnit, Entries: 2, TagUnitSize: 20}},
		{"RS pool (10, TU=20)", Config{Engine: EngineRSPool, Entries: 10, TagUnitSize: 20}},
		{"RSTU (10)", Config{Engine: EngineRSTU, Entries: 10}},
		{"RSTU (20)", Config{Engine: EngineRSTU, Entries: 20}},
		{"RUU (10, bypass)", Config{Engine: EngineRUU, Entries: 10, Bypass: BypassFull}},
		{"RUU (20, bypass)", Config{Engine: EngineRUU, Entries: 20, Bypass: BypassFull}},
	}
}

// AblationPreciseSchemes compares the precise-interrupt design space the
// paper's §4-§5 argue about (A4 in DESIGN.md): in-order issue with the
// Smith & Pleszkun reorder-buffer schemes against the RUU, which gets
// out-of-order issue and preciseness from one structure.
func AblationPreciseSchemes(size int) ([]AblationRow, error) {
	return serialRunner.AblationPreciseSchemes(context.Background(), size)
}

func ablationPreciseSchemesConfigs(size int) []labeledConfig {
	return []labeledConfig{
		{"simple issue (in-order, imprecise)", Config{Engine: EngineSimple}},
		{"reorder buffer (in-order, precise)", Config{Engine: EngineReorder, Entries: size}},
		{"reorder buffer + bypass", Config{Engine: EngineReorderBypass, Entries: size}},
		{"reorder buffer + future file", Config{Engine: EngineReorderFuture, Entries: size}},
		{"RSTU (out-of-order, imprecise)", Config{Engine: EngineRSTU, Entries: size}},
		{"RUU with bypass (out-of-order, precise)", Config{Engine: EngineRUU, Entries: size, Bypass: BypassFull}},
	}
}

// AblationInstructionBuffers checks the paper's assumption (iii) — "the
// instructions are already present in the instruction buffers" — by
// enabling the CRAY-1-style buffer fetch model (A5 in DESIGN.md): with
// CRAY-sized buffers the kernels incur only cold fills and the speedups
// are unchanged; with tiny buffers the loops thrash.
func AblationInstructionBuffers(size int) ([]AblationRow, error) {
	return serialRunner.AblationInstructionBuffers(context.Background(), size)
}

func ablationInstructionBuffersConfigs(size int) []labeledConfig {
	mcfgs := []struct {
		label string
		mcfg  machine.Config
	}{
		{"ideal fetch (the paper's assumption)", machine.Config{}},
		{"4 x 64-parcel buffers (CRAY-1)", machine.Config{InstructionBuffers: true, IBufCount: 4, IBufParcels: 64}},
		{"4 x 16-parcel buffers", machine.Config{InstructionBuffers: true, IBufCount: 4, IBufParcels: 16}},
		{"2 x 8-parcel buffers", machine.Config{InstructionBuffers: true, IBufCount: 2, IBufParcels: 8}},
	}
	cfgs := make([]labeledConfig, 0, len(mcfgs))
	for _, c := range mcfgs {
		cfgs = append(cfgs, labeledConfig{c.label,
			Config{Engine: EngineRUU, Entries: size, Bypass: BypassFull, Machine: c.mcfg}})
	}
	return cfgs
}

// AblationCounterWidth sweeps the NI/LI counter width n (the paper used
// 3 bits, noting 7 instances always sufficed) at a fixed RUU size (A2).
func AblationCounterWidth(size int) ([]AblationRow, error) {
	return serialRunner.AblationCounterWidth(context.Background(), size)
}

func ablationCounterWidthConfigs(size int) []labeledConfig {
	var cfgs []labeledConfig
	for bits := 1; bits <= 4; bits++ {
		cfgs = append(cfgs, labeledConfig{
			fmt.Sprintf("n=%d (max %d instances)", bits, (1<<bits)-1),
			Config{Engine: EngineRUU, Entries: size, Bypass: BypassFull, CounterBits: bits},
		})
	}
	return cfgs
}

// AblationLoadRegs sweeps the number of load registers (the paper used 6,
// noting 4 sufficed for most cases) at a fixed RUU size (A3).
func AblationLoadRegs(size int) ([]AblationRow, error) {
	return serialRunner.AblationLoadRegs(context.Background(), size)
}

func ablationLoadRegsConfigs(size int) []labeledConfig {
	var cfgs []labeledConfig
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		cfg := Config{Engine: EngineRUU, Entries: size, Bypass: BypassFull}
		cfg.Machine.LoadRegs = n
		cfgs = append(cfgs, labeledConfig{fmt.Sprintf("%d load registers", n), cfg})
	}
	return cfgs
}
