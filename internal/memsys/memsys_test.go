package memsys

import (
	"testing"
	"testing/quick"
)

func TestMemoryBasics(t *testing.T) {
	m := NewMemory(1024)
	if m.Size() != 1024 {
		t.Fatalf("size = %d", m.Size())
	}
	if err := m.Write(5, 42); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read(5)
	if err != nil || v != 42 {
		t.Fatalf("read = %d, %v", v, err)
	}
	if NewMemory(0).Size() != DefaultWords {
		t.Fatal("default size not applied")
	}
}

func TestMemoryFaults(t *testing.T) {
	m := NewMemory(1024)
	if _, f := m.Read(-1); f == nil || f.Kind != FaultBadAddress {
		t.Fatalf("negative read fault = %v", f)
	}
	if _, f := m.Read(1024); f == nil || f.Kind != FaultBadAddress {
		t.Fatalf("oob read fault = %v", f)
	}
	if f := m.Write(9999, 1); f == nil || f.Kind != FaultBadAddress {
		t.Fatalf("oob write fault = %v", f)
	}
	if got := (&Fault{FaultPage, 77}).Error(); got != "memsys: page-fault at address 77" {
		t.Errorf("Error() = %q", got)
	}
	if FaultNone.String() != "none" || FaultBadAddress.String() != "bad-address" || FaultPage.String() != "page-fault" {
		t.Error("FaultKind strings wrong")
	}
}

func TestUnmapMap(t *testing.T) {
	m := NewMemory(4 * PageWords)
	addr := int64(PageWords + 5) // page 1
	m.Unmap(addr)
	if _, f := m.Read(addr); f == nil || f.Kind != FaultPage {
		t.Fatal("unmapped page readable")
	}
	if _, f := m.Read(addr - 6); f != nil {
		t.Fatal("page 0 affected by unmapping page 1")
	}
	if f := m.Write(int64(PageWords), 1); f == nil {
		t.Fatal("unmapped page writable")
	}
	// Poke/Peek bypass mapping for host-side setup.
	m.Poke(addr, 11)
	if m.Peek(addr) != 11 {
		t.Fatal("poke/peek blocked by mapping")
	}
	m.Map(addr)
	if _, f := m.Read(addr); f != nil {
		t.Fatal("mapped page still faulting")
	}
}

func TestCloneEqualFirstDiff(t *testing.T) {
	m := NewMemory(128)
	m.Poke(3, 7)
	m.Unmap(0)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Poke(100, 1)
	if m.Equal(c) {
		t.Fatal("diverged clone still equal")
	}
	if d := m.FirstDiff(c); d != 100 {
		t.Fatalf("FirstDiff = %d, want 100", d)
	}
	if d := m.FirstDiff(m.Clone()); d != -1 {
		t.Fatalf("FirstDiff identical = %d, want -1", d)
	}
	other := NewMemory(64)
	if m.Equal(other) {
		t.Fatal("different sizes equal")
	}
	if d := m.FirstDiff(NewMemory(127)); d < 0 {
		t.Fatal("size mismatch should yield a diff position")
	}
}

func TestLoadRegsMiss(t *testing.T) {
	lr := NewLoadRegs(2)
	b, toMem, ok := lr.Bind(100, false)
	if !ok || !toMem {
		t.Fatalf("fresh load: toMem=%v ok=%v", toMem, ok)
	}
	if lr.InUse() != 1 {
		t.Fatalf("in use = %d", lr.InUse())
	}
	if lr.MustForward(b) {
		t.Fatal("first op must not forward")
	}
	if _, ok := lr.Forward(b); ok {
		t.Fatal("first op has nothing to forward from")
	}
	lr.SetData(b, 7)
	lr.Release(b)
	if lr.InUse() != 0 {
		t.Fatal("register not freed")
	}
}

func TestLoadRegsStoreToLoadForwarding(t *testing.T) {
	lr := NewLoadRegs(4)
	st, toMem, ok := lr.Bind(100, true)
	if !ok || toMem {
		t.Fatalf("store bind: toMem=%v ok=%v", toMem, ok)
	}
	ld, toMem, ok := lr.Bind(100, false)
	if !ok {
		t.Fatal("load bind failed")
	}
	if toMem {
		t.Fatal("load hitting a pending store must not go to memory")
	}
	if !lr.MustForward(ld) {
		t.Fatal("chained load must forward")
	}
	if _, ok := lr.Forward(ld); ok {
		t.Fatal("forwarded before store data available")
	}
	lr.SetData(st, 42)
	v, ok := lr.Forward(ld)
	if !ok || v != 42 {
		t.Fatalf("forward = %d, %v", v, ok)
	}
	lr.Release(st)
	// Data must remain forwardable after the producer releases, until
	// the whole chain drains.
	v, ok = lr.Forward(ld)
	if !ok || v != 42 {
		t.Fatal("buffered data lost at producer release")
	}
	lr.Release(ld)
	if lr.InUse() != 0 {
		t.Fatal("register not freed after chain drained")
	}
}

func TestLoadRegsLoadLoadChain(t *testing.T) {
	lr := NewLoadRegs(4)
	l1, toMem, _ := lr.Bind(64, false)
	if !toMem {
		t.Fatal("l1 should access memory")
	}
	l2, toMem, _ := lr.Bind(64, false)
	if toMem {
		t.Fatal("l2 should forward from l1")
	}
	lr.SetData(l1, 9)
	if v, ok := lr.Forward(l2); !ok || v != 9 {
		t.Fatalf("l2 forward = %d,%v", v, ok)
	}
	lr.Release(l1)
	lr.Release(l2)
}

func TestLoadRegsMiddleLoadOrdering(t *testing.T) {
	// L1 (load), L2 (load), S (store), same address: L2 must take L1's
	// value even if the store's data arrives first.
	lr := NewLoadRegs(4)
	l1, _, _ := lr.Bind(10, false)
	l2, _, _ := lr.Bind(10, false)
	s, _, _ := lr.Bind(10, true)
	lr.SetData(s, 999) // store executes early
	if _, ok := lr.Forward(l2); ok {
		t.Fatal("L2 forwarded the younger store's data")
	}
	lr.SetData(l1, 5) // memory returns for L1
	if v, ok := lr.Forward(l2); !ok || v != 5 {
		t.Fatalf("L2 forward = %d,%v; want 5", v, ok)
	}
	// A load younger than the store sees the store's data.
	l3, _, _ := lr.Bind(10, false)
	if v, ok := lr.Forward(l3); !ok || v != 999 {
		t.Fatalf("L3 forward = %d,%v; want 999", v, ok)
	}
	lr.Release(l1)
	lr.Release(l2)
	lr.Release(s)
	lr.Release(l3)
	if lr.InUse() != 0 {
		t.Fatal("chain not drained")
	}
}

func TestLoadRegsExhaustion(t *testing.T) {
	lr := NewLoadRegs(2)
	b1, _, ok1 := lr.Bind(1, false)
	_, _, ok2 := lr.Bind(2, false)
	if !ok1 || !ok2 {
		t.Fatal("first two binds failed")
	}
	if _, _, ok := lr.Bind(3, false); ok {
		t.Fatal("third distinct address bound with 2 registers")
	}
	// Same address still binds (chains onto the existing register).
	if _, _, ok := lr.Bind(1, true); !ok {
		t.Fatal("same-address bind refused")
	}
	lr.SetData(b1, 0)
	lr.Release(b1)
	// b1's register is still held by the chained store.
	if _, _, ok := lr.Bind(3, false); ok {
		t.Fatal("register freed while chain pending")
	}
}

func TestLoadRegsSquash(t *testing.T) {
	lr := NewLoadRegs(2)
	s, _, _ := lr.Bind(5, true)
	lr.SetData(s, 77)
	l, _, _ := lr.Bind(5, false)
	if v, ok := lr.Forward(l); !ok || v != 77 {
		t.Fatalf("pre-squash forward = %d,%v", v, ok)
	}
	lr.Squash(l) // the load was speculative and is nullified
	// New (correct-path) load binds after the squash and still forwards
	// from the store.
	l2, _, _ := lr.Bind(5, false)
	if v, ok := lr.Forward(l2); !ok || v != 77 {
		t.Fatalf("post-squash forward = %d,%v", v, ok)
	}
	// Squashing the store invalidates its buffered data for later
	// forwarders.
	lr.Squash(s)
	if lr.MustForward(l2) {
		t.Fatal("l2 still chained to squashed producers")
	}
	lr.Release(l2)
	if lr.InUse() != 0 {
		t.Fatal("not drained")
	}
}

func TestLoadRegsDoubleReleasePanics(t *testing.T) {
	lr := NewLoadRegs(1)
	b, _, _ := lr.Bind(1, false)
	lr.SetData(b, 1)
	lr.Release(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	lr.Release(b)
}

func TestLoadRegsReset(t *testing.T) {
	lr := NewLoadRegs(3)
	lr.Bind(1, false)
	lr.Bind(2, true)
	lr.Reset()
	if lr.InUse() != 0 {
		t.Fatal("reset left registers busy")
	}
	if _, _, ok := lr.Bind(9, false); !ok {
		t.Fatal("bind after reset failed")
	}
}

// TestLoadRegsInvariantQuick drives a random bind/set/release sequence
// and checks the pool never leaks or double-frees (testing/quick over an
// operation script).
func TestLoadRegsInvariantQuick(t *testing.T) {
	type op struct {
		Addr  uint8
		Store bool
		Kill  bool
	}
	f := func(script []op) bool {
		lr := NewLoadRegs(4)
		live := make([]Binding, 0, 16)
		for _, o := range script {
			if o.Kill && len(live) > 0 {
				b := live[len(live)-1]
				live = live[:len(live)-1]
				lr.SetData(b, 1)
				lr.Release(b)
				continue
			}
			b, _, ok := lr.Bind(int64(o.Addr%6), o.Store)
			if ok {
				live = append(live, b)
			}
			if lr.InUse() > lr.Size() {
				return false
			}
		}
		for i := len(live) - 1; i >= 0; i-- {
			lr.Release(live[i])
		}
		return lr.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
