// Package memsys implements the memory side of the model architecture:
// the word-addressed memory image shared by the functional executor and
// the timing engines, and the paper's load-register mechanism for memory
// disambiguation and store-to-load forwarding (§3.2.1.2).
package memsys

import "fmt"

// PageWords is the page size, in 64-bit words, used for fault injection.
// Pages can be unmapped to make any access to them raise a page fault,
// which is how the precise-interrupt experiments trigger faults at
// controlled points.
const PageWords = 1024

// FaultKind classifies memory access failures.
type FaultKind uint8

const (
	// FaultNone means the access succeeded.
	FaultNone FaultKind = iota
	// FaultBadAddress means the address is outside the memory image.
	FaultBadAddress
	// FaultPage means the address falls in an unmapped page.
	FaultPage
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultBadAddress:
		return "bad-address"
	case FaultPage:
		return "page-fault"
	default:
		return "fault?"
	}
}

// Fault describes a failed memory access.
type Fault struct {
	Kind FaultKind
	Addr int64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("memsys: %s at address %d", f.Kind, f.Addr)
}

// Memory is a word-addressed (64-bit words) memory image with optional
// unmapped pages. The zero value is unusable; use NewMemory.
type Memory struct {
	words    []int64
	unmapped map[int]bool
}

// DefaultWords is the default memory size: 32Ki words, addressable by the
// 16-bit signed immediates of the ISA.
const DefaultWords = 1 << 15

// NewMemory returns a zeroed memory image of the given size in words.
func NewMemory(words int) *Memory {
	if words <= 0 {
		words = DefaultWords
	}
	return &Memory{words: make([]int64, words)}
}

// Size returns the memory size in words.
func (m *Memory) Size() int { return len(m.words) }

// Clone returns an independent deep copy of the memory image.
func (m *Memory) Clone() *Memory {
	c := &Memory{words: make([]int64, len(m.words))}
	copy(c.words, m.words)
	if len(m.unmapped) > 0 {
		c.unmapped = make(map[int]bool, len(m.unmapped))
		for p := range m.unmapped {
			c.unmapped[p] = true
		}
	}
	return c
}

// Equal reports whether two memory images hold identical words. Mapping
// state is ignored: it is environment, not architectural state.
func (m *Memory) Equal(o *Memory) bool {
	if len(m.words) != len(o.words) {
		return false
	}
	for i, w := range m.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// FirstDiff returns the first address at which two images differ, or -1.
func (m *Memory) FirstDiff(o *Memory) int64 {
	n := len(m.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if m.words[i] != o.words[i] {
			return int64(i)
		}
	}
	if len(m.words) != len(o.words) {
		return int64(n)
	}
	return -1
}

// Unmap marks the page containing addr as unmapped: subsequent accesses
// to it fault until Map is called.
func (m *Memory) Unmap(addr int64) {
	if m.unmapped == nil {
		m.unmapped = make(map[int]bool)
	}
	m.unmapped[int(addr)/PageWords] = true
}

// Map restores the page containing addr.
func (m *Memory) Map(addr int64) {
	delete(m.unmapped, int(addr)/PageWords)
}

// Check reports the fault, if any, that an access to addr would raise.
func (m *Memory) Check(addr int64) *Fault {
	if addr < 0 || addr >= int64(len(m.words)) {
		return &Fault{FaultBadAddress, addr}
	}
	if m.unmapped[int(addr)/PageWords] {
		return &Fault{FaultPage, addr}
	}
	return nil
}

// Read returns the word at addr, or a fault.
func (m *Memory) Read(addr int64) (int64, *Fault) {
	if f := m.Check(addr); f != nil {
		return 0, f
	}
	return m.words[addr], nil
}

// Write stores v at addr, or reports a fault.
func (m *Memory) Write(addr, v int64) *Fault {
	if f := m.Check(addr); f != nil {
		return f
	}
	m.words[addr] = v
	return nil
}

// Poke writes v at addr ignoring mapping (host-side initialisation).
// It panics on out-of-range addresses: that is a harness bug, not a
// simulated fault.
func (m *Memory) Poke(addr, v int64) {
	m.words[addr] = v
}

// Peek reads the word at addr ignoring mapping.
func (m *Memory) Peek(addr int64) int64 {
	return m.words[addr]
}
