package memsys

import (
	"fmt"

	"ruu/internal/isa"
)

// DefaultLoadRegs is the number of load registers the paper simulated
// ("we used 6 load registers though 4 were sufficient for most cases").
const DefaultLoadRegs = isa.PaperLoadRegs

// Binding identifies one memory operation's claim on a load register: the
// register slot and the operation's position in that register's chain of
// outstanding operations.
type Binding struct {
	Slot int
	Pos  int
}

// Invalid is the zero Binding, which refers to no load register.
var Invalid = Binding{Slot: -1}

// Valid reports whether the binding refers to a load register.
func (b Binding) Valid() bool { return b.Slot >= 0 }

type chainEntry struct {
	isStore   bool
	data      int64
	dataValid bool
	released  bool
	squashed  bool
}

type loadReg struct {
	addr    int64
	chain   []chainEntry
	pending int // entries neither released nor squashed
}

// LoadRegs is the pool of load registers of §3.2.1.2: a small associative
// file holding the addresses of currently active memory locations, with
// per-register tags that allow multiple outstanding operations to the
// same address.
//
// Each register keeps its outstanding operations in bind order (engines
// bind memory operations in program order, as the paper requires:
// "if the address of a load/store operation is unavailable, subsequent
// load/store instructions are not allowed to proceed"). A load bound to
// an already-active register is never submitted to memory: it forwards
// the value of the nearest earlier operation on the chain once that value
// is available. This yields store-to-load forwarding and same-address
// ordering with only a small associative search, as the paper budgets.
type LoadRegs struct {
	regs []loadReg
}

// NewLoadRegs returns a pool of n load registers (DefaultLoadRegs if n<=0).
func NewLoadRegs(n int) *LoadRegs {
	if n <= 0 {
		n = DefaultLoadRegs
	}
	return &LoadRegs{regs: make([]loadReg, n)}
}

// Size returns the number of load registers.
func (lr *LoadRegs) Size() int { return len(lr.regs) }

// Reset returns every load register to the free state.
func (lr *LoadRegs) Reset() {
	for i := range lr.regs {
		lr.regs[i] = loadReg{}
	}
}

// InUse returns the number of busy load registers.
func (lr *LoadRegs) InUse() int {
	n := 0
	for i := range lr.regs {
		if lr.regs[i].pending > 0 {
			n++
		}
	}
	return n
}

// Pending reports whether any operation is outstanding on the given
// address (i.e. whether a Bind to it would chain instead of accessing
// memory).
func (lr *LoadRegs) Pending(addr int64) bool {
	for i := range lr.regs {
		if lr.regs[i].pending > 0 && lr.regs[i].addr == addr {
			return true
		}
	}
	return false
}

// CanBind reports whether a Bind to addr would succeed: either an
// operation is already outstanding on the address (the bind chains) or a
// free register exists.
func (lr *LoadRegs) CanBind(addr int64) bool {
	for i := range lr.regs {
		if lr.regs[i].pending == 0 || lr.regs[i].addr == addr {
			return true
		}
	}
	return false
}

// Bind registers a memory operation whose effective address has just been
// computed. It returns the binding, whether the operation must be
// submitted to memory (true only for a load that found no pending
// operation on the address; stores never read memory), and ok=false if no
// load register could be obtained, in which case the operation must retry
// (the paper blocks issue in this case).
func (lr *LoadRegs) Bind(addr int64, isStore bool) (b Binding, toMemory bool, ok bool) {
	free := -1
	for i := range lr.regs {
		r := &lr.regs[i]
		if r.pending > 0 && r.addr == addr {
			r.chain = append(r.chain, chainEntry{isStore: isStore})
			r.pending++
			return Binding{i, len(r.chain) - 1}, false, true
		}
		if r.pending == 0 && free < 0 {
			free = i
		}
	}
	if free < 0 {
		return Invalid, false, false
	}
	r := &lr.regs[free]
	r.addr = addr
	r.chain = append(r.chain[:0], chainEntry{isStore: isStore}) // reuse freed capacity
	r.pending = 1
	return Binding{free, 0}, !isStore, true
}

func (lr *LoadRegs) entry(b Binding) *chainEntry {
	if !b.Valid() {
		return nil
	}
	r := &lr.regs[b.Slot]
	if b.Pos >= len(r.chain) {
		panic(fmt.Sprintf("memsys: binding %+v beyond chain length %d", b, len(r.chain)))
	}
	return &r.chain[b.Pos]
}

// SetData supplies the value produced by the bound operation: a store's
// data operand (available once the store has "executed"), or a load's
// value returned from memory. Later same-address operations forward it.
func (lr *LoadRegs) SetData(b Binding, v int64) {
	if e := lr.entry(b); e != nil {
		e.data = v
		e.dataValid = true
	}
}

// Forward returns the value a bound load should take from its register's
// chain: the data of the nearest earlier non-squashed operation. ok is
// false while that value is not yet available. Operations that were told
// to go to memory at Bind time (no earlier operation) never forward.
func (lr *LoadRegs) Forward(b Binding) (v int64, ok bool) {
	if !b.Valid() {
		return 0, false
	}
	r := &lr.regs[b.Slot]
	for i := b.Pos - 1; i >= 0; i-- {
		e := &r.chain[i]
		if e.squashed {
			continue
		}
		if e.dataValid {
			return e.data, true
		}
		return 0, false // producer identified but value still in flight
	}
	return 0, false
}

// MustForward reports whether the binding has an earlier non-squashed
// operation on its chain, i.e. whether the bound load's value will come
// from forwarding rather than from memory.
func (lr *LoadRegs) MustForward(b Binding) bool {
	if !b.Valid() {
		return false
	}
	r := &lr.regs[b.Slot]
	for i := b.Pos - 1; i >= 0; i-- {
		if !r.chain[i].squashed {
			return true
		}
	}
	return false
}

// Release ends a memory operation's claim (load: value written back;
// store: memory updated). The register becomes free when no pending
// operations remain bound to it. The released operation's buffered data
// stays available to later chained operations until then.
func (lr *LoadRegs) Release(b Binding) {
	lr.finish(b, false)
}

// Squash nullifies a speculatively bound operation: its buffered data is
// never forwarded and its claim is dropped.
func (lr *LoadRegs) Squash(b Binding) {
	lr.finish(b, true)
}

func (lr *LoadRegs) finish(b Binding, squash bool) {
	e := lr.entry(b)
	if e == nil {
		return
	}
	if e.released || e.squashed {
		panic(fmt.Sprintf("memsys: double release/squash of binding %+v", b))
	}
	if squash {
		e.squashed = true
		e.dataValid = false
	} else {
		e.released = true
	}
	r := &lr.regs[b.Slot]
	r.pending--
	if r.pending == 0 {
		// Free the register but keep the chain's backing array for the
		// next Bind.
		r.addr = 0
		r.chain = r.chain[:0]
	}
}
