// Package fabric shards sweep jobs across multiple ruuserve workers: a
// consistent-hash ring routes each content-addressed job key to a
// worker, and a thin coordinator forwards requests with retry,
// backoff, and health checking. Because job keys are content addresses
// and simulation is deterministic, every request is idempotent — a
// retry on a different worker returns byte-identical results, and the
// ring's stability under membership change keeps most keys pinned to
// the same worker (warm store) when one worker leaves or joins.
package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Key is a content-addressed job key, as produced by the scheduler.
type Key = [sha256.Size]byte

// DefaultReplicas is the virtual-node count per worker. 64 points per
// node keeps the load split within a few percent of even for small
// rings while the ring stays tiny (a handful of workers).
const DefaultReplicas = 64

// Ring is a consistent-hash ring over named nodes (worker URLs). Each
// node owns Replicas points on a uint64 circle; a key routes to the
// first point clockwise from its hash. Adding or removing one node
// moves only the keys that node owned — the property that keeps
// worker-local persistent stores warm under membership change.
//
// Ring is safe for concurrent use.
type Ring struct {
	mu       sync.Mutex
	replicas int
	points   []point         // sorted by hash
	nodes    map[string]bool // current members
}

// point is one virtual node: a position on the circle and its owner.
type point struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<= 0 means DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]bool)}
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{hash: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node and all its points (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports whether node is a current member.
func (r *Ring) Has(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nodes[node]
}

// Len returns the current member count.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.nodes)
}

// Lookup returns the node owning key, or false on an empty ring.
func (r *Ring) Lookup(key Key) (string, bool) {
	nodes := r.LookupN(key, 1)
	if len(nodes) == 0 {
		return "", false
	}
	return nodes[0], true
}

// LookupN returns up to n distinct nodes for key in preference order:
// the owner first, then successive distinct owners clockwise — the
// retry targets for a failed worker.
func (r *Ring) LookupN(key Key, n int) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	// The job key is already a SHA-256 content address — uniformly
	// distributed — so its first 8 bytes serve as the ring position.
	h := binary.BigEndian.Uint64(key[:8])
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// pointHash positions virtual node i of a member on the circle.
func pointHash(node string, i int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%d", node, i)))
	return binary.BigEndian.Uint64(sum[:8])
}
