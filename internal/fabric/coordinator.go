package fabric

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterises a Coordinator.
type Config struct {
	// Workers are the worker base URLs ("http://host:port"). At least
	// one is required.
	Workers []string
	// Replicas is the virtual-node count per worker (<= 0 means
	// DefaultReplicas).
	Replicas int
	// MaxAttempts bounds tries per request across distinct workers
	// (<= 0 means 3; clamped to the worker count by the ring).
	MaxAttempts int
	// BackoffBase and BackoffCap shape the capped exponential backoff
	// between attempts (defaults 50ms and 1s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HealthInterval is the period of the background health prober; 0
	// disables it (workers still leave the ring on connect failure,
	// but nothing re-admits them).
	HealthInterval time.Duration
	// HealthPath is the worker liveness endpoint (default "/healthz",
	// matching internal/server's route).
	HealthPath string
	// Client is the HTTP client for forwarding and probes (default: a
	// client with a 60s timeout).
	Client *http.Client
}

// Result is a worker's answer to a forwarded request.
type Result struct {
	Status int
	Body   []byte
	Worker string // which worker answered
}

// Stats is a snapshot of the coordinator's routing counters.
type Stats struct {
	// Routed counts requests entering Do; Retried counts extra
	// attempts beyond each request's first.
	Routed  int64 `json:"routed"`
	Retried int64 `json:"retried"`
}

// Coordinator forwards content-addressed jobs to workers selected by
// the consistent-hash ring. A connect failure removes the worker from
// the ring (the prober re-admits it once healthy) and the request is
// retried on the next distinct worker with capped exponential backoff
// and jitter; 5xx and 429 answers are retried the same way without
// ejecting the worker. Simulation requests are idempotent — identical
// keys produce identical bytes on any worker — which is what makes
// blind retry safe.
type Coordinator struct {
	cfg    Config
	ring   *Ring
	client *http.Client

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	routed  atomic.Int64
	retried atomic.Int64
}

// New builds a coordinator over cfg.Workers, all initially in the
// ring, and starts the health prober if configured. Close releases it.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fabric: no workers configured")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = time.Second
	}
	if cfg.HealthPath == "" {
		cfg.HealthPath = "/healthz"
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	c := &Coordinator{
		cfg:    cfg,
		ring:   NewRing(cfg.Replicas),
		client: client,
		stop:   make(chan struct{}),
	}
	for _, w := range cfg.Workers {
		c.ring.Add(w)
	}
	if cfg.HealthInterval > 0 {
		c.wg.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// Close stops the health prober. In-flight Do calls finish normally.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Workers returns each configured worker and whether it is currently
// in the ring (healthy).
func (c *Coordinator) Workers() map[string]bool {
	out := make(map[string]bool, len(c.cfg.Workers))
	for _, w := range c.cfg.Workers {
		out[w] = c.ring.Has(w)
	}
	return out
}

// Stats returns a snapshot of the routing counters.
func (c *Coordinator) Stats() Stats {
	return Stats{Routed: c.routed.Load(), Retried: c.retried.Load()}
}

// Do posts a JSON body to path on the worker owning key, retrying up
// to MaxAttempts distinct workers on connect failure, 5xx, or 429. Any
// other status is the worker's answer and is returned as-is. The error
// return is non-nil only when no worker produced an answer.
func (c *Coordinator) Do(ctx context.Context, key Key, path string, body []byte) (*Result, error) {
	c.routed.Add(1)
	workers := c.ring.LookupN(key, c.cfg.MaxAttempts)
	if len(workers) == 0 {
		// Every worker is ejected: fall back to the full configured
		// set so a transiently empty ring degrades to blind retry
		// rather than instant failure.
		workers = c.cfg.Workers
		if len(workers) > c.cfg.MaxAttempts {
			workers = workers[:c.cfg.MaxAttempts]
		}
	}
	var lastErr error
	for i, w := range workers {
		if i > 0 {
			c.retried.Add(1)
			if err := c.backoff(ctx, i); err != nil {
				return nil, err
			}
		}
		res, err := c.post(ctx, w, path, body)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// Connect-level failure: eject the worker; the prober
			// re-admits it once it answers health checks again.
			c.ring.Remove(w)
			lastErr = err
			continue
		}
		if res.Status >= 500 || res.Status == http.StatusTooManyRequests {
			lastErr = fmt.Errorf("fabric: worker %s: status %d", w, res.Status)
			continue
		}
		return res, nil
	}
	return nil, fmt.Errorf("fabric: all %d workers failed for key %x: %w", len(workers), key[:4], lastErr)
}

// post performs one forwarded request.
func (c *Coordinator) post(ctx context.Context, worker, path string, body []byte) (*Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return &Result{Status: resp.StatusCode, Body: data, Worker: worker}, nil
}

// backoff sleeps the capped-exponential, jittered delay for attempt i
// (>= 1), or returns early with the context's error.
func (c *Coordinator) backoff(ctx context.Context, attempt int) error {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffCap || d <= 0 {
		d = c.cfg.BackoffCap
	}
	// Full jitter in [d/2, d): desynchronizes retry storms without
	// collapsing the floor below half the intended delay.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// probeLoop periodically health-checks every configured worker,
// ejecting failures and re-admitting recoveries.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.probeAll()
		}
	}
}

// probeAll runs one health sweep.
func (c *Coordinator) probeAll() {
	for _, w := range c.cfg.Workers {
		resp, err := c.client.Get(w + c.cfg.HealthPath)
		healthy := err == nil && resp.StatusCode == http.StatusOK
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
		if healthy {
			c.ring.Add(w)
		} else {
			c.ring.Remove(w)
		}
	}
}
