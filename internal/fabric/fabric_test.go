package fabric

import (
	"context"
	"crypto/sha256"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func jobKey(i int) Key {
	return sha256.Sum256([]byte(fmt.Sprintf("job-%d", i)))
}

func TestRingRoutesDeterministically(t *testing.T) {
	r := NewRing(0)
	r.Add("a")
	r.Add("b")
	r.Add("c")
	for i := 0; i < 100; i++ {
		first, ok := r.Lookup(jobKey(i))
		if !ok {
			t.Fatal("lookup on populated ring failed")
		}
		again, _ := r.Lookup(jobKey(i))
		if first != again {
			t.Fatalf("key %d routed to %s then %s", i, first, again)
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"a", "b", "c"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		n, _ := r.Lookup(jobKey(i))
		counts[n]++
	}
	for _, n := range nodes {
		// With 64 vnodes each, shares should be within 2x of even.
		if counts[n] < keys/6 || counts[n] > keys/2+keys/6 {
			t.Fatalf("node %s owns %d of %d keys: %v", n, counts[n], keys, counts)
		}
	}
}

// TestRingStableUnderMembershipChange is the consistent-hashing
// property: removing one of three nodes must move only the keys that
// node owned, never reshuffle keys between the survivors.
func TestRingStableUnderMembershipChange(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	before := map[int]string{}
	for i := 0; i < 1000; i++ {
		before[i], _ = r.Lookup(jobKey(i))
	}
	r.Remove("b")
	moved := 0
	for i := 0; i < 1000; i++ {
		after, _ := r.Lookup(jobKey(i))
		if before[i] == "b" {
			if after == "b" {
				t.Fatalf("key %d still routes to removed node", i)
			}
			continue
		}
		if after != before[i] {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving nodes", moved)
	}
	// Re-adding restores the original ownership exactly.
	r.Add("b")
	for i := 0; i < 1000; i++ {
		if after, _ := r.Lookup(jobKey(i)); after != before[i] {
			t.Fatalf("key %d owned by %s after re-add, was %s", i, after, before[i])
		}
	}
}

func TestLookupNDistinct(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	for i := 0; i < 50; i++ {
		got := r.LookupN(jobKey(i), 3)
		if len(got) != 3 {
			t.Fatalf("LookupN returned %d nodes, want 3", len(got))
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("LookupN repeated node %s: %v", n, got)
			}
			seen[n] = true
		}
	}
	if got := r.LookupN(jobKey(0), 10); len(got) != 3 {
		t.Fatalf("LookupN(10) on 3-node ring returned %d", len(got))
	}
	if got := NewRing(0).LookupN(jobKey(0), 3); got != nil {
		t.Fatalf("LookupN on empty ring returned %v", got)
	}
}

func fastCfg(workers ...string) Config {
	return Config{
		Workers:     workers,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
	}
}

func TestCoordinatorForwards(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "answer for %s", r.URL.Path)
	}))
	defer srv.Close()

	c, err := New(fastCfg(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Do(context.Background(), jobKey(1), "/v1/simulate", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || string(res.Body) != "answer for /v1/simulate" {
		t.Fatalf("got %d %q", res.Status, res.Body)
	}
	if st := c.Stats(); st.Routed != 1 || st.Retried != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCoordinatorRetriesOn5xx: a worker answering 500 must be retried
// on a different worker, and the retry counted.
func TestCoordinatorRetriesOn5xx(t *testing.T) {
	var sickHits atomic.Int64
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sickHits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer sick.Close()
	well := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer well.Close()

	c, err := New(fastCfg(sick.URL, well.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Run enough keys that some must land on the sick worker first.
	healed := 0
	for i := 0; i < 20; i++ {
		res, err := c.Do(context.Background(), jobKey(i), "/x", nil)
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if string(res.Body) != "ok" {
			t.Fatalf("key %d: answered by sick worker: %d %q", i, res.Status, res.Body)
		}
		if res.Worker == well.URL && sickHits.Load() > 0 {
			healed++
		}
	}
	st := c.Stats()
	if st.Routed != 20 {
		t.Fatalf("routed = %d, want 20", st.Routed)
	}
	if sickHits.Load() == 0 || st.Retried == 0 {
		t.Fatalf("sick worker never tried (hits=%d retried=%d) — ring degenerate?", sickHits.Load(), st.Retried)
	}
	// 5xx must NOT eject the worker from the ring.
	if !c.ring.Has(sick.URL) {
		t.Fatal("5xx ejected worker from ring")
	}
}

// TestCoordinatorEjectsOnConnectFailure: a dead worker leaves the ring
// after the first connect failure, so later keys route straight to the
// survivor.
func TestCoordinatorEjectsOnConnectFailure(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // now refuses connections
	well := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer well.Close()

	c, err := New(fastCfg(dead.URL, well.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		res, err := c.Do(context.Background(), jobKey(i), "/x", nil)
		if err != nil || string(res.Body) != "ok" {
			t.Fatalf("key %d: res=%v err=%v", i, res, err)
		}
	}
	if c.ring.Has(dead.URL) {
		t.Fatal("dead worker still in ring")
	}
	if h := c.Workers(); h[dead.URL] || !h[well.URL] {
		t.Fatalf("health map wrong: %v", h)
	}
}

// TestCoordinatorAllWorkersDown: every attempt fails -> error, not a
// hang.
func TestCoordinatorAllWorkersDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	c, err := New(fastCfg(dead.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do(context.Background(), jobKey(1), "/x", nil); err == nil {
		t.Fatal("Do against dead fleet succeeded")
	}
	// The ring is now empty; the fallback path must still return an
	// error promptly rather than panic.
	if _, err := c.Do(context.Background(), jobKey(2), "/x", nil); err == nil {
		t.Fatal("Do on empty ring succeeded")
	}
}

func TestCoordinatorHonorsContext(t *testing.T) {
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer stall.Close()
	c, err := New(fastCfg(stall.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Do(ctx, jobKey(1), "/x", nil); err == nil {
		t.Fatal("Do outlived its context")
	}
}

// TestProberReadmitsRecoveredWorker: a worker ejected by connect
// failure rejoins the ring once the health prober sees it answer.
func TestProberReadmitsRecoveredWorker(t *testing.T) {
	var down atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer flaky.Close()

	cfg := fastCfg(flaky.URL)
	cfg.HealthInterval = 5 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	down.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for c.ring.Has(flaky.URL) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.ring.Has(flaky.URL) {
		t.Fatal("prober never ejected the sick worker")
	}
	down.Store(false)
	for !c.ring.Has(flaky.URL) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !c.ring.Has(flaky.URL) {
		t.Fatal("prober never re-admitted the recovered worker")
	}
}
