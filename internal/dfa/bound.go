package dfa

import (
	"fmt"

	"ruu/internal/exec"
	"ruu/internal/fu"
	"ruu/internal/isa"
)

// BoundConfig parameterises the dataflow-limit oracle.
type BoundConfig struct {
	// Lat are the functional-unit latencies weighting the dependence
	// edges (fu.DefaultLatencies when zero).
	Lat fu.Latencies
	// FwdLatency, when positive, caps the effective load latency at
	// min(Lat[UnitMem], FwdLatency): the machine's load registers can
	// satisfy a load by forwarding in FwdLatency cycles, so a bound
	// weighting every load at the full memory latency would not be a
	// lower bound. Zero disables the cap (no forwarding model).
	FwdLatency int
	// MaxInstr bounds the replay (exec.DefaultMaxInstructions if <= 0).
	MaxInstr int64
}

// Bound is the dataflow limit of one dynamic execution: the longest
// path through the dynamic register-dependence DAG, weighted by
// functional-unit latencies. No engine of the model architecture can
// finish the program in fewer cycles:
//
//   - every register RAW chain needs at least the sum of the producers'
//     latencies (the engine timing contract: a consumer completes no
//     earlier than its producer's completion plus its own latency),
//   - the single decode stage handles at most one instruction per cycle
//     in program order, so the k-th dynamic instruction starts no
//     earlier than cycle k and the run needs at least DynInstrs cycles,
//   - every taken branch redirects fetch, which costs at least one dead
//     fetch cycle under any configuration (machine.Config clamps
//     TakenPenalty and PredictedTakenBubble to >= 1), pushing every
//     later instruction's earliest start one cycle further out.
//
// The bound deliberately ignores the single result bus, branch
// penalties, structural stalls, and memory dependencies — all of these
// only slow a real engine down, so omitting them keeps the bound sound
// (a true lower bound) at the price of looseness. See docs/DFA.md.
type Bound struct {
	// CritPath is the latency-weighted longest path (cycles).
	CritPath int64
	// DynInstrs is the number of dynamic instructions executed.
	DynInstrs int64
	// Cycles is the dataflow limit: max(CritPath, DynInstrs).
	Cycles int64
	// Trap is non-nil if execution stopped at a trap; the bound then
	// covers the executed prefix.
	Trap *exec.Trap
}

// Speedup returns the largest speedup over baseCycles any engine could
// reach on this program: baseCycles / Cycles.
func (b Bound) Speedup(baseCycles int64) float64 {
	if b.Cycles == 0 {
		return 0
	}
	return float64(baseCycles) / float64(b.Cycles)
}

// ComputeBound replays the program on the functional executor, starting
// from st (which it mutates), and computes the dataflow limit over the
// same dynamic instruction stream every engine executes: ready[r] is
// the completion time of register r's latest writer, each instruction
// completes at max(ready of its sources) plus its unit latency, and the
// critical path is the maximum completion over the whole trace.
func ComputeBound(p *isa.Program, st *exec.State, cfg BoundConfig) (Bound, error) {
	if cfg.Lat == (fu.Latencies{}) {
		cfg.Lat = fu.DefaultLatencies()
	}
	if cfg.MaxInstr <= 0 {
		cfg.MaxInstr = exec.DefaultMaxInstructions
	}
	memLat := cfg.Lat[isa.UnitMem]
	if cfg.FwdLatency > 0 && cfg.FwdLatency < memLat {
		memLat = cfg.FwdLatency
	}

	var (
		b     Bound
		ready [isa.NumRegs]int64
		srcs  [2]isa.Reg
		pos   int64 // earliest decode slot of the next instruction
	)
	for !st.Halted {
		if b.DynInstrs >= cfg.MaxInstr {
			return b, fmt.Errorf("dfa: bound instruction budget %d exhausted at pc=%d", cfg.MaxInstr, st.PC)
		}
		pc := st.PC
		ins, trap := st.Step(p)
		if trap != nil {
			b.Trap = trap
			break
		}
		b.DynInstrs++

		// An instruction cannot leave the single decode stage before its
		// slot in the in-order stream: one instruction per cycle, plus at
		// least one dead fetch cycle after every taken branch. (A
		// conditional branch whose target is its own fall-through cannot
		// be told apart from an untaken one here; skipping it only
		// loosens the bound.)
		start := pos
		pos++
		if ins.Op == isa.Jmp || (ins.Op.IsConditional() && st.PC != pc+1) {
			pos++
		}
		for _, r := range ins.Srcs(srcs[:0]) {
			if t := ready[r.Flat()]; t > start {
				start = t
			}
		}
		unit := ins.Op.Info().Unit
		var lat int64
		if unit == isa.UnitMem {
			// Loads may be satisfied by load-register forwarding, so the
			// dependence edge is only as heavy as the cheaper path.
			lat = int64(memLat)
		} else if unit != isa.UnitNone {
			lat = int64(cfg.Lat[unit])
		}
		done := start + lat
		if done > b.CritPath {
			b.CritPath = done
		}
		if d, ok := ins.Dst(); ok {
			ready[d.Flat()] = done
		}
	}
	b.Cycles = b.CritPath
	if pos > b.Cycles {
		b.Cycles = pos
	}
	return b, nil
}
