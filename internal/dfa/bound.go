package dfa

import (
	"fmt"

	"ruu/internal/exec"
	"ruu/internal/fu"
	"ruu/internal/isa"
)

// BoundConfig parameterises the dataflow-limit oracle.
type BoundConfig struct {
	// Lat are the functional-unit latencies weighting the dependence
	// edges (fu.DefaultLatencies when zero).
	Lat fu.Latencies
	// FwdLatency, when positive, caps the effective load latency at
	// min(Lat[UnitMem], FwdLatency): the machine's load registers can
	// satisfy a load by forwarding in FwdLatency cycles, so a bound
	// weighting every load at the full memory latency would not be a
	// lower bound. Zero disables the cap (no forwarding model).
	FwdLatency int
	// MaxInstr bounds the replay (exec.DefaultMaxInstructions if <= 0).
	MaxInstr int64
	// NoMemDep disables the memory-dependence tightening (store→load
	// edges through the same address, and the full memory latency on
	// first-touch loads), reproducing the looser register-only bound.
	// The zero value keeps the tightening on: the bound is still a true
	// lower bound (see below) and strictly tighter wherever loads
	// stream fresh addresses or read stored recurrences.
	NoMemDep bool
}

// Bound is the dataflow limit of one dynamic execution: the longest
// path through the dynamic register-dependence DAG, weighted by
// functional-unit latencies. No engine of the model architecture can
// finish the program in fewer cycles:
//
//   - every register RAW chain needs at least the sum of the producers'
//     latencies (the engine timing contract: a consumer completes no
//     earlier than its producer's completion plus its own latency),
//   - the single decode stage handles at most one instruction per cycle
//     in program order, so the k-th dynamic instruction starts no
//     earlier than cycle k and the run needs at least DynInstrs cycles,
//   - every taken branch redirects fetch, which costs at least one dead
//     fetch cycle under any configuration (machine.Config clamps
//     TakenPenalty and PredictedTakenBubble to >= 1), pushing every
//     later instruction's earliest start one cycle further out.
//
// Memory dependencies are included two ways, both through the
// dynamically exact addresses of the replay:
//
//   - store→load edges: a load returning a value some store wrote
//     cannot start before the store knew both its data and its address,
//     so the load's start is constrained to that ready time (its
//     latency stays capped at min(Lat[UnitMem], FwdLatency), the
//     cheaper of the memory and forwarding paths).
//   - first-touch loads pay the full memory latency: load-register
//     forwarding (memsys.LoadRegs) can only chain onto an earlier
//     operation on the same address, so the first access to an address
//     necessarily returns the value from memory in Lat[UnitMem] cycles
//     — the FwdLatency cap cannot apply to it on any engine. (Squashed
//     wrong-path operations never forward, so speculation cannot beat
//     this either.)
//
// BoundConfig.NoMemDep recovers the old register-only bound.
//
// The bound still deliberately ignores the single result bus, branch
// penalties, and structural stalls — these only slow a real engine
// down, so omitting them keeps the bound sound (a true lower bound) at
// the price of looseness. See docs/DFA.md.
type Bound struct {
	// CritPath is the latency-weighted longest path (cycles).
	CritPath int64
	// DynInstrs is the number of dynamic instructions executed.
	DynInstrs int64
	// Cycles is the dataflow limit: max(CritPath, DynInstrs).
	Cycles int64
	// MemDepEdges counts the store→load dependence edges the replay
	// found (loads whose address a prior store wrote). Zero when
	// BoundConfig.NoMemDep is set.
	MemDepEdges int64
	// Trap is non-nil if execution stopped at a trap; the bound then
	// covers the executed prefix.
	Trap *exec.Trap
}

// Speedup returns the largest speedup over baseCycles any engine could
// reach on this program: baseCycles / Cycles.
func (b Bound) Speedup(baseCycles int64) float64 {
	if b.Cycles == 0 {
		return 0
	}
	return float64(baseCycles) / float64(b.Cycles)
}

// ComputeBound replays the program on the functional executor, starting
// from st (which it mutates), and computes the dataflow limit over the
// same dynamic instruction stream every engine executes: ready[r] is
// the completion time of register r's latest writer, each instruction
// completes at max(ready of its sources) plus its unit latency, and the
// critical path is the maximum completion over the whole trace.
func ComputeBound(p *isa.Program, st *exec.State, cfg BoundConfig) (Bound, error) {
	if cfg.Lat == (fu.Latencies{}) {
		cfg.Lat = fu.DefaultLatencies()
	}
	if cfg.MaxInstr <= 0 {
		cfg.MaxInstr = exec.DefaultMaxInstructions
	}
	memLat := cfg.Lat[isa.UnitMem]
	if cfg.FwdLatency > 0 && cfg.FwdLatency < memLat {
		memLat = cfg.FwdLatency
	}

	var (
		b     Bound
		ready [isa.NumRegs]int64
		srcs  [2]isa.Reg
		pos   int64 // earliest decode slot of the next instruction
	)
	// storeReady[a] tracks address a's memory-dependence state:
	// untouched (no access yet), touchedByLoad (loads only — later
	// loads may forward, no start constraint), or >= 0, the time the
	// latest store to a had both its data and its address. One setup
	// allocation sized to the memory image; the replay loop itself
	// stays allocation-free.
	const (
		untouched     = int64(-1)
		touchedByLoad = int64(-2)
	)
	var storeReady []int64
	if !cfg.NoMemDep {
		storeReady = make([]int64, st.Mem.Size()) //ruulint:ok hotpathalloc one-time setup before the replay loop, sized by the memory image
		for i := range storeReady {
			storeReady[i] = untouched
		}
	}
	for !st.Halted {
		if b.DynInstrs >= cfg.MaxInstr {
			return b, fmt.Errorf("dfa: bound instruction budget %d exhausted at pc=%d", cfg.MaxInstr, st.PC)
		}
		pc := st.PC
		// The effective address must be sampled before the step: a load
		// may overwrite its own base register.
		addr := int64(-1)
		if storeReady != nil && pc >= 0 && pc < len(p.Instructions) {
			if pre := p.Instructions[pc]; pre.Op.IsMem() {
				addr = exec.EffAddr(pre, st.Reg(isa.A(int(pre.J))))
			}
		}
		ins, trap := st.Step(p)
		if trap != nil {
			b.Trap = trap
			break
		}
		b.DynInstrs++

		// An instruction cannot leave the single decode stage before its
		// slot in the in-order stream: one instruction per cycle, plus at
		// least one dead fetch cycle after every taken branch. (A
		// conditional branch whose target is its own fall-through cannot
		// be told apart from an untaken one here; skipping it only
		// loosens the bound.)
		start := pos
		pos++
		if ins.Op == isa.Jmp || (ins.Op.IsConditional() && st.PC != pc+1) {
			pos++
		}
		for _, r := range ins.Srcs(srcs[:0]) {
			if t := ready[r.Flat()]; t > start {
				start = t
			}
		}
		firstTouch := false
		if addr >= 0 && addr < int64(len(storeReady)) {
			info := ins.Op.Info()
			if info.Load {
				switch t := storeReady[addr]; {
				case t >= 0:
					// The load returns the latest store's data: it
					// cannot start before that value existed.
					b.MemDepEdges++
					if t > start {
						start = t
					}
				case t == untouched:
					// Nothing to forward from: the value comes from
					// memory at the full latency.
					firstTouch = true
					storeReady[addr] = touchedByLoad
				}
			} else if info.Store {
				// The stored value cannot be delivered to any load
				// before the store knows both its data and its address.
				t := ready[isa.Reg{File: info.File, Idx: ins.I}.Flat()]
				if tb := ready[isa.A(int(ins.J)).Flat()]; tb > t {
					t = tb
				}
				storeReady[addr] = t
			}
		}
		unit := ins.Op.Info().Unit
		var lat int64
		if unit == isa.UnitMem {
			// Loads may be satisfied by load-register forwarding, so the
			// dependence edge is only as heavy as the cheaper path —
			// except on the address's first touch, where no forwarding
			// source can exist.
			lat = int64(memLat)
			if firstTouch {
				lat = int64(cfg.Lat[isa.UnitMem])
			}
		} else if unit != isa.UnitNone {
			lat = int64(cfg.Lat[unit])
		}
		done := start + lat
		if done > b.CritPath {
			b.CritPath = done
		}
		if d, ok := ins.Dst(); ok {
			ready[d.Flat()] = done
		}
	}
	b.Cycles = b.CritPath
	if pos > b.Cycles {
		b.Cycles = pos
	}
	return b, nil
}
