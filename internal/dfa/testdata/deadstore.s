; The first write to A1 is overwritten before anything reads it.
    lai   A1, 1         ; want dead-store
    lai   A1, 2
    movsa S1, A1
    halt
