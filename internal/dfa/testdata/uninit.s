; Reads of registers no path has written: the movsa reads A2 and the
; conditional branch reads its condition register A0, both untouched.
    movsa S1, A2        ; want uninit-read
    jaz   done          ; want uninit-read
    lai   A1, 1
done:
    halt
