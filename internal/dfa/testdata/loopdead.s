; T0 is written every iteration but never read by any instruction: the
; value survives to the final state, so it is not a dead store, but no
; code in or after the loop consumes it.
    lai   A0, 3
    lsi   S1, 7
loop:
    movts T0, S1        ; want loop-dead-write
    addai A0, A0, -1
    janz  loop
    halt
