; No CFG path from the entry reaches the nop behind the unconditional jmp.
    jmp   end
    nop                 ; want unreachable
end:
    halt
