package dfa_test

import (
	"reflect"
	"testing"

	"ruu/internal/asm"
	"ruu/internal/dfa"
	"ruu/internal/exec"
	"ruu/internal/isa"
)

// prog assembles a test program.
func prog(t *testing.T, src string) *isa.Program {
	t.Helper()
	u, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return u.Prog
}

func TestCFGLoop(t *testing.T) {
	p := prog(t, `
    lai   A0, 2
loop:
    addai A0, A0, -1
    janz  loop
    halt
`)
	a := dfa.Analyze(p)
	wantSuccs := [][]int{{1}, {2}, {1, 3}, nil}
	for i, want := range wantSuccs {
		if got := a.Succs[i]; !reflect.DeepEqual(got, want) {
			t.Errorf("Succs[%d] = %v, want %v", i, got, want)
		}
	}
	wantPreds := [][]int{nil, {0, 2}, {1}, {2}}
	for i, want := range wantPreds {
		if got := a.Preds[i]; !reflect.DeepEqual(got, want) {
			t.Errorf("Preds[%d] = %v, want %v", i, got, want)
		}
	}
	for i := range p.Instructions {
		if !a.Reachable[i] {
			t.Errorf("instruction %d unexpectedly unreachable", i)
		}
	}
	if want := []dfa.Loop{{Head: 1, Back: 2}}; !reflect.DeepEqual(a.Loops, want) {
		t.Errorf("Loops = %v, want %v", a.Loops, want)
	}
	if !a.InLoop(1) || !a.InLoop(2) || a.InLoop(0) || a.InLoop(3) {
		t.Errorf("InLoop membership wrong: %v", a.Loops)
	}
}

func TestCFGUnreachable(t *testing.T) {
	p := prog(t, `
    jmp over
    nop
over:
    halt
`)
	a := dfa.Analyze(p)
	if a.Reachable[1] {
		t.Error("instruction 1 (behind jmp) should be unreachable")
	}
	if !a.Reachable[2] {
		t.Error("jump target should be reachable")
	}
}

func TestDefUseChains(t *testing.T) {
	p := prog(t, `
    lai   A1, 5
    addai A2, A1, 1
    adda  A3, A1, A2
    halt
`)
	a := dfa.Analyze(p)
	if want := []int{1, 2}; !reflect.DeepEqual(a.UsesOf[0], want) {
		t.Errorf("UsesOf[0] = %v, want %v", a.UsesOf[0], want)
	}
	if want := []int{2}; !reflect.DeepEqual(a.UsesOf[1], want) {
		t.Errorf("UsesOf[1] = %v, want %v", a.UsesOf[1], want)
	}
	if len(a.UsesOf[2]) != 0 {
		t.Errorf("UsesOf[2] = %v, want none (A3 never read)", a.UsesOf[2])
	}
	if got := a.DefUseEdges(); got != 3 {
		t.Errorf("DefUseEdges = %d, want 3", got)
	}
}

func TestDefUseThroughLoop(t *testing.T) {
	// A1 is defined before the loop (instr 0) and inside it (instr 3);
	// both definitions reach the loop-body read at instr 2.
	p := prog(t, `
    lai   A1, 1
    lai   A0, 2
loop:
    addai A2, A1, 1
    addai A1, A2, 1
    addai A0, A0, -1
    janz  loop
    halt
`)
	a := dfa.Analyze(p)
	if want := []int{2}; !reflect.DeepEqual(a.UsesOf[0], want) {
		t.Errorf("UsesOf[0] = %v, want %v (pre-loop def reaches body read)", a.UsesOf[0], want)
	}
	found := false
	for _, u := range a.UsesOf[3] {
		if u == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("UsesOf[3] = %v, want it to include 2 (loop-carried def reaches next iteration)", a.UsesOf[3])
	}
}

func TestComputeBoundChain(t *testing.T) {
	// Straight line: the fmul waits for both immediates, the fadd for
	// the fmul; with Move=1, FMul=7, FAdd=6 the chain completes at 15.
	p := prog(t, `
    lsi  S1, 2
    lsi  S2, 3
    fmul S3, S1, S2
    fadd S4, S3, S3
    halt
`)
	b, err := dfa.ComputeBound(p, exec.NewState(nil), dfa.BoundConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if b.DynInstrs != 5 {
		t.Errorf("DynInstrs = %d, want 5", b.DynInstrs)
	}
	if b.CritPath != 15 {
		t.Errorf("CritPath = %d, want 15 (1 + 7 + 6 through the fmul/fadd chain, fmul start gated by the second lsi)", b.CritPath)
	}
	if b.Cycles != 15 {
		t.Errorf("Cycles = %d, want 15", b.Cycles)
	}
}

func TestComputeBoundTakenBranchBubble(t *testing.T) {
	// Two-trip countdown loop: 6 dynamic instructions, one taken branch,
	// so the serial-issue floor is 7 while the A0 chain reaches 6.
	p := prog(t, `
    lai   A0, 2
loop:
    addai A0, A0, -1
    janz  loop
    halt
`)
	b, err := dfa.ComputeBound(p, exec.NewState(nil), dfa.BoundConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if b.DynInstrs != 6 {
		t.Errorf("DynInstrs = %d, want 6", b.DynInstrs)
	}
	if b.CritPath != 6 {
		t.Errorf("CritPath = %d, want 6", b.CritPath)
	}
	if b.Cycles != 7 {
		t.Errorf("Cycles = %d, want 7 (6 instructions + 1 taken-branch bubble)", b.Cycles)
	}
}

func TestComputeBoundForwardingCap(t *testing.T) {
	src := `
    lai   A1, 0
    lda   A2, 100(A1)
    addai A3, A2, 1
    halt
`
	full, err := dfa.ComputeBound(prog(t, src), exec.NewState(nil), dfa.BoundConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := dfa.ComputeBound(prog(t, src), exec.NewState(nil), dfa.BoundConfig{FwdLatency: 2, NoMemDep: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.CritPath != 8 {
		t.Errorf("full-latency CritPath = %d, want 8 (1 + 5 + 2)", full.CritPath)
	}
	if fwd.CritPath != 5 {
		t.Errorf("forward-capped CritPath = %d, want 5 (1 + 2 + 2)", fwd.CritPath)
	}
	// With the memory-dependence tightening on (the default), the first
	// touch of an address cannot forward — there is nothing to forward
	// from — so the load pays the full memory latency despite the cap.
	tight, err := dfa.ComputeBound(prog(t, src), exec.NewState(nil), dfa.BoundConfig{FwdLatency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tight.CritPath != 8 {
		t.Errorf("tightened first-touch CritPath = %d, want 8 (1 + 5 + 2)", tight.CritPath)
	}
	// A repeat access to the same address can forward and keeps the cap:
	// the second load completes at 2 + 2 = 4 while the first-touch load
	// still dominates the path at 1 + 5 = 6.
	src2 := `
    lai   A1, 0
    lda   A2, 100(A1)
    lda   A4, 100(A1)
    addai A3, A4, 1
    halt
`
	repeat, err := dfa.ComputeBound(prog(t, src2), exec.NewState(nil), dfa.BoundConfig{FwdLatency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if repeat.CritPath != 6 {
		t.Errorf("repeat-touch CritPath = %d, want 6 (first-touch load 1 + 5)", repeat.CritPath)
	}
}

// TestComputeBoundStoreLoadEdge pins the store→load dependence: a load
// of an address a store wrote cannot start before the store's data and
// address existed, even though no register connects them.
func TestComputeBoundStoreLoadEdge(t *testing.T) {
	// A long A-chain makes the stored data late; the load of the stored
	// address then inherits that time through memory alone.
	src := `
    lai   A1, 0
    mula  A2, A1, A1
    mula  A2, A2, A2
    mula  A2, A2, A2
    sta   A2, 50(A1)
    lda   A3, 50(A1)
    addai A4, A3, 1
    halt
`
	tight, err := dfa.ComputeBound(prog(t, src), exec.NewState(nil), dfa.BoundConfig{})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := dfa.ComputeBound(prog(t, src), exec.NewState(nil), dfa.BoundConfig{NoMemDep: true})
	if err != nil {
		t.Fatal(err)
	}
	if tight.MemDepEdges != 1 {
		t.Errorf("MemDepEdges = %d, want 1", tight.MemDepEdges)
	}
	if loose.MemDepEdges != 0 {
		t.Errorf("NoMemDep MemDepEdges = %d, want 0", loose.MemDepEdges)
	}
	if tight.CritPath <= loose.CritPath {
		t.Errorf("store→load edge did not tighten: tight %d, loose %d", tight.CritPath, loose.CritPath)
	}
	// The load starts no earlier than the mul chain's completion (1 for
	// the lai plus three 6-cycle multiplies = 19) and takes the full
	// memory latency; its consumer adds 2.
	if want := int64(1 + 3*6 + 5 + 2); tight.CritPath != want {
		t.Errorf("tight CritPath = %d, want %d", tight.CritPath, want)
	}
}

func TestComputeCensus(t *testing.T) {
	p := prog(t, `
    lai   A1, 1
    addai A1, A1, 1
    movsa S1, A1
    lai   A1, 9
    halt
`)
	c, err := dfa.ComputeCensus(p, exec.NewState(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := dfa.Census{DynInstrs: 5, RAW: 2, WAR: 1, WAW: 2}
	if c != want {
		t.Errorf("Census = %+v, want %+v", c, want)
	}
}

func TestComputeCensusSelfReadIsNotWAR(t *testing.T) {
	// addai A1, A1, 1: the instruction's own operand read must not pair
	// with its own write as a WAR hazard.
	p := prog(t, `
    lai   A1, 1
    addai A1, A1, 1
    halt
`)
	c, err := dfa.ComputeCensus(p, exec.NewState(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.WAR != 0 {
		t.Errorf("WAR = %d, want 0 (self-read is not an anti dependence)", c.WAR)
	}
	if c.WAW != 1 || c.RAW != 1 {
		t.Errorf("RAW/WAW = %d/%d, want 1/1", c.RAW, c.WAW)
	}
}

func TestBoundSpeedup(t *testing.T) {
	b := dfa.Bound{Cycles: 100}
	if got := b.Speedup(250); got != 2.5 {
		t.Errorf("Speedup = %v, want 2.5", got)
	}
}

func TestRuleByName(t *testing.T) {
	for r := dfa.Rule(0); r < dfa.NumRules; r++ {
		got, ok := dfa.RuleByName(r.String())
		if !ok || got != r {
			t.Errorf("RuleByName(%q) = %v, %v", r.String(), got, ok)
		}
	}
	if _, ok := dfa.RuleByName("no-such-rule"); ok {
		t.Error("RuleByName accepted an unknown name")
	}
}
