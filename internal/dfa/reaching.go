package dfa

import (
	"math/bits"

	"ruu/internal/isa"
)

// The reaching-definitions analysis works at instruction granularity
// over a definition ID space with two halves: IDs [0, n) are the real
// definitions (instruction i defining its Dst register has ID i), and
// IDs [n, n+isa.NumRegs) are synthetic entry definitions, one per
// architectural register, modelling the register's value at program
// entry. An entry definition reaching a read means the read can observe
// a value no instruction of the program wrote — the uninitialized-read
// lint condition.

// bitset is a fixed-capacity bit vector over definition IDs.
type bitset []uint64

func newBitset(nbits int) bitset { return make(bitset, (nbits+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// or folds o into b and reports whether b changed.
func (b bitset) or(o bitset) bool {
	changed := false
	for w := range b {
		if n := b[w] | o[w]; n != b[w] {
			b[w] = n
			changed = true
		}
	}
	return changed
}

// andNot clears every bit of o from b.
func (b bitset) andNot(o bitset) {
	for w := range b {
		b[w] &^= o[w]
	}
}

func (b bitset) copyFrom(o bitset) { copy(b, o) }

func (b bitset) equal(o bitset) bool {
	for w := range b {
		if b[w] != o[w] {
			return false
		}
	}
	return true
}

// clear zeroes the set.
func (b bitset) clear() {
	for w := range b {
		b[w] = 0
	}
}

// reachingDefs computes IN[i] (the definitions reaching instruction i)
// and OUT[i] for every instruction by iterating the classic forward
// dataflow equations to a fixpoint:
//
//	IN[i]  = ∪ OUT[p] over CFG predecessors p   (entry defs at i=0)
//	OUT[i] = (IN[i] \ kill[i]) ∪ gen[i]
func (a *Analysis) reachingDefs() {
	n := len(a.Prog.Instructions)
	nd := n + isa.NumRegs

	// defMask[r] = every definition ID (real or entry) of flat register r.
	a.defMask = make([]bitset, isa.NumRegs)
	for r := range a.defMask {
		a.defMask[r] = newBitset(nd)
		a.defMask[r].set(n + r)
	}
	a.defReg = make([]int, n)
	for i, ins := range a.Prog.Instructions {
		a.defReg[i] = -1
		if d, ok := ins.Dst(); ok {
			a.defReg[i] = d.Flat()
			a.defMask[d.Flat()].set(i)
		}
	}

	a.in = make([]bitset, n)
	out := make([]bitset, n)
	for i := 0; i < n; i++ {
		a.in[i] = newBitset(nd)
		out[i] = newBitset(nd)
	}
	entry := newBitset(nd)
	for r := 0; r < isa.NumRegs; r++ {
		entry.set(n + r)
	}

	scratch := newBitset(nd)
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !a.Reachable[i] {
				continue
			}
			scratch.clear()
			if i == 0 {
				scratch.or(entry)
			}
			for _, p := range a.Preds[i] {
				scratch.or(out[p])
			}
			a.in[i].copyFrom(scratch)
			if r := a.defReg[i]; r >= 0 {
				scratch.andNot(a.defMask[r])
				scratch.set(i)
			}
			if !scratch.equal(out[i]) {
				out[i].copyFrom(scratch)
				changed = true
			}
		}
	}

	// exitOut is the union of OUT over every exit (an instruction with
	// no successors: HALT, or falling off the program end). A definition
	// in exitOut is observable in the final architectural state.
	a.exitOut = newBitset(nd)
	for i := 0; i < n; i++ {
		if a.Reachable[i] && len(a.Succs[i]) == 0 {
			a.exitOut.or(out[i])
		}
	}
}

// buildChains derives the def-use chains: for every reachable read of a
// register, the reaching real definitions gain the reader in UsesOf,
// and a reaching entry definition records an uninitialized read.
func (a *Analysis) buildChains() {
	n := len(a.Prog.Instructions)
	var srcs [2]isa.Reg
	for i, ins := range a.Prog.Instructions {
		if !a.Reachable[i] {
			continue
		}
		if a.defReg[i] >= 0 {
			if _, ok := a.UsesOf[i]; !ok {
				a.UsesOf[i] = nil
			}
		}
		for _, r := range ins.Srcs(srcs[:0]) {
			f := r.Flat()
			mask := a.defMask[f]
			for w := range mask {
				word := a.in[i][w] & mask[w]
				for word != 0 {
					d := w*64 + bits.TrailingZeros64(word)
					word &= word - 1
					if d < n {
						if us := a.UsesOf[d]; len(us) == 0 || us[len(us)-1] != i {
							a.UsesOf[d] = append(us, i)
						}
					} else if rs := a.uninitReads[i]; len(rs) == 0 || rs[len(rs)-1] != r {
						a.uninitReads[i] = append(rs, r)
					}
				}
			}
		}
	}
}
