package dfa

import (
	"fmt"
	"sort"

	"ruu/internal/isa"
)

// Rule identifies one program lint rule.
type Rule uint8

const (
	// RuleUninitRead flags a read that a synthetic entry definition
	// reaches: on some path no instruction wrote the register before the
	// read, so the program depends on the architectural zero-fill.
	// Kernel code is expected to initialize every register it reads (the
	// Livermore sources do); synthesized progsynth programs deliberately
	// rely on zero-fill and are not held to this rule.
	RuleUninitRead Rule = iota
	// RuleDeadStore flags a register write that no instruction reads and
	// that is overwritten on every path before any program exit: the
	// write cannot be observed at all.
	RuleDeadStore
	// RuleUnreachable flags an instruction no CFG path from the entry
	// reaches.
	RuleUnreachable
	// RuleLoopDeadWrite flags a register written inside a loop but never
	// read by any instruction: the value is not live out of the loop (it
	// only reaches the final state), so the per-iteration work is wasted.
	RuleLoopDeadWrite

	// NumRules is the number of lint rules.
	NumRules
)

// String returns the rule's stable kebab-case name (used in ruudfa
// output and want-annotated fixtures).
func (r Rule) String() string {
	switch r {
	case RuleUninitRead:
		return "uninit-read"
	case RuleDeadStore:
		return "dead-store"
	case RuleUnreachable:
		return "unreachable"
	case RuleLoopDeadWrite:
		return "loop-dead-write"
	default:
		return "rule?"
	}
}

// RuleByName resolves a rule name as printed by Rule.String.
func RuleByName(name string) (Rule, bool) {
	for r := Rule(0); r < NumRules; r++ {
		if r.String() == name {
			return r, true
		}
	}
	return NumRules, false
}

// Finding is one lint diagnostic.
type Finding struct {
	Rule Rule
	// Idx is the instruction index within the program.
	Idx int
	// Line is the source line (0 for synthesized programs).
	Line int
	// Reg is the register involved (isa.None for RuleUnreachable).
	Reg isa.Reg
	// Msg is the human-readable diagnostic.
	Msg string
}

// String renders the finding as "line L: [rule] msg" (or "instr I" when
// no source line is attached).
func (f Finding) String() string {
	if f.Line > 0 {
		return fmt.Sprintf("line %d: [%s] %s", f.Line, f.Rule, f.Msg)
	}
	return fmt.Sprintf("instr %d: [%s] %s", f.Idx, f.Rule, f.Msg)
}

// Lint runs every rule over the analysis, returning findings ordered by
// instruction index, then rule.
func (a *Analysis) Lint() []Finding {
	var out []Finding
	n := len(a.Prog.Instructions)
	for i := 0; i < n; i++ {
		ins := a.Prog.Instructions[i]
		if !a.Reachable[i] {
			out = append(out, Finding{
				Rule: RuleUnreachable, Idx: i, Line: ins.Line,
				Msg: fmt.Sprintf("unreachable instruction %q", ins.String()),
			})
			continue
		}
		for _, r := range a.uninitReads[i] {
			out = append(out, Finding{
				Rule: RuleUninitRead, Idx: i, Line: ins.Line, Reg: r,
				Msg: fmt.Sprintf("%s read before any write on some path", r),
			})
		}
		d := a.defReg[i]
		if d < 0 || len(a.UsesOf[i]) > 0 {
			continue
		}
		reg := isa.FromFlat(d)
		switch {
		case !a.exitOut.has(i):
			out = append(out, Finding{
				Rule: RuleDeadStore, Idx: i, Line: ins.Line, Reg: reg,
				Msg: fmt.Sprintf("%s written here is overwritten before any read (dead store)", reg),
			})
		case a.InLoop(i):
			out = append(out, Finding{
				Rule: RuleLoopDeadWrite, Idx: i, Line: ins.Line, Reg: reg,
				Msg: fmt.Sprintf("%s written inside a loop is never read (not live out of the loop)", reg),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Idx != out[j].Idx {
			return out[i].Idx < out[j].Idx
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// Lint analyzes p and runs every rule (the one-call form of
// Analyze(p).Lint()).
func Lint(p *isa.Program) []Finding {
	return Analyze(p).Lint()
}
