package dfa

import (
	"fmt"
	"sort"

	"ruu/internal/isa"
)

// Rule identifies one program lint rule.
type Rule uint8

const (
	// RuleUninitRead flags a read that a synthetic entry definition
	// reaches: on some path no instruction wrote the register before the
	// read, so the program depends on the architectural zero-fill.
	// Kernel code is expected to initialize every register it reads (the
	// Livermore sources do); synthesized progsynth programs deliberately
	// rely on zero-fill and are not held to this rule.
	RuleUninitRead Rule = iota
	// RuleDeadStore flags a register write that no instruction reads and
	// that is overwritten on every path before any program exit: the
	// write cannot be observed at all.
	RuleDeadStore
	// RuleUnreachable flags an instruction no CFG path from the entry
	// reaches.
	RuleUnreachable
	// RuleLoopDeadWrite flags a register written inside a loop but never
	// read by any instruction: the value is not live out of the loop (it
	// only reaches the final state), so the per-iteration work is wasted.
	RuleLoopDeadWrite
	// RuleOOBAccess flags a memory access whose abstract effective
	// address is entirely outside the memory image: every execution of
	// the instruction faults. Needs the abstract interpretation (value
	// ranges), so only AbsInt.Lint reports it.
	RuleOOBAccess
	// RuleLoopInvariantLoad flags a load inside a loop whose address is
	// loop-invariant and that no store in the loop may alias: every
	// iteration reloads the same unchanged word, so the load is
	// hoistable. Advisory (SevNote): correct programs legitimately
	// contain such loads.
	RuleLoopInvariantLoad
	// RuleMustAliasViolation is the executor cross-check: a concrete
	// replay observed a memory dependence (or an address) the static
	// analysis proved impossible. Only CrossCheckMemDeps reports it; any
	// occurrence is an internal soundness defect of the analysis.
	RuleMustAliasViolation

	// NumRules is the number of lint rules.
	NumRules
)

// Severity grades a finding's consequence.
type Severity uint8

const (
	// SevError marks findings that gate: ruudfa exits non-zero and
	// /v1/analyze rejects the program with 422.
	SevError Severity = iota
	// SevNote marks advisory findings (reported, never gating).
	SevNote
)

func (s Severity) String() string {
	if s == SevNote {
		return "note"
	}
	return "error"
}

// Severity returns the rule's grade: everything is SevError except the
// advisory loop-invariant-load.
func (r Rule) Severity() Severity {
	if r == RuleLoopInvariantLoad {
		return SevNote
	}
	return SevError
}

// String returns the rule's stable kebab-case name (used in ruudfa
// output and want-annotated fixtures).
func (r Rule) String() string {
	switch r {
	case RuleUninitRead:
		return "uninit-read"
	case RuleDeadStore:
		return "dead-store"
	case RuleUnreachable:
		return "unreachable"
	case RuleLoopDeadWrite:
		return "loop-dead-write"
	case RuleOOBAccess:
		return "oob-access"
	case RuleLoopInvariantLoad:
		return "loop-invariant-load"
	case RuleMustAliasViolation:
		return "must-alias-violation"
	default:
		return "rule?"
	}
}

// Doc returns the rule's one-line description (the SARIF rule
// shortDescription).
func (r Rule) Doc() string {
	switch r {
	case RuleUninitRead:
		return "register read before any write on some path (depends on architectural zero-fill)"
	case RuleDeadStore:
		return "register write overwritten on every path before any read"
	case RuleUnreachable:
		return "instruction no CFG path from the entry reaches"
	case RuleLoopDeadWrite:
		return "register written inside a loop but never read (not live out of the loop)"
	case RuleOOBAccess:
		return "memory access whose abstract address is entirely outside the memory image"
	case RuleLoopInvariantLoad:
		return "load of a loop-invariant address no store in the loop may alias (hoistable)"
	case RuleMustAliasViolation:
		return "concrete execution contradicted the static alias classification (analysis defect)"
	default:
		return "unknown rule"
	}
}

// RuleByName resolves a rule name as printed by Rule.String.
func RuleByName(name string) (Rule, bool) {
	for r := Rule(0); r < NumRules; r++ {
		if r.String() == name {
			return r, true
		}
	}
	return NumRules, false
}

// Finding is one lint diagnostic.
type Finding struct {
	Rule Rule
	// Idx is the instruction index within the program.
	Idx int
	// Line is the source line (0 for synthesized programs).
	Line int
	// Reg is the register involved (isa.None for RuleUnreachable).
	Reg isa.Reg
	// Msg is the human-readable diagnostic.
	Msg string
}

// String renders the finding as "line L: [rule] msg" (or "instr I" when
// no source line is attached).
func (f Finding) String() string {
	if f.Line > 0 {
		return fmt.Sprintf("line %d: [%s] %s", f.Line, f.Rule, f.Msg)
	}
	return fmt.Sprintf("instr %d: [%s] %s", f.Idx, f.Rule, f.Msg)
}

// Lint runs every rule over the analysis, returning findings ordered by
// instruction index, then rule.
func (a *Analysis) Lint() []Finding {
	var out []Finding
	n := len(a.Prog.Instructions)
	for i := 0; i < n; i++ {
		ins := a.Prog.Instructions[i]
		if !a.Reachable[i] {
			out = append(out, Finding{
				Rule: RuleUnreachable, Idx: i, Line: ins.Line,
				Msg: fmt.Sprintf("unreachable instruction %q", ins.String()),
			})
			continue
		}
		for _, r := range a.uninitReads[i] {
			out = append(out, Finding{
				Rule: RuleUninitRead, Idx: i, Line: ins.Line, Reg: r,
				Msg: fmt.Sprintf("%s read before any write on some path", r),
			})
		}
		d := a.defReg[i]
		if d < 0 || len(a.UsesOf[i]) > 0 {
			continue
		}
		reg := isa.FromFlat(d)
		switch {
		case !a.exitOut.has(i):
			out = append(out, Finding{
				Rule: RuleDeadStore, Idx: i, Line: ins.Line, Reg: reg,
				Msg: fmt.Sprintf("%s written here is overwritten before any read (dead store)", reg),
			})
		case a.InLoop(i):
			out = append(out, Finding{
				Rule: RuleLoopDeadWrite, Idx: i, Line: ins.Line, Reg: reg,
				Msg: fmt.Sprintf("%s written inside a loop is never read (not live out of the loop)", reg),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Idx != out[j].Idx {
			return out[i].Idx < out[j].Idx
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// Lint analyzes p and runs every rule (the one-call form of
// Analyze(p).Lint()).
func Lint(p *isa.Program) []Finding {
	return Analyze(p).Lint()
}

// Lint runs the full rule set: the value-free rules of Analysis.Lint
// plus the value-aware rules the abstract interpretation enables
// (oob-access, loop-invariant-load). Findings are ordered by
// instruction index, then rule.
func (ai *AbsInt) Lint() []Finding {
	out := ai.An.Lint()
	out = append(out, ai.lintAbs()...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Idx != out[j].Idx {
			return out[i].Idx < out[j].Idx
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// lintAbs runs only the value-aware rules.
func (ai *AbsInt) lintAbs() []Finding {
	a := ai.An
	var out []Finding
	for i, ins := range a.Prog.Instructions {
		if !ai.Reached[i] || !ins.Op.IsMem() {
			continue
		}
		if ai.DefinitelyOOB(i) {
			limit := "memory"
			if ai.MemWords > 0 {
				limit = fmt.Sprintf("memory [0,%d)", ai.MemWords)
			}
			out = append(out, Finding{
				Rule: RuleOOBAccess, Idx: i, Line: ins.Line,
				Msg: fmt.Sprintf("address %v is entirely outside %s: every execution faults", ai.Addr[i], limit),
			})
			continue
		}
		if !ins.Op.Info().Load {
			continue
		}
		if l, ok := ai.hoistableFrom(i); ok {
			out = append(out, Finding{
				Rule: RuleLoopInvariantLoad, Idx: i, Line: ins.Line,
				Msg: fmt.Sprintf("load address %v is invariant in the loop at %d..%d and no store in it may alias: hoistable", ai.Addr[i], l.Head, l.Back),
			})
		}
	}
	return out
}

// hoistableFrom reports whether load i sits in a loop whose every
// iteration provably reloads the same unchanged word: the address is
// loop-invariant and no store inside the loop may alias it. Returns the
// outermost such loop.
func (ai *AbsInt) hoistableFrom(i int) (Loop, bool) {
	a := ai.An
	var best Loop
	found := false
	for _, l := range a.Loops {
		if !l.Contains(i) || !ai.loopInvariantAddr(l, i) {
			continue
		}
		clean := true
		for k := l.Head; k <= l.Back; k++ {
			if !ai.Reached[k] || !a.Prog.Instructions[k].Op.Info().Store {
				continue
			}
			if ai.aliasRanges(i, k) != NoAlias {
				clean = false
				break
			}
		}
		if clean && (!found || l.Back-l.Head > best.Back-best.Head) {
			best, found = l, true
		}
	}
	return best, found
}
