package dfa

import (
	"testing"

	"ruu/internal/isa"
	"ruu/internal/livermore"
	"ruu/internal/progsynth"
)

// memProg wires a program and returns its abstract interpretation from
// the zero entry state (all registers {0}).
func memProg(t *testing.T, ins []isa.Instruction) *AbsInt {
	t.Helper()
	p := &isa.Program{Instructions: ins}
	return Analyze(p).Interpret(AbsRegs{}, 0)
}

func TestAliasConstants(t *testing.T) {
	// A1 = 100: the store hits 104, the loads hit 104 and 105.
	ai := memProg(t, []isa.Instruction{
		{Op: isa.LoadAImm, I: 1, Imm: 100},   // 0
		{Op: isa.StoreA, I: 2, J: 1, Imm: 4}, // 1: [104]
		{Op: isa.LoadA, I: 3, J: 1, Imm: 4},  // 2: [104]
		{Op: isa.LoadA, I: 4, J: 1, Imm: 5},  // 3: [105]
		{Op: isa.Halt},                       // 4
	})
	if k := ai.Alias(1, 2); k != MustAlias {
		t.Errorf("equal constant addresses: %v, want must-alias", k)
	}
	if k := ai.Alias(1, 3); k != NoAlias {
		t.Errorf("distinct constant addresses: %v, want no-alias", k)
	}
}

func TestAliasSymbolicBase(t *testing.T) {
	// The base register's value is unknown (entry state Top), but both
	// accesses share its unique reaching definition and displacement.
	p := &isa.Program{Instructions: []isa.Instruction{
		{Op: isa.MovAS, I: 1, J: 1},          // 0: A1 = S1 (unknown value)
		{Op: isa.StoreA, I: 2, J: 1, Imm: 8}, // 1
		{Op: isa.LoadA, I: 3, J: 1, Imm: 8},  // 2
		{Op: isa.LoadA, I: 4, J: 1, Imm: 9},  // 3: same base, other disp
		{Op: isa.Halt},                       // 4
	}}
	ai := Analyze(p).Interpret(EntryTop(), 0)
	if k := ai.Alias(1, 2); k != MustAlias {
		t.Errorf("same unique base def + disp: %v, want must-alias", k)
	}
	// Different displacement defeats the symbolic rule; with Top ranges
	// the pair stays may-alias (the intervals overlap).
	if k := ai.Alias(1, 3); k != MayAlias {
		t.Errorf("same base, different disp, unknown range: %v, want may-alias", k)
	}
}

func TestAliasStrideDisjoint(t *testing.T) {
	// The loop walks A1 by 2: stores hit even offsets, loads odd ones —
	// the congruence classes mod 2 never meet.
	ai := memProg(t, []isa.Instruction{
		{Op: isa.LoadAImm, I: 0, Imm: 4},       // 0: counter
		{Op: isa.LoadAImm, I: 1, Imm: 100},     // 1: base
		{Op: isa.StoreA, I: 2, J: 1, Imm: 0},   // 2: 100, 102, ... (loop head)
		{Op: isa.LoadA, I: 3, J: 1, Imm: 1},    // 3: 101, 103, ...
		{Op: isa.AddAImm, I: 1, J: 1, Imm: 2},  // 4
		{Op: isa.AddAImm, I: 0, J: 0, Imm: -1}, // 5
		{Op: isa.BrANZ, Imm: 2},                // 6
		{Op: isa.Halt},                         // 7
	})
	if got := ai.Addr[2].Stride; got != 2 {
		t.Fatalf("store address stride = %d (%v), want 2", got, ai.Addr[2])
	}
	if k := ai.Alias(2, 3); k != NoAlias {
		t.Errorf("even/odd strided accesses: %v, want no-alias", k)
	}
	d := ai.MemDeps()
	for _, e := range d.Edges {
		if (e.From == 2 && e.To == 3) || (e.From == 3 && e.To == 2) {
			t.Errorf("unexpected dependence edge %+v between stride-disjoint accesses", e)
		}
	}
}

func TestMemDepsLoopCarried(t *testing.T) {
	// A loop storing and reloading one fixed word: the intra-iteration
	// pair is must-alias, and both the store→load and the store's
	// self-dependence are carried across iterations as must-alias
	// because the address is loop-invariant.
	ai := memProg(t, []isa.Instruction{
		{Op: isa.LoadAImm, I: 0, Imm: 3},       // 0
		{Op: isa.LoadAImm, I: 1, Imm: 200},     // 1
		{Op: isa.StoreA, I: 2, J: 1, Imm: 0},   // 2: loop head, [200]
		{Op: isa.LoadA, I: 3, J: 1, Imm: 0},    // 3: [200]
		{Op: isa.AddAImm, I: 0, J: 0, Imm: -1}, // 4
		{Op: isa.BrANZ, Imm: 2},                // 5
		{Op: isa.Halt},                         // 6
	})
	d := ai.MemDeps()
	want := map[[2]int]AliasKind{}
	carried := map[[2]int]bool{}
	for _, e := range d.Edges {
		key := [2]int{e.From, e.To}
		if e.Carried {
			carried[key] = true
		} else {
			want[key] = e.Kind
		}
	}
	if want[[2]int{2, 3}] != MustAlias {
		t.Errorf("intra-iteration store→load not must-alias: %+v", d.Edges)
	}
	if !carried[[2]int{3, 2}] || !carried[[2]int{2, 2}] {
		t.Errorf("missing carried edges (load→store wraparound, store self): %+v", d.Edges)
	}
	if d.Must == 0 || d.Carried == 0 {
		t.Errorf("summary counts Must=%d Carried=%d, want both > 0", d.Must, d.Carried)
	}
}

func TestMemDepsCarriedStrideWalkDowngraded(t *testing.T) {
	// The store walks a stride: within one iteration nothing else
	// accesses memory, but across iterations the store depends on
	// itself only as may-alias (it never rewrites the same word — but
	// the interval overlap cannot prove that about *pairs* of
	// iterations without relative distance, so MayAlias is the sound
	// verdict; MustAlias would be wrong).
	ai := memProg(t, []isa.Instruction{
		{Op: isa.LoadAImm, I: 0, Imm: 4},       // 0
		{Op: isa.LoadAImm, I: 1, Imm: 100},     // 1
		{Op: isa.StoreA, I: 2, J: 1, Imm: 0},   // 2: loop head
		{Op: isa.AddAImm, I: 1, J: 1, Imm: 1},  // 3
		{Op: isa.AddAImm, I: 0, J: 0, Imm: -1}, // 4
		{Op: isa.BrANZ, Imm: 2},                // 5
		{Op: isa.Halt},                         // 6
	})
	d := ai.MemDeps()
	found := false
	for _, e := range d.Edges {
		if e.Carried && e.From == 2 && e.To == 2 {
			found = true
			if e.Kind != MayAlias {
				t.Errorf("stride-walking store self-dependence = %v, want may-alias", e.Kind)
			}
		}
	}
	if !found {
		t.Error("missing carried self-dependence of the walking store")
	}
}

// TestCrossCheckCleanEverywhere replays every Livermore kernel and a
// progsynth corpus and asserts the executor never contradicts the
// static alias classification — the must-alias-violation rule stays
// silent on sound analyses.
func TestCrossCheckCleanEverywhere(t *testing.T) {
	for _, k := range livermore.Kernels() {
		u, err := k.Unit()
		if err != nil {
			t.Fatal(err)
		}
		st, err := k.NewState()
		if err != nil {
			t.Fatal(err)
		}
		ai := Analyze(u.Prog).InterpretState(st)
		fs, err := ai.CrossCheckMemDeps(st, 0)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for _, f := range fs {
			t.Errorf("%s: %v", k.Name, f)
		}
	}
	opts := progsynth.Options{Nested: true, CondBranches: true}
	for seed := int64(1); seed <= 15; seed++ {
		p := progsynth.Generate(seed, opts)
		st := progsynth.NewState(seed, opts)
		ai := Analyze(p).InterpretState(st)
		fs, err := ai.CrossCheckMemDeps(st, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, f := range fs {
			t.Errorf("seed %d: %v", seed, f)
		}
	}
}

// TestLintOOBAccess checks the oob-access rule fires on a definitely
// out-of-range address and carries error severity.
func TestLintOOBAccess(t *testing.T) {
	p := &isa.Program{Instructions: []isa.Instruction{
		{Op: isa.LoadAImm, I: 1, Imm: -5}, // 0
		{Op: isa.LoadA, I: 2, J: 1},       // 1: [-5] always faults
		{Op: isa.Halt},                    // 2
	}}
	ai := Analyze(p).Interpret(AbsRegs{}, 64)
	fs := ai.Lint()
	if len(fs) != 1 || fs[0].Rule != RuleOOBAccess || fs[0].Idx != 1 {
		t.Fatalf("findings = %v, want one oob-access at instr 1", fs)
	}
	if fs[0].Rule.Severity() != SevError {
		t.Errorf("oob-access severity = %v, want error", fs[0].Rule.Severity())
	}

	// Beyond the top of the image is equally definite.
	p2 := &isa.Program{Instructions: []isa.Instruction{
		{Op: isa.LoadAImm, I: 1, Imm: 100},
		{Op: isa.LoadAImm, I: 2, Imm: 1},
		{Op: isa.StoreA, I: 2, J: 1},
		{Op: isa.Halt},
	}}
	ai2 := Analyze(p2).Interpret(AbsRegs{}, 64)
	fs2 := ai2.Lint()
	if len(fs2) != 1 || fs2[0].Rule != RuleOOBAccess {
		t.Fatalf("findings = %v, want one oob-access", fs2)
	}
}

// TestLintLoopInvariantLoad checks the advisory rule: a loop reloading
// an unchanging word is flagged, but only when no store in the loop may
// alias the load.
func TestLintLoopInvariantLoad(t *testing.T) {
	hoistable := []isa.Instruction{
		{Op: isa.LoadAImm, I: 0, Imm: 3},       // 0
		{Op: isa.LoadAImm, I: 1, Imm: 50},      // 1
		{Op: isa.LoadA, I: 2, J: 1},            // 2: loop head, [50] every iter
		{Op: isa.AddAImm, I: 3, J: 2, Imm: 1},  // 3: consume the load
		{Op: isa.AddAImm, I: 0, J: 0, Imm: -1}, // 4
		{Op: isa.BrANZ, Imm: 2},                // 5
		{Op: isa.Halt},                         // 6
	}
	ai := memProg(t, hoistable)
	var got []Finding
	for _, f := range ai.Lint() {
		if f.Rule == RuleLoopInvariantLoad {
			got = append(got, f)
		}
	}
	if len(got) != 1 || got[0].Idx != 2 {
		t.Fatalf("loop-invariant-load findings = %v, want one at instr 2", got)
	}
	if got[0].Rule.Severity() != SevNote {
		t.Errorf("loop-invariant-load severity = %v, want note", got[0].Rule.Severity())
	}

	// Adding an aliasing store into the loop silences the rule.
	aliased := append([]isa.Instruction{}, hoistable...)
	aliased[3] = isa.Instruction{Op: isa.StoreA, I: 2, J: 1} // store [50] in loop
	ai = memProg(t, aliased)
	for _, f := range ai.Lint() {
		if f.Rule == RuleLoopInvariantLoad {
			t.Errorf("unexpected loop-invariant-load with aliasing store: %v", f)
		}
	}
}

// TestKernelsFreeOfErrorFindings pins every Livermore kernel clean of
// gating (error-severity) findings under the full value-aware rule set.
func TestKernelsFreeOfErrorFindings(t *testing.T) {
	for _, k := range livermore.Kernels() {
		u, err := k.Unit()
		if err != nil {
			t.Fatal(err)
		}
		st, err := k.NewState()
		if err != nil {
			t.Fatal(err)
		}
		ai := Analyze(u.Prog).InterpretState(st)
		for _, f := range ai.Lint() {
			if f.Rule.Severity() == SevError {
				t.Errorf("%s: %v", k.Name, f)
			}
		}
	}
}
