package dfa

import "ruu/internal/isa"

// buildCFG derives the instruction-level control-flow graph. Successors
// follow the architectural semantics in internal/exec: HALT has none,
// JMP goes only to its target, a conditional branch goes to its target
// and the fall-through, TRAP falls through (a handler may repair the
// cause and resume past it), and everything else falls through. The
// program must already be validated, so branch targets are in range.
func (a *Analysis) buildCFG() {
	n := len(a.Prog.Instructions)
	a.Succs = make([][]int, n)
	a.Preds = make([][]int, n)
	for i, ins := range a.Prog.Instructions {
		var ss []int
		switch {
		case ins.Op == isa.Halt:
			// No successors: execution stops.
		case ins.Op == isa.Jmp:
			ss = append(ss, int(ins.Imm))
		case ins.Op.IsBranch():
			t := int(ins.Imm)
			ss = append(ss, t)
			if i+1 < n && t != i+1 {
				ss = append(ss, i+1)
			}
		default:
			if i+1 < n {
				ss = append(ss, i+1)
			}
		}
		a.Succs[i] = ss
	}
	for i, ss := range a.Succs {
		for _, s := range ss {
			a.Preds[s] = append(a.Preds[s], i)
		}
	}

	// Reachability from the entry instruction, by depth-first search.
	a.Reachable = make([]bool, n)
	if n == 0 {
		return
	}
	stack := []int{0}
	a.Reachable[0] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range a.Succs[i] {
			if !a.Reachable[s] {
				a.Reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
}

// findLoops records the natural loops. Every loop in assembled or
// synthesized programs is a backward branch to its header, so the body
// is exactly the index range [target, branch].
func (a *Analysis) findLoops() {
	for i, ins := range a.Prog.Instructions {
		if !ins.Op.IsBranch() || !a.Reachable[i] {
			continue
		}
		if t := int(ins.Imm); t <= i {
			a.Loops = append(a.Loops, Loop{Head: t, Back: i})
		}
	}
}
