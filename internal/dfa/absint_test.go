package dfa

import (
	"testing"

	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/livermore"
	"ruu/internal/progsynth"
)

func TestAbsValContains(t *testing.T) {
	cases := []struct {
		v    AbsVal
		in   []int64
		out  []int64
		name string
	}{
		{Const(7), []int64{7}, []int64{6, 8, 0}, "const"},
		{Range(-3, 5), []int64{-3, 0, 5}, []int64{-4, 6}, "range"},
		{AbsVal{Lo: 10, Hi: 30, Stride: 4}.norm(), []int64{10, 14, 26}, []int64{12, 9, 31}, "stride"},
		{Top, []int64{NegInf, -1, 0, PosInf}, nil, "top"},
	}
	for _, c := range cases {
		for _, x := range c.in {
			if !c.v.Contains(x) {
				t.Errorf("%s: %v should contain %d", c.name, c.v, x)
			}
		}
		for _, x := range c.out {
			if c.v.Contains(x) {
				t.Errorf("%s: %v should not contain %d", c.name, c.v, x)
			}
		}
	}
}

func TestAbsValNorm(t *testing.T) {
	// Hi snaps onto the congruence lattice; one-point intervals become
	// singletons.
	v := AbsVal{Lo: 4, Hi: 13, Stride: 4}.norm()
	if v.Hi != 12 {
		t.Errorf("norm snapped Hi = %d, want 12", v.Hi)
	}
	v = AbsVal{Lo: 4, Hi: 7, Stride: 8}.norm()
	if c, ok := v.IsConst(); !ok || c != 4 {
		t.Errorf("norm of one-point stride interval = %v, want singleton 4", v)
	}
}

func TestAbsValJoin(t *testing.T) {
	// Joining two constants records their difference as the stride.
	j := Const(8).Join(Const(20))
	if j.Lo != 8 || j.Hi != 20 || j.Stride != 12 {
		t.Errorf("Join(8, 20) = %v, want [8,20]/12", j)
	}
	if !j.Contains(8) || !j.Contains(20) || j.Contains(14) {
		t.Errorf("Join(8, 20) membership wrong: %v", j)
	}
	// Joining strided values folds anchors into the gcd.
	a := AbsVal{Lo: 0, Hi: 40, Stride: 8}.norm()
	b := AbsVal{Lo: 4, Hi: 44, Stride: 8}.norm()
	j = a.Join(b)
	if j.Stride != 4 {
		t.Errorf("Join strides 8/8 offset 4 = %v, want stride 4", j)
	}
}

func TestAbsValWiden(t *testing.T) {
	w := Range(0, 10).Widen(Range(0, 11))
	if w.Hi != PosInf || w.Lo != 0 {
		t.Errorf("Widen growing Hi = %v, want [0,+inf]", w)
	}
	w = Range(0, 10).Widen(Range(-1, 10))
	if w.Lo != NegInf || w.Hi != 10 {
		t.Errorf("Widen growing Lo = %v, want [-inf,10]", w)
	}
	w = Range(0, 10).Widen(Range(2, 8))
	if w != Range(0, 10) {
		t.Errorf("Widen of subset changed value: %v", w)
	}
}

func TestAbsValMeet(t *testing.T) {
	v := AbsVal{Lo: 10, Hi: 50, Stride: 8}.norm()
	m, ok := v.Meet(13, 40)
	if !ok || m.Lo != 18 || m.Hi != 34 || m.Stride != 8 {
		t.Errorf("Meet = %v ok=%v, want [18,34]/8", m, ok)
	}
	if _, ok := Const(5).Meet(6, 10); ok {
		t.Error("Meet of disjoint sets should be infeasible")
	}
	if _, ok := v.Meet(11, 17); ok {
		t.Error("Meet with no congruent member should be infeasible")
	}
}

// TestAbsIntConstants checks constant propagation through moves and
// arithmetic and the loop-head widening of an induction variable.
func TestAbsIntConstants(t *testing.T) {
	p := &isa.Program{Instructions: []isa.Instruction{
		{Op: isa.LoadAImm, I: 1, Imm: 100},     // 0: A1 = 100
		{Op: isa.AddAImm, I: 2, J: 1, Imm: 28}, // 1: A2 = A1 + 28
		{Op: isa.LoadAImm, I: 0, Imm: 4},       // 2: A0 = 4 (counter)
		{Op: isa.AddAImm, I: 2, J: 2, Imm: 8},  // 3: A2 += 8   <- loop head
		{Op: isa.AddAImm, I: 0, J: 0, Imm: -1}, // 4: A0 -= 1
		{Op: isa.BrANZ, Imm: 3},                // 5: loop while A0 != 0
		{Op: isa.Halt},                         // 6
	}}
	a := Analyze(p)
	ai := a.Interpret(AbsRegs{}, 0)

	if v := ai.In[1][isa.A(1).Flat()]; !mustConst(v, 100) {
		t.Errorf("A1 before #1 = %v, want 100", v)
	}
	if v := ai.In[2][isa.A(2).Flat()]; !mustConst(v, 128) {
		t.Errorf("A2 before #2 = %v, want 128", v)
	}
	// At the loop head A2 has been widened but keeps its stride-8
	// congruence anchored at 128, and A0 stays within [-inf, 4] at
	// worst; both concrete sequences must be contained.
	a2 := ai.In[3][isa.A(2).Flat()]
	for _, x := range []int64{128, 136, 144, 152} {
		if !a2.Contains(x) {
			t.Errorf("loop-head A2 = %v should contain %d", a2, x)
		}
	}
	a0 := ai.In[4][isa.A(0).Flat()]
	for _, x := range []int64{4, 3, 2, 1} {
		if !a0.Contains(x) {
			t.Errorf("loop-body A0 = %v should contain %d", a0, x)
		}
	}
	// Branch refinement: the fallthrough of jnz (A0 == 0) reaches Halt
	// with A0 pinned to the singleton 0.
	if v := ai.In[6][isa.A(0).Flat()]; !mustConst(v, 0) {
		t.Errorf("A0 after loop exit = %v, want 0", v)
	}
}

func mustConst(v AbsVal, want int64) bool {
	c, ok := v.IsConst()
	return ok && c == want
}

// TestAbsIntInfeasibleEdge checks that branch refinement prunes edges
// no value of the condition register can take.
func TestAbsIntInfeasibleEdge(t *testing.T) {
	p := &isa.Program{Instructions: []isa.Instruction{
		{Op: isa.LoadAImm, I: 0, Imm: 0}, // 0: A0 = 0
		{Op: isa.BrAZ, Imm: 3},           // 1: always taken
		{Op: isa.LoadAImm, I: 5, Imm: 1}, // 2: dead fallthrough
		{Op: isa.Halt},                   // 3
	}}
	a := Analyze(p)
	ai := a.Interpret(AbsRegs{}, 0)
	if ai.Reached[2] {
		t.Error("instruction 2 is only reachable through an infeasible edge")
	}
	if !ai.Reached[3] {
		t.Error("instruction 3 must be reached through the taken edge")
	}
}

// checkSoundness replays the program concretely and asserts the
// abstract state over-approximates it at every step: each register
// value lies inside its interval at the instruction's program point,
// and each memory access's effective address lies inside the abstract
// address. This is the soundness contract everything downstream
// (memdep edges, oob-access, the tightened bound) relies on.
func checkSoundness(t *testing.T, name string, p *isa.Program, st *exec.State) {
	t.Helper()
	a := Analyze(p)
	ai := a.InterpretState(st)
	checked := 0
	h := exec.Hooks{
		Pre: func(pc int) {
			if !ai.Reached[pc] {
				t.Fatalf("%s: executor reached pc %d the abstract interpretation did not", name, pc)
			}
			for r := 0; r < isa.NumRegs; r++ {
				got := st.Reg(isa.FromFlat(r))
				if !ai.In[pc][r].Contains(got) {
					t.Fatalf("%s: pc %d (%v): %v = %d outside abstract %v",
						name, pc, p.Instructions[pc], isa.FromFlat(r), got, ai.In[pc][r])
				}
			}
			checked++
		},
		Mem: func(ev exec.MemEvent) {
			if !ai.Addr[ev.PC].Contains(ev.Addr) {
				t.Fatalf("%s: pc %d (%v): address %d outside abstract %v",
					name, ev.PC, ev.Ins, ev.Addr, ai.Addr[ev.PC])
			}
		},
	}
	if _, err := st.RunHooks(p, 0, h); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if checked == 0 {
		t.Fatalf("%s: soundness check executed no instructions", name)
	}
}

// TestAbsIntSoundKernels is the kernel half of the soundness property:
// all 14 Livermore kernels under their real initial states.
func TestAbsIntSoundKernels(t *testing.T) {
	for _, k := range livermore.Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			unit, err := k.Unit()
			if err != nil {
				t.Fatal(err)
			}
			st, err := k.NewState()
			if err != nil {
				t.Fatal(err)
			}
			checkSoundness(t, k.Name, unit.Prog, st)
		})
	}
}

// TestAbsIntSoundSynthesized is the corpus half: randomly synthesized
// programs with nested loops and conditional branches.
func TestAbsIntSoundSynthesized(t *testing.T) {
	opts := progsynth.Options{Nested: true, CondBranches: true}
	for seed := int64(1); seed <= 25; seed++ {
		p := progsynth.Generate(seed, opts)
		st := progsynth.NewState(seed, opts)
		checkSoundness(t, "seed", p, st)
	}
}
