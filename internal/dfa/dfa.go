// Package dfa is the static ISA-level dataflow analysis over assembled
// isa.Programs: the program-level counterpart of the source-level
// ruulint suite (internal/analysis). Where ruulint checks the Go that
// implements the simulator, dfa checks the programs the simulator runs —
// and, crucially, gives every timing engine an independent,
// machine-checked plausibility bound.
//
// The paper's whole argument is about dependencies: the RUU exists to
// resolve RAW hazards out of order while making WAR/WAW hazards and
// imprecise state a non-issue (PAPER.md §3-§5). This package makes those
// quantities inspectable without running a timing simulation:
//
//   - Analyze builds a per-instruction control-flow graph from
//     branch/halt structure, computes per-register (A/S/B/T) reaching
//     definitions, and derives def-use chains and natural loops.
//   - Lint (lint.go) turns the chains into program diagnostics:
//     uninitialized register reads, dead stores, unreachable
//     instructions, and loop-dead writes.
//   - Census (census.go) counts dynamic RAW/WAR/WAW register-hazard
//     pairs over the same dynamic instruction stream the machine
//     executes — the quantities the RUU vs. simple-issue comparison
//     hinges on.
//   - Bound (bound.go) is the dataflow-limit oracle: the longest path
//     through the dynamic trace's register-dependence DAG weighted by
//     the functional-unit latencies. Every engine's simulated cycle
//     count must be at least this bound; the oracle tests in the root
//     package assert exactly that for all kernels and engines.
//
// See docs/DFA.md for the design and the bound's assumptions.
package dfa

import (
	"ruu/internal/isa"
)

// Analysis is the static dataflow analysis of one program: CFG,
// reachability, natural loops, reaching definitions, and def-use
// chains. Build it with Analyze; the program must be validated.
type Analysis struct {
	// Prog is the analyzed program.
	Prog *isa.Program
	// Succs and Preds are the per-instruction CFG edges.
	Succs, Preds [][]int
	// Reachable marks instructions reachable from the entry (index 0).
	Reachable []bool
	// Loops are the program's natural loops (backward branches).
	Loops []Loop
	// UsesOf maps a definition site (instruction index) to the
	// instruction indices whose reads it reaches — the def-use chain.
	// Only instructions that define a register have an entry.
	UsesOf map[int][]int
	// uninitReads records, per instruction, the source registers whose
	// entry (uninitialized) definition reaches the read.
	uninitReads map[int][]isa.Reg

	in      []bitset // reaching definitions at each instruction
	exitOut bitset   // definitions reaching any program exit
	defMask []bitset // per flat register: all of its definition IDs
	defReg  []int    // per instruction: flat dst register, or -1
}

// Loop is a natural loop formed by a backward branch: the body spans
// the instruction range [Head, Back] (the assembler and the program
// synthesizer only emit reducible loops of this shape).
type Loop struct {
	// Head is the loop header (the backward branch's target).
	Head int
	// Back is the backward branch instruction.
	Back int
}

// Contains reports whether instruction i lies inside the loop body.
func (l Loop) Contains(i int) bool { return l.Head <= i && i <= l.Back }

// Analyze runs the static analysis over a validated program.
func Analyze(p *isa.Program) *Analysis {
	a := &Analysis{
		Prog:        p,
		UsesOf:      map[int][]int{},
		uninitReads: map[int][]isa.Reg{},
	}
	a.buildCFG()
	a.findLoops()
	a.reachingDefs()
	a.buildChains()
	return a
}

// InLoop reports whether instruction i lies inside any natural loop.
func (a *Analysis) InLoop(i int) bool {
	for _, l := range a.Loops {
		if l.Contains(i) {
			return true
		}
	}
	return false
}

// DefUseEdges returns the number of static def-use (RAW) edges.
func (a *Analysis) DefUseEdges() int {
	n := 0
	for _, uses := range a.UsesOf {
		n += len(uses)
	}
	return n
}
