package dfa

import (
	"fmt"
	"math/bits"
	"sort"

	"ruu/internal/exec"
	"ruu/internal/isa"
)

// Static memory-dependence analysis on top of the abstract
// interpretation: every pair of memory instructions (with at least one
// store) is classified must-alias / may-alias / no-alias from the
// abstract effective addresses — interval overlap, stride congruence,
// and symbolic base equality — and the classification is lifted to
// loop-carried dependences for pairs inside the same natural loop.
//
// The classification is validated two ways: the absint soundness
// property test guarantees every concrete address lies in its abstract
// address, and CrossCheckMemDeps replays a concrete execution and
// reports a must-alias-violation finding whenever the executor observes
// a memory dependence the static analysis proved absent.

// AliasKind classifies the address relationship of two memory accesses.
type AliasKind uint8

const (
	// NoAlias means the two accesses can never touch the same word.
	NoAlias AliasKind = iota
	// MayAlias means the address sets overlap but are not proven equal.
	MayAlias
	// MustAlias means both accesses always touch the same word.
	MustAlias
)

func (k AliasKind) String() string {
	switch k {
	case NoAlias:
		return "no-alias"
	case MayAlias:
		return "may-alias"
	case MustAlias:
		return "must-alias"
	default:
		return "alias?"
	}
}

// MemDep is one static memory-dependence edge between two memory
// instructions, at least one of which is a store.
type MemDep struct {
	// From and To are instruction indices; From executes before To. For
	// a loop-carried edge From executes in an earlier iteration, so From
	// >= To in program order is possible (including From == To: a store
	// depending on itself across iterations).
	From, To int
	// Kind is the alias classification (never NoAlias: non-edges are
	// simply absent).
	Kind AliasKind
	// Carried marks a loop-carried dependence across a back edge.
	Carried bool
}

// MemDeps is the program's static memory-dependence summary.
type MemDeps struct {
	// Edges lists every dependence, intra-iteration edges first in
	// (From, To) order, then loop-carried edges.
	Edges []MemDep
	// Must, May, and Carried are summary counts over Edges.
	Must, May, Carried int
}

// uniqueReachingDef returns the single definition ID (real instruction
// index, or a synthetic entry def >= len(prog)) of flat register r
// reaching instruction i, and ok=false when several definitions reach.
func (a *Analysis) uniqueReachingDef(i, r int) (int, bool) {
	mask := a.defMask[r]
	found := -1
	for w := range mask {
		word := a.in[i][w] & mask[w]
		for word != 0 {
			d := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if found >= 0 {
				return -1, false
			}
			found = d
		}
	}
	if found < 0 {
		return -1, false
	}
	return found, true
}

// aliasRanges is the range half of the classification: NoAlias when the
// abstract address sets of i and j are provably disjoint (disjoint
// intervals, or incompatible stride congruence classes), MayAlias
// otherwise.
func (ai *AbsInt) aliasRanges(i, j int) AliasKind {
	va, vb := ai.Addr[i], ai.Addr[j]
	if va.Hi < vb.Lo || vb.Hi < va.Lo {
		return NoAlias
	}
	if va.Lo != NegInf && vb.Lo != NegInf {
		d := absDiff(va.Lo, vb.Lo)
		g := gcd64(va.Stride, vb.Stride)
		if g == 0 {
			// Both singletons: overlap already implies equality, but be
			// explicit for clarity.
			if d != 0 {
				return NoAlias
			}
		} else if d%uint64(g) != 0 {
			// The congruence classes mod gcd never intersect.
			return NoAlias
		}
	}
	return MayAlias
}

// Alias classifies the address pair of memory instructions i and j:
// MustAlias when the addresses are provably always equal — equal
// constants, or the same base register with the same unique reaching
// definition and equal displacement — NoAlias when the address sets are
// disjoint, MayAlias otherwise.
func (ai *AbsInt) Alias(i, j int) AliasKind {
	if ca, aok := ai.Addr[i].IsConst(); aok {
		if cb, bok := ai.Addr[j].IsConst(); bok {
			if ca == cb {
				return MustAlias
			}
			return NoAlias
		}
	}
	if ai.aliasRanges(i, j) == NoAlias {
		return NoAlias
	}
	pi := ai.An.Prog.Instructions[i]
	pj := ai.An.Prog.Instructions[j]
	if pi.J == pj.J && pi.Imm == pj.Imm {
		bf := isa.A(int(pi.J)).Flat()
		di, iok := ai.An.uniqueReachingDef(i, bf)
		dj, jok := ai.An.uniqueReachingDef(j, bf)
		if iok && jok && di == dj {
			return MustAlias
		}
	}
	return MayAlias
}

// loopInvariantAddr reports whether instruction i's effective address
// is the same in every iteration of l: a constant abstract address, or
// a base register no instruction inside the loop writes.
func (ai *AbsInt) loopInvariantAddr(l Loop, i int) bool {
	if _, ok := ai.Addr[i].IsConst(); ok {
		return true
	}
	base := isa.A(int(ai.An.Prog.Instructions[i].J)).Flat()
	for k := l.Head; k <= l.Back && k < len(ai.An.defReg); k++ {
		if ai.An.defReg[k] == base {
			return false
		}
	}
	return true
}

// MemDeps derives the static memory-dependence edges.
func (ai *AbsInt) MemDeps() *MemDeps {
	a := ai.An
	var mems []int
	for i, ins := range a.Prog.Instructions {
		if ai.Reached[i] && ins.Op.IsMem() {
			mems = append(mems, i)
		}
	}
	isStore := func(i int) bool { return a.Prog.Instructions[i].Op.Info().Store }

	d := &MemDeps{}
	add := func(e MemDep) {
		d.Edges = append(d.Edges, e)
		switch e.Kind {
		case MustAlias:
			d.Must++
		case MayAlias:
			d.May++
		case NoAlias:
			// Never added as an edge.
		}
		if e.Carried {
			d.Carried++
		}
	}

	// Intra-iteration edges in program order.
	for xi, x := range mems {
		for _, y := range mems[xi+1:] {
			if !isStore(x) && !isStore(y) {
				continue
			}
			if k := ai.Alias(x, y); k != NoAlias {
				add(MemDep{From: x, To: y, Kind: k})
			}
		}
	}

	// Loop-carried edges: from y in one iteration to x in a later one,
	// for every pair inside the same loop (x <= y, so the dependence
	// wraps the back edge; x == y is a store depending on itself).
	// MustAlias survives the lift only when both addresses are
	// loop-invariant — a stride-walking must-alias pair touches a
	// different word each iteration.
	seen := map[[2]int]bool{}
	for _, l := range a.Loops {
		for _, x := range mems {
			if !l.Contains(x) {
				continue
			}
			for _, y := range mems {
				if !l.Contains(y) || y < x {
					continue
				}
				if !isStore(x) && !isStore(y) {
					continue
				}
				key := [2]int{y, x}
				if seen[key] {
					continue
				}
				if ai.aliasRanges(x, y) == NoAlias {
					continue
				}
				k := MayAlias
				if ai.Alias(x, y) == MustAlias && ai.loopInvariantAddr(l, x) && ai.loopInvariantAddr(l, y) {
					k = MustAlias
				}
				seen[key] = true
				add(MemDep{From: y, To: x, Kind: k, Carried: true})
			}
		}
	}
	sort.SliceStable(d.Edges[len(d.Edges)-d.Carried:], func(i, j int) bool {
		ei := d.Edges[len(d.Edges)-d.Carried+i]
		ej := d.Edges[len(d.Edges)-d.Carried+j]
		if ei.From != ej.From {
			return ei.From < ej.From
		}
		return ei.To < ej.To
	})
	return d
}

// CrossCheckMemDeps validates the static alias classification against
// one concrete execution: it replays the program from st and reports a
// must-alias-violation finding whenever the executor observes a
// store→load dependence between a pair the analysis classified NoAlias,
// or an effective address outside an instruction's abstract address.
// Any finding is an internal soundness defect of the analysis, surfaced
// as a diagnostic rather than a panic so ruudfa can report it.
func (ai *AbsInt) CrossCheckMemDeps(st *exec.State, maxInstr int64) ([]Finding, error) {
	p := ai.An.Prog
	owner := make([]int32, st.Mem.Size())
	for i := range owner {
		owner[i] = -1
	}
	reported := map[[2]int]bool{}
	var out []Finding
	h := exec.Hooks{Mem: func(ev exec.MemEvent) {
		if ev.Addr < 0 || ev.Addr >= int64(len(owner)) {
			return // the executor traps on this access
		}
		if !ai.Addr[ev.PC].Contains(ev.Addr) {
			key := [2]int{-1, ev.PC}
			if !reported[key] {
				reported[key] = true
				out = append(out, Finding{
					Rule: RuleMustAliasViolation, Idx: ev.PC, Line: ev.Ins.Line,
					Msg: fmt.Sprintf("executed address %d outside the abstract address %v", ev.Addr, ai.Addr[ev.PC]),
				})
			}
		}
		if ev.Store {
			owner[ev.Addr] = int32(ev.PC)
			return
		}
		w := owner[ev.Addr]
		if w < 0 {
			return
		}
		if ai.Alias(int(w), ev.PC) == NoAlias {
			key := [2]int{int(w), ev.PC}
			if !reported[key] {
				reported[key] = true
				out = append(out, Finding{
					Rule: RuleMustAliasViolation, Idx: ev.PC, Line: ev.Ins.Line,
					Msg: fmt.Sprintf("load reads address %d written by instr %d, statically classified no-alias", ev.Addr, w),
				})
			}
		}
	}}
	if _, err := st.RunHooks(p, maxInstr, h); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Idx != out[j].Idx {
			return out[i].Idx < out[j].Idx
		}
		return out[i].Msg < out[j].Msg
	})
	return out, nil
}
