package dfa_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ruu/internal/asm"
	"ruu/internal/dfa"
	"ruu/internal/livermore"
)

// wantRE matches a `; want <rule>` annotation in a fixture comment.
var wantRE = regexp.MustCompile(`[;#]\s*want\s+([a-z-]+)`)

// TestLintFixtures runs the linter over every testdata fixture and
// checks the findings against the fixtures' `; want <rule>` comments,
// bidirectionally: every annotation must be hit on its line, and every
// finding must be annotated.
func TestLintFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.s"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no fixtures under testdata/")
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			type want struct {
				line int
				rule dfa.Rule
				hit  bool
			}
			var wants []*want
			for i, line := range strings.Split(string(src), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				r, ok := dfa.RuleByName(m[1])
				if !ok {
					t.Fatalf("%s:%d: unknown rule %q in want annotation", file, i+1, m[1])
				}
				wants = append(wants, &want{line: i + 1, rule: r})
			}
			if len(wants) == 0 {
				t.Fatalf("%s: no want annotations", file)
			}
			u, err := asm.Assemble(string(src))
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range dfa.Lint(u.Prog) {
				matched := false
				for _, w := range wants {
					if !w.hit && w.line == f.Line && w.rule == f.Rule {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: want %s, but no finding matched", file, w.line, w.rule)
				}
			}
		})
	}
}

// TestLivermoreLintClean pins that all fourteen kernel sources are free
// of lint findings (the acceptance bar for the rules' strictness).
func TestLivermoreLintClean(t *testing.T) {
	ks := livermore.Kernels()
	if len(ks) != 14 {
		t.Fatalf("got %d kernels, want 14", len(ks))
	}
	for _, k := range ks {
		u, err := k.Unit()
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range dfa.Lint(u.Prog) {
			t.Errorf("%s: %s", k.Name, f)
		}
	}
}

// TestExamplesLintClean lints every standalone assembly file under
// examples/, the same corpus `make dfa` gates in CI.
func TestExamplesLintClean(t *testing.T) {
	root := filepath.Join("..", "..", "examples")
	found := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || filepath.Ext(path) != ".s" {
			return nil
		}
		found++
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		u, err := asm.Assemble(string(src))
		if err != nil {
			t.Errorf("%s: %v", path, err)
			return nil
		}
		for _, f := range dfa.Lint(u.Prog) {
			t.Errorf("%s: %s", path, f)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if found == 0 {
		t.Fatal("no .s files under examples/")
	}
}
