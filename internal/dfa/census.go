package dfa

import (
	"fmt"

	"ruu/internal/exec"
	"ruu/internal/isa"
)

// Census counts the register-hazard pairs in one dynamic execution —
// the quantities the paper's issue mechanisms exist to handle: RAW
// hazards are resolved by waiting (reservation stations, the RUU's
// ready logic); WAR and WAW hazards are what register renaming through
// tags / RUU instances makes a non-issue (§3, §5).
type Census struct {
	// DynInstrs is the number of dynamic instructions executed (HALT and
	// NOPs included, matching exec.RunResult.Executed and
	// machine.Stats.Instructions).
	DynInstrs int64
	// RAW counts dynamic source reads of a register a previous
	// instruction wrote (one per read operand, the flow dependencies an
	// issue mechanism must wait for if the value is still in flight).
	RAW int64
	// WAR counts dynamic register writes where another instruction read
	// the register since its previous write (anti dependencies).
	WAR int64
	// WAW counts dynamic register writes to a register already written
	// (output dependencies).
	WAW int64
	// Branches and Taken count dynamic branches.
	Branches, Taken int64
	// Trap is non-nil if execution stopped at a trap; the census then
	// covers the executed prefix.
	Trap *exec.Trap
}

// ComputeCensus replays the program on the functional executor, starting
// from st (which it mutates), and tallies the dynamic hazard census.
// maxInstr bounds the replay (exec.DefaultMaxInstructions if <= 0).
func ComputeCensus(p *isa.Program, st *exec.State, maxInstr int64) (Census, error) {
	if maxInstr <= 0 {
		maxInstr = exec.DefaultMaxInstructions
	}
	var (
		c         Census
		written   [isa.NumRegs]bool
		readSince [isa.NumRegs]bool
		srcs      [2]isa.Reg
	)
	for !st.Halted {
		if c.DynInstrs >= maxInstr {
			return c, fmt.Errorf("dfa: census instruction budget %d exhausted at pc=%d", maxInstr, st.PC)
		}
		pc := st.PC
		ins, trap := st.Step(p)
		if trap != nil {
			c.Trap = trap
			return c, nil
		}
		c.DynInstrs++
		if ins.Op.IsBranch() {
			c.Branches++
			if st.PC != pc+1 {
				c.Taken++
			}
		}

		// A write hazard pairs this instruction with an *earlier* one, so
		// the destination's prior state is sampled before this
		// instruction's own reads are recorded (reading your own
		// destination operand is not a hazard).
		dstFlat := -1
		prevWritten, prevRead := false, false
		if d, ok := ins.Dst(); ok {
			dstFlat = d.Flat()
			prevWritten = written[dstFlat]
			prevRead = readSince[dstFlat]
		}
		for _, r := range ins.Srcs(srcs[:0]) {
			f := r.Flat()
			if written[f] {
				c.RAW++
			}
			readSince[f] = true
		}
		if dstFlat >= 0 {
			if prevWritten {
				c.WAW++
			}
			if prevRead {
				c.WAR++
			}
			written[dstFlat] = true
			readSince[dstFlat] = false
		}
	}
	return c, nil
}
