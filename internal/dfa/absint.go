package dfa

import (
	"fmt"
	"math"

	"ruu/internal/exec"
	"ruu/internal/isa"
)

// This file is the abstract-interpretation layer: a value-range /
// constant-propagation fixpoint over the 144-register space in a
// combined interval + stride domain, with widening at the natural-loop
// heads cfg.go identifies. Its two consumers are the memory-dependence
// analysis (memdep.go derives static must/may-alias edges from the
// abstract effective addresses of loads and stores) and the lint rules
// that need value information (oob-access, loop-invariant-load).
//
// Soundness contract (asserted by a property test over the progsynth
// corpus and all Livermore kernels): for every instruction the concrete
// executor reaches, every architectural register's concrete value lies
// inside the abstract interval computed for that program point, and
// every memory access's concrete effective address lies inside the
// instruction's abstract address. Any operation the transfer functions
// cannot model precisely (floating-point bit patterns, wrapped integer
// overflow, loaded memory values) degrades to Top, never to a wrong
// range.

// Infinity sentinels: Lo == NegInf means "unbounded below", Hi ==
// PosInf "unbounded above". The two sentinel values themselves are
// treated as infinities, not as ordinary points — an interval that
// would need to represent math.MaxInt64 exactly becomes unbounded
// instead, which is sound (larger) and keeps bound arithmetic simple.
const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// AbsVal is one element of the interval+stride abstract domain: the set
// of int64 values v with Lo <= v <= Hi and, when Stride > 0 and Lo is
// finite, v ≡ Lo (mod Stride). Stride == 0 means the singleton {Lo}
// (then Hi == Lo). The zero value is the singleton {0} — the
// architectural register-file reset value, which makes the zero
// AbsRegs the zero-filled entry state for free.
type AbsVal struct {
	Lo, Hi int64
	Stride int64
}

// Top is the unconstrained abstract value (any int64).
var Top = AbsVal{Lo: NegInf, Hi: PosInf, Stride: 1}

// Const returns the singleton abstract value {v}.
func Const(v int64) AbsVal { return AbsVal{Lo: v, Hi: v}.norm() }

// Range returns the abstract value [lo, hi] with unit stride.
func Range(lo, hi int64) AbsVal { return AbsVal{Lo: lo, Hi: hi, Stride: 1}.norm() }

// IsConst reports whether the value is a singleton, returning it.
func (v AbsVal) IsConst() (int64, bool) {
	if v.Stride == 0 && v.Lo != NegInf && v.Hi != PosInf {
		return v.Lo, true
	}
	return 0, false
}

// IsTop reports whether the value is unconstrained.
func (v AbsVal) IsTop() bool { return v.Lo == NegInf && v.Hi == PosInf }

// norm canonicalises: an unbounded-below value loses its congruence
// anchor (Stride forced to 1), Hi is shrunk onto the congruence
// lattice, and a one-point interval becomes a singleton.
func (v AbsVal) norm() AbsVal {
	if v.Lo == NegInf {
		if v.Hi == NegInf {
			// Degenerate singleton {MinInt64}; Contains still admits it.
			return AbsVal{Lo: NegInf, Hi: NegInf, Stride: 0}
		}
		v.Stride = 1
		return v
	}
	if v.Hi == PosInf {
		if v.Stride < 1 {
			v.Stride = 1
		}
		return v
	}
	if v.Stride > 0 {
		d := uint64(v.Hi) - uint64(v.Lo)
		v.Hi = v.Lo + int64(d-d%uint64(v.Stride))
	}
	if v.Lo == v.Hi {
		v.Stride = 0
	} else if v.Stride == 0 {
		v.Stride = 1
	}
	return v
}

// Contains reports whether concrete value x lies in the abstract set.
func (v AbsVal) Contains(x int64) bool {
	if v.Lo != NegInf && x < v.Lo {
		return false
	}
	if v.Hi != PosInf && x > v.Hi {
		return false
	}
	if v.Stride > 1 && v.Lo != NegInf {
		d := uint64(x) - uint64(v.Lo)
		return d%uint64(v.Stride) == 0
	}
	if v.Stride == 0 {
		return x == v.Lo
	}
	return true
}

// String renders the value for diagnostics: a constant as its literal,
// otherwise "[lo,hi]" with an optional "/stride" congruence suffix.
func (v AbsVal) String() string {
	if c, ok := v.IsConst(); ok {
		return fmt.Sprintf("%d", c)
	}
	lo, hi := "-inf", "+inf"
	if v.Lo != NegInf {
		lo = fmt.Sprintf("%d", v.Lo)
	}
	if v.Hi != PosInf {
		hi = fmt.Sprintf("%d", v.Hi)
	}
	if v.Stride > 1 {
		return fmt.Sprintf("[%s,%s]/%d", lo, hi, v.Stride)
	}
	return fmt.Sprintf("[%s,%s]", lo, hi)
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// absDiff returns |a-b| as uint64 (exact for any int64 pair).
func absDiff(a, b int64) uint64 {
	if a >= b {
		return uint64(a) - uint64(b)
	}
	return uint64(b) - uint64(a)
}

// strideJoin folds the congruence information of two values anchored at
// finite lows: the joint stride is gcd(sa, sb, |loA - loB|), capped into
// int64 range.
func strideJoin(a, b AbsVal) int64 {
	if a.Lo == NegInf || b.Lo == NegInf {
		return 1
	}
	d := absDiff(a.Lo, b.Lo)
	if d > uint64(PosInf) {
		return 1
	}
	return gcd64(gcd64(a.Stride, b.Stride), int64(d))
}

// Join returns the least upper bound of a and b.
func (v AbsVal) Join(o AbsVal) AbsVal {
	lo := v.Lo
	if o.Lo < lo {
		lo = o.Lo
	}
	hi := v.Hi
	if o.Hi > hi {
		hi = o.Hi
	}
	return AbsVal{Lo: lo, Hi: hi, Stride: strideJoin(v, o)}.norm()
}

// Widen returns a value at least as large as Join(v, o) that guarantees
// termination of ascending chains: a bound that grew jumps to its
// infinity; the stride only ever coarsens along divisor chains.
func (v AbsVal) Widen(o AbsVal) AbsVal {
	j := v.Join(o)
	if j.Lo < v.Lo {
		j.Lo = NegInf
	}
	if j.Hi > v.Hi {
		j.Hi = PosInf
	}
	return j.norm()
}

// Meet intersects v with the plain interval [lo, hi], preserving v's
// congruence by snapping the new bounds onto it. ok is false when the
// intersection is empty (the refining branch edge is infeasible).
func (v AbsVal) Meet(lo, hi int64) (AbsVal, bool) {
	nlo, nhi := v.Lo, v.Hi
	if lo > nlo {
		nlo = lo
	}
	if hi < nhi {
		nhi = hi
	}
	if nlo > nhi {
		return AbsVal{}, false
	}
	if v.Stride > 1 && v.Lo != NegInf {
		// Snap nlo up and nhi down to values ≡ v.Lo (mod Stride).
		// nlo >= v.Lo and nhi >= v.Lo here, so the uint64 differences
		// are exact.
		s := uint64(v.Stride)
		if nlo != NegInf {
			d := uint64(nlo) - uint64(v.Lo)
			if r := d % s; r != 0 {
				step := int64(s - r)
				if nlo > PosInf-step { // no congruent value above nlo
					return AbsVal{}, false
				}
				nlo += step
			}
		}
		if nhi != PosInf {
			d := uint64(nhi) - uint64(v.Lo)
			if r := d % s; r != 0 {
				nhi -= int64(r) // stays >= v.Lo: r <= nhi - v.Lo
			}
		}
		if nlo > nhi {
			return AbsVal{}, false
		}
	}
	return AbsVal{Lo: nlo, Hi: nhi, Stride: v.Stride}.norm(), true
}

// addBound adds two bounds of the same side (inf is that side's
// sentinel); ok=false signals int64 overflow of a finite sum — the
// caller degrades to Top, since the concrete machine wraps.
func addBound(a, b int64, inf int64) (int64, bool) {
	if a == inf || b == inf {
		return inf, true
	}
	if a == NegInf || a == PosInf || b == NegInf || b == PosInf {
		// An opposite-side sentinel slipped in (degenerate operand):
		// treat as overflow rather than do sentinel arithmetic.
		return 0, false
	}
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// absAdd abstracts two's-complement addition: interval sums, with any
// wrap degrading to Top.
func absAdd(a, b AbsVal) AbsVal {
	lo, ok1 := addBound(a.Lo, b.Lo, NegInf)
	hi, ok2 := addBound(a.Hi, b.Hi, PosInf)
	if !ok1 || !ok2 {
		return Top
	}
	return AbsVal{Lo: lo, Hi: hi, Stride: gcd64(a.Stride, b.Stride)}.norm()
}

// absNeg abstracts negation (used to build subtraction). A set that
// may contain MinInt64 degrades to Top because -MinInt64 wraps.
func absNeg(a AbsVal) AbsVal {
	if a.Lo == NegInf {
		return Top
	}
	lo := int64(NegInf)
	if a.Hi != PosInf {
		lo = -a.Hi
	}
	return AbsVal{Lo: lo, Hi: -a.Lo, Stride: a.Stride}.norm()
}

func absSub(a, b AbsVal) AbsVal { return absAdd(a, absNeg(b)) }

// mulBound multiplies two finite bounds; ok=false on overflow.
func mulBound(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// absMul abstracts multiplication: corner products over finite
// intervals, Top on any unbounded operand or overflow. The stride of
// (lo_a + i·s_a)(lo_b + j·s_b) − lo_a·lo_b is a multiple of
// gcd(lo_a·s_b, lo_b·s_a, s_a·s_b).
func absMul(a, b AbsVal) AbsVal {
	if a.Lo == NegInf || a.Hi == PosInf || b.Lo == NegInf || b.Hi == PosInf {
		return Top
	}
	lo, hi := int64(0), int64(0)
	first := true
	for _, x := range [2]int64{a.Lo, a.Hi} {
		for _, y := range [2]int64{b.Lo, b.Hi} {
			p, ok := mulBound(x, y)
			if !ok {
				return Top
			}
			if first || p < lo {
				lo = p
			}
			if first || p > hi {
				hi = p
			}
			first = false
		}
	}
	s1, ok1 := mulBound(a.Lo, b.Stride)
	s2, ok2 := mulBound(b.Lo, a.Stride)
	s3, ok3 := mulBound(a.Stride, b.Stride)
	stride := int64(1)
	if ok1 && ok2 && ok3 {
		stride = gcd64(gcd64(s1, s2), s3)
	}
	return AbsVal{Lo: lo, Hi: hi, Stride: stride}.norm()
}

// absShl abstracts x << c for a singleton shift count.
func absShl(a AbsVal, c uint) AbsVal {
	if c == 0 {
		return a
	}
	if a.Lo < 0 || a.Hi == PosInf {
		return Top
	}
	if a.Hi > PosInf>>c {
		return Top // shift can carry into or past the sign bit
	}
	return AbsVal{Lo: a.Lo << c, Hi: a.Hi << c, Stride: a.Stride << c}.norm()
}

// absShr abstracts the logical right shift x >> c.
func absShr(a AbsVal, c uint) AbsVal {
	if c == 0 {
		return a
	}
	if a.Lo < 0 {
		// Negative inputs become huge unsigned values; after any shift
		// of >= 1 the result is non-negative and at most MaxUint64>>c.
		hi := int64(uint64(math.MaxUint64) >> c)
		return AbsVal{Lo: 0, Hi: hi, Stride: 1}.norm()
	}
	if a.Hi == PosInf {
		return AbsVal{Lo: 0, Hi: PosInf, Stride: 1}.norm()
	}
	return AbsVal{Lo: a.Lo >> c, Hi: a.Hi >> c, Stride: 1}.norm()
}

// nextPow2Mask returns the smallest 2^k-1 covering v (v >= 0).
func nextPow2Mask(v int64) int64 {
	m := int64(1)
	for m-1 < v && m > 0 {
		m <<= 1
	}
	if m <= 0 {
		return PosInf
	}
	return m - 1
}

// absBitwise abstracts AND/OR/XOR: exact on singletons; bounded by bit
// width when both operands are known non-negative; Top otherwise.
func absBitwise(op isa.Op, a, b AbsVal) AbsVal {
	ca, aok := a.IsConst()
	cb, bok := b.IsConst()
	if aok && bok {
		switch op {
		case isa.AndS:
			return Const(ca & cb)
		case isa.OrS:
			return Const(ca | cb)
		case isa.XorS:
			return Const(ca ^ cb)
		default:
			return Top // not a bitwise op; caller routes only the three
		}
	}
	if a.Lo >= 0 && b.Lo >= 0 && a.Hi != PosInf && b.Hi != PosInf {
		switch op {
		case isa.AndS:
			hi := a.Hi
			if b.Hi < hi {
				hi = b.Hi
			}
			return Range(0, hi)
		case isa.OrS, isa.XorS:
			hi := a.Hi
			if b.Hi > hi {
				hi = b.Hi
			}
			return Range(0, nextPow2Mask(hi))
		default:
			return Top
		}
	}
	return Top
}

// absALU mirrors exec.ALU over the abstract domain: given the abstract
// values of the instruction's sources (in isa.Srcs order), it returns
// the abstract result. Anything not modelled precisely returns Top.
func absALU(ins isa.Instruction, s1, s2 AbsVal) AbsVal {
	switch ins.Op {
	case isa.AddA, isa.AddS:
		return absAdd(s1, s2)
	case isa.SubA, isa.SubS:
		return absSub(s1, s2)
	case isa.MulA:
		return absMul(s1, s2)
	case isa.AddAImm:
		return absAdd(s1, Const(ins.Imm))
	case isa.LoadAImm, isa.LoadSImm:
		return Const(ins.Imm)
	case isa.AndS, isa.OrS, isa.XorS:
		return absBitwise(ins.Op, s1, s2)
	case isa.ShlS:
		if c, ok := s2.IsConst(); ok {
			return absShl(s1, uint(uint64(c)&63))
		}
		return Top
	case isa.ShrS:
		if c, ok := s2.IsConst(); ok {
			return absShr(s1, uint(uint64(c)&63))
		}
		if s1.Lo >= 0 {
			// Any logical shift of a non-negative value stays in [0, hi].
			return AbsVal{Lo: 0, Hi: s1.Hi, Stride: 1}.norm()
		}
		return Top
	case isa.ShlSImm:
		return absShl(s1, uint(uint64(ins.Imm)&63))
	case isa.ShrSImm:
		return absShr(s1, uint(uint64(ins.Imm)&63))
	case isa.FAdd, isa.FSub, isa.FMul, isa.FRecip:
		// Results are float64 bit patterns; the integer domain has no
		// useful structure for them.
		return Top
	case isa.MovSA, isa.MovAS, isa.MovAB, isa.MovBA, isa.MovST, isa.MovTS:
		return s1
	default:
		return Top
	}
}

// refineCond narrows the condition register's abstract value along one
// edge of a conditional branch. ok=false means the edge is infeasible
// for every value in v (the successor is not reachable through it).
func refineCond(op isa.Op, v AbsVal, taken bool) (AbsVal, bool) {
	switch op {
	case isa.BrAZ, isa.BrSZ: // taken iff cond == 0
		if taken {
			return v.Meet(0, 0)
		}
		return excludeZero(v)
	case isa.BrANZ, isa.BrSNZ: // taken iff cond != 0
		if taken {
			return excludeZero(v)
		}
		return v.Meet(0, 0)
	case isa.BrAP, isa.BrSP: // taken iff cond > 0
		if taken {
			return v.Meet(1, PosInf)
		}
		return v.Meet(NegInf, 0)
	case isa.BrAM, isa.BrSM: // taken iff cond < 0
		if taken {
			return v.Meet(NegInf, -1)
		}
		return v.Meet(0, PosInf)
	default:
		return v, true
	}
}

// excludeZero removes 0 from v where the interval representation can
// express it (only at the interval's ends).
func excludeZero(v AbsVal) (AbsVal, bool) {
	if c, ok := v.IsConst(); ok && c == 0 {
		return AbsVal{}, false
	}
	step := v.Stride
	if step < 1 {
		step = 1
	}
	if v.Lo == 0 {
		v.Lo += step
	}
	if v.Hi == 0 {
		v.Hi -= step
	}
	if v.Lo != NegInf && v.Hi != PosInf && v.Lo > v.Hi {
		return AbsVal{}, false
	}
	return v.norm(), true
}

// AbsRegs is one abstract register-file state: an AbsVal per flat
// register index. The zero value models the architectural reset state
// (every register the singleton {0}).
type AbsRegs [isa.NumRegs]AbsVal

// EntryFromState captures a concrete architectural state as the
// abstract entry state: every register becomes a singleton. This is
// the entry for analyzing a specific (program, initial state) pair —
// exactly what the simulator runs.
func EntryFromState(st *exec.State) AbsRegs {
	var e AbsRegs
	for i := 0; i < isa.NumRegs; i++ {
		e[i] = Const(st.Reg(isa.FromFlat(i)))
	}
	return e
}

// EntryTop returns the unconstrained entry state (any initial register
// values — the right entry when the initial state is unknown).
func EntryTop() AbsRegs {
	var e AbsRegs
	for i := range e {
		e[i] = Top
	}
	return e
}

// AbsInt is the result of the abstract interpretation of one program:
// per-instruction pre-states and, for memory instructions, abstract
// effective addresses. Build it with Analysis.Interpret.
type AbsInt struct {
	// An is the underlying static analysis.
	An *Analysis
	// In is the abstract register state on entry to each instruction
	// (the join over all CFG edges into it). Valid only where Reached.
	In []AbsRegs
	// Reached marks instructions the abstract execution can reach. It
	// can be smaller than An.Reachable when branch refinement proves
	// edges infeasible, and is never larger.
	Reached []bool
	// Addr is the abstract effective address of each load/store
	// (meaningless for non-memory instructions).
	Addr []AbsVal
	// MemWords is the memory image size the analysis assumed for the
	// oob-access rule (0 = unknown: only definitely-negative addresses
	// are out of range).
	MemWords int
}

// widenAfter is the number of joins into a loop head tolerated before
// widening kicks in; a couple of precise rounds let small constant
// iteration patterns (e.g. a two-phase flag) settle exactly.
const widenAfter = 2

// safetyWiden bounds join counts anywhere (defence against pathological
// CFGs; ordinary programs stabilise via loop-head widening alone).
const safetyWiden = 64

// Interpret runs the abstract interpretation from the given entry
// state. memWords is the memory-image size in words for the oob rule
// (0 = unknown).
func (a *Analysis) Interpret(entry AbsRegs, memWords int) *AbsInt {
	n := len(a.Prog.Instructions)
	ai := &AbsInt{
		An:       a,
		In:       make([]AbsRegs, n),
		Reached:  make([]bool, n),
		Addr:     make([]AbsVal, n),
		MemWords: memWords,
	}
	if n == 0 {
		return ai
	}
	isHead := make([]bool, n)
	for _, l := range a.Loops {
		isHead[l.Head] = true
	}
	joins := make([]int, n)

	var srcs [2]isa.Reg
	ai.In[0] = entry
	ai.Reached[0] = true
	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true

	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		inWork[i] = false

		ins := a.Prog.Instructions[i]
		out := ai.In[i] // copy (array value)
		ss := ins.Srcs(srcs[:0])
		var s1, s2 AbsVal
		if len(ss) > 0 {
			s1 = out[ss[0].Flat()]
		}
		if len(ss) > 1 {
			s2 = out[ss[1].Flat()]
		}
		if d, ok := ins.Dst(); ok {
			if ins.Op.Info().Load {
				out[d.Flat()] = Top // memory contents are not modelled
			} else {
				out[d.Flat()] = absALU(ins, s1, s2)
			}
		}

		condReg, isCond := ins.Op.CondReg()
		target := int(ins.Imm)
		for _, s := range a.Succs[i] {
			edge := out
			if isCond && target != i+1 {
				// Two distinguishable edges: refine the tested register.
				refined, feasible := refineCond(ins.Op, out[condReg.Flat()], s == target)
				if !feasible {
					continue
				}
				edge[condReg.Flat()] = refined
			}
			if !ai.Reached[s] {
				ai.In[s] = edge
				ai.Reached[s] = true
				if !inWork[s] {
					work = append(work, s)
					inWork[s] = true
				}
				continue
			}
			changed := false
			widen := (isHead[s] && joins[s] >= widenAfter) || joins[s] >= safetyWiden
			for r := 0; r < isa.NumRegs; r++ {
				var nv AbsVal
				if widen {
					nv = ai.In[s][r].Widen(edge[r])
				} else {
					nv = ai.In[s][r].Join(edge[r])
				}
				if nv != ai.In[s][r] {
					ai.In[s][r] = nv
					changed = true
				}
			}
			if changed {
				joins[s]++
				if !inWork[s] {
					work = append(work, s)
					inWork[s] = true
				}
			}
		}
	}

	// Final pass: abstract effective addresses of memory instructions.
	for i, ins := range a.Prog.Instructions {
		if !ai.Reached[i] || !ins.Op.IsMem() {
			continue
		}
		base := ai.In[i][isa.A(int(ins.J)).Flat()]
		ai.Addr[i] = absAdd(base, Const(ins.Imm))
	}
	return ai
}

// InterpretState is the analyze-this-exact-run form: the entry state is
// the concrete initial state and the memory size comes from its image.
func (a *Analysis) InterpretState(st *exec.State) *AbsInt {
	return a.Interpret(EntryFromState(st), st.Mem.Size())
}

// DefinitelyOOB reports whether every address in the instruction's
// abstract address set faults: entirely negative, or entirely at or
// beyond the memory image when its size is known.
func (ai *AbsInt) DefinitelyOOB(i int) bool {
	v := ai.Addr[i]
	if v.Hi != PosInf && v.Hi < 0 {
		return true
	}
	if ai.MemWords > 0 && v.Lo != NegInf && v.Lo >= int64(ai.MemWords) {
		return true
	}
	return false
}
