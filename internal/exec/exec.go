// Package exec implements the architectural semantics of the model
// architecture: a functional executor that runs programs instruction by
// instruction, the value-computation helpers shared with the timing
// engines, and dynamic trace emission.
//
// The executor plays the role of the paper's CRAY-1 simulator [15]: it
// defines what every instruction does, produces the dynamic instruction
// stream, and serves as the golden reference against which every timing
// engine's final architectural state is checked.
package exec

import (
	"fmt"
	"math"

	"ruu/internal/isa"
	"ruu/internal/memsys"
)

// TrapKind classifies instruction-generated traps.
type TrapKind uint8

const (
	// TrapNone means no trap.
	TrapNone TrapKind = iota
	// TrapExplicit is raised by the TRAP instruction.
	TrapExplicit
	// TrapBadAddress is a memory access outside the memory image.
	TrapBadAddress
	// TrapPageFault is an access to an unmapped page.
	TrapPageFault
	// TrapFPOverflow is reserved for floating-point overflow; the model
	// architecture (like our CRAY-1 model) does not raise it — IEEE
	// infinities propagate — but the kind exists so handlers can be
	// written against the full taxonomy.
	TrapFPOverflow
	// TrapBadPC is a program-counter value outside the program.
	TrapBadPC
	// TrapExternal is an asynchronous (device/timer) interrupt delivered
	// at a commit boundary; it is not raised by any instruction.
	TrapExternal
)

func (k TrapKind) String() string {
	switch k {
	case TrapNone:
		return "none"
	case TrapExplicit:
		return "explicit-trap"
	case TrapBadAddress:
		return "bad-address"
	case TrapPageFault:
		return "page-fault"
	case TrapFPOverflow:
		return "fp-overflow"
	case TrapBadPC:
		return "bad-pc"
	case TrapExternal:
		return "external"
	default:
		return "trap?"
	}
}

// Trap describes an instruction-generated trap: the faulting instruction's
// program counter (instruction index) and, for memory traps, the address.
type Trap struct {
	Kind TrapKind
	PC   int
	Addr int64
}

// Error implements error.
func (t *Trap) Error() string {
	if t.Kind == TrapBadAddress || t.Kind == TrapPageFault {
		return fmt.Sprintf("exec: %s at pc=%d addr=%d", t.Kind, t.PC, t.Addr)
	}
	return fmt.Sprintf("exec: %s at pc=%d", t.Kind, t.PC)
}

// faultTrap converts a memory fault to a trap.
func faultTrap(f *memsys.Fault, pc int) *Trap {
	k := TrapBadAddress
	if f.Kind == memsys.FaultPage {
		k = TrapPageFault
	}
	return &Trap{Kind: k, PC: pc, Addr: f.Addr}
}

// RegState is the architectural register state of the model architecture.
type RegState struct {
	A [isa.NumA]int64
	S [isa.NumS]int64
	B [isa.NumB]int64
	T [isa.NumT]int64
}

// Reg returns the value of register r.
func (rs *RegState) Reg(r isa.Reg) int64 {
	switch r.File {
	case isa.FileA:
		return rs.A[r.Idx]
	case isa.FileS:
		return rs.S[r.Idx]
	case isa.FileB:
		return rs.B[r.Idx]
	case isa.FileT:
		return rs.T[r.Idx]
	default:
		panic("exec: read of invalid register " + r.String())
	}
}

// SetReg sets register r to v.
func (rs *RegState) SetReg(r isa.Reg, v int64) {
	switch r.File {
	case isa.FileA:
		rs.A[r.Idx] = v
	case isa.FileS:
		rs.S[r.Idx] = v
	case isa.FileB:
		rs.B[r.Idx] = v
	case isa.FileT:
		rs.T[r.Idx] = v
	default:
		panic("exec: write of invalid register " + r.String())
	}
}

// State is the complete architectural state: registers, memory, and PC.
type State struct {
	RegState
	Mem    *memsys.Memory
	PC     int
	Halted bool
}

// NewState returns a fresh state over the given memory image (a default
// image is created when mem is nil).
func NewState(mem *memsys.Memory) *State {
	if mem == nil {
		mem = memsys.NewMemory(0)
	}
	return &State{Mem: mem}
}

// Clone returns a deep copy of the state.
func (st *State) Clone() *State {
	c := *st
	c.Mem = st.Mem.Clone()
	return &c
}

// EqualRegs reports whether two states have identical register files.
func (st *State) EqualRegs(o *State) bool {
	return st.RegState == o.RegState
}

// DiffRegs returns the registers whose values differ between two states.
func (st *State) DiffRegs(o *State) []isa.Reg {
	var out []isa.Reg
	for i := 0; i < isa.NumRegs; i++ {
		r := isa.FromFlat(i)
		if st.Reg(r) != o.Reg(r) {
			out = append(out, r)
		}
	}
	return out
}

// F64 interprets an S-register value as a float64.
func F64(bits int64) float64 { return math.Float64frombits(uint64(bits)) }

// Bits converts a float64 to its S-register representation.
func Bits(f float64) int64 { return int64(math.Float64bits(f)) }

// ALU computes the result of a register-computational instruction given
// its source values. It covers every opcode that executes in a functional
// unit except loads and stores. src1 and src2 are the values of the
// instruction's first and second source registers, in isa.Srcs order.
// Moves and immediates take their single input in src1 (or none).
func ALU(ins isa.Instruction, src1, src2 int64) int64 {
	switch ins.Op {
	case isa.AddA, isa.AddS:
		return src1 + src2
	case isa.SubA, isa.SubS:
		return src1 - src2
	case isa.MulA:
		return src1 * src2
	case isa.AddAImm:
		return src1 + ins.Imm
	case isa.LoadAImm, isa.LoadSImm:
		return ins.Imm
	case isa.AndS:
		return src1 & src2
	case isa.OrS:
		return src1 | src2
	case isa.XorS:
		return src1 ^ src2
	case isa.ShlS:
		return int64(uint64(src1) << (uint64(src2) & 63))
	case isa.ShrS:
		return int64(uint64(src1) >> (uint64(src2) & 63))
	case isa.ShlSImm:
		return int64(uint64(src1) << (uint64(ins.Imm) & 63))
	case isa.ShrSImm:
		return int64(uint64(src1) >> (uint64(ins.Imm) & 63))
	case isa.FAdd:
		return Bits(F64(src1) + F64(src2))
	case isa.FSub:
		return Bits(F64(src1) - F64(src2))
	case isa.FMul:
		return Bits(F64(src1) * F64(src2))
	case isa.FRecip:
		return Bits(1.0 / F64(src1))
	case isa.MovSA, isa.MovAS, isa.MovAB, isa.MovBA, isa.MovST, isa.MovTS:
		return src1
	case isa.Trap:
		return 0
	default:
		panic(fmt.Sprintf("exec: ALU called for non-computational op %s", ins.Op))
	}
}

// EffAddr computes the effective address of a load or store given the
// value of its base register.
func EffAddr(ins isa.Instruction, base int64) int64 {
	return base + ins.Imm
}

// BranchTaken evaluates a branch's condition given the value of the
// condition register (ignored for Jmp).
func BranchTaken(op isa.Op, cond int64) bool {
	switch op {
	case isa.Jmp:
		return true
	case isa.BrAZ, isa.BrSZ:
		return cond == 0
	case isa.BrANZ, isa.BrSNZ:
		return cond != 0
	case isa.BrAP, isa.BrSP:
		return cond > 0
	case isa.BrAM, isa.BrSM:
		return cond < 0
	default:
		panic(fmt.Sprintf("exec: BranchTaken called for non-branch %s", op))
	}
}

// Step executes the instruction at st.PC, updating st. It returns the
// executed instruction and a trap, if one was raised; on a trap the state
// is not modified by the trapping instruction (traps are precise by
// construction here) and PC remains at the trapping instruction.
func (st *State) Step(p *isa.Program) (isa.Instruction, *Trap) {
	if st.Halted {
		return isa.Instruction{}, nil
	}
	if st.PC < 0 || st.PC >= len(p.Instructions) {
		return isa.Instruction{}, &Trap{Kind: TrapBadPC, PC: st.PC}
	}
	ins := p.Instructions[st.PC]
	info := ins.Op.Info()

	switch {
	case ins.Op == isa.Nop:
		st.PC++
	case ins.Op == isa.Halt:
		st.Halted = true
	case ins.Op == isa.Trap:
		return ins, &Trap{Kind: TrapExplicit, PC: st.PC}
	case ins.Op.IsBranch():
		var cond int64
		if r, ok := ins.Op.CondReg(); ok {
			cond = st.Reg(r)
		}
		if BranchTaken(ins.Op, cond) {
			st.PC = int(ins.Imm)
		} else {
			st.PC++
		}
	case info.Load:
		base := st.Reg(isa.A(int(ins.J)))
		addr := EffAddr(ins, base)
		v, f := st.Mem.Read(addr)
		if f != nil {
			return ins, faultTrap(f, st.PC)
		}
		dst, _ := ins.Dst()
		st.SetReg(dst, v)
		st.PC++
	case info.Store:
		base := st.Reg(isa.A(int(ins.J)))
		addr := EffAddr(ins, base)
		data := st.Reg(isa.Reg{File: info.File, Idx: ins.I})
		if f := st.Mem.Write(addr, data); f != nil {
			return ins, faultTrap(f, st.PC)
		}
		st.PC++
	default:
		// Computational instruction.
		var srcs [2]isa.Reg
		ss := ins.Srcs(srcs[:0])
		var v1, v2 int64
		if len(ss) > 0 {
			v1 = st.Reg(ss[0])
		}
		if len(ss) > 1 {
			v2 = st.Reg(ss[1])
		}
		res := ALU(ins, v1, v2)
		if dst, ok := ins.Dst(); ok {
			st.SetReg(dst, res)
		}
		st.PC++
	}
	return ins, nil
}

// RunResult summarises a functional execution.
type RunResult struct {
	// Executed is the number of dynamic instructions retired (HALT
	// included, NOPs included, the trapping instruction excluded).
	Executed int64
	// Trap is non-nil if execution stopped at a trap.
	Trap *Trap
	// Branches and Taken count dynamic branches.
	Branches, Taken int64
	// Loads and Stores count dynamic memory operations.
	Loads, Stores int64
}

// DefaultMaxInstructions bounds Run against runaway programs.
const DefaultMaxInstructions = 50_000_000

// MemEvent describes one retired dynamic memory access: the accessing
// instruction, its effective address, and the value transferred (the
// loaded value for loads, the stored data for stores). The address is
// sampled before the instruction executes, so a load that overwrites
// its own base register still reports the address it actually accessed.
type MemEvent struct {
	PC    int
	Ins   isa.Instruction
	Addr  int64
	Value int64
	Store bool
}

// Hooks are the optional per-instruction observation points of a
// functional run. They exist for oracle cross-checks: the static
// analyses in internal/dfa replay programs through them to compare
// their claims (value ranges, memory-dependence edges) against the
// architectural truth. Nil hooks cost nothing.
type Hooks struct {
	// Trace is invoked for every retired instruction with its PC.
	Trace func(pc int, ins isa.Instruction)
	// Mem is invoked for every retired load and store.
	Mem func(ev MemEvent)
	// Pre is invoked before each instruction executes, with the PC
	// about to execute (the architectural state is the instruction's
	// input state). It is not called for the trapping instruction's
	// retry after a trap, because RunHooks returns at the trap.
	Pre func(pc int)
}

// Run executes the program until HALT, a trap, or maxInstr dynamic
// instructions (DefaultMaxInstructions if maxInstr<=0). If trace is
// non-nil it is invoked for every retired instruction with its PC.
func (st *State) Run(p *isa.Program, maxInstr int64, trace func(pc int, ins isa.Instruction)) (RunResult, error) {
	return st.RunHooks(p, maxInstr, Hooks{Trace: trace})
}

// RunHooks is Run with the full observation-hook set.
func (st *State) RunHooks(p *isa.Program, maxInstr int64, h Hooks) (RunResult, error) {
	if maxInstr <= 0 {
		maxInstr = DefaultMaxInstructions
	}
	var res RunResult
	for !st.Halted {
		if res.Executed >= maxInstr {
			return res, fmt.Errorf("exec: instruction budget %d exhausted at pc=%d (runaway program?)", maxInstr, st.PC)
		}
		pc := st.PC
		if h.Pre != nil {
			h.Pre(pc)
		}
		// Sample the effective address before the step: a load may
		// overwrite its own base register.
		var addr int64
		memHook := false
		if h.Mem != nil && pc >= 0 && pc < len(p.Instructions) {
			if ins := p.Instructions[pc]; ins.Op.IsMem() {
				addr = EffAddr(ins, st.Reg(isa.A(int(ins.J))))
				memHook = true
			}
		}
		ins, trap := st.Step(p)
		if trap != nil {
			res.Trap = trap
			return res, nil
		}
		res.Executed++
		if ins.Op.IsBranch() {
			res.Branches++
			if st.PC != pc+1 {
				res.Taken++
			}
		}
		if info := ins.Op.Info(); info.Load {
			res.Loads++
			if memHook {
				dst, _ := ins.Dst()
				h.Mem(MemEvent{PC: pc, Ins: ins, Addr: addr, Value: st.Reg(dst)})
			}
		} else if info.Store {
			res.Stores++
			if memHook {
				data := st.Reg(isa.Reg{File: info.File, Idx: ins.I})
				h.Mem(MemEvent{PC: pc, Ins: ins, Addr: addr, Value: data, Store: true})
			}
		}
		if h.Trace != nil {
			h.Trace(pc, ins)
		}
	}
	return res, nil
}

// Reference runs the program functionally on a clone of the initial state
// and returns the final state. It is the oracle used by engine tests.
func Reference(p *isa.Program, initial *State, maxInstr int64) (*State, RunResult, error) {
	st := initial.Clone()
	res, err := st.Run(p, maxInstr, nil)
	return st, res, err
}
