package exec

import (
	"math"
	"testing"
	"testing/quick"

	"ruu/internal/isa"
	"ruu/internal/memsys"
)

func run(t *testing.T, ins []isa.Instruction, setup func(*State)) (*State, RunResult) {
	t.Helper()
	p := &isa.Program{Instructions: append(ins, isa.Instruction{Op: isa.Halt})}
	st := NewState(nil)
	if setup != nil {
		setup(st)
	}
	res, err := st.Run(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st, res
}

func TestALUSemantics(t *testing.T) {
	f := func(x float64) int64 { return Bits(x) }
	cases := []struct {
		name string
		ins  isa.Instruction
		v1   int64
		v2   int64
		want int64
	}{
		{"adda", isa.Instruction{Op: isa.AddA}, 3, 4, 7},
		{"suba", isa.Instruction{Op: isa.SubA}, 3, 4, -1},
		{"mula", isa.Instruction{Op: isa.MulA}, -3, 4, -12},
		{"addai", isa.Instruction{Op: isa.AddAImm, Imm: -5}, 10, 0, 5},
		{"lai", isa.Instruction{Op: isa.LoadAImm, Imm: 99}, 0, 0, 99},
		{"lsi", isa.Instruction{Op: isa.LoadSImm, Imm: -7}, 0, 0, -7},
		{"adds", isa.Instruction{Op: isa.AddS}, 1 << 40, 1, 1<<40 + 1},
		{"subs", isa.Instruction{Op: isa.SubS}, 5, 9, -4},
		{"ands", isa.Instruction{Op: isa.AndS}, 0b1100, 0b1010, 0b1000},
		{"ors", isa.Instruction{Op: isa.OrS}, 0b1100, 0b1010, 0b1110},
		{"xors", isa.Instruction{Op: isa.XorS}, 0b1100, 0b1010, 0b0110},
		{"shls", isa.Instruction{Op: isa.ShlS}, 1, 4, 16},
		{"shls-mod64", isa.Instruction{Op: isa.ShlS}, 1, 68, 16},
		{"shrs-logical", isa.Instruction{Op: isa.ShrS}, -1, 60, 15},
		{"shlsi", isa.Instruction{Op: isa.ShlSImm, Imm: 3}, 2, 0, 16},
		{"shrsi", isa.Instruction{Op: isa.ShrSImm, Imm: 1}, 8, 0, 4},
		{"fadd", isa.Instruction{Op: isa.FAdd}, f(1.5), f(2.25), f(3.75)},
		{"fsub", isa.Instruction{Op: isa.FSub}, f(1.5), f(2.25), f(-0.75)},
		{"fmul", isa.Instruction{Op: isa.FMul}, f(1.5), f(2.0), f(3.0)},
		{"frecip", isa.Instruction{Op: isa.FRecip}, f(4.0), 0, f(0.25)},
		{"movsa", isa.Instruction{Op: isa.MovSA}, 123, 0, 123},
		{"movab", isa.Instruction{Op: isa.MovAB}, 77, 0, 77},
	}
	for _, c := range cases {
		if got := ALU(c.ins, c.v1, c.v2); got != c.want {
			t.Errorf("%s: ALU = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestALUPanicsOnNonComputational(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ALU accepted a branch")
		}
	}()
	ALU(isa.Instruction{Op: isa.Jmp}, 0, 0)
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op   isa.Op
		cond int64
		want bool
	}{
		{isa.Jmp, 0, true},
		{isa.BrAZ, 0, true}, {isa.BrAZ, 1, false},
		{isa.BrANZ, 0, false}, {isa.BrANZ, -2, true},
		{isa.BrAP, 1, true}, {isa.BrAP, 0, false}, {isa.BrAP, -1, false},
		{isa.BrAM, -1, true}, {isa.BrAM, 0, false}, {isa.BrAM, 1, false},
		{isa.BrSZ, 0, true}, {isa.BrSNZ, 5, true},
		{isa.BrSP, 9, true}, {isa.BrSM, -9, true},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.cond); got != c.want {
			t.Errorf("BranchTaken(%s, %d) = %v, want %v", c.op, c.cond, got, c.want)
		}
	}
}

func TestStepComputationAndMoves(t *testing.T) {
	st, res := run(t, []isa.Instruction{
		{Op: isa.LoadAImm, I: 1, Imm: 5},
		{Op: isa.LoadAImm, I: 2, Imm: 7},
		{Op: isa.AddA, I: 3, J: 1, K: 2},
		{Op: isa.MovSA, I: 4, J: 3},   // S4 = A3
		{Op: isa.MovBA, I: 3, Imm: 9}, // B9 = A3
		{Op: isa.MovAB, I: 5, Imm: 9}, // A5 = B9
		{Op: isa.MovTS, I: 4, Imm: 8}, // T8 = S4
		{Op: isa.MovST, I: 6, Imm: 8}, // S6 = T8
	}, nil)
	if st.A[3] != 12 || st.S[4] != 12 || st.B[9] != 12 || st.A[5] != 12 || st.T[8] != 12 || st.S[6] != 12 {
		t.Fatalf("move chain broken: %+v", st.RegState)
	}
	if res.Executed != 9 {
		t.Fatalf("executed = %d, want 9", res.Executed)
	}
}

func TestStepMemory(t *testing.T) {
	st, res := run(t, []isa.Instruction{
		{Op: isa.LoadAImm, I: 1, Imm: 100},
		{Op: isa.LoadSImm, I: 2, Imm: 55},
		{Op: isa.StoreS, I: 2, J: 1, Imm: 3}, // M[103] = 55
		{Op: isa.LoadS, I: 3, J: 1, Imm: 3},  // S3 = M[103]
		{Op: isa.LoadAImm, I: 4, Imm: -9},
		{Op: isa.StoreA, I: 4, J: 1, Imm: 4}, // M[104] = -9
		{Op: isa.LoadA, I: 5, J: 1, Imm: 4},  // A5 = M[104]
	}, nil)
	if st.Mem.Peek(103) != 55 || st.S[3] != 55 {
		t.Fatalf("S store/load broken")
	}
	if st.Mem.Peek(104) != -9 || st.A[5] != -9 {
		t.Fatalf("A store/load broken")
	}
	if res.Loads != 2 || res.Stores != 2 {
		t.Fatalf("loads=%d stores=%d", res.Loads, res.Stores)
	}
}

func TestStepBranches(t *testing.T) {
	// Countdown loop: A0 from 3 to 0, incrementing A1 each time.
	p := &isa.Program{Instructions: []isa.Instruction{
		{Op: isa.LoadAImm, I: 0, Imm: 3},
		{Op: isa.AddAImm, I: 1, J: 1, Imm: 1},  // 1: loop body
		{Op: isa.AddAImm, I: 0, J: 0, Imm: -1}, // 2
		{Op: isa.BrANZ, Imm: 1},                // 3
		{Op: isa.Halt},
	}}
	st := NewState(nil)
	res, err := st.Run(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.A[1] != 3 {
		t.Fatalf("A1 = %d, want 3", st.A[1])
	}
	if res.Branches != 3 || res.Taken != 2 {
		t.Fatalf("branches=%d taken=%d, want 3/2", res.Branches, res.Taken)
	}
}

func TestTraps(t *testing.T) {
	t.Run("explicit", func(t *testing.T) {
		p := &isa.Program{Instructions: []isa.Instruction{{Op: isa.Trap}, {Op: isa.Halt}}}
		st := NewState(nil)
		res, err := st.Run(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap == nil || res.Trap.Kind != TrapExplicit || res.Trap.PC != 0 {
			t.Fatalf("trap = %v", res.Trap)
		}
	})
	t.Run("bad-address", func(t *testing.T) {
		st, _ := NewState(nil), 0
		p := &isa.Program{Instructions: []isa.Instruction{
			{Op: isa.LoadAImm, I: 1, Imm: -1},
			{Op: isa.LoadS, I: 2, J: 1, Imm: 0},
			{Op: isa.Halt},
		}}
		res, err := st.Run(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap == nil || res.Trap.Kind != TrapBadAddress || res.Trap.Addr != -1 {
			t.Fatalf("trap = %v", res.Trap)
		}
		if st.S[2] != 0 {
			t.Fatal("faulting load modified its destination")
		}
	})
	t.Run("page-fault", func(t *testing.T) {
		mem := memsys.NewMemory(0)
		mem.Unmap(2048)
		st := NewState(mem)
		p := &isa.Program{Instructions: []isa.Instruction{
			{Op: isa.LoadAImm, I: 1, Imm: 2048},
			{Op: isa.StoreA, I: 1, J: 1, Imm: 0},
			{Op: isa.Halt},
		}}
		res, err := st.Run(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap == nil || res.Trap.Kind != TrapPageFault {
			t.Fatalf("trap = %v", res.Trap)
		}
		// Map the page, resume, and finish.
		mem.Map(2048)
		res2, err := st.Run(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res2.Trap != nil {
			t.Fatalf("still trapping: %v", res2.Trap)
		}
		if mem.Peek(2048) != 2048 {
			t.Fatal("store after resume missing")
		}
	})
	t.Run("bad-pc", func(t *testing.T) {
		p := &isa.Program{Instructions: []isa.Instruction{{Op: isa.Nop}}}
		st := NewState(nil)
		res, err := st.Run(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap == nil || res.Trap.Kind != TrapBadPC {
			t.Fatalf("trap = %v", res.Trap)
		}
	})
}

func TestTrapError(t *testing.T) {
	tr := &Trap{Kind: TrapPageFault, PC: 9, Addr: 4096}
	if got := tr.Error(); got != "exec: page-fault at pc=9 addr=4096" {
		t.Errorf("Error() = %q", got)
	}
	tr2 := &Trap{Kind: TrapExplicit, PC: 3}
	if got := tr2.Error(); got != "exec: explicit-trap at pc=3" {
		t.Errorf("Error() = %q", got)
	}
}

func TestRunBudget(t *testing.T) {
	p := &isa.Program{Instructions: []isa.Instruction{{Op: isa.Jmp, Imm: 0}}}
	st := NewState(nil)
	if _, err := st.Run(p, 100, nil); err == nil {
		t.Fatal("infinite loop not caught by budget")
	}
}

func TestCloneIndependence(t *testing.T) {
	st := NewState(nil)
	st.A[1] = 5
	st.Mem.Poke(10, 99)
	c := st.Clone()
	c.A[1] = 6
	c.Mem.Poke(10, 100)
	if st.A[1] != 5 || st.Mem.Peek(10) != 99 {
		t.Fatal("clone shares state with original")
	}
	if c.PC != st.PC || !c.EqualRegs(st) == (st.A[1] == c.A[1]) {
		// EqualRegs must report the difference we introduced.
		if c.EqualRegs(st) {
			t.Fatal("EqualRegs missed a difference")
		}
	}
	diffs := st.DiffRegs(c)
	if len(diffs) != 1 || diffs[0] != (isa.Reg{File: isa.FileA, Idx: 1}) {
		t.Fatalf("DiffRegs = %v", diffs)
	}
}

// TestF64BitsRoundTrip via testing/quick: Bits and F64 are inverses.
func TestF64BitsRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true // NaN payloads round-trip bitwise, checked below
		}
		return F64(Bits(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(b int64) bool { return Bits(F64(b)) == b }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestRegStateAccessors(t *testing.T) {
	var rs RegState
	for i := 0; i < isa.NumRegs; i++ {
		r := isa.FromFlat(i)
		rs.SetReg(r, int64(i+1000))
	}
	for i := 0; i < isa.NumRegs; i++ {
		r := isa.FromFlat(i)
		if got := rs.Reg(r); got != int64(i+1000) {
			t.Fatalf("%v = %d, want %d", r, got, i+1000)
		}
	}
}

func TestTraceCallback(t *testing.T) {
	p := &isa.Program{Instructions: []isa.Instruction{
		{Op: isa.LoadAImm, I: 1, Imm: 1},
		{Op: isa.Nop},
		{Op: isa.Halt},
	}}
	st := NewState(nil)
	var pcs []int
	if _, err := st.Run(p, 0, func(pc int, ins isa.Instruction) { pcs = append(pcs, pc) }); err != nil {
		t.Fatal(err)
	}
	if len(pcs) != 3 || pcs[0] != 0 || pcs[1] != 1 || pcs[2] != 2 {
		t.Fatalf("trace pcs = %v", pcs)
	}
}

func TestRunHooksMemEvents(t *testing.T) {
	// A load that overwrites its own base register must still report the
	// address it accessed (sampled before the step), and a store reports
	// the data it wrote.
	p := &isa.Program{Instructions: []isa.Instruction{
		{Op: isa.LoadAImm, I: 1, Imm: 100},   // A1 = 100
		{Op: isa.LoadSImm, I: 2, Imm: 7},     // S2 = 7
		{Op: isa.StoreS, I: 2, J: 1, Imm: 3}, // M[103] = S2
		{Op: isa.LoadA, I: 1, J: 1, Imm: 3},  // A1 = M[103] (base clobbered)
		{Op: isa.Halt},
	}}
	st := NewState(nil)
	var evs []MemEvent
	var pres []int
	res, err := st.RunHooks(p, 0, Hooks{
		Mem: func(ev MemEvent) { evs = append(evs, ev) },
		Pre: func(pc int) { pres = append(pres, pc) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loads != 1 || res.Stores != 1 {
		t.Fatalf("loads/stores = %d/%d, want 1/1", res.Loads, res.Stores)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d mem events, want 2", len(evs))
	}
	if !evs[0].Store || evs[0].Addr != 103 || evs[0].Value != 7 || evs[0].PC != 2 {
		t.Errorf("store event = %+v", evs[0])
	}
	if evs[1].Store || evs[1].Addr != 103 || evs[1].Value != 7 || evs[1].PC != 3 {
		t.Errorf("load event = %+v", evs[1])
	}
	if st.A[1] != 7 {
		t.Errorf("A1 = %d, want 7", st.A[1])
	}
	want := []int{0, 1, 2, 3, 4}
	if len(pres) != len(want) {
		t.Fatalf("pre pcs = %v", pres)
	}
	for i, pc := range want {
		if pres[i] != pc {
			t.Fatalf("pre pcs = %v, want %v", pres, want)
		}
	}
}
