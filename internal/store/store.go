// Package store is the persistent layer of the sweep fabric's result
// cache: a disk-backed, crash-safe store of simulation results keyed by
// the scheduler's content-addressed SHA-256 job keys. It sits *under*
// the in-memory LRU (internal/sched.Cache) — a memory miss falls
// through to disk, a completed job is written through to disk — so
// results survive process restarts and a redeployed worker starts with
// a warm cache instead of re-simulating its whole working set.
//
// Layout (everything under one root directory):
//
//	objects/<hh>/<64-hex>   one entry per key, sharded by the first
//	                        key byte; header + checksum + payload
//	index.log               append-only recency log (fsync'd on put),
//	                        compacted on every Open
//	quarantine/<64-hex>.<n> corrupt entries moved aside on read
//	tmp/                    staging area for atomic writes
//
// Crash safety is the tmp+rename discipline: an entry is staged in
// tmp/, fsync'd, then renamed into objects/ (atomic on POSIX), and the
// index append is fsync'd after the rename. A crash can therefore lose
// at most the entry being written — never corrupt an existing one —
// and an entry that reached objects/ but not the index is adopted by
// the directory reconciliation on the next Open. Entries carry a
// payload checksum; a corrupt file (torn write, bit rot) is moved to
// quarantine/ on read and reported as a miss, never served.
//
// The store is safe for concurrent use. All errors are absorbed into
// counters (Stats) rather than returned from the hot Get/Put paths: a
// sick disk degrades the service to re-simulation, it does not take
// the service down.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Key is a content address: the scheduler's SHA-256 job key. The store
// never interprets it beyond hex-encoding it into a file name.
type Key = [sha256.Size]byte

// magic heads every entry file; bumping it invalidates (quarantines)
// entries written by incompatible versions.
const magic = "RUUSTOR1"

// headerSize is the fixed entry-file prefix: magic, payload length,
// payload SHA-256.
const headerSize = len(magic) + 8 + sha256.Size

// DefaultMaxBytes bounds the resident payload bytes when Options
// leaves MaxBytes zero (1 GiB — roughly two million cached sweep
// outcomes).
const DefaultMaxBytes = 1 << 30

// Options parameterises Open.
type Options struct {
	// MaxBytes bounds resident payload bytes; the least recently used
	// entries are evicted beyond it. Zero means DefaultMaxBytes;
	// negative disables the bound.
	MaxBytes int64
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Entries and Bytes describe the resident set; Capacity the
	// configured byte bound (0 = unbounded).
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	Capacity int64 `json:"capacity"`
	// Hits and Misses count Get outcomes; Evictions entries displaced
	// by the byte bound; Quarantined corrupt entries moved aside;
	// BytesWritten cumulative payload bytes accepted by Put.
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Evictions    int64 `json:"evictions"`
	Quarantined  int64 `json:"quarantined"`
	BytesWritten int64 `json:"bytes_written"`
	// ReadErrors and WriteErrors count I/O failures absorbed by Get
	// and Put (each such Get is also a miss; each such Put is a no-op).
	ReadErrors  int64 `json:"read_errors"`
	WriteErrors int64 `json:"write_errors"`
}

// Store is a disk-backed result store. Create with Open; Close releases
// the index file (entries need no shutdown step — every Put is durable
// the moment it returns). All state lives in the core, accessed only
// under the mutex; file I/O happens under it too, which keeps the index
// log ordered and is far from the bottleneck next to the simulations
// being cached.
type Store struct {
	mu   sync.Mutex
	core storeCore // guardedby: mu
}

// storeCore is the store's single-threaded implementation; Store's
// exported methods serialize access to it.
type storeCore struct {
	dir      string
	maxBytes int64

	entries map[Key]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64
	index   *os.File // append-only recency log, fsync'd on put
	closed  bool

	stats Stats
}

// entry is one resident object in LRU order.
type entry struct {
	key  Key
	size int64
}

// Open opens (creating if needed) the store rooted at dir, replays and
// compacts the index log, reconciles it against the objects on disk,
// clears stale tmp files, and enforces the byte bound.
func Open(dir string, opts Options) (*Store, error) {
	maxBytes := opts.MaxBytes
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	if maxBytes < 0 {
		maxBytes = 0 // unbounded
	}
	for _, sub := range []string{"objects", "quarantine", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: create %s: %w", sub, err)
		}
	}
	s := &Store{core: storeCore{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
	}}
	if err := s.core.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Get returns the payload stored under k. A corrupt entry is moved to
// quarantine/ and reported as a miss; an I/O failure is counted and
// reported as a miss.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.get(k)
}

// Put stores payload under k durably: staged in tmp/, fsync'd, renamed
// into objects/, index record fsync'd. Failures are counted and leave
// the store unchanged. Re-putting a resident key refreshes recency
// only.
func (s *Store) Put(k Key, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.core.put(k, payload)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.core.stats
	st.Entries = len(s.core.entries)
	st.Bytes = s.core.bytes
	st.Capacity = s.core.maxBytes
	return st
}

// Close releases the index file. Entries are durable already; a closed
// store answers every Get with a miss and drops every Put.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.close()
}

// recover rebuilds the in-memory index: replay the log for recency
// order, adopt on-disk objects the log missed (crash between rename
// and append), drop log entries whose files vanished, sweep tmp/, and
// rewrite the log compacted.
func (c *storeCore) recover() error {
	order := c.replayLog()

	// The ground truth is the objects directory: walk it and stat every
	// entry file. Names are hex keys; anything else is ignored.
	onDisk := map[Key]int64{}
	shards, _ := os.ReadDir(filepath.Join(c.dir, "objects"))
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		files, _ := os.ReadDir(filepath.Join(c.dir, "objects", shard.Name()))
		for _, f := range files {
			k, ok := parseKeyName(f.Name())
			if !ok {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			size := info.Size() - int64(headerSize)
			if size < 0 {
				size = 0
			}
			onDisk[k] = size
		}
	}

	// Resident set = log order filtered to files that exist, plus
	// adopted strays in sorted-name order (deterministic), coldest.
	for _, k := range order {
		size, ok := onDisk[k]
		if !ok {
			continue
		}
		if e, dup := c.entries[k]; dup {
			// Later log records win: refresh recency.
			c.lru.MoveToFront(e)
			continue
		}
		c.entries[k] = c.lru.PushFront(&entry{key: k, size: size})
		c.bytes += size
	}
	for _, k := range sortedKeys(onDisk) {
		if _, ok := c.entries[k]; !ok {
			c.entries[k] = c.lru.PushBack(&entry{key: k, size: onDisk[k]})
			c.bytes += onDisk[k]
		}
	}

	// Stale staging files are leftovers of interrupted writes.
	if tmps, err := os.ReadDir(filepath.Join(c.dir, "tmp")); err == nil {
		for _, f := range tmps {
			_ = os.Remove(filepath.Join(c.dir, "tmp", f.Name()))
		}
	}

	c.evictOver()

	// Rewrite the log compacted (cold to hot, so replay rebuilds the
	// same order), tmp+rename like any other durable write.
	if err := c.rewriteLog(); err != nil {
		return err
	}
	f, err := os.OpenFile(c.indexPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open index: %w", err)
	}
	c.index = f
	return nil
}

// replayLog reads index.log and returns referenced keys in order (the
// caller deduplicates via the LRU map, so repeats refresh recency). A
// missing or unreadable log is an empty history, not an error — the
// directory scan recovers state.
func (c *storeCore) replayLog() []Key {
	data, err := os.ReadFile(c.indexPath())
	if err != nil {
		return nil
	}
	var order []Key
	for _, line := range strings.Split(string(data), "\n") {
		if len(line) < 2 {
			continue
		}
		op, rest := line[0], line[2:]
		k, ok := parseKeyName(rest)
		if !ok {
			continue
		}
		switch op {
		case 'P', 'G':
			order = append(order, k)
		case 'D':
			// Deletion: drop every earlier reference.
			kept := order[:0]
			for _, o := range order {
				if o != k {
					kept = append(kept, o)
				}
			}
			order = kept
		}
	}
	// Replay pushes to the LRU front in order, so hottest must come
	// last; reverse the first-use order into cold-to-hot.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// rewriteLog writes the compacted index (one P record per resident
// entry, hot to cold — replay reverses it) via tmp+rename and fsyncs
// both file and directory.
func (c *storeCore) rewriteLog() error {
	var b strings.Builder
	for e := c.lru.Front(); e != nil; e = e.Next() {
		fmt.Fprintf(&b, "P %x\n", e.Value.(*entry).key)
	}
	tmp := filepath.Join(c.dir, "tmp", "index.log.tmp")
	if err := writeFileSync(tmp, []byte(b.String())); err != nil {
		return fmt.Errorf("store: write index: %w", err)
	}
	if err := os.Rename(tmp, c.indexPath()); err != nil {
		return fmt.Errorf("store: install index: %w", err)
	}
	return syncDir(c.dir)
}

func (c *storeCore) indexPath() string { return filepath.Join(c.dir, "index.log") }

func (c *storeCore) objectPath(k Key) string {
	name := hex.EncodeToString(k[:])
	return filepath.Join(c.dir, "objects", name[:2], name)
}

func (c *storeCore) get(k Key) ([]byte, bool) {
	e, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	data, err := os.ReadFile(c.objectPath(k))
	if err != nil {
		// The index says present but the file is unreadable: drop the
		// entry so we stop probing it.
		c.stats.ReadErrors++
		c.drop(e, false)
		c.stats.Misses++
		return nil, false
	}
	payload, ok := decodeEntry(data)
	if !ok {
		c.quarantine(e)
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(e)
	c.appendLog("G %x\n", k, false)
	return payload, true
}

func (c *storeCore) put(k Key, payload []byte) {
	if c.closed {
		return
	}
	if e, ok := c.entries[k]; ok {
		// Content-addressed: an existing entry already holds this exact
		// payload.
		c.lru.MoveToFront(e)
		return
	}
	name := hex.EncodeToString(k[:])
	tmp := filepath.Join(c.dir, "tmp", name+".tmp")
	if err := writeFileSync(tmp, encodeEntry(payload)); err != nil {
		c.stats.WriteErrors++
		return
	}
	dst := c.objectPath(k)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		c.stats.WriteErrors++
		_ = os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, dst); err != nil {
		c.stats.WriteErrors++
		_ = os.Remove(tmp)
		return
	}
	if err := syncDir(filepath.Dir(dst)); err != nil {
		c.stats.WriteErrors++
	}
	size := int64(len(payload))
	c.entries[k] = c.lru.PushFront(&entry{key: k, size: size})
	c.bytes += size
	c.stats.BytesWritten += size
	c.appendLog("P %x\n", k, true)
	c.evictOver()
}

// evictOver enforces the byte bound by dropping least recently used
// entries (never the sole resident one, so a single oversized entry
// still serves).
func (c *storeCore) evictOver() {
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.drop(oldest, true)
		c.stats.Evictions++
	}
}

// drop removes an entry from the resident set and disk; logDelete
// records a D line so a replay forgets it too.
func (c *storeCore) drop(e *list.Element, logDelete bool) {
	ent := e.Value.(*entry)
	c.lru.Remove(e)
	delete(c.entries, ent.key)
	c.bytes -= ent.size
	_ = os.Remove(c.objectPath(ent.key))
	if logDelete {
		c.appendLog("D %x\n", ent.key, false)
	}
}

// quarantine moves a corrupt entry aside (objects/ -> quarantine/ with
// a uniqueness suffix) and removes it from the resident set.
func (c *storeCore) quarantine(e *list.Element) {
	ent := e.Value.(*entry)
	name := hex.EncodeToString(ent.key[:])
	src := c.objectPath(ent.key)
	for n := 0; ; n++ {
		dst := filepath.Join(c.dir, "quarantine", fmt.Sprintf("%s.%d", name, n))
		if _, err := os.Stat(dst); err == nil {
			continue
		}
		if err := os.Rename(src, dst); err != nil {
			_ = os.Remove(src)
		}
		break
	}
	c.lru.Remove(e)
	delete(c.entries, ent.key)
	c.bytes -= ent.size
	c.stats.Quarantined++
	c.appendLog("D %x\n", ent.key, false)
}

// appendLog appends one index record; only put records are fsync'd
// (recency refreshes are advisory — losing them costs cache ordering,
// never correctness).
func (c *storeCore) appendLog(format string, k Key, syncIt bool) {
	if c.index == nil {
		return
	}
	if _, err := fmt.Fprintf(c.index, format, k); err != nil {
		c.stats.WriteErrors++
		return
	}
	if syncIt {
		if err := c.index.Sync(); err != nil {
			c.stats.WriteErrors++
		}
	}
}

func (c *storeCore) close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.entries = make(map[Key]*list.Element)
	c.lru.Init()
	c.bytes = 0
	if c.index != nil {
		err := c.index.Close()
		c.index = nil
		return err
	}
	return nil
}

// encodeEntry frames a payload: magic, length, checksum, bytes.
func encodeEntry(payload []byte) []byte {
	buf := make([]byte, 0, headerSize+len(payload))
	buf = append(buf, magic...)
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(payload)))
	buf = append(buf, n[:]...)
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)
	return append(buf, payload...)
}

// decodeEntry validates an entry file and returns its payload.
func decodeEntry(data []byte) ([]byte, bool) {
	if len(data) < headerSize || string(data[:len(magic)]) != magic {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(data[len(magic) : len(magic)+8])
	payload := data[headerSize:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	var sum Key
	copy(sum[:], data[len(magic)+8:headerSize])
	if sha256.Sum256(payload) != sum {
		return nil, false
	}
	return payload, true
}

// parseKeyName decodes a 64-hex-char file name into a Key.
func parseKeyName(name string) (Key, bool) {
	var k Key
	if len(name) != 2*sha256.Size {
		return k, false
	}
	b, err := hex.DecodeString(name)
	if err != nil {
		return k, false
	}
	copy(k[:], b)
	return k, true
}

// sortedKeys returns map keys in lexicographic order (deterministic
// adoption order for unindexed files).
func sortedKeys(m map[Key]int64) []Key {
	out := make([]Key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i][:]) < string(out[j][:])
	})
	return out
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
