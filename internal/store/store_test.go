package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testKey(i int) Key {
	return sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()

	k := testKey(1)
	payload := []byte(`{"cycles":12345,"issue_rate":1.25}`)
	if _, ok := s.Get(k); ok {
		t.Fatal("Get before Put reported a hit")
	}
	s.Put(k, payload)
	got, ok := s.Get(k)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}

	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 entry, 1 hit, 1 miss", st)
	}
	if st.Bytes != int64(len(payload)) || st.BytesWritten != int64(len(payload)) {
		t.Fatalf("stats bytes = %d/%d, want %d", st.Bytes, st.BytesWritten, len(payload))
	}
}

// TestReopenServesFromDisk is the crash-safety core: everything Put
// before a Close (or crash — Put is durable on return) must be served
// byte-identical by a fresh Store over the same directory.
func TestReopenServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	payloads := map[int][]byte{}
	for i := 0; i < 8; i++ {
		payloads[i] = []byte(fmt.Sprintf(`{"result":%d}`, i*i))
		s.Put(testKey(i), payloads[i])
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if st := s2.Stats(); st.Entries != 8 {
		t.Fatalf("after reopen: %d entries, want 8", st.Entries)
	}
	for i, want := range payloads {
		got, ok := s2.Get(testKey(i))
		if !ok {
			t.Fatalf("key %d missing after reopen", i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %d: got %q want %q", i, got, want)
		}
	}
}

func TestClosedStoreDegrades(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	s.Put(testKey(1), []byte("x"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, ok := s.Get(testKey(1)); ok {
		t.Fatal("closed store served a hit")
	}
	s.Put(testKey(2), []byte("y")) // must not panic or write
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()

	k := testKey(1)
	s.Put(k, []byte("precious result bytes"))

	// Flip a payload byte on disk behind the store's back.
	path := s.core.objectPath(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read object: %v", err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt object: %v", err)
	}

	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 quarantined, 0 entries", st)
	}
	// The corrupt bytes must be preserved in quarantine/ for forensics.
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(q), err)
	}
	// And a reopen must not resurrect the entry.
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if _, ok := s2.Get(k); ok {
		t.Fatal("quarantined entry resurrected on reopen")
	}
}

func TestEvictionHonorsRecency(t *testing.T) {
	// Each payload is 100 bytes; cap at 250 so only 2 fit.
	payload := bytes.Repeat([]byte("x"), 100)
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 250})
	defer s.Close()

	s.Put(testKey(0), payload)
	s.Put(testKey(1), payload)
	if _, ok := s.Get(testKey(0)); !ok { // refresh 0 so 1 is now coldest
		t.Fatal("key 0 missing")
	}
	s.Put(testKey(2), payload) // evicts 1

	if _, ok := s.Get(testKey(1)); ok {
		t.Fatal("coldest entry survived eviction")
	}
	if _, ok := s.Get(testKey(0)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := s.Get(testKey(2)); !ok {
		t.Fatal("freshly inserted entry was evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

func TestOversizedEntryStillServes(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 10})
	defer s.Close()
	big := bytes.Repeat([]byte("y"), 1000)
	s.Put(testKey(1), big)
	if got, ok := s.Get(testKey(1)); !ok || !bytes.Equal(got, big) {
		t.Fatal("sole oversized entry not served")
	}
}

func TestRecencySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("z"), 100)
	s := mustOpen(t, dir, Options{MaxBytes: 250})
	s.Put(testKey(0), payload)
	s.Put(testKey(1), payload)
	if _, ok := s.Get(testKey(0)); !ok {
		t.Fatal("key 0 missing")
	}
	s.Close()

	// Reopen: the compacted log must have preserved that 1 is coldest.
	s2 := mustOpen(t, dir, Options{MaxBytes: 250})
	defer s2.Close()
	s2.Put(testKey(2), payload)
	if _, ok := s2.Get(testKey(1)); ok {
		t.Fatal("pre-reopen coldest entry survived post-reopen eviction")
	}
	if _, ok := s2.Get(testKey(0)); !ok {
		t.Fatal("pre-reopen hottest entry was evicted")
	}
}

// TestAdoptsUnindexedObject simulates a crash between the object
// rename and the index append: the file exists but no log line does.
// Open must adopt it.
func TestAdoptsUnindexedObject(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Put(testKey(1), []byte("indexed"))
	s.Close()

	// Plant a stray, well-formed object the index never saw.
	k := testKey(2)
	name := fmt.Sprintf("%x", k)
	shard := filepath.Join(dir, "objects", name[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(shard, name), encodeEntry([]byte("stray")), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	got, ok := s2.Get(k)
	if !ok || !bytes.Equal(got, []byte("stray")) {
		t.Fatalf("stray object not adopted: ok=%v got=%q", ok, got)
	}
}

// TestDropsGhostIndexEntries simulates the reverse: a log line whose
// object file vanished. Open must forget it.
func TestDropsGhostIndexEntries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	k := testKey(1)
	s.Put(k, []byte("doomed"))
	path := s.core.objectPath(k)
	s.Close()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if st := s2.Stats(); st.Entries != 0 {
		t.Fatalf("ghost entry resident: %+v", st)
	}
	if _, ok := s2.Get(k); ok {
		t.Fatal("ghost entry served")
	}
}

// TestTmpSweptOnOpen: interrupted staging files must not accumulate.
func TestTmpSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "tmp", "deadbeef.tmp")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp file survived Open: %v", err)
	}
}

// TestIndexCompaction: a long Get/Put history must compact to one line
// per resident entry on reopen.
func TestIndexCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 4; i++ {
		s.Put(testKey(i), []byte("v"))
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < 4; i++ {
			s.Get(testKey(i))
		}
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	s2.Close()
	data, err := os.ReadFile(filepath.Join(dir, "index.log"))
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte("\n")); n != 4 {
		t.Fatalf("compacted index has %d lines, want 4:\n%s", n, data)
	}
}

func TestPutExistingRefreshesOnly(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	k := testKey(1)
	s.Put(k, []byte("once"))
	s.Put(k, []byte("once"))
	st := s.Stats()
	if st.Entries != 1 || st.BytesWritten != 4 {
		t.Fatalf("re-Put changed state: %+v", st)
	}
}

func TestDecodeEntryRejects(t *testing.T) {
	good := encodeEntry([]byte("payload"))
	cases := map[string][]byte{
		"truncated":  good[:len(good)-1],
		"bad magic":  append([]byte("NOTMAGIC"), good[8:]...),
		"too short":  good[:headerSize-1],
		"bad length": append(append([]byte{}, good[:headerSize]...), []byte("payloadX")...),
	}
	for name, data := range cases {
		if _, ok := decodeEntry(data); ok {
			t.Errorf("decodeEntry accepted %s entry", name)
		}
	}
	if got, ok := decodeEntry(good); !ok || !bytes.Equal(got, []byte("payload")) {
		t.Error("decodeEntry rejected a valid entry")
	}
}
