// Package progsynth generates random, always-terminating programs for
// property-based testing: every issue engine must finish a synthesized
// program with exactly the architectural state the functional executor
// produces, under any configuration.
//
// Generated programs are structured: straight-line blocks of random
// computational, move, and memory instructions, wrapped in counted loops
// (countdown in A0, the only branch-testable A register), with optional
// nested loops (the outer count parked in B63) and forward conditional
// branches over short blocks. Memory operations address a dedicated data
// window through base register A6, which generated code never writes, so
// no synthesized program can fault.
package progsynth

import (
	"math/rand"

	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/memsys"
)

// Options bounds the generator.
type Options struct {
	// MaxLoops is the number of top-level counted loops (default 3).
	MaxLoops int
	// MaxBodyLen is the maximum instructions per loop body (default 20).
	MaxBodyLen int
	// MaxTrip is the maximum loop trip count (default 30).
	MaxTrip int
	// Nested enables one level of loop nesting (default true when zero
	// value is used via Generate).
	Nested bool
	// CondBranches enables forward conditional branches inside bodies.
	CondBranches bool
	// DataWords is the size of the addressable data window (default 64).
	DataWords int
}

func (o *Options) fill() {
	if o.MaxLoops <= 0 {
		o.MaxLoops = 3
	}
	if o.MaxBodyLen <= 0 {
		o.MaxBodyLen = 20
	}
	if o.MaxTrip <= 0 {
		o.MaxTrip = 30
	}
	if o.DataWords <= 0 {
		o.DataWords = 64
	}
}

// DataBase is the base address of the generated programs' data window;
// A6 holds it throughout.
const DataBase = 4096

// Generate synthesizes a program from the seed. Equal seeds yield equal
// programs.
func Generate(seed int64, opts Options) *isa.Program {
	return GenerateRand(rand.New(rand.NewSource(seed)), opts)
}

// GenerateRand synthesizes a program drawing randomness from r. The
// caller owns the source: equal sources (same seed, same position)
// yield equal programs, and threading one source through several
// generator calls keeps a whole test campaign reproducible from a
// single seed.
func GenerateRand(r *rand.Rand, opts Options) *isa.Program {
	opts.fill()
	g := &gen{r: r, o: opts}
	return g.program()
}

// NewState returns an architectural state with the data window
// initialised deterministically from the seed and A6 pointing at it.
//
// The seed is perturbed before use so that the data window and the
// program drawn from the same seed are decorrelated; NewStateRand with
// an explicitly positioned source skips the perturbation.
func NewState(seed int64, opts Options) *exec.State {
	return NewStateRand(rand.New(rand.NewSource(seed^0x5eed)), opts)
}

// NewStateRand returns an architectural state with the data window
// drawn from r and A6 pointing at it. The caller owns the source.
func NewStateRand(r *rand.Rand, opts Options) *exec.State {
	opts.fill()
	mem := memsys.NewMemory(0)
	for i := 0; i < opts.DataWords; i++ {
		mem.Poke(DataBase+int64(i), r.Int63n(1<<20)-1<<19)
	}
	st := exec.NewState(mem)
	return st
}

type gen struct {
	r *rand.Rand
	o Options
	p isa.Program
}

func (g *gen) emit(ins isa.Instruction) int {
	g.p.Instructions = append(g.p.Instructions, ins)
	return len(g.p.Instructions) - 1
}

func (g *gen) program() *isa.Program {
	// Prologue: establish the data base and seed some registers.
	g.emit(isa.Instruction{Op: isa.LoadAImm, I: 6, Imm: DataBase})
	for i := 1; i <= 5; i++ {
		g.emit(isa.Instruction{Op: isa.LoadAImm, I: uint8(i), Imm: int64(g.r.Intn(101) - 50)})
	}
	for i := 0; i < isa.NumS; i++ {
		g.emit(isa.Instruction{Op: isa.LoadSImm, I: uint8(i), Imm: int64(g.r.Intn(2001) - 1000)})
	}
	nLoops := 1 + g.r.Intn(g.o.MaxLoops)
	for i := 0; i < nLoops; i++ {
		g.loop(g.o.Nested && g.r.Intn(2) == 0)
	}
	g.block(1 + g.r.Intn(5)) // a straight-line epilogue
	g.emit(isa.Instruction{Op: isa.Halt})
	g.p.Labels = map[string]int{}
	return &g.p
}

// loop emits a counted loop: A0 countdown, decrement placed randomly
// early or late in the body, JANZ back edge.
func (g *gen) loop(nested bool) {
	trip := 1 + g.r.Intn(g.o.MaxTrip)
	g.emit(isa.Instruction{Op: isa.LoadAImm, I: 0, Imm: int64(trip)})
	top := len(g.p.Instructions)
	decEarly := g.r.Intn(2) == 0
	if decEarly {
		g.emit(isa.Instruction{Op: isa.AddAImm, I: 0, J: 0, Imm: -1})
	}
	g.block(1 + g.r.Intn(g.o.MaxBodyLen))
	if nested {
		// Park the outer count in B63, run an inner loop, restore.
		g.emit(isa.Instruction{Op: isa.MovBA, I: 0, Imm: 63})
		innerTrip := 1 + g.r.Intn(6)
		g.emit(isa.Instruction{Op: isa.LoadAImm, I: 0, Imm: int64(innerTrip)})
		innerTop := len(g.p.Instructions)
		g.emit(isa.Instruction{Op: isa.AddAImm, I: 0, J: 0, Imm: -1})
		g.block(1 + g.r.Intn(6))
		g.emit(isa.Instruction{Op: isa.BrANZ, Imm: int64(innerTop)})
		g.emit(isa.Instruction{Op: isa.MovAB, I: 0, Imm: 63})
	}
	if !decEarly {
		g.emit(isa.Instruction{Op: isa.AddAImm, I: 0, J: 0, Imm: -1})
	}
	g.emit(isa.Instruction{Op: isa.BrANZ, Imm: int64(top)})
}

// block emits n random body instructions, possibly with a forward
// conditional branch over a short run.
func (g *gen) block(n int) {
	for i := 0; i < n; i++ {
		if g.o.CondBranches && n-i > 3 && g.r.Intn(8) == 0 {
			skip := 1 + g.r.Intn(min(3, n-i-1))
			// Forward branch over `skip` instructions; both paths are
			// architecturally valid.
			br := g.pickForwardBranch()
			pos := g.emit(isa.Instruction{Op: br})
			for j := 0; j < skip; j++ {
				g.emit(g.bodyIns())
			}
			g.p.Instructions[pos].Imm = int64(len(g.p.Instructions))
			i += skip
			continue
		}
		g.emit(g.bodyIns())
	}
}

func (g *gen) pickForwardBranch() isa.Op {
	ops := []isa.Op{isa.BrAZ, isa.BrAP, isa.BrAM, isa.BrSZ, isa.BrSP, isa.BrSM}
	return ops[g.r.Intn(len(ops))]
}

// bodyIns picks one random, safe body instruction. A0 (loop counter) and
// A6 (data base) are never written; stores and loads stay inside the
// data window.
func (g *gen) bodyIns() isa.Instruction {
	writableA := func() uint8 { return uint8(1 + g.r.Intn(5)) } // A1-A5
	anyA := func() uint8 { return uint8(g.r.Intn(7)) }          // A0-A6
	s := func() uint8 { return uint8(g.r.Intn(isa.NumS)) }
	save := func() int64 { return int64(g.r.Intn(isa.NumB)) }
	disp := func() int64 { return int64(g.r.Intn(g.o.DataWords)) }

	switch g.r.Intn(14) {
	case 0:
		return isa.Instruction{Op: isa.AddA, I: writableA(), J: anyA(), K: anyA()}
	case 1:
		return isa.Instruction{Op: isa.SubA, I: writableA(), J: anyA(), K: anyA()}
	case 2:
		return isa.Instruction{Op: isa.MulA, I: writableA(), J: anyA(), K: anyA()}
	case 3:
		return isa.Instruction{Op: isa.AddAImm, I: writableA(), J: anyA(), Imm: int64(g.r.Intn(21) - 10)}
	case 4:
		ops := []isa.Op{isa.AddS, isa.SubS, isa.AndS, isa.OrS, isa.XorS, isa.ShlS, isa.ShrS}
		return isa.Instruction{Op: ops[g.r.Intn(len(ops))], I: s(), J: s(), K: s()}
	case 5:
		ops := []isa.Op{isa.FAdd, isa.FSub, isa.FMul}
		return isa.Instruction{Op: ops[g.r.Intn(len(ops))], I: s(), J: s(), K: s()}
	case 6:
		return isa.Instruction{Op: isa.ShlSImm, I: s(), J: s(), Imm: int64(g.r.Intn(8))}
	case 7:
		return isa.Instruction{Op: isa.MovSA, I: s(), J: anyA()}
	case 8:
		return isa.Instruction{Op: isa.MovAS, I: writableA(), J: s()}
	case 9:
		if g.r.Intn(2) == 0 {
			return isa.Instruction{Op: isa.MovBA, I: anyA(), Imm: save() % 62} // B0-B61 (B63 is the nest register)
		}
		return isa.Instruction{Op: isa.MovAB, I: writableA(), Imm: save() % 62}
	case 10:
		if g.r.Intn(2) == 0 {
			return isa.Instruction{Op: isa.MovTS, I: s(), Imm: save()}
		}
		return isa.Instruction{Op: isa.MovST, I: s(), Imm: save()}
	case 11:
		if g.r.Intn(2) == 0 {
			return isa.Instruction{Op: isa.LoadS, I: s(), J: 6, Imm: disp()}
		}
		return isa.Instruction{Op: isa.LoadA, I: writableA(), J: 6, Imm: disp()}
	case 12:
		if g.r.Intn(2) == 0 {
			return isa.Instruction{Op: isa.StoreS, I: s(), J: 6, Imm: disp()}
		}
		return isa.Instruction{Op: isa.StoreA, I: anyA(), J: 6, Imm: disp()}
	default:
		return isa.Instruction{Op: isa.LoadSImm, I: s(), Imm: int64(g.r.Intn(4001) - 2000)}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
