package progsynth

import (
	"testing"

	"ruu/internal/isa"
)

// TestGeneratedProgramsValid: every generated program passes ISA
// validation.
func TestGeneratedProgramsValid(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := Generate(seed, Options{Nested: true, CondBranches: true})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestGeneratedProgramsTerminate: every generated program halts on the
// functional executor without trapping, within a modest budget.
func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		opts := Options{Nested: true, CondBranches: true}
		p := Generate(seed, opts)
		st := NewState(seed, opts)
		res, err := st.Run(p, 2_000_000, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Trap != nil {
			t.Fatalf("seed %d: generated program trapped: %v", seed, res.Trap)
		}
		if !st.Halted {
			t.Fatalf("seed %d: did not halt", seed)
		}
	}
}

// TestNeverWritesReservedRegisters: generated bodies never write A6 (the
// data base) and only the loop scaffolding writes A0.
func TestNeverWritesReservedRegisters(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := Generate(seed, Options{Nested: true, CondBranches: true})
		for i, ins := range p.Instructions {
			dst, ok := ins.Dst()
			if !ok {
				continue
			}
			if dst == isa.A(6) && i > 0 {
				t.Fatalf("seed %d: instruction %d writes the data base A6: %v", seed, i, ins)
			}
			if dst == isa.A(0) {
				// Only the scaffolding forms are allowed: lai A0, n and
				// addai A0, A0, -1 and movab A0, B63.
				okForm := (ins.Op == isa.LoadAImm) ||
					(ins.Op == isa.AddAImm && ins.J == 0 && ins.Imm == -1) ||
					(ins.Op == isa.MovAB && ins.Imm == 63)
				if !okForm {
					t.Fatalf("seed %d: instruction %d writes A0 outside loop scaffolding: %v", seed, i, ins)
				}
			}
		}
	}
}

// TestMemoryAccessesStayInWindow: all generated loads/stores use the A6
// base with displacements inside the data window.
func TestMemoryAccessesStayInWindow(t *testing.T) {
	opts := Options{Nested: true, CondBranches: true, DataWords: 64}
	for seed := int64(0); seed < 50; seed++ {
		p := Generate(seed, opts)
		for i, ins := range p.Instructions {
			info := ins.Op.Info()
			if !info.Load && !info.Store {
				continue
			}
			if ins.J != 6 {
				t.Fatalf("seed %d: mem op %d uses base A%d", seed, i, ins.J)
			}
			if ins.Imm < 0 || ins.Imm >= int64(opts.DataWords) {
				t.Fatalf("seed %d: mem op %d displacement %d outside window", seed, i, ins.Imm)
			}
		}
	}
}

// TestStateDeterminism: equal seeds give equal data windows.
func TestStateDeterminism(t *testing.T) {
	a := NewState(9, Options{})
	b := NewState(9, Options{})
	if d := a.Mem.FirstDiff(b.Mem); d >= 0 {
		t.Fatalf("states differ at %d", d)
	}
	c := NewState(10, Options{})
	if d := a.Mem.FirstDiff(c.Mem); d < 0 {
		t.Fatal("different seeds give identical data (suspicious)")
	}
}

// TestOptionsBoundsRespected: programs without nesting or conditional
// branches contain only backward loop branches.
func TestOptionsBoundsRespected(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := Generate(seed, Options{Nested: false, CondBranches: false})
		for i, ins := range p.Instructions {
			if ins.Op.IsBranch() && int(ins.Imm) > i {
				t.Fatalf("seed %d: forward branch at %d with CondBranches off", seed, i)
			}
		}
	}
}
