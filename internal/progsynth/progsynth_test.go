package progsynth

import (
	"math/rand"
	"testing"

	"ruu/internal/isa"
)

// TestGeneratedProgramsValid: every generated program passes ISA
// validation.
func TestGeneratedProgramsValid(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := Generate(seed, Options{Nested: true, CondBranches: true})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestGeneratedProgramsTerminate: every generated program halts on the
// functional executor without trapping, within a modest budget.
func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		opts := Options{Nested: true, CondBranches: true}
		p := Generate(seed, opts)
		st := NewState(seed, opts)
		res, err := st.Run(p, 2_000_000, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Trap != nil {
			t.Fatalf("seed %d: generated program trapped: %v", seed, res.Trap)
		}
		if !st.Halted {
			t.Fatalf("seed %d: did not halt", seed)
		}
	}
}

// TestNeverWritesReservedRegisters: generated bodies never write A6 (the
// data base) and only the loop scaffolding writes A0.
func TestNeverWritesReservedRegisters(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := Generate(seed, Options{Nested: true, CondBranches: true})
		for i, ins := range p.Instructions {
			dst, ok := ins.Dst()
			if !ok {
				continue
			}
			if dst == isa.A(6) && i > 0 {
				t.Fatalf("seed %d: instruction %d writes the data base A6: %v", seed, i, ins)
			}
			if dst == isa.A(0) {
				// Only the scaffolding forms are allowed: lai A0, n and
				// addai A0, A0, -1 and movab A0, B63.
				okForm := (ins.Op == isa.LoadAImm) ||
					(ins.Op == isa.AddAImm && ins.J == 0 && ins.Imm == -1) ||
					(ins.Op == isa.MovAB && ins.Imm == 63)
				if !okForm {
					t.Fatalf("seed %d: instruction %d writes A0 outside loop scaffolding: %v", seed, i, ins)
				}
			}
		}
	}
}

// TestMemoryAccessesStayInWindow: all generated loads/stores use the A6
// base with displacements inside the data window.
func TestMemoryAccessesStayInWindow(t *testing.T) {
	opts := Options{Nested: true, CondBranches: true, DataWords: 64}
	for seed := int64(0); seed < 50; seed++ {
		p := Generate(seed, opts)
		for i, ins := range p.Instructions {
			info := ins.Op.Info()
			if !info.Load && !info.Store {
				continue
			}
			if ins.J != 6 {
				t.Fatalf("seed %d: mem op %d uses base A%d", seed, i, ins.J)
			}
			if ins.Imm < 0 || ins.Imm >= int64(opts.DataWords) {
				t.Fatalf("seed %d: mem op %d displacement %d outside window", seed, i, ins.Imm)
			}
		}
	}
}

// TestStateDeterminism: equal seeds give equal data windows.
func TestStateDeterminism(t *testing.T) {
	a := NewState(9, Options{})
	b := NewState(9, Options{})
	if d := a.Mem.FirstDiff(b.Mem); d >= 0 {
		t.Fatalf("states differ at %d", d)
	}
	c := NewState(10, Options{})
	if d := a.Mem.FirstDiff(c.Mem); d < 0 {
		t.Fatal("different seeds give identical data (suspicious)")
	}
}

// TestOptionsBoundsRespected: programs without nesting or conditional
// branches contain only backward loop branches.
func TestOptionsBoundsRespected(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := Generate(seed, Options{Nested: false, CondBranches: false})
		for i, ins := range p.Instructions {
			if ins.Op.IsBranch() && int(ins.Imm) > i {
				t.Fatalf("seed %d: forward branch at %d with CondBranches off", seed, i)
			}
		}
	}
}

// TestRandVariantsMatchSeedWrappers: the seed-taking wrappers are
// exactly GenerateRand/NewStateRand over a freshly seeded source, so
// callers threading their own *rand.Rand reproduce the wrapper output.
func TestRandVariantsMatchSeedWrappers(t *testing.T) {
	opts := Options{Nested: true, CondBranches: true}
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(seed, opts)
		b := GenerateRand(rand.New(rand.NewSource(seed)), opts)
		if len(a.Instructions) != len(b.Instructions) {
			t.Fatalf("seed %d: lengths differ (%d vs %d)", seed, len(a.Instructions), len(b.Instructions))
		}
		for i := range a.Instructions {
			if a.Instructions[i] != b.Instructions[i] {
				t.Fatalf("seed %d: instruction %d differs: %v vs %v", seed, i, a.Instructions[i], b.Instructions[i])
			}
		}
		sa := NewState(seed, opts)
		sb := NewStateRand(rand.New(rand.NewSource(seed^0x5eed)), opts)
		if d := sa.Mem.FirstDiff(sb.Mem); d >= 0 {
			t.Fatalf("seed %d: data windows differ at word %d", seed, d)
		}
	}
}

// TestSharedSourceCampaign: one source threaded through several
// generator calls gives a reproducible sequence of distinct programs.
func TestSharedSourceCampaign(t *testing.T) {
	opts := Options{Nested: true, CondBranches: true}
	run := func() []*isa.Program {
		r := rand.New(rand.NewSource(42))
		var ps []*isa.Program
		for i := 0; i < 5; i++ {
			ps = append(ps, GenerateRand(r, opts))
		}
		return ps
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i].Instructions) != len(b[i].Instructions) {
			t.Fatalf("program %d: lengths differ across identical campaigns", i)
		}
		for j := range a[i].Instructions {
			if a[i].Instructions[j] != b[i].Instructions[j] {
				t.Fatalf("program %d instruction %d differs across identical campaigns", i, j)
			}
		}
	}
	// Successive draws from one source should not repeat the first
	// program verbatim (the source advances).
	same := len(a[0].Instructions) == len(a[1].Instructions)
	if same {
		for j := range a[0].Instructions {
			if a[0].Instructions[j] != a[1].Instructions[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("successive GenerateRand draws produced identical programs (source not advancing)")
	}
}
