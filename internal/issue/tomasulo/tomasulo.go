// Package tomasulo provides the classic form of Tomasulo's algorithm
// (§3.1, after Tomasulo 1967): per-register tags — every one of the 144
// architectural registers carries its own tag and tag-matching hardware —
// with reservation stations distributed among the functional units. It is
// the configuration of internal/issue/tagunit with no Tag Unit cap; the
// paper's extensions (the TU, the merged pool, the RSTU, and finally the
// RUU) successively remove its hardware cost and add precise interrupts.
package tomasulo

import (
	"ruu/internal/isa"
	"ruu/internal/issue/tagunit"
)

// New returns a Tomasulo engine with n reservation stations per
// functional unit (DefaultStations if n <= 0).
func New(n int) *tagunit.Engine {
	if n <= 0 {
		n = DefaultStations
	}
	per := make(map[isa.Unit]int, isa.NumUnits)
	for u := isa.Unit(1); u < isa.NumUnits; u++ {
		per[u] = n
	}
	return tagunit.New(tagunit.Config{TagUnitSize: 0, PerUnit: per})
}

// DefaultStations is the per-unit reservation station count (the IBM
// 360/91 floating-point unit had two to three stations per unit).
const DefaultStations = 3
