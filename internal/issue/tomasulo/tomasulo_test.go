package tomasulo_test

import (
	"testing"

	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/issue/tomasulo"
	"ruu/internal/machine"
)

func TestConstructorDefaults(t *testing.T) {
	if tomasulo.New(0).Name() != "tomasulo" {
		t.Fatal("name wrong")
	}
	// Default station count is applied when n <= 0.
	if tomasulo.DefaultStations <= 0 {
		t.Fatal("default stations must be positive")
	}
}

// TestClassicRenaming: WAW and WAR hazards dissolve through per-register
// tags — the 360/91's contribution, inherited by every engine above it.
func TestClassicRenaming(t *testing.T) {
	u, err := asm.Assemble(`
    lsi    S2, 42
    frecip S1, S2    ; slow producer of S1 (old instance)
    adds   S3, S1, S1 ; WAR: reads the OLD S1 instance... after it arrives
    lsi    S1, 7     ; WAW: new instance issues without waiting
    adds   S4, S1, S1 ; reads the NEW instance
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(tomasulo.New(3), machine.Config{})
	st := exec.NewState(u.NewMemory())
	if _, err := m.Run(u.Prog, st); err != nil {
		t.Fatal(err)
	}
	// adds is an integer add, so S3 holds twice the reciprocal's raw
	// bit pattern (the OLD S1 instance).
	recipBits := exec.Bits(1.0 / exec.F64(42))
	if st.S[3] != recipBits+recipBits {
		t.Fatalf("S3 = %#x, want %#x (old-instance read broken)", st.S[3], recipBits+recipBits)
	}
	if st.S[4] != 14 {
		t.Fatalf("S4 = %d (new-instance read broken)", st.S[4])
	}
	if st.S[1] != 7 {
		t.Fatalf("S1 = %d (latest copy lost)", st.S[1])
	}
}
