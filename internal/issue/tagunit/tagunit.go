// Package tagunit implements the paper's §3.1–§3.2.2 family of
// dependency-resolution mechanisms, all variations on Tomasulo's
// algorithm that differ in where tags live and how the reservation
// stations are organised:
//
//   - Tomasulo's algorithm (§3.1): a tag and tag-matching hardware for
//     every register (the paper's objection: 144 tag-matching units),
//     with reservation stations distributed per functional unit.
//   - A separate Tag Unit (§3.2.1, Figure 2): tags are pooled in a TU
//     sized for the number of *currently active* destination registers;
//     instruction issue blocks when the TU is full.
//   - A merged RS pool (§3.2.2): the distributed stations are combined
//     into one shared pool so no unit starves while another idles.
//
// All three update the register file out of program order (when results
// broadcast), so none provides precise interrupts. With a separate Tag
// Unit, a reservation station is released when its instruction dispatches
// to a functional unit (the tag travels with the operation); with
// per-register tags the station itself is the tag and is held until the
// result is broadcast.
package tagunit

import (
	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/issue"
	"ruu/internal/memsys"
	"ruu/internal/obs"
)

// Config selects the organisation.
type Config struct {
	// TagUnitSize caps the number of in-flight destination registers
	// (active tags). Zero means per-register tags (Tomasulo mode, §3.1):
	// no cap beyond the stations themselves.
	TagUnitSize int
	// PoolSize, when positive, merges all reservation stations into one
	// shared pool of that size (§3.2.2). When zero, stations are
	// distributed per functional unit according to PerUnit.
	PoolSize int
	// PerUnit gives the station count for each functional-unit class in
	// distributed mode. Units absent from the map get DefaultPerUnit.
	PerUnit map[isa.Unit]int
}

// DefaultPerUnit is the distributed station count per functional unit.
const DefaultPerUnit = 2

type operand struct {
	ready bool
	tag   int64 // producer id when !ready
	value int64
}

type memPhase uint8

const (
	memUnbound memPhase = iota
	memBound
)

type station struct {
	used       bool
	id         int64 // dynamic-instruction id (observability)
	seq        int64
	pc         int
	ins        isa.Instruction
	issueCycle int64
	readyAt    int64 // cycle the last waiting operand was gated in
	unit       isa.Unit

	op1, op2 operand

	hasDest bool
	dest    isa.Reg
	tagID   int64

	isMem      bool
	isStore    bool
	phase      memPhase
	addr       int64
	binding    memsys.Binding
	toMem      bool
	memChecked bool // trap check performed (exactly once per operation)
}

// flight is an operation in a functional unit: its result broadcasts on
// the given cycle carrying the producer's tag.
type flight struct {
	cycle   int64
	id      int64 // dynamic-instruction id (observability)
	pc      int
	tagID   int64
	hasDest bool
	dest    isa.Reg
	value   int64
	binding memsys.Binding
}

// Engine is the Tag Unit / Tomasulo issue engine.
type Engine struct {
	cfg Config
	ctx *issue.Context

	stations []station
	// unitOf[i] is the unit class owning station i in distributed mode
	// (UnitNone in pooled mode: any station serves any unit).
	unitOf []isa.Unit

	regBusy [isa.NumRegs]bool
	regTag  [isa.NumRegs]int64

	outstandingTags int

	memQueue []int // station indices of unbound memory ops, program order
	memHead  int   // first live element of memQueue (popped by index, not reslice)
	flights  []flight
	seqBuf   []int // scratch for bySeq

	nextSeq  int64
	inFlight int
	retired  int64
	trap     *exec.Trap

	// freeAtDispatch: stations release when the operation enters a
	// functional unit (separate-TU modes).
	freeAtDispatch bool
}

// New returns an engine with the given organisation.
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg, freeAtDispatch: cfg.TagUnitSize > 0}
	e.buildStations()
	return e
}

func (e *Engine) buildStations() {
	e.stations = e.stations[:0]
	e.unitOf = e.unitOf[:0]
	if e.cfg.PoolSize > 0 {
		e.stations = make([]station, e.cfg.PoolSize)
		e.unitOf = make([]isa.Unit, e.cfg.PoolSize) // all UnitNone: shared
		return
	}
	for u := isa.Unit(1); u < isa.NumUnits; u++ {
		n := DefaultPerUnit
		if v, ok := e.cfg.PerUnit[u]; ok {
			n = v
		}
		for i := 0; i < n; i++ {
			e.stations = append(e.stations, station{})
			e.unitOf = append(e.unitOf, u)
		}
	}
}

// Name implements issue.Engine.
func (e *Engine) Name() string {
	switch {
	case e.cfg.TagUnitSize == 0:
		return "tomasulo"
	case e.cfg.PoolSize > 0:
		return "tu-pool"
	default:
		return "tu-dist"
	}
}

// Reset implements issue.Engine.
func (e *Engine) Reset(ctx *issue.Context) {
	e.ctx = ctx
	e.buildStations()
	e.regBusy = [isa.NumRegs]bool{}
	e.outstandingTags = 0
	e.memQueue, e.memHead = e.memQueue[:0], 0
	e.flights = e.flights[:0]
	e.nextSeq = 0
	e.inFlight = 0
	e.retired = 0
	e.trap = nil
	ctx.Bus.Reset()
	ctx.LoadRegs.Reset()
}

// BeginCycle broadcasts results whose latency expires this cycle: waiting
// station operands gate in matching tags; the Tag Unit (or the tagged
// register itself) forwards the value to the register file if the tag is
// still the latest for its register.
func (e *Engine) BeginCycle(c int64) {
	out := e.flights[:0]
	for _, fl := range e.flights {
		if fl.cycle != c {
			out = append(out, fl)
			continue
		}
		for i := range e.stations {
			s := &e.stations[i]
			if !s.used {
				continue
			}
			if !s.op1.ready && s.op1.tag == fl.tagID {
				s.op1.ready, s.op1.value = true, fl.value
				s.readyAt = fl.cycle
			}
			if !s.op2.ready && s.op2.tag == fl.tagID {
				s.op2.ready, s.op2.value = true, fl.value
				s.readyAt = fl.cycle
			}
		}
		if fl.hasDest {
			f := fl.dest.Flat()
			if e.regBusy[f] && e.regTag[f] == fl.tagID {
				e.ctx.State.SetReg(fl.dest, fl.value)
				e.regBusy[f] = false
			}
			e.outstandingTags--
		}
		if fl.binding.Valid() {
			e.ctx.LoadRegs.SetData(fl.binding, fl.value)
			e.ctx.LoadRegs.Release(fl.binding)
		}
		// In Tomasulo mode the producing station is the tag and is freed
		// only now.
		if !e.freeAtDispatch {
			for i := range e.stations {
				if e.stations[i].used && e.stations[i].tagID == fl.tagID && e.stations[i].hasDest {
					e.stations[i] = station{}
					break
				}
			}
		}
		e.ctx.Observe(obs.KindWriteback, c, fl.id, fl.pc)
		e.ctx.Observe(obs.KindCommit, c, fl.id, fl.pc)
		e.inFlight--
		e.retired++
	}
	e.flights = out
}

// Dispatch implements issue.Engine.
func (e *Engine) Dispatch(c int64) {
	e.advanceMemFrontier(c)

	budget := 1
	order := e.bySeq()
	// Pass 1: memory operations first (priority rule shared with §5).
	for _, idx := range order {
		if budget == 0 {
			return
		}
		s := &e.stations[idx]
		if !s.used || !s.isMem || s.phase != memBound || s.issueCycle >= c || s.readyAt >= c {
			continue
		}
		if e.tryMemOp(c, idx) {
			budget--
		}
	}
	// Pass 2: computational operations.
	for _, idx := range order {
		if budget == 0 {
			return
		}
		s := &e.stations[idx]
		if !s.used || s.isMem || s.issueCycle >= c || s.readyAt >= c || !s.op1.ready || !s.op2.ready {
			continue
		}
		lat := int64(e.ctx.Lat.Of(s.ins.Op))
		if !e.ctx.Bus.Reserve(c + lat) {
			continue
		}
		v := exec.ALU(s.ins, s.op1.value, s.op2.value)
		e.flights = append(e.flights, flight{c + lat, s.id, s.pc, s.tagID, s.hasDest, s.dest, v, memsys.Invalid})
		e.ctx.Observe(obs.KindDispatch, c, s.id, s.pc)
		e.ctx.Observe(obs.KindExecute, c, s.id, s.pc)
		e.release(idx)
		budget--
	}
}

// release frees a station after dispatch in separate-TU modes; in
// Tomasulo mode it only marks the station dispatched by clearing its
// readiness to dispatch again (the station is freed at broadcast).
func (e *Engine) release(idx int) {
	if e.freeAtDispatch {
		e.stations[idx] = station{}
		return
	}
	// Keep the station as the live tag, but prevent re-dispatch.
	e.stations[idx].issueCycle = 1 << 62
}

func (e *Engine) bySeq() []int {
	idxs := e.seqBuf[:0]
	for i := range e.stations {
		if e.stations[i].used {
			idxs = append(idxs, i)
		}
	}
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && e.stations[idxs[j]].seq < e.stations[idxs[j-1]].seq; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	e.seqBuf = idxs
	return idxs
}

func (e *Engine) advanceMemFrontier(c int64) {
	if e.trap != nil || e.memHead == len(e.memQueue) {
		return
	}
	idx := e.memQueue[e.memHead]
	s := &e.stations[idx]
	if s.issueCycle >= c || s.readyAt >= c || !s.op1.ready {
		return
	}
	addr := exec.EffAddr(s.ins, s.op1.value)
	if !s.memChecked {
		s.memChecked = true
		if t := issue.MemTrap(e.ctx, s.pc, addr); t != nil {
			e.trap = t // imprecise: raised immediately
			return
		}
	}
	if !e.ctx.LoadRegs.CanBind(addr) {
		return // no load register obtainable; retry next cycle
	}
	// A load with no pending same-address operation dispatches to memory
	// as part of the address computation (see internal/issue/rstu).
	toMemory := !s.isStore && !e.ctx.LoadRegs.Pending(addr)
	lat := int64(e.ctx.Lat[isa.UnitMem])
	if toMemory && !e.ctx.Bus.Reserve(c+lat) {
		return
	}
	b, toMem, ok := e.ctx.LoadRegs.Bind(addr, s.isStore)
	if !ok {
		return
	}
	s.addr, s.binding, s.toMem = addr, b, toMem
	s.phase = memBound
	// Pop by head index; when the queue drains, reuse the backing
	// array from the front so the steady state allocates nothing.
	e.memHead++
	if e.memHead == len(e.memQueue) {
		e.memQueue, e.memHead = e.memQueue[:0], 0
	}
	if toMem {
		v, f := e.ctx.State.Mem.Read(addr)
		if f != nil {
			panic("tagunit: unexpected fault after bind-time check: " + f.Error())
		}
		e.flights = append(e.flights, flight{c + lat, s.id, s.pc, s.tagID, true, s.dest, v, s.binding})
		e.ctx.Observe(obs.KindDispatch, c, s.id, s.pc)
		e.ctx.Observe(obs.KindExecute, c, s.id, s.pc)
		e.release(idx)
	}
}

func (e *Engine) tryMemOp(c int64, idx int) bool {
	s := &e.stations[idx]
	if s.isStore {
		if !s.op2.ready {
			return false
		}
		if f := e.ctx.State.Mem.Write(s.addr, s.op2.value); f != nil {
			panic("tagunit: unexpected fault after bind-time check: " + f.Error())
		}
		e.ctx.LoadRegs.SetData(s.binding, s.op2.value)
		e.ctx.LoadRegs.Release(s.binding)
		e.ctx.Observe(obs.KindDispatch, c, s.id, s.pc)
		e.ctx.Observe(obs.KindExecute, c, s.id, s.pc)
		e.ctx.Observe(obs.KindWriteback, c, s.id, s.pc)
		e.ctx.Observe(obs.KindCommit, c, s.id, s.pc)
		e.stations[idx] = station{}
		e.inFlight--
		e.retired++
		return true
	}
	// Load: only forwarded loads reach here (memory-bound loads dispatch
	// at bind time).
	v, ok := e.ctx.LoadRegs.Forward(s.binding)
	if !ok {
		return false
	}
	lat := int64(e.ctx.FwdLatency)
	if !e.ctx.Bus.Reserve(c + lat) {
		return false
	}
	e.flights = append(e.flights, flight{c + lat, s.id, s.pc, s.tagID, true, s.dest, v, s.binding})
	e.ctx.Observe(obs.KindDispatch, c, s.id, s.pc)
	e.ctx.Observe(obs.KindExecute, c, s.id, s.pc)
	e.release(idx)
	return true
}

// TryIssue implements issue.Engine.
func (e *Engine) TryIssue(c int64, pc int, ins isa.Instruction) issue.StallReason {
	if e.trap != nil {
		return issue.StallDrain
	}
	if ins.Op == isa.Nop {
		e.retired++
		id := e.ctx.DecodeID
		e.ctx.Observe(obs.KindIssue, c, id, pc)
		e.ctx.Observe(obs.KindDispatch, c, id, pc)
		e.ctx.Observe(obs.KindExecute, c, id, pc)
		e.ctx.Observe(obs.KindWriteback, c, id, pc)
		e.ctx.Observe(obs.KindCommit, c, id, pc)
		return issue.StallNone
	}
	if ins.Op == isa.Trap {
		e.trap = &exec.Trap{Kind: exec.TrapExplicit, PC: pc}
		return issue.StallNone
	}
	info := ins.Op.Info()
	unit := info.Unit

	idx := -1
	for i := range e.stations {
		if e.stations[i].used {
			continue
		}
		if e.cfg.PoolSize > 0 || e.unitOf[i] == unit {
			idx = i
			break
		}
	}
	if idx < 0 {
		return issue.StallEntry
	}
	dst, hasDst := ins.Dst()
	if hasDst && e.cfg.TagUnitSize > 0 && e.outstandingTags == e.cfg.TagUnitSize {
		return issue.StallDest // no tag can be obtained: issue blocks
	}

	s := station{
		used:       true,
		id:         e.ctx.DecodeID,
		seq:        e.nextSeq,
		pc:         pc,
		ins:        ins,
		issueCycle: c,
		unit:       unit,
		binding:    memsys.Invalid,
		op1:        operand{ready: true},
		op2:        operand{ready: true},
		isMem:      info.Load || info.Store,
		isStore:    info.Store,
	}
	var srcBuf [2]isa.Reg
	srcs := ins.Srcs(srcBuf[:0])
	readOp := func(r isa.Reg) operand {
		f := r.Flat()
		if e.regBusy[f] {
			return operand{ready: false, tag: e.regTag[f]}
		}
		return operand{ready: true, value: e.ctx.State.Reg(r)}
	}
	if len(srcs) > 0 {
		s.op1 = readOp(srcs[0])
	}
	if len(srcs) > 1 {
		s.op2 = readOp(srcs[1])
	}
	if hasDst {
		s.hasDest = true
		s.dest = dst
		s.tagID = e.nextSeq
		f := dst.Flat()
		e.regBusy[f] = true
		e.regTag[f] = s.tagID
		e.outstandingTags++
	}
	e.stations[idx] = s
	e.nextSeq++
	e.inFlight++
	if s.isMem {
		e.memQueue = append(e.memQueue, idx)
	}
	e.ctx.Observe(obs.KindIssue, c, s.id, s.pc)
	return issue.StallNone
}

// TryReadCond implements issue.Engine.
func (e *Engine) TryReadCond(_ int64, r isa.Reg) (int64, bool) {
	if e.regBusy[r.Flat()] {
		return 0, false
	}
	return e.ctx.State.Reg(r), true
}

// Drained implements issue.Engine.
func (e *Engine) Drained() bool { return e.inFlight == 0 }

// PendingTrap implements issue.Engine.
func (e *Engine) PendingTrap() *exec.Trap { return e.trap }

// Precise implements issue.Engine.
func (e *Engine) Precise() bool { return false }

// Flush implements issue.Engine.
func (e *Engine) Flush() {
	e.buildStations()
	e.regBusy = [isa.NumRegs]bool{}
	e.outstandingTags = 0
	e.memQueue, e.memHead = e.memQueue[:0], 0
	e.flights = e.flights[:0]
	e.inFlight = 0
	e.trap = nil
	e.ctx.Bus.Clear()
	e.ctx.LoadRegs.Reset()
}

// InFlight implements issue.Engine.
func (e *Engine) InFlight() int { return e.inFlight }

// Retired implements issue.Engine.
func (e *Engine) Retired() int64 { return e.retired }
