package tagunit_test

import (
	"testing"

	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/issue/tagunit"
	"ruu/internal/machine"
)

func TestIdentityAndModes(t *testing.T) {
	if tagunit.New(tagunit.Config{TagUnitSize: 4}).Name() != "tu-dist" {
		t.Fatal("distributed name")
	}
	if tagunit.New(tagunit.Config{TagUnitSize: 4, PoolSize: 6}).Name() != "tu-pool" {
		t.Fatal("pooled name")
	}
	if tagunit.New(tagunit.Config{}).Name() != "tomasulo" {
		t.Fatal("per-register-tag name")
	}
	if tagunit.New(tagunit.Config{TagUnitSize: 4}).Precise() {
		t.Fatal("tag-unit machines are imprecise")
	}
}

// TestStationFreedAtDispatchWithTU: with a separate Tag Unit the station
// is released when the operation enters its unit (the tag travels with
// it), so a 1-station-per-unit configuration still streams independent
// same-unit operations without starving.
func TestStationFreedAtDispatchWithTU(t *testing.T) {
	per := map[isa.Unit]int{}
	for u := isa.Unit(1); u < isa.NumUnits; u++ {
		per[u] = 1
	}
	e := tagunit.New(tagunit.Config{TagUnitSize: 12, PerUnit: per})
	u, err := asm.Assemble(`
    lsi  S6, 3
    fadd S1, S6, S6
    fadd S2, S6, S6
    fadd S3, S6, S6
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(e, machine.Config{})
	st := exec.NewState(u.NewMemory())
	res, err := m.Run(u.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	// Three back-to-back ready fadds through ONE station: each occupies
	// it for one cycle only. If stations were held to completion this
	// would serialize at the fadd latency (6) per instruction.
	if res.Stats.Cycles > 20 {
		t.Fatalf("%d cycles: station apparently held past dispatch", res.Stats.Cycles)
	}
	want := exec.Bits(exec.F64(3) + exec.F64(3))
	if st.S[1] != want || st.S[2] != want || st.S[3] != want {
		t.Fatal("wrong results")
	}
}

// TestPerRegisterTagsUnlimited: Tomasulo mode has no Tag Unit cap; many
// outstanding destinations are limited only by stations.
func TestPerRegisterTagsUnlimited(t *testing.T) {
	e := tagunit.New(tagunit.Config{PerUnit: map[isa.Unit]int{isa.UnitFRecip: 8}})
	u, err := asm.Assemble(`
    lsi    S6, 42
    frecip S1, S6
    frecip S2, S6
    frecip S3, S6
    frecip S4, S6
    frecip S5, S6
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(e, machine.Config{})
	st := exec.NewState(u.NewMemory())
	if _, err := m.Run(u.Prog, st); err != nil {
		t.Fatal(err)
	}
	want := exec.Bits(1.0 / exec.F64(42))
	for i := 1; i <= 5; i++ {
		if st.S[i] != want {
			t.Fatalf("S%d wrong", i)
		}
	}
}
