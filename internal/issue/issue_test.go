package issue_test

import (
	"testing"

	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/issue"
	"ruu/internal/issue/rstu"
	"ruu/internal/issue/simple"
	"ruu/internal/issue/tagunit"
	"ruu/internal/issue/tomasulo"
	"ruu/internal/machine"
)

func runEngine(t *testing.T, eng issue.Engine, src string) (machine.Result, *exec.State) {
	t.Helper()
	unit, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(eng, machine.Config{})
	st := exec.NewState(unit.NewMemory())
	res, err := m.Run(unit.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	return res, st
}

func allEngines() map[string]func() issue.Engine {
	return map[string]func() issue.Engine{
		"simple":   func() issue.Engine { return simple.New() },
		"tomasulo": func() issue.Engine { return tomasulo.New(0) },
		"tu-dist":  func() issue.Engine { return tagunit.New(tagunit.Config{TagUnitSize: 12}) },
		"tu-pool":  func() issue.Engine { return tagunit.New(tagunit.Config{TagUnitSize: 12, PoolSize: 8}) },
		"rstu":     func() issue.Engine { return rstu.New(8) },
		"rstu-2p":  func() issue.Engine { return rstu.New(8, rstu.WithPaths(2)) },
	}
}

// TestWAWLatestCopyWins is the "latest copy" rule of the Tag Unit
// (Figure 3): when an older, slower producer of a register finishes
// after a newer, faster one, the register must end up with the newer
// value.
func TestWAWLatestCopyWins(t *testing.T) {
	src := `
    lsi   S2, 42
    frecip S1, S2     ; old instance of S1 (latency 14)
    lsi   S1, 7       ; new instance of S1 (latency 1): the latest copy
    adds  S3, S1, S1  ; reads the latest instance
    halt
`
	for name, mk := range allEngines() {
		t.Run(name, func(t *testing.T) {
			_, st := runEngine(t, mk(), src)
			if st.S[1] != 7 {
				t.Errorf("S1 = %d, want the latest copy 7", st.S[1])
			}
			if st.S[3] != 14 {
				t.Errorf("S3 = %d, want 14", st.S[3])
			}
		})
	}
}

// TestOutOfOrderOverlap: on simple issue, an instruction that depends on
// a slow producer blocks the decode stage, so the independent work
// behind it waits too ("subsequent instructions cannot proceed even
// though they may be ready to execute"); with reservation stations the
// waiting instruction steps aside. Every OoO engine must finish this
// pattern strictly faster than simple issue.
func TestOutOfOrderOverlap(t *testing.T) {
	src := `
    lsi    S2, 42
    frecip S1, S2     ; chain A: slow producer (latency 14)
    fadd   S3, S1, S1 ; blocks the decode stage on simple issue
    frecip S4, S2     ; chain B: independent, equally slow — OoO engines
    fadd   S5, S4, S4 ; start it 12+ cycles earlier than simple issue
    halt
`
	resSimple, _ := runEngine(t, simple.New(), src)
	for name, mk := range allEngines() {
		if name == "simple" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			res, _ := runEngine(t, mk(), src)
			if res.Stats.Cycles >= resSimple.Stats.Cycles {
				t.Errorf("%s (%d cycles) not faster than simple (%d)", name, res.Stats.Cycles, resSimple.Stats.Cycles)
			}
		})
	}
}

// TestSimpleEngineExactStall: the simple engine blocks in decode on a
// busy source register for the producer's full latency.
func TestSimpleEngineExactStall(t *testing.T) {
	// Independent pair (no stall):
	free, _ := runEngine(t, simple.New(), `
    lsi  S1, 1
    lsi  S2, 2
    halt
`)
	// Dependent pair through the FP multiplier (latency 7):
	dep, _ := runEngine(t, simple.New(), `
    fmul S1, S2, S3
    fadd S4, S1, S1
    halt
`)
	delta := dep.Stats.Cycles - free.Stats.Cycles
	// fmul latency 7 vs lsi latency 1; the dependent fadd waits ~6 extra
	// cycles, plus the fadd-vs-lsi writeback difference.
	if delta < 6 {
		t.Fatalf("dependency stall only %d cycles", delta)
	}
	if dep.Stats.Stalls[issue.StallOperand] == 0 {
		t.Fatal("no operand stalls recorded")
	}
}

// TestSimpleEngineWAWStall: the simple engine blocks on a busy
// destination register.
func TestSimpleEngineWAWStall(t *testing.T) {
	res, st := runEngine(t, simple.New(), `
    lsi    S2, 42
    frecip S1, S2
    lsi    S1, 7
    halt
`)
	if st.S[1] != 7 {
		t.Fatalf("S1 = %d", st.S[1])
	}
	if res.Stats.Stalls[issue.StallDest] == 0 {
		t.Fatal("no dest-busy stalls recorded")
	}
}

// TestTagUnitBlocksWhenFull reproduces the TU-full condition of §3.2.1:
// with a 2-entry Tag Unit, a third outstanding destination blocks issue.
func TestTagUnitBlocksWhenFull(t *testing.T) {
	eng := tagunit.New(tagunit.Config{TagUnitSize: 2, PoolSize: 8})
	res, st := runEngine(t, eng, `
    lsi    S6, 42
    frecip S1, S6
    frecip S2, S6
    frecip S3, S6
    frecip S4, S6
    halt
`)
	if res.Stats.Stalls[issue.StallDest] == 0 {
		t.Fatal("TU never filled")
	}
	want := exec.Bits(1.0 / exec.F64(42))
	for i := 1; i <= 4; i++ {
		if st.S[i] != want {
			t.Fatalf("S%d = %#x, want %#x", i, st.S[i], want)
		}
	}
}

// TestDistributedStationsStarve: with one station per unit, two
// consecutive FP adds stall on the station while the (idle) multiplier's
// station cannot help — the §3.2.2 motivation for the merged pool.
func TestDistributedStationsStarve(t *testing.T) {
	per := map[isa.Unit]int{}
	for u := isa.Unit(1); u < isa.NumUnits; u++ {
		per[u] = 1
	}
	dist := tagunit.New(tagunit.Config{TagUnitSize: 12, PerUnit: per})
	pool := tagunit.New(tagunit.Config{TagUnitSize: 12, PoolSize: 10})
	src := `
    frecip S6, S7     ; slow producer: the fadds wait in their stations
    fadd S1, S6, S6
    fadd S2, S6, S6
    fadd S3, S6, S6
    fadd S4, S6, S6
    halt
`
	resDist, _ := runEngine(t, dist, src)
	resPool, _ := runEngine(t, pool, src)
	if resDist.Stats.Stalls[issue.StallEntry] == 0 {
		t.Fatal("distributed single stations never starved")
	}
	if resPool.Stats.Cycles > resDist.Stats.Cycles {
		t.Fatalf("pool (%d) slower than starved distributed (%d)", resPool.Stats.Cycles, resDist.Stats.Cycles)
	}
}

// TestRSTUTwoPathsDispatchesTwo: with two dispatch paths, two ready
// instructions (with different latencies, hence different bus slots)
// leave the RSTU in one cycle; the run gets no slower and the engine
// drains.
func TestRSTUTwoPathsDispatchesTwo(t *testing.T) {
	src := `
    lsi  S6, 3
    fadd S1, S6, S6
    fmul S2, S6, S6
    fadd S3, S6, S6
    fmul S4, S6, S6
    halt
`
	r1, _ := runEngine(t, rstu.New(8), src)
	r2, _ := runEngine(t, rstu.New(8, rstu.WithPaths(2)), src)
	if r2.Stats.Cycles > r1.Stats.Cycles {
		t.Fatalf("2 paths (%d cycles) slower than 1 (%d)", r2.Stats.Cycles, r1.Stats.Cycles)
	}
}

// TestEngineNames pins the reporting names.
func TestEngineNames(t *testing.T) {
	cases := map[string]issue.Engine{
		"simple":   simple.New(),
		"tomasulo": tomasulo.New(2),
		"tu-dist":  tagunit.New(tagunit.Config{TagUnitSize: 4}),
		"tu-pool":  tagunit.New(tagunit.Config{TagUnitSize: 4, PoolSize: 4}),
		"rstu":     rstu.New(4),
		"rstu-2p":  rstu.New(4, rstu.WithPaths(2)),
	}
	for want, eng := range cases {
		if got := eng.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

// TestStallReasonStrings covers the stall taxonomy.
func TestStallReasonStrings(t *testing.T) {
	want := map[issue.StallReason]string{
		issue.StallNone: "none", issue.StallOperand: "operand",
		issue.StallDest: "dest", issue.StallEntry: "entry",
		issue.StallBus: "bus", issue.StallBranch: "branch",
		issue.StallFetch: "fetch", issue.StallLoadReg: "loadreg",
		issue.StallDrain: "drain",
	}
	for r, w := range want {
		if r.String() != w {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), w)
		}
	}
	if issue.StallReason(99).String() != "stall?" {
		t.Error("invalid reason string")
	}
}

// TestMemTrapInjector: the shared helper consults the injector before
// the mapping check.
func TestMemTrapInjector(t *testing.T) {
	ctx := &issue.Context{State: exec.NewState(nil)}
	if tr := issue.MemTrap(ctx, 1, 5); tr != nil {
		t.Fatalf("unexpected trap %v", tr)
	}
	if tr := issue.MemTrap(ctx, 1, -1); tr == nil || tr.Kind != exec.TrapBadAddress {
		t.Fatalf("bad address trap = %v", tr)
	}
	ctx.State.Mem.Unmap(0)
	if tr := issue.MemTrap(ctx, 1, 5); tr == nil || tr.Kind != exec.TrapPageFault {
		t.Fatalf("page fault trap = %v", tr)
	}
	ctx.Inject = func(pc int, addr int64) *exec.Trap {
		return &exec.Trap{Kind: exec.TrapExplicit, PC: pc}
	}
	if tr := issue.MemTrap(ctx, 2, 5); tr == nil || tr.Kind != exec.TrapExplicit {
		t.Fatalf("injector not consulted first: %v", tr)
	}
}

// TestStoreBeforeLoadSameAddressAllEngines: the load-register chain
// yields correct same-address ordering everywhere.
func TestStoreBeforeLoadSameAddressAllEngines(t *testing.T) {
	src := `
.word slot 5
    lai  A1, 9
    sta  A1, =slot(A7)
    lda  A2, =slot(A7)
    lai  A3, 11
    sta  A3, =slot(A7)
    lda  A4, =slot(A7)
    halt
`
	for name, mk := range allEngines() {
		t.Run(name, func(t *testing.T) {
			_, st := runEngine(t, mk(), src)
			if st.A[2] != 9 || st.A[4] != 11 {
				t.Errorf("A2=%d A4=%d, want 9/11", st.A[2], st.A[4])
			}
		})
	}
}
