// Package rstu implements the RS Tag Unit of §3.2.3: the merged pool of
// reservation stations and tags (Figure 4). Each entry is simultaneously
// a tag (the entry index) and a reservation station; an entry is acquired
// at instruction issue and held until the instruction's result has been
// forwarded to the register file, so a station is "wasted" while its
// instruction transits a functional unit — the organisation the paper
// deliberately trades for the ability to extend it into the RUU.
//
// Registers are updated out of program order (at result broadcast), so
// the RSTU resolves dependencies but does not provide precise interrupts;
// that is the RUU's contribution (internal/core).
//
// The Paths option reproduces Table 3's experiment: the number of data
// paths from the RSTU to the functional units, i.e. the number of
// instructions that may dispatch per cycle (the decode unit still issues
// at most one instruction per cycle, which is why the paper finds a
// second path makes little difference).
package rstu

import (
	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/issue"
	"ruu/internal/memsys"
	"ruu/internal/obs"
)

// Option configures the engine.
type Option func(*Engine)

// WithPaths sets the number of dispatch paths (default 1).
func WithPaths(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.paths = n
		}
	}
}

type operand struct {
	ready bool
	tag   int // producing entry index when !ready
	value int64
}

type memPhase uint8

const (
	memUnbound memPhase = iota // effective address not yet computed
	memBound                   // address bound to a load register
	memDone
)

type entry struct {
	used       bool
	id         int64 // dynamic-instruction id (observability)
	seq        int64
	pc         int
	ins        isa.Instruction
	issueCycle int64
	// readyAt is the cycle in which the last waiting operand was gated
	// in from the result bus; an entry may dispatch only in a later
	// cycle (gate-in and compare take a stage, so a value caught off the
	// bus is usable by the dispatch logic the next cycle).
	readyAt int64

	op1, op2 operand

	hasDest bool
	dest    isa.Reg
	latest  bool // this entry holds the latest tag for dest

	dispatched bool
	result     int64

	isMem      bool
	isStore    bool
	phase      memPhase
	addr       int64
	binding    memsys.Binding
	toMem      bool
	memChecked bool // trap check performed (exactly once per operation)
}

type broadcast struct {
	cycle int64
	idx   int
}

// Engine is the RSTU issue engine.
type Engine struct {
	ctx   *issue.Context
	paths int

	entries []entry
	size    int
	nextSeq int64

	regBusy [isa.NumRegs]bool
	regTag  [isa.NumRegs]int

	memQueue []int // entry indices of unbound memory ops, program order
	memHead  int   // first live element of memQueue (popped by index, not reslice)
	pending  []broadcast
	seqBuf   []int // scratch for bySeq (avoids per-cycle allocation)

	inFlight int
	retired  int64
	trap     *exec.Trap
}

// New returns an RSTU with n entries.
func New(n int, opts ...Option) *Engine {
	if n <= 0 {
		n = 10
	}
	e := &Engine{size: n, paths: 1}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name implements issue.Engine.
func (e *Engine) Name() string {
	if e.paths > 1 {
		return "rstu-2p"
	}
	return "rstu"
}

// Size returns the number of RSTU entries.
func (e *Engine) Size() int { return e.size }

// Reset implements issue.Engine.
func (e *Engine) Reset(ctx *issue.Context) {
	e.ctx = ctx
	e.entries = make([]entry, e.size)
	e.nextSeq = 0
	e.regBusy = [isa.NumRegs]bool{}
	e.memQueue, e.memHead = e.memQueue[:0], 0
	e.pending = e.pending[:0]
	e.inFlight = 0
	e.retired = 0
	e.trap = nil
	ctx.Bus.Reset()
	ctx.LoadRegs.Reset()
}

// BeginCycle broadcasts the results scheduled for this cycle: waiting
// reservation-station operands gate in matching tags, the Tag Unit half
// of the entry forwards the value to the register file (only the latest
// tag for a register updates it and clears its busy bit), and the entry
// is freed for reuse.
func (e *Engine) BeginCycle(c int64) {
	out := e.pending[:0]
	for _, b := range e.pending {
		if b.cycle != c {
			out = append(out, b)
			continue
		}
		ent := &e.entries[b.idx]
		v := ent.result
		// Deliver to every waiting operand holding this tag.
		for i := range e.entries {
			o := &e.entries[i]
			if !o.used {
				continue
			}
			if !o.op1.ready && o.op1.tag == b.idx {
				o.op1.ready, o.op1.value = true, v
				o.readyAt = b.cycle
			}
			if !o.op2.ready && o.op2.tag == b.idx {
				o.op2.ready, o.op2.value = true, v
				o.readyAt = b.cycle
			}
		}
		// Tag Unit: forward to the register file.
		if ent.hasDest {
			if ent.latest {
				e.ctx.State.SetReg(ent.dest, v)
				e.regBusy[ent.dest.Flat()] = false
			}
			// A non-latest result must not overwrite the register: a
			// newer instance owns it (the paper permits the update but
			// never requires it; suppressing it keeps state correct).
		}
		if ent.binding.Valid() {
			e.ctx.LoadRegs.SetData(ent.binding, v)
			e.ctx.LoadRegs.Release(ent.binding)
		}
		e.ctx.Observe(obs.KindWriteback, c, ent.id, ent.pc)
		e.ctx.Observe(obs.KindCommit, c, ent.id, ent.pc)
		e.free(b.idx)
	}
	e.pending = out
}

func (e *Engine) free(idx int) {
	e.entries[idx] = entry{}
	e.inFlight--
	e.retired++
}

// Dispatch implements issue.Engine: first the memory-address frontier
// advances (the memory unit computes one effective address per cycle, in
// program order among memory operations — §3.2.1.2), then up to Paths
// ready instructions dispatch to the functional units, loads and stores
// first, then oldest-first.
func (e *Engine) Dispatch(c int64) {
	e.advanceMemFrontier(c)

	budget := e.paths
	order := e.bySeq()
	// Pass 1: memory operations (priority per §5, same rule here).
	for _, idx := range order {
		if budget == 0 {
			return
		}
		ent := &e.entries[idx]
		if !ent.isMem || ent.phase != memBound || ent.dispatched || ent.issueCycle >= c || ent.readyAt >= c {
			continue
		}
		if e.tryMemOp(c, idx) {
			budget--
		}
	}
	// Pass 2: computational instructions.
	for _, idx := range order {
		if budget == 0 {
			return
		}
		ent := &e.entries[idx]
		if ent.isMem || ent.dispatched || !ent.used || ent.issueCycle >= c || ent.readyAt >= c {
			continue
		}
		if !ent.op1.ready || !ent.op2.ready {
			continue
		}
		lat := int64(e.ctx.Lat.Of(ent.ins.Op))
		if ent.hasDest {
			if !e.ctx.Bus.Reserve(c + lat) {
				continue
			}
		}
		ent.result = exec.ALU(ent.ins, ent.op1.value, ent.op2.value)
		ent.dispatched = true
		e.ctx.Observe(obs.KindDispatch, c, ent.id, ent.pc)
		e.ctx.Observe(obs.KindExecute, c, ent.id, ent.pc)
		if ent.hasDest {
			e.pending = append(e.pending, broadcast{c + lat, idx})
		} else {
			// No result to broadcast (should not occur for computational
			// ops in this ISA, but keep the entry lifecycle uniform).
			e.ctx.Observe(obs.KindWriteback, c, ent.id, ent.pc)
			e.ctx.Observe(obs.KindCommit, c, ent.id, ent.pc)
			e.free(idx)
		}
		budget--
	}
}

// bySeq returns used entry indices in program (seq) order. The returned
// slice is valid until the next call.
func (e *Engine) bySeq() []int {
	idxs := e.seqBuf[:0]
	for i := range e.entries {
		if e.entries[i].used {
			idxs = append(idxs, i)
		}
	}
	// Insertion sort by seq: the pool is small (≤ ~30 entries).
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && e.entries[idxs[j]].seq < e.entries[idxs[j-1]].seq; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	e.seqBuf = idxs
	return idxs
}

// advanceMemFrontier computes the effective address of the oldest unbound
// memory operation whose base register is available, binding it to a load
// register. At most one address per cycle; younger memory operations
// cannot bind before older ones.
func (e *Engine) advanceMemFrontier(c int64) {
	if e.trap != nil || e.memHead == len(e.memQueue) {
		return
	}
	idx := e.memQueue[e.memHead]
	ent := &e.entries[idx]
	if ent.issueCycle >= c || ent.readyAt >= c || !ent.op1.ready {
		return
	}
	addr := exec.EffAddr(ent.ins, ent.op1.value)
	if !ent.memChecked {
		ent.memChecked = true
		if t := issue.MemTrap(e.ctx, ent.pc, addr); t != nil {
			// Imprecise machine: the trap is raised as soon as it is
			// detected, with younger and older work still in flight.
			e.trap = t
			return
		}
	}
	if !e.ctx.LoadRegs.CanBind(addr) {
		return // no load register obtainable; retry next cycle
	}
	// A load with no pending same-address operation goes straight to
	// memory: the address computation IS its dispatch to the memory
	// unit, so it reserves the result bus here rather than competing for
	// an RSTU-to-functional-unit data path.
	toMemory := !ent.isStore && !e.ctx.LoadRegs.Pending(addr)
	lat := int64(e.ctx.Lat[isa.UnitMem])
	if toMemory && !e.ctx.Bus.Reserve(c+lat) {
		return // bus slot taken; retry next cycle
	}
	b, toMem, ok := e.ctx.LoadRegs.Bind(addr, ent.isStore)
	if !ok {
		return // no free load register; retry next cycle (CanBind above
		// makes this unreachable, but keep the guard defensive)
	}
	ent.addr = addr
	ent.binding = b
	ent.toMem = toMem
	ent.phase = memBound
	// Pop by head index; when the queue drains, reuse the backing
	// array from the front so the steady state allocates nothing.
	e.memHead++
	if e.memHead == len(e.memQueue) {
		e.memQueue, e.memHead = e.memQueue[:0], 0
	}
	if toMem {
		v, f := e.ctx.State.Mem.Read(addr)
		if f != nil {
			panic("rstu: unexpected fault after bind-time check: " + f.Error())
		}
		ent.result = v
		ent.dispatched = true
		e.ctx.Observe(obs.KindDispatch, c, ent.id, ent.pc)
		e.ctx.Observe(obs.KindExecute, c, ent.id, ent.pc)
		e.pending = append(e.pending, broadcast{c + lat, idx})
	}
}

// tryMemOp attempts to complete a bound memory operation. Loads read
// memory (or forward from the load-register chain) and schedule a result
// broadcast; stores execute — write memory — once their data operand is
// ready. It reports whether a dispatch path was consumed.
func (e *Engine) tryMemOp(c int64, idx int) bool {
	ent := &e.entries[idx]
	if ent.isStore {
		if !ent.op2.ready {
			return false
		}
		// The RSTU is imprecise: memory is updated at execution time.
		if f := e.ctx.State.Mem.Write(ent.addr, ent.op2.value); f != nil {
			panic("rstu: unexpected fault after bind-time check: " + f.Error())
		}
		e.ctx.LoadRegs.SetData(ent.binding, ent.op2.value)
		e.ctx.LoadRegs.Release(ent.binding)
		ent.dispatched = true
		ent.phase = memDone
		e.ctx.Observe(obs.KindDispatch, c, ent.id, ent.pc)
		e.ctx.Observe(obs.KindExecute, c, ent.id, ent.pc)
		e.ctx.Observe(obs.KindWriteback, c, ent.id, ent.pc)
		e.ctx.Observe(obs.KindCommit, c, ent.id, ent.pc)
		e.free(idx)
		return true
	}
	// Load: only forwarded loads reach here (memory-bound loads dispatch
	// at bind time).
	v, ok := e.ctx.LoadRegs.Forward(ent.binding)
	if !ok {
		return false
	}
	lat := int64(e.ctx.FwdLatency)
	if !e.ctx.Bus.Reserve(c + lat) {
		return false
	}
	ent.result = v
	ent.dispatched = true
	e.ctx.Observe(obs.KindDispatch, c, ent.id, ent.pc)
	e.ctx.Observe(obs.KindExecute, c, ent.id, ent.pc)
	e.pending = append(e.pending, broadcast{c + lat, idx})
	return true
}

// TryIssue implements issue.Engine.
func (e *Engine) TryIssue(c int64, pc int, ins isa.Instruction) issue.StallReason {
	if e.trap != nil {
		return issue.StallDrain
	}
	if ins.Op == isa.Nop {
		e.retired++
		id := e.ctx.DecodeID
		e.ctx.Observe(obs.KindIssue, c, id, pc)
		e.ctx.Observe(obs.KindDispatch, c, id, pc)
		e.ctx.Observe(obs.KindExecute, c, id, pc)
		e.ctx.Observe(obs.KindWriteback, c, id, pc)
		e.ctx.Observe(obs.KindCommit, c, id, pc)
		return issue.StallNone
	}
	if ins.Op == isa.Trap {
		e.trap = &exec.Trap{Kind: exec.TrapExplicit, PC: pc}
		return issue.StallNone
	}
	idx := -1
	for i := range e.entries {
		if !e.entries[i].used {
			idx = i
			break
		}
	}
	if idx < 0 {
		return issue.StallEntry
	}

	ent := entry{
		used:       true,
		id:         e.ctx.DecodeID,
		seq:        e.nextSeq,
		pc:         pc,
		ins:        ins,
		issueCycle: c,
		binding:    memsys.Invalid,
	}
	info := ins.Op.Info()
	ent.isMem = info.Load || info.Store
	ent.isStore = info.Store

	var srcBuf [2]isa.Reg
	srcs := ins.Srcs(srcBuf[:0])
	readOp := func(r isa.Reg) operand {
		if e.regBusy[r.Flat()] {
			return operand{ready: false, tag: e.regTag[r.Flat()]}
		}
		return operand{ready: true, value: e.ctx.State.Reg(r)}
	}
	ent.op1, ent.op2 = operand{ready: true}, operand{ready: true}
	if len(srcs) > 0 {
		ent.op1 = readOp(srcs[0])
	}
	if len(srcs) > 1 {
		ent.op2 = readOp(srcs[1])
	}

	if dst, ok := ins.Dst(); ok {
		ent.hasDest = true
		ent.dest = dst
		f := dst.Flat()
		if e.regBusy[f] {
			// The previous holder of this register's tag is no longer
			// the latest copy.
			e.entries[e.regTag[f]].latest = false
		}
		e.regBusy[f] = true
		e.regTag[f] = idx
		ent.latest = true
	}

	e.entries[idx] = ent
	e.nextSeq++
	e.inFlight++
	if ent.isMem {
		e.memQueue = append(e.memQueue, idx)
	}
	e.ctx.Observe(obs.KindIssue, c, ent.id, pc)
	return issue.StallNone
}

// TryReadCond implements issue.Engine: readable when the register has no
// pending producer (the register file is updated at broadcast, so no
// extra bypass is needed — this is the imprecise machines' advantage).
func (e *Engine) TryReadCond(_ int64, r isa.Reg) (int64, bool) {
	if e.regBusy[r.Flat()] {
		return 0, false
	}
	return e.ctx.State.Reg(r), true
}

// Drained implements issue.Engine.
func (e *Engine) Drained() bool { return e.inFlight == 0 }

// PendingTrap implements issue.Engine.
func (e *Engine) PendingTrap() *exec.Trap { return e.trap }

// Precise implements issue.Engine: the RSTU is not precise.
func (e *Engine) Precise() bool { return false }

// Flush implements issue.Engine.
func (e *Engine) Flush() {
	e.entries = make([]entry, e.size)
	e.regBusy = [isa.NumRegs]bool{}
	e.memQueue, e.memHead = e.memQueue[:0], 0
	e.pending = e.pending[:0]
	e.inFlight = 0
	e.trap = nil
	e.ctx.Bus.Clear()
	e.ctx.LoadRegs.Reset()
}

// InFlight implements issue.Engine.
func (e *Engine) InFlight() int { return e.inFlight }

// Retired implements issue.Engine.
func (e *Engine) Retired() int64 { return e.retired }
