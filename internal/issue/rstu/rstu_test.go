package rstu_test

import (
	"testing"

	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/issue"
	"ruu/internal/issue/rstu"
	"ruu/internal/machine"
)

func TestIdentity(t *testing.T) {
	if rstu.New(5).Name() != "rstu" || rstu.New(5).Size() != 5 {
		t.Fatal("identity wrong")
	}
	if rstu.New(0).Size() != 10 {
		t.Fatal("default size wrong")
	}
	if rstu.New(5, rstu.WithPaths(2)).Name() != "rstu-2p" {
		t.Fatal("2-path name wrong")
	}
	if rstu.New(5).Precise() {
		t.Fatal("the RSTU must not claim precise interrupts")
	}
}

// TestEntryHeldUntilRegisterUpdate: the §3.2.3 property — an entry is
// both tag and station, so it is occupied while its instruction transits
// the functional unit. With 2 entries, a third independent instruction
// stalls even though the first two have already dispatched.
func TestEntryHeldUntilRegisterUpdate(t *testing.T) {
	u, err := asm.Assemble(`
    lsi    S6, 42
    frecip S1, S6
    frecip S2, S6
    frecip S3, S6
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	e := rstu.New(2)
	m := machine.New(e, machine.Config{})
	st := exec.NewState(u.NewMemory())
	res, err := m.Run(u.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stalls[issue.StallEntry] == 0 {
		t.Fatal("entries were recycled before register update")
	}
	want := exec.Bits(1.0 / exec.F64(42))
	if st.S[1] != want || st.S[2] != want || st.S[3] != want {
		t.Fatal("wrong results")
	}
}

// TestOutOfOrderCompletionUpdatesRegistersEarly — the imprecision that
// motivates the RUU: a younger, faster instruction's register update is
// architecturally visible while an older one is still in flight. We
// observe it via the trap stop state.
func TestOutOfOrderCompletionUpdatesRegistersEarly(t *testing.T) {
	u, err := asm.Assemble(`
    lsi    S6, 42
    frecip S1, S6    ; old, slow
    lai    A1, 7     ; young, fast
    lds    S2, -1(A7) ; faults at dispatch (address -1)
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(rstu.New(8), machine.Config{})
	st := exec.NewState(u.NewMemory())
	res, err := m.Run(u.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || res.Precise {
		t.Fatalf("expected an imprecise trap, got %v precise=%v", res.Trap, res.Precise)
	}
	if st.A[1] != 7 {
		t.Fatal("young instruction's update should already be visible (imprecise)")
	}
	if st.S[1] != 0 {
		t.Fatal("old slow instruction should still be in flight at the trap")
	}
}
