package reorder_test

import (
	"testing"

	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/issue"
	"ruu/internal/issue/reorder"
	"ruu/internal/machine"
)

func run(t *testing.T, mode reorder.Mode, size int, src string) (machine.Result, *exec.State, *reorder.Engine) {
	t.Helper()
	unit, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	e := reorder.New(mode, size)
	m := machine.New(e, machine.Config{})
	st := exec.NewState(unit.NewMemory())
	res, err := m.Run(unit.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	return res, st, e
}

func TestNamesAndDefaults(t *testing.T) {
	if reorder.New(reorder.ModePlain, 0).Name() != "reorder-plain" {
		t.Error("plain name")
	}
	if reorder.New(reorder.ModeBypass, 4).Name() != "reorder-bypass" {
		t.Error("bypass name")
	}
	if reorder.New(reorder.ModeFuture, 4).Name() != "reorder-future" {
		t.Error("future name")
	}
	if reorder.New(reorder.ModePlain, 0).Size() != 12 {
		t.Error("default size")
	}
	if reorder.Mode(9).String() != "mode?" {
		t.Error("invalid mode string")
	}
}

// TestPlainAggravatesDependencies is the §4 claim: a consumer of a
// fast result stuck behind a slow instruction waits for COMMIT in the
// plain organisation, but only for completion with bypass or a future
// file.
func TestPlainAggravatesDependencies(t *testing.T) {
	src := `
    frecip S1, S2     ; slow (latency 14): delays every younger commit
    lsi    S3, 21     ; fast: completes at once, commits late
    adds   S4, S3, S3 ; consumer of the fast result
    halt
`
	rp, sp, _ := run(t, reorder.ModePlain, 8, src)
	rb, sb, _ := run(t, reorder.ModeBypass, 8, src)
	rf, sf, _ := run(t, reorder.ModeFuture, 8, src)
	for _, st := range []*exec.State{sp, sb, sf} {
		if st.S[4] != 42 {
			t.Fatalf("S4 = %d, want 42", st.S[4])
		}
	}
	if rp.Stats.Cycles <= rb.Stats.Cycles {
		t.Errorf("plain (%d cycles) not slower than bypass (%d)", rp.Stats.Cycles, rb.Stats.Cycles)
	}
	if rb.Stats.Cycles != rf.Stats.Cycles {
		t.Errorf("future file (%d) != bypass (%d); [5] says they perform identically",
			rf.Stats.Cycles, rb.Stats.Cycles)
	}
	if rp.Stats.Stalls[issue.StallOperand] == 0 {
		t.Error("plain mode recorded no aggravated-dependency stalls")
	}
}

// TestStoreToLoadThroughROB: an uncommitted store must be visible to a
// younger load (the buffer is searched newest-first).
func TestStoreToLoadThroughROB(t *testing.T) {
	src := `
.word slot 5
    frecip S1, S2        ; keeps the stores uncommitted
    lai  A1, 9
    sta  A1, =slot(A7)
    lai  A2, 11
    sta  A2, =slot(A7)   ; newest store wins
    lda  A3, =slot(A7)
    halt
`
	for _, mode := range []reorder.Mode{reorder.ModePlain, reorder.ModeBypass, reorder.ModeFuture} {
		_, st, _ := run(t, mode, 10, src)
		if st.A[3] != 11 {
			t.Errorf("%v: A3 = %d, want 11 (newest uncommitted store)", mode, st.A[3])
		}
		if st.Mem.Peek(4096) != 11 {
			t.Errorf("%v: memory = %d after commit", mode, st.Mem.Peek(4096))
		}
	}
}

// TestPreciseTrapBoundary: the reorder buffer's whole purpose — at a
// trap, everything older committed, nothing younger visible.
func TestPreciseTrapBoundary(t *testing.T) {
	for _, mode := range []reorder.Mode{reorder.ModePlain, reorder.ModeBypass, reorder.ModeFuture} {
		unit, err := asm.Assemble(`
    frecip S1, S2
    lai   A1, 7
    trap
    lai   A2, 9
    halt
`)
		if err != nil {
			t.Fatal(err)
		}
		e := reorder.New(mode, 8)
		if !e.Precise() {
			t.Fatalf("%v: not precise", mode)
		}
		m := machine.New(e, machine.Config{})
		m.SetHandler(func(st *exec.State, ev machine.InterruptEvent) machine.InterruptAction {
			if st.A[1] != 7 {
				t.Errorf("%v: older A1 not committed at trap", mode)
			}
			if st.A[2] != 0 {
				t.Errorf("%v: younger A2 visible at trap", mode)
			}
			return machine.InterruptAction{Resume: true, ResumePC: ev.Trap.PC + 1}
		})
		st := exec.NewState(unit.NewMemory())
		res, err := m.Run(unit.Prog, st)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap != nil || st.A[2] != 9 {
			t.Fatalf("%v: resume failed: trap=%v A2=%d", mode, res.Trap, st.A[2])
		}
	}
}

// TestBufferFullBlocksIssue: a tiny buffer records entry stalls.
func TestBufferFullBlocksIssue(t *testing.T) {
	res, _, e := run(t, reorder.ModeBypass, 2, `
    frecip S1, S2
    lsi  S3, 1
    lsi  S4, 2
    lsi  S5, 3
    halt
`)
	if res.Stats.Stalls[issue.StallEntry] == 0 {
		t.Fatal("no entry stalls on a 2-entry buffer")
	}
	if !e.Drained() || e.InFlight() != 0 {
		t.Fatal("buffer not drained")
	}
}

// TestBranchWaitsForCommitInPlainMode: the condition register of a
// branch follows the same read rules, so plain mode blocks branches
// longer.
func TestBranchWaitsForCommitInPlainMode(t *testing.T) {
	src := `
    frecip S1, S2     ; slow, delays commits
    lai   A0, 1       ; fast branch condition
    janz  out
    nop
out:
    halt
`
	rp, _, _ := run(t, reorder.ModePlain, 8, src)
	rb, _, _ := run(t, reorder.ModeBypass, 8, src)
	if rp.Stats.Cycles <= rb.Stats.Cycles {
		t.Errorf("plain branch wait (%d) not longer than bypass (%d)", rp.Stats.Cycles, rb.Stats.Cycles)
	}
}
