// Package reorder implements the precise-interrupt schemes of Smith &
// Pleszkun ("Implementation of Precise Interrupts in Pipelined
// Processors", ISCA 1985) that the paper's §4 builds on: strictly
// in-order issue — no dependency resolution at all — with a reorder
// buffer that retires results to the architectural state in program
// order. Three organisations:
//
//   - ModePlain: a simple reorder buffer. A source register can be read
//     only from the register file, which is updated at commit, so the
//     buffer "aggravates data dependencies" (§4) — a consumer waits for
//     its producer's commit even when the value has long been computed.
//   - ModeBypass: the reorder buffer gains bypass paths; a consumer can
//     read a completed-but-uncommitted value out of the buffer.
//   - ModeFuture: a future file holds the most recent completed value of
//     every register; the architectural file still updates in order.
//     Performance equals ModeBypass at the cost of duplicating the
//     register file instead of adding search paths.
//
// Together with internal/issue/simple (in-order, imprecise), the RSTU
// (out-of-order, imprecise) and the RUU (out-of-order, precise), this
// completes the 2x2 design space the paper argues about: the RUU is the
// claim that one structure can sit in the best quadrant.
package reorder

import (
	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/issue"
	"ruu/internal/obs"
)

// Mode selects the Smith & Pleszkun organisation.
type Mode uint8

const (
	// ModePlain is the simple reorder buffer (no bypass).
	ModePlain Mode = iota
	// ModeBypass adds bypass paths from the buffer.
	ModeBypass
	// ModeFuture uses a future file.
	ModeFuture
)

func (m Mode) String() string {
	switch m {
	case ModePlain:
		return "plain"
	case ModeBypass:
		return "bypass"
	case ModeFuture:
		return "future"
	default:
		return "mode?"
	}
}

type robEntry struct {
	used    bool
	id      int64 // dynamic-instruction id (observability)
	pc      int
	hasDest bool
	dest    isa.Reg
	done    bool
	value   int64

	isStore bool
	addr    int64
	data    int64

	fault *exec.Trap
}

// Engine is the in-order-issue, reorder-buffer-commit engine.
type Engine struct {
	mode Mode
	size int

	ctx *issue.Context

	// writers counts uncommitted producers per register; lastWriter is
	// the ROB position of the newest one.
	writers    [isa.NumRegs]int
	lastWriter [isa.NumRegs]int

	rob   []robEntry
	head  int
	tail  int
	count int

	// Future file (ModeFuture): value and validity of the most recent
	// *completed* instance.
	ff      [isa.NumRegs]int64
	ffFresh [isa.NumRegs]bool // ff holds the newest writer's value

	pending []completion

	retired int64
	trap    *exec.Trap
}

type completion struct {
	cycle int64
	pos   int
}

// New returns a reorder-buffer engine with n entries (default 12).
func New(mode Mode, n int) *Engine {
	if n <= 0 {
		n = 12
	}
	return &Engine{mode: mode, size: n}
}

// Name implements issue.Engine.
func (e *Engine) Name() string { return "reorder-" + e.mode.String() }

// Size returns the reorder-buffer depth.
func (e *Engine) Size() int { return e.size }

// Reset implements issue.Engine.
func (e *Engine) Reset(ctx *issue.Context) {
	e.ctx = ctx
	e.rob = make([]robEntry, e.size)
	e.head, e.tail, e.count = 0, 0, 0
	e.writers = [isa.NumRegs]int{}
	e.ff = [isa.NumRegs]int64{}
	e.ffFresh = [isa.NumRegs]bool{}
	e.pending = e.pending[:0]
	e.retired = 0
	e.trap = nil
	ctx.Bus.Reset()
	ctx.LoadRegs.Reset()
}

// BeginCycle implements issue.Engine: completions land in the reorder
// buffer (and the future file), then the head commits in order.
func (e *Engine) BeginCycle(c int64) {
	out := e.pending[:0]
	for _, p := range e.pending {
		if p.cycle != c {
			out = append(out, p)
			continue
		}
		ent := &e.rob[p.pos]
		ent.done = true
		e.ctx.Observe(obs.KindWriteback, c, ent.id, ent.pc)
		if ent.hasDest {
			f := ent.dest.Flat()
			if e.lastWriter[f] == p.pos {
				e.ff[f] = ent.value
				e.ffFresh[f] = true
			}
		}
	}
	e.pending = out
	e.commit(c)
}

func (e *Engine) commit(c int64) {
	for e.count > 0 {
		ent := &e.rob[e.head]
		if ent.fault != nil {
			e.trap = ent.fault
			return
		}
		if !ent.done {
			return
		}
		if ent.isStore {
			if f := e.ctx.State.Mem.Write(ent.addr, ent.data); f != nil {
				panic("reorder: unexpected fault at store commit: " + f.Error())
			}
		}
		if ent.hasDest {
			e.ctx.State.SetReg(ent.dest, ent.value)
			e.writers[ent.dest.Flat()]--
		}
		e.ctx.Observe(obs.KindCommit, c, ent.id, ent.pc)
		*ent = robEntry{}
		e.head = (e.head + 1) % e.size
		e.count--
		e.retired++
	}
}

// Dispatch implements issue.Engine: in-order issue sends instructions
// straight to the functional units, so there is nothing to do here.
func (e *Engine) Dispatch(int64) {}

// readReg attempts to obtain a source register's value under the mode's
// rules.
func (e *Engine) readReg(r isa.Reg) (int64, bool) {
	f := r.Flat()
	if e.writers[f] == 0 {
		return e.ctx.State.Reg(r), true
	}
	switch e.mode {
	case ModeBypass:
		// Bypass path: the newest writer's entry, if completed.
		ent := &e.rob[e.lastWriter[f]]
		if ent.done {
			return ent.value, true
		}
	case ModeFuture:
		if e.ffFresh[f] {
			return e.ff[f], true
		}
	case ModePlain:
		// Plain reorder buffer: no forwarding, wait for commit.
	}
	return 0, false
}

// TryIssue implements issue.Engine.
func (e *Engine) TryIssue(c int64, pc int, ins isa.Instruction) issue.StallReason {
	if e.trap != nil {
		return issue.StallDrain
	}
	if ins.Op == isa.Nop {
		// NOP occupies a buffer slot so that the retired count remains a
		// program-order prefix (preciseness of the count).
		return e.allocate(c, pc, ins, func(ent *robEntry) { ent.done = true })
	}
	if ins.Op == isa.Trap {
		return e.allocate(c, pc, ins, func(ent *robEntry) {
			ent.done = true
			ent.fault = &exec.Trap{Kind: exec.TrapExplicit, PC: pc}
		})
	}

	var srcBuf [2]isa.Reg
	srcs := ins.Srcs(srcBuf[:0])
	var vals [2]int64
	for i, r := range srcs {
		v, ok := e.readReg(r)
		if !ok {
			return issue.StallOperand
		}
		vals[i] = v
	}

	info := ins.Op.Info()
	switch {
	case info.Load:
		addr := exec.EffAddr(ins, vals[0])
		lat := int64(e.ctx.Lat[isa.UnitMem])
		if e.count == e.size {
			return issue.StallEntry
		}
		if !e.ctx.Bus.Reserve(c + lat) {
			return issue.StallBus
		}
		if t := issue.MemTrap(e.ctx, pc, addr); t != nil {
			return e.allocate(c, pc, ins, func(ent *robEntry) {
				ent.done = true
				ent.fault = t
			})
		}
		// In-order issue with stores buffered in the ROB: the load must
		// see the newest uncommitted store to its address.
		v, hit := e.searchStores(addr)
		if !hit {
			mv, f := e.ctx.State.Mem.Read(addr)
			if f != nil {
				panic("reorder: unexpected fault after check: " + f.Error())
			}
			v = mv
		}
		return e.allocate(c, pc, ins, func(ent *robEntry) {
			ent.value = v
		}, completion{c + lat, -1})
	case info.Store:
		addr := exec.EffAddr(ins, vals[0])
		if e.count == e.size {
			return issue.StallEntry
		}
		if t := issue.MemTrap(e.ctx, pc, addr); t != nil {
			return e.allocate(c, pc, ins, func(ent *robEntry) {
				ent.done = true
				ent.fault = t
			})
		}
		data := vals[1]
		return e.allocate(c, pc, ins, func(ent *robEntry) {
			ent.isStore = true
			ent.addr = addr
			ent.data = data
			ent.done = true // a store is "done" at issue; memory waits for commit
		})
	default:
		if e.count == e.size {
			return issue.StallEntry
		}
		lat := int64(e.ctx.Lat.Of(ins.Op))
		if _, hasDst := ins.Dst(); hasDst {
			if !e.ctx.Bus.Reserve(c + lat) {
				return issue.StallBus
			}
		}
		v := exec.ALU(ins, vals[0], vals[1])
		return e.allocate(c, pc, ins, func(ent *robEntry) {
			ent.value = v
		}, completion{c + lat, -1})
	}
}

// allocate appends a ROB entry at the tail. Completions with pos == -1
// are fixed up to the allocated position.
func (e *Engine) allocate(c int64, pc int, ins isa.Instruction, init func(*robEntry), comps ...completion) issue.StallReason {
	if e.count == e.size {
		return issue.StallEntry
	}
	pos := e.tail
	ent := robEntry{used: true, id: e.ctx.DecodeID, pc: pc}
	if dst, ok := ins.Dst(); ok {
		ent.hasDest = true
		ent.dest = dst
		f := dst.Flat()
		e.writers[f]++
		e.lastWriter[f] = pos
		e.ffFresh[f] = false // the newest writer has not completed yet
	}
	if init != nil {
		init(&ent)
	}
	e.rob[pos] = ent
	e.tail = (e.tail + 1) % e.size
	e.count++
	// In-order issue sends the instruction straight to its functional
	// unit, so issue, dispatch and execute coincide.
	e.ctx.Observe(obs.KindIssue, c, ent.id, ent.pc)
	e.ctx.Observe(obs.KindDispatch, c, ent.id, ent.pc)
	e.ctx.Observe(obs.KindExecute, c, ent.id, ent.pc)
	if ent.done {
		// Stores, NOPs and explicit traps are complete at issue.
		e.ctx.Observe(obs.KindWriteback, c, ent.id, ent.pc)
	}
	for _, cp := range comps {
		if cp.pos == -1 {
			cp.pos = pos
		}
		e.pending = append(e.pending, cp)
	}
	return issue.StallNone
}

// searchStores scans the buffer from newest to oldest for an uncommitted
// store to addr.
func (e *Engine) searchStores(addr int64) (int64, bool) {
	for i, pos := 0, (e.tail-1+e.size)%e.size; i < e.count; i, pos = i+1, (pos-1+e.size)%e.size {
		ent := &e.rob[pos]
		if ent.used && ent.isStore && ent.fault == nil && ent.addr == addr {
			return ent.data, true
		}
	}
	return 0, false
}

// TryReadCond implements issue.Engine with the mode's read rules: a
// branch in the plain organisation waits for its condition register to
// commit — the dependency aggravation §4 describes.
func (e *Engine) TryReadCond(_ int64, r isa.Reg) (int64, bool) {
	return e.readReg(r)
}

// Drained implements issue.Engine.
func (e *Engine) Drained() bool { return e.count == 0 }

// PendingTrap implements issue.Engine.
func (e *Engine) PendingTrap() *exec.Trap { return e.trap }

// Precise implements issue.Engine: commit is in program order, so yes.
func (e *Engine) Precise() bool { return true }

// Flush implements issue.Engine.
func (e *Engine) Flush() {
	e.rob = make([]robEntry, e.size)
	e.head, e.tail, e.count = 0, 0, 0
	e.writers = [isa.NumRegs]int{}
	e.ffFresh = [isa.NumRegs]bool{}
	e.pending = e.pending[:0]
	e.trap = nil
	e.ctx.Bus.Clear()
	e.ctx.LoadRegs.Reset()
}

// InFlight implements issue.Engine.
func (e *Engine) InFlight() int { return e.count }

// Retired implements issue.Engine.
func (e *Engine) Retired() int64 { return e.retired }

// HeadPC returns the oldest uncommitted instruction's program counter
// (the precise restart point for an external interrupt).
func (e *Engine) HeadPC() (int, bool) {
	if e.count == 0 {
		return 0, false
	}
	return e.rob[e.head].pc, true
}
