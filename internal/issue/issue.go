// Package issue defines the contract between the shared machine loop
// (internal/machine) and the instruction-issue engines: the simple
// in-order baseline, Tomasulo's algorithm, the Tag Unit variants, the
// RSTU, and the RUU. Each engine owns the architectural register file and
// updates it according to its own discipline (at completion for the
// imprecise engines, at commit for the RUU).
package issue

import (
	"ruu/internal/exec"
	"ruu/internal/fu"
	"ruu/internal/isa"
	"ruu/internal/memsys"
	"ruu/internal/obs"
)

// Context carries the substrate shared by the machine loop and the
// engine: the program, the architectural state, the single result bus,
// the load registers, and the functional-unit latencies.
type Context struct {
	Prog     *isa.Program
	State    *exec.State
	Bus      *fu.ResultBus
	LoadRegs *memsys.LoadRegs
	Lat      fu.Latencies
	// FwdLatency is the latency of a load satisfied by load-register
	// forwarding instead of a memory access.
	FwdLatency int
	// Inject, when non-nil, is consulted by engines when a memory
	// operation accesses memory and may veto the access with a synthetic
	// trap (test support for the precise-interrupt experiments).
	Inject func(pc int, addr int64) *exec.Trap
	// Probe, when non-nil, receives pipeline lifecycle events from the
	// machine loop and the engine. The emission helpers below branch on
	// nil and allocate nothing, so a run without a probe pays only a
	// predicted-not-taken branch per would-be event.
	Probe obs.Probe
	// DecodeID is the dynamic-instruction id of the instruction
	// currently offered to the engine. The machine assigns ids at fetch
	// and sets this before TryIssue/IssueBranch; engines record it in
	// the accepted entry so later lifecycle events identify the same
	// dynamic instruction.
	DecodeID int64
}

// Observe emits one lifecycle event for the instruction with the given
// dynamic id. It is the zero-allocation fast path: with no probe
// attached it is a single nil check.
func (ctx *Context) Observe(k obs.Kind, cycle, id int64, pc int) {
	if ctx.Probe == nil {
		return
	}
	ctx.Probe.Event(obs.Event{Kind: k, Cycle: cycle, ID: id, PC: pc})
}

// ObserveStall emits a decode-stage stall event with the given reason.
func (ctx *Context) ObserveStall(cycle int64, r StallReason, id int64, pc int) {
	if ctx.Probe == nil {
		return
	}
	ctx.Probe.Event(obs.Event{Kind: obs.KindStall, Stall: uint8(r), Cycle: cycle, ID: id, PC: pc})
}

// ObserveSample emits the per-cycle occupancy snapshot.
func (ctx *Context) ObserveSample(s obs.Sample) {
	if ctx.Probe == nil {
		return
	}
	ctx.Probe.Sample(s)
}

// StallNames returns the stall-reason names indexed by StallReason code
// (the name table consumers like obs.NewMetrics receive).
func StallNames() []string {
	return append([]string(nil), stallNames[:]...)
}

// MemTrap checks a memory access for traps: first the injected fault (if
// an injector is installed), then the mapping of the target address. It
// returns nil when the access may proceed.
func MemTrap(ctx *Context, pc int, addr int64) *exec.Trap {
	if ctx.Inject != nil {
		if t := ctx.Inject(pc, addr); t != nil {
			return t
		}
	}
	if f := ctx.State.Mem.Check(addr); f != nil {
		k := exec.TrapBadAddress
		if f.Kind == memsys.FaultPage {
			k = exec.TrapPageFault
		}
		return &exec.Trap{Kind: k, PC: pc, Addr: addr}
	}
	return nil
}

// StallReason classifies why the decode-and-issue stage could not make
// progress in a cycle. The machine aggregates these into Stats.
type StallReason uint8

const (
	// StallNone: no stall (the instruction issued).
	StallNone StallReason = iota
	// StallOperand: a source operand was unavailable and the engine has
	// no place for the instruction to wait (simple issue only).
	StallOperand
	// StallDest: the destination register was busy (simple issue) or had
	// exhausted its instances (RUU: NI = 2^n-1).
	StallDest
	// StallEntry: no free reservation station / RSTU entry / RUU slot.
	StallEntry
	// StallBus: the result bus slot needed at completion was reserved
	// (simple issue reserves at issue time).
	StallBus
	// StallBranch: the decode stage held a branch waiting for its
	// condition register.
	StallBranch
	// StallFetch: dead cycles after a branch redirect (fetch penalty) or
	// an empty decode register.
	StallFetch
	// StallLoadReg: no free load register for a memory operation.
	StallLoadReg
	// StallDrain: waiting for in-flight instructions to drain at HALT or
	// at a serialisation point.
	StallDrain

	// NumStallReasons is the number of stall classes.
	NumStallReasons
)

var stallNames = [NumStallReasons]string{
	"none", "operand", "dest", "entry", "bus", "branch", "fetch", "loadreg", "drain",
}

func (s StallReason) String() string {
	if int(s) < len(stallNames) {
		return stallNames[s]
	}
	return "stall?"
}

// Engine is one instruction-issue mechanism. The machine loop invokes the
// phases in a fixed order each cycle:
//
//	BeginCycle  — results scheduled for this cycle broadcast on the
//	              result bus; the RUU additionally commits from its head.
//	Dispatch    — ready reservation-station entries dispatch to
//	              functional units (reserving result-bus slots).
//	TryIssue /  — the decode stage hands over the next instruction, or
//	TryReadCond   resolves a branch condition under the engine's rules.
//
// Values broadcast in BeginCycle of cycle c are visible to Dispatch and
// TryIssue of the same cycle; entries accepted by TryIssue in cycle c
// become dispatchable in cycle c+1 (a reservation station adds one
// pipeline stage relative to simple issue).
type Engine interface {
	// Name identifies the engine in reports.
	Name() string
	// Reset prepares the engine for a run over ctx. It must leave the
	// engine empty and the context's bus/load registers cleared.
	Reset(ctx *Context)
	// BeginCycle performs result broadcast (and commit, for the RUU).
	BeginCycle(c int64)
	// Dispatch moves ready entries to the functional units.
	Dispatch(c int64)
	// TryIssue offers the decoded instruction (never a branch, NOP or
	// HALT). It returns StallNone and consumes the instruction, or the
	// reason it could not.
	TryIssue(c int64, pc int, ins isa.Instruction) StallReason
	// TryReadCond attempts to obtain the current value of a branch's
	// condition register under the engine's bypass rules.
	TryReadCond(c int64, r isa.Reg) (int64, bool)
	// Drained reports whether no instructions are in flight (issued but
	// not yet architecturally complete).
	Drained() bool
	// PendingTrap returns a trap that has reached the engine's
	// architectural boundary: immediately upon detection for the
	// imprecise engines, at the RUU head for the RUU. The machine
	// decides whether the state is recoverable.
	PendingTrap() *exec.Trap
	// Precise reports whether PendingTrap leaves the architectural state
	// precise (true only for the RUU).
	Precise() bool
	// Flush discards all in-flight instructions and clears trap state.
	// For a precise engine the architectural state afterwards is exactly
	// the state at the trapping instruction's boundary.
	Flush()
	// InFlight returns the number of issued, not-yet-retired
	// instructions (used by statistics and occupancy tests).
	InFlight() int
	// Retired returns the number of instructions the engine has
	// architecturally completed. Squashed (nullified) instructions are
	// never counted. The machine adds the instructions it retires itself
	// (branches resolved in decode, NOP/HALT) to obtain the program's
	// dynamic instruction count.
	Retired() int64
}

// BranchOutcome describes a resolved speculative branch.
type BranchOutcome struct {
	// ID is the token returned by IssueBranch.
	ID int
	// PC is the branch's instruction index.
	PC int
	// Taken is the architecturally correct direction.
	Taken bool
	// Target is the instruction index to fetch from next.
	Target int
	// Mispredicted reports whether the predicted direction was wrong, in
	// which case the engine has already squashed the wrong-path entries.
	Mispredicted bool
}

// Speculator is implemented by engines that support the paper's §7
// extension: conditional execution of instructions from a predicted
// branch path, with RUU-based nullification on misprediction.
type Speculator interface {
	Engine
	// IssueBranch enters a conditional branch into the engine with a
	// predicted direction. Instructions issued afterwards are
	// conditional on it. It returns a token identifying the branch and
	// StallNone on success.
	IssueBranch(c int64, pc int, ins isa.Instruction, predictTaken bool) (int, StallReason)
	// TakeOutcomes returns branches resolved during this cycle, in
	// program order, and clears the internal list. Outcomes drive fetch
	// redirection and predictor training only; they may include branches
	// that are later squashed (they resolved on what turns out to be a
	// wrong path), so architectural branch statistics come from
	// BranchStats instead. The returned slice may be reused by the
	// engine; it is valid only until the next call.
	TakeOutcomes() []BranchOutcome
	// BranchStats returns committed (architectural) branch counts:
	// branches, taken branches, mispredictions.
	BranchStats() (branches, taken, mispredicts int64)
}
