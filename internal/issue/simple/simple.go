// Package simple implements the baseline instruction-issue mechanism of
// the paper's Table 1: strictly in-order issue with per-register busy
// bits. An instruction waits in the decode-and-issue stage until all of
// its source registers are available and its destination register is not
// busy; because the single decode stage is occupied while it waits,
// nothing behind it can proceed. Completion is still out of order (the
// functional units have different latencies), so interrupts are
// imprecise — exactly the combination the paper sets out to fix.
package simple

import (
	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/issue"
	"ruu/internal/obs"
)

type writeback struct {
	cycle int64
	dst   isa.Reg
	value int64
	id    int64 // dynamic-instruction id (observability)
	pc    int
}

// Engine is the simple in-order issue engine.
type Engine struct {
	ctx      *issue.Context
	busy     [isa.NumRegs]bool
	inflight []writeback
	retired  int64
	trap     *exec.Trap
}

// New returns a simple-issue engine.
func New() *Engine { return &Engine{} }

// Name implements issue.Engine.
func (e *Engine) Name() string { return "simple" }

// Reset implements issue.Engine.
func (e *Engine) Reset(ctx *issue.Context) {
	e.ctx = ctx
	e.busy = [isa.NumRegs]bool{}
	e.inflight = e.inflight[:0]
	e.retired = 0
	e.trap = nil
	ctx.Bus.Reset()
	ctx.LoadRegs.Reset()
}

// BeginCycle broadcasts results completing this cycle into the register
// file and clears the producers' busy bits.
func (e *Engine) BeginCycle(c int64) {
	out := e.inflight[:0]
	for _, wb := range e.inflight {
		if wb.cycle == c {
			e.ctx.State.SetReg(wb.dst, wb.value)
			e.busy[wb.dst.Flat()] = false
			e.ctx.Observe(obs.KindWriteback, c, wb.id, wb.pc)
			e.ctx.Observe(obs.KindCommit, c, wb.id, wb.pc)
		} else {
			out = append(out, wb)
		}
	}
	e.inflight = out
}

// Dispatch implements issue.Engine; the simple engine has no reservation
// stations, so instructions go straight from issue to the functional
// units and there is nothing to do here.
func (e *Engine) Dispatch(int64) {}

// TryIssue implements issue.Engine.
func (e *Engine) TryIssue(c int64, pc int, ins isa.Instruction) issue.StallReason {
	if e.trap != nil {
		return issue.StallDrain
	}
	if ins.Op == isa.Nop {
		e.retired++
		e.observeDone(c, pc)
		return issue.StallNone
	}

	var srcBuf [2]isa.Reg
	srcs := ins.Srcs(srcBuf[:0])
	for _, r := range srcs {
		if e.busy[r.Flat()] {
			return issue.StallOperand
		}
	}
	dst, hasDst := ins.Dst()
	if hasDst && e.busy[dst.Flat()] {
		return issue.StallDest
	}

	info := ins.Op.Info()
	st := e.ctx.State
	switch {
	case ins.Op == isa.Trap:
		e.trap = &exec.Trap{Kind: exec.TrapExplicit, PC: pc}
		return issue.StallNone
	case info.Load:
		addr := exec.EffAddr(ins, st.Reg(isa.A(int(ins.J))))
		lat := int64(e.ctx.Lat[isa.UnitMem])
		// Reserve the bus before the trap check so the injector is
		// consulted exactly once per dynamic memory operation (a bus
		// stall retries issue next cycle).
		if !e.ctx.Bus.Reserve(c + lat) {
			return issue.StallBus
		}
		if t := e.memTrap(pc, addr); t != nil {
			e.trap = t
			return issue.StallNone
		}
		v, f := st.Mem.Read(addr)
		if f != nil {
			panic("simple: unexpected fault after check: " + f.Error())
		}
		e.busy[dst.Flat()] = true
		e.inflight = append(e.inflight, writeback{c + lat, dst, v, e.ctx.DecodeID, pc})
		e.observeStart(c, pc)
	case info.Store:
		addr := exec.EffAddr(ins, st.Reg(isa.A(int(ins.J))))
		if t := e.memTrap(pc, addr); t != nil {
			e.trap = t
			return issue.StallNone
		}
		// In-order issue guarantees memory ordering; the store's value is
		// architecturally visible at issue (timing-wise the memory unit
		// is pipelined and stores produce no register result).
		data := st.Reg(isa.Reg{File: info.File, Idx: ins.I})
		if f := st.Mem.Write(addr, data); f != nil {
			panic("simple: unexpected fault after check: " + f.Error())
		}
		e.observeDone(c, pc)
	default:
		// Computational instruction: all operands are ready now.
		var v1, v2 int64
		if len(srcs) > 0 {
			v1 = st.Reg(srcs[0])
		}
		if len(srcs) > 1 {
			v2 = st.Reg(srcs[1])
		}
		lat := int64(e.ctx.Lat.Of(ins.Op))
		if !e.ctx.Bus.Reserve(c + lat) {
			return issue.StallBus
		}
		res := exec.ALU(ins, v1, v2)
		if hasDst {
			e.busy[dst.Flat()] = true
			e.inflight = append(e.inflight, writeback{c + lat, dst, res, e.ctx.DecodeID, pc})
			e.observeStart(c, pc)
		} else {
			e.observeDone(c, pc)
		}
	}
	e.retired++
	return issue.StallNone
}

func (e *Engine) memTrap(pc int, addr int64) *exec.Trap {
	return issue.MemTrap(e.ctx, pc, addr)
}

// observeStart emits the issue-time stages for an instruction whose
// result is still in flight: with no reservation stations, issue,
// dispatch and execute coincide.
func (e *Engine) observeStart(c int64, pc int) {
	id := e.ctx.DecodeID
	e.ctx.Observe(obs.KindIssue, c, id, pc)
	e.ctx.Observe(obs.KindDispatch, c, id, pc)
	e.ctx.Observe(obs.KindExecute, c, id, pc)
}

// observeDone emits the full stage chain for an instruction that is
// architecturally complete at issue (NOP, store, result-less ALU op).
func (e *Engine) observeDone(c int64, pc int) {
	id := e.ctx.DecodeID
	e.observeStart(c, pc)
	e.ctx.Observe(obs.KindWriteback, c, id, pc)
	e.ctx.Observe(obs.KindCommit, c, id, pc)
}

// TryReadCond implements issue.Engine: the condition register is readable
// once it is not busy.
func (e *Engine) TryReadCond(_ int64, r isa.Reg) (int64, bool) {
	if e.busy[r.Flat()] {
		return 0, false
	}
	return e.ctx.State.Reg(r), true
}

// Drained implements issue.Engine.
func (e *Engine) Drained() bool { return len(e.inflight) == 0 }

// PendingTrap implements issue.Engine. The simple engine reports traps as
// soon as they are detected; older instructions may still be in flight,
// so the state is imprecise.
func (e *Engine) PendingTrap() *exec.Trap { return e.trap }

// Precise implements issue.Engine.
func (e *Engine) Precise() bool { return false }

// Flush implements issue.Engine.
func (e *Engine) Flush() {
	e.inflight = e.inflight[:0]
	e.busy = [isa.NumRegs]bool{}
	e.trap = nil
	e.ctx.Bus.Clear()
	e.ctx.LoadRegs.Reset()
}

// InFlight implements issue.Engine.
func (e *Engine) InFlight() int { return len(e.inflight) }

// Retired implements issue.Engine.
func (e *Engine) Retired() int64 { return e.retired }
