package simple_test

import (
	"testing"

	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/issue/simple"
	"ruu/internal/machine"
)

func TestEngineLifecycle(t *testing.T) {
	e := simple.New()
	if e.Name() != "simple" || e.Precise() {
		t.Fatal("identity wrong")
	}
	u, err := asm.Assemble(`
    lai  A1, 3
    mula A2, A1, A1
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(e, machine.Config{})
	st := exec.NewState(u.NewMemory())
	res, err := m.Run(u.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	if st.A[2] != 9 || res.Stats.Instructions != 3 {
		t.Fatalf("A2=%d instr=%d", st.A[2], res.Stats.Instructions)
	}
	if !e.Drained() || e.InFlight() != 0 || e.Retired() != 2 {
		t.Fatalf("post-run engine state: drained=%v inflight=%d retired=%d",
			e.Drained(), e.InFlight(), e.Retired())
	}
}

// TestExactWritebackTiming pins the decode-to-writeback contract: an
// A-multiply's consumer waits exactly the unit latency.
func TestExactWritebackTiming(t *testing.T) {
	u, err := asm.Assemble(`
    lai  A1, 3
    mula A2, A1, A1
    adda A3, A2, A2
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	m := machine.New(simple.New(), cfg)
	res, err := m.Run(u.Prog, exec.NewState(u.NewMemory()))
	if err != nil {
		t.Fatal(err)
	}
	// fetch@0; lai issues @1 (wb @2); mula fetched @1, issues @2
	// (lat 6 -> wb @8); adda fetched @2, waits for A2, issues @8
	// (lat 2 -> wb @10); halt fetched @3, drains @10, retires @10.
	if res.Stats.Cycles != 11 {
		t.Fatalf("cycles = %d, want 11", res.Stats.Cycles)
	}
}

func TestFlushClearsState(t *testing.T) {
	e := simple.New()
	u, _ := asm.Assemble("lai A1, 1\ntrap\nhalt")
	m := machine.New(e, machine.Config{})
	res, err := m.Run(u.Prog, exec.NewState(u.NewMemory()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil {
		t.Fatal("trap lost")
	}
	e.Flush()
	if e.PendingTrap() != nil || e.InFlight() != 0 {
		t.Fatal("flush incomplete")
	}
}
