package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ruu/internal/obs"
)

func keyOf(parts ...string) Key {
	h := NewHasher()
	for i, p := range parts {
		h.String(fmt.Sprintf("part%d", i), p)
	}
	return h.Sum()
}

func TestHasherFieldBoundaries(t *testing.T) {
	// "ab"+"c" must not alias "a"+"bc", and labels must separate too.
	if keyOf("ab", "c") == keyOf("a", "bc") {
		t.Fatal("adjacent string fields alias")
	}
	h1 := NewHasher()
	h1.String("x", "v")
	h2 := NewHasher()
	h2.String("y", "v")
	if h1.Sum() == h2.Sum() {
		t.Fatal("label is not part of the hash")
	}
	h3 := NewHasher()
	h3.Int("n", 1)
	h4 := NewHasher()
	h4.Int("n", 256)
	if h3.Sum() == h4.Sum() {
		t.Fatal("int values collide")
	}
	if (Key{}).IsZero() != true || keyOf("a").IsZero() {
		t.Fatal("IsZero misclassifies")
	}
}

func TestMapOrderedParallel(t *testing.T) {
	p := New(Config{Workers: 8, QueueDepth: 2})
	defer p.Close()
	n := 100
	out, err := Map(context.Background(), p, n, nil, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapNilPoolIsSerial(t *testing.T) {
	var order []int
	out, err := Map[int](context.Background(), nil, 5, nil, func(_ context.Context, i int) (int, error) {
		order = append(order, i)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 || len(order) != 5 || order[0] != 0 || order[4] != 4 {
		t.Fatalf("serial map out of order: %v / %v", out, order)
	}
}

func TestMapLowestIndexError(t *testing.T) {
	p := New(Config{Workers: 4})
	defer p.Close()
	// Make higher indexes fail *faster* so the collection order, not
	// the completion order, must pick the winner.
	_, err := Map(context.Background(), p, 8, nil, func(_ context.Context, i int) (int, error) {
		if i >= 2 {
			time.Sleep(time.Duration(8-i) * time.Millisecond)
			return 0, fmt.Errorf("fail-%d", i)
		}
		time.Sleep(20 * time.Millisecond)
		return 0, fmt.Errorf("fail-%d", i)
	})
	if err == nil || err.Error() != "fail-0" {
		t.Fatalf("err = %v, want fail-0 (lowest index)", err)
	}
}

func TestPanicBecomesJobError(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	tk, err := p.Submit(context.Background(), NoKey, func(context.Context) (any, error) {
		panic("simulated engine bug")
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = tk.Wait(context.Background())
	if err == nil || !strings.Contains(err.Error(), "simulated engine bug") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	// The pool survives: the next job still runs.
	tk, err = p.Submit(context.Background(), NoKey, func(context.Context) (any, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := tk.Wait(context.Background())
	if err != nil || v.(int) != 42 {
		t.Fatalf("pool dead after panic: %v %v", v, err)
	}
	if m := p.Metrics(); m.Panics != 1 || m.Failed != 1 || m.Completed != 1 {
		t.Fatalf("metrics after panic: %+v", m)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 1})
	defer p.Close()
	release := make(chan struct{})
	block := func(context.Context) (any, error) { <-release; return nil, nil }
	// Fill the worker and the queue.
	if _, err := p.Submit(context.Background(), NoKey, block); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick up the first job so the queue slot is
	// free for the second.
	deadline := time.Now().Add(time.Second)
	for p.Metrics().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := p.Submit(context.Background(), NoKey, block); err != nil {
		t.Fatal(err)
	}
	// The queue is now full: a submit with a short deadline must fail
	// with the context error instead of blocking forever.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := p.Submit(ctx, NoKey, block)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("full queue submit: err = %v, want deadline exceeded", err)
	}
	close(release)
}

func TestCancelledJobNeverRuns(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	tk, err := p.Submit(ctx, NoKey, func(context.Context) (any, error) {
		ran.Store(true)
		return nil, nil
	})
	if err != nil {
		// Also acceptable: the cancelled context lost the submit race.
		return
	}
	_, werr := tk.Wait(context.Background())
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("cancelled job: err = %v, want context.Canceled", werr)
	}
	if ran.Load() {
		t.Fatal("cancelled job ran anyway")
	}
}

func TestCacheHitMissEviction(t *testing.T) {
	c := NewCache(2)
	k1, k2, k3 := keyOf("1"), keyOf("2"), keyOf("3")
	if _, ok := c.Get(k1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k1, "one")
	c.Put(k2, "two")
	if v, ok := c.Get(k1); !ok || v.(string) != "one" {
		t.Fatalf("get k1 = %v %v", v, ok)
	}
	c.Put(k3, "three") // evicts k2 (LRU; k1 was just touched)
	if _, ok := c.Get(k2); ok {
		t.Fatal("k2 survived eviction")
	}
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 evicted out of LRU order")
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 || s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
	// Zero keys are never stored.
	c.Put(NoKey, "x")
	if _, ok := c.Get(NoKey); ok {
		t.Fatal("zero key cached")
	}
}

func TestPoolCacheRoundTrip(t *testing.T) {
	p := New(Config{Workers: 2, Cache: NewCache(16)})
	defer p.Close()
	var runs atomic.Int64
	k := keyOf("job")
	run := func(context.Context) (any, error) {
		runs.Add(1)
		return "result", nil
	}
	tk, err := p.Submit(context.Background(), k, run)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := tk.Wait(context.Background()); err != nil || v.(string) != "result" {
		t.Fatalf("first run: %v %v", v, err)
	}
	if tk.Cached() {
		t.Fatal("first run marked cached")
	}
	tk2, err := p.Submit(context.Background(), k, run)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := tk2.Wait(context.Background()); err != nil || v.(string) != "result" {
		t.Fatalf("second run: %v %v", v, err)
	}
	if !tk2.Cached() || runs.Load() != 1 {
		t.Fatalf("cache miss on resubmission: cached=%v runs=%d", tk2.Cached(), runs.Load())
	}
	if m := p.Metrics(); m.Cache.Hits != 1 {
		t.Fatalf("metrics cache hits = %d, want 1", m.Cache.Hits)
	}
}

func TestSingleflightDedup(t *testing.T) {
	p := New(Config{Workers: 4, Cache: NewCache(16)})
	defer p.Close()
	var runs atomic.Int64
	release := make(chan struct{})
	k := keyOf("dup")
	run := func(context.Context) (any, error) {
		runs.Add(1)
		<-release
		return "v", nil
	}
	t1, err := p.Submit(context.Background(), k, run)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p.Submit(context.Background(), k, run)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("concurrent same-key submits got distinct tickets")
	}
	close(release)
	if _, err := t2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("job ran %d times, want 1", runs.Load())
	}
	if m := p.Metrics(); m.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1", m.Deduped)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	p := New(Config{Workers: 1, Cache: NewCache(16)})
	defer p.Close()
	k := keyOf("flaky")
	var runs atomic.Int64
	fail := func(context.Context) (any, error) { runs.Add(1); return nil, errors.New("boom") }
	ok := func(context.Context) (any, error) { runs.Add(1); return "fine", nil }
	tk, _ := p.Submit(context.Background(), k, fail)
	if _, err := tk.Wait(context.Background()); err == nil {
		t.Fatal("want error")
	}
	tk, _ = p.Submit(context.Background(), k, ok)
	v, err := tk.Wait(context.Background())
	if err != nil || v.(string) != "fine" {
		t.Fatalf("retry after failure: %v %v (failure was cached?)", v, err)
	}
	if runs.Load() != 2 {
		t.Fatalf("runs = %d, want 2", runs.Load())
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 8})
	var done atomic.Int64
	var tickets []*Ticket
	for i := 0; i < 5; i++ {
		tk, err := p.Submit(context.Background(), NoKey, func(context.Context) (any, error) {
			time.Sleep(time.Millisecond)
			done.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	p.Close()
	if done.Load() != 5 {
		t.Fatalf("Close returned with %d/5 jobs done", done.Load())
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Submit(context.Background(), NoKey, func(context.Context) (any, error) { return nil, nil }); err == nil {
		t.Fatal("submit after Close succeeded")
	}
	p.Close() // idempotent
}

func TestConcurrentSubmitAndClose(t *testing.T) {
	// Stress the Submit/Close race: no send on closed channel, and
	// every accepted ticket resolves.
	for round := 0; round < 20; round++ {
		p := New(Config{Workers: 2, QueueDepth: 1})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					tk, err := p.Submit(context.Background(), NoKey, func(context.Context) (any, error) {
						return nil, nil
					})
					if err != nil {
						return // pool closed underneath us: expected
					}
					if _, err := tk.Wait(context.Background()); err != nil {
						t.Errorf("accepted ticket failed: %v", err)
						return
					}
				}
			}()
		}
		p.Close()
		wg.Wait()
	}
}

func TestPoolMetricsSnapshot(t *testing.T) {
	p := New(Config{Workers: 3, QueueDepth: 7, Cache: NewCache(4)})
	defer p.Close()
	m := p.Metrics()
	if m.Workers != 3 || m.QueueDepth != 7 || m.Cache.Capacity != 4 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestJobSpans(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 4, Cache: NewCache(4)})
	defer p.Close()

	var mu sync.Mutex
	var spans []obs.Span
	p.SetOnJobSpan(func(s obs.Span) {
		mu.Lock()
		spans = append(spans, s)
		mu.Unlock()
	})

	ctx := obs.WithRequestID(context.Background(), "req-42")
	k := keyOf("span-job")
	run := func(context.Context) (any, error) { return 7, nil }

	tk, err := p.Submit(obs.WithJobName(ctx, "seed 0"), k, run)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A cache hit never executes, so it must not emit a span.
	tk2, err := p.Submit(ctx, k, run)
	if err != nil {
		t.Fatal(err)
	}
	if !tk2.Cached() {
		t.Fatal("second submit should hit the cache")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1 (cache hits must not emit)", len(spans))
	}
	s := spans[0]
	if s.Name != "seed 0" || s.RequestID != "req-42" || s.Err {
		t.Errorf("span = %+v", s)
	}
	if s.EnqueueNS == 0 || s.EnqueueNS > s.StartNS || s.StartNS > s.EndNS {
		t.Errorf("span timestamps out of order: %+v", s)
	}
}

func TestMapNamedLabelsSpans(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4})
	defer p.Close()

	var mu sync.Mutex
	names := map[string]bool{}
	p.SetOnJobSpan(func(s obs.Span) {
		mu.Lock()
		names[s.Name] = true
		mu.Unlock()
	})

	out, err := MapNamed(context.Background(), p, 3,
		func(i int) string { return fmt.Sprintf("cfg %d", i) },
		nil,
		func(_ context.Context, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[2] != 4 {
		t.Fatalf("out = %v", out)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 3; i++ {
		if !names[fmt.Sprintf("cfg %d", i)] {
			t.Errorf("missing span name %q in %v", fmt.Sprintf("cfg %d", i), names)
		}
	}
}
