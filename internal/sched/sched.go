// Package sched is the simulation-service execution layer: a
// deterministic worker pool with a bounded job queue, plus a
// content-addressed result cache (cache.go). It exists so the
// experiment harness (tables.go's sweeps) and the ruuserve HTTP API
// can fan simulations out across cores without touching the
// simulator's single-threaded-per-run contract: each job runs one
// complete, self-contained simulation, and all cross-job coordination
// lives here.
//
// Determinism is preserved by construction, not by luck:
//
//   - a job is a pure function of its inputs (the simulator seeds no
//     global state), so execution order cannot change any result;
//   - Map returns results in submission-index order and reports the
//     lowest-index error, so a parallel sweep is byte-identical to the
//     serial one;
//   - the cache key (Key) covers everything that determines a result,
//     so a hit is indistinguishable from a re-run.
//
// The pool is one of the two places in the module where goroutines are
// allowed (the other is internal/server); the ruulint simdeterminism
// pass covers this package, and every goroutine/select below carries
// an individually justified //ruulint:ok <pass> marker — see
// docs/ANALYSIS.md for the policy.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ruu/internal/obs"
)

// Config parameterises a Pool.
type Config struct {
	// Workers is the number of worker goroutines (default
	// runtime.GOMAXPROCS(0)).
	Workers int
	// QueueDepth bounds the job queue; a full queue applies
	// backpressure to Submit (default 4x Workers).
	QueueDepth int
	// Cache, when non-nil, memoises results of keyed jobs.
	Cache *Cache
}

// Pool is a fixed-size worker pool executing simulation jobs. Closing
// the pool drains it: queued jobs still run, and Close returns when
// the last worker exits.
type Pool struct {
	workers int
	cache   *Cache
	jobs    chan *job
	wg      sync.WaitGroup

	mu       sync.Mutex
	inflight map[Key]*Ticket // keyed jobs currently queued or running
	closed   bool
	sending  sync.WaitGroup // Submits between the closed-check and the send
	closing  sync.Once
	onSpan   func(obs.Span) // telemetry hook, called once per executed job

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	panics    atomic.Int64
	deduped   atomic.Int64
	running   atomic.Int64
}

type job struct {
	// The queue handoff carries the submitter's ctx to the worker that
	// eventually runs the job — the one audited place a context rides a
	// struct, and only for the queue dwell time. //ruulint:ok ctxflow
	ctx    context.Context
	key    Key
	run    func(ctx context.Context) (any, error)
	ticket *Ticket
	// enqueueNS is the wall-clock submission stamp, recorded only when
	// a span hook is installed (telemetry, never simulation state).
	enqueueNS int64
}

// Ticket is the future for one submitted job.
type Ticket struct {
	done   chan struct{}
	value  any
	err    error
	cached bool
}

func newTicket() *Ticket { return &Ticket{done: make(chan struct{})} }

func doneTicket(v any, err error, cached bool) *Ticket {
	t := &Ticket{done: make(chan struct{}), value: v, err: err, cached: cached}
	close(t.done)
	return t
}

// Done returns a channel closed when the job has finished.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Cached reports whether the result came from the cache (valid after
// Done).
func (t *Ticket) Cached() bool { return t.cached }

// Wait blocks until the job finishes or ctx is cancelled, returning
// the job's result. A context error abandons the ticket, not the job:
// a running job always completes (and populates the cache).
func (t *Ticket) Wait(ctx context.Context) (any, error) {
	// Waiting on "result ready or caller gave up" is inherently a
	// two-channel race; the job outcome itself is already decided and
	// does not depend on which arm wins. //ruulint:ok simdeterminism
	select {
	case <-t.done:
		return t.value, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (t *Ticket) finish(v any, err error) {
	t.value, t.err = v, err
	close(t.done)
}

// New returns a started Pool.
func New(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	p := &Pool{
		workers:  cfg.Workers,
		cache:    cfg.Cache,
		jobs:     make(chan *job, cfg.QueueDepth),
		inflight: make(map[Key]*Ticket),
	}
	p.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		// The worker goroutines are the point of the package: each runs
		// whole, self-contained simulations whose results are
		// order-independent (see the package comment). //ruulint:ok simdeterminism
		go p.worker(i)
	}
	return p
}

// SetOnJobSpan installs a telemetry hook receiving one obs.Span per
// executed job (enqueue, start, finish, with the request ID and job
// name carried by the submission context). Cache hits and deduplicated
// submissions never execute, so they emit no span. The hook runs on
// worker goroutines and must be safe for concurrent use. A nil hook
// disables span telemetry (the default); with no hook installed the
// pool takes no wall-clock readings at all.
func (p *Pool) SetOnJobSpan(fn func(obs.Span)) {
	p.mu.Lock()
	p.onSpan = fn
	p.mu.Unlock()
}

// spanHook returns the installed hook (nil when span telemetry is off).
func (p *Pool) spanHook() func(obs.Span) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.onSpan
}

// Submit enqueues a job, blocking for queue space (backpressure) until
// ctx is cancelled. The key makes the job cacheable and deduplicates
// concurrent submissions: a second Submit of an in-flight key shares
// the first one's ticket (whose execution context is the first
// submitter's). NoKey skips both.
//
// The returned ticket resolves with the job's result; a job whose
// context is cancelled before a worker picks it up resolves with the
// context's error.
func (p *Pool) Submit(ctx context.Context, key Key, run func(ctx context.Context) (any, error)) (*Ticket, error) {
	if !key.IsZero() && p.cache != nil {
		if v, ok := p.cache.Get(key); ok {
			return doneTicket(v, nil, true), nil
		}
	}
	t := newTicket()
	if !key.IsZero() {
		p.mu.Lock()
		if prior, ok := p.inflight[key]; ok {
			p.mu.Unlock()
			p.deduped.Add(1)
			return prior, nil
		}
		p.inflight[key] = t
		p.mu.Unlock()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.forget(key, t)
		return nil, fmt.Errorf("sched: pool is closed")
	}
	// Register the send under the same lock as the closed-check, so
	// Close cannot close the channel between the check and the send.
	p.sending.Add(1)
	p.mu.Unlock()
	defer p.sending.Done()
	j := &job{ctx: ctx, key: key, run: run, ticket: t}
	if p.spanHook() != nil {
		// Wall-clock submission stamp for the job's telemetry span:
		// operational queue-wait measurement only, invisible to the
		// simulation. //ruulint:ok simdeterminism
		j.enqueueNS = time.Now().UnixNano()
	}
	// Backpressure: block until the bounded queue has room or the
	// submitter gives up. Which submitter wins a slot first cannot
	// change any job's result. //ruulint:ok simdeterminism
	select {
	case p.jobs <- j:
		p.submitted.Add(1)
		return t, nil
	case <-ctx.Done():
		p.forget(key, t)
		return nil, ctx.Err()
	}
}

// forget drops an inflight registration that never enqueued.
func (p *Pool) forget(key Key, t *Ticket) {
	if key.IsZero() {
		return
	}
	p.mu.Lock()
	if p.inflight[key] == t {
		delete(p.inflight, key)
	}
	p.mu.Unlock()
}

// Close drains the pool: no new jobs are accepted, queued jobs still
// run, and Close returns when the last worker has exited. Close is
// idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.closing.Do(func() {
		// In-flight Submits hold queue slots as workers drain them;
		// once they land, nothing else can enter the channel.
		p.sending.Wait()
		close(p.jobs)
	})
	p.wg.Wait()
}

// worker is the dispatch loop: it is a ruulint hot root (LoopOnly), so
// the per-job dispatch path is held allocation-free — a job's own
// setup (machine construction etc.) happens inside run, which the
// pool cannot and should not see.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for j := range p.jobs {
		p.runJob(id, j)
	}
}

// runJob executes one job with panic recovery: a crashed simulation
// becomes that job's error, not a process abort.
func (p *Pool) runJob(worker int, j *job) {
	p.running.Add(1)
	defer p.running.Add(-1)
	hook := p.spanHook()
	var startNS int64
	if hook != nil {
		// Telemetry stamp for the span's queue-wait edge; the job's
		// result is fixed by its inputs alone. //ruulint:ok simdeterminism
		startNS = time.Now().UnixNano()
	}
	var v any
	var err error
	// One closure per job, not per cycle: a job is a whole simulation
	// (millions of cycles), so this allocation is off the per-cycle
	// path the hot-root bar protects.
	func() {
		// Likewise once per job: the recover closure that turns a
		// crashed simulation into a job error. //ruulint:ok hotpathalloc
		defer func() {
			if r := recover(); r != nil {
				p.panics.Add(1)
				// The panic path runs at most once per crashed job —
				// formatting here is cold.
				err = fmt.Errorf("sched: job panicked: %v", r)
			}
		}()
		if cerr := j.ctx.Err(); cerr != nil {
			err = cerr
			return
		}
		v, err = j.run(j.ctx)
	}()
	if err != nil {
		p.failed.Add(1)
	} else {
		p.completed.Add(1)
		if !j.key.IsZero() && p.cache != nil {
			p.cache.Put(j.key, v)
		}
	}
	p.forget(j.key, j.ticket)
	if hook != nil {
		// One span per executed job (cold: a job is a whole
		// simulation); the completion stamp is telemetry like the two
		// above. The hook runs before the ticket resolves so a caller
		// that waited on every ticket observes every span.
		hook(obs.Span{
			Name:      obs.JobNameFrom(j.ctx),
			RequestID: obs.RequestIDFrom(j.ctx),
			Worker:    worker,
			EnqueueNS: j.enqueueNS,
			StartNS:   startNS,
			EndNS:     time.Now().UnixNano(), //ruulint:ok simdeterminism span telemetry, no simulation sees it
			Err:       err != nil,
		})
	}
	j.ticket.finish(v, err)
}

// Metrics is a point-in-time snapshot of the pool.
type Metrics struct {
	// Workers is the worker count; QueueDepth the queue capacity;
	// Queued the jobs currently waiting; Running the jobs currently
	// executing.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	Queued     int `json:"queued"`
	Running    int `json:"running"`
	// Submitted counts jobs accepted into the queue; Completed and
	// Failed the finished ones; Panics the jobs that crashed (a subset
	// of Failed); Deduped the submissions that joined an in-flight
	// ticket.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Panics    int64 `json:"panics"`
	Deduped   int64 `json:"deduped"`
	// Cache is the result-cache snapshot (zero when no cache).
	Cache CacheStats `json:"cache"`
}

// Metrics returns a snapshot of the pool's counters.
func (p *Pool) Metrics() Metrics {
	m := Metrics{
		Workers:    p.workers,
		QueueDepth: cap(p.jobs),
		Queued:     len(p.jobs),
		Running:    int(p.running.Load()),
		Submitted:  p.submitted.Load(),
		Completed:  p.completed.Load(),
		Failed:     p.failed.Load(),
		Panics:     p.panics.Load(),
		Deduped:    p.deduped.Load(),
	}
	if p.cache != nil {
		m.Cache = p.cache.Stats()
	}
	return m
}

// Cache returns the pool's result cache (nil when none).
func (p *Pool) Cache() *Cache { return p.cache }

// Map runs f(ctx, i) for i in [0, n) and returns the results in index
// order — the property that makes a parallel sweep byte-identical to a
// serial one. key, when non-nil, provides the content address for item
// i (NoKey for uncacheable items). On error, Map returns the
// lowest-index error, matching what a serial loop would have reported.
//
// With a nil pool, Map degrades to the plain serial loop (no
// goroutines at all), stopping at the first error.
func Map[T any](ctx context.Context, p *Pool, n int, key func(i int) Key, f func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapNamed(ctx, p, n, nil, key, f)
}

// MapNamed is Map with per-item display names: name(i), when non-nil,
// labels item i's job span (obs.WithJobName) so a traced sweep shows
// one recognisable slice per configuration instead of n anonymous
// jobs. Naming is telemetry only — results are identical to Map's.
func MapNamed[T any](ctx context.Context, p *Pool, n int, name func(i int) string, key func(i int) Key, f func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if p == nil {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := f(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	tickets := make([]*Ticket, n)
	var submitErr error
	for i := 0; i < n; i++ {
		i := i
		var k Key
		if key != nil {
			k = key(i)
		}
		ictx := ctx
		if name != nil {
			ictx = obs.WithJobName(ictx, name(i))
		}
		t, err := p.Submit(ictx, k, func(ctx context.Context) (any, error) {
			return f(ctx, i)
		})
		if err != nil {
			submitErr = err
			break
		}
		tickets[i] = t
	}
	// Collect every submitted ticket even past the first failure:
	// abandoning a running job would leave it writing into out after
	// return. Errors resolve to the lowest index, like a serial loop.
	var firstErr error
	for i, t := range tickets {
		if t == nil {
			continue
		}
		v, err := t.Wait(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if firstErr == nil {
			out[i] = v.(T)
		}
	}
	if firstErr == nil {
		firstErr = submitErr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
