package sched

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sync"
)

// Key is a content address: the stable hash of everything that
// determines a job's result. Two jobs with equal keys are
// interchangeable — the simulator is deterministic, so (machine
// configuration, engine, program bytes, initial state) fixes the
// outcome bit for bit. The zero Key means "uncacheable".
type Key [sha256.Size]byte

// NoKey is the zero Key: a job submitted under it is never cached or
// deduplicated.
var NoKey Key

// IsZero reports whether k is the uncacheable sentinel.
func (k Key) IsZero() bool { return k == NoKey }

// Hasher builds a Key from labeled, length-prefixed fields, so that
// adjacent fields can never alias each other ("ab"+"c" vs "a"+"bc")
// and a field added in one writer position cannot collide with another.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewHasher returns an empty Hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

func (h *Hasher) label(l string, n int) {
	binary.LittleEndian.PutUint64(h.buf[:], uint64(len(l)))
	h.h.Write(h.buf[:])
	h.h.Write([]byte(l))
	binary.LittleEndian.PutUint64(h.buf[:], uint64(n))
	h.h.Write(h.buf[:])
}

// String hashes one labeled string field.
func (h *Hasher) String(label, s string) {
	h.label(label, len(s))
	h.h.Write([]byte(s))
}

// Int hashes one labeled integer field.
func (h *Hasher) Int(label string, v int64) {
	h.label(label, 8)
	binary.LittleEndian.PutUint64(h.buf[:], uint64(v))
	h.h.Write(h.buf[:])
}

// Bool hashes one labeled boolean field.
func (h *Hasher) Bool(label string, v bool) {
	var x int64
	if v {
		x = 1
	}
	h.Int(label, x)
}

// Bytes hashes one labeled byte-string field.
func (h *Hasher) Bytes(label string, b []byte) {
	h.label(label, len(b))
	h.h.Write(b)
}

// Words hashes one labeled sequence of n int64 values produced by at,
// without materialising the sequence (memory images are hashed through
// this).
func (h *Hasher) Words(label string, n int, at func(i int) int64) {
	h.label(label, 8*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(h.buf[:], uint64(at(i)))
		h.h.Write(h.buf[:])
	}
}

// Int64s hashes one labeled []int64 field.
func (h *Hasher) Int64s(label string, vs []int64) {
	h.label(label, 8*len(vs))
	for _, v := range vs {
		binary.LittleEndian.PutUint64(h.buf[:], uint64(v))
		h.h.Write(h.buf[:])
	}
}

// Sum returns the accumulated Key.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats struct {
	// Entries is the current entry count; Capacity the configured
	// maximum.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Hits, Misses and Evictions count Get hits, Get misses, and
	// entries displaced by Put since construction.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// HitRate returns Hits / (Hits + Misses), 0 when no lookups happened.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Backing is an optional persistent layer under a Cache: a memory miss
// falls through to Load, and every Put is written through via Store.
// Implementations translate between the cache's dynamic values and
// their durable encoding (internal/store holds raw bytes); both
// methods must be safe for concurrent use and are expected to absorb
// I/O errors (a failed Load is a miss, a failed Store is a no-op) —
// the persistent layer degrades the service to re-simulation, it never
// fails a job.
type Backing interface {
	Load(k Key) (any, bool)
	Store(k Key, v any)
}

// Cache is a content-addressed result cache with LRU eviction. It is
// safe for concurrent use. Values are stored as given; the simulator's
// result types are immutable-by-convention (plain data, no shared
// mutable state), which is what makes returning a cached value
// equivalent to re-running the job.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[Key]*list.Element
	lru       *list.List // front = most recent
	hits      int64
	misses    int64
	evictions int64

	// backing is set once before the cache is shared (WithBacking) and
	// only read afterwards; it is deliberately accessed outside mu so
	// disk I/O never blocks concurrent memory lookups.
	backing Backing
}

type cacheEntry struct {
	key   Key
	value any
}

// NewCache returns a cache holding at most capacity entries
// (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
	}
}

// WithBacking layers a persistent store under the cache and returns
// the cache. Call it once, before the cache is shared; the memory
// layer's hit/miss/eviction stats keep describing memory alone (the
// backing keeps its own counters).
func (c *Cache) WithBacking(b Backing) *Cache {
	c.backing = b
	return c
}

// Get returns the value stored under k, marking it most recently used.
// A memory miss falls through to the backing store (when configured)
// and a backing hit is promoted into memory.
func (c *Cache) Get(k Key) (any, bool) {
	if k.IsZero() {
		return nil, false
	}
	if v, ok := c.getMem(k); ok {
		return v, true
	}
	if c.backing == nil {
		return nil, false
	}
	v, ok := c.backing.Load(k)
	if !ok {
		return nil, false
	}
	// Promote without re-storing: the backing already holds it.
	c.putMem(k, v)
	return v, true
}

// getMem is the memory layer of Get.
func (c *Cache) getMem(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(e)
	return e.Value.(*cacheEntry).value, true
}

// Put stores v under k, evicting the least recently used entry when
// the cache is full, and writes through to the backing store when one
// is configured. A zero key is ignored.
func (c *Cache) Put(k Key, v any) {
	if k.IsZero() {
		return
	}
	c.putMem(k, v)
	if c.backing != nil {
		c.backing.Store(k, v)
	}
}

// putMem is the memory layer of Put (eviction never touches the
// backing: a memory eviction only demotes the entry to disk residency).
func (c *Cache) putMem(k Key, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		e.Value.(*cacheEntry).value = v
		c.lru.MoveToFront(e)
		return
	}
	for len(c.entries) >= c.capacity {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	// Per-job bookkeeping, not per-cycle: one entry per completed
	// simulation, each of which ran millions of cycles. //ruulint:ok hotpathalloc
	c.entries[k] = c.lru.PushFront(&cacheEntry{key: k, value: v})
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
