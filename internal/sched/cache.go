package sched

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sync"
)

// Key is a content address: the stable hash of everything that
// determines a job's result. Two jobs with equal keys are
// interchangeable — the simulator is deterministic, so (machine
// configuration, engine, program bytes, initial state) fixes the
// outcome bit for bit. The zero Key means "uncacheable".
type Key [sha256.Size]byte

// NoKey is the zero Key: a job submitted under it is never cached or
// deduplicated.
var NoKey Key

// IsZero reports whether k is the uncacheable sentinel.
func (k Key) IsZero() bool { return k == NoKey }

// Hasher builds a Key from labeled, length-prefixed fields, so that
// adjacent fields can never alias each other ("ab"+"c" vs "a"+"bc")
// and a field added in one writer position cannot collide with another.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewHasher returns an empty Hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

func (h *Hasher) label(l string, n int) {
	binary.LittleEndian.PutUint64(h.buf[:], uint64(len(l)))
	h.h.Write(h.buf[:])
	h.h.Write([]byte(l))
	binary.LittleEndian.PutUint64(h.buf[:], uint64(n))
	h.h.Write(h.buf[:])
}

// String hashes one labeled string field.
func (h *Hasher) String(label, s string) {
	h.label(label, len(s))
	h.h.Write([]byte(s))
}

// Int hashes one labeled integer field.
func (h *Hasher) Int(label string, v int64) {
	h.label(label, 8)
	binary.LittleEndian.PutUint64(h.buf[:], uint64(v))
	h.h.Write(h.buf[:])
}

// Bool hashes one labeled boolean field.
func (h *Hasher) Bool(label string, v bool) {
	var x int64
	if v {
		x = 1
	}
	h.Int(label, x)
}

// Bytes hashes one labeled byte-string field.
func (h *Hasher) Bytes(label string, b []byte) {
	h.label(label, len(b))
	h.h.Write(b)
}

// Words hashes one labeled sequence of n int64 values produced by at,
// without materialising the sequence (memory images are hashed through
// this).
func (h *Hasher) Words(label string, n int, at func(i int) int64) {
	h.label(label, 8*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(h.buf[:], uint64(at(i)))
		h.h.Write(h.buf[:])
	}
}

// Int64s hashes one labeled []int64 field.
func (h *Hasher) Int64s(label string, vs []int64) {
	h.label(label, 8*len(vs))
	for _, v := range vs {
		binary.LittleEndian.PutUint64(h.buf[:], uint64(v))
		h.h.Write(h.buf[:])
	}
}

// Sum returns the accumulated Key.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats struct {
	// Entries is the current entry count; Capacity the configured
	// maximum.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Hits, Misses and Evictions count Get hits, Get misses, and
	// entries displaced by Put since construction.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// HitRate returns Hits / (Hits + Misses), 0 when no lookups happened.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a content-addressed result cache with LRU eviction. It is
// safe for concurrent use. Values are stored as given; the simulator's
// result types are immutable-by-convention (plain data, no shared
// mutable state), which is what makes returning a cached value
// equivalent to re-running the job.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[Key]*list.Element
	lru       *list.List // front = most recent
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key   Key
	value any
}

// NewCache returns a cache holding at most capacity entries
// (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
	}
}

// Get returns the value stored under k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	if k.IsZero() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(e)
	return e.Value.(*cacheEntry).value, true
}

// Put stores v under k, evicting the least recently used entry when
// the cache is full. A zero key is ignored.
func (c *Cache) Put(k Key, v any) {
	if k.IsZero() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		e.Value.(*cacheEntry).value = v
		c.lru.MoveToFront(e)
		return
	}
	for len(c.entries) >= c.capacity {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	// Per-job bookkeeping, not per-cycle: one entry per completed
	// simulation, each of which ran millions of cycles. //ruulint:ok hotpathalloc
	c.entries[k] = c.lru.PushFront(&cacheEntry{key: k, value: v})
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
