package asm

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ruu/internal/isa"
)

func TestAssembleBasics(t *testing.T) {
	u, err := Assemble(`
; a comment
.equ  n 10            # another comment
.f64  q 1.5
.word k 42
.array buf 4
start:
    lai   A1, =n
    lai   A2, =buf
    lds   S1, =q(A7)
    lds   S2, 0(A2)
    adda  A3, A1, A2
    jam   start
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(u.Prog.Instructions); got != 7 {
		t.Fatalf("got %d instructions, want 7", got)
	}
	if u.Symbols["n"] != 10 {
		t.Errorf("n = %d", u.Symbols["n"])
	}
	qAddr := u.Symbols["q"]
	kAddr := u.Symbols["k"]
	bufAddr := u.Symbols["buf"]
	if kAddr != qAddr+1 || bufAddr != kAddr+1 {
		t.Errorf("data layout not sequential: q=%d k=%d buf=%d", qAddr, kAddr, bufAddr)
	}
	if u.DataEnd != bufAddr+4 {
		t.Errorf("DataEnd = %d, want %d", u.DataEnd, bufAddr+4)
	}
	mem := u.NewMemory()
	if got := mem.Peek(qAddr); got != int64(math.Float64bits(1.5)) {
		t.Errorf("q datum = %#x", got)
	}
	if got := mem.Peek(kAddr); got != 42 {
		t.Errorf("k datum = %d", got)
	}
	if u.Prog.Labels["start"] != 0 {
		t.Errorf("label start = %d", u.Prog.Labels["start"])
	}
	if ins := u.Prog.Instructions[5]; ins.Op != isa.BrAM || ins.Imm != 0 {
		t.Errorf("jam encoded as %v", ins)
	}
	if ins := u.Prog.Instructions[0]; ins.Op != isa.LoadAImm || ins.Imm != 10 {
		t.Errorf("lai =n encoded as %v", ins)
	}
}

func TestAssembleSymbolOffsets(t *testing.T) {
	u, err := Assemble(`
.array z 20
    lds S1, =z+10(A1)
    lds S2, =z-1(A2)
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	z := u.Symbols["z"]
	if got := u.Prog.Instructions[0].Imm; got != z+10 {
		t.Errorf("=z+10 -> %d, want %d", got, z+10)
	}
	if got := u.Prog.Instructions[1].Imm; got != z-1 {
		t.Errorf("=z-1 -> %d, want %d", got, z-1)
	}
}

func TestAssembleMoves(t *testing.T) {
	u, err := Assemble(`
    movsa S1, A2
    movas A3, S4
    movab A1, B33
    movba B34, A2
    movst S5, T60
    movts T61, S6
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"movsa S1, A2", "movas A3, S4", "movab A1, B33",
		"movba B34, A2", "movst S5, T60", "movts T61, S6", "halt",
	}
	for i, w := range want {
		if got := u.Prog.Instructions[i].String(); got != w {
			t.Errorf("instruction %d = %q, want %q", i, got, w)
		}
	}
}

func TestAssembleFarrayAndBase(t *testing.T) {
	u, err := Assemble(`
.base 100
.farray f 3 2.5
.array  zed 2 7
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if u.Symbols["f"] != 100 {
		t.Fatalf("f = %d, want 100", u.Symbols["f"])
	}
	mem := u.NewMemory()
	for i := int64(0); i < 3; i++ {
		if got := mem.Peek(100 + i); got != int64(math.Float64bits(2.5)) {
			t.Errorf("f[%d] = %#x", i, got)
		}
	}
	for i := int64(0); i < 2; i++ {
		if got := mem.Peek(103 + i); got != 7 {
			t.Errorf("zed[%d] = %d, want 7", i, got)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "bogus A1, A2\nhalt", "unknown mnemonic"},
		{"bad register", "adda A1, A9, A2\nhalt", "bad register"},
		{"wrong file", "adda S1, S2, S3\nhalt", "expected A register"},
		{"wrong arity", "adda A1, A2\nhalt", "takes 3 operand"},
		{"undefined symbol", "lai A1, =nothing\nhalt", "undefined symbol"},
		{"undefined target", "jmp nowhere\nhalt", "undefined branch target"},
		{"dup label", "x:\nnop\nx:\nhalt", "duplicate label"},
		{"dup symbol", ".equ a 1\n.equ a 2\nhalt", "duplicate symbol"},
		{"label-symbol clash", ".equ a 1\na:\nhalt", "collides"},
		{"bad directive", ".bogus x 1\nhalt", "unknown directive"},
		{"bad equ", ".equ a xyz\nhalt", "bad .equ value"},
		{"bad f64", ".f64 a pi\nhalt", "bad .f64 value"},
		{"bad array count", ".array a 0\nhalt", "bad .array count"},
		{"bad mem operand", "lds S1, S2\nhalt", "bad memory operand"},
		{"disp overflow", ".base 40000\n.word w 1\nlds S1, =w(A1)\nhalt", "does not fit"},
		{"bad label", "9lab:\nhalt", "invalid label"},
		{"bad imm", "lai A1, zz\nhalt", "bad immediate"},
		{"bad symbol offset", ".array z 4\nlai A1, =z+q\nhalt", "bad symbol offset"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("assembled successfully, wanted error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

// TestDiagnosticLines pins the source line attached to each diagnostic:
// ruudfa and lltrace print these positions verbatim, so every error kind
// must point at the offending line, not just fail.
func TestDiagnosticLines(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
		wantLine           int
	}{
		{"unknown mnemonic", "nop\nnop\nbogus\nhalt", "unknown mnemonic", 3},
		{"undefined symbol", "nop\nlai A1, =nothing\nhalt", "undefined symbol", 2},
		{"undefined branch target", "nop\nnop\nnop\njmp nowhere\nhalt", "undefined branch target", 4},
		{"duplicate label", "x:\nnop\nnop\nx:\nhalt", "duplicate label", 4},
		{"duplicate symbol", ".equ a 1\n.equ a 2\nhalt", "duplicate symbol", 2},
		{"branch past end", "nop\njmp end\nhalt\nend:", "past the last instruction", 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("assembled successfully, wanted error containing %q", c.wantSub)
			}
			var ae *Error
			if !errors.As(err, &ae) {
				t.Fatalf("error %q is not an *asm.Error", err)
			}
			if !strings.Contains(ae.Msg, c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
			if ae.Line != c.wantLine {
				t.Errorf("error %q on line %d, want line %d", err, ae.Line, c.wantLine)
			}
		})
	}
}

func TestAssembleFile(t *testing.T) {
	dir := t.TempDir()

	good := filepath.Join(dir, "good.s")
	if err := os.WriteFile(good, []byte("lai A1, 1\nhalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	u, err := AssembleFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Prog.Instructions) != 2 {
		t.Fatalf("got %d instructions, want 2", len(u.Prog.Instructions))
	}

	bad := filepath.Join(dir, "bad.s")
	if err := os.WriteFile(bad, []byte("nop\nbogus\nhalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = AssembleFile(bad)
	if err == nil {
		t.Fatal("expected error")
	}
	if want := fmt.Sprintf("asm: %s:2: ", bad); !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not carry %q", err, want)
	}

	if _, err := AssembleFile(filepath.Join(dir, "missing.s")); err == nil {
		t.Error("expected error for a missing file")
	}
}

// TestDisassembleRoundTrip: disassembling and re-assembling a program
// yields the same instruction stream.
func TestDisassembleRoundTrip(t *testing.T) {
	src := `
.array buf 8
top:
    lai   A1, 0
    lai   A0, 4
loop:
    addai A0, A0, -1
    lds   S1, =buf(A1)
    fadd  S2, S2, S1
    sts   S2, =buf(A1)
    addai A1, A1, 1
    janz  loop
    jmp   done
    nop
done:
    halt
`
	u := MustAssemble(src)
	dis := Disassemble(u.Prog)
	u2, err := Assemble(dis)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, dis)
	}
	if len(u2.Prog.Instructions) != len(u.Prog.Instructions) {
		t.Fatalf("length changed: %d -> %d", len(u.Prog.Instructions), len(u2.Prog.Instructions))
	}
	for i := range u.Prog.Instructions {
		a, b := u.Prog.Instructions[i], u2.Prog.Instructions[i]
		a.Line, b.Line = 0, 0
		if a != b {
			t.Errorf("instruction %d changed: %v -> %v", i, a, b)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bogus")
}
