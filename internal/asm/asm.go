// Package asm implements a two-pass assembler and a disassembler for the
// model architecture's textual assembly, used by the Livermore kernels,
// the examples, and the tests.
//
// Syntax overview (one statement per line; ';' and '#' start comments):
//
//	.base 4096          ; set the data cursor (word address)
//	.equ   n 100        ; symbolic constant
//	.f64   q 1.5        ; one word of float64 data, symbol q = its address
//	.word  k 42         ; one word of integer data
//	.array x 100        ; reserve 100 zeroed words, symbol x = base address
//	.farray y 3 0.5     ; reserve 3 words, each initialised to float64 0.5
//
//	loop:               ; label (instruction address)
//	    lai   A1, =x    ; immediate: literal, =symbol, or 'c' character
//	    lds   S1, 0(A1) ; memory: displacement(base A register)
//	    lds   S2, =x(A2); displacement may be a symbol reference
//	    fadd  S3, S1, S2
//	    jam   loop      ; branch to label
//	    halt
package asm

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"ruu/internal/isa"
	"ruu/internal/memsys"
)

// DefaultDataBase is the word address at which data directives start
// allocating when no .base directive is given. Instruction parcels and
// data live in separate spaces in the model architecture, so this only
// needs to avoid address 0 (a handy null).
const DefaultDataBase = 4096

// Datum is one initialised word of the data image.
type Datum struct {
	Addr  int64
	Value int64
}

// Unit is the result of assembling a source file: the program, the
// initialised data, and the symbol table.
type Unit struct {
	Prog    *isa.Program
	Data    []Datum
	Symbols map[string]int64
	// DataEnd is one past the highest allocated data address.
	DataEnd int64

	// nIns is the pass-1 instruction count, for pass-2 range checks.
	nIns int
}

// InitMemory writes the unit's data image into m.
func (u *Unit) InitMemory(m *memsys.Memory) {
	for _, d := range u.Data {
		m.Poke(d.Addr, d.Value)
	}
}

// NewMemory returns a default-sized memory initialised with the unit's
// data image.
func (u *Unit) NewMemory() *memsys.Memory {
	m := memsys.NewMemory(0)
	u.InitMemory(m)
	return m
}

// Error is an assembly error with source position. File is empty when
// the source did not come from a file (Assemble on a string).
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("asm: %s:%d: %s", e.File, e.Line, e.Msg)
	}
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type stmt struct {
	line   int
	label  string
	mnem   string
	fields []string // comma-separated operand fields, trimmed
	raw    string
}

// Assemble assembles source text.
func Assemble(src string) (*Unit, error) {
	stmts, err := scan(src)
	if err != nil {
		return nil, err
	}
	u := &Unit{
		Prog:    &isa.Program{Labels: map[string]int{}},
		Symbols: map[string]int64{},
	}

	// Pass 1: lay out instructions and data, collect symbols.
	cursor := int64(DefaultDataBase)
	nIns := 0
	for i := range stmts {
		s := &stmts[i]
		if s.label != "" {
			if _, dup := u.Prog.Labels[s.label]; dup {
				return nil, errf(s.line, "duplicate label %q", s.label)
			}
			if _, dup := u.Symbols[s.label]; dup {
				return nil, errf(s.line, "label %q collides with a data symbol", s.label)
			}
			u.Prog.Labels[s.label] = nIns
		}
		if s.mnem == "" {
			continue
		}
		if strings.HasPrefix(s.mnem, ".") {
			var derr error
			cursor, derr = u.directive(s, cursor)
			if derr != nil {
				return nil, derr
			}
			continue
		}
		if _, ok := opByName[s.mnem]; !ok {
			return nil, errf(s.line, "unknown mnemonic %q", s.mnem)
		}
		nIns++
	}
	u.DataEnd = cursor
	u.nIns = nIns

	// Pass 2: encode instructions.
	for i := range stmts {
		s := &stmts[i]
		if s.mnem == "" || strings.HasPrefix(s.mnem, ".") {
			continue
		}
		ins, err := u.encode(s)
		if err != nil {
			return nil, err
		}
		u.Prog.Instructions = append(u.Prog.Instructions, ins)
	}
	if err := u.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return u, nil
}

// AssembleFile reads and assembles path; assembly errors carry the file
// name, so diagnostics render as "asm: path:line: msg".
func AssembleFile(path string) (*Unit, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	u, err := Assemble(string(src))
	if err != nil {
		var ae *Error
		if errors.As(err, &ae) {
			ae.File = path
		}
		return nil, err
	}
	return u, nil
}

// MustAssemble is Assemble, panicking on error (for tests and the
// built-in kernels, whose sources are fixed).
func MustAssemble(src string) *Unit {
	u, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return u
}

func scan(src string) ([]stmt, error) {
	var out []stmt
	for lineNo, line := range strings.Split(src, "\n") {
		n := lineNo + 1
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var s stmt
		s.line = n
		s.raw = line
		if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], " \t") {
			s.label = line[:i]
			if !validIdent(s.label) {
				return nil, errf(n, "invalid label %q", s.label)
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line != "" {
			parts := strings.SplitN(line, " ", 2)
			s.mnem = strings.ToLower(strings.TrimSpace(parts[0]))
			if len(parts) > 1 {
				for _, f := range strings.Split(parts[1], ",") {
					s.fields = append(s.fields, strings.TrimSpace(f))
				}
			}
		}
		out = append(out, s)
	}
	return out, nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (u *Unit) directive(s *stmt, cursor int64) (int64, error) {
	need := func(n int) error {
		if len(s.fields) == 0 {
			// Directives separate fields by spaces, not commas; resplit.
			return errf(s.line, "%s needs %d operand(s)", s.mnem, n)
		}
		return nil
	}
	// Directive operands are space-separated after the mnemonic; the
	// scanner split on commas, so re-split the joined remainder.
	fields := strings.Fields(strings.Join(s.fields, " "))
	_ = need
	def := func(name string, v int64) error {
		if !validIdent(name) {
			return errf(s.line, "invalid symbol %q", name)
		}
		if _, dup := u.Symbols[name]; dup {
			return errf(s.line, "duplicate symbol %q", name)
		}
		if _, dup := u.Prog.Labels[name]; dup {
			return errf(s.line, "symbol %q collides with a label", name)
		}
		u.Symbols[name] = v
		return nil
	}
	switch s.mnem {
	case ".base":
		if len(fields) != 1 {
			return cursor, errf(s.line, ".base needs one operand")
		}
		v, err := strconv.ParseInt(fields[0], 0, 64)
		if err != nil || v < 0 {
			return cursor, errf(s.line, "bad .base value %q", fields[0])
		}
		return v, nil
	case ".equ":
		if len(fields) != 2 {
			return cursor, errf(s.line, ".equ needs name and value")
		}
		v, err := strconv.ParseInt(fields[1], 0, 64)
		if err != nil {
			return cursor, errf(s.line, "bad .equ value %q", fields[1])
		}
		return cursor, def(fields[0], v)
	case ".word":
		if len(fields) != 2 {
			return cursor, errf(s.line, ".word needs name and value")
		}
		v, err := strconv.ParseInt(fields[1], 0, 64)
		if err != nil {
			return cursor, errf(s.line, "bad .word value %q", fields[1])
		}
		if err := def(fields[0], cursor); err != nil {
			return cursor, err
		}
		u.Data = append(u.Data, Datum{cursor, v})
		return cursor + 1, nil
	case ".f64":
		if len(fields) != 2 {
			return cursor, errf(s.line, ".f64 needs name and value")
		}
		f, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return cursor, errf(s.line, "bad .f64 value %q", fields[1])
		}
		if err := def(fields[0], cursor); err != nil {
			return cursor, err
		}
		u.Data = append(u.Data, Datum{cursor, int64(math.Float64bits(f))})
		return cursor + 1, nil
	case ".array", ".farray":
		if len(fields) < 2 || len(fields) > 3 {
			return cursor, errf(s.line, "%s needs name, count [, init]", s.mnem)
		}
		n, err := strconv.ParseInt(fields[1], 0, 64)
		if err != nil || n <= 0 {
			return cursor, errf(s.line, "bad %s count %q", s.mnem, fields[1])
		}
		if err := def(fields[0], cursor); err != nil {
			return cursor, err
		}
		if len(fields) == 3 {
			var word int64
			if s.mnem == ".farray" {
				f, err := strconv.ParseFloat(fields[2], 64)
				if err != nil {
					return cursor, errf(s.line, "bad %s init %q", s.mnem, fields[2])
				}
				word = int64(math.Float64bits(f))
			} else {
				word, err = strconv.ParseInt(fields[2], 0, 64)
				if err != nil {
					return cursor, errf(s.line, "bad %s init %q", s.mnem, fields[2])
				}
			}
			for i := int64(0); i < n; i++ {
				u.Data = append(u.Data, Datum{cursor + i, word})
			}
		}
		return cursor + n, nil
	default:
		return cursor, errf(s.line, "unknown directive %q", s.mnem)
	}
}

var opByName = func() map[string]isa.Op {
	m := make(map[string]isa.Op, isa.NumOps)
	for op := isa.Op(0); op < isa.NumOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func (u *Unit) lookup(line int, name string) (int64, error) {
	if v, ok := u.Symbols[name]; ok {
		return v, nil
	}
	return 0, errf(line, "undefined symbol %q", name)
}

// parseImm parses an immediate field: a literal integer (decimal, hex,
// octal via Go syntax), "=symbol", or "=symbol+off" / "=symbol-off".
func (u *Unit) parseImm(line int, f string) (int64, error) {
	if strings.HasPrefix(f, "=") {
		expr := f[1:]
		name, off := expr, int64(0)
		if i := strings.IndexAny(expr, "+-"); i > 0 {
			name = expr[:i]
			v, err := strconv.ParseInt(expr[i:], 0, 64)
			if err != nil {
				return 0, errf(line, "bad symbol offset in %q", f)
			}
			off = v
		}
		base, err := u.lookup(line, name)
		if err != nil {
			return 0, err
		}
		return base + off, nil
	}
	v, err := strconv.ParseInt(f, 0, 64)
	if err != nil {
		return 0, errf(line, "bad immediate %q", f)
	}
	return v, nil
}

// parseReg parses a register of the given file ("" accepts A or S).
func parseReg(line int, f string, want isa.File) (isa.Reg, error) {
	f = strings.ToUpper(strings.TrimSpace(f))
	if len(f) < 2 {
		return isa.None, errf(line, "bad register %q", f)
	}
	var file isa.File
	switch f[0] {
	case 'A':
		file = isa.FileA
	case 'S':
		file = isa.FileS
	case 'B':
		file = isa.FileB
	case 'T':
		file = isa.FileT
	default:
		return isa.None, errf(line, "bad register %q", f)
	}
	if want != isa.FileNone && file != want {
		return isa.None, errf(line, "register %q: expected %s register", f, want)
	}
	n, err := strconv.Atoi(f[1:])
	if err != nil || n < 0 || n >= file.Size() {
		return isa.None, errf(line, "bad register %q", f)
	}
	return isa.Reg{File: file, Idx: uint8(n)}, nil
}

func (u *Unit) encode(s *stmt) (isa.Instruction, error) {
	op := opByName[s.mnem]
	info := op.Info()
	ins := isa.Instruction{Op: op, Line: s.line}
	wantN := map[isa.Format]int{
		isa.FmtNone: 0, isa.FmtTrap: 0, isa.FmtR3: 3, isa.FmtR2: 2,
		isa.FmtR2Imm: 3, isa.FmtRImm: 2, isa.FmtMove: 2, isa.FmtMem: 2,
		isa.FmtBranch: 1,
	}[info.Fmt]
	if len(s.fields) != wantN {
		return ins, errf(s.line, "%s takes %d operand(s), got %d", s.mnem, wantN, len(s.fields))
	}
	switch info.Fmt {
	case isa.FmtNone, isa.FmtTrap:
	case isa.FmtR3:
		for i, fld := range s.fields {
			r, err := parseReg(s.line, fld, info.File)
			if err != nil {
				return ins, err
			}
			switch i {
			case 0:
				ins.I = r.Idx
			case 1:
				ins.J = r.Idx
			case 2:
				ins.K = r.Idx
			}
		}
	case isa.FmtR2:
		r0, err := parseReg(s.line, s.fields[0], info.File)
		if err != nil {
			return ins, err
		}
		r1, err := parseReg(s.line, s.fields[1], info.File)
		if err != nil {
			return ins, err
		}
		ins.I, ins.J = r0.Idx, r1.Idx
	case isa.FmtR2Imm:
		r0, err := parseReg(s.line, s.fields[0], info.File)
		if err != nil {
			return ins, err
		}
		r1, err := parseReg(s.line, s.fields[1], info.File)
		if err != nil {
			return ins, err
		}
		imm, err := u.parseImm(s.line, s.fields[2])
		if err != nil {
			return ins, err
		}
		ins.I, ins.J, ins.Imm = r0.Idx, r1.Idx, imm
	case isa.FmtRImm:
		r0, err := parseReg(s.line, s.fields[0], info.File)
		if err != nil {
			return ins, err
		}
		imm, err := u.parseImm(s.line, s.fields[1])
		if err != nil {
			return ins, err
		}
		ins.I, ins.Imm = r0.Idx, imm
	case isa.FmtMove:
		return u.encodeMove(s, ins)
	case isa.FmtMem:
		r0, err := parseReg(s.line, s.fields[0], info.File)
		if err != nil {
			return ins, err
		}
		disp, base, err := u.parseMemOperand(s.line, s.fields[1])
		if err != nil {
			return ins, err
		}
		ins.I, ins.J, ins.Imm = r0.Idx, base.Idx, disp
	case isa.FmtBranch:
		t, ok := u.Prog.Labels[s.fields[0]]
		if !ok {
			return ins, errf(s.line, "undefined branch target %q", s.fields[0])
		}
		if t >= u.nIns {
			// A label on the final line with no instruction after it
			// resolves past the end; catch it here so the diagnostic
			// carries the branch's source line (Program.Validate would
			// reject it without one).
			return ins, errf(s.line, "branch target %q points past the last instruction", s.fields[0])
		}
		ins.Imm = int64(t)
	}
	if err := ins.Validate(); err != nil {
		return ins, errf(s.line, "%v", err)
	}
	return ins, nil
}

// parseMemOperand parses "disp(Abase)" where disp is an immediate or
// =symbol and may be empty (0).
func (u *Unit) parseMemOperand(line int, f string) (int64, isa.Reg, error) {
	open := strings.Index(f, "(")
	if open < 0 || !strings.HasSuffix(f, ")") {
		return 0, isa.None, errf(line, "bad memory operand %q (want disp(Ax))", f)
	}
	dispStr := strings.TrimSpace(f[:open])
	base, err := parseReg(line, f[open+1:len(f)-1], isa.FileA)
	if err != nil {
		return 0, isa.None, err
	}
	var disp int64
	if dispStr != "" {
		disp, err = u.parseImm(line, dispStr)
		if err != nil {
			return 0, isa.None, err
		}
	}
	return disp, base, nil
}

func (u *Unit) encodeMove(s *stmt, ins isa.Instruction) (isa.Instruction, error) {
	type spec struct{ f0, f1 isa.File }
	specs := map[isa.Op]spec{
		isa.MovSA: {isa.FileS, isa.FileA},
		isa.MovAS: {isa.FileA, isa.FileS},
		isa.MovAB: {isa.FileA, isa.FileB},
		isa.MovBA: {isa.FileB, isa.FileA},
		isa.MovST: {isa.FileS, isa.FileT},
		isa.MovTS: {isa.FileT, isa.FileS},
	}
	sp := specs[ins.Op]
	r0, err := parseReg(s.line, s.fields[0], sp.f0)
	if err != nil {
		return ins, err
	}
	r1, err := parseReg(s.line, s.fields[1], sp.f1)
	if err != nil {
		return ins, err
	}
	switch ins.Op {
	case isa.MovSA, isa.MovAS:
		ins.I, ins.J = r0.Idx, r1.Idx
	case isa.MovAB, isa.MovST:
		ins.I, ins.Imm = r0.Idx, int64(r1.Idx)
	case isa.MovBA, isa.MovTS:
		ins.Imm, ins.I = int64(r0.Idx), r1.Idx
	default:
		// Unreachable: parseMove is only dispatched for move mnemonics.
	}
	return ins, nil
}

// Disassemble renders a program back to assembler syntax, substituting
// label names for branch targets where known.
func Disassemble(p *isa.Program) string {
	byIdx := map[int]string{}
	for name, idx := range p.Labels {
		if old, ok := byIdx[idx]; !ok || name < old {
			byIdx[idx] = name
		}
	}
	var b strings.Builder
	for i, ins := range p.Instructions {
		if name, ok := byIdx[i]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		text := ins.String()
		if ins.Op.IsBranch() {
			if name, ok := byIdx[int(ins.Imm)]; ok {
				text = fmt.Sprintf("%s %s", ins.Op, name)
			}
		}
		fmt.Fprintf(&b, "    %s\n", text)
	}
	return b.String()
}
