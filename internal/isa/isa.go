// Package isa defines the instruction set of the model architecture: a
// CRAY-1-like scalar unit with four register files (8 A, 8 S, 64 B, 64 T),
// one- and two-parcel instructions, and the operation repertoire used by
// the paper's benchmarks (integer and floating-point arithmetic, register
// transfers, loads/stores, and branches that test A0 or S0).
//
// The package is purely declarative: instruction representation, operand
// shapes, register identities, validation, and parcel encoding. Execution
// semantics live in internal/exec; timing lives in internal/fu and the
// issue engines.
package isa

import "fmt"

// File identifies one of the architectural register files.
type File uint8

const (
	// FileNone marks an absent register operand.
	FileNone File = iota
	// FileA is the address register file (8 registers, A0-A7).
	FileA
	// FileS is the scalar register file (8 registers, S0-S7).
	FileS
	// FileB is the address-save register file (64 registers, B0-B63).
	FileB
	// FileT is the scalar-save register file (64 registers, T0-T63).
	FileT
)

// Sizes of the register files, anchored to the paper constants in
// paperconst.go (the single source of truth).
const (
	NumA = PaperNumA
	NumS = PaperNumS
	NumB = PaperNumB
	NumT = PaperNumT
	// NumRegs is the total number of architectural registers (the paper's
	// "144 registers").
	NumRegs = NumA + NumS + NumB + NumT
)

// String returns the file's conventional single-letter name.
func (f File) String() string {
	switch f {
	case FileA:
		return "A"
	case FileS:
		return "S"
	case FileB:
		return "B"
	case FileT:
		return "T"
	default:
		return "?"
	}
}

// Size returns the number of registers in the file.
func (f File) Size() int {
	switch f {
	case FileA, FileS:
		return 8
	case FileB, FileT:
		return 64
	default:
		return 0
	}
}

// Reg names one architectural register.
type Reg struct {
	File File
	Idx  uint8
}

// A, S, B and T construct register names for the respective files.
func A(i int) Reg { return Reg{FileA, uint8(i)} }

// S returns the i'th scalar register.
func S(i int) Reg { return Reg{FileS, uint8(i)} }

// B returns the i'th address-save register.
func B(i int) Reg { return Reg{FileB, uint8(i)} }

// T returns the i'th scalar-save register.
func T(i int) Reg { return Reg{FileT, uint8(i)} }

// None is the absent register.
var None = Reg{}

// Valid reports whether r names an existing architectural register.
func (r Reg) Valid() bool {
	return r.File != FileNone && int(r.Idx) < r.File.Size()
}

// Flat returns a dense index in [0, NumRegs) for a valid register, suitable
// for indexing per-register state tables (busy bits, NI/LI counters, tags).
func (r Reg) Flat() int {
	switch r.File {
	case FileA:
		return int(r.Idx)
	case FileS:
		return NumA + int(r.Idx)
	case FileB:
		return NumA + NumS + int(r.Idx)
	case FileT:
		return NumA + NumS + NumB + int(r.Idx)
	default:
		return -1
	}
}

// FromFlat is the inverse of Flat.
func FromFlat(i int) Reg {
	switch {
	case i < 0 || i >= NumRegs:
		return None
	case i < NumA:
		return Reg{FileA, uint8(i)}
	case i < NumA+NumS:
		return Reg{FileS, uint8(i - NumA)}
	case i < NumA+NumS+NumB:
		return Reg{FileB, uint8(i - NumA - NumS)}
	default:
		return Reg{FileT, uint8(i - NumA - NumS - NumB)}
	}
}

func (r Reg) String() string {
	if !r.Valid() {
		return "-"
	}
	return fmt.Sprintf("%s%d", r.File, r.Idx)
}

// Unit classifies instructions by the functional unit that executes them.
// Latencies for each class are defined in internal/fu.
type Unit uint8

const (
	// UnitNone marks instructions that never enter a functional unit:
	// branches (resolved in the decode stage), NOP, and HALT.
	UnitNone Unit = iota
	// UnitAInt executes A-register integer add/subtract.
	UnitAInt
	// UnitAMul executes A-register integer multiply.
	UnitAMul
	// UnitSLog executes S-register logical operations.
	UnitSLog
	// UnitSShift executes S-register shifts.
	UnitSShift
	// UnitSAdd executes S-register integer add/subtract.
	UnitSAdd
	// UnitFAdd executes floating-point add/subtract.
	UnitFAdd
	// UnitFMul executes floating-point multiply.
	UnitFMul
	// UnitFRecip executes the floating-point reciprocal approximation.
	UnitFRecip
	// UnitMem executes loads and stores (memory is "a special functional
	// unit" in the paper's words).
	UnitMem
	// UnitMove executes register-to-register transfers and immediates.
	UnitMove

	// NumUnits is the number of distinct unit classes.
	NumUnits
)

var unitNames = [NumUnits]string{
	"none", "a-int", "a-mul", "s-log", "s-shift", "s-add",
	"f-add", "f-mul", "f-recip", "mem", "move",
}

func (u Unit) String() string {
	if int(u) < len(unitNames) {
		return unitNames[u]
	}
	return "unit?"
}

// Format describes an instruction's operand shape, which determines how
// the I/J/K/Imm fields are interpreted, assembled, and encoded.
type Format uint8

const (
	// FmtNone has no operands (NOP, HALT).
	FmtNone Format = iota
	// FmtR3 is a three-register operation: dst=I, srcs=J,K (same file).
	FmtR3
	// FmtR2 is a two-register operation: dst=I, src=J (same file).
	FmtR2
	// FmtR2Imm is dst=I, src=J, plus a 16-bit immediate (second parcel).
	FmtR2Imm
	// FmtRImm is dst=I plus a 16-bit immediate (second parcel).
	FmtRImm
	// FmtMove is a cross-file transfer: dst and src files differ; the
	// B/T-side index (0-63) is carried in Imm for MovAB/MovBA/MovST/MovTS.
	FmtMove
	// FmtMem is a load or store: data register I, base A-register J,
	// 16-bit displacement (second parcel).
	FmtMem
	// FmtBranch is a control transfer with a parcel-address target
	// (second parcel); conditional branches implicitly test A0 or S0.
	FmtBranch
	// FmtTrap is the explicit trap instruction (test support).
	FmtTrap
)

// Op enumerates the operations of the model architecture.
type Op uint8

const (
	// Nop does nothing.
	Nop Op = iota
	// Halt stops the machine.
	Halt
	// Trap raises an instruction-generated trap (used to exercise the
	// precise-interrupt machinery deterministically).
	Trap

	// AddA computes Ai = Aj + Ak.
	AddA
	// SubA computes Ai = Aj - Ak.
	SubA
	// MulA computes Ai = Aj * Ak.
	MulA
	// AddAImm computes Ai = Aj + imm.
	AddAImm
	// LoadAImm sets Ai = imm.
	LoadAImm

	// AddS computes Si = Sj + Sk (integer).
	AddS
	// SubS computes Si = Sj - Sk (integer).
	SubS
	// AndS computes Si = Sj & Sk.
	AndS
	// OrS computes Si = Sj | Sk.
	OrS
	// XorS computes Si = Sj ^ Sk.
	XorS
	// ShlS computes Si = Sj << (Sk & 63).
	ShlS
	// ShrS computes Si = Sj >> (Sk & 63) (logical).
	ShrS
	// ShlSImm computes Si = Sj << imm.
	ShlSImm
	// ShrSImm computes Si = Sj >> imm (logical).
	ShrSImm
	// LoadSImm sets Si = imm (sign-extended 16-bit).
	LoadSImm

	// FAdd computes Si = Sj + Sk (float64).
	FAdd
	// FSub computes Si = Sj - Sk (float64).
	FSub
	// FMul computes Si = Sj * Sk (float64).
	FMul
	// FRecip computes Si = 1.0 / Sj (float64).
	FRecip

	// MovSA copies Si = Aj (cross-file move).
	MovSA
	// MovAS copies Ai = Sj.
	MovAS
	// MovAB copies Ai = B[imm].
	MovAB
	// MovBA copies B[imm] = Ai.
	MovBA
	// MovST copies Si = T[imm].
	MovST
	// MovTS copies T[imm] = Si.
	MovTS

	// LoadA loads Ai = M[Aj + disp].
	LoadA
	// StoreA stores M[Aj + disp] = Ai.
	StoreA
	// LoadS loads Si = M[Aj + disp].
	LoadS
	// StoreS stores M[Aj + disp] = Si.
	StoreS

	// Jmp branches unconditionally.
	Jmp
	// BrAZ branches if A0 == 0.
	BrAZ
	// BrANZ branches if A0 != 0.
	BrANZ
	// BrAP branches if A0 > 0.
	BrAP
	// BrAM branches if A0 < 0.
	BrAM
	// BrSZ branches if S0 == 0.
	BrSZ
	// BrSNZ branches if S0 != 0.
	BrSNZ
	// BrSP branches if S0 > 0 (signed).
	BrSP
	// BrSM branches if S0 < 0 (signed).
	BrSM

	// NumOps is the number of defined opcodes.
	NumOps
)

// OpInfo is the static description of an opcode.
type OpInfo struct {
	Name    string
	Fmt     Format
	Unit    Unit
	File    File // register file of the primary (I/J/K) operands
	Parcels int  // 1 or 2 (16 or 32 bits)
	Store   bool // memory write
	Load    bool // memory read
}

var opInfos = [NumOps]OpInfo{
	Nop:  {Name: "nop", Fmt: FmtNone, Unit: UnitNone, Parcels: 1},
	Halt: {Name: "halt", Fmt: FmtNone, Unit: UnitNone, Parcels: 1},
	Trap: {Name: "trap", Fmt: FmtTrap, Unit: UnitMove, Parcels: 1},

	AddA:     {Name: "adda", Fmt: FmtR3, Unit: UnitAInt, File: FileA, Parcels: 1},
	SubA:     {Name: "suba", Fmt: FmtR3, Unit: UnitAInt, File: FileA, Parcels: 1},
	MulA:     {Name: "mula", Fmt: FmtR3, Unit: UnitAMul, File: FileA, Parcels: 1},
	AddAImm:  {Name: "addai", Fmt: FmtR2Imm, Unit: UnitAInt, File: FileA, Parcels: 2},
	LoadAImm: {Name: "lai", Fmt: FmtRImm, Unit: UnitMove, File: FileA, Parcels: 2},

	AddS:     {Name: "adds", Fmt: FmtR3, Unit: UnitSAdd, File: FileS, Parcels: 1},
	SubS:     {Name: "subs", Fmt: FmtR3, Unit: UnitSAdd, File: FileS, Parcels: 1},
	AndS:     {Name: "ands", Fmt: FmtR3, Unit: UnitSLog, File: FileS, Parcels: 1},
	OrS:      {Name: "ors", Fmt: FmtR3, Unit: UnitSLog, File: FileS, Parcels: 1},
	XorS:     {Name: "xors", Fmt: FmtR3, Unit: UnitSLog, File: FileS, Parcels: 1},
	ShlS:     {Name: "shls", Fmt: FmtR3, Unit: UnitSShift, File: FileS, Parcels: 1},
	ShrS:     {Name: "shrs", Fmt: FmtR3, Unit: UnitSShift, File: FileS, Parcels: 1},
	ShlSImm:  {Name: "shlsi", Fmt: FmtR2Imm, Unit: UnitSShift, File: FileS, Parcels: 2},
	ShrSImm:  {Name: "shrsi", Fmt: FmtR2Imm, Unit: UnitSShift, File: FileS, Parcels: 2},
	LoadSImm: {Name: "lsi", Fmt: FmtRImm, Unit: UnitMove, File: FileS, Parcels: 2},

	FAdd:   {Name: "fadd", Fmt: FmtR3, Unit: UnitFAdd, File: FileS, Parcels: 1},
	FSub:   {Name: "fsub", Fmt: FmtR3, Unit: UnitFAdd, File: FileS, Parcels: 1},
	FMul:   {Name: "fmul", Fmt: FmtR3, Unit: UnitFMul, File: FileS, Parcels: 1},
	FRecip: {Name: "frecip", Fmt: FmtR2, Unit: UnitFRecip, File: FileS, Parcels: 1},

	MovSA: {Name: "movsa", Fmt: FmtMove, Unit: UnitMove, Parcels: 1},
	MovAS: {Name: "movas", Fmt: FmtMove, Unit: UnitMove, Parcels: 1},
	MovAB: {Name: "movab", Fmt: FmtMove, Unit: UnitMove, Parcels: 1},
	MovBA: {Name: "movba", Fmt: FmtMove, Unit: UnitMove, Parcels: 1},
	MovST: {Name: "movst", Fmt: FmtMove, Unit: UnitMove, Parcels: 1},
	MovTS: {Name: "movts", Fmt: FmtMove, Unit: UnitMove, Parcels: 1},

	LoadA:  {Name: "lda", Fmt: FmtMem, Unit: UnitMem, File: FileA, Parcels: 2, Load: true},
	StoreA: {Name: "sta", Fmt: FmtMem, Unit: UnitMem, File: FileA, Parcels: 2, Store: true},
	LoadS:  {Name: "lds", Fmt: FmtMem, Unit: UnitMem, File: FileS, Parcels: 2, Load: true},
	StoreS: {Name: "sts", Fmt: FmtMem, Unit: UnitMem, File: FileS, Parcels: 2, Store: true},

	Jmp:   {Name: "jmp", Fmt: FmtBranch, Unit: UnitNone, Parcels: 2},
	BrAZ:  {Name: "jaz", Fmt: FmtBranch, Unit: UnitNone, Parcels: 2},
	BrANZ: {Name: "janz", Fmt: FmtBranch, Unit: UnitNone, Parcels: 2},
	BrAP:  {Name: "jap", Fmt: FmtBranch, Unit: UnitNone, Parcels: 2},
	BrAM:  {Name: "jam", Fmt: FmtBranch, Unit: UnitNone, Parcels: 2},
	BrSZ:  {Name: "jsz", Fmt: FmtBranch, Unit: UnitNone, Parcels: 2},
	BrSNZ: {Name: "jsnz", Fmt: FmtBranch, Unit: UnitNone, Parcels: 2},
	BrSP:  {Name: "jsp", Fmt: FmtBranch, Unit: UnitNone, Parcels: 2},
	BrSM:  {Name: "jsm", Fmt: FmtBranch, Unit: UnitNone, Parcels: 2},
}

// Info returns the static description of op.
func (op Op) Info() OpInfo {
	if op < NumOps {
		return opInfos[op]
	}
	return OpInfo{Name: "op?", Fmt: FmtNone, Unit: UnitNone, Parcels: 1}
}

// String returns the assembler mnemonic.
func (op Op) String() string { return op.Info().Name }

// IsBranch reports whether op is a control transfer.
func (op Op) IsBranch() bool { return op.Info().Fmt == FmtBranch }

// IsConditional reports whether op is a conditional branch.
func (op Op) IsConditional() bool { return op.IsBranch() && op != Jmp }

// IsMem reports whether op accesses memory.
func (op Op) IsMem() bool { i := op.Info(); return i.Load || i.Store }

// CondReg returns the register tested by a conditional branch
// (A0 for the JA* family, S0 for the JS* family) and ok=true, or
// (None, false) for any other opcode.
func (op Op) CondReg() (Reg, bool) {
	switch op {
	case BrAZ, BrANZ, BrAP, BrAM:
		return A(0), true
	case BrSZ, BrSNZ, BrSP, BrSM:
		return S(0), true
	default:
		return None, false
	}
}

// Instruction is one decoded instruction of the model architecture.
//
// Interpretation of the fields depends on Op's Format:
//
//	FmtR3     I=dst, J,K=srcs (register indices within Info().File)
//	FmtR2     I=dst, J=src
//	FmtR2Imm  I=dst, J=src, Imm=immediate
//	FmtRImm   I=dst, Imm=immediate
//	FmtMove   I=A/S-side index, Imm=B/T-side index (MovAB etc.); I=dst
//	          index, J=src index for MovSA/MovAS
//	FmtMem    I=data register, J=base A register, Imm=displacement
//	FmtBranch Imm=target (instruction index within the Program)
type Instruction struct {
	Op   Op
	I    uint8
	J    uint8
	K    uint8
	Imm  int64
	Line int // source line for diagnostics (0 when synthesized)
}

// Dst returns the register written by the instruction, or (None, false)
// if it writes no register.
func (ins Instruction) Dst() (Reg, bool) {
	info := ins.Op.Info()
	switch info.Fmt {
	case FmtR3, FmtR2, FmtR2Imm, FmtRImm:
		return Reg{info.File, ins.I}, true
	case FmtMove:
		switch ins.Op {
		case MovSA:
			return S(int(ins.I)), true
		case MovAS:
			return A(int(ins.I)), true
		case MovAB:
			return A(int(ins.I)), true
		case MovBA:
			return B(int(ins.Imm)), true
		case MovST:
			return S(int(ins.I)), true
		case MovTS:
			return T(int(ins.Imm)), true
		default:
			// Only the six Mov* opcodes carry FmtMove.
		}
	case FmtMem:
		if info.Load {
			return Reg{info.File, ins.I}, true
		}
	case FmtNone, FmtBranch, FmtTrap:
		// No destination register.
	}
	return None, false
}

// Srcs appends the registers read by the instruction to dst and returns
// the extended slice. Conditional branches report their condition
// register. The base register of a load/store is included.
func (ins Instruction) Srcs(dst []Reg) []Reg {
	info := ins.Op.Info()
	switch info.Fmt {
	case FmtR3:
		dst = append(dst, Reg{info.File, ins.J}, Reg{info.File, ins.K})
	case FmtR2, FmtR2Imm:
		dst = append(dst, Reg{info.File, ins.J})
	case FmtMove:
		switch ins.Op {
		case MovSA:
			dst = append(dst, A(int(ins.J)))
		case MovAS:
			dst = append(dst, S(int(ins.J)))
		case MovAB:
			dst = append(dst, B(int(ins.Imm)))
		case MovBA:
			dst = append(dst, A(int(ins.I)))
		case MovST:
			dst = append(dst, T(int(ins.Imm)))
		case MovTS:
			dst = append(dst, S(int(ins.I)))
		default:
			// Only the six Mov* opcodes carry FmtMove.
		}
	case FmtMem:
		dst = append(dst, A(int(ins.J))) // base address register
		if info.Store {
			dst = append(dst, Reg{info.File, ins.I}) // data register
		}
	case FmtBranch:
		if r, ok := ins.Op.CondReg(); ok {
			dst = append(dst, r)
		}
	case FmtNone, FmtRImm, FmtTrap:
		// No register sources (RImm writes from an immediate).
	}
	return dst
}

// Validate reports a descriptive error if the instruction is malformed
// (bad opcode, register index out of range, branch target negative, ...).
func (ins Instruction) Validate() error {
	if ins.Op >= NumOps {
		return fmt.Errorf("isa: invalid opcode %d", ins.Op)
	}
	info := ins.Op.Info()
	checkIdx := func(name string, v uint8, size int) error {
		if int(v) >= size {
			return fmt.Errorf("isa: %s: %s index %d out of range [0,%d)", info.Name, name, v, size)
		}
		return nil
	}
	switch info.Fmt {
	case FmtR3:
		for _, c := range []struct {
			n string
			v uint8
		}{{"i", ins.I}, {"j", ins.J}, {"k", ins.K}} {
			if err := checkIdx(c.n, c.v, info.File.Size()); err != nil {
				return err
			}
		}
	case FmtR2, FmtR2Imm:
		if err := checkIdx("i", ins.I, info.File.Size()); err != nil {
			return err
		}
		if err := checkIdx("j", ins.J, info.File.Size()); err != nil {
			return err
		}
	case FmtRImm:
		if err := checkIdx("i", ins.I, info.File.Size()); err != nil {
			return err
		}
	case FmtMove:
		if err := checkIdx("i", ins.I, NumA); err != nil { // A and S files are both size 8
			return err
		}
		switch ins.Op {
		case MovSA, MovAS:
			if err := checkIdx("j", ins.J, NumA); err != nil {
				return err
			}
		default:
			if ins.Imm < 0 || ins.Imm >= NumB {
				return fmt.Errorf("isa: %s: save-register index %d out of range [0,%d)", info.Name, ins.Imm, NumB)
			}
		}
	case FmtMem:
		if err := checkIdx("i", ins.I, info.File.Size()); err != nil {
			return err
		}
		if err := checkIdx("j (base)", ins.J, NumA); err != nil {
			return err
		}
		if ins.Imm < -(1<<15) || ins.Imm >= 1<<15 {
			return fmt.Errorf("isa: %s: displacement %d does not fit in 16 bits", info.Name, ins.Imm)
		}
	case FmtBranch:
		if ins.Imm < 0 {
			return fmt.Errorf("isa: %s: negative branch target %d", info.Name, ins.Imm)
		}
	case FmtNone, FmtTrap:
		// No operand fields to check.
	}
	return nil
}

// String renders the instruction in assembler syntax.
func (ins Instruction) String() string {
	info := ins.Op.Info()
	f := info.File
	switch info.Fmt {
	case FmtNone, FmtTrap:
		return info.Name
	case FmtR3:
		return fmt.Sprintf("%s %s%d, %s%d, %s%d", info.Name, f, ins.I, f, ins.J, f, ins.K)
	case FmtR2:
		return fmt.Sprintf("%s %s%d, %s%d", info.Name, f, ins.I, f, ins.J)
	case FmtR2Imm:
		return fmt.Sprintf("%s %s%d, %s%d, %d", info.Name, f, ins.I, f, ins.J, ins.Imm)
	case FmtRImm:
		return fmt.Sprintf("%s %s%d, %d", info.Name, f, ins.I, ins.Imm)
	case FmtMove:
		switch ins.Op {
		case MovSA:
			return fmt.Sprintf("movsa S%d, A%d", ins.I, ins.J)
		case MovAS:
			return fmt.Sprintf("movas A%d, S%d", ins.I, ins.J)
		case MovAB:
			return fmt.Sprintf("movab A%d, B%d", ins.I, ins.Imm)
		case MovBA:
			return fmt.Sprintf("movba B%d, A%d", ins.Imm, ins.I)
		case MovST:
			return fmt.Sprintf("movst S%d, T%d", ins.I, ins.Imm)
		case MovTS:
			return fmt.Sprintf("movts T%d, S%d", ins.Imm, ins.I)
		default:
			// Only the six Mov* opcodes carry FmtMove.
		}
	case FmtMem:
		return fmt.Sprintf("%s %s%d, %d(A%d)", info.Name, f, ins.I, ins.Imm, ins.J)
	case FmtBranch:
		return fmt.Sprintf("%s @%d", info.Name, ins.Imm)
	}
	return info.Name
}

// Program is a sequence of instructions. The program counter of the model
// architecture indexes instructions; parcel addresses (for encoding and
// fetch statistics) are derived with ParcelAddrs.
type Program struct {
	Instructions []Instruction
	// Labels maps symbolic names to instruction indices (informational;
	// populated by the assembler).
	Labels map[string]int
}

// Validate checks every instruction and that branch targets are in range.
func (p *Program) Validate() error {
	for i, ins := range p.Instructions {
		if err := ins.Validate(); err != nil {
			return fmt.Errorf("instruction %d: %w", i, err)
		}
		if ins.Op.IsBranch() && ins.Imm >= int64(len(p.Instructions)) {
			return fmt.Errorf("instruction %d: branch target %d beyond program end %d",
				i, ins.Imm, len(p.Instructions))
		}
	}
	return nil
}

// ParcelAddrs returns, for each instruction, its starting parcel address,
// plus the total parcel count of the program.
func (p *Program) ParcelAddrs() (addrs []int, total int) {
	addrs = make([]int, len(p.Instructions))
	for i, ins := range p.Instructions {
		addrs[i] = total
		total += ins.Op.Info().Parcels
	}
	return addrs, total
}
