package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFileProperties(t *testing.T) {
	cases := []struct {
		f    File
		name string
		size int
	}{
		{FileA, "A", 8}, {FileS, "S", 8}, {FileB, "B", 64}, {FileT, "T", 64},
		{FileNone, "?", 0},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.name {
			t.Errorf("%v.String() = %q, want %q", c.f, got, c.name)
		}
		if got := c.f.Size(); got != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.f, got, c.size)
		}
	}
	if NumRegs != 144 {
		t.Errorf("NumRegs = %d, want 144 (the paper's register count)", NumRegs)
	}
}

func TestRegConstructors(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{A(0), "A0"}, {A(7), "A7"}, {S(3), "S3"}, {B(63), "B63"}, {T(10), "T10"},
		{None, "-"}, {Reg{FileA, 8}, "-"}, {Reg{FileB, 64}, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.r, got, c.want)
		}
	}
}

// TestFlatRoundTrip uses testing/quick: Flat and FromFlat are inverse
// bijections over the architectural registers.
func TestFlatRoundTrip(t *testing.T) {
	f := func(i uint8) bool {
		idx := int(i) % NumRegs
		r := FromFlat(idx)
		return r.Valid() && r.Flat() == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// And the inverse direction, exhaustively.
	seen := map[int]bool{}
	for _, file := range []File{FileA, FileS, FileB, FileT} {
		for i := 0; i < file.Size(); i++ {
			r := Reg{file, uint8(i)}
			fl := r.Flat()
			if fl < 0 || fl >= NumRegs {
				t.Fatalf("%v.Flat() = %d out of range", r, fl)
			}
			if seen[fl] {
				t.Fatalf("%v.Flat() = %d collides", r, fl)
			}
			seen[fl] = true
			if back := FromFlat(fl); back != r {
				t.Fatalf("FromFlat(%d) = %v, want %v", fl, back, r)
			}
		}
	}
	if FromFlat(-1) != None || FromFlat(NumRegs) != None {
		t.Error("FromFlat out-of-range should return None")
	}
}

func TestOpInfoConsistency(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		info := op.Info()
		if info.Name == "" {
			t.Errorf("op %d has no name", op)
		}
		if info.Parcels != 1 && info.Parcels != 2 {
			t.Errorf("%s: parcels = %d", op, info.Parcels)
		}
		if info.Load && info.Store {
			t.Errorf("%s is both load and store", op)
		}
		if op.IsBranch() != (info.Fmt == FmtBranch) {
			t.Errorf("%s: IsBranch inconsistent", op)
		}
		if (info.Load || info.Store) && info.Unit != UnitMem {
			t.Errorf("%s: memory op not in memory unit", op)
		}
	}
	if Op(200).Info().Name != "op?" {
		t.Error("invalid op should report placeholder info")
	}
}

func TestCondReg(t *testing.T) {
	for _, op := range []Op{BrAZ, BrANZ, BrAP, BrAM} {
		r, ok := op.CondReg()
		if !ok || r != A(0) {
			t.Errorf("%s.CondReg() = %v,%v; want A0", op, r, ok)
		}
	}
	for _, op := range []Op{BrSZ, BrSNZ, BrSP, BrSM} {
		r, ok := op.CondReg()
		if !ok || r != S(0) {
			t.Errorf("%s.CondReg() = %v,%v; want S0", op, r, ok)
		}
	}
	if _, ok := Jmp.CondReg(); ok {
		t.Error("Jmp has no condition register")
	}
	if _, ok := AddA.CondReg(); ok {
		t.Error("AddA has no condition register")
	}
	if Jmp.IsConditional() {
		t.Error("Jmp is not conditional")
	}
	if !BrAZ.IsConditional() {
		t.Error("BrAZ is conditional")
	}
}

func TestDstSrcs(t *testing.T) {
	cases := []struct {
		ins  Instruction
		dst  Reg
		has  bool
		srcs []Reg
	}{
		{Instruction{Op: AddA, I: 1, J: 2, K: 3}, A(1), true, []Reg{A(2), A(3)}},
		{Instruction{Op: FMul, I: 4, J: 5, K: 6}, S(4), true, []Reg{S(5), S(6)}},
		{Instruction{Op: FRecip, I: 1, J: 2}, S(1), true, []Reg{S(2)}},
		{Instruction{Op: AddAImm, I: 1, J: 2, Imm: 5}, A(1), true, []Reg{A(2)}},
		{Instruction{Op: LoadAImm, I: 3, Imm: 9}, A(3), true, nil},
		{Instruction{Op: LoadSImm, I: 3, Imm: 9}, S(3), true, nil},
		{Instruction{Op: MovSA, I: 2, J: 3}, S(2), true, []Reg{A(3)}},
		{Instruction{Op: MovAS, I: 2, J: 3}, A(2), true, []Reg{S(3)}},
		{Instruction{Op: MovAB, I: 2, Imm: 40}, A(2), true, []Reg{B(40)}},
		{Instruction{Op: MovBA, I: 2, Imm: 40}, B(40), true, []Reg{A(2)}},
		{Instruction{Op: MovST, I: 2, Imm: 40}, S(2), true, []Reg{T(40)}},
		{Instruction{Op: MovTS, I: 2, Imm: 40}, T(40), true, []Reg{S(2)}},
		{Instruction{Op: LoadS, I: 1, J: 2, Imm: 8}, S(1), true, []Reg{A(2)}},
		{Instruction{Op: LoadA, I: 1, J: 2, Imm: 8}, A(1), true, []Reg{A(2)}},
		{Instruction{Op: StoreS, I: 1, J: 2, Imm: 8}, None, false, []Reg{A(2), S(1)}},
		{Instruction{Op: StoreA, I: 1, J: 2, Imm: 8}, None, false, []Reg{A(2), A(1)}},
		{Instruction{Op: BrAM, Imm: 0}, None, false, []Reg{A(0)}},
		{Instruction{Op: BrSNZ, Imm: 0}, None, false, []Reg{S(0)}},
		{Instruction{Op: Jmp, Imm: 0}, None, false, nil},
		{Instruction{Op: Nop}, None, false, nil},
		{Instruction{Op: Halt}, None, false, nil},
	}
	for _, c := range cases {
		dst, has := c.ins.Dst()
		if has != c.has || (has && dst != c.dst) {
			t.Errorf("%s: Dst() = %v,%v; want %v,%v", c.ins, dst, has, c.dst, c.has)
		}
		srcs := c.ins.Srcs(nil)
		if len(srcs) != len(c.srcs) {
			t.Errorf("%s: Srcs() = %v, want %v", c.ins, srcs, c.srcs)
			continue
		}
		for i := range srcs {
			if srcs[i] != c.srcs[i] {
				t.Errorf("%s: Srcs()[%d] = %v, want %v", c.ins, i, srcs[i], c.srcs[i])
			}
		}
	}
}

func TestValidate(t *testing.T) {
	good := []Instruction{
		{Op: AddA, I: 7, J: 7, K: 7},
		{Op: MovAB, I: 7, Imm: 63},
		{Op: LoadS, I: 7, J: 7, Imm: -32768},
		{Op: Jmp, Imm: 0},
		{Op: Nop},
	}
	for _, ins := range good {
		if err := ins.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", ins, err)
		}
	}
	bad := []Instruction{
		{Op: NumOps},
		{Op: AddA, I: 8},
		{Op: AddA, J: 9},
		{Op: FRecip, I: 8},
		{Op: LoadAImm, I: 8},
		{Op: MovAB, I: 1, Imm: 64},
		{Op: MovAB, I: 1, Imm: -1},
		{Op: MovSA, I: 1, J: 8},
		{Op: LoadS, I: 1, J: 8},
		{Op: LoadS, I: 1, J: 1, Imm: 1 << 15},
		{Op: LoadS, I: 1, J: 1, Imm: -(1 << 15) - 1},
		{Op: BrAZ, Imm: -1},
	}
	for _, ins := range bad {
		if err := ins.Validate(); err == nil {
			t.Errorf("%v unexpectedly validated", ins)
		}
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		ins  Instruction
		want string
	}{
		{Instruction{Op: AddA, I: 1, J: 2, K: 3}, "adda A1, A2, A3"},
		{Instruction{Op: FRecip, I: 1, J: 2}, "frecip S1, S2"},
		{Instruction{Op: AddAImm, I: 1, J: 1, Imm: -1}, "addai A1, A1, -1"},
		{Instruction{Op: LoadSImm, I: 0, Imm: 42}, "lsi S0, 42"},
		{Instruction{Op: MovTS, I: 5, Imm: 11}, "movts T11, S5"},
		{Instruction{Op: LoadS, I: 2, J: 3, Imm: 100}, "lds S2, 100(A3)"},
		{Instruction{Op: BrAM, Imm: 7}, "jam @7"},
		{Instruction{Op: Halt}, "halt"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	p := &Program{Instructions: []Instruction{
		{Op: BrANZ, Imm: 2},
		{Op: Nop},
		{Op: Halt},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	p.Instructions[0].Imm = 3
	if err := p.Validate(); err == nil {
		t.Fatal("branch beyond program end accepted")
	} else if !strings.Contains(err.Error(), "branch target") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestParcelAddrs(t *testing.T) {
	p := &Program{Instructions: []Instruction{
		{Op: AddA},          // 1 parcel
		{Op: LoadS, J: 1},   // 2 parcels
		{Op: BrANZ, Imm: 0}, // 2 parcels
		{Op: Halt},          // 1 parcel
	}}
	addrs, total := p.ParcelAddrs()
	want := []int{0, 1, 3, 5}
	if total != 6 {
		t.Fatalf("total parcels = %d, want 6", total)
	}
	for i, a := range addrs {
		if a != want[i] {
			t.Errorf("addrs[%d] = %d, want %d", i, a, want[i])
		}
	}
}
