package isa_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ruu/internal/isa"
	"ruu/internal/livermore"
	"ruu/internal/progsynth"
)

func roundTrip(t *testing.T, p *isa.Program) {
	t.Helper()
	parcels, err := isa.Encode(p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	_, total := p.ParcelAddrs()
	if len(parcels) != total {
		t.Fatalf("encoded %d parcels, ParcelAddrs says %d", len(parcels), total)
	}
	back, err := isa.Decode(parcels)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back.Instructions) != len(p.Instructions) {
		t.Fatalf("round trip length %d, want %d", len(back.Instructions), len(p.Instructions))
	}
	for i := range p.Instructions {
		a, b := p.Instructions[i], back.Instructions[i]
		a.Line, b.Line = 0, 0
		// Unused J/K bits of save-register moves are canonicalised by
		// the decoder; compare semantically via String.
		if a.String() != b.String() {
			t.Fatalf("instruction %d: %q -> %q", i, a.String(), b.String())
		}
	}
}

// TestEncodeRoundTripKernels round-trips all 14 Livermore programs
// through the 16-bit parcel encoding.
func TestEncodeRoundTripKernels(t *testing.T) {
	for _, k := range livermore.Kernels() {
		u, err := k.Unit()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		t.Run(k.Name, func(t *testing.T) { roundTrip(t, u.Prog) })
	}
}

// TestEncodeRoundTripSynth round-trips randomly synthesized programs
// (property-based via seeds).
func TestEncodeRoundTripSynth(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		p := progsynth.Generate(seed, progsynth.Options{Nested: true, CondBranches: true})
		roundTrip(t, p)
	}
}

// TestEncodeRoundTripQuick: testing/quick over random single
// computational instructions embedded in a minimal program.
func TestEncodeRoundTripQuick(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		ops := []isa.Op{
			isa.AddA, isa.SubA, isa.MulA, isa.AddS, isa.SubS, isa.AndS,
			isa.OrS, isa.XorS, isa.ShlS, isa.ShrS, isa.FAdd, isa.FSub,
			isa.FMul, isa.FRecip, isa.MovSA, isa.MovAS, isa.MovAB,
			isa.MovBA, isa.MovST, isa.MovTS, isa.AddAImm, isa.LoadAImm,
			isa.LoadSImm, isa.ShlSImm, isa.ShrSImm, isa.LoadA, isa.LoadS,
			isa.StoreA, isa.StoreS, isa.Nop,
		}
		op := ops[r.Intn(len(ops))]
		ins := isa.Instruction{Op: op, I: uint8(r.Intn(8)), J: uint8(r.Intn(8)), K: uint8(r.Intn(8))}
		switch op.Info().Fmt {
		case isa.FmtMove:
			switch op {
			case isa.MovAB, isa.MovBA, isa.MovST, isa.MovTS:
				ins.J, ins.K = 0, 0
				ins.Imm = int64(r.Intn(64))
			}
		case isa.FmtR2Imm, isa.FmtRImm, isa.FmtMem:
			ins.Imm = int64(int16(r.Uint32()))
		}
		p := &isa.Program{Instructions: []isa.Instruction{ins, {Op: isa.Halt}}}
		parcels, err := isa.Encode(p)
		if err != nil {
			t.Logf("encode %v: %v", ins, err)
			return false
		}
		back, err := isa.Decode(parcels)
		if err != nil {
			t.Logf("decode %v: %v", ins, err)
			return false
		}
		return back.Instructions[0].String() == ins.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	// Truncated two-parcel instruction.
	p := &isa.Program{Instructions: []isa.Instruction{{Op: isa.LoadS, I: 1, J: 1, Imm: 4}}}
	parcels, err := isa.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := isa.Decode(parcels[:1]); err == nil {
		t.Error("truncated stream accepted")
	}
	// Invalid opcode.
	if _, err := isa.Decode([]isa.Parcel{isa.Parcel(uint16(isa.NumOps) << 9)}); err == nil {
		t.Error("invalid opcode accepted")
	}
	// Branch into the middle of a two-parcel instruction.
	bad := &isa.Program{Instructions: []isa.Instruction{
		{Op: isa.LoadS, I: 1, J: 1, Imm: 4}, // parcels 0-1
		{Op: isa.Halt},                      // parcel 2
	}}
	enc, err := isa.Encode(bad)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-craft a branch whose target parcel address is 1 (mid-instruction).
	br := []isa.Parcel{isa.Parcel(uint16(isa.Jmp) << 9), isa.Parcel(3)}
	stream := append(br, enc...) // jmp targets parcel 3 = the second parcel of lds
	if _, err := isa.Decode(stream); err == nil {
		t.Error("branch into mid-instruction accepted")
	}
}

func TestEncodeRejectsInvalidProgram(t *testing.T) {
	p := &isa.Program{Instructions: []isa.Instruction{{Op: isa.AddA, I: 9}}}
	if _, err := isa.Encode(p); err == nil {
		t.Error("invalid instruction encoded")
	}
	p2 := &isa.Program{Instructions: []isa.Instruction{{Op: isa.Jmp, Imm: 5}}}
	if _, err := isa.Encode(p2); err == nil {
		t.Error("out-of-range branch encoded")
	}
}
