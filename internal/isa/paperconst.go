package isa

// This file is the single source of truth for every model constant the
// paper pins down. Nothing outside this file may restate these numbers
// as literals: the register-file geometry feeds the NumA/NumS/NumB/NumT
// constants below, fu.DefaultLatencies builds its table from the Lat*
// constants, memsys/core/cmd defaults reference Paper*, and tables.go
// derives its sweep lists from PaperRSTUSizes/PaperRUUSizes. The
// paperconst analysis pass (internal/analysis) enforces the discipline:
// a magic number in cmd/, tables.go or the simulation packages that
// restates (or drifts from) one of these anchors is a lint finding.
//
// Sources: Sohi & Vajapeyam, "Instruction Issue Logic for
// High-Performance, Interruptable Pipelined Processors" — §2 for the
// CRAY-1 scalar model architecture, Tables 2-6 for the evaluated
// RSTU/RUU sizes.

const (
	// PaperNumA, PaperNumS, PaperNumB and PaperNumT are the CRAY-1
	// scalar register files the model architecture inherits (§2):
	// 8 address (A), 8 scalar (S), 64 address-save (B) and 64
	// scalar-save (T) registers.
	PaperNumA = 8
	PaperNumS = 8
	PaperNumB = 64
	PaperNumT = 64

	// PaperResultBuses is the number of result buses: "only one
	// function can output data onto the result bus in any clock
	// cycle" (§2). fu.ResultBus models exactly this one bus.
	PaperResultBuses = 1

	// PaperLoadRegs is the number of load registers the paper
	// simulated with (§4.2).
	PaperLoadRegs = 6

	// PaperCounterBits is the NI/LI instance-counter width (§4.1):
	// 3-bit counters, so up to 7 in-flight instances per register.
	PaperCounterBits = 3

	// PaperCommitWidth is the number of instructions that may update
	// the architectural state per cycle: a single path from the RUU
	// to the register file (§4.1).
	PaperCommitWidth = 1

	// PaperDefaultRUUEntries is the default RUU size used by the
	// command-line tools and ablations: 12 entries, the knee of the
	// paper's Table 4 speedup curve.
	PaperDefaultRUUEntries = 12
)

// Functional-unit latencies (cycles from dispatch to result-bus
// delivery). The exact CRAY-1 values are not reproduced bit-for-bit;
// the relative magnitudes are, which is what the paper's relative
// speedups depend on (see fu.DefaultLatencies and EXPERIMENTS.md).
const (
	LatAInt   = 2  // address integer add
	LatAMul   = 6  // address multiply
	LatSLog   = 1  // scalar logical
	LatSShift = 2  // scalar shift
	LatSAdd   = 3  // scalar integer add
	LatFAdd   = 6  // floating add
	LatFMul   = 7  // floating multiply
	LatFRecip = 14 // floating reciprocal approximation
	LatMem    = 5  // memory access
	LatMove   = 1  // inter-file moves
)

// PaperRSTUSizes are the RSTU entry counts evaluated in Tables 2-3.
// PaperRUUSizes are the RUU entry counts evaluated in Tables 4-6.
// Callers must not mutate the returned slices' backing arrays; tables.go
// copies them into its exported sweep lists.
var (
	PaperRSTUSizes = [...]int{3, 4, 5, 6, 7, 8, 9, 10, 15, 20, 25, 30}
	PaperRUUSizes  = [...]int{3, 4, 6, 8, 10, 12, 15, 20, 25, 30, 40, 50}
)
