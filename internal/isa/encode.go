package isa

import "fmt"

// Parcel is a 16-bit instruction parcel, the fetch granule of the model
// architecture. One-parcel instructions occupy a single Parcel; two-parcel
// instructions place their immediate/displacement/target in a second one.
type Parcel uint16

// Parcel layout for the first parcel of every instruction:
//
//	bits 15..9  opcode (7 bits)
//	bits  8..6  i
//	bits  5..3  j
//	bits  2..0  k
//
// FmtMove instructions with a B/T-side index (MovAB, MovBA, MovST, MovTS)
// pack the 6-bit save-register index into the j:k fields.

// Encode converts a program to its parcel representation. Branch targets
// are emitted as parcel addresses.
func Encode(p *Program) ([]Parcel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	addrs, total := p.ParcelAddrs()
	out := make([]Parcel, 0, total)
	for idx, ins := range p.Instructions {
		first := Parcel(uint16(ins.Op)<<9 | uint16(ins.I&7)<<6 | uint16(ins.J&7)<<3 | uint16(ins.K&7))
		info := ins.Op.Info()
		var second Parcel
		switch info.Fmt {
		case FmtMove:
			switch ins.Op {
			case MovAB, MovBA, MovST, MovTS:
				// 6-bit save index in j:k.
				first = Parcel(uint16(ins.Op)<<9 | uint16(ins.I&7)<<6 | uint16(ins.Imm&63))
			default:
				// MovSA/MovAS use the plain i:j register fields.
			}
		case FmtNone, FmtR2, FmtR3, FmtTrap:
			// Single parcel, register fields only.
		case FmtR2Imm, FmtRImm, FmtMem:
			second = Parcel(uint16(int16(ins.Imm)))
		case FmtBranch:
			t := int(ins.Imm)
			if t < 0 || t >= len(addrs) {
				return nil, fmt.Errorf("isa: instruction %d: branch target %d out of range", idx, t)
			}
			pa := addrs[t]
			if pa >= 1<<16 {
				return nil, fmt.Errorf("isa: instruction %d: target parcel address %d exceeds 16 bits", idx, pa)
			}
			second = Parcel(uint16(pa))
		}
		out = append(out, first)
		if info.Parcels == 2 {
			out = append(out, second)
		}
	}
	return out, nil
}

// Decode converts a parcel stream back to a Program. It is the inverse of
// Encode for valid programs: branch targets are mapped from parcel
// addresses back to instruction indices.
func Decode(parcels []Parcel) (*Program, error) {
	type pend struct{ insIdx, parcelAddr int }
	var (
		prog     Program
		branches []pend
		byAddr   = map[int]int{} // parcel address -> instruction index
	)
	for pc := 0; pc < len(parcels); {
		first := parcels[pc]
		op := Op(first >> 9)
		if op >= NumOps {
			return nil, fmt.Errorf("isa: parcel %d: invalid opcode %d", pc, op)
		}
		info := op.Info()
		ins := Instruction{
			Op: op,
			I:  uint8(first >> 6 & 7),
			J:  uint8(first >> 3 & 7),
			K:  uint8(first & 7),
		}
		switch op {
		case MovAB, MovBA, MovST, MovTS:
			ins.Imm = int64(first & 63)
			ins.J, ins.K = 0, 0
		default:
			// All other opcodes keep their i:j:k register fields as decoded.
		}
		byAddr[pc] = len(prog.Instructions)
		if info.Parcels == 2 {
			if pc+1 >= len(parcels) {
				return nil, fmt.Errorf("isa: parcel %d: truncated two-parcel %s", pc, info.Name)
			}
			second := parcels[pc+1]
			switch info.Fmt {
			case FmtR2Imm, FmtRImm, FmtMem:
				ins.Imm = int64(int16(second))
			case FmtBranch:
				branches = append(branches, pend{len(prog.Instructions), int(second)})
			default:
				// Unreachable: only the four formats above are two-parcel.
			}
			pc += 2
		} else {
			pc++
		}
		prog.Instructions = append(prog.Instructions, ins)
	}
	for _, b := range branches {
		target, ok := byAddr[b.parcelAddr]
		if !ok {
			return nil, fmt.Errorf("isa: branch at instruction %d targets parcel %d, which is not an instruction boundary",
				b.insIdx, b.parcelAddr)
		}
		prog.Instructions[b.insIdx].Imm = int64(target)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return &prog, nil
}
