package livermore

import (
	"testing"

	"ruu/internal/isa"
)

// TestKernelsAssemble checks that every kernel assembles.
func TestKernelsAssemble(t *testing.T) {
	for _, k := range Kernels() {
		if _, err := k.Unit(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

// TestKernelsFunctional runs every kernel on the functional executor and
// verifies the result against the kernel's Go mirror.
func TestKernelsFunctional(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			st, err := k.NewState()
			if err != nil {
				t.Fatalf("state: %v", err)
			}
			u, _ := k.Unit()
			res, err := st.Run(u.Prog, 0, nil)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Trap != nil {
				t.Fatalf("unexpected trap: %v", res.Trap)
			}
			if !st.Halted {
				t.Fatalf("program did not halt")
			}
			if err := k.Verify(st); err != nil {
				t.Fatalf("check: %v", err)
			}
			t.Logf("%s: %d instructions, %d branches (%d taken), %d loads, %d stores",
				k.Name, res.Executed, res.Branches, res.Taken, res.Loads, res.Stores)
		})
	}
}

// TestKernelSizes sanity-checks the dynamic instruction counts are in the
// same ballpark as the paper's Table 1 (thousands, not tens or millions).
func TestKernelSizes(t *testing.T) {
	for _, k := range Kernels() {
		st, err := k.NewState()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		u, _ := k.Unit()
		res, err := st.Run(u.Prog, 0, nil)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if res.Executed < 1000 || res.Executed > 40000 {
			t.Errorf("%s: dynamic count %d outside the paper's regime [1000, 40000]", k.Name, res.Executed)
		}
	}
}

// TestVerifyCatchesCorruption ensures Check is not vacuous: corrupting an
// output word must fail verification.
func TestVerifyCatchesCorruption(t *testing.T) {
	k := ByName("LLL1")
	st, err := k.NewState()
	if err != nil {
		t.Fatal(err)
	}
	u, _ := k.Unit()
	if _, err := st.Run(u.Prog, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := k.Verify(st); err != nil {
		t.Fatalf("pristine run failed check: %v", err)
	}
	st.Mem.Poke(u.Symbols["x"]+5, 0x12345)
	if err := k.Verify(st); err == nil {
		t.Fatal("corrupted state passed verification")
	}
}

// TestKernelStructuralConventions guards the CRAY-style conventions the
// timing discussion in DESIGN.md depends on: conditional branches test
// only A0/S0 (automatic: the ISA has no other forms), every kernel's
// loops branch backward on A0, and every kernel halts exactly once at
// the end.
func TestKernelStructuralConventions(t *testing.T) {
	for _, k := range Kernels() {
		u, err := k.Unit()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		halts := 0
		for i, ins := range u.Prog.Instructions {
			if ins.Op == isa.Halt {
				halts++
				if i != len(u.Prog.Instructions)-1 {
					t.Errorf("%s: halt at %d is not final", k.Name, i)
				}
			}
			if ins.Op.IsConditional() {
				if r, _ := ins.Op.CondReg(); r != isa.A(0) {
					t.Errorf("%s: conditional branch at %d tests %v, kernels use A0", k.Name, i, r)
				}
			}
		}
		if halts != 1 {
			t.Errorf("%s: %d halts", k.Name, halts)
		}
	}
}

// TestKernelRegisterHygiene: no kernel writes A7, the conventional zero
// register of the suite, after initialising it.
func TestKernelRegisterHygiene(t *testing.T) {
	for _, k := range Kernels() {
		u, err := k.Unit()
		if err != nil {
			t.Fatal(err)
		}
		seenInit := false
		for i, ins := range u.Prog.Instructions {
			dst, ok := ins.Dst()
			if !ok || dst != isa.A(7) {
				continue
			}
			if !seenInit && ins.Op == isa.LoadAImm && ins.Imm == 0 {
				seenInit = true
				continue
			}
			if seenInit {
				t.Errorf("%s: instruction %d rewrites A7: %v", k.Name, i, ins)
			}
		}
	}
}
