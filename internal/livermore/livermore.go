// Package livermore provides the first 14 Lawrence Livermore loops —
// the paper's benchmark set — hand-written in the model architecture's
// scalar assembly.
//
// The paper ran the FORTRAN kernels through the CFT compiler for the
// CRAY-1 scalar unit and traced them with a CRAY-1 simulator; neither
// artifact is available, so these are scalar translations written the way
// CFT-era scalar code is structured: one index register per loop, FP
// scalars held in S registers (with T registers used as scalar saves
// where the register pressure warrants it, and B registers for saved
// indices in the nested kernels), and loop control through the A0
// condition register — the paper notes "most branch instructions in the
// benchmark programs tested the value of the A0 register". The
// substitution preserves what the experiments measure: the dependence
// structure and instruction mix of scalar loop code.
//
// Every kernel carries a Go mirror of its computation; Check compares the
// simulated memory image bit-for-bit against the mirror, so the assembly
// and every issue engine are validated against an independent
// implementation.
package livermore

import (
	"fmt"
	"math"
	"sync"

	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/memsys"
)

// Kernel is one Livermore loop.
type Kernel struct {
	// Name is "LLL1" ... "LLL14".
	Name string
	// Description summarises the computation.
	Description string
	// N is the problem size (trip count of the main loop).
	N int
	// Source is the assembly text.
	Source string
	// Init writes the input data image (beyond the assembler's static
	// data) into memory. May be nil.
	Init func(m *memsys.Memory, u *asm.Unit)
	// Check verifies the final architectural state against a Go mirror
	// of the kernel.
	Check func(st *exec.State, u *asm.Unit) error

	once sync.Once
	unit *asm.Unit
	err  error
}

// Unit assembles the kernel (cached).
func (k *Kernel) Unit() (*asm.Unit, error) {
	k.once.Do(func() { k.unit, k.err = asm.Assemble(k.Source) })
	return k.unit, k.err
}

// NewState returns a fresh architectural state with the kernel's data
// image initialised.
func (k *Kernel) NewState() (*exec.State, error) {
	u, err := k.Unit()
	if err != nil {
		return nil, err
	}
	m := u.NewMemory()
	if k.Init != nil {
		k.Init(m, u)
	}
	return exec.NewState(m), nil
}

// Verify runs Check against a final state.
func (k *Kernel) Verify(st *exec.State) error {
	u, err := k.Unit()
	if err != nil {
		return err
	}
	return k.Check(st, u)
}

// Kernels returns all 14 kernels in order.
func Kernels() []*Kernel {
	return []*Kernel{
		lll1, lll2, lll3, lll4, lll5, lll6, lll7,
		lll8, lll9, lll10, lll11, lll12, lll13, lll14,
	}
}

// ByName returns the named kernel, or nil.
func ByName(name string) *Kernel {
	for _, k := range Kernels() {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// --- shared helpers -------------------------------------------------------

// val is the deterministic input-data generator shared by the assembly
// data images and the Go mirrors: simple exactly-representable values so
// that IEEE arithmetic in the simulator and the mirror agree bit-for-bit.
func val(i int) float64 {
	return 1.0 + float64(i%13)*0.25 + float64(i%7)*0.03125
}

func val2(i int) float64 {
	return 0.5 + float64(i%11)*0.125
}

// fillF writes f(i) for i in [0,n) starting at base.
func fillF(m *memsys.Memory, base int64, n int, f func(i int) float64) {
	for i := 0; i < n; i++ {
		m.Poke(base+int64(i), int64(math.Float64bits(f(i))))
	}
}

// fillI writes g(i) for i in [0,n) starting at base.
func fillI(m *memsys.Memory, base int64, n int, g func(i int) int64) {
	for i := 0; i < n; i++ {
		m.Poke(base+int64(i), g(i))
	}
}

// peekF reads a float64 from memory.
func peekF(m *memsys.Memory, addr int64) float64 {
	return math.Float64frombits(uint64(m.Peek(addr)))
}

// sym resolves a data symbol, panicking on absence (the sources are
// fixed, so a missing symbol is a programming error in this package).
func sym(u *asm.Unit, name string) int64 {
	v, ok := u.Symbols[name]
	if !ok {
		panic("livermore: missing symbol " + name)
	}
	return v
}

// checkF compares n float64 words at base against want(i).
func checkF(st *exec.State, base int64, n int, what string, want func(i int) float64) error {
	for i := 0; i < n; i++ {
		got := peekF(st.Mem, base+int64(i))
		w := want(i)
		if math.Float64bits(got) != math.Float64bits(w) {
			return fmt.Errorf("%s[%d] = %v, want %v", what, i, got, w)
		}
	}
	return nil
}

// checkI compares n integer words at base against want(i).
func checkI(st *exec.State, base int64, n int, what string, want func(i int) int64) error {
	for i := 0; i < n; i++ {
		got := st.Mem.Peek(base + int64(i))
		w := want(i)
		if got != w {
			return fmt.Errorf("%s[%d] = %d, want %d", what, i, got, w)
		}
	}
	return nil
}
