package livermore

import (
	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/memsys"
)

// LLL6 — general linear recurrence equations:
// w[i] = 0.01 + sum_{k=0}^{i-1} b[k][i] * w[i-k-1], row-major b[64][64].
// The saved loop bound lives in a B register, as CFT-era code would keep
// it.
var lll6 = &Kernel{
	Name:        "LLL6",
	Description: "general linear recurrence equations",
	N:           64,
	Source: `
.equ n 64
.array w 64
.array b 4096
.f64 c01 0.01

    lai   A7, 0
    lai   A5, 1          ; i
    lai   A2, =n
    movba B2, A2         ; save the loop bound in a B register
outer:
    adda  A3, A5, A7     ; b pointer index: b[0][i] = b + i
    addai A6, A5, -1     ; w pointer index: i-1
    lds   S1, =c01(A7)   ; accumulator = 0.01
    adda  A0, A5, A7     ; inner countdown = i
inner:
    addai A0, A0, -1     ; loop condition, computed early
    lds   S2, =b(A3)
    lds   S3, =w(A6)
    fmul  S2, S2, S3
    fadd  S1, S1, S2
    addai A3, A3, 64     ; next row, same column
    addai A6, A6, -1
    janz  inner
    sts   S1, =w(A5)
    addai A5, A5, 1
    movab A2, B2         ; restore the bound from B
    suba  A0, A5, A2
    jam   outer
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		fillF(m, sym(u, "w"), 64, val)
		fillF(m, sym(u, "b"), 4096, func(i int) float64 { return 0.03125 + float64(i%9)*0.0625 })
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		w := make([]float64, 64)
		b := make([]float64, 4096)
		for i := range w {
			w[i] = val(i)
		}
		for i := range b {
			b[i] = 0.03125 + float64(i%9)*0.0625
		}
		for i := 1; i < 64; i++ {
			acc := 0.01
			for k := 0; k < i; k++ {
				acc += b[k*64+i] * w[i-k-1]
			}
			w[i] = acc
		}
		return checkF(st, sym(u, "w"), 64, "w", func(i int) float64 { return w[i] })
	},
}

// LLL7 — equation of state fragment. The q constant is kept in a T
// register and fetched each iteration (scalar-save pressure).
var lll7 = &Kernel{
	Name:        "LLL7",
	Description: "equation of state fragment",
	N:           150,
	Source: `
.equ n 150
.f64 rc 0.5
.f64 tc 0.25
.f64 qc 0.125
.array x 150
.array y 150
.array z 150
.array u 157

    lai   A7, 0
    lai   A1, 0
    lai   A0, =n         ; loop countdown
    lds   S2, =rc(A7)    ; r
    lds   S3, =tc(A7)    ; t
    lds   S4, =qc(A7)
    movts T1, S4         ; q lives in T1
loop:
    movst S4, T1         ; fetch q
    lds   S1, =u+1(A1)
    fmul  S1, S2, S1
    lds   S5, =u+2(A1)
    fadd  S1, S5, S1
    fmul  S1, S2, S1
    lds   S5, =u+3(A1)
    fadd  S1, S5, S1
    lds   S5, =u+4(A1)
    fmul  S5, S4, S5
    lds   S6, =u+5(A1)
    fadd  S5, S6, S5
    fmul  S5, S4, S5
    lds   S6, =u+6(A1)
    fadd  S5, S6, S5
    fmul  S5, S3, S5
    fadd  S1, S1, S5
    fmul  S1, S3, S1
    lds   S5, =y(A1)
    fmul  S5, S2, S5
    lds   S6, =z(A1)
    fadd  S5, S6, S5
    fmul  S5, S2, S5
    lds   S6, =u(A1)
    fadd  S5, S6, S5
    addai A0, A0, -1     ; loop countdown
    fadd  S1, S5, S1
    sts   S1, =x(A1)
    addai A1, A1, 1
    janz  loop
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		fillF(m, sym(u, "y"), 150, val)
		fillF(m, sym(u, "z"), 150, val2)
		fillF(m, sym(u, "u"), 157, func(i int) float64 { return 0.75 + float64(i%17)*0.0625 })
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		const r, t, q = 0.5, 0.25, 0.125
		uu := func(i int) float64 { return 0.75 + float64(i%17)*0.0625 }
		return checkF(st, sym(u, "x"), 150, "x", func(k int) float64 {
			inner := uu(k+3) + r*(uu(k+2)+r*uu(k+1)) +
				t*(uu(k+6)+q*(uu(k+5)+q*uu(k+4)))
			return uu(k) + r*(val2(k)+r*val(k)) + t*inner
		})
	},
}

// lll8Mirror mirrors the ADI strip below.
func lll8Mirror(u1, u2, u3, u1n, u2n, u3n []float64, n int) {
	const (
		a11, a12, a13 = 0.5, 0.25, 0.125
		a21, a22, a23 = 0.0625, 0.375, 0.625
		a31, a32, a33 = 0.75, 0.1875, 0.09375
		sig           = 0.25
	)
	for k := 1; k < n-1; k++ {
		du1 := u1[k+1] - u1[k-1]
		du2 := u2[k+1] - u2[k-1]
		du3 := u3[k+1] - u3[k-1]
		u1n[k] = u1[k] + (a11*du1 + a12*du2 + a13*du3 + sig*(u1[k+1]-2.0*u1[k]+u1[k-1]))
		u2n[k] = u2[k] + (a21*du1 + a22*du2 + a23*du3 + sig*(u2[k+1]-2.0*u2[k]+u2[k-1]))
		u3n[k] = u3[k] + (a31*du1 + a32*du2 + a33*du3 + sig*(u3[k+1]-2.0*u3[k]+u3[k-1]))
	}
}

// LLL8 — ADI integration. The paper's kernel sweeps 2-D planes; this is
// the same stencil and operation mix over a 1-D strip (documented
// substitution: the dependence structure per point — nine loads, three
// coupled 3x3 updates, three stores, coefficients from T registers — is
// preserved; the plane bookkeeping is not timing-relevant on a scalar
// unit).
var lll8 = &Kernel{
	Name:        "LLL8",
	Description: "ADI integration (1-D strip)",
	N:           70,
	Source: `
.equ n 70
.array u1 70
.array u2 70
.array u3 70
.array u1n 70
.array u2n 70
.array u3n 70
.f64 a11 0.5
.f64 a12 0.25
.f64 a13 0.125
.f64 a21 0.0625
.f64 a22 0.375
.f64 a23 0.625
.f64 a31 0.75
.f64 a32 0.1875
.f64 a33 0.09375
.f64 sig 0.25
.f64 two 2.0

    lai   A7, 0
    lai   A1, 1          ; k
    lai   A0, =n-2       ; loop countdown
    lai   A3, =a11
    lds   S1, 0(A3)
    movts T1, S1
    lds   S1, 1(A3)
    movts T2, S1
    lds   S1, 2(A3)
    movts T3, S1
    lds   S1, 3(A3)
    movts T4, S1
    lds   S1, 4(A3)
    movts T5, S1
    lds   S1, 5(A3)
    movts T6, S1
    lds   S1, 6(A3)
    movts T7, S1
    lds   S1, 7(A3)
    movts T8, S1
    lds   S1, 8(A3)
    movts T9, S1
    lds   S1, 9(A3)
    movts T10, S1
    lds   S1, 10(A3)
    movts T11, S1
loop:
    lds   S1, =u1+1(A1)
    lds   S4, =u1-1(A1)
    fsub  S1, S1, S4     ; du1
    lds   S2, =u2+1(A1)
    lds   S4, =u2-1(A1)
    fsub  S2, S2, S4     ; du2
    lds   S3, =u3+1(A1)
    lds   S4, =u3-1(A1)
    fsub  S3, S3, S4     ; du3

    movst S4, T1
    fmul  S4, S4, S1
    movst S5, T2
    fmul  S5, S5, S2
    fadd  S4, S4, S5
    movst S5, T3
    fmul  S5, S5, S3
    fadd  S4, S4, S5
    lds   S5, =u1+1(A1)
    movst S6, T11
    lds   S7, =u1(A1)
    fmul  S6, S6, S7
    fsub  S5, S5, S6
    lds   S6, =u1-1(A1)
    fadd  S5, S5, S6
    movst S6, T10
    fmul  S5, S6, S5
    fadd  S4, S4, S5
    lds   S5, =u1(A1)
    fadd  S4, S5, S4
    sts   S4, =u1n(A1)

    movst S4, T4
    fmul  S4, S4, S1
    movst S5, T5
    fmul  S5, S5, S2
    fadd  S4, S4, S5
    movst S5, T6
    fmul  S5, S5, S3
    fadd  S4, S4, S5
    lds   S5, =u2+1(A1)
    movst S6, T11
    lds   S7, =u2(A1)
    fmul  S6, S6, S7
    fsub  S5, S5, S6
    lds   S6, =u2-1(A1)
    fadd  S5, S5, S6
    movst S6, T10
    fmul  S5, S6, S5
    fadd  S4, S4, S5
    lds   S5, =u2(A1)
    fadd  S4, S5, S4
    sts   S4, =u2n(A1)

    movst S4, T7
    fmul  S4, S4, S1
    movst S5, T8
    fmul  S5, S5, S2
    fadd  S4, S4, S5
    movst S5, T9
    fmul  S5, S5, S3
    fadd  S4, S4, S5
    lds   S5, =u3+1(A1)
    movst S6, T11
    lds   S7, =u3(A1)
    fmul  S6, S6, S7
    fsub  S5, S5, S6
    lds   S6, =u3-1(A1)
    fadd  S5, S5, S6
    movst S6, T10
    fmul  S5, S6, S5
    fadd  S4, S4, S5
    lds   S5, =u3(A1)
    addai A0, A0, -1     ; loop countdown
    fadd  S4, S5, S4
    sts   S4, =u3n(A1)

    addai A1, A1, 1
    janz  loop
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		fillF(m, sym(u, "u1"), 70, val)
		fillF(m, sym(u, "u2"), 70, val2)
		fillF(m, sym(u, "u3"), 70, func(i int) float64 { return 0.25 + float64(i%19)*0.0625 })
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		n := 70
		u1 := make([]float64, n)
		u2 := make([]float64, n)
		u3 := make([]float64, n)
		u1n := make([]float64, n)
		u2n := make([]float64, n)
		u3n := make([]float64, n)
		for i := 0; i < n; i++ {
			u1[i] = val(i)
			u2[i] = val2(i)
			u3[i] = 0.25 + float64(i%19)*0.0625
		}
		lll8Mirror(u1, u2, u3, u1n, u2n, u3n, n)
		if err := checkF(st, sym(u, "u1n"), n, "u1n", func(i int) float64 { return u1n[i] }); err != nil {
			return err
		}
		if err := checkF(st, sym(u, "u2n"), n, "u2n", func(i int) float64 { return u2n[i] }); err != nil {
			return err
		}
		return checkF(st, sym(u, "u3n"), n, "u3n", func(i int) float64 { return u3n[i] })
	},
}

// LLL9 — integrate predictors: a nine-term linear combination of the
// predictor columns px2..px12 into px0. The seven dm coefficients live in
// T registers.
var lll9 = &Kernel{
	Name:        "LLL9",
	Description: "integrate predictors",
	N:           140,
	Source: `
.equ n 140
.array px0 140
.array px2 140
.array px4 140
.array px5 140
.array px6 140
.array px7 140
.array px8 140
.array px9 140
.array px10 140
.array px11 140
.array px12 140
.f64 c0 1.5
.f64 dm22 0.5
.f64 dm23 0.25
.f64 dm24 0.125
.f64 dm25 0.0625
.f64 dm26 0.03125
.f64 dm27 0.75
.f64 dm28 0.375

    lai   A7, 0
    lai   A1, 0
    lai   A0, =n         ; loop countdown
    lai   A3, =dm22
    lds   S1, 0(A3)
    movts T1, S1
    lds   S1, 1(A3)
    movts T2, S1
    lds   S1, 2(A3)
    movts T3, S1
    lds   S1, 3(A3)
    movts T4, S1
    lds   S1, 4(A3)
    movts T5, S1
    lds   S1, 5(A3)
    movts T6, S1
    lds   S1, 6(A3)
    movts T7, S1
    lds   S2, =c0(A7)
loop:
    addai A1, A1, 1      ; index bumped at the top (CFT-style)
    movst S3, T7         ; dm28
    lds   S4, =px12-1(A1)
    fmul  S1, S3, S4
    movst S3, T6         ; dm27
    lds   S4, =px11-1(A1)
    fmul  S3, S3, S4
    fadd  S1, S1, S3
    movst S3, T5         ; dm26
    lds   S4, =px10-1(A1)
    fmul  S3, S3, S4
    fadd  S1, S1, S3
    movst S3, T4         ; dm25
    lds   S4, =px9-1(A1)
    fmul  S3, S3, S4
    fadd  S1, S1, S3
    movst S3, T3         ; dm24
    lds   S4, =px8-1(A1)
    fmul  S3, S3, S4
    fadd  S1, S1, S3
    movst S3, T2         ; dm23
    lds   S4, =px7-1(A1)
    fmul  S3, S3, S4
    fadd  S1, S1, S3
    movst S3, T1         ; dm22
    lds   S4, =px6-1(A1)
    fmul  S3, S3, S4
    fadd  S1, S1, S3
    lds   S3, =px4-1(A1)
    lds   S4, =px5-1(A1)
    fadd  S3, S3, S4
    fmul  S3, S2, S3     ; c0*(px4+px5)
    fadd  S1, S1, S3
    lds   S3, =px2-1(A1)
    addai A0, A0, -1     ; loop countdown
    fadd  S1, S1, S3
    sts   S1, =px0-1(A1)
    janz  loop
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		cols := []string{"px2", "px4", "px5", "px6", "px7", "px8", "px9", "px10", "px11", "px12"}
		for ci, c := range cols {
			off := ci
			fillF(m, sym(u, c), 140, func(i int) float64 { return val(i + 3*off) })
		}
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		col := func(ci, i int) float64 { return val(i + 3*ci) }
		const c0, dm22, dm23, dm24, dm25, dm26, dm27, dm28 = 1.5, 0.5, 0.25, 0.125, 0.0625, 0.03125, 0.75, 0.375
		// Column order in Init: px2=0 px4=1 px5=2 px6=3 px7=4 px8=5 px9=6
		// px10=7 px11=8 px12=9.
		return checkF(st, sym(u, "px0"), 140, "px0", func(i int) float64 {
			s := dm28 * col(9, i)
			s += dm27 * col(8, i)
			s += dm26 * col(7, i)
			s += dm25 * col(6, i)
			s += dm24 * col(5, i)
			s += dm23 * col(4, i)
			s += dm22 * col(3, i)
			s += c0 * (col(1, i) + col(2, i))
			s += col(0, i)
			return s
		})
	},
}

// lll10Mirror mirrors the difference-predictor chain.
func lll10Mirror(cx4 []float64, px [][]float64, n int) {
	for i := 0; i < n; i++ {
		ar := cx4[i]
		br := ar - px[0][i]
		px[0][i] = ar
		cr := br - px[1][i]
		px[1][i] = br
		ar = cr - px[2][i]
		px[2][i] = cr
		br = ar - px[3][i]
		px[3][i] = ar
		cr = br - px[4][i]
		px[4][i] = br
		ar = cr - px[5][i]
		px[5][i] = cr
		br = ar - px[6][i]
		px[6][i] = ar
		cr = br - px[7][i]
		px[7][i] = br
		px[9][i] = cr - px[8][i]
		px[8][i] = cr
	}
}

// LLL10 — difference predictors: a serial subtract chain with
// read-modify-write columns.
var lll10 = &Kernel{
	Name:        "LLL10",
	Description: "difference predictors",
	N:           140,
	Source: `
.equ n 140
.array cx4 140
.array px4 140
.array px5 140
.array px6 140
.array px7 140
.array px8 140
.array px9 140
.array px10 140
.array px11 140
.array px12 140
.array px13 140

    lai   A7, 0
    lai   A1, 0
    lai   A0, =n         ; loop countdown
loop:
    lds   S1, =cx4(A1)   ; ar
    lds   S4, =px4(A1)
    fsub  S2, S1, S4     ; br
    sts   S1, =px4(A1)
    lds   S4, =px5(A1)
    fsub  S3, S2, S4     ; cr
    sts   S2, =px5(A1)
    lds   S4, =px6(A1)
    fsub  S1, S3, S4     ; ar
    sts   S3, =px6(A1)
    lds   S4, =px7(A1)
    fsub  S2, S1, S4     ; br
    sts   S1, =px7(A1)
    lds   S4, =px8(A1)
    fsub  S3, S2, S4     ; cr
    sts   S2, =px8(A1)
    lds   S4, =px9(A1)
    fsub  S1, S3, S4     ; ar
    sts   S3, =px9(A1)
    lds   S4, =px10(A1)
    fsub  S2, S1, S4     ; br
    sts   S1, =px10(A1)
    lds   S4, =px11(A1)
    fsub  S3, S2, S4     ; cr
    sts   S2, =px11(A1)
    lds   S4, =px12(A1)
    addai A0, A0, -1     ; loop countdown
    fsub  S1, S3, S4
    sts   S1, =px13(A1)
    sts   S3, =px12(A1)
    addai A1, A1, 1
    janz  loop
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		fillF(m, sym(u, "cx4"), 140, val)
		cols := []string{"px4", "px5", "px6", "px7", "px8", "px9", "px10", "px11", "px12"}
		for ci, c := range cols {
			off := ci
			fillF(m, sym(u, c), 140, func(i int) float64 { return val2(i + 2*off) })
		}
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		n := 140
		cx4 := make([]float64, n)
		px := make([][]float64, 10)
		for r := range px {
			px[r] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			cx4[i] = val(i)
			for r := 0; r < 9; r++ {
				px[r][i] = val2(i + 2*r)
			}
		}
		lll10Mirror(cx4, px, n)
		names := []string{"px4", "px5", "px6", "px7", "px8", "px9", "px10", "px11", "px12", "px13"}
		for r, name := range names {
			row := px[r]
			if err := checkF(st, sym(u, name), n, name, func(i int) float64 { return row[i] }); err != nil {
				return err
			}
		}
		return nil
	},
}
