package livermore

import (
	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/memsys"
)

// LLL1 — hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
var lll1 = &Kernel{
	Name:        "LLL1",
	Description: "hydro fragment",
	N:           400,
	Source: `
.equ n 400
.f64 qc 1.25
.f64 rc 0.5
.f64 tc 2.0
.array x 400
.array y 400
.array z 411

    lai   A7, 0
    lai   A1, 0          ; k
    lai   A0, =n         ; loop countdown
    lai   A3, =qc
    lds   S1, 0(A3)      ; q
    lds   S2, 1(A3)      ; r (qc, rc, tc are consecutive words)
    lds   S3, 2(A3)      ; t
loop:
    addai A1, A1, 1      ; index bumped at the top (CFT-style)
    lds   S4, =z+9(A1)   ; z[k+10]
    lds   S5, =z+10(A1)  ; z[k+11]
    fmul  S4, S2, S4     ; r*z[k+10]
    fmul  S5, S3, S5     ; t*z[k+11]
    lds   S6, =y-1(A1)   ; y[k]
    fadd  S4, S4, S5
    fmul  S4, S6, S4
    fadd  S4, S1, S4
    addai A0, A0, -1     ; loop countdown
    sts   S4, =x-1(A1)
    janz  loop
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		fillF(m, sym(u, "y"), 400, val)
		fillF(m, sym(u, "z"), 411, val2)
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		const q, r, t = 1.25, 0.5, 2.0
		z := func(i int) float64 { return val2(i) }
		return checkF(st, sym(u, "x"), 400, "x", func(k int) float64 {
			return q + val(k)*(r*z(k+10)+t*z(k+11))
		})
	},
}

// lll2Mirror mirrors the assembly's ICCG sweep on a Go slice.
func lll2Mirror(x, v []float64, n int) {
	ii := n
	ipntp := 0
	for ii > 1 {
		ipnt := ipntp
		ipntp += ii
		ii >>= 1
		i := ipntp
		for k := ipnt + 1; k < ipntp; k += 2 {
			i++
			x[i] = x[k] - v[k]*x[k-1] - v[k+1]*x[k+1]
		}
	}
}

// LLL2 — incomplete Cholesky conjugate gradient excerpt.
var lll2 = &Kernel{
	Name:        "LLL2",
	Description: "ICCG excerpt",
	N:           512,
	Source: `
.equ n 512
.array x 1100
.array v 1100

    lai   A7, 0
    lai   A4, =n         ; ii
    lai   A2, 0          ; ipntp
outer:
    adda  A5, A2, A7     ; ipnt = ipntp
    adda  A2, A2, A4     ; ipntp += ii
    movsa S4, A4
    shrsi S4, S4, 1
    movas A4, S4         ; ii /= 2
    adda  A3, A2, A7     ; i = ipntp
    addai A1, A5, 1      ; k = ipnt + 1
    suba  A0, A1, A2
    jam   inner
    jmp   iend
inner:
    addai A6, A1, 2      ; next k, computed early
    suba  A0, A6, A2     ; next k - ipntp, computed early
    addai A3, A3, 1      ; i++
    lds   S1, =x(A1)     ; x[k]
    lds   S2, =v(A1)     ; v[k]
    lds   S3, =x-1(A1)   ; x[k-1]
    fmul  S2, S2, S3
    fsub  S1, S1, S2
    lds   S2, =v+1(A1)   ; v[k+1]
    lds   S3, =x+1(A1)   ; x[k+1]
    fmul  S2, S2, S3
    fsub  S1, S1, S2
    sts   S1, =x(A3)
    adda  A1, A6, A7     ; k = next k
    jam   inner
iend:
    addai A0, A4, -1     ; while ii > 1
    jap   outer
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		fillF(m, sym(u, "x"), 1100, val)
		fillF(m, sym(u, "v"), 1100, val2)
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		x := make([]float64, 1100)
		v := make([]float64, 1100)
		for i := range x {
			x[i] = val(i)
			v[i] = val2(i)
		}
		lll2Mirror(x, v, 512)
		return checkF(st, sym(u, "x"), 1100, "x", func(i int) float64 { return x[i] })
	},
}

// LLL3 — inner product: q = sum z[k]*x[k].
var lll3 = &Kernel{
	Name:        "LLL3",
	Description: "inner product",
	N:           1000,
	Source: `
.equ n 1000
.array x 1000
.array z 1000
.word  qres 0

    lai   A7, 0
    lai   A1, 0
    lai   A0, =n         ; loop countdown
    lsi   S1, 0          ; q = 0.0 (integer zero is float +0)
loop:
    addai A1, A1, 1      ; index bumped at the top (CFT-style)
    lds   S2, =z-1(A1)
    lds   S3, =x-1(A1)
    fmul  S2, S2, S3
    addai A0, A0, -1     ; loop countdown
    fadd  S1, S1, S2
    janz  loop
    sts   S1, =qres(A7)
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		fillF(m, sym(u, "x"), 1000, val)
		fillF(m, sym(u, "z"), 1000, val2)
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		q := 0.0
		for k := 0; k < 1000; k++ {
			q += val2(k) * val(k)
		}
		return checkF(st, sym(u, "qres"), 1, "q", func(int) float64 { return q })
	},
}

// lll4Mirror mirrors the banded-linear-equations fragment.
func lll4Mirror(x, y []float64, n int) {
	m := (1001 - 7) / 2
	for k := 6; k < 1001; k += m {
		lw := k - 6
		temp := x[k-1]
		for j := 4; j < n; j += 5 {
			temp -= x[lw] * y[j]
			lw++
		}
		x[k-1] = y[4] * temp
	}
}

// LLL4 — banded linear equations.
var lll4 = &Kernel{
	Name:        "LLL4",
	Description: "banded linear equations",
	N:           1001,
	Source: `
.equ n 1001
.equ m 497
.array x 1500
.array y 1001

    lai   A7, 0
    lai   A5, 6          ; k
    lai   A2, =n
outer:
    addai A3, A5, -6     ; lw = k - 6
    lds   S1, =x-1(A5)   ; temp = x[k-1]
    lai   A4, 4          ; j
inner:
    addai A6, A4, 5      ; next j, computed early
    suba  A0, A6, A2     ; next j - n, computed early
    lds   S2, =x(A3)     ; x[lw]
    lds   S3, =y(A4)     ; y[j]
    fmul  S2, S2, S3
    fsub  S1, S1, S2
    addai A3, A3, 1
    adda  A4, A6, A7     ; j = next j
    jam   inner
    lds   S2, =y+4(A7)   ; y[4]
    fmul  S1, S2, S1
    sts   S1, =x-1(A5)
    addai A5, A5, =m     ; k += m
    suba  A0, A5, A2
    jam   outer
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		fillF(m, sym(u, "x"), 1500, val)
		fillF(m, sym(u, "y"), 1001, val2)
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		x := make([]float64, 1500)
		y := make([]float64, 1001)
		for i := range x {
			x[i] = val(i)
		}
		for i := range y {
			y[i] = val2(i)
		}
		lll4Mirror(x, y, 1001)
		return checkF(st, sym(u, "x"), 1500, "x", func(i int) float64 { return x[i] })
	},
}

// LLL5 — tri-diagonal elimination, below diagonal:
// x[i] = z[i]*(y[i] - x[i-1]), a serial recurrence.
var lll5 = &Kernel{
	Name:        "LLL5",
	Description: "tri-diagonal elimination",
	N:           997,
	Source: `
.equ n 997
.array x 997
.array y 997
.array z 997

    lai   A7, 0
    lai   A1, 1          ; i
    lai   A0, =n-1       ; loop countdown
    lds   S1, =x(A7)     ; x[0]
loop:
    lds   S2, =y(A1)
    lds   S3, =z(A1)
    fsub  S2, S2, S1
    fmul  S1, S3, S2     ; x[i], carried to the next iteration
    addai A0, A0, -1     ; loop countdown
    sts   S1, =x(A1)
    addai A1, A1, 1
    janz  loop
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		fillF(m, sym(u, "x"), 997, val)
		fillF(m, sym(u, "y"), 997, val2)
		fillF(m, sym(u, "z"), 997, func(i int) float64 { return 0.0625 + float64(i%5)*0.125 })
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		x := make([]float64, 997)
		y := make([]float64, 997)
		z := make([]float64, 997)
		for i := range x {
			x[i] = val(i)
			y[i] = val2(i)
			z[i] = 0.0625 + float64(i%5)*0.125
		}
		for i := 1; i < 997; i++ {
			x[i] = z[i] * (y[i] - x[i-1])
		}
		return checkF(st, sym(u, "x"), 997, "x", func(i int) float64 { return x[i] })
	},
}
