package livermore

import (
	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/memsys"
)

// LLL11 — first sum (prefix sum): x[k] = x[k-1] + y[k], a serial
// recurrence carried through a register.
var lll11 = &Kernel{
	Name:        "LLL11",
	Description: "first sum",
	N:           1000,
	Source: `
.equ n 1000
.array x 1000
.array y 1000

    lai   A7, 0
    lai   A1, 1
    lai   A0, =n-1       ; loop countdown
    lds   S1, =x(A7)     ; x[0]
loop:
    lds   S2, =y(A1)
    fadd  S1, S1, S2
    addai A0, A0, -1     ; loop countdown
    sts   S1, =x(A1)
    addai A1, A1, 1
    janz  loop
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		fillF(m, sym(u, "x"), 1000, val)
		fillF(m, sym(u, "y"), 1000, val2)
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		x := make([]float64, 1000)
		for i := range x {
			x[i] = val(i)
		}
		for k := 1; k < 1000; k++ {
			x[k] = x[k-1] + val2(k)
		}
		return checkF(st, sym(u, "x"), 1000, "x", func(i int) float64 { return x[i] })
	},
}

// LLL12 — first difference: x[k] = y[k+1] - y[k], fully parallel.
var lll12 = &Kernel{
	Name:        "LLL12",
	Description: "first difference",
	N:           1000,
	Source: `
.equ n 1000
.array x 1000
.array y 1001

    lai   A7, 0
    lai   A1, 0
    lai   A0, =n         ; loop countdown
loop:
    addai A1, A1, 1      ; index bumped at the top (CFT-style)
    lds   S1, =y(A1)
    lds   S2, =y-1(A1)
    fsub  S1, S1, S2
    addai A0, A0, -1     ; loop countdown
    sts   S1, =x-1(A1)
    janz  loop
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		fillF(m, sym(u, "y"), 1001, val)
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		return checkF(st, sym(u, "x"), 1000, "x", func(k int) float64 {
			return val(k+1) - val(k)
		})
	},
}

// lll13Mirror mirrors the reduced 2-D particle-in-cell kernel.
func lll13Mirror(px, py, vx, vy, b, c, h []int64, n int) {
	for ip := 0; ip < n; ip++ {
		i1 := px[ip] & 63
		j1 := py[ip] & 63
		vx[ip] += b[j1*64+i1]
		vy[ip] += c[j1*64+i1]
		px[ip] += vx[ip]
		py[ip] += vy[ip]
		i2 := px[ip] & 63
		j2 := py[ip] & 63
		h[j2*64+i2]++
	}
}

// LLL13 — 2-D particle in cell. The paper's kernel converts floating
// positions to grid indices; the model ISA (like the CRAY-1 scalar unit)
// has no direct float->int conversion, so this reduction keeps positions
// and fields in integer form (documented substitution). What the
// experiments need is preserved: data-dependent gather/scatter addressing
// through A-register arithmetic (including the A-multiply unit for the
// row stride) and read-modify-write memory traffic.
var lll13 = &Kernel{
	Name:        "LLL13",
	Description: "2-D particle in cell (integer-reduced)",
	N:           250,
	Source: `
.equ n 250
.array px 250
.array py 250
.array vx 250
.array vy 250
.array b 4096
.array c 4096
.array h 4096

    lai   A7, 0
    lai   A1, 0          ; ip
    lai   A0, =n         ; loop countdown
    lai   A6, 64         ; row stride
    lsi   S7, 63         ; grid mask
loop:
    lda   A3, =px(A1)
    movsa S1, A3
    ands  S1, S1, S7
    movas A3, S1         ; i1
    lda   A4, =py(A1)
    movsa S2, A4
    ands  S2, S2, S7
    movas A4, S2         ; j1
    mula  A5, A4, A6
    adda  A5, A5, A3     ; j1*64 + i1
    lda   A3, =b(A5)
    lda   A4, =vx(A1)
    adda  A4, A4, A3
    sta   A4, =vx(A1)    ; vx[ip] += b[...]
    lda   A3, =c(A5)
    lda   A5, =vy(A1)
    adda  A5, A5, A3
    sta   A5, =vy(A1)    ; vy[ip] += c[...]
    lda   A3, =px(A1)
    adda  A3, A3, A4
    sta   A3, =px(A1)    ; px[ip] += vx[ip]
    lda   A4, =py(A1)
    adda  A4, A4, A5
    sta   A4, =py(A1)    ; py[ip] += vy[ip]
    movsa S1, A3
    ands  S1, S1, S7
    movas A3, S1         ; i2
    movsa S2, A4
    ands  S2, S2, S7
    movas A4, S2         ; j2
    mula  A5, A4, A6
    adda  A5, A5, A3
    lda   A3, =h(A5)
    addai A3, A3, 1
    addai A0, A0, -1     ; loop countdown
    sta   A3, =h(A5)     ; h[j2*64+i2]++
    addai A1, A1, 1
    janz  loop
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		fillI(m, sym(u, "px"), 250, func(i int) int64 { return int64((i*7 + 3) % 256) })
		fillI(m, sym(u, "py"), 250, func(i int) int64 { return int64((i*11 + 5) % 256) })
		fillI(m, sym(u, "vx"), 250, func(i int) int64 { return int64(i%5 - 2) })
		fillI(m, sym(u, "vy"), 250, func(i int) int64 { return int64(i%7 - 3) })
		fillI(m, sym(u, "b"), 4096, func(i int) int64 { return int64(i%9 - 4) })
		fillI(m, sym(u, "c"), 4096, func(i int) int64 { return int64(i%11 - 5) })
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		n := 250
		px := make([]int64, n)
		py := make([]int64, n)
		vx := make([]int64, n)
		vy := make([]int64, n)
		b := make([]int64, 4096)
		c := make([]int64, 4096)
		h := make([]int64, 4096)
		for i := 0; i < n; i++ {
			px[i] = int64((i*7 + 3) % 256)
			py[i] = int64((i*11 + 5) % 256)
			vx[i] = int64(i%5 - 2)
			vy[i] = int64(i%7 - 3)
		}
		for i := range b {
			b[i] = int64(i%9 - 4)
			c[i] = int64(i%11 - 5)
		}
		lll13Mirror(px, py, vx, vy, b, c, h, n)
		for _, chk := range []struct {
			name string
			want []int64
		}{{"px", px}, {"py", py}, {"vx", vx}, {"vy", vy}, {"h", h}} {
			w := chk.want
			if err := checkI(st, sym(u, chk.name), len(w), chk.name, func(i int) int64 { return w[i] }); err != nil {
				return err
			}
		}
		return nil
	},
}

// lll14Mirror mirrors the reduced 1-D particle-in-cell kernel.
func lll14Mirror(grd, dx []int64, vx, ex, rx, rh []float64, n int) {
	for k := 0; k < n; k++ {
		ix := grd[k] & 127
		vx[k] += ex[ix]
		rx[k] += vx[k]
		ir := (grd[k] + dx[k]) & 127
		grd[k] = ir
		rh[ir] += 1.0
	}
}

// LLL14 — 1-D particle in cell, reduced the same way as LLL13: integer
// grid coordinates (no float->int conversion in the ISA), floating field
// gather (ex[ix]), floating accumulation, and a floating scatter with
// read-modify-write into the charge array rh.
var lll14 = &Kernel{
	Name:        "LLL14",
	Description: "1-D particle in cell (integer-reduced)",
	N:           220,
	Source: `
.equ n 220
.array grd 220
.array dx 220
.array vx 220
.array ex 128
.array rx 220
.array rh 128
.f64 one 1.0

    lai   A7, 0
    lai   A1, 0          ; k
    lai   A0, =n         ; loop countdown
    lsi   S7, 127        ; grid mask
    lds   S6, =one(A7)
loop:
    lda   A3, =grd(A1)
    movsa S1, A3
    ands  S1, S1, S7
    movas A4, S1         ; ix
    lds   S2, =ex(A4)    ; ex[ix]
    lds   S3, =vx(A1)
    fadd  S3, S3, S2
    sts   S3, =vx(A1)    ; vx[k] += ex[ix]
    lds   S4, =rx(A1)
    fadd  S4, S4, S3
    sts   S4, =rx(A1)    ; rx[k] += vx[k]
    lda   A5, =dx(A1)
    adda  A5, A3, A5     ; grd[k] + dx[k]
    movsa S1, A5
    ands  S1, S1, S7
    movas A5, S1         ; ir
    sta   A5, =grd(A1)   ; grd[k] = ir
    lds   S5, =rh(A5)
    addai A0, A0, -1     ; loop countdown
    fadd  S5, S5, S6
    sts   S5, =rh(A5)    ; rh[ir] += 1.0
    addai A1, A1, 1
    janz  loop
    halt
`,
	Init: func(m *memsys.Memory, u *asm.Unit) {
		fillI(m, sym(u, "grd"), 220, func(i int) int64 { return int64((i*13 + 7) % 128) })
		fillI(m, sym(u, "dx"), 220, func(i int) int64 { return int64(i%17 - 8) })
		fillF(m, sym(u, "vx"), 220, val2)
		fillF(m, sym(u, "ex"), 128, val)
		fillF(m, sym(u, "rx"), 220, func(i int) float64 { return 0.5 + float64(i%23)*0.03125 })
	},
	Check: func(st *exec.State, u *asm.Unit) error {
		n := 220
		grd := make([]int64, n)
		dx := make([]int64, n)
		vx := make([]float64, n)
		ex := make([]float64, 128)
		rx := make([]float64, n)
		rh := make([]float64, 128)
		for i := 0; i < n; i++ {
			grd[i] = int64((i*13 + 7) % 128)
			dx[i] = int64(i%17 - 8)
			vx[i] = val2(i)
			rx[i] = 0.5 + float64(i%23)*0.03125
		}
		for i := range ex {
			ex[i] = val(i)
		}
		lll14Mirror(grd, dx, vx, ex, rx, rh, n)
		if err := checkI(st, sym(u, "grd"), n, "grd", func(i int) int64 { return grd[i] }); err != nil {
			return err
		}
		if err := checkF(st, sym(u, "vx"), n, "vx", func(i int) float64 { return vx[i] }); err != nil {
			return err
		}
		if err := checkF(st, sym(u, "rx"), n, "rx", func(i int) float64 { return rx[i] }); err != nil {
			return err
		}
		return checkF(st, sym(u, "rh"), 128, "rh", func(i int) float64 { return rh[i] })
	},
}
