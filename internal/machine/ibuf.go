package machine

import "ruu/internal/isa"

// ibufs models the CRAY-1's instruction buffers: a small set of
// parcel-aligned instruction windows filled from memory on demand. The
// paper's simulations assume every instruction reference hits the
// buffers (§2, assumptions ii-iii); enabling this model makes that
// assumption checkable — the Livermore loops do fit (only cold-start
// misses), while code with large loop bodies or scattered control flow
// pays fill penalties.
type ibufs struct {
	addrs   []int // instruction index -> starting parcel address
	size    int   // parcels per buffer
	bases   []int // current base parcel address per buffer (-1 = empty)
	victim  int   // round-robin replacement cursor
	penalty int
	misses  int64
}

func newIBufs(p *isa.Program, cfg Config) *ibufs {
	addrs, _ := p.ParcelAddrs()
	b := &ibufs{
		addrs:   addrs,
		size:    cfg.IBufParcels,
		bases:   make([]int, cfg.IBufCount),
		penalty: cfg.IBufMissPenalty,
	}
	for i := range b.bases {
		b.bases[i] = -1
	}
	return b
}

// fetch reports the stall (0 on a buffer hit) for fetching the
// instruction at the given index, filling buffers on a miss. A
// two-parcel instruction may straddle a buffer boundary, in which case
// both windows must be resident.
func (b *ibufs) fetch(index, parcels int) int {
	pa := b.addrs[index]
	stall := 0
	for _, p := range [...]int{pa, pa + parcels - 1} {
		base := p - p%b.size
		if b.resident(base) {
			continue
		}
		b.misses++
		b.bases[b.victim] = base
		b.victim = (b.victim + 1) % len(b.bases)
		stall += b.penalty
	}
	return stall
}

func (b *ibufs) resident(base int) bool {
	for _, have := range b.bases {
		if have == base {
			return true
		}
	}
	return false
}
