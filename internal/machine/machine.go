// Package machine implements the shared pipeline frame of the model
// architecture: instruction fetch from the (always-hitting) instruction
// buffers, the single decode-and-issue stage, branch resolution and
// redirect penalties, interrupt plumbing, and per-run statistics. The
// machine drives any issue.Engine through the fixed per-cycle phase
// order described in package issue.
package machine

import (
	"fmt"
	"io"

	"ruu/internal/exec"
	"ruu/internal/fu"
	"ruu/internal/isa"
	"ruu/internal/issue"
	"ruu/internal/memsys"
	"ruu/internal/obs"
)

// Config parameterises the shared frame.
type Config struct {
	// Lat are the functional-unit latencies.
	Lat fu.Latencies
	// FwdLatency is the latency of a load satisfied by load-register
	// forwarding (default 2).
	FwdLatency int
	// TakenPenalty is the number of dead fetch cycles after a taken
	// branch resolves (default 6: two-parcel branch issue plus redirect
	// into the instruction buffers; calibrated against the paper's
	// tables).
	TakenPenalty int
	// UntakenPenalty is the number of dead fetch cycles after an
	// untaken branch resolves (default 2).
	UntakenPenalty int
	// LoadRegs is the number of load registers (default 6, the paper's
	// configuration).
	LoadRegs int
	// MaxCycles bounds a run (default 200M).
	MaxCycles int64
	// Speculate enables the §7 extension on engines that implement
	// issue.Speculator: branch prediction plus conditional execution.
	Speculate bool
	// PredictedTakenBubble is the fetch bubble after a predicted-taken
	// branch in speculative mode (default 1).
	PredictedTakenBubble int
	// MispredictPenalty is the fetch penalty after a misprediction is
	// discovered (default = TakenPenalty).
	MispredictPenalty int
	// InterruptPenalty is the fetch penalty when resuming from a
	// precise interrupt (default 8).
	InterruptPenalty int
	// Trace, when non-nil, receives one line per simulated cycle: the
	// decode-stage contents, the engine occupancy, and the retired
	// count (a legacy debugging facility; the structured alternative is
	// Probe).
	Trace io.Writer
	// Probe, when non-nil, receives the structured pipeline event
	// stream: per-instruction lifecycle events (fetch, decode, issue,
	// dispatch, execute, writeback, commit, squash), decode-stall
	// events, and one occupancy sample per cycle. See internal/obs for
	// the consumers (metrics histograms, Chrome trace export, pipeline
	// viewer). A nil probe costs nothing on the hot path.
	Probe obs.Probe
	// InstructionBuffers enables the CRAY-1-style instruction-buffer
	// fetch model instead of the paper's assumption (ii)/(iii) that all
	// instruction references hit the buffers. A fetch whose parcel is in
	// no buffer stalls for IBufMissPenalty cycles while a buffer fills.
	InstructionBuffers bool
	// IBufCount is the number of instruction buffers (default 4, as on
	// the CRAY-1).
	IBufCount int
	// IBufParcels is the capacity of one buffer in 16-bit parcels
	// (default 16; the CRAY-1's four buffers held 64 parcels each — the
	// smaller default makes the capacity effects visible at kernel
	// scale).
	IBufParcels int
	// IBufMissPenalty is the fill latency on a buffer miss (default 12).
	IBufMissPenalty int
}

// DefaultConfig returns the configuration used for the paper-reproduction
// experiments.
func DefaultConfig() Config {
	return Config{
		Lat:                  fu.DefaultLatencies(),
		FwdLatency:           2,
		TakenPenalty:         6,
		UntakenPenalty:       2,
		LoadRegs:             memsys.DefaultLoadRegs,
		MaxCycles:            200_000_000,
		PredictedTakenBubble: 1,
		MispredictPenalty:    6,
		InterruptPenalty:     8,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Lat == (fu.Latencies{}) {
		c.Lat = d.Lat
	}
	if c.FwdLatency <= 0 {
		c.FwdLatency = d.FwdLatency
	}
	if c.TakenPenalty <= 0 {
		c.TakenPenalty = d.TakenPenalty
	}
	if c.UntakenPenalty < 0 {
		c.UntakenPenalty = d.UntakenPenalty
	}
	if c.LoadRegs <= 0 {
		c.LoadRegs = d.LoadRegs
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = d.MaxCycles
	}
	if c.PredictedTakenBubble <= 0 {
		c.PredictedTakenBubble = d.PredictedTakenBubble
	}
	if c.MispredictPenalty <= 0 {
		c.MispredictPenalty = c.TakenPenalty
	}
	if c.InterruptPenalty <= 0 {
		c.InterruptPenalty = d.InterruptPenalty
	}
	if c.IBufCount <= 0 {
		c.IBufCount = 4
	}
	if c.IBufParcels <= 0 {
		c.IBufParcels = 16
	}
	if c.IBufMissPenalty <= 0 {
		c.IBufMissPenalty = 12
	}
}

// Stats aggregates one run's counters.
type Stats struct {
	// Cycles is the total cycle count of the run.
	Cycles int64
	// Instructions is the number of dynamic instructions architecturally
	// executed (squashed speculative instructions excluded).
	Instructions int64
	// Branches, Taken count resolved (architectural) branches.
	Branches, Taken int64
	// Mispredicts counts mispredicted branches (speculative mode only).
	Mispredicts int64
	// Interrupts counts precise interrupts taken and resumed.
	Interrupts int64
	// Stalls counts, for each stall reason, the cycles in which the
	// decode stage failed to retire or hand over an instruction.
	Stalls [issue.NumStallReasons]int64
	// MaxInFlight is the peak engine occupancy observed.
	MaxInFlight int
	// IBufMisses counts instruction-buffer misses (zero unless the
	// instruction-buffer fetch model is enabled).
	IBufMisses int64
}

// StallsByName returns the per-reason decode-stall cycle counts keyed by
// reason name (the JSON-friendly form of Stalls); reasons with zero
// cycles are omitted.
func (s Stats) StallsByName() map[string]int64 {
	out := make(map[string]int64)
	for r := issue.StallReason(1); r < issue.NumStallReasons; r++ {
		if n := s.Stalls[r]; n > 0 {
			out[r.String()] = n
		}
	}
	return out
}

// IssueRate returns instructions per cycle.
func (s Stats) IssueRate() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// InterruptEvent reports a trap that reached the architectural boundary.
type InterruptEvent struct {
	Trap *exec.Trap
	// Cycle is the cycle in which the trap was taken.
	Cycle int64
	// Precise reports whether the architectural state is precise (the
	// engine committed exactly the instructions preceding the trap).
	Precise bool
}

// InterruptAction tells the machine how to continue after a handled
// interrupt.
type InterruptAction struct {
	// Resume, when true, restarts fetch at ResumePC after the handler
	// has repaired the cause (e.g. mapped the faulted page). When false
	// the run stops with the trap recorded.
	Resume   bool
	ResumePC int
}

// Handler is invoked when a trap reaches the architectural boundary. The
// handler may inspect and repair the architectural state (st) before
// resuming. Handlers are only consulted for precise engines; an imprecise
// engine's trap always stops the run.
type Handler func(st *exec.State, ev InterruptEvent) InterruptAction

// Result summarises a run.
type Result struct {
	Stats Stats
	// Trap is non-nil if the run stopped at an unhandled trap.
	Trap *exec.Trap
	// Precise records whether the stop state was precise.
	Precise bool
	// Final is the architectural state at the end of the run.
	Final *exec.State
}

// Machine binds an engine to the shared frame.
type Machine struct {
	cfg     Config
	eng     issue.Engine
	handler Handler

	faultInjector FaultInjector
	externals     []int64
}

// ScheduleExternal arranges for an asynchronous (device/timer) interrupt
// to be delivered at the first commit boundary at or after the given
// cycle. On a precise engine the handler receives a TrapExternal event
// whose PC is the exact restart point (the oldest uncommitted
// instruction); on an imprecise engine the run stops — the situation
// that motivates the paper.
func (m *Machine) ScheduleExternal(cycle int64) {
	m.externals = append(m.externals, cycle)
}

// New returns a machine driving the given engine.
func New(eng issue.Engine, cfg Config) *Machine {
	cfg.fillDefaults()
	return &Machine{cfg: cfg, eng: eng}
}

// Engine returns the machine's engine.
func (m *Machine) Engine() issue.Engine { return m.eng }

// Config returns the effective configuration.
func (m *Machine) Config() Config { return m.cfg }

// SetHandler installs the interrupt handler.
func (m *Machine) SetHandler(h Handler) { m.handler = h }

// FaultInjector lets tests raise a trap at a chosen dynamic instruction:
// it is consulted when a memory operation executes and may veto the
// access with a synthetic fault. Production runs leave it nil.
type FaultInjector func(pc int, addr int64) *exec.Trap

// SetFaultInjector installs fi.
func (m *Machine) SetFaultInjector(fi FaultInjector) { m.faultInjector = fi }

type decodeReg struct {
	valid bool
	pc    int
	ins   isa.Instruction
	id    int64 // dynamic-instruction id, assigned at fetch
	seen  bool  // decode event emitted for this instruction
}

// Run executes prog to completion over the given initial architectural
// state (registers and memory; PC starts at st.PC). The state is mutated
// in place and returned in Result.Final.
func (m *Machine) Run(prog *isa.Program, st *exec.State) (Result, error) {
	if err := prog.Validate(); err != nil {
		return Result{}, err
	}
	if err := m.cfg.Lat.Validate(); err != nil {
		return Result{}, err
	}
	ctx := &issue.Context{
		Prog:       prog,
		State:      st,
		Bus:        fu.NewResultBus(),
		LoadRegs:   memsys.NewLoadRegs(m.cfg.LoadRegs),
		Lat:        m.cfg.Lat,
		FwdLatency: m.cfg.FwdLatency,
		Probe:      m.cfg.Probe,
		DecodeID:   obs.NoID,
	}
	if fi := m.faultInjector; fi != nil {
		ctx.Inject = fi
	}
	m.eng.Reset(ctx)

	spec, _ := m.eng.(issue.Speculator)
	speculating := m.cfg.Speculate && spec != nil
	var ib *ibufs
	if m.cfg.InstructionBuffers {
		ib = newIBufs(prog, m.cfg)
	}
	var pred *Predictor
	if speculating {
		pred = NewPredictor()
	}

	// Instructions the machine retires itself (branches resolved in
	// decode, NOP/JMP in non-speculative mode) resolve while older
	// instructions are still in flight. Their retirement is provisional
	// until the engine has committed everything issued before them: a
	// precise interrupt from an older instruction discards and re-executes
	// them, so counting them early would double-count. Each pending entry
	// records how many instructions had been handed to the engine when it
	// resolved; it matures once the engine has retired that many.
	type pendingRetire struct {
		issuedBefore int64
		id           int64
		pc           int
		branch       bool
		taken        bool
	}
	var (
		stats        Stats
		dec          decodeReg
		pc           = st.PC
		fetchDelay   = 0
		halting      = false
		nextID       = int64(0) // next dynamic-instruction id
		machineRet   = int64(0) // matured machine-retired instructions
		resolved     = int64(0) // all machine-resolved ones (progress tracking)
		pending      []pendingRetire
		pendHead     = 0
		lastProgress = int64(0)
		lastRetired  = int64(-1)
		result       Result
	)
	result.Final = st

	engineIssued := func() int64 { return m.eng.Retired() + int64(m.eng.InFlight()) }
	precise := m.eng.Precise()
	retireMachine := func(c int64, branch, taken bool) {
		resolved++
		if !precise {
			// Imprecise engines never resume after a trap, so provisional
			// retirement is unnecessary (and their Retired counters do
			// not track issue order the way maturity needs).
			machineRet++
			ctx.Observe(obs.KindCommit, c, dec.id, dec.pc)
			if branch {
				stats.Branches++
				if taken {
					stats.Taken++
				}
			}
			return
		}
		pending = append(pending, pendingRetire{engineIssued(), dec.id, dec.pc, branch, taken})
	}
	mature := func(c int64) {
		done := m.eng.Retired()
		for pendHead < len(pending) && pending[pendHead].issuedBefore <= done {
			p := pending[pendHead]
			pendHead++
			machineRet++
			ctx.Observe(obs.KindCommit, c, p.id, p.pc)
			if p.branch {
				stats.Branches++
				if p.taken {
					stats.Taken++
				}
			}
		}
		if pendHead == len(pending) {
			// Drained: reuse the backing array from the front.
			pending, pendHead = pending[:0], 0
		}
	}
	recordStall := func(c int64, r issue.StallReason) {
		stats.Stalls[r]++
		if dec.valid {
			ctx.ObserveStall(c, r, dec.id, dec.pc)
		} else {
			ctx.ObserveStall(c, r, obs.NoID, pc)
		}
	}

	total := func() int64 { return m.eng.Retired() + machineRet }
	resumeAt := func(c int64, rpc int) {
		// Provisionally resolved branches younger than the flush
		// point are discarded; the resumed execution will resolve
		// them again.
		mature(c)
		for _, p := range pending[pendHead:] {
			ctx.Observe(obs.KindSquash, c, p.id, p.pc)
		}
		resolved -= int64(len(pending) - pendHead)
		pending, pendHead = pending[:0], 0
		m.eng.Flush()
		stats.Interrupts++
		dec = decodeReg{}
		halting = false
		pc = rpc
		fetchDelay = m.cfg.InterruptPenalty
	}
	finalize := func(c int64) {
		mature(c)
		stats.Cycles = c + 1
		stats.Instructions = total()
		if ib != nil {
			stats.IBufMisses = ib.misses
		}
		if speculating {
			b, t, mp := spec.BranchStats()
			stats.Branches += b
			stats.Taken += t
			stats.Mispredicts = mp
		}
		result.Stats = stats
	}

	for c := int64(0); ; c++ {
		if c >= m.cfg.MaxCycles {
			return result, fmt.Errorf("machine: cycle budget %d exhausted (pc=%d, in-flight=%d)", m.cfg.MaxCycles, pc, m.eng.InFlight())
		}
		if t := m.eng.Retired() + resolved; t != lastRetired {
			lastRetired, lastProgress = t, c
		} else if c-lastProgress > 100_000 {
			return result, fmt.Errorf("machine: no progress for %d cycles (engine %s, pc=%d, in-flight=%d, decode=%v): likely engine deadlock",
				c-lastProgress, m.eng.Name(), pc, m.eng.InFlight(), dec.valid)
		}

		ctx.Bus.Advance(c)
		m.eng.BeginCycle(c)
		mature(c)

		// Architectural trap boundary.
		if trap := m.eng.PendingTrap(); trap != nil {
			precise := m.eng.Precise()
			ctx.Observe(obs.KindTrap, c, obs.NoID, trap.PC)
			ev := InterruptEvent{Trap: trap, Cycle: c, Precise: precise}
			if precise && m.handler != nil {
				act := m.handler(st, ev)
				if act.Resume {
					resumeAt(c, act.ResumePC)
					continue
				}
			}
			finalize(c)
			result.Trap = trap
			result.Precise = precise
			return result, nil
		}

		// External (asynchronous) interrupts: delivered at the current
		// commit boundary.
		if len(m.externals) > 0 && c >= m.externals[0] {
			m.externals = m.externals[1:]
			precise := m.eng.Precise()
			restart := pc
			if dec.valid {
				restart = dec.pc
			}
			if hp, ok := m.eng.(interface{ HeadPC() (int, bool) }); ok && precise {
				if p, live := hp.HeadPC(); live {
					restart = p
				}
			}
			trap := &exec.Trap{Kind: exec.TrapExternal, PC: restart}
			ctx.Observe(obs.KindTrap, c, obs.NoID, restart)
			ev := InterruptEvent{Trap: trap, Cycle: c, Precise: precise}
			if precise && m.handler != nil {
				act := m.handler(st, ev)
				if act.Resume {
					resumeAt(c, act.ResumePC)
					continue
				}
			}
			finalize(c)
			result.Trap = trap
			result.Precise = precise
			return result, nil
		}

		m.eng.Dispatch(c)

		// Speculative branch outcomes (resolved during broadcast or
		// dispatch above).
		if speculating {
			for _, out := range spec.TakeOutcomes() {
				pred.Update(out.PC, out.Taken)
				if out.Mispredicted {
					dec = decodeReg{}
					halting = false
					pc = out.Target
					fetchDelay = m.cfg.MispredictPenalty
				}
			}
		}

		// Decode / issue phase.
		if dec.valid {
			ctx.DecodeID = dec.id
			if !dec.seen {
				dec.seen = true
				ctx.Observe(obs.KindDecode, c, dec.id, dec.pc)
			}
		} else {
			ctx.DecodeID = obs.NoID
		}
		switch {
		case !dec.valid:
			recordStall(c, issue.StallFetch)
		case dec.ins.Op == isa.Halt:
			if m.eng.Drained() {
				retireMachine(c, false, false) // HALT counts as executed
				stats.MaxInFlight = maxInt(stats.MaxInFlight, m.eng.InFlight())
				finalize(c)
				return result, nil
			}
			recordStall(c, issue.StallDrain)
		case dec.ins.Op == isa.Jmp:
			target := int(dec.ins.Imm)
			if speculating {
				// Enter the engine so a wrong-path jump is squashable and
				// counted only if architecturally executed.
				if _, r := spec.IssueBranch(c, dec.pc, dec.ins, true); r == issue.StallNone {
					dec = decodeReg{}
					pc = target
					fetchDelay = m.cfg.PredictedTakenBubble
				} else {
					recordStall(c, r)
				}
			} else {
				retireMachine(c, true, true)
				dec = decodeReg{}
				pc = target
				fetchDelay = m.cfg.TakenPenalty
			}
		case dec.ins.Op.IsConditional() && speculating:
			predictTaken := pred.Predict(dec.pc)
			if _, r := spec.IssueBranch(c, dec.pc, dec.ins, predictTaken); r == issue.StallNone {
				target := int(dec.ins.Imm)
				dec = decodeReg{}
				if predictTaken {
					pc = target
					fetchDelay = m.cfg.PredictedTakenBubble
				}
			} else {
				recordStall(c, r)
			}
		case dec.ins.Op.IsBranch():
			condReg, _ := dec.ins.Op.CondReg()
			v, ok := m.eng.TryReadCond(c, condReg)
			if !ok {
				recordStall(c, issue.StallBranch)
				break
			}
			taken := exec.BranchTaken(dec.ins.Op, v)
			retireMachine(c, true, taken)
			target := int(dec.ins.Imm)
			fallthroughPC := dec.pc + 1
			dec = decodeReg{}
			if taken {
				pc = target
				fetchDelay = m.cfg.TakenPenalty
			} else {
				pc = fallthroughPC
				fetchDelay = m.cfg.UntakenPenalty
			}
		default:
			if r := m.eng.TryIssue(c, dec.pc, dec.ins); r == issue.StallNone {
				dec = decodeReg{}
			} else {
				recordStall(c, r)
			}
		}
		stats.MaxInFlight = maxInt(stats.MaxInFlight, m.eng.InFlight())

		// Fetch phase.
		if fetchDelay > 0 {
			fetchDelay--
		} else if !dec.valid && !halting {
			if pc < 0 || pc >= len(prog.Instructions) {
				ctx.Observe(obs.KindTrap, c, obs.NoID, pc)
				finalize(c)
				result.Trap = &exec.Trap{Kind: exec.TrapBadPC, PC: pc}
				result.Precise = m.eng.Precise()
				return result, nil
			}
			if ib != nil {
				if stall := ib.fetch(pc, prog.Instructions[pc].Op.Info().Parcels); stall > 0 {
					// The buffers fill while fetch stalls; the retry
					// after the fill hits.
					fetchDelay = stall
					continue
				}
			}
			dec = decodeReg{valid: true, pc: pc, ins: prog.Instructions[pc], id: nextID}
			ctx.Observe(obs.KindFetch, c, nextID, pc)
			nextID++
			if dec.ins.Op == isa.Halt {
				halting = true
			}
			pc++
		}

		if ctx.Probe != nil {
			ctx.ObserveSample(obs.Sample{
				Cycle:    c,
				InFlight: m.eng.InFlight(),
				LoadRegs: ctx.LoadRegs.InUse(),
				BusBusy:  ctx.Bus.Busy(c),
			})
		}

		if w := m.cfg.Trace; w != nil {
			decodeDesc := "-"
			if dec.valid {
				decodeDesc = fmt.Sprintf("pc=%d %s", dec.pc, dec.ins)
			}
			fmt.Fprintf(w, "%6d | decode: %-28s | in-flight=%-2d retired=%d\n",
				c, decodeDesc, m.eng.InFlight(), total())
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
