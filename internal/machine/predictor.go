package machine

// Predictor is a Smith-style two-bit saturating-counter branch predictor,
// indexed by the branch's instruction address — the mechanism the paper's
// §7 sketch would pair with the RUU's conditional-execution support
// (branch prediction per Smith, "A Study of Branch Prediction
// Strategies", ISCA 1981).
type Predictor struct {
	table map[int]uint8
	// InitialTaken selects the counter state for a first-seen branch:
	// weakly taken when true (loop branches dominate the benchmark set).
	InitialTaken bool
}

// NewPredictor returns a predictor whose first-seen branches are weakly
// predicted taken.
func NewPredictor() *Predictor {
	return &Predictor{table: make(map[int]uint8), InitialTaken: true}
}

func (p *Predictor) counter(pc int) uint8 {
	if v, ok := p.table[pc]; ok {
		return v
	}
	if p.InitialTaken {
		return 2 // weakly taken
	}
	return 1 // weakly not taken
}

// Predict returns the predicted direction for the branch at pc.
func (p *Predictor) Predict(pc int) bool {
	return p.counter(pc) >= 2
}

// Update trains the counter with the branch's architectural outcome.
func (p *Predictor) Update(pc int, taken bool) {
	v := p.counter(pc)
	if taken {
		if v < 3 {
			v++
		}
	} else if v > 0 {
		v--
	}
	p.table[pc] = v
}
