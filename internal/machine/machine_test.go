package machine_test

import (
	"strings"
	"testing"

	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/fu"
	"ruu/internal/isa"
	"ruu/internal/issue"
	"ruu/internal/issue/simple"
	"ruu/internal/machine"
)

func runSrc(t *testing.T, cfg machine.Config, src string) (machine.Result, *exec.State) {
	t.Helper()
	u, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(simple.New(), cfg)
	st := exec.NewState(u.NewMemory())
	res, err := m.Run(u.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	return res, st
}

// TestExactTimingStraightLine pins the cycle-level contract: issue is one
// per cycle (decode occupied the fetch cycle, issue the next), and HALT
// retires when the engine drains.
func TestExactTimingStraightLine(t *testing.T) {
	cfg := machine.DefaultConfig()
	// Three independent moves, latency 1 each, issue at cycles 1,2,3
	// (fetched at 0,1,2); last writeback at 3+1=4; HALT retires cycle 5.
	res, st := runSrc(t, cfg, `
    lai A1, 1
    lai A2, 2
    lai A3, 3
    halt
`)
	if st.A[1] != 1 || st.A[2] != 2 || st.A[3] != 3 {
		t.Fatalf("wrong results: %v", st.A)
	}
	if res.Stats.Instructions != 4 {
		t.Fatalf("instructions = %d, want 4", res.Stats.Instructions)
	}
	if res.Stats.Cycles != 5 {
		t.Fatalf("cycles = %d, want 5 (fetch@0, issue@1-3, wb+halt@4)", res.Stats.Cycles)
	}
}

// TestExactTimingDependencyStall: a dependent consumer waits the
// producer's full latency in the decode stage.
func TestExactTimingDependencyStall(t *testing.T) {
	cfg := machine.DefaultConfig()
	// lai A1 issues @1 (lat 1, wb @2); adda A2,A1,A1 fetched @1, issues
	// @2 (A1 written in phase 1 of 2); A-int lat 2 -> wb @4; fadd-free.
	// halt fetched @2, retires when drained: wb @4 -> halt @4? drained
	// checked before fetch, after wb; halt retires in the decode phase
	// of the cycle after the last writeback.
	res, _ := runSrc(t, cfg, `
    lai  A1, 5
    adda A2, A1, A1
    halt
`)
	if res.Stats.Cycles != 5 {
		t.Fatalf("cycles = %d, want 5", res.Stats.Cycles)
	}
	if res.Stats.Stalls[issue.StallOperand] != 0 {
		// A1 is ready the cycle adda issues (same-cycle forwarding from
		// phase 1), so no operand stall is recorded.
		t.Fatalf("unexpected operand stalls: %d", res.Stats.Stalls[issue.StallOperand])
	}
}

// TestBranchPenaltyAccounting pins the taken/untaken penalties.
func TestBranchPenaltyAccounting(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.TakenPenalty = 6
	cfg.UntakenPenalty = 2
	// Untaken conditional branch: A0 = 0, jap not taken.
	resU, _ := runSrc(t, cfg, `
    lai A1, 1
    jap skip
    nop
skip:
    halt
`)
	// Taken unconditional.
	resT, _ := runSrc(t, cfg, `
    lai A1, 1
    jmp skip
    nop
skip:
    halt
`)
	// Same instruction count (nop executes in the untaken case, is
	// skipped in the taken case; jmp's path has one fewer executed).
	if resU.Stats.Branches != 1 || resU.Stats.Taken != 0 {
		t.Fatalf("untaken stats: %+v", resU.Stats)
	}
	if resT.Stats.Branches != 1 || resT.Stats.Taken != 1 {
		t.Fatalf("taken stats: %+v", resT.Stats)
	}
	// The taken run skips the nop (one less instruction) but pays 6 vs 2
	// dead cycles; it must be exactly 6-2-1=3 cycles longer.
	if d := resT.Stats.Cycles - resU.Stats.Cycles; d != 3 {
		t.Fatalf("taken-untaken cycle delta = %d, want 3", d)
	}
}

func TestStallAccountingBranch(t *testing.T) {
	cfg := machine.DefaultConfig()
	// The branch waits for A0 = result of an A-multiply (latency 6).
	res, _ := runSrc(t, cfg, `
    lai  A1, 3
    mula A0, A1, A1
    jap  out
    nop
out:
    halt
`)
	if res.Stats.Stalls[issue.StallBranch] == 0 {
		t.Fatal("no branch-wait stalls recorded")
	}
	if res.Stats.Taken != 1 {
		t.Fatalf("taken = %d", res.Stats.Taken)
	}
}

func TestBadPCStops(t *testing.T) {
	u, err := asm.Assemble("nop\nnop") // falls off the end
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(simple.New(), machine.DefaultConfig())
	res, err := m.Run(u.Prog, exec.NewState(u.NewMemory()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || res.Trap.Kind != exec.TrapBadPC {
		t.Fatalf("trap = %v", res.Trap)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	u, err := asm.Assemble("loop:\n    jmp loop\n    halt")
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.MaxCycles = 500
	m := machine.New(simple.New(), cfg)
	_, err = m.Run(u.Prog, exec.NewState(u.NewMemory()))
	if err == nil || !strings.Contains(err.Error(), "cycle budget") {
		t.Fatalf("err = %v, want cycle-budget error", err)
	}
}

func TestInvalidProgramRejected(t *testing.T) {
	p := &isa.Program{Instructions: []isa.Instruction{{Op: isa.AddA, I: 9}}}
	m := machine.New(simple.New(), machine.DefaultConfig())
	if _, err := m.Run(p, exec.NewState(nil)); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestInvalidLatenciesRejected(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Lat[isa.UnitMem] = -1
	m := machine.New(simple.New(), cfg)
	u, _ := asm.Assemble("halt")
	if _, err := m.Run(u.Prog, exec.NewState(nil)); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	m := machine.New(simple.New(), machine.Config{})
	cfg := m.Config()
	d := machine.DefaultConfig()
	if cfg.TakenPenalty != d.TakenPenalty || cfg.LoadRegs != d.LoadRegs ||
		cfg.Lat != d.Lat || cfg.MaxCycles != d.MaxCycles {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	if m.Engine().Name() != "simple" {
		t.Fatalf("engine = %q", m.Engine().Name())
	}
}

func TestIssueRateZeroCycles(t *testing.T) {
	var s machine.Stats
	if s.IssueRate() != 0 {
		t.Fatal("IssueRate on zero cycles should be 0")
	}
}

func TestFaultInjectorSimpleEngineStops(t *testing.T) {
	u, err := asm.Assemble(`
    lai A1, 100
    lds S1, 0(A1)
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(simple.New(), machine.DefaultConfig())
	m.SetFaultInjector(func(pc int, addr int64) *exec.Trap {
		return &exec.Trap{Kind: exec.TrapPageFault, PC: pc, Addr: addr}
	})
	res, err := m.Run(u.Prog, exec.NewState(u.NewMemory()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || res.Trap.Kind != exec.TrapPageFault {
		t.Fatalf("trap = %v", res.Trap)
	}
	if res.Precise {
		t.Fatal("simple engine must report imprecise")
	}
}

func TestCustomLatencyAffectsTiming(t *testing.T) {
	slow := machine.DefaultConfig()
	slow.Lat[isa.UnitMem] = 20
	fast := machine.DefaultConfig()
	fast.Lat[isa.UnitMem] = fu.DefaultLatencies()[isa.UnitMem]
	src := `
    lai A1, 100
    lds S1, 0(A1)
    fadd S2, S1, S1
    halt
`
	rs, _ := runSrc(t, slow, src)
	rf, _ := runSrc(t, fast, src)
	if rs.Stats.Cycles <= rf.Stats.Cycles {
		t.Fatalf("slow memory (%d cycles) not slower than fast (%d)", rs.Stats.Cycles, rf.Stats.Cycles)
	}
}
