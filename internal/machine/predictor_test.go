package machine

import (
	"testing"
	"testing/quick"
)

func TestPredictorInitialBias(t *testing.T) {
	p := NewPredictor()
	if !p.Predict(10) {
		t.Fatal("first-seen branch should predict taken (loop bias)")
	}
	p.InitialTaken = false
	if p.Predict(11) {
		t.Fatal("with InitialTaken=false, first-seen should predict not-taken")
	}
}

func TestPredictorSaturation(t *testing.T) {
	p := NewPredictor()
	for i := 0; i < 10; i++ {
		p.Update(1, false)
	}
	if p.Predict(1) {
		t.Fatal("saturated not-taken still predicts taken")
	}
	// One taken outcome must not flip a saturated counter.
	p.Update(1, true)
	if p.Predict(1) {
		t.Fatal("single taken flipped a saturated not-taken counter")
	}
	p.Update(1, true)
	if !p.Predict(1) {
		t.Fatal("two takens should flip to predict taken")
	}
}

func TestPredictorHysteresis(t *testing.T) {
	// The classic 2-bit property: on a loop branch pattern
	// T T T N | T T T N ..., the predictor mispredicts only the N and
	// the counter never leaves the taken half.
	p := NewPredictor()
	misses := 0
	for rep := 0; rep < 8; rep++ {
		for i := 0; i < 4; i++ {
			taken := i != 3
			if p.Predict(5) != taken {
				misses++
			}
			p.Update(5, taken)
		}
	}
	if misses != 8 {
		t.Fatalf("misses = %d, want 8 (exactly the loop exits)", misses)
	}
}

func TestPredictorIndependentPCs(t *testing.T) {
	p := NewPredictor()
	for i := 0; i < 5; i++ {
		p.Update(1, false)
		p.Update(2, true)
	}
	if p.Predict(1) || !p.Predict(2) {
		t.Fatal("per-PC counters interfere")
	}
}

// TestPredictorCounterBounds via testing/quick: the counter never leaves
// [0,3] under any update sequence.
func TestPredictorCounterBounds(t *testing.T) {
	f := func(outcomes []bool) bool {
		p := NewPredictor()
		for _, o := range outcomes {
			p.Update(7, o)
			if c := p.counter(7); c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
