package machine_test

import (
	"strings"
	"testing"

	"ruu/internal/asm"
	"ruu/internal/core"
	"ruu/internal/exec"
	"ruu/internal/livermore"
	"ruu/internal/machine"
)

// TestKernelsFitInBuffers validates the paper's assumption (iii): with
// CRAY-1-sized buffers (4 x 64 parcels), every Livermore kernel incurs
// only cold-start misses — each buffer window is filled at most once.
func TestKernelsFitInBuffers(t *testing.T) {
	for _, k := range livermore.Kernels() {
		u, err := k.Unit()
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.DefaultConfig()
		cfg.InstructionBuffers = true
		cfg.IBufCount = 4
		cfg.IBufParcels = 64 // the CRAY-1's buffer capacity
		m := machine.New(core.New(core.Config{Size: 12}), cfg)
		st, err := k.NewState()
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(u.Prog, st)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		_, parcels := u.Prog.ParcelAddrs()
		coldWindows := int64((parcels + 63) / 64)
		if res.Stats.IBufMisses > coldWindows {
			t.Errorf("%s: %d buffer misses, expected at most %d cold fills",
				k.Name, res.Stats.IBufMisses, coldWindows)
		}
		if err := k.Verify(st); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

// TestBigLoopThrashesBuffers: a loop body larger than the total buffer
// capacity misses on every iteration and runs measurably slower.
func TestBigLoopThrashesBuffers(t *testing.T) {
	// Body of ~80 two-parcel instructions = ~160 parcels, far beyond
	// 4 x 16 = 64 parcels of capacity.
	var b strings.Builder
	b.WriteString("    lai A0, 20\nloop:\n    addai A0, A0, -1\n")
	for i := 0; i < 80; i++ {
		b.WriteString("    addai A1, A1, 1\n")
	}
	b.WriteString("    janz loop\n    halt\n")
	u, err := asm.Assemble(b.String())
	if err != nil {
		t.Fatal(err)
	}
	run := func(buffers bool) (int64, int64) {
		cfg := machine.DefaultConfig()
		cfg.InstructionBuffers = buffers
		m := machine.New(core.New(core.Config{Size: 12}), cfg)
		st := exec.NewState(u.NewMemory())
		res, err := m.Run(u.Prog, st)
		if err != nil {
			t.Fatal(err)
		}
		if st.A[1] != 20*80 {
			t.Fatalf("A1 = %d", st.A[1])
		}
		return res.Stats.Cycles, res.Stats.IBufMisses
	}
	fast, m0 := run(false)
	slow, misses := run(true)
	if m0 != 0 {
		t.Fatalf("misses counted with buffers disabled: %d", m0)
	}
	if misses < 20*9 { // ~10 windows per iteration, re-filled every time
		t.Fatalf("only %d misses; the loop should thrash", misses)
	}
	if slow <= fast {
		t.Fatalf("thrashing loop not slower: %d vs %d cycles", slow, fast)
	}
}

// TestStraddlingInstructionFetch: a two-parcel instruction crossing a
// buffer boundary requires both windows.
func TestStraddlingInstructionFetch(t *testing.T) {
	// 15 one-parcel nops put the next (two-parcel) instruction at parcel
	// 15, straddling windows [0,16) and [16,32).
	var b strings.Builder
	for i := 0; i < 15; i++ {
		b.WriteString("    nop\n")
	}
	b.WriteString("    lai A1, 7\n    halt\n")
	u, err := asm.Assemble(b.String())
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.InstructionBuffers = true
	m := machine.New(core.New(core.Config{Size: 8}), cfg)
	st := exec.NewState(u.NewMemory())
	res, err := m.Run(u.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	if st.A[1] != 7 {
		t.Fatalf("A1 = %d", st.A[1])
	}
	// Windows touched: [0,16) and [16,32) -> exactly 2 fills.
	if res.Stats.IBufMisses != 2 {
		t.Fatalf("misses = %d, want 2", res.Stats.IBufMisses)
	}
}
