package machine_test

import (
	"bytes"
	"strings"
	"testing"

	"ruu/internal/asm"
	"ruu/internal/core"
	"ruu/internal/exec"
	"ruu/internal/issue/rstu"
	"ruu/internal/livermore"
	"ruu/internal/machine"
)

// TestExternalInterruptPreciseResume delivers an asynchronous interrupt
// mid-loop on the RUU: the handler observes a precise boundary (the
// restart PC is the oldest uncommitted instruction) and resumes; the
// kernel must finish with a correct result.
func TestExternalInterruptPreciseResume(t *testing.T) {
	k := livermore.ByName("LLL1")
	unit, err := k.Unit()
	if err != nil {
		t.Fatal(err)
	}
	for _, cycle := range []int64{0, 100, 5000} {
		eng := core.New(core.Config{Size: 12})
		m := machine.New(eng, machine.Config{})
		m.ScheduleExternal(cycle)
		fired := 0
		m.SetHandler(func(st *exec.State, ev machine.InterruptEvent) machine.InterruptAction {
			if ev.Trap.Kind != exec.TrapExternal {
				t.Fatalf("kind = %v", ev.Trap.Kind)
			}
			if !ev.Precise {
				t.Fatal("external interrupt on the RUU not precise")
			}
			fired++
			// A device handler would run here; resuming at the reported
			// restart point continues the program exactly.
			return machine.InterruptAction{Resume: true, ResumePC: ev.Trap.PC}
		})
		st, err := k.NewState()
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(unit.Prog, st)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap != nil {
			t.Fatalf("cycle=%d: unrecovered %v", cycle, res.Trap)
		}
		if fired != 1 || res.Stats.Interrupts != 1 {
			t.Fatalf("cycle=%d: fired=%d interrupts=%d", cycle, fired, res.Stats.Interrupts)
		}
		if err := k.Verify(st); err != nil {
			t.Fatalf("cycle=%d: wrong result after external interrupt: %v", cycle, err)
		}
	}
}

// TestExternalInterruptImpreciseStops: the RSTU cannot service an
// asynchronous interrupt — the run stops with the external trap and an
// imprecise state, the paper's motivating failure.
func TestExternalInterruptImpreciseStops(t *testing.T) {
	k := livermore.ByName("LLL1")
	unit, _ := k.Unit()
	m := machine.New(rstu.New(12), machine.Config{})
	m.ScheduleExternal(200)
	m.SetHandler(func(st *exec.State, ev machine.InterruptEvent) machine.InterruptAction {
		t.Fatal("handler must not be consulted for an imprecise engine")
		return machine.InterruptAction{}
	})
	st, _ := k.NewState()
	res, err := m.Run(unit.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || res.Trap.Kind != exec.TrapExternal {
		t.Fatalf("trap = %v", res.Trap)
	}
	if res.Precise {
		t.Fatal("RSTU reported precise")
	}
}

// TestExternalInterruptAfterCompletion: an interrupt scheduled beyond
// the program's end never fires.
func TestExternalInterruptAfterCompletion(t *testing.T) {
	u, err := asm.Assemble("lai A1, 1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(core.Config{Size: 4})
	m := machine.New(eng, machine.Config{})
	m.ScheduleExternal(1 << 40)
	st := exec.NewState(u.NewMemory())
	res, err := m.Run(u.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil || res.Stats.Interrupts != 0 {
		t.Fatalf("res = %+v", res)
	}
}

// TestPipelineTrace: the per-cycle trace facility emits one line per
// cycle with the decode contents.
func TestPipelineTrace(t *testing.T) {
	u, err := asm.Assemble(`
    lai  A1, 2
    adda A2, A1, A1
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := machine.DefaultConfig()
	cfg.Trace = &buf
	m := machine.New(core.New(core.Config{Size: 4}), cfg)
	res, err := m.Run(u.Prog, exec.NewState(u.NewMemory()))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// The final cycle returns at the retire point, before the trace
	// write, so the line count is Cycles-1.
	if int64(len(lines)) != res.Stats.Cycles-1 {
		t.Fatalf("%d trace lines for %d cycles", len(lines), res.Stats.Cycles)
	}
	text := buf.String()
	for _, want := range []string{"lai A1, 2", "adda A2, A1, A1", "halt", "in-flight="} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing %q:\n%s", want, text)
		}
	}
}
