package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Sample", "Name", "Count", "Rate")
	t.Add("alpha", 12, 0.5)
	t.Add("beta-long-name", 3456, 1.25)
	return t
}

func TestWriteText(t *testing.T) {
	var b strings.Builder
	sample().WriteText(&b)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Sample" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "Name") || !strings.Contains(lines[1], "Rate") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator = %q", lines[2])
	}
	// Floats use three decimals.
	if !strings.Contains(out, "0.500") || !strings.Contains(out, "1.250") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	// Columns align: every data row has the second column starting at the
	// same offset as the header's.
	hdrIdx := strings.Index(lines[1], "Count")
	if idx := strings.Index(lines[3], "12"); idx != hdrIdx {
		t.Errorf("column misaligned: %d vs %d\n%s", idx, hdrIdx, out)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b strings.Builder
	sample().WriteMarkdown(&b)
	out := b.String()
	if !strings.HasPrefix(out, "**Sample**") {
		t.Errorf("markdown title missing:\n%s", out)
	}
	if !strings.Contains(out, "| Name | Count | Rate |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Errorf("markdown separator missing:\n%s", out)
	}
	if !strings.Contains(out, "| alpha | 12 | 0.500 |") {
		t.Errorf("markdown row missing:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	sample().WriteCSV(&b)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title comment, header, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "# Sample" {
		t.Errorf("title comment = %q", lines[0])
	}
	if lines[1] != "Name,Count,Rate" {
		t.Errorf("header = %q", lines[1])
	}
	if lines[2] != "alpha,12,0.500" {
		t.Errorf("row = %q", lines[2])
	}
}

func TestWriteCSVQuoting(t *testing.T) {
	tb := New("", "Label", "Value")
	tb.Add("plain", 1)
	tb.Add("comma, inside", 2)
	tb.Add(`has "quotes"`, 3)
	var b strings.Builder
	tb.WriteCSV(&b)
	out := b.String()
	if !strings.Contains(out, `"comma, inside",2`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"has ""quotes""",3`) {
		t.Errorf("quote cell not escaped:\n%s", out)
	}
	if !strings.Contains(out, "plain,1") {
		t.Errorf("plain cell should stay unquoted:\n%s", out)
	}
}

func TestStringAndUntitled(t *testing.T) {
	tb := New("", "A")
	tb.Add(1)
	s := tb.String()
	if strings.HasPrefix(s, "\n") {
		t.Errorf("untitled table starts with a blank line: %q", s)
	}
	if !strings.Contains(s, "A") || !strings.Contains(s, "1") {
		t.Errorf("content missing: %q", s)
	}
}
