// Package report renders the experiment tables in the paper's layout, as
// plain text or markdown.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New returns a table with the given title and columns.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; values are formatted with %v (floats with %0.3f).
func (t *Table) Add(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(w) && len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) {
	widths := t.widths()
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	var sep strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			fmt.Fprint(w, "  ")
			sep.WriteString("  ")
		}
		fmt.Fprintf(w, "%-*s", widths[i], c)
		sep.WriteString(strings.Repeat("-", widths[i]))
	}
	fmt.Fprintf(w, "\n%s\n", sep.String())
	for _, r := range t.Rows {
		for i, cell := range r {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
}

// WriteMarkdown renders the table as GitHub-flavoured markdown.
func (t *Table) WriteMarkdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "**%s**\n\n", t.Title)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
}

// WriteCSV renders the table as comma-separated values with a comment
// line for the title (for plotting scripts). Cells containing a comma,
// quote or line break are quoted per RFC 4180.
func (t *Table) WriteCSV(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	writeCSVRow(w, t.Columns)
	for _, r := range t.Rows {
		writeCSVRow(w, r)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			io.WriteString(w, ",")
		}
		io.WriteString(w, csvQuote(c))
	}
	io.WriteString(w, "\n")
}

func csvQuote(c string) string {
	if !strings.ContainsAny(c, ",\"\n\r") {
		return c
	}
	return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteText(&b)
	return b.String()
}
