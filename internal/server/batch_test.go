package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ruu"
	"ruu/internal/fabric"
	"ruu/internal/store"
)

// batchBody is the canonical mixed workload used by the golden tests:
// several kernels across engines and sizes, with repeats (exercising
// dedup) and an unverified item.
func batchBody() map[string]any {
	return map[string]any{
		"items": []map[string]any{
			{"engine": "ruu", "entries": 8, "kernel": "LLL1"},
			{"engine": "rstu", "entries": 10, "kernel": "LLL3"},
			{"engine": "ruu", "entries": 16, "bypass": "none", "kernel": "LLL7"},
			{"engine": "ruu", "entries": 8, "kernel": "LLL1"}, // repeat of item 0
			{"engine": "simple", "kernel": "LLL12"},
			{"engine": "ruu", "entries": 12, "kernel": "LLL3", "verify": false},
		},
	}
}

// parseNDJSON strictly parses a batch stream: one JSON object per
// line, indexes ascending from 0.
func parseNDJSON(t *testing.T, body []byte) []batchLine {
	t.Helper()
	var lines []batchLine
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ln batchLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ln.Index != len(lines) {
			t.Fatalf("line %d carries index %d (order broken)", len(lines), ln.Index)
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestBatchStreamsInSubmissionOrder(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/batch", batchBody())
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := parseNDJSON(t, rec.Body.Bytes())
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6", len(lines))
	}
	for i, ln := range lines {
		if ln.Error != "" || ln.Outcome == nil {
			t.Fatalf("line %d: error %q, outcome %v", i, ln.Error, ln.Outcome)
		}
		if ln.Outcome.Cycles == 0 {
			t.Fatalf("line %d: zero cycles", i)
		}
	}
	// Items 0 and 3 are identical submissions: identical rendering.
	l0, _ := json.Marshal(lines[0].Outcome)
	l3, _ := json.Marshal(lines[3].Outcome)
	if !bytes.Equal(l0, l3) {
		t.Fatalf("duplicate items diverged:\n%s\n%s", l0, l3)
	}
	// The unverified item must say so.
	if lines[5].Outcome.Verified {
		t.Fatal("verify:false item came back verified")
	}
}

// TestBatchParallelMatchesSerial: the same batch through a pooled
// server and a serial (nil-pool) server must be byte-identical — the
// submission-order contract at the HTTP surface.
func TestBatchParallelMatchesSerial(t *testing.T) {
	serial := newTestServer(t, Config{Runner: &ruu.Runner{}})
	parallel := newTestServer(t, Config{})

	want := postJSON(t, serial.Handler(), "/v1/batch", batchBody())
	got := postJSON(t, parallel.Handler(), "/v1/batch", batchBody())
	if want.Code != http.StatusOK || got.Code != http.StatusOK {
		t.Fatalf("status %d / %d", want.Code, got.Code)
	}
	if !bytes.Equal(want.Body.Bytes(), got.Body.Bytes()) {
		t.Fatalf("parallel batch differs from serial:\n--- serial\n%s--- parallel\n%s",
			want.Body, got.Body)
	}
	// And a re-run against the now-warm cache is byte-identical too.
	again := postJSON(t, parallel.Handler(), "/v1/batch", batchBody())
	if !bytes.Equal(want.Body.Bytes(), again.Body.Bytes()) {
		t.Fatal("warm-cache batch differs from serial")
	}
}

// startWorkerFleet boots n independent worker servers (each its own
// pool and cache) on real listeners and returns their base URLs.
func startWorkerFleet(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		r := ruu.NewRunner(ruu.RunnerConfig{Workers: 2})
		t.Cleanup(r.Close)
		ws := httptest.NewServer(New(Config{Runner: r}).Handler())
		t.Cleanup(ws.Close)
		urls[i] = ws.URL
	}
	return urls
}

// TestBatchFabricMatchesSerial is the cross-wire golden test: a
// 3-worker fabric behind a coordinator must produce a /v1/batch body
// byte-identical to the serial library path.
func TestBatchFabricMatchesSerial(t *testing.T) {
	urls := startWorkerFleet(t, 3)
	// The prober runs against the workers' real handlers, so a default
	// HealthPath that the server doesn't actually route would eject the
	// whole (healthy) fleet and fail the scrape assertions below.
	coord, err := fabric.New(fabric.Config{Workers: urls,
		HealthInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	coordinator := newTestServer(t, Config{Fabric: coord})
	serial := newTestServer(t, Config{Runner: &ruu.Runner{}})

	want := postJSON(t, serial.Handler(), "/v1/batch", batchBody())
	got := postJSON(t, coordinator.Handler(), "/v1/batch", batchBody())
	if want.Code != http.StatusOK || got.Code != http.StatusOK {
		t.Fatalf("status %d / %d: %s", want.Code, got.Code, got.Body)
	}
	if !bytes.Equal(want.Body.Bytes(), got.Body.Bytes()) {
		t.Fatalf("fabric batch differs from serial:\n--- serial\n%s--- fabric\n%s",
			want.Body, got.Body)
	}
	if routed := coord.Stats().Routed; routed == 0 {
		t.Fatal("coordinator routed nothing — batch ran locally?")
	}

	// The coordinator's scrape shows the fleet healthy and the routing
	// counters live — after enough probe sweeps that a liveness-path
	// mismatch would have emptied the ring.
	time.Sleep(25 * time.Millisecond)
	body := scrapePrometheus(t, coordinator.Handler())
	for _, u := range urls {
		want := `ruu_fabric_worker_healthy{worker="` + u + `"} 1`
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if !strings.Contains(body, "ruu_fabric_routed_total") {
		t.Error("scrape missing ruu_fabric_routed_total")
	}
}

// TestBatchFabricSurvivesWorkerLoss: killing one of three workers
// mid-fleet must not change the stream — retries land the orphaned
// keys on survivors.
func TestBatchFabricSurvivesWorkerLoss(t *testing.T) {
	urls := startWorkerFleet(t, 2)
	// A third worker that is already dead: connect failures on every
	// key it owns.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	coord, err := fabric.New(fabric.Config{
		Workers:     append(urls, dead.URL),
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	coordinator := newTestServer(t, Config{Fabric: coord})
	serial := newTestServer(t, Config{Runner: &ruu.Runner{}})

	want := postJSON(t, serial.Handler(), "/v1/batch", batchBody())
	got := postJSON(t, coordinator.Handler(), "/v1/batch", batchBody())
	if got.Code != http.StatusOK {
		t.Fatalf("status %d: %s", got.Code, got.Body)
	}
	if !bytes.Equal(want.Body.Bytes(), got.Body.Bytes()) {
		t.Fatalf("degraded fabric differs from serial:\n--- serial\n%s--- fabric\n%s",
			want.Body, got.Body)
	}
}

// TestBatchFabricAllWorkersDown: the stream still answers, with error
// lines, when no worker is reachable.
func TestBatchFabricAllWorkersDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	coord, err := fabric.New(fabric.Config{
		Workers:     []string{dead.URL},
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	s := newTestServer(t, Config{Fabric: coord})
	rec := postJSON(t, s.Handler(), "/v1/batch", map[string]any{
		"items": []map[string]any{{"kernel": "LLL1"}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	lines := parseNDJSON(t, rec.Body.Bytes())
	if len(lines) != 1 || lines[0].Error == "" {
		t.Fatalf("want one error line, got %+v", lines)
	}
}

func TestBatchValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxBatchItems: 3})
	h := s.Handler()
	cases := []struct {
		name string
		body any
		want int
	}{
		{"no items", map[string]any{"items": []map[string]any{}}, 422},
		{"too many items", map[string]any{"items": []map[string]any{
			{"kernel": "LLL1"}, {"kernel": "LLL1"}, {"kernel": "LLL1"}, {"kernel": "LLL1"},
		}}, 422},
		{"bad engine", map[string]any{"items": []map[string]any{
			{"engine": "warp-drive", "kernel": "LLL1"},
		}}, 422},
		{"unknown kernel", map[string]any{"items": []map[string]any{
			{"kernel": "LLL99"},
		}}, 422},
		{"no program", map[string]any{"items": []map[string]any{{"engine": "ruu"}}}, 422},
		{"both programs", map[string]any{"items": []map[string]any{
			{"kernel": "LLL1", "asm": "halt"},
		}}, 422},
		{"unknown field", map[string]any{"items": []map[string]any{
			{"krenel": "LLL1"},
		}}, 400},
	}
	for _, tc := range cases {
		rec := postJSON(t, h, "/v1/batch", tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, rec.Code, tc.want, rec.Body)
		}
	}
	// A bad item names its index so clients can fix it.
	rec := postJSON(t, h, "/v1/batch", map[string]any{"items": []map[string]any{
		{"kernel": "LLL1"}, {"kernel": "LLL99"},
	}})
	if !strings.Contains(rec.Body.String(), "item 1") {
		t.Errorf("error does not name the bad item: %s", rec.Body)
	}
}

func TestBatchAdmissionSheds429(t *testing.T) {
	s := newTestServer(t, Config{MaxBatchInFlight: 2})
	h := s.Handler()
	rec := postJSON(t, h, "/v1/batch", map[string]any{"items": []map[string]any{
		{"kernel": "LLL1"}, {"kernel": "LLL3"}, {"kernel": "LLL7"},
	}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got != strconv.Itoa(RetryAfterSeconds) {
		t.Errorf("Retry-After = %q, want %d", got, RetryAfterSeconds)
	}
	// A batch that fits is admitted, and the slots are released after.
	rec2 := postJSON(t, h, "/v1/batch", map[string]any{"items": []map[string]any{
		{"kernel": "LLL1"}, {"kernel": "LLL3"},
	}})
	if rec2.Code != http.StatusOK {
		t.Fatalf("fitting batch = %d: %s", rec2.Code, rec2.Body)
	}
	s.mu.Lock()
	inFlight := s.batchInFlight
	s.mu.Unlock()
	if inFlight != 0 {
		t.Fatalf("slots leaked: %d in flight after completion", inFlight)
	}
	// The shed shows up on the scrape.
	if body := scrapePrometheus(t, h); !strings.Contains(body, "ruu_fabric_shed_total 1") {
		t.Error("scrape missing ruu_fabric_shed_total 1")
	}
}

func TestBatchPerClientCap(t *testing.T) {
	s := newTestServer(t, Config{MaxClientInFlight: 1})
	req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(
		`{"items":[{"kernel":"LLL1"},{"kernel":"LLL3"}]}`))
	req.Header.Set("X-Client-ID", "greedy")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body)
	}
	s.mu.Lock()
	leaked := len(s.clientInFlight)
	s.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("rejected batch reserved client slots: %d clients tracked", leaked)
	}
}

// TestBatchPersistReload is the HTTP half of the persist-and-reload
// guarantee: a server killed after completing a subset of a workload,
// restarted over the same store directory, serves the completed
// results from disk byte-identically — and never runs a job twice.
func TestBatchPersistReload(t *testing.T) {
	dir := t.TempDir()
	items := []map[string]any{
		{"engine": "ruu", "entries": 8, "kernel": "LLL1"},
		{"engine": "ruu", "entries": 16, "kernel": "LLL3"},
		{"engine": "rstu", "entries": 10, "kernel": "LLL7"},
		{"engine": "simple", "kernel": "LLL12"},
		{"engine": "ruu", "entries": 12, "bypass": "none", "kernel": "LLL2"},
	}

	// First life: complete the first 3 items, then die.
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := ruu.NewRunner(ruu.RunnerConfig{Workers: 2, Store: st1})
	s1 := New(Config{Runner: r1, Store: st1})
	rec1 := postJSON(t, s1.Handler(), "/v1/batch", map[string]any{"items": items[:3]})
	if rec1.Code != http.StatusOK {
		t.Fatalf("first life: %d: %s", rec1.Code, rec1.Body)
	}
	firstLines := strings.Split(strings.TrimSuffix(rec1.Body.String(), "\n"), "\n")
	r1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: same store dir, the full workload.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	r2 := ruu.NewRunner(ruu.RunnerConfig{Workers: 2, Store: st2})
	t.Cleanup(r2.Close)
	s2 := New(Config{Runner: r2, Store: st2})
	rec2 := postJSON(t, s2.Handler(), "/v1/batch", map[string]any{"items": items})
	if rec2.Code != http.StatusOK {
		t.Fatalf("second life: %d: %s", rec2.Code, rec2.Body)
	}
	secondLines := strings.Split(strings.TrimSuffix(rec2.Body.String(), "\n"), "\n")
	if len(secondLines) != len(items) {
		t.Fatalf("second life returned %d lines", len(secondLines))
	}
	// Completed results are byte-identical across the restart.
	for i := range firstLines {
		if firstLines[i] != secondLines[i] {
			t.Fatalf("line %d changed across restart:\n%s\n%s", i, firstLines[i], secondLines[i])
		}
	}
	// No job ran twice: only the 2 new items hit the simulator.
	if n := r2.Pool().Metrics().Completed; n != 2 {
		t.Fatalf("second life executed %d jobs, want 2", n)
	}
	if hits := st2.Stats().Hits; hits < 3 {
		t.Fatalf("store served %d hits, want >= 3", hits)
	}
	// The store families are on the scrape when a store is configured.
	body := scrapePrometheus(t, s2.Handler())
	for _, want := range []string{
		"ruu_store_hits_total",
		"ruu_store_misses_total",
		"ruu_store_evictions_total",
		"ruu_store_bytes_total",
		"ruu_store_entries",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
