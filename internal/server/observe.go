package server

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"ruu/internal/obs"
)

// This file is the service-observability wiring: the request-ID
// middleware, the HTTP access log, and the Prometheus metric registry
// published by GET /metrics (Accept: text/plain). Everything here
// reads service state at scrape time — nothing touches the
// simulator's per-cycle hot path.

// BuildInfo is the build metadata reported by GET /healthz and the
// ruu_build_info metric, read from the binary's embedded module info.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module"`
	Version   string `json:"version"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// ReadBuildInfo extracts the binary's build metadata (Go version,
// module version, VCS revision when the binary was built from a
// checkout). Fields missing from the embedded info stay empty.
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.GoVersion = info.GoVersion
	bi.Module = info.Main.Path
	bi.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}

// routeLabel maps a request to a bounded route label for the
// ruu_http_requests_total metric; unknown paths collapse into "other"
// so scraping an abusive client cannot grow the label space.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case strings.HasPrefix(p, "/v1/jobs/"):
		p = "/v1/jobs/{id}"
	case p == "/v1/simulate", p == "/v1/analyze", p == "/v1/batch", p == "/v1/sweep", p == "/healthz", p == "/metrics":
	default:
		p = "other"
	}
	return r.Method + " " + p
}

// statusRecorder captures the response status for the access log and
// the per-route request counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes (the NDJSON batch lines) to the
// underlying writer; embedding alone would hide its Flusher from the
// interface assertion in the batch handler.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withObservability is the outermost middleware: it assigns the
// request ID (the client's X-Request-ID, or a generated req-N),
// reflects it in the response, carries it through context into
// scheduler jobs, counts the request per route and status code, and
// writes one structured access-log line.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("req-%d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(obs.WithRequestID(r.Context(), id))
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		// Access-log latency is operational telemetry about this
		// process; no simulation ever sees it. //ruulint:ok simdeterminism
		start := time.Now()
		next.ServeHTTP(sr, r)
		route := routeLabel(r)
		s.countRequest(route, sr.status)
		if s.log != nil {
			// Same telemetry clock as above.
			s.log.Info("request",
				slog.String("request_id", id),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", sr.status),
				slog.Int64("duration_ms", time.Since(start).Milliseconds())) //ruulint:ok simdeterminism access-log telemetry clock
		}
	})
}

// countRequest bumps the per-(route, status) request counter.
func (s *Server) countRequest(route string, status int) {
	key := fmt.Sprintf("%s\x00%d", route, status)
	s.mu.Lock()
	s.httpReqs[key]++
	s.mu.Unlock()
}

// httpRequestPoints renders the request counters as stable-ordered
// exposition points.
func (s *Server) httpRequestPoints() []obs.Point {
	s.mu.Lock()
	keys := make([]string, 0, len(s.httpReqs))
	for k := range s.httpReqs {
		keys = append(keys, k)
	}
	counts := make(map[string]int64, len(keys))
	for _, k := range keys {
		counts[k] = s.httpReqs[k]
	}
	s.mu.Unlock()
	sort.Strings(keys)
	points := make([]obs.Point, 0, len(keys))
	for _, k := range keys {
		route, code, _ := strings.Cut(k, "\x00")
		points = append(points, obs.Point{
			Labels: []obs.Label{{Name: "route", Value: route}, {Name: "code", Value: code}},
			Value:  float64(counts[k]),
		})
	}
	return points
}

// onJobSpan is the scheduler's span hook: every executed pool job
// feeds the queue-wait histogram and, when a logger is configured, one
// structured job-log line carrying the originating request's ID.
func (s *Server) onJobSpan(sp obs.Span) {
	// obs.Hist is single-writer by design; the hook runs on pool
	// worker goroutines, so serialize.
	s.qwMu.Lock()
	s.queueWait.Observe(sp.QueueWaitNS() / 1e6)
	s.qwMu.Unlock()
	s.recordSpan(sp)
	if s.log != nil {
		name := sp.Name
		if name == "" {
			name = "job"
		}
		s.log.Debug("job",
			slog.String("job", name),
			slog.String("request_id", sp.RequestID),
			slog.Int("worker", sp.Worker),
			slog.Int64("queue_wait_ms", sp.QueueWaitNS()/1e6),
			slog.Int64("run_ms", (sp.EndNS-sp.StartNS)/1e6),
			slog.Bool("error", sp.Err))
	}
}

// recordSpan keeps the most recent job spans for the trace endpoint
// (bounded by the recorder's limit).
func (s *Server) recordSpan(sp obs.Span) {
	if s.spans != nil {
		s.spans.Record(sp)
	}
}

// wireMetrics registers the service's Prometheus metric families. The
// same numbers stay available as JSON (the default GET /metrics
// rendering); this is the text-exposition view scraped by Prometheus.
func (s *Server) wireMetrics(build BuildInfo) {
	reg := s.reg
	reg.GaugeFunc("ruu_build_info",
		"Build metadata as labels; the value is always 1.",
		func() float64 { return 1 },
		obs.Label{Name: "go_version", Value: build.GoVersion},
		obs.Label{Name: "version", Value: build.Version},
		obs.Label{Name: "revision", Value: build.Revision})
	reg.CollectFunc("ruu_http_requests_total",
		"HTTP requests served, by route and status code.",
		"counter", s.httpRequestPoints)
	reg.GaugeFunc("ruu_draining",
		"1 while the server refuses new work during shutdown.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.draining {
				return 1
			}
			return 0
		})
	reg.CollectFunc("ruu_sweep_jobs",
		"Asynchronous sweep jobs by state.",
		"gauge", func() []obs.Point {
			s.mu.Lock()
			byState := map[string]int{}
			for _, j := range s.jobs {
				byState[j.state]++
			}
			s.mu.Unlock()
			states := []string{"queued", "running", "done", "failed", "cancelled"}
			points := make([]obs.Point, 0, len(states))
			for _, st := range states {
				points = append(points, obs.Point{
					Labels: []obs.Label{{Name: "state", Value: st}},
					Value:  float64(byState[st]),
				})
			}
			return points
		})

	pool := s.runner.Pool()
	if pool != nil {
		reg.GaugeFunc("ruu_sched_workers",
			"Worker goroutines in the simulation pool.",
			func() float64 { return float64(pool.Metrics().Workers) })
		reg.GaugeFunc("ruu_sched_queue_capacity",
			"Capacity of the bounded job queue.",
			func() float64 { return float64(pool.Metrics().QueueDepth) })
		reg.GaugeFunc("ruu_sched_queued",
			"Jobs waiting in the queue.",
			func() float64 { return float64(pool.Metrics().Queued) })
		reg.GaugeFunc("ruu_sched_running",
			"Jobs currently executing.",
			func() float64 { return float64(pool.Metrics().Running) })
		reg.CollectFunc("ruu_sched_jobs_total",
			"Pool jobs by outcome since start.",
			"counter", func() []obs.Point {
				m := pool.Metrics()
				return []obs.Point{
					{Labels: []obs.Label{{Name: "outcome", Value: "submitted"}}, Value: float64(m.Submitted)},
					{Labels: []obs.Label{{Name: "outcome", Value: "completed"}}, Value: float64(m.Completed)},
					{Labels: []obs.Label{{Name: "outcome", Value: "failed"}}, Value: float64(m.Failed)},
					{Labels: []obs.Label{{Name: "outcome", Value: "panicked"}}, Value: float64(m.Panics)},
					{Labels: []obs.Label{{Name: "outcome", Value: "deduped"}}, Value: float64(m.Deduped)},
				}
			})
		reg.CounterFunc("ruu_cache_hits_total",
			"Result-cache hits.",
			func() float64 { return float64(pool.Metrics().Cache.Hits) })
		reg.CounterFunc("ruu_cache_misses_total",
			"Result-cache misses.",
			func() float64 { return float64(pool.Metrics().Cache.Misses) })
		reg.CounterFunc("ruu_cache_evictions_total",
			"Result-cache LRU evictions.",
			func() float64 { return float64(pool.Metrics().Cache.Evictions) })
		reg.GaugeFunc("ruu_cache_entries",
			"Result-cache resident entries.",
			func() float64 { return float64(pool.Metrics().Cache.Entries) })
		reg.GaugeFunc("ruu_cache_capacity",
			"Result-cache capacity.",
			func() float64 { return float64(pool.Metrics().Cache.Capacity) })
		reg.HistogramFunc("ruu_sched_queue_wait_ms",
			"Milliseconds jobs spent queued before a worker picked them up.",
			func() []obs.LabeledHist {
				s.qwMu.Lock()
				snap := s.queueWait.Snapshot()
				s.qwMu.Unlock()
				return []obs.LabeledHist{{Snap: snap}}
			})
	}

	if s.store != nil {
		reg.CounterFunc("ruu_store_hits_total",
			"Persistent result-store hits (results served from disk).",
			func() float64 { return float64(s.store.Stats().Hits) })
		reg.CounterFunc("ruu_store_misses_total",
			"Persistent result-store misses.",
			func() float64 { return float64(s.store.Stats().Misses) })
		reg.CounterFunc("ruu_store_evictions_total",
			"Persistent result-store entries displaced by the byte bound.",
			func() float64 { return float64(s.store.Stats().Evictions) })
		reg.CounterFunc("ruu_store_bytes_total",
			"Payload bytes written to the persistent result store.",
			func() float64 { return float64(s.store.Stats().BytesWritten) })
		reg.GaugeFunc("ruu_store_entries",
			"Persistent result-store resident entries.",
			func() float64 { return float64(s.store.Stats().Entries) })
		reg.GaugeFunc("ruu_store_resident_bytes",
			"Persistent result-store resident payload bytes.",
			func() float64 { return float64(s.store.Stats().Bytes) })
	}

	reg.CounterFunc("ruu_fabric_routed_total",
		"Batch items routed across the sweep fabric (0 off coordinator).",
		func() float64 {
			if s.fabric == nil {
				return 0
			}
			return float64(s.fabric.Stats().Routed)
		})
	reg.CounterFunc("ruu_fabric_retried_total",
		"Fabric attempts beyond each request's first (connect/5xx retry).",
		func() float64 {
			if s.fabric == nil {
				return 0
			}
			return float64(s.fabric.Stats().Retried)
		})
	reg.CounterFunc("ruu_fabric_shed_total",
		"Batches shed 429 by admission control.",
		func() float64 { return float64(s.batchShed.Load()) })
	reg.CollectFunc("ruu_fabric_worker_healthy",
		"1 per fabric worker currently in the ring, 0 when ejected.",
		"gauge", func() []obs.Point {
			if s.fabric == nil {
				return nil
			}
			workers := s.fabric.Workers()
			names := make([]string, 0, len(workers))
			for w := range workers {
				names = append(names, w)
			}
			sort.Strings(names)
			points := make([]obs.Point, 0, len(names))
			for _, w := range names {
				v := 0.0
				if workers[w] {
					v = 1
				}
				points = append(points, obs.Point{
					Labels: []obs.Label{{Name: "worker", Value: w}},
					Value:  v,
				})
			}
			return points
		})

	reg.CounterFunc("ruu_analyze_reject_total",
		"Programs rejected by the POST /v1/analyze static pre-screen "+
			"(error-severity lint findings or a trapping replay).",
		func() float64 { return float64(s.analyzeRejects.Load()) })
	reg.CounterFunc("ruu_sim_cycles_total",
		"Simulated machine cycles, summed over synchronous simulations.",
		func() float64 { return float64(s.simCycles.Load()) })
	reg.CounterFunc("ruu_sim_instructions_total",
		"Simulated instructions, summed over synchronous simulations.",
		func() float64 { return float64(s.simInstructions.Load()) })
	reg.CounterFunc("ruu_sim_wall_ms_total",
		"Wall-clock milliseconds spent in synchronous simulations; with "+
			"ruu_sim_cycles_total this yields the service's cycles/sec rate.",
		func() float64 { return float64(s.simWallMS.Load()) })
	reg.HistogramFunc("ruu_sim_latency_ms",
		"Service-side simulation latency by engine.",
		func() []obs.LabeledHist {
			s.mu.Lock()
			names := make([]string, 0, len(s.latency))
			for name := range s.latency {
				names = append(names, name)
			}
			snaps := make(map[string]obs.HistSnapshot, len(names))
			for _, name := range names {
				snaps[name] = s.latency[name].Snapshot()
			}
			s.mu.Unlock()
			sort.Strings(names)
			hists := make([]obs.LabeledHist, 0, len(names))
			for _, name := range names {
				hists = append(hists, obs.LabeledHist{
					Labels: []obs.Label{{Name: "engine", Value: name}},
					Snap:   snaps[name],
				})
			}
			return hists
		})
}

// acceptsPrometheus reports whether the request negotiates the text
// exposition format. JSON stays the default so existing clients keep
// working; a Prometheus scraper's Accept header selects text.
func acceptsPrometheus(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics")
}
