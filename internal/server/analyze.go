package server

import (
	"errors"
	"net/http"
	"sort"

	"ruu/internal/asm"
	"ruu/internal/dfa"
	"ruu/internal/exec"
	"ruu/internal/livermore"
	"ruu/internal/machine"
)

// POST /v1/analyze is the static pre-screen: the full internal/dfa
// analysis — value-aware program lint (abstract interpretation), the
// hazard census, the static memory-dependence summary, and the
// dataflow-limit oracle (tight and register-only) — without involving
// the scheduler or any pipelined engine. A program with error-severity
// findings (oob-access, uninit-read, ...) is rejected with 422 and the
// findings, so clients can screen submissions before paying for a
// simulation.

// analyzeRequest is the body of POST /v1/analyze: exactly one program
// source, inline assembly or a built-in Livermore kernel name. There
// is no machine block — the analysis uses the default latency model.
type analyzeRequest struct {
	Asm    string `json:"asm,omitempty"`
	Kernel string `json:"kernel,omitempty"`
}

// analyzeFinding is one lint diagnostic in the response, ordered by
// (line, rule, instruction index).
type analyzeFinding struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Line     int    `json:"line"` // source line, 0 when unknown
	Idx      int    `json:"idx"`  // instruction index
	Text     string `json:"text"`
}

// analyzeMemDeps summarises the static memory-dependence edges.
type analyzeMemDeps struct {
	Edges   int `json:"edges"`
	Must    int `json:"must"`
	May     int `json:"may"`
	Carried int `json:"carried"`
}

// analyzeStatic is the purely static program summary (no replay).
type analyzeStatic struct {
	Instructions int            `json:"instructions"`
	Reachable    int            `json:"reachable"`
	Loops        int            `json:"loops"`
	DefUseEdges  int            `json:"def_use_edges"`
	MemDeps      analyzeMemDeps `json:"memdeps"`
}

// analyzeResponse is the body of a successful POST /v1/analyze.
type analyzeResponse struct {
	Program  string           `json:"program"`
	Static   analyzeStatic    `json:"static"`
	Findings []analyzeFinding `json:"findings"`
	Census   dfa.Census       `json:"census"`
	// Bound is the dataflow-limit oracle with the memory-dependence
	// tightening (the default); BoundRegOnly drops it (register
	// dependences only), so the difference is the static win.
	Bound        dfa.Bound `json:"bound"`
	BoundRegOnly dfa.Bound `json:"bound_reg_only"`
}

// analyzeReject is the 422 body when the program fails the pre-screen:
// the error plus every finding (advisory notes included).
type analyzeReject struct {
	Error    string           `json:"error"`
	Findings []analyzeFinding `json:"findings"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	var req analyzeRequest
	if !s.decode(w, r, &req) {
		return
	}

	var (
		name string
		unit *asm.Unit
		st   *exec.State
		err  error
	)
	newState := func() (*exec.State, error) { return exec.NewState(unit.NewMemory()), nil }
	switch {
	case req.Asm != "" && req.Kernel != "":
		writeError(w, http.StatusUnprocessableEntity, "asm and kernel are mutually exclusive")
		return
	case req.Asm != "":
		name = "asm"
		unit, err = asm.Assemble(req.Asm)
		if err != nil {
			var aerr *asm.Error
			if errors.As(err, &aerr) {
				writeJSON(w, http.StatusUnprocessableEntity,
					apiError{Error: aerr.Error(), File: aerr.File, Line: aerr.Line})
				return
			}
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
	case req.Kernel != "":
		k := livermore.ByName(req.Kernel)
		if k == nil {
			writeError(w, http.StatusUnprocessableEntity, "unknown kernel %q", req.Kernel)
			return
		}
		name = k.Name
		unit, err = k.Unit()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		newState = k.NewState
	default:
		writeError(w, http.StatusUnprocessableEntity, "need asm or kernel")
		return
	}

	if st, err = newState(); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	an := dfa.Analyze(unit.Prog)
	ai := an.InterpretState(st)
	findings, nErrors := renderFindings(ai.Lint())
	if nErrors > 0 {
		s.analyzeRejects.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, analyzeReject{
			Error:    "program rejected by static pre-screen",
			Findings: findings,
		})
		return
	}

	deps := ai.MemDeps()
	resp := analyzeResponse{
		Program: name,
		Static: analyzeStatic{
			Instructions: len(unit.Prog.Instructions),
			Reachable:    countTrue(ai.Reached),
			Loops:        len(an.Loops),
			DefUseEdges:  an.DefUseEdges(),
			MemDeps: analyzeMemDeps{
				Edges: len(deps.Edges), Must: deps.Must, May: deps.May, Carried: deps.Carried,
			},
		},
		Findings: findings,
	}

	mc := machine.DefaultConfig()
	bcfg := dfa.BoundConfig{Lat: mc.Lat, FwdLatency: mc.FwdLatency}
	replay := func(run func(*exec.State) error) bool {
		st, err := newState()
		if err == nil {
			err = run(st)
		}
		if err != nil {
			s.analyzeRejects.Add(1)
			writeJSON(w, http.StatusUnprocessableEntity, analyzeReject{
				Error:    err.Error(),
				Findings: findings,
			})
			return false
		}
		return true
	}
	ok := replay(func(st *exec.State) error {
		c, err := dfa.ComputeCensus(unit.Prog, st, 0)
		if err != nil {
			return err
		}
		if c.Trap != nil {
			return c.Trap
		}
		resp.Census = c
		return nil
	})
	if !ok {
		return
	}
	for _, b := range []struct {
		out *dfa.Bound
		cfg dfa.BoundConfig
	}{
		{&resp.Bound, bcfg},
		{&resp.BoundRegOnly, dfa.BoundConfig{Lat: bcfg.Lat, FwdLatency: bcfg.FwdLatency, NoMemDep: true}},
	} {
		cfg := b.cfg
		out := b.out
		if !replay(func(st *exec.State) error {
			bd, err := dfa.ComputeBound(unit.Prog, st, cfg)
			if err != nil {
				return err
			}
			if bd.Trap != nil {
				return bd.Trap
			}
			*out = bd
			return nil
		}) {
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// renderFindings converts lint findings to the response shape, sorted
// by (line, rule, idx), and counts the error-severity ones.
func renderFindings(fs []dfa.Finding) ([]analyzeFinding, int) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Rule != fs[j].Rule {
			return fs[i].Rule < fs[j].Rule
		}
		return fs[i].Idx < fs[j].Idx
	})
	out := make([]analyzeFinding, 0, len(fs))
	nErrors := 0
	for _, f := range fs {
		if f.Rule.Severity() == dfa.SevError {
			nErrors++
		}
		out = append(out, analyzeFinding{
			Rule:     f.Rule.String(),
			Severity: f.Rule.Severity().String(),
			Line:     f.Line,
			Idx:      f.Idx,
			Text:     f.String(),
		})
	}
	return out, nErrors
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
