// Package server implements the ruuserve HTTP/JSON API: simulation as a
// service over the ruu.Runner scheduler. Synchronous single-program
// simulation (POST /v1/simulate) and asynchronous sweep jobs
// (POST /v1/sweep + GET /v1/jobs/{id}) share one worker pool and one
// content-addressed result cache, so identical submissions are answered
// without re-simulating.
//
// The package is one of the two places in the module where goroutines
// are allowed (the other is internal/sched); the ruulint simdeterminism
// pass covers it, and every goroutine/time.Now below carries an
// individually justified //ruulint:ok <pass> marker — see
// docs/ANALYSIS.md for the policy.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ruu"
	"ruu/internal/asm"
	"ruu/internal/fabric"
	"ruu/internal/livermore"
	"ruu/internal/obs"
	"ruu/internal/store"
)

// Defaults for Config's zero values.
const (
	// DefaultMaxRequestBytes bounds a request body (1 MiB holds any
	// plausible assembly source).
	DefaultMaxRequestBytes = 1 << 20
	// DefaultRequestTimeout bounds a synchronous simulation.
	DefaultRequestTimeout = 60 * time.Second
	// DefaultMaxSweepSizes bounds the entry-count list of one sweep job.
	DefaultMaxSweepSizes = 64
	// DefaultMaxActiveJobs bounds concurrently live (queued + running)
	// sweep jobs; beyond it POST /v1/sweep answers 429.
	DefaultMaxActiveJobs = 32
	// RetryAfterSeconds is the Retry-After hint on 429 (queue full) and
	// 503 (draining) responses.
	RetryAfterSeconds = 5
	// StatusClientClosedRequest is the (nginx-convention) status
	// reported when the client disconnected mid-simulation.
	StatusClientClosedRequest = 499
	// DefaultSpanLimit bounds the retained job spans (GET /v1/trace).
	DefaultSpanLimit = 4096
)

// Config parameterises New.
type Config struct {
	// Runner executes the simulations (required).
	Runner *ruu.Runner
	// MaxRequestBytes bounds a request body (default
	// DefaultMaxRequestBytes).
	MaxRequestBytes int64
	// RequestTimeout is the per-request simulation deadline for
	// POST /v1/simulate (default DefaultRequestTimeout). A request's
	// timeout_ms field may shorten it, never extend it.
	RequestTimeout time.Duration
	// MaxActiveJobs bounds concurrently live (queued + running) sweep
	// jobs (default DefaultMaxActiveJobs; negative disables the cap).
	// A full server answers POST /v1/sweep with 429 + Retry-After.
	MaxActiveJobs int
	// Store, when non-nil, is the persistent result store layered
	// under the Runner's cache; the server only exports its counters
	// (the Runner is wired to it by the caller).
	Store *store.Store
	// Fabric, when non-nil, puts the server in coordinator mode:
	// POST /v1/batch items are forwarded to the fabric worker owning
	// each job key instead of simulating locally. Other endpoints keep
	// running on the local pool.
	Fabric *fabric.Coordinator
	// MaxBatchItems bounds the items of one POST /v1/batch (default
	// DefaultMaxBatchItems; negative disables the cap).
	MaxBatchItems int
	// MaxBatchInFlight bounds batch items admitted across all
	// concurrent requests (default DefaultMaxBatchInFlight; negative
	// disables). A batch that would exceed it is shed with 429.
	MaxBatchInFlight int
	// MaxClientInFlight bounds batch items admitted per client
	// (default DefaultMaxClientInFlight; negative disables).
	MaxClientInFlight int
	// Log, when non-nil, receives structured request and job logs.
	Log *slog.Logger
}

// Server is the ruuserve HTTP API. Create with New, serve via Handler,
// stop with StartDrain + Drain (see cmd/ruuserve for the full graceful
// shutdown sequence).
type Server struct {
	runner          *ruu.Runner
	mux             *http.ServeMux
	maxRequestBytes int64
	requestTimeout  time.Duration
	maxActiveJobs   int
	log             *slog.Logger
	reg             *obs.Registry
	spans           *obs.SpanRecorder
	build           BuildInfo

	store             *store.Store
	fabric            *fabric.Coordinator
	maxBatchItems     int
	maxBatchInFlight  int
	maxClientInFlight int

	mu             sync.Mutex
	jobs           map[string]*jobEntry
	nextJob        int
	draining       bool
	latency        map[string]*obs.Hist // per-engine wall-clock ms histograms
	httpReqs       map[string]int64     // "route\x00code" -> request count
	batchInFlight  int                  // admitted /v1/batch items
	clientInFlight map[string]int       // admitted items per client

	qwMu      sync.Mutex
	queueWait *obs.Hist // job queue-wait ms, fed by the pool span hook

	reqSeq          atomic.Int64 // generated request-ID sequence
	simCycles       atomic.Int64
	simInstructions atomic.Int64
	simWallMS       atomic.Int64
	analyzeRejects  atomic.Int64 // programs 422-rejected by the static pre-screen
	batchShed       atomic.Int64 // batches 429-shed by admission control

	jobsWG sync.WaitGroup
}

// jobEntry is one asynchronous sweep job. Its fields are guarded by the
// server mutex; done is closed when the job finishes in any state.
type jobEntry struct {
	id     string
	state  string // "queued", "running", "done", "failed", "cancelled"
	rows   []ruu.SpeedupRow
	errMsg string
	cancel context.CancelFunc
	done   chan struct{}
}

// New returns a Server over cfg.Runner.
func New(cfg Config) *Server {
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxActiveJobs == 0 {
		cfg.MaxActiveJobs = DefaultMaxActiveJobs
	}
	if cfg.MaxBatchItems == 0 {
		cfg.MaxBatchItems = DefaultMaxBatchItems
	}
	if cfg.MaxBatchInFlight == 0 {
		cfg.MaxBatchInFlight = DefaultMaxBatchInFlight
	}
	if cfg.MaxClientInFlight == 0 {
		cfg.MaxClientInFlight = DefaultMaxClientInFlight
	}
	s := &Server{
		runner:          cfg.Runner,
		mux:             http.NewServeMux(),
		maxRequestBytes: cfg.MaxRequestBytes,
		requestTimeout:  cfg.RequestTimeout,
		maxActiveJobs:   cfg.MaxActiveJobs,
		log:             cfg.Log,
		reg:             obs.NewRegistry(),
		spans:           obs.NewSpanRecorder(),
		build:           ReadBuildInfo(),

		store:             cfg.Store,
		fabric:            cfg.Fabric,
		maxBatchItems:     cfg.MaxBatchItems,
		maxBatchInFlight:  cfg.MaxBatchInFlight,
		maxClientInFlight: cfg.MaxClientInFlight,

		jobs:           make(map[string]*jobEntry),
		latency:        make(map[string]*obs.Hist),
		httpReqs:       make(map[string]int64),
		clientInFlight: make(map[string]int),
		queueWait:      obs.NewHist(10, 100), // 10 ms buckets, 1 s overflow
	}
	s.spans.SetLimit(DefaultSpanLimit)
	s.wireMetrics(s.build)
	if p := s.runner.Pool(); p != nil {
		p.SetOnJobSpan(s.onJobSpan)
	}
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("GET /v1/trace", s.handleTrace)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the API's HTTP handler: the mux wrapped in the
// request-ID/access-log middleware.
func (s *Server) Handler() http.Handler { return s.withObservability(s.mux) }

// Registry returns the server's metric registry (for callers adding
// process-level families before serving).
func (s *Server) Registry() *obs.Registry { return s.reg }

// StartDrain puts the server in draining mode: new POSTs are refused
// with 503 while GETs (health, metrics, job polls) keep working, so
// clients can collect results of jobs already in flight.
func (s *Server) StartDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain blocks until every in-flight asynchronous job has finished (the
// jobs keep their results, so a poll after Drain returns the drained
// outcome) or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	// Waiting on a WaitGroup with a deadline requires a helper
	// goroutine; it only signals completion and touches no simulation
	// state. //ruulint:ok simdeterminism
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	// Two-channel wait: "all jobs finished" vs "caller gave up"; job
	// results are unaffected by which arm wins. //ruulint:ok simdeterminism
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// apiError is the JSON error body. File/Line carry assembler
// diagnostics (POST /v1/simulate with bad asm).
type apiError struct {
	Error string `json:"error"`
	File  string `json:"file,omitempty"`
	Line  int    `json:"line,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // response already committed; nothing to do with a late error
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// decode reads a size-limited JSON request body, mapping oversize
// bodies to 413 and malformed JSON to 400. It reports whether the
// request can proceed.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed request: %v", err)
		return false
	}
	return true
}

// refuseIfDraining answers POSTs with 503 + Retry-After during
// shutdown (the hint tells well-behaved clients when to try a
// replacement instance).
func (s *Server) refuseIfDraining(w http.ResponseWriter) bool {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	}
	return draining
}

// activeJobs counts sweep jobs currently queued or running.
func (s *Server) activeJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.state == "queued" || j.state == "running" {
			n++
		}
	}
	return n
}

// machineRequest is the configuration block shared by simulate and
// sweep requests; zero values take the same defaults as ruu.Config.
type machineRequest struct {
	Engine      string `json:"engine"`
	Entries     int    `json:"entries"`
	Paths       int    `json:"paths"`
	TagUnitSize int    `json:"tag_unit_size"`
	Bypass      string `json:"bypass"`
	CounterBits int    `json:"counter_bits"`
	CommitWidth int    `json:"commit_width"`
	LoadRegs    int    `json:"load_regs"`
	Speculate   bool   `json:"speculate"`
}

func (m machineRequest) config() (ruu.Config, error) {
	cfg := ruu.Config{
		Engine:      ruu.EngineKind(m.Engine),
		Entries:     m.Entries,
		Paths:       m.Paths,
		TagUnitSize: m.TagUnitSize,
		Bypass:      ruu.BypassKind(m.Bypass),
		CounterBits: m.CounterBits,
		CommitWidth: m.CommitWidth,
	}
	cfg.Machine.LoadRegs = m.LoadRegs
	cfg.Machine.Speculate = m.Speculate
	// Validate eagerly so a bad engine name is a 422 on the request,
	// not a failed job later.
	if _, err := ruu.NewEngine(cfg); err != nil {
		return ruu.Config{}, err
	}
	return cfg, nil
}

// engineName returns the display name used as the latency-histogram
// key (the configured kind, defaulting like ruu.Config does).
func (m machineRequest) engineName() string {
	if m.Engine == "" {
		return string(ruu.EngineRUU)
	}
	return m.Engine
}

// simulateRequest is the body of POST /v1/simulate: a machine
// configuration plus exactly one program source — inline assembly or a
// built-in Livermore kernel name.
type simulateRequest struct {
	machineRequest
	Asm    string `json:"asm,omitempty"`
	Kernel string `json:"kernel,omitempty"`
	// Verify (default true) checks the final state against the
	// functional reference.
	Verify *bool `json:"verify,omitempty"`
	// TimeoutMS shortens the server's per-request deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// simulateResponse is the body of a successful POST /v1/simulate.
type simulateResponse struct {
	Outcome ruu.SimOutcome `json:"outcome"`
	// ElapsedMS is the service-side wall-clock time, including queueing
	// (near zero on a cache hit).
	ElapsedMS int64 `json:"elapsed_ms"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	var req simulateRequest
	if !s.decode(w, r, &req) {
		return
	}
	cfg, err := req.config()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	var unit *ruu.Unit
	switch {
	case req.Asm != "" && req.Kernel != "":
		writeError(w, http.StatusUnprocessableEntity, "asm and kernel are mutually exclusive")
		return
	case req.Asm != "":
		unit, err = ruu.Assemble(req.Asm)
		if err != nil {
			var aerr *asm.Error
			if errors.As(err, &aerr) {
				writeJSON(w, http.StatusUnprocessableEntity,
					apiError{Error: aerr.Error(), File: aerr.File, Line: aerr.Line})
				return
			}
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
	case req.Kernel != "":
		k := livermore.ByName(req.Kernel)
		if k == nil {
			writeError(w, http.StatusUnprocessableEntity, "unknown kernel %q", req.Kernel)
			return
		}
		unit, err = k.Unit()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	default:
		writeError(w, http.StatusUnprocessableEntity, "need asm or kernel")
		return
	}

	timeout := s.requestTimeout
	if req.TimeoutMS > 0 && time.Duration(req.TimeoutMS)*time.Millisecond < timeout {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(
		obs.WithJobName(r.Context(), "simulate "+req.engineName()), timeout)
	defer cancel()

	verify := req.Verify == nil || *req.Verify
	// Service latency is operational telemetry about this process, not
	// simulation state; the simulated machine never sees it. //ruulint:ok simdeterminism
	start := time.Now()
	out, err := s.runner.RunProgram(ctx, cfg, unit, verify)
	// Same telemetry clock as above; never enters a simulation. //ruulint:ok simdeterminism
	elapsed := time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "simulation exceeded %v", timeout)
		case errors.Is(err, context.Canceled):
			// The client went away; the status code is for the access
			// log (nginx's 499 convention).
			writeError(w, StatusClientClosedRequest, "client closed request")
		default:
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}
	s.observeLatency(req.engineName(), elapsed)
	s.simCycles.Add(out.Cycles)
	s.simInstructions.Add(out.Instructions)
	s.simWallMS.Add(elapsed.Milliseconds())
	writeJSON(w, http.StatusOK, simulateResponse{
		Outcome:   out,
		ElapsedMS: elapsed.Milliseconds(),
	})
}

// sweepRequest is the body of POST /v1/sweep: a machine configuration
// template plus the entry counts to sweep over the Livermore suite.
type sweepRequest struct {
	machineRequest
	Sizes []int `json:"sizes"`
}

// jobResponse is the rendering of one job (202 on create, 200 on poll).
type jobResponse struct {
	ID    string           `json:"id"`
	State string           `json:"state"`
	URL   string           `json:"url"`
	Rows  []ruu.SpeedupRow `json:"rows,omitempty"`
	Error string           `json:"error,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	if s.maxActiveJobs > 0 && s.activeJobs() >= s.maxActiveJobs {
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
		writeError(w, http.StatusTooManyRequests,
			"too many active jobs (%d); retry later", s.maxActiveJobs)
		return
	}
	var req sweepRequest
	if !s.decode(w, r, &req) {
		return
	}
	cfg, err := req.config()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if len(req.Sizes) == 0 {
		writeError(w, http.StatusUnprocessableEntity, "sizes must be non-empty")
		return
	}
	if len(req.Sizes) > DefaultMaxSweepSizes {
		writeError(w, http.StatusUnprocessableEntity, "sizes exceeds %d entries", DefaultMaxSweepSizes)
		return
	}
	for _, n := range req.Sizes {
		if n < 1 {
			writeError(w, http.StatusUnprocessableEntity, "sizes must be positive (got %d)", n)
			return
		}
	}

	// The job outlives the creating request by design: its lifetime is
	// controlled by DELETE /v1/jobs/{id} and server drain, not by the
	// submitting connection. The request ID still rides along so the
	// job's pool spans are attributable to the POST that created them.
	ctx, cancel := context.WithCancel( // detaching is the point here //ruulint:ok ctxflow
		obs.WithRequestID(context.Background(), obs.RequestIDFrom(r.Context())))
	s.mu.Lock()
	s.nextJob++
	j := &jobEntry{
		id:     fmt.Sprintf("job-%d", s.nextJob),
		state:  "queued",
		cancel: cancel,
		done:   make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.mu.Unlock()

	engine := req.engineName()
	s.jobsWG.Add(1)
	// One goroutine per sweep job: the fan-out across kernels happens
	// inside Runner.Sweep on the shared worker pool; this goroutine
	// only waits for it and records the outcome. //ruulint:ok simdeterminism
	go func() {
		defer s.jobsWG.Done()
		defer close(j.done)
		s.setJobState(j, "running", nil, nil)
		// Job wall-clock telemetry, invisible to the simulation.
		//ruulint:ok simdeterminism
		start := time.Now()
		rows, err := s.runner.Sweep(ctx, cfg, req.Sizes)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				s.setJobState(j, "cancelled", nil, err)
			} else {
				s.setJobState(j, "failed", nil, err)
			}
			return
		}
		// Telemetry clock again; the sweep's results are already fixed
		// by its inputs. //ruulint:ok simdeterminism
		s.observeLatency(engine, time.Since(start))
		s.setJobState(j, "done", rows, nil)
	}()

	writeJSON(w, http.StatusAccepted, s.renderJob(j))
}

func (s *Server) setJobState(j *jobEntry, state string, rows []ruu.SpeedupRow, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A cancelled job stays cancelled even if the sweep raced to a
	// result after the DELETE.
	if j.state == "cancelled" && state != "cancelled" {
		return
	}
	j.state = state
	j.rows = rows
	if err != nil {
		j.errMsg = err.Error()
	}
}

func (s *Server) renderJob(j *jobEntry) jobResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	return jobResponse{
		ID:    j.id,
		State: j.state,
		URL:   "/v1/jobs/" + j.id,
		Rows:  j.rows,
		Error: j.errMsg,
	}
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *jobEntry {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
	}
	return j
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, s.renderJob(j))
	}
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	if j.state == "queued" || j.state == "running" {
		j.state = "cancelled"
	}
	delete(s.jobs, j.id)
	s.mu.Unlock()
	j.cancel()
	writeJSON(w, http.StatusOK, map[string]string{"id": j.id, "state": "cancelled"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"draining": draining,
		"build":    s.build,
	})
}

// handleTrace serves the retained scheduler job spans as a Chrome
// trace-event document — open it in Perfetto to see queue wait and
// execution per worker, with request IDs in the slice args.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.spans.WriteChromeTrace(w) // response already committed
}

// observeLatency records one request's wall-clock service time in the
// per-engine histogram (10 ms buckets, 2 s overflow).
func (s *Server) observeLatency(engine string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.latency[engine]
	if h == nil {
		h = obs.NewHist(10, 200)
		s.latency[engine] = h
	}
	h.Observe(d.Milliseconds())
}

// metricsResponse is the body of GET /v1/metrics: scheduler and cache
// counters, job states, and per-engine service latency histograms.
type metricsResponse struct {
	Scheduler any            `json:"scheduler"`
	Jobs      map[string]int `json:"jobs"`
	LatencyMS map[string]any `json:"latency_ms"`
	Draining  bool           `json:"draining"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if acceptsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w) // response already committed
		return
	}
	resp := metricsResponse{
		Jobs:      map[string]int{},
		LatencyMS: map[string]any{},
	}
	if p := s.runner.Pool(); p != nil {
		resp.Scheduler = p.Metrics()
	}
	s.mu.Lock()
	resp.Draining = s.draining
	for _, j := range s.jobs {
		resp.Jobs[j.state]++
	}
	names := make([]string, 0, len(s.latency))
	for name := range s.latency {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		resp.LatencyMS[name] = s.latency[name].Summary()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}
