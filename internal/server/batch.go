package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"

	"ruu"
	"ruu/internal/fabric"
	"ruu/internal/livermore"
	"ruu/internal/obs"
)

// This file is POST /v1/batch: many (configuration, program) items in
// one request, their outcomes streamed back as NDJSON in submission
// order. The deterministic-order contract of internal/sched carries to
// the wire: every item is submitted to the pool before any result is
// awaited, workers complete in whatever order they like, and the
// stream still renders item i's line before item i+1's — so a batch's
// body is byte-identical run to run, cold cache or warm, one worker or
// many. In coordinator mode the same handler forwards each item to the
// fabric worker owning its job key instead of simulating locally.
//
// Admission control sheds whole batches: a request whose items would
// push the global or per-client in-flight count past its cap is
// answered 429 + Retry-After before any work starts, so a burst
// degrades to fast rejections rather than memory growth.

// Batch defaults for Config's zero values.
const (
	// DefaultMaxBatchItems bounds the items of one POST /v1/batch.
	DefaultMaxBatchItems = 1024
	// DefaultMaxBatchInFlight bounds batch items admitted across all
	// concurrent requests.
	DefaultMaxBatchInFlight = 4096
	// DefaultMaxClientInFlight bounds batch items admitted per client
	// (X-Client-ID header, else remote host).
	DefaultMaxClientInFlight = 2048
)

// batchItem is one entry of a batch: a machine configuration plus
// exactly one program source, mirroring POST /v1/simulate minus the
// per-request timeout (the stream is paced by the client reading it).
type batchItem struct {
	machineRequest
	Asm    string `json:"asm,omitempty"`
	Kernel string `json:"kernel,omitempty"`
	// Verify (default true) checks the final state against the
	// functional reference.
	Verify *bool `json:"verify,omitempty"`
}

// batchRequest is the body of POST /v1/batch.
type batchRequest struct {
	Items []batchItem `json:"items"`
}

// batchLine is one NDJSON result line. It carries no timing — only
// fields fixed by the item's content — which is what keeps a batch
// body byte-identical across runs, workers, and cache states.
type batchLine struct {
	Index   int             `json:"index"`
	Outcome *ruu.SimOutcome `json:"outcome,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// batchJob is one validated item ready to run.
type batchJob struct {
	cfg    ruu.Config
	unit   *ruu.Unit
	verify bool
	item   batchItem
}

// clientKey identifies the client for the per-client in-flight cap:
// the X-Client-ID header when present, else the remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admitBatch reserves n in-flight slots for client ck, reporting
// whether the batch is admitted. Rejection reserves nothing.
func (s *Server) admitBatch(ck string, n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maxBatchInFlight > 0 && s.batchInFlight+n > s.maxBatchInFlight {
		return false
	}
	if s.maxClientInFlight > 0 && s.clientInFlight[ck]+n > s.maxClientInFlight {
		return false
	}
	s.batchInFlight += n
	s.clientInFlight[ck] += n
	return true
}

// releaseBatch returns the slots reserved by admitBatch.
func (s *Server) releaseBatch(ck string, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batchInFlight -= n
	s.clientInFlight[ck] -= n
	if s.clientInFlight[ck] <= 0 {
		delete(s.clientInFlight, ck)
	}
}

// buildBatchJob validates one item into a runnable job; the error
// names the offending field (the whole batch is rejected 422 before
// any line is written, so clients never parse a half-stream for a
// typo).
func buildBatchJob(it batchItem) (batchJob, error) {
	cfg, err := it.config()
	if err != nil {
		return batchJob{}, err
	}
	var unit *ruu.Unit
	switch {
	case it.Asm != "" && it.Kernel != "":
		return batchJob{}, errors.New("asm and kernel are mutually exclusive")
	case it.Asm != "":
		unit, err = ruu.Assemble(it.Asm)
		if err != nil {
			return batchJob{}, err
		}
	case it.Kernel != "":
		k := livermore.ByName(it.Kernel)
		if k == nil {
			return batchJob{}, fmt.Errorf("unknown kernel %q", it.Kernel)
		}
		unit, err = k.Unit()
		if err != nil {
			return batchJob{}, err
		}
	default:
		return batchJob{}, errors.New("need asm or kernel")
	}
	return batchJob{
		cfg:    cfg,
		unit:   unit,
		verify: it.Verify == nil || *it.Verify,
		item:   it,
	}, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	var req batchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusUnprocessableEntity, "items must be non-empty")
		return
	}
	if s.maxBatchItems > 0 && len(req.Items) > s.maxBatchItems {
		writeError(w, http.StatusUnprocessableEntity,
			"batch exceeds %d items", s.maxBatchItems)
		return
	}
	jobs := make([]batchJob, len(req.Items))
	for i, it := range req.Items {
		j, err := buildBatchJob(it)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "item %d: %v", i, err)
			return
		}
		jobs[i] = j
	}

	ck := clientKey(r)
	if !s.admitBatch(ck, len(jobs)) {
		s.batchShed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
		writeError(w, http.StatusTooManyRequests,
			"batch load shed (%d items in flight would exceed the cap); retry later", len(jobs))
		return
	}
	defer s.releaseBatch(ck, len(jobs))

	ctx := obs.WithJobName(r.Context(), "batch")

	// Submit every item before awaiting any: the pool (or the fabric)
	// runs them concurrently while the stream below consumes results
	// strictly in index order.
	waits := make([]func(context.Context) (ruu.SimOutcome, error), len(jobs))
	var submitErr error
	for i, j := range jobs {
		if submitErr != nil {
			break
		}
		if s.fabric != nil {
			waits[i] = s.submitFabric(ctx, j)
			continue
		}
		wait, err := s.runner.SubmitProgram(ctx, j.cfg, j.unit, j.verify)
		if err != nil {
			// The pool refused (cancelled/closed): items from here on
			// carry the same error in their lines.
			submitErr = err
			break
		}
		waits[i] = wait
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := range jobs {
		line := batchLine{Index: i}
		switch {
		case waits[i] == nil:
			line.Error = fmt.Sprintf("not submitted: %v", submitErr)
		default:
			out, err := waits[i](ctx)
			if err != nil {
				line.Error = err.Error()
			} else {
				line.Outcome = &out
			}
		}
		if err := enc.Encode(line); err != nil {
			return // client went away; remaining results stay cached
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// submitFabric enqueues one batch item as a pool job that forwards the
// item to the fabric worker owning its key, and returns the wait
// function. The pool provides the concurrency (its workers block on
// the HTTP round trip instead of simulating) and its cache/store layer
// keeps fabric answers content-addressed on the coordinator too.
func (s *Server) submitFabric(ctx context.Context, j batchJob) func(context.Context) (ruu.SimOutcome, error) {
	key := ruu.ProgramKey(j.cfg, j.unit, j.verify)
	body, err := json.Marshal(simulateRequest{
		machineRequest: j.item.machineRequest,
		Asm:            j.item.Asm,
		Kernel:         j.item.Kernel,
		Verify:         j.item.Verify,
	})
	if err != nil {
		return func(context.Context) (ruu.SimOutcome, error) {
			return ruu.SimOutcome{}, err
		}
	}
	run := func(ctx context.Context) (any, error) {
		res, err := s.fabric.Do(ctx, fabric.Key(key), "/v1/simulate", body)
		if err != nil {
			return nil, err
		}
		if res.Status != http.StatusOK {
			var apiErr apiError
			if json.Unmarshal(res.Body, &apiErr) == nil && apiErr.Error != "" {
				// Surface the worker's own error text (a verify
				// mismatch reads the same whether simulated locally or
				// remotely).
				return nil, errors.New(apiErr.Error)
			}
			return nil, fmt.Errorf("worker %s: status %d", res.Worker, res.Status)
		}
		var sr simulateResponse
		if err := json.Unmarshal(res.Body, &sr); err != nil {
			return nil, fmt.Errorf("worker %s: bad response: %v", res.Worker, err)
		}
		// Only the outcome survives — elapsed_ms is the worker's wall
		// clock and must not leak into the deterministic stream.
		return sr.Outcome, nil
	}
	p := s.runner.Pool()
	if p == nil {
		return func(ctx context.Context) (ruu.SimOutcome, error) {
			v, err := run(ctx)
			if err != nil {
				return ruu.SimOutcome{}, err
			}
			return v.(ruu.SimOutcome), nil
		}
	}
	t, err := p.Submit(ctx, key, run)
	if err != nil {
		return func(context.Context) (ruu.SimOutcome, error) {
			return ruu.SimOutcome{}, err
		}
	}
	return func(ctx context.Context) (ruu.SimOutcome, error) {
		v, err := t.Wait(ctx)
		if err != nil {
			return ruu.SimOutcome{}, err
		}
		return v.(ruu.SimOutcome), nil
	}
}
