package server

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ruu/internal/livermore"
)

// Regenerate the golden analyze responses after an intentional
// analysis or latency-model change:
//
//	go test ./internal/server -run TestAnalyzeKernelsGolden -update
var update = flag.Bool("update", false, "rewrite testdata golden files")

// TestAnalyzeKernelsGolden pins the exact POST /v1/analyze response for
// every built-in kernel. The analysis is deterministic, so any drift is
// a real change to the lint rules, the census, the memory-dependence
// summary, or the dataflow bound.
func TestAnalyzeKernelsGolden(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, k := range livermore.Kernels() {
		rec := postJSON(t, s.Handler(), "/v1/analyze", map[string]string{"kernel": k.Name})
		if rec.Code != 200 {
			t.Fatalf("%s: status %d: %s", k.Name, rec.Code, rec.Body.String())
		}
		got := rec.Body.Bytes()
		path := filepath.Join("testdata", "analyze_"+k.Name+".json")
		if *update {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", k.Name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: response drifted from %s (run with -update if intentional):\ngot:\n%s",
				k.Name, path, got)
		}
	}
}

func TestAnalyzeInlineAsm(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/analyze", map[string]string{"asm": `
    lai   A0, 3
    lai   A1, 50
    lai   A3, 0
loop:
    sta   A0, 0(A1)
    lda   A2, 0(A1)
    adda  A3, A3, A2
    addai A0, A0, -1
    janz  loop
    halt
`})
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[analyzeResponse](t, rec)
	if resp.Program != "asm" {
		t.Errorf("program = %q, want asm", resp.Program)
	}
	if resp.Static.Loops != 1 {
		t.Errorf("loops = %d, want 1", resp.Static.Loops)
	}
	if resp.Static.MemDeps.Must == 0 || resp.Static.MemDeps.Carried == 0 {
		t.Errorf("memdeps = %+v, want must and carried edges", resp.Static.MemDeps)
	}
	if resp.Bound.Cycles <= 0 || resp.BoundRegOnly.Cycles <= 0 {
		t.Errorf("bounds not computed: %+v / %+v", resp.Bound, resp.BoundRegOnly)
	}
	if resp.Bound.Cycles < resp.BoundRegOnly.Cycles {
		t.Errorf("tight bound %d below register-only bound %d",
			resp.Bound.Cycles, resp.BoundRegOnly.Cycles)
	}
	if resp.Bound.MemDepEdges == 0 {
		t.Errorf("store→load replay found no memory-dependence edges: %+v", resp.Bound)
	}
}

// TestAnalyzeRejectsUninitRead checks the pre-screen 422: an
// error-severity finding rejects the program with the findings in the
// body, before any replay.
func TestAnalyzeRejectsUninitRead(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/analyze", map[string]string{"asm": `
    addai A1, A2, 1
    halt
`})
	if rec.Code != 422 {
		t.Fatalf("status %d, want 422: %s", rec.Code, rec.Body.String())
	}
	rej := decodeBody[analyzeReject](t, rec)
	if rej.Error == "" || len(rej.Findings) == 0 {
		t.Fatalf("reject body incomplete: %+v", rej)
	}
	if rej.Findings[0].Rule != "uninit-read" || rej.Findings[0].Severity != "error" {
		t.Errorf("finding = %+v, want error-severity uninit-read", rej.Findings[0])
	}
}

// TestAnalyzeRejectsOOBAccess checks the value-range rule gates: a
// provably out-of-bounds access is a 422 without simulating.
func TestAnalyzeRejectsOOBAccess(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/analyze", map[string]string{"asm": `
    lai   A1, -5
    lda   A2, 0(A1)
    halt
`})
	if rec.Code != 422 {
		t.Fatalf("status %d, want 422: %s", rec.Code, rec.Body.String())
	}
	rej := decodeBody[analyzeReject](t, rec)
	found := false
	for _, f := range rej.Findings {
		if f.Rule == "oob-access" {
			found = true
		}
	}
	if !found {
		t.Errorf("findings %+v missing oob-access", rej.Findings)
	}
}

// TestAnalyzeNotesDoNotReject checks advisory notes ride along in a 200
// response instead of gating.
func TestAnalyzeNotesDoNotReject(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/analyze", map[string]string{"asm": `
    lai   A0, 3
    lai   A1, 50
    lai   A6, 0
loop:
    lda   A2, 0(A1)
    adda  A6, A6, A2
    addai A0, A0, -1
    janz  loop
    halt
`})
	if rec.Code != 200 {
		t.Fatalf("status %d, want 200: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[analyzeResponse](t, rec)
	found := false
	for _, f := range resp.Findings {
		if f.Rule == "loop-invariant-load" && f.Severity == "note" {
			found = true
		}
	}
	if !found {
		t.Errorf("findings %+v missing the advisory loop-invariant-load note", resp.Findings)
	}
}

func TestAnalyzeValidationErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, tc := range []struct {
		name string
		body map[string]string
	}{
		{"empty", map[string]string{}},
		{"both", map[string]string{"asm": "halt", "kernel": "LLL1"}},
		{"unknown kernel", map[string]string{"kernel": "LLL99"}},
		{"bad asm", map[string]string{"asm": "florp A1, A2"}},
	} {
		rec := postJSON(t, s.Handler(), "/v1/analyze", tc.body)
		if rec.Code != 422 {
			t.Errorf("%s: status %d, want 422: %s", tc.name, rec.Code, rec.Body.String())
		}
	}
}

// TestAnalyzeMetrics checks the Prometheus wiring: the /v1/analyze
// route label in the request family and the reject counter.
func TestAnalyzeMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	postJSON(t, s.Handler(), "/v1/analyze", map[string]string{"kernel": "LLL1"})
	postJSON(t, s.Handler(), "/v1/analyze", map[string]string{"asm": "addai A1, A2, 1\nhalt"})
	body := scrapePrometheus(t, s.Handler())
	for _, want := range []string{
		`ruu_http_requests_total{route="POST /v1/analyze",code="200"} 1`,
		`ruu_http_requests_total{route="POST /v1/analyze",code="422"} 1`,
		`ruu_analyze_reject_total 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
