package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promLineRE matches one exposition sample line (name, optional
// labels, float value); comment lines are checked separately.
var promLineRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

// scrapePrometheus fetches /metrics with a text Accept header and
// strictly parses the body: every non-empty line is a HELP/TYPE
// comment or a well-formed sample, and every sample's family has a
// preceding TYPE.
func scrapePrometheus(t *testing.T, h http.Handler) string {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	body := rec.Body.String()
	types := map[string]bool{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			f := strings.SplitN(line, " ", 4)
			if len(f) < 4 {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if f[1] == "TYPE" {
				types[f[2]] = true
			}
			continue
		}
		if !promLineRE.MatchString(line) {
			t.Fatalf("line %d: unparseable sample %q", ln+1, line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suffix); b != name && types[b] {
				base = b
			}
		}
		if !types[base] {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, name)
		}
	}
	return body
}

func TestPrometheusMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	// Drive some traffic so counters and histograms are non-trivial.
	rec := postJSON(t, h, "/v1/simulate", map[string]any{"kernel": "LLL3"})
	if rec.Code != http.StatusOK {
		t.Fatalf("simulate = %d: %s", rec.Code, rec.Body.String())
	}
	body := scrapePrometheus(t, h)
	for _, want := range []string{
		"ruu_build_info",
		`ruu_http_requests_total{route="POST /v1/simulate",code="200"} 1`,
		"ruu_sched_workers",
		"ruu_sched_jobs_total{outcome=\"completed\"}",
		"ruu_cache_hits_total",
		"ruu_sched_queue_wait_ms_bucket",
		"ruu_sim_latency_ms_count{engine=\"ruu\"} 1",
		"ruu_sim_cycles_total",
		"ruu_sim_instructions_total",
		"ruu_draining 0",
		"ruu_sweep_jobs{state=\"done\"}",
		"ruu_fabric_routed_total 0",
		"ruu_fabric_retried_total 0",
		"ruu_fabric_shed_total 0",
		"# TYPE ruu_fabric_worker_healthy gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// JSON stays the default rendering for clients that don't negotiate.
	plain := get(t, h, "/metrics")
	if ct := plain.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("default /metrics Content-Type = %q, want application/json", ct)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	// A client-supplied ID is echoed; a generated one is assigned
	// otherwise.
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "client-abc")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "client-abc" {
		t.Errorf("echoed request id = %q", got)
	}
	rec2 := get(t, h, "/healthz")
	if got := rec2.Header().Get("X-Request-ID"); !strings.HasPrefix(got, "req-") {
		t.Errorf("generated request id = %q, want req-N", got)
	}

	// The ID rides into pool job spans: run a simulation and check the
	// trace endpoint mentions it.
	req3 := httptest.NewRequest("POST", "/v1/simulate",
		strings.NewReader(`{"kernel":"LLL3"}`))
	req3.Header.Set("X-Request-ID", "trace-me")
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req3)
	if rec3.Code != http.StatusOK {
		t.Fatalf("simulate = %d: %s", rec3.Code, rec3.Body.String())
	}
	tr := get(t, h, "/v1/trace")
	if tr.Code != http.StatusOK {
		t.Fatalf("GET /v1/trace = %d", tr.Code)
	}
	if !json.Valid(tr.Body.Bytes()) {
		t.Fatalf("trace is not valid JSON: %s", tr.Body.String())
	}
	if !strings.Contains(tr.Body.String(), "trace-me") {
		t.Errorf("trace does not carry the request id: %s", tr.Body.String())
	}
	if !strings.Contains(tr.Body.String(), "simulate ruu") {
		t.Errorf("trace does not carry the job name: %s", tr.Body.String())
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := get(t, s.Handler(), "/healthz")
	body := decodeBody[map[string]any](t, rec)
	build, ok := body["build"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing build info: %v", body)
	}
	gv, _ := build["go_version"].(string)
	if !strings.HasPrefix(gv, "go") {
		t.Errorf("go_version = %q", gv)
	}
	if mod, _ := build["module"].(string); mod != "ruu" {
		t.Errorf("module = %q, want ruu", mod)
	}
}

func TestDrainingSetsRetryAfter(t *testing.T) {
	s := newTestServer(t, Config{})
	s.StartDrain()
	rec := postJSON(t, s.Handler(), "/v1/sweep",
		map[string]any{"sizes": []int{4}})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining sweep = %d", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != strconv.Itoa(RetryAfterSeconds) {
		t.Errorf("Retry-After = %q, want %d", got, RetryAfterSeconds)
	}
}

func TestQueueFullIs429WithRetryAfter(t *testing.T) {
	s := newTestServer(t, Config{MaxActiveJobs: -1})
	h := s.Handler()
	// With the cap disabled, submissions are unbounded.
	rec := postJSON(t, h, "/v1/sweep", map[string]any{"sizes": []int{2}})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("uncapped sweep = %d: %s", rec.Code, rec.Body.String())
	}

	// Cap of 1: a job pinned in "queued" state blocks the next POST.
	s2 := newTestServer(t, Config{MaxActiveJobs: 1})
	s2.mu.Lock()
	s2.jobs["job-held"] = &jobEntry{id: "job-held", state: "running",
		cancel: func() {}, done: make(chan struct{})}
	s2.mu.Unlock()
	rec2 := postJSON(t, s2.Handler(), "/v1/sweep", map[string]any{"sizes": []int{2}})
	if rec2.Code != http.StatusTooManyRequests {
		t.Fatalf("capped sweep = %d: %s", rec2.Code, rec2.Body.String())
	}
	if got := rec2.Header().Get("Retry-After"); got != strconv.Itoa(RetryAfterSeconds) {
		t.Errorf("Retry-After = %q, want %d", got, RetryAfterSeconds)
	}
}
