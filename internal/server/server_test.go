package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ruu"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Runner == nil {
		r := ruu.NewRunner(ruu.RunnerConfig{Workers: 4})
		t.Cleanup(r.Close)
		cfg.Runner = r
	}
	return New(cfg)
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func decodeBody[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestSimulateKernel(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/simulate", map[string]any{
		"engine": "ruu", "entries": 12, "kernel": "LLL1",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	resp := decodeBody[simulateResponse](t, rec)
	if !resp.Outcome.Verified || resp.Outcome.Cycles == 0 {
		t.Errorf("unexpected outcome: %+v", resp.Outcome)
	}
	if !strings.HasPrefix(resp.Outcome.Engine, "ruu") {
		t.Errorf("engine = %q", resp.Outcome.Engine)
	}
}

func TestSimulateInlineAsm(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/simulate", map[string]any{
		"engine": "rstu", "entries": 10,
		"asm": "    lai A1, 7\n    halt\n",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	resp := decodeBody[simulateResponse](t, rec)
	if resp.Outcome.Instructions != 2 || !resp.Outcome.Verified {
		t.Errorf("outcome = %+v", resp.Outcome)
	}
}

func TestMalformedAsmIs422WithLine(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/simulate", map[string]any{
		"asm": "    lai A1, 7\n    bogus B9\n    halt\n",
	})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", rec.Code, rec.Body)
	}
	e := decodeBody[apiError](t, rec)
	if e.Line != 2 {
		t.Errorf("diagnostic line = %d, want 2 (%+v)", e.Line, e)
	}
	if !strings.Contains(e.Error, "line 2") {
		t.Errorf("error %q does not carry the line", e.Error)
	}
}

func TestValidationErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"unknown engine", "/v1/simulate", map[string]any{"engine": "warp-drive", "kernel": "LLL1"}, 422},
		{"unknown kernel", "/v1/simulate", map[string]any{"kernel": "LLL99"}, 422},
		{"no program", "/v1/simulate", map[string]any{"engine": "ruu"}, 422},
		{"both programs", "/v1/simulate", map[string]any{"kernel": "LLL1", "asm": "halt"}, 422},
		{"unknown field", "/v1/simulate", map[string]any{"krenel": "LLL1"}, 400},
		{"empty sizes", "/v1/sweep", map[string]any{"engine": "ruu"}, 422},
		{"negative size", "/v1/sweep", map[string]any{"sizes": []int{3, -1}}, 422},
	}
	for _, c := range cases {
		rec := postJSON(t, s.Handler(), c.path, c.body)
		if rec.Code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, rec.Code, c.want, rec.Body)
		}
	}
}

func TestMalformedJSONIs400(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}

func TestOversizeRequestIs413(t *testing.T) {
	s := newTestServer(t, Config{MaxRequestBytes: 256})
	rec := postJSON(t, s.Handler(), "/v1/simulate", map[string]any{
		"asm": strings.Repeat("; padding\n", 100) + "halt\n",
	})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", rec.Code, rec.Body)
	}
}

func TestClientDisconnectIs499(t *testing.T) {
	s := newTestServer(t, Config{})
	body, _ := json.Marshal(map[string]any{"kernel": "LLL1"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client has already gone away
	req := httptest.NewRequest("POST", "/v1/simulate", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want %d: %s", rec.Code, StatusClientClosedRequest, rec.Body)
	}
}

func TestDeadlineIs504(t *testing.T) {
	s := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	rec := postJSON(t, s.Handler(), "/v1/simulate", map[string]any{"kernel": "LLL1"})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body)
	}
}

func TestUnknownJobIs404(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec := get(t, s.Handler(), "/v1/jobs/job-999"); rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
}

func pollJob(t *testing.T, h http.Handler, url string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		j := decodeBody[jobResponse](t, get(t, h, url))
		switch j.State {
		case "done", "failed", "cancelled":
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", url, j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServiceIntegration is the ISSUE's acceptance scenario over real
// HTTP: submit a sweep, poll the async job to completion, check the
// rows against the serial harness, resubmit and see the cache hits in
// /metrics, then shut down gracefully with a job in flight and verify
// the drained job still serves its result.
func TestServiceIntegration(t *testing.T) {
	runner := ruu.NewRunner(ruu.RunnerConfig{Workers: 4})
	defer runner.Close()
	s := New(Config{Runner: runner})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sizes := []int{3, 6}
	sweepBody, _ := json.Marshal(map[string]any{
		"engine": "rstu", "sizes": sizes,
	})
	httpPost := func() jobResponse {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(sweepBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("sweep status %d: %s", resp.StatusCode, raw)
		}
		var j jobResponse
		if err := json.Unmarshal(raw, &j); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
		return j
	}

	// 1. Submit and poll to completion.
	job := httpPost()
	if job.ID == "" || job.URL == "" {
		t.Fatalf("bad 202 body: %+v", job)
	}
	done := pollJob(t, s.Handler(), job.URL)
	if done.State != "done" || len(done.Rows) != len(sizes) {
		t.Fatalf("job finished as %+v", done)
	}

	// 2. The rows match the serial harness byte for byte.
	serial, err := ruu.Sweep(ruu.Config{Engine: ruu.EngineRSTU}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%#v", done.Rows), fmt.Sprintf("%#v", serial); got != want {
		t.Errorf("HTTP sweep diverges from serial:\n got %s\nwant %s", got, want)
	}

	// 3. Resubmit: every kernel run is answered from the cache.
	job2 := httpPost()
	done2 := pollJob(t, s.Handler(), job2.URL)
	if done2.State != "done" {
		t.Fatalf("resubmitted job finished as %+v", done2)
	}
	m := decodeBody[map[string]any](t, get(t, s.Handler(), "/metrics"))
	sched, _ := m["scheduler"].(map[string]any)
	cache, _ := sched["cache"].(map[string]any)
	if hits, _ := cache["hits"].(float64); hits == 0 {
		t.Errorf("/metrics shows no cache hits after resubmission: %v", m)
	}
	if lat, _ := m["latency_ms"].(map[string]any); lat["rstu"] == nil {
		t.Errorf("/metrics carries no rstu latency histogram: %v", m["latency_ms"])
	}

	// 4. Graceful shutdown with a job in flight: drain, then collect
	// the drained job's result.
	inflight := httpPost()
	s.StartDrain()
	if rec := postJSON(t, s.Handler(), "/v1/sweep", map[string]any{"sizes": sizes}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted a POST (status %d)", rec.Code)
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelDrain()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	final := decodeBody[jobResponse](t, get(t, s.Handler(), inflight.URL))
	if final.State != "done" || len(final.Rows) != len(sizes) {
		t.Fatalf("drained job is %+v, want done with %d rows", final, len(sizes))
	}
	h := decodeBody[map[string]any](t, get(t, s.Handler(), "/healthz"))
	if h["draining"] != true {
		t.Errorf("healthz does not report draining: %v", h)
	}
}

func TestJobCancellation(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postJSON(t, s.Handler(), "/v1/sweep", map[string]any{
		"engine": "ruu", "sizes": []int{3, 6, 10, 15},
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("sweep status %d: %s", rec.Code, rec.Body)
	}
	j := decodeBody[jobResponse](t, rec)
	delReq := httptest.NewRequest("DELETE", j.URL, nil)
	delRec := httptest.NewRecorder()
	s.Handler().ServeHTTP(delRec, delReq)
	if delRec.Code != http.StatusOK {
		t.Fatalf("delete status %d: %s", delRec.Code, delRec.Body)
	}
	if rec := get(t, s.Handler(), j.URL); rec.Code != http.StatusNotFound {
		t.Fatalf("deleted job still served (status %d)", rec.Code)
	}
	// Drain must not hang on the cancelled job.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after cancel: %v", err)
	}
}

func TestMetricsAndHealthzShape(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec := get(t, s.Handler(), "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	rec := get(t, s.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	m := decodeBody[map[string]any](t, rec)
	sched, ok := m["scheduler"].(map[string]any)
	if !ok {
		t.Fatalf("metrics carries no scheduler block: %s", rec.Body)
	}
	if _, ok := sched["workers"]; !ok {
		t.Errorf("scheduler block lacks workers: %v", sched)
	}
}
