// Package bench is the repository's benchmark suite as a library: the
// same workloads `go test -bench .` runs (bench_test.go delegates
// here), callable from cmd/ruubench without exec'ing the go toolchain,
// so the tracked BENCH_*.json trajectory and the ad-hoc test
// benchmarks can never drift apart.
//
// Each benchmark is a function of (b B, n int): b carries the subset
// of *testing.B the workloads need (fatals, custom metrics, timer
// reset), and n is the iteration count — passed explicitly because
// testing.B.N is a field, not a method. Under `go test` the adapter is
// the *testing.B itself; under cmd/ruubench it is a small rig that
// measures time and allocations around the call.
package bench

import (
	"context"
	"sync"
	"time"

	"ruu"
	"ruu/internal/asm"
	"ruu/internal/exec"
	"ruu/internal/livermore"
	"ruu/internal/machine"
)

// B is the benchmark context: the methods of *testing.B the suite
// uses, so *testing.B satisfies it directly.
type B interface {
	Fatal(args ...any)
	Fatalf(format string, args ...any)
	ReportMetric(n float64, unit string)
	ResetTimer()
	Elapsed() time.Duration
	Helper()
}

// Benchmark is one named workload.
type Benchmark struct {
	// Name is the benchmark's identifier, matching the Benchmark<Name>
	// function in bench_test.go.
	Name string
	// Run executes n iterations under b.
	Run func(b B, n int)
}

// Suite returns the full benchmark list in its canonical order (the
// order BENCH_*.json files record).
func Suite() []Benchmark {
	return []Benchmark{
		{"Table1", func(b B, n int) { benchConfig(b, n, ruu.Config{Engine: ruu.EngineSimple}) }},
		{"Table2", func(b B, n int) { benchConfig(b, n, ruu.Config{Engine: ruu.EngineRSTU, Entries: 10}) }},
		{"Table2Sweep", benchTable2Sweep},
		{"Table3", func(b B, n int) { benchConfig(b, n, ruu.Config{Engine: ruu.EngineRSTU, Entries: 10, Paths: 2}) }},
		{"Table4", func(b B, n int) {
			benchConfig(b, n, ruu.Config{Engine: ruu.EngineRUU, Entries: 12, Bypass: ruu.BypassFull})
		}},
		{"Table5", func(b B, n int) {
			benchConfig(b, n, ruu.Config{Engine: ruu.EngineRUU, Entries: 12, Bypass: ruu.BypassNone})
		}},
		{"Table6", func(b B, n int) {
			benchConfig(b, n, ruu.Config{Engine: ruu.EngineRUU, Entries: 12, Bypass: ruu.BypassLimited})
		}},
		{"Table7", func(b B, n int) {
			cfg := ruu.Config{Engine: ruu.EngineRUU, Entries: 20, Bypass: ruu.BypassFull}
			cfg.Machine.Speculate = true
			benchConfig(b, n, cfg)
		}},
		{"AblationRSOrganisation", benchAblationRSOrganisation},
		{"AblationCounterWidth", benchAblationCounterWidth},
		{"AblationLoadRegs", benchAblationLoadRegs},
		{"SweepSerial", benchSweepSerial},
		{"SweepParallel", benchSweepParallel},
		{"CacheHit", benchCacheHit},
		{"SimulatorRUU", func(b B, n int) { benchKernelEngine(b, n, ruu.Config{Engine: ruu.EngineRUU, Entries: 12}) }},
		{"SimulatorRUUSpeculative", func(b B, n int) {
			cfg := ruu.Config{Engine: ruu.EngineRUU, Entries: 12}
			cfg.Machine = machine.Config{Speculate: true}
			benchKernelEngine(b, n, cfg)
		}},
		{"SimulatorRSTU", func(b B, n int) { benchKernelEngine(b, n, ruu.Config{Engine: ruu.EngineRSTU, Entries: 10}) }},
		{"SimulatorSimple", func(b B, n int) { benchKernelEngine(b, n, ruu.Config{Engine: ruu.EngineSimple}) }},
		{"ProbeOverheadOff", func(b B, n int) {
			benchKernelEngine(b, n, ruu.Config{Engine: ruu.EngineRUU, Entries: 12})
		}},
		{"ProbeOverheadMetrics", func(b B, n int) {
			cfg := ruu.Config{Engine: ruu.EngineRUU, Entries: 12}
			cfg.Machine.Probe = ruu.NewMetricsCollector()
			benchKernelEngine(b, n, cfg)
		}},
		{"FunctionalExecutor", benchFunctionalExecutor},
		{"Assembler", benchAssembler},
		{"PreciseInterruptRoundTrip", benchPreciseInterruptRoundTrip},
		{"Ruulint", benchRuulint},
		{"RuulintCheckOnly", benchRuulintCheckOnly},
		{"RuulintWarm", benchRuulintWarm},
		{"DFAAnalyze", benchDFAAnalyze},
		{"BoundTightened", benchBoundTightened},
		{"StoreWrite", benchStoreWrite},
		{"StoreRead", benchStoreRead},
		{"BatchThroughput1", func(b B, n int) { benchBatchThroughput(b, n, 1) }},
		{"BatchThroughput2", func(b B, n int) { benchBatchThroughput(b, n, 2) }},
		{"BatchThroughput4", func(b B, n int) { benchBatchThroughput(b, n, 4) }},
	}
}

// ByName returns the named benchmark, nil when unknown.
func ByName(name string) *Benchmark {
	for _, bm := range Suite() {
		if bm.Name == name {
			return &bm
		}
	}
	return nil
}

var baselineCyclesOnce sync.Once
var baselineCycles int64

func baseline() int64 {
	baselineCyclesOnce.Do(func() {
		runs, err := ruu.RunKernels(ruu.Config{Engine: ruu.EngineSimple})
		if err != nil {
			panic(err)
		}
		baselineCycles = ruu.Totals(runs).Cycles
	})
	return baselineCycles
}

// benchConfig runs the whole kernel suite under cfg once per iteration
// and reports simulated cycles/second plus the table's speedup and
// issue rate.
func benchConfig(b B, n int, cfg ruu.Config) {
	b.Helper()
	base := baseline()
	var total ruu.KernelRun
	for i := 0; i < n; i++ {
		runs, err := ruu.RunKernels(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total = ruu.Totals(runs)
	}
	b.ReportMetric(float64(total.Cycles)*float64(n)/b.Elapsed().Seconds(), "simcycles/s")
	b.ReportMetric(float64(base)/float64(total.Cycles), "speedup")
	b.ReportMetric(total.IssueRate(), "issue-rate")
}

func benchTable2Sweep(b B, n int) {
	for i := 0; i < n; i++ {
		if _, err := ruu.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAblationRSOrganisation(b B, n int) {
	for i := 0; i < n; i++ {
		if _, err := ruu.AblationRSOrganisation(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAblationCounterWidth(b B, n int) {
	for i := 0; i < n; i++ {
		if _, err := ruu.AblationCounterWidth(15); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAblationLoadRegs(b B, n int) {
	for i := 0; i < n; i++ {
		if _, err := ruu.AblationLoadRegs(15); err != nil {
			b.Fatal(err)
		}
	}
}

// sweepBenchSizes keeps the scheduler benchmarks to a representative
// slice of the Table 2 sweep so one iteration stays sub-second.
var sweepBenchSizes = []int{3, 6, 10, 15}

func benchSweepSerial(b B, n int) {
	for i := 0; i < n; i++ {
		if _, err := ruu.Sweep(ruu.Config{Engine: ruu.EngineRSTU}, sweepBenchSizes); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSweepParallel(b B, n int) {
	r := ruu.NewRunner(ruu.RunnerConfig{CacheEntries: -1})
	defer r.Close()
	for i := 0; i < n; i++ {
		if _, err := r.Sweep(context.Background(), ruu.Config{Engine: ruu.EngineRSTU}, sweepBenchSizes); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCacheHit(b B, n int) {
	r := ruu.NewRunner(ruu.RunnerConfig{})
	defer r.Close()
	if _, err := r.Sweep(context.Background(), ruu.Config{Engine: ruu.EngineRSTU}, sweepBenchSizes); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < n; i++ {
		if _, err := r.Sweep(context.Background(), ruu.Config{Engine: ruu.EngineRSTU}, sweepBenchSizes); err != nil {
			b.Fatal(err)
		}
	}
}

func benchKernelEngine(b B, n int, cfg ruu.Config) {
	b.Helper()
	k := livermore.ByName("LLL1")
	unit, err := k.Unit()
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	for i := 0; i < n; i++ {
		m, err := ruu.NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		st, err := k.NewState()
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run(unit.Prog, st)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Stats.Cycles
	}
	b.ReportMetric(float64(cycles)*float64(n)/b.Elapsed().Seconds(), "simcycles/s")
}

func benchFunctionalExecutor(b B, n int) {
	k := livermore.ByName("LLL3")
	unit, err := k.Unit()
	if err != nil {
		b.Fatal(err)
	}
	var executed int64
	for i := 0; i < n; i++ {
		st, err := k.NewState()
		if err != nil {
			b.Fatal(err)
		}
		res, err := st.Run(unit.Prog, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		executed = res.Executed
	}
	b.ReportMetric(float64(executed)*float64(n)/b.Elapsed().Seconds(), "instr/s")
}

func benchAssembler(b B, n int) {
	src := livermore.ByName("LLL8").Source
	for i := 0; i < n; i++ {
		if _, err := asm.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPreciseInterruptRoundTrip(b B, n int) {
	k := livermore.ByName("LLL12")
	unit, err := k.Unit()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		m, err := ruu.NewMachine(ruu.Config{Engine: ruu.EngineRUU, Entries: 12})
		if err != nil {
			b.Fatal(err)
		}
		count := 0
		m.SetFaultInjector(func(pc int, addr int64) *exec.Trap {
			count++
			if count == 500 {
				return &exec.Trap{Kind: exec.TrapPageFault, PC: pc, Addr: addr}
			}
			return nil
		})
		m.SetHandler(func(st *exec.State, ev ruu.InterruptEvent) ruu.InterruptAction {
			return ruu.InterruptAction{Resume: true, ResumePC: ev.Trap.PC}
		})
		st, err := k.NewState()
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run(unit.Prog, st)
		if err != nil {
			b.Fatal(err)
		}
		if res.Trap != nil || res.Stats.Interrupts != 1 {
			b.Fatalf("unexpected outcome: trap=%v interrupts=%d", res.Trap, res.Stats.Interrupts)
		}
	}
}
