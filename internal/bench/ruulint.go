package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ruu/internal/analysis"
)

// The ruulint benchmarks track the analyzer fast path in the
// BENCH_*.json trajectory. Ruulint's ns/op is the cost of one full
// lint invocation (load + shared snapshot + every pass); the old
// `make lint` paid that twice (one text run, one JSON run), so the
// single-invocation Makefile is a structural ≥2× wall-clock
// improvement, and any regression in the shared-snapshot machinery
// shows up here as ruulint_ns growth. RuulintCheckOnly isolates the
// pass-execution phase off a cached load, which is what the shared
// snapshot (one callgraph for every pass) actually optimises.

var (
	lintModOnce sync.Once
	lintMod     *analysis.Module
	lintModErr  error
)

// lintModule loads the repository once for the lint benchmarks.
func lintModule(b B) *analysis.Module {
	lintModOnce.Do(func() {
		dir, err := os.Getwd()
		if err != nil {
			lintModErr = err
			return
		}
		for {
			if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
				break
			}
			parent := filepath.Dir(dir)
			if parent == dir {
				lintModErr = fmt.Errorf("no go.mod above the working directory")
				return
			}
			dir = parent
		}
		lintMod, lintModErr = analysis.Load(dir)
	})
	if lintModErr != nil {
		b.Fatal(lintModErr)
	}
	return lintMod
}

// benchRuulint is one full ruulint invocation per iteration: module
// load, snapshot, every default pass.
func benchRuulint(b B, n int) {
	b.Helper()
	var findings int
	for i := 0; i < n; i++ {
		mod, err := analysis.Load(moduleRootDir(b))
		if err != nil {
			b.Fatal(err)
		}
		fs, _ := analysis.CheckSnapshot(analysis.NewSnapshot(mod.Packages), analysis.DefaultPasses(mod.Path))
		findings = len(fs)
	}
	if findings != 0 {
		b.Fatalf("lint benchmark found %d findings on the tree", findings)
	}
}

// benchRuulintCheckOnly reuses one loaded module and measures the pass
// run alone, sharing a fresh snapshot (and thus one callgraph build)
// across all passes each iteration.
func benchRuulintCheckOnly(b B, n int) {
	b.Helper()
	mod := lintModule(b)
	b.ResetTimer()
	var findings int
	for i := 0; i < n; i++ {
		fs, _ := analysis.CheckSnapshot(analysis.NewSnapshot(mod.Packages), analysis.DefaultPasses(mod.Path))
		findings = len(fs)
	}
	if findings != 0 {
		b.Fatalf("lint benchmark found %d findings on the tree", findings)
	}
}

// benchRuulintWarm measures the incremental-cache fast path: a cold
// CheckCached populates a scratch cache outside the timer, then every
// iteration answers the unchanged tree entirely from cache (scan +
// key probe, no load, no pass runs). The ruulint_warm_ns metric is the
// steady-state cost of `make lint` on an unchanged tree — the v4 cache
// moves that from the ruulint_ns regime (seconds) to milliseconds.
func benchRuulintWarm(b B, n int) {
	b.Helper()
	root := moduleRootDir(b)
	cacheDir, err := os.MkdirTemp("", "ruulint-warm-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	passes := analysis.DefaultPasses("ruu")
	if _, _, _, err := analysis.CheckCached(root, cacheDir, passes, true); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var findings int
	for i := 0; i < n; i++ {
		fs, _, stats, err := analysis.CheckCached(root, cacheDir, passes, false)
		if err != nil {
			b.Fatal(err)
		}
		if !stats.FullHit {
			b.Fatalf("warm iteration missed the cache (%d misses)", stats.Misses)
		}
		findings = len(fs)
	}
	if findings != 0 {
		b.Fatalf("lint benchmark found %d findings on the tree", findings)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(n), "ruulint_warm_ns")
}

// moduleRootDir resolves the repo root without caching the load.
func moduleRootDir(b B) string {
	dir, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			b.Fatal("no go.mod above the working directory")
		}
		dir = parent
	}
}
