package bench

// Fabric-layer benchmarks: the persistent result store (internal/store)
// and the /v1/batch endpoint at several pool widths. The batch
// benchmarks drive the real HTTP handler through httptest recorders —
// the same code path the fabric coordinator and the CI smoke job
// exercise — so a batch-path regression shows up in the BENCH_*.json
// trajectory, not just in wall-clock anecdotes.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"net/http"
	"net/http/httptest"
	"os"

	"ruu"
	"ruu/internal/server"
	"ruu/internal/store"
)

// storeBenchKey derives the i-th distinct content-addressed key; keys
// are sha256-shaped like real job keys so the store's sharded object
// layout (objects/<hh>/) spreads exactly as in production.
func storeBenchKey(i int) store.Key {
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(i))
	return sha256.Sum256(seed[:])
}

// storeBenchPayload is sized like a marshalled SimOutcome envelope
// (~1 KiB of JSON).
var storeBenchPayload = bytes.Repeat([]byte(`{"cycles":1234,"instr":5678} `), 36)

// benchStoreWrite measures Put throughput on an unbounded store:
// encode, tmp+rename, fsync, and the index append, per entry.
func benchStoreWrite(b B, n int) {
	dir, err := os.MkdirTemp("", "ruu-bench-store")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	s, err := store.Open(dir, store.Options{MaxBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < n; i++ {
		s.Put(storeBenchKey(i), storeBenchPayload)
	}
	if w := s.Stats().WriteErrors; w != 0 {
		b.Fatalf("store reported %d write errors", w)
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "puts/s")
	b.ReportMetric(float64(n*len(storeBenchPayload))/b.Elapsed().Seconds(), "bytes/s")
}

// storeReadEntries is the warm working set benchStoreRead cycles over.
const storeReadEntries = 64

// benchStoreRead measures Get throughput over a warm store: decode,
// checksum verification, and LRU bookkeeping, per hit.
func benchStoreRead(b B, n int) {
	dir, err := os.MkdirTemp("", "ruu-bench-store")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	s, err := store.Open(dir, store.Options{MaxBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < storeReadEntries; i++ {
		s.Put(storeBenchKey(i), storeBenchPayload)
	}
	b.ResetTimer()
	for i := 0; i < n; i++ {
		if _, ok := s.Get(storeBenchKey(i % storeReadEntries)); !ok {
			b.Fatalf("key %d missing from warm store", i%storeReadEntries)
		}
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "gets/s")
}

// batchBenchBody is a six-item /v1/batch request spanning the engines,
// matching the golden-test shape in internal/server.
var batchBenchBody = []byte(`{"items":[` +
	`{"engine":"ruu","entries":8,"kernel":"LLL1"},` +
	`{"engine":"rstu","entries":10,"kernel":"LLL3"},` +
	`{"engine":"ruu","entries":16,"bypass":"none","kernel":"LLL7"},` +
	`{"engine":"simple","kernel":"LLL12"},` +
	`{"engine":"ruu","entries":12,"kernel":"LLL3"},` +
	`{"engine":"rstu","entries":14,"kernel":"LLL5"}]}`)

const batchBenchItems = 6

// benchBatchThroughput posts the canonical six-item batch through the
// real HTTP handler once per iteration, with the result cache disabled
// so every item re-simulates; workers is the pool width, so the
// 1/2/4-worker trio measures how batch throughput scales with the
// scheduler fan-out.
func benchBatchThroughput(b B, n, workers int) {
	b.Helper()
	r := ruu.NewRunner(ruu.RunnerConfig{Workers: workers, CacheEntries: -1})
	defer r.Close()
	h := server.New(server.Config{Runner: r}).Handler()
	b.ResetTimer()
	for i := 0; i < n; i++ {
		req := httptest.NewRequest("POST", "/v1/batch", bytes.NewReader(batchBenchBody))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("batch = %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ReportMetric(float64(n*batchBenchItems)/b.Elapsed().Seconds(), "items/s")
}
