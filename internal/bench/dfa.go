package bench

import (
	"ruu/internal/dfa"
	"ruu/internal/livermore"
	"ruu/internal/machine"
)

// benchDFAAnalyze is one full static analysis per iteration over every
// Livermore kernel: CFG + reaching definitions, the abstract
// interpretation fixpoint, the value-aware lint, and the
// memory-dependence summary — the work POST /v1/analyze and ruudfa do
// before any replay.
func benchDFAAnalyze(b B, n int) {
	b.Helper()
	kernels := livermore.Kernels()
	var edges int
	for i := 0; i < n; i++ {
		edges = 0
		for _, k := range kernels {
			u, err := k.Unit()
			if err != nil {
				b.Fatal(err)
			}
			st, err := k.NewState()
			if err != nil {
				b.Fatal(err)
			}
			ai := dfa.Analyze(u.Prog).InterpretState(st)
			ai.Lint()
			edges += len(ai.MemDeps().Edges)
		}
	}
	b.ReportMetric(float64(len(kernels))*float64(n)/b.Elapsed().Seconds(), "programs/s")
	b.ReportMetric(float64(edges), "memdep-edges")
}

// benchBoundTightened is one dataflow-limit replay per iteration over
// every kernel with the memory-dependence tightening on (the default):
// the cost of the tighter oracle, comparable to a register-only replay
// via the bound's critical-path metrics.
func benchBoundTightened(b B, n int) {
	b.Helper()
	mc := machine.DefaultConfig()
	bcfg := dfa.BoundConfig{Lat: mc.Lat, FwdLatency: mc.FwdLatency}
	kernels := livermore.Kernels()
	var instrs int64
	for i := 0; i < n; i++ {
		instrs = 0
		for _, k := range kernels {
			u, err := k.Unit()
			if err != nil {
				b.Fatal(err)
			}
			st, err := k.NewState()
			if err != nil {
				b.Fatal(err)
			}
			bd, err := dfa.ComputeBound(u.Prog, st, bcfg)
			if err != nil {
				b.Fatal(err)
			}
			instrs += bd.DynInstrs
		}
	}
	b.ReportMetric(float64(instrs)*float64(n)/b.Elapsed().Seconds(), "instr/s")
}
