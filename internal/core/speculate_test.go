package core_test

import (
	"testing"

	"ruu/internal/asm"
	"ruu/internal/core"
	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/machine"
)

func runSpec(t *testing.T, size int, src string) (machine.Result, *exec.State, *core.RUU) {
	t.Helper()
	unit, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m, u := newMachine(core.Config{Size: size}, machine.Config{Speculate: true})
	st := exec.NewState(unit.NewMemory())
	res, err := m.Run(unit.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	return res, st, u
}

// loopSrc is a simple counted loop with a data-dependent exit.
const loopSrc = `
.array buf 16 3
    lai   A0, 12
    lai   A1, 0
loop:
    addai A0, A0, -1
    lda   A2, =buf(A1)
    adda  A3, A3, A2
    addai A1, A1, 1
    janz  loop
    halt
`

// TestSpeculationCorrectness: the speculative RUU produces the same
// architectural result and counts as the reference.
func TestSpeculationCorrectness(t *testing.T) {
	unit := asm.MustAssemble(loopSrc)
	ref, refRes, err := exec.Reference(unit.Prog, exec.NewState(unit.NewMemory()), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, st, u := runSpec(t, 12, loopSrc)
	if !st.EqualRegs(ref) {
		t.Fatalf("registers differ: %v", st.DiffRegs(ref))
	}
	if res.Stats.Instructions != refRes.Executed {
		t.Fatalf("instructions %d, want %d", res.Stats.Instructions, refRes.Executed)
	}
	if res.Stats.Branches != refRes.Branches || res.Stats.Taken != refRes.Taken {
		t.Fatalf("branch stats %d/%d, want %d/%d",
			res.Stats.Branches, res.Stats.Taken, refRes.Branches, refRes.Taken)
	}
	b, taken, _ := u.BranchStats()
	if b != refRes.Branches || taken != refRes.Taken {
		t.Fatalf("engine BranchStats %d/%d, want %d/%d", b, taken, refRes.Branches, refRes.Taken)
	}
}

// TestSpeculationRemovesDeadCycles: with prediction, the loop branch no
// longer blocks the decode stage, so the loop runs faster than the
// non-speculative RUU — §7's motivation.
func TestSpeculationRemovesDeadCycles(t *testing.T) {
	unit := asm.MustAssemble(loopSrc)
	run := func(spec bool) int64 {
		m, _ := newMachine(core.Config{Size: 16}, machine.Config{Speculate: spec})
		st := exec.NewState(unit.NewMemory())
		res, err := m.Run(unit.Prog, st)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	specCycles, plainCycles := run(true), run(false)
	if specCycles >= plainCycles {
		t.Fatalf("speculation not faster: %d vs %d", specCycles, plainCycles)
	}
}

// TestMispredictionSquashRestoresCounters: a loop whose exit the
// predictor necessarily mispredicts (trained taken, exits once) must
// leave clean NI/LI counters and correct state.
func TestMispredictionSquashRestoresCounters(t *testing.T) {
	res, st, u := runSpec(t, 16, loopSrc)
	if res.Stats.Mispredicts == 0 {
		t.Fatal("loop exit was never mispredicted")
	}
	for i := 0; i < isa.NumRegs; i++ {
		if u.NI(isa.FromFlat(i)) != 0 {
			t.Fatalf("NI[%v] = %d after run", isa.FromFlat(i), u.NI(isa.FromFlat(i)))
		}
	}
	if st.A[3] != 36 { // 12 iterations of +3
		t.Fatalf("A3 = %d, want 36", st.A[3])
	}
}

// TestWrongPathMemoryOpsSquashed: the wrong path contains a load and a
// store; after the squash the store must not be architecturally visible
// and the load registers must drain.
func TestWrongPathMemoryOpsSquashed(t *testing.T) {
	src := `
.word flag 0
.word poison 0
.word data 7
    lai   A0, 1          ; the predictor will guess "taken" for janz
    lai   A1, 99
    addai A0, A0, -1     ; A0 = 0: branch actually falls through
    janz  wrong
    jmp   done
wrong:
    sta   A1, =poison(A7)  ; wrong-path store: must never commit
    lda   A2, =data(A7)    ; wrong-path load
    halt
done:
    lda   A3, =data(A7)
    halt
`
	_, st, u := runSpec(t, 16, src)
	unit := asm.MustAssemble(src)
	if st.Mem.Peek(unit.Symbols["poison"]) != 0 {
		t.Fatal("wrong-path store reached memory")
	}
	if st.A[3] != 7 {
		t.Fatalf("correct-path load lost: A3 = %d", st.A[3])
	}
	if st.A[2] != 0 {
		t.Fatalf("wrong-path load updated A2 = %d", st.A[2])
	}
	if !u.Drained() {
		t.Fatal("RUU not drained")
	}
}

// TestMultipleOutstandingBranches: nested predicted branches ("no hard
// limit to the number of branches that can be predicted").
func TestMultipleOutstandingBranches(t *testing.T) {
	src := `
.array buf 8 5
    lai   A0, 6
    lai   A1, 0
outer:
    addai A0, A0, -1
    lda   A2, =buf(A1)
    adda  A4, A4, A2
    addai A1, A1, 1
    janz  outer
    halt
`
	unit := asm.MustAssemble(src)
	ref, _, err := exec.Reference(unit.Prog, exec.NewState(unit.NewMemory()), 0)
	if err != nil {
		t.Fatal(err)
	}
	// A large RUU lets several loop branches be outstanding at once; the
	// frecip-free body keeps resolution fast but the window deep.
	res, st, _ := runSpec(t, 32, src)
	if !st.EqualRegs(ref) {
		t.Fatalf("registers differ: %v", st.DiffRegs(ref))
	}
	if res.Stats.MaxInFlight <= 6 {
		t.Logf("note: peak occupancy %d (several iterations in flight expected)", res.Stats.MaxInFlight)
	}
}

// TestSpeculativeJmpCounted: unconditional jumps enter the RUU in
// speculative mode and are counted exactly once.
func TestSpeculativeJmpCounted(t *testing.T) {
	src := `
    lai A1, 1
    jmp over
    nop
over:
    lai A2, 2
    halt
`
	unit := asm.MustAssemble(src)
	_, refRes, err := exec.Reference(unit.Prog, exec.NewState(unit.NewMemory()), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, _, _ := runSpec(t, 8, src)
	if res.Stats.Instructions != refRes.Executed {
		t.Fatalf("instructions %d, want %d", res.Stats.Instructions, refRes.Executed)
	}
	if res.Stats.Branches != refRes.Branches || res.Stats.Taken != refRes.Taken {
		t.Fatalf("branches %d/%d, want %d/%d", res.Stats.Branches, res.Stats.Taken, refRes.Branches, refRes.Taken)
	}
}

// TestSpeculationTinyRUU: a 3-entry RUU forces branches to wait for
// entries; correctness must hold at any size.
func TestSpeculationTinyRUU(t *testing.T) {
	unit := asm.MustAssemble(loopSrc)
	ref, _, err := exec.Reference(unit.Prog, exec.NewState(unit.NewMemory()), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, st, _ := runSpec(t, 3, loopSrc)
	if !st.EqualRegs(ref) {
		t.Fatalf("registers differ: %v", st.DiffRegs(ref))
	}
}

// TestWrongPathTrapNeverFires: a TRAP instruction fetched down a
// mispredicted path is squashed before it can reach the commit head; no
// interrupt is taken.
func TestWrongPathTrapNeverFires(t *testing.T) {
	src := `
    lai   A0, 1
    addai A0, A0, -1   ; A0 = 0: janz falls through, but is predicted taken
    janz  wrong
    jmp   done
wrong:
    trap               ; wrong path: must be nullified
    halt
done:
    lai   A2, 5
    halt
`
	unit := asm.MustAssemble(src)
	u := core.New(core.Config{Size: 12, SelfCheck: true})
	m := machine.New(u, machine.Config{Speculate: true})
	m.SetHandler(func(st *exec.State, ev machine.InterruptEvent) machine.InterruptAction {
		t.Errorf("wrong-path trap fired: %v", ev.Trap)
		return machine.InterruptAction{}
	})
	st := exec.NewState(unit.NewMemory())
	res, err := m.Run(unit.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatalf("trap escaped the squash: %v", res.Trap)
	}
	if st.A[2] != 5 {
		t.Fatalf("A2 = %d", st.A[2])
	}
	if res.Stats.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d, want 1", res.Stats.Mispredicts)
	}
}
