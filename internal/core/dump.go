package core

import (
	"fmt"
	"strings"
)

// Dump renders the RUU's internal state for debugging: one line per
// occupied slot from head to tail, plus the memory-order frontier.
func (u *RUU) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RUU %s size=%d head=%d tail=%d count=%d\n",
		u.cfg.Bypass, u.cfg.Size, u.head, u.tail, u.count)
	u.forEach(func(pos int, s *slot) {
		flags := ""
		if s.dispatched {
			flags += "D"
		}
		if s.executed {
			flags += "X"
		}
		if s.resolved {
			flags += "R"
		}
		if s.fault != nil {
			flags += "F"
		}
		mem := ""
		switch s.phase {
		case memUnbound:
			mem = " mem:unbound"
		case memBound:
			mem = fmt.Sprintf(" mem:bound@%d toMem=%v bind=%+v", s.addr, s.toMem, s.binding)
		case memNone:
			// Not a memory instruction: no phase annotation.
		}
		fmt.Fprintf(&b, "  [%2d] seq=%-5d pc=%-4d %-24s op1{r=%v reg=%d inst=%d} op2{r=%v reg=%d inst=%d} %-3s%s\n",
			pos, s.seq, s.pc, s.ins.String(),
			s.op1.ready, s.op1.reg, s.op1.inst,
			s.op2.ready, s.op2.reg, s.op2.inst,
			flags, mem)
	})
	fmt.Fprintf(&b, "  memQueue=%v loadRegsInUse=%d\n", u.memQueue, u.ctx.LoadRegs.InUse())
	return b.String()
}
