package core

import (
	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/issue"
	"ruu/internal/obs"
)

// This file implements the paper's §7 extension: conditional execution of
// instructions from a predicted branch path. A predicted branch enters
// the RUU as an ordinary entry whose single source operand is its
// condition register; everything issued after it is conditional simply by
// being younger in the queue. Because the queue commits in order, a
// conditional instruction can never update the architectural state before
// the branch it depends on has resolved and committed — the RUU's
// nullification mechanism ("there is no hard limit to the number of
// branches that can be predicted") is just a truncation of the queue
// behind the mispredicted branch, with the NI/LI counters unwound and
// speculatively bound load registers squashed.

type outcomeRec struct {
	out issue.BranchOutcome
	seq int64
}

// IssueBranch implements issue.Speculator.
func (u *RUU) IssueBranch(c int64, pc int, ins isa.Instruction, predictTaken bool) (int, issue.StallReason) {
	if u.trap != nil {
		return 0, issue.StallDrain
	}
	var issuedSeq int64
	r := u.issueSlot(c, pc, ins, func(s *slot) {
		s.isBranch = true
		s.predTaken = predictTaken
		issuedSeq = s.seq
	})
	if r != issue.StallNone {
		return 0, r
	}
	// Locate the slot just issued (it is at tail-1) and resolve
	// immediately if the condition was readable at issue.
	pos := (u.tail - 1 + u.cfg.Size) % u.cfg.Size
	s := &u.slots[pos]
	if s.op1.ready && !s.resolved {
		u.resolveBranch(c, pos, s)
	}
	return int(issuedSeq), issue.StallNone
}

// resolveBranch computes the branch's architectural direction, records
// the outcome, and — on a misprediction — squashes every younger entry.
func (u *RUU) resolveBranch(c int64, pos int, s *slot) {
	taken := exec.BranchTaken(s.ins.Op, s.op1.value)
	s.resolved = true
	s.executed = true
	u.ctx.Observe(obs.KindExecute, c, s.id, s.pc)
	u.ctx.Observe(obs.KindWriteback, c, s.id, s.pc)
	s.taken = taken
	target := int(s.ins.Imm)
	if !taken {
		target = s.pc + 1
	}
	mispredicted := taken != s.predTaken
	u.outcomes = append(u.outcomes, outcomeRec{
		out: issue.BranchOutcome{
			ID:           int(s.seq),
			PC:           s.pc,
			Taken:        taken,
			Target:       target,
			Mispredicted: mispredicted,
		},
		seq: s.seq,
	})
	if mispredicted {
		s.mispredicted = true
		u.squashAfter(c, pos, s.seq)
	}
}

// squashAfter nullifies every entry younger than the entry at pos: the
// tail is rolled back, destination-register instance counters are unwound
// in reverse issue order, speculatively bound load registers are
// squashed, stale future-file entries are dropped, and pending outcomes
// of squashed branches are discarded. Pending functional-unit results of
// squashed entries are discarded when they arrive (their result-bus
// reservations stand — the bus cycle is genuinely consumed).
func (u *RUU) squashAfter(c int64, pos int, seq int64) {
	// Collect younger positions from the slot after pos to the tail.
	var victims []int
	for p := (pos + 1) % u.cfg.Size; p != u.tail; p = (p + 1) % u.cfg.Size {
		victims = append(victims, p)
	}
	// Unwind in reverse issue order so LI counters restore correctly.
	for i := len(victims) - 1; i >= 0; i-- {
		p := victims[i]
		s := &u.slots[p]
		if !s.used {
			continue
		}
		if s.hasDest {
			f := s.dest.Flat()
			if u.ni[f] == 0 {
				panic("core: NI underflow during squash")
			}
			u.ni[f]--
			u.li[f] = (u.li[f] - 1) & u.instMask()
			if u.cfg.Bypass == BypassLimited && s.dest.File == isa.FileA &&
				u.ffValid[s.dest.Idx] && u.ffInst[s.dest.Idx] == s.destInst {
				u.ffValid[s.dest.Idx] = false
			}
		}
		if s.binding.Valid() {
			u.ctx.LoadRegs.Squash(s.binding)
		}
		u.ctx.Observe(obs.KindSquash, c, s.id, s.pc)
		*s = slot{}
		u.count--
	}
	u.tail = (pos + 1) % u.cfg.Size

	// Drop squashed memory operations from the address frontier,
	// compacting the live window [memHead:] back to the front.
	keep := u.memQueue[:0]
	for _, p := range u.memQueue[u.memHead:] {
		if u.slots[p].used && u.slots[p].seq <= seq {
			keep = append(keep, p)
		}
	}
	u.memQueue, u.memHead = keep, 0

	// Drop outcomes of squashed (wrong-path) branches.
	keepOut := u.outcomes[:0]
	for _, o := range u.outcomes {
		if o.seq <= seq {
			keepOut = append(keepOut, o)
		}
	}
	u.outcomes = keepOut
}

// TakeOutcomes implements issue.Speculator.
func (u *RUU) TakeOutcomes() []issue.BranchOutcome {
	if len(u.outcomes) == 0 {
		return nil
	}
	// Insertion sort by seq (unique, so stability is moot): sort.Slice
	// would box the slice into an interface, and the per-cycle outcome
	// count is tiny.
	for i := 1; i < len(u.outcomes); i++ {
		for j := i; j > 0 && u.outcomes[j].seq < u.outcomes[j-1].seq; j-- {
			u.outcomes[j], u.outcomes[j-1] = u.outcomes[j-1], u.outcomes[j]
		}
	}
	u.outBuf = u.outBuf[:0]
	for _, o := range u.outcomes {
		u.outBuf = append(u.outBuf, o.out)
	}
	u.outcomes = u.outcomes[:0]
	return u.outBuf
}

// BranchStats returns architectural (committed) branch counts: resolved
// branches, taken branches, and mispredictions. Wrong-path branches that
// were squashed before committing are never counted.
func (u *RUU) BranchStats() (branches, taken, mispredicts int64) {
	return u.comBranches, u.comTaken, u.comMispredicts
}
