// Package core implements the paper's primary contribution: the Register
// Update Unit (§5). The RUU is the RSTU constrained to commit
// instructions in program order — it is managed as a circular queue with
// RUU_Head and RUU_Tail pointers — which simultaneously
//
//   - resolves data dependencies (each entry is a reservation station
//     monitoring the result bus),
//   - implements precise interrupts (the register file and memory are
//     updated only at commit, in program order), and
//   - simplifies tag management: because results return to the registers
//     in order, the associative "latest copy" search of the RSTU is
//     replaced by two small counters per register — the Number of
//     Instances (NI) and the Latest Instance (LI) — and a register tag is
//     just the register number appended with its LI counter.
//
// Three bypass organisations reproduce the paper's §6:
//
//   - BypassFull (Table 4): associative read of completed results from
//     the RUU at issue time.
//   - BypassNone (Table 5): no bypass; waiting operands monitor both the
//     result bus and the commit bus (RUU → register file).
//   - BypassLimited (Table 6): no RUU bypass, but the A register file is
//     duplicated as a future file so branch-condition chains through A
//     registers do not wait for commit.
//
// The package also implements the §7 extension: branch prediction with
// conditional execution, using the RUU's nullification capability to
// squash wrong-path entries.
package core

import (
	"fmt"

	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/issue"
	"ruu/internal/memsys"
	"ruu/internal/obs"
)

// Bypass selects the RUU's operand-bypass organisation.
type Bypass uint8

const (
	// BypassFull reads completed-but-uncommitted results straight out of
	// the RUU at issue time (Table 4).
	BypassFull Bypass = iota
	// BypassNone provides no bypass: a value is obtained from the
	// register file, from the result bus, or from the commit bus
	// (Table 5).
	BypassNone
	// BypassLimited duplicates the A register file as a future file
	// (Table 6); other files behave as in BypassNone.
	BypassLimited
)

func (b Bypass) String() string {
	switch b {
	case BypassFull:
		return "full"
	case BypassNone:
		return "none"
	case BypassLimited:
		return "limited"
	default:
		return "bypass?"
	}
}

// Config parameterises the RUU.
type Config struct {
	// Size is the number of RUU entries.
	Size int
	// Bypass selects the operand-bypass organisation.
	Bypass Bypass
	// CounterBits is the width n of the NI/LI counters; up to 2^n - 1
	// instances of a destination register may be in the RUU (default 3,
	// the paper's configuration).
	CounterBits int
	// CommitWidth is the number of instructions that may update the
	// architectural state per cycle (default 1: a single path from the
	// RUU to the register file).
	CommitWidth int
	// SelfCheck, when set, validates the queue and counter invariants
	// every cycle (test support; panics on violation).
	SelfCheck bool
}

func (c *Config) fillDefaults() {
	if c.Size <= 0 {
		c.Size = isa.PaperDefaultRUUEntries
	}
	if c.CounterBits <= 0 {
		c.CounterBits = isa.PaperCounterBits
	}
	if c.CounterBits > 8 {
		c.CounterBits = 8
	}
	if c.CommitWidth <= 0 {
		c.CommitWidth = isa.PaperCommitWidth
	}
}

type operand struct {
	ready bool
	reg   int16 // flat register index of the awaited instance
	inst  uint8 // awaited LI value
	value int64
}

type memPhase uint8

const (
	memNone memPhase = iota
	memUnbound
	memBound
)

type slot struct {
	used       bool
	seq        int64
	id         int64 // dynamic-instruction id (observability)
	pc         int
	ins        isa.Instruction
	issueCycle int64
	// readyAt is the cycle in which the last waiting operand was gated
	// in from a bus; dispatch is possible only in a later cycle.
	readyAt int64

	op1, op2 operand

	hasDest  bool
	dest     isa.Reg
	destInst uint8

	dispatched bool
	executed   bool
	result     int64

	phase      memPhase
	isStore    bool
	addr       int64
	binding    memsys.Binding
	toMem      bool
	memChecked bool // trap check performed (exactly once per operation)
	fault      *exec.Trap

	// §7 extension fields.
	isBranch     bool
	predTaken    bool
	resolved     bool
	taken        bool
	mispredicted bool
}

type pendingResult struct {
	cycle int64
	pos   int // ring position
	seq   int64
}

type busEvent struct {
	reg   int16
	inst  uint8
	value int64
}

// RUU is the Register Update Unit issue engine.
type RUU struct {
	cfg Config
	ctx *issue.Context

	slots []slot
	head  int
	tail  int
	count int

	nextSeq int64

	ni [isa.NumRegs]uint8
	li [isa.NumRegs]uint8

	// Future file for the A registers (BypassLimited).
	ff      [isa.NumA]int64
	ffInst  [isa.NumA]uint8
	ffValid [isa.NumA]bool

	memQueue []int // ring positions of unbound memory ops, program order
	memHead  int   // first live element of memQueue (popped by index, not reslice)
	pending  []pendingResult

	// cycleEvents lists this cycle's result-bus broadcasts, for the
	// decode-stage branch that is "monitoring the bus" (non-speculative
	// BypassNone/BypassLimited resolution).
	cycleEvents []busEvent

	retired  int64
	trap     *exec.Trap
	outcomes []outcomeRec
	outBuf   []issue.BranchOutcome // reused by TakeOutcomes; valid until the next call

	// Architectural branch counters (committed branches only).
	comBranches, comTaken, comMispredicts int64
}

// New returns an RUU engine with the given configuration.
func New(cfg Config) *RUU {
	cfg.fillDefaults()
	return &RUU{cfg: cfg}
}

// Name implements issue.Engine.
func (u *RUU) Name() string { return "ruu-" + u.cfg.Bypass.String() }

// Size returns the number of RUU entries.
func (u *RUU) Size() int { return u.cfg.Size }

// ConfigValue returns the effective configuration.
func (u *RUU) ConfigValue() Config { return u.cfg }

// maxInstances returns 2^n - 1.
func (u *RUU) maxInstances() uint8 { return uint8(1<<u.cfg.CounterBits) - 1 }

func (u *RUU) instMask() uint8 { return uint8(1<<u.cfg.CounterBits) - 1 }

// Reset implements issue.Engine.
func (u *RUU) Reset(ctx *issue.Context) {
	u.ctx = ctx
	u.slots = make([]slot, u.cfg.Size)
	u.head, u.tail, u.count = 0, 0, 0
	u.nextSeq = 0
	u.ni = [isa.NumRegs]uint8{}
	u.li = [isa.NumRegs]uint8{}
	u.ff = [isa.NumA]int64{}
	u.ffInst = [isa.NumA]uint8{}
	u.ffValid = [isa.NumA]bool{}
	u.memQueue, u.memHead = u.memQueue[:0], 0
	u.pending = u.pending[:0]
	u.cycleEvents = u.cycleEvents[:0]
	u.retired = 0
	u.trap = nil
	u.outcomes = u.outcomes[:0]
	u.comBranches, u.comTaken, u.comMispredicts = 0, 0, 0
	ctx.Bus.Reset()
	ctx.LoadRegs.Reset()
}

// BeginCycle implements issue.Engine: result-bus broadcasts first, then
// in-order commit from the head.
func (u *RUU) BeginCycle(c int64) {
	u.cycleEvents = u.cycleEvents[:0]
	u.broadcastResults(c)
	u.commit(c)
	if u.cfg.SelfCheck {
		if err := u.SelfCheck(); err != nil {
			panic(fmt.Sprintf("cycle %d: %v\n%s", c, err, u.Dump()))
		}
	}
}

// broadcastResults delivers results whose functional-unit latency expires
// this cycle: the producing slot is marked executed, waiting reservation
// stations gate in the value, and (in BypassLimited) the A future file is
// updated. The register file is NOT touched — that happens at commit.
func (u *RUU) broadcastResults(c int64) {
	out := u.pending[:0]
	for _, p := range u.pending {
		if p.cycle != c {
			out = append(out, p)
			continue
		}
		s := &u.slots[p.pos]
		if !s.used || s.seq != p.seq {
			continue // squashed while in flight; discard the result
		}
		s.executed = true
		u.ctx.Observe(obs.KindWriteback, c, s.id, s.pc)
		if s.hasDest {
			u.deliver(p.cycle, s.dest, s.destInst, s.result)
			u.cycleEvents = append(u.cycleEvents, busEvent{int16(s.dest.Flat()), s.destInst, s.result})
			if u.cfg.Bypass == BypassLimited && s.dest.File == isa.FileA {
				u.ff[s.dest.Idx] = s.result
				u.ffInst[s.dest.Idx] = s.destInst
				u.ffValid[s.dest.Idx] = true
			}
		}
		if s.binding.Valid() && !s.isStore {
			// A load's value becomes forwardable to younger chained
			// loads, and its load-register claim ends.
			u.ctx.LoadRegs.SetData(s.binding, s.result)
			u.ctx.LoadRegs.Release(s.binding)
			s.binding = memsys.Invalid
		}
	}
	u.pending = out
}

// deliver gates a broadcast value into every waiting operand with a
// matching (register, instance) tag, and resolves branch slots waiting on
// the value.
func (u *RUU) deliver(c int64, r isa.Reg, inst uint8, v int64) {
	flat := int16(r.Flat())
	u.forEach(func(pos int, s *slot) {
		if !s.op1.ready && s.op1.reg == flat && s.op1.inst == inst {
			s.op1.ready, s.op1.value = true, v
			s.readyAt = c
		}
		if !s.op2.ready && s.op2.reg == flat && s.op2.inst == inst {
			s.op2.ready, s.op2.value = true, v
			s.readyAt = c
		}
		if s.isBranch && !s.resolved && s.op1.ready {
			u.resolveBranch(c, pos, s)
		}
	})
}

// forEach visits used slots from head to tail (program order). The
// visitor must not change the queue shape; squashes are performed only in
// resolveBranch, which truncates behind the iteration point.
func (u *RUU) forEach(f func(pos int, s *slot)) {
	for i, pos := 0, u.head; i < u.count; i, pos = i+1, (pos+1)%u.cfg.Size {
		if u.slots[pos].used {
			f(pos, &u.slots[pos])
		}
	}
}

// commit updates the architectural state from the head of the queue: up
// to CommitWidth executed instructions leave in program order. A faulting
// instruction at the head raises its trap with the architectural state
// precise. Committed register values are also broadcast on the commit bus
// (the bus between the RUU and the register file), which waiting
// reservation stations monitor in the no-bypass organisations.
func (u *RUU) commit(c int64) {
	for n := 0; n < u.cfg.CommitWidth && u.count > 0; n++ {
		s := &u.slots[u.head]
		if s.fault != nil {
			// Precise interrupt: everything older has committed, nothing
			// younger has touched architectural state.
			u.trap = s.fault
			return
		}
		if !s.executed {
			return
		}
		if s.isStore {
			if f := u.ctx.State.Mem.Write(s.addr, s.op2.value); f != nil {
				panic("core: unexpected fault at store commit: " + f.Error())
			}
			if s.binding.Valid() {
				u.ctx.LoadRegs.Release(s.binding)
			}
		}
		if s.hasDest {
			u.ctx.State.SetReg(s.dest, s.result)
			f := s.dest.Flat()
			if u.ni[f] == 0 {
				panic(fmt.Sprintf("core: NI underflow for %s at commit", s.dest))
			}
			u.ni[f]--
			// Commit bus broadcast: resolve operands that issued after
			// this instance had already left the result bus.
			u.deliver(c, s.dest, s.destInst, s.result)
		}
		if s.isBranch {
			u.comBranches++
			if s.taken {
				u.comTaken++
			}
			if s.mispredicted {
				u.comMispredicts++
			}
		}
		u.ctx.Observe(obs.KindCommit, c, s.id, s.pc)
		*s = slot{}
		u.head = (u.head + 1) % u.cfg.Size
		u.count--
		u.retired++
	}
}

// Dispatch implements issue.Engine: the memory-address frontier advances
// (one effective-address computation per cycle, in program order among
// memory operations), then one ready entry dispatches to a functional
// unit — loads and stores first, then the entry that entered the RUU
// earliest (§5's priority rule).
func (u *RUU) Dispatch(c int64) {
	u.advanceMemFrontier(c)

	budget := 1
	// Pass 1: memory operations.
	u.forEach(func(pos int, s *slot) {
		if budget == 0 {
			return
		}
		if s.phase != memBound || s.dispatched || s.issueCycle >= c || s.readyAt >= c || s.fault != nil {
			return
		}
		if u.tryMemOp(c, pos, s) {
			budget--
		}
	})
	if budget == 0 {
		return
	}
	// Pass 2: computational instructions, oldest first (forEach order).
	u.forEach(func(pos int, s *slot) {
		if budget == 0 {
			return
		}
		if s.phase != memNone || s.dispatched || s.executed || s.isBranch || s.issueCycle >= c || s.readyAt >= c {
			return
		}
		if !s.op1.ready || !s.op2.ready {
			return
		}
		lat := int64(u.ctx.Lat.Of(s.ins.Op))
		if !u.ctx.Bus.Reserve(c + lat) {
			return
		}
		s.result = exec.ALU(s.ins, s.op1.value, s.op2.value)
		s.dispatched = true
		u.ctx.Observe(obs.KindDispatch, c, s.id, s.pc)
		u.ctx.Observe(obs.KindExecute, c, s.id, s.pc)
		u.pending = append(u.pending, pendingResult{c + lat, pos, s.seq})
		budget--
	})
}

// popMem drops the head of the memory queue by advancing the head
// index; when the queue drains, the backing array is reused from the
// front so the steady state allocates nothing.
func (u *RUU) popMem() {
	u.memHead++
	if u.memHead == len(u.memQueue) {
		u.memQueue, u.memHead = u.memQueue[:0], 0
	}
}

func (u *RUU) advanceMemFrontier(c int64) {
	if u.trap != nil || u.memHead == len(u.memQueue) {
		return
	}
	pos := u.memQueue[u.memHead]
	s := &u.slots[pos]
	if !s.used || s.phase != memUnbound {
		// Squashed; drop and retry next cycle.
		u.popMem()
		return
	}
	if s.issueCycle >= c || s.readyAt >= c || !s.op1.ready {
		return
	}
	addr := exec.EffAddr(s.ins, s.op1.value)
	if !s.memChecked {
		s.memChecked = true
		if t := issue.MemTrap(u.ctx, s.pc, addr); t != nil {
			// The fault is recorded in the entry and raised when the
			// entry reaches the head — that is what makes the interrupt
			// precise.
			s.fault = t
			s.addr = addr
			s.phase = memBound
			s.executed = true
			u.popMem()
			return
		}
	}
	if !u.ctx.LoadRegs.CanBind(addr) {
		return // no load register obtainable; retry next cycle
	}
	// A load with no pending same-address operation dispatches to memory
	// as part of the address computation: it reserves the result bus here
	// and does not compete for the RUU-to-functional-unit data path.
	toMemory := !s.isStore && !u.ctx.LoadRegs.Pending(addr)
	lat := int64(u.ctx.Lat[isa.UnitMem])
	if toMemory && !u.ctx.Bus.Reserve(c+lat) {
		return // bus slot taken; retry next cycle
	}
	b, toMem, ok := u.ctx.LoadRegs.Bind(addr, s.isStore)
	if !ok {
		return // no free load register; retry next cycle
	}
	s.addr = addr
	s.binding = b
	s.toMem = toMem
	s.phase = memBound
	u.popMem()
	if toMem {
		v, f := u.ctx.State.Mem.Read(addr)
		if f != nil {
			panic("core: unexpected fault after bind-time check: " + f.Error())
		}
		s.result = v
		s.dispatched = true
		u.ctx.Observe(obs.KindDispatch, c, s.id, s.pc)
		u.ctx.Observe(obs.KindExecute, c, s.id, s.pc)
		u.pending = append(u.pending, pendingResult{c + lat, pos, s.seq})
	}
}

func (u *RUU) tryMemOp(c int64, pos int, s *slot) bool {
	if s.isStore {
		if !s.op2.ready {
			return false
		}
		// A store "executes" when its address is bound and its data is
		// ready; the buffered data is forwardable to younger loads, but
		// memory itself is written only at commit (preciseness).
		u.ctx.LoadRegs.SetData(s.binding, s.op2.value)
		s.dispatched = true
		s.executed = true
		u.ctx.Observe(obs.KindDispatch, c, s.id, s.pc)
		u.ctx.Observe(obs.KindExecute, c, s.id, s.pc)
		u.ctx.Observe(obs.KindWriteback, c, s.id, s.pc)
		return true
	}
	// Load: only forwarded loads reach here (memory-bound loads dispatch
	// at bind time).
	v, ok := u.ctx.LoadRegs.Forward(s.binding)
	if !ok {
		return false
	}
	lat := int64(u.ctx.FwdLatency)
	if !u.ctx.Bus.Reserve(c + lat) {
		return false
	}
	s.result = v
	s.dispatched = true
	u.ctx.Observe(obs.KindDispatch, c, s.id, s.pc)
	u.ctx.Observe(obs.KindExecute, c, s.id, s.pc)
	u.pending = append(u.pending, pendingResult{c + lat, pos, s.seq})
	return true
}

// readOperand reads a source register under the configured bypass rules,
// returning a ready operand or a tagged waiting one.
func (u *RUU) readOperand(r isa.Reg) operand {
	f := r.Flat()
	if u.ni[f] == 0 {
		return operand{ready: true, value: u.ctx.State.Reg(r)}
	}
	inst := u.li[f]
	switch u.cfg.Bypass {
	case BypassFull:
		// Associative bypass: if the latest instance has executed, its
		// value can be read straight out of the RUU.
		var found *slot
		u.forEach(func(_ int, s *slot) {
			if s.hasDest && s.dest == r && s.destInst == inst {
				found = s
			}
		})
		if found != nil && found.executed {
			return operand{ready: true, value: found.result}
		}
	case BypassLimited:
		if r.File == isa.FileA && u.ffValid[r.Idx] && u.ffInst[r.Idx] == inst {
			return operand{ready: true, value: u.ff[r.Idx]}
		}
	case BypassNone:
		// No bypass: the operand waits for the result to commit.
	}
	return operand{ready: false, reg: int16(f), inst: inst}
}

// TryIssue implements issue.Engine.
func (u *RUU) TryIssue(c int64, pc int, ins isa.Instruction) issue.StallReason {
	if u.trap != nil {
		return issue.StallDrain
	}
	if ins.Op == isa.Trap {
		// An explicit trap occupies an entry and faults at commit, like
		// any other instruction-generated trap.
		return u.issueSlot(c, pc, ins, func(s *slot) {
			s.fault = &exec.Trap{Kind: exec.TrapExplicit, PC: pc}
			s.executed = true
		})
	}
	if ins.Op == isa.Nop {
		return u.issueSlot(c, pc, ins, func(s *slot) {
			s.executed = true
		})
	}
	return u.issueSlot(c, pc, ins, nil)
}

// issueSlot performs the common issue path: obtain a free entry at the
// tail, read or tag the source operands, and take a new instance of the
// destination register (incrementing NI and LI).
func (u *RUU) issueSlot(c int64, pc int, ins isa.Instruction, custom func(*slot)) issue.StallReason {
	if u.count == u.cfg.Size {
		return issue.StallEntry
	}
	info := ins.Op.Info()
	dst, hasDst := ins.Dst()
	if hasDst && u.ni[dst.Flat()] == u.maxInstances() {
		return issue.StallDest
	}

	// Build the entry in place in the ring: a local slot passed to the
	// custom callback below would escape to the heap on every issue.
	pos := u.tail
	s := &u.slots[pos]
	*s = slot{
		used:       true,
		seq:        u.nextSeq,
		id:         u.ctx.DecodeID,
		pc:         pc,
		ins:        ins,
		issueCycle: c,
		binding:    memsys.Invalid,
		op1:        operand{ready: true},
		op2:        operand{ready: true},
	}
	var srcBuf [2]isa.Reg
	srcs := ins.Srcs(srcBuf[:0])
	if len(srcs) > 0 {
		s.op1 = u.readOperand(srcs[0])
	}
	if len(srcs) > 1 {
		s.op2 = u.readOperand(srcs[1])
	}
	if info.Load || info.Store {
		s.phase = memUnbound
		s.isStore = info.Store
	}
	if hasDst {
		s.hasDest = true
		s.dest = dst
		f := dst.Flat()
		u.ni[f]++
		u.li[f] = (u.li[f] + 1) & u.instMask()
		s.destInst = u.li[f]
		if u.cfg.Bypass == BypassLimited && dst.File == isa.FileA {
			// A new instance supersedes the future-file value until its
			// own result arrives (ffInst no longer matches LI).
			if u.ffInst[dst.Idx] != s.destInst {
				// Nothing to do: validity is checked against LI.
			} else {
				// Instance counter wrapped onto the stale future-file
				// entry; drop it explicitly.
				u.ffValid[dst.Idx] = false
			}
		}
	}
	if custom != nil {
		custom(s)
	}

	u.tail = (u.tail + 1) % u.cfg.Size
	u.count++
	u.nextSeq++
	if s.phase == memUnbound {
		u.memQueue = append(u.memQueue, pos)
	}
	u.ctx.Observe(obs.KindIssue, c, s.id, s.pc)
	if s.executed {
		// NOPs and explicit traps complete at issue: give them a full
		// (degenerate) stage timeline.
		u.ctx.Observe(obs.KindExecute, c, s.id, s.pc)
		u.ctx.Observe(obs.KindWriteback, c, s.id, s.pc)
	}
	return issue.StallNone
}

// TryReadCond implements issue.Engine: the decode-stage branch obtains
// its condition register under the bypass rules, additionally monitoring
// the result bus (this cycle's broadcasts) in the no-bypass
// organisations, as §6.2–6.3 describe.
func (u *RUU) TryReadCond(_ int64, r isa.Reg) (int64, bool) {
	op := u.readOperand(r)
	if op.ready {
		return op.value, true
	}
	for _, ev := range u.cycleEvents {
		if ev.reg == op.reg && ev.inst == op.inst {
			return ev.value, true
		}
	}
	return 0, false
}

// Drained implements issue.Engine.
func (u *RUU) Drained() bool { return u.count == 0 }

// PendingTrap implements issue.Engine.
func (u *RUU) PendingTrap() *exec.Trap { return u.trap }

// Precise implements issue.Engine: the RUU's whole point.
func (u *RUU) Precise() bool { return true }

// Flush implements issue.Engine: discard every in-flight entry. Because
// the register file and memory are updated only at commit, the
// architectural state after a flush is exactly the state at the
// trapping instruction's boundary.
func (u *RUU) Flush() {
	u.slots = make([]slot, u.cfg.Size)
	u.head, u.tail, u.count = 0, 0, 0
	u.ni = [isa.NumRegs]uint8{}
	u.li = [isa.NumRegs]uint8{}
	u.ffValid = [isa.NumA]bool{}
	u.memQueue, u.memHead = u.memQueue[:0], 0
	u.pending = u.pending[:0]
	u.cycleEvents = u.cycleEvents[:0]
	u.trap = nil
	u.outcomes = u.outcomes[:0]
	u.ctx.Bus.Clear()
	u.ctx.LoadRegs.Reset()
}

// InFlight implements issue.Engine.
func (u *RUU) InFlight() int { return u.count }

// Retired implements issue.Engine.
func (u *RUU) Retired() int64 { return u.retired }

// NI returns the current Number-of-Instances counter for r (test support).
func (u *RUU) NI(r isa.Reg) uint8 { return u.ni[r.Flat()] }

// LI returns the current Latest-Instance counter for r (test support).
func (u *RUU) LI(r isa.Reg) uint8 { return u.li[r.Flat()] }

// Occupancy returns head, tail and count (test support for the queue
// discipline invariants).
func (u *RUU) Occupancy() (head, tail, count int) { return u.head, u.tail, u.count }

// HeadPC returns the program counter of the oldest uncommitted
// instruction — the precise restart point for an external interrupt
// (each entry carries its Program Counter field for exactly this, §5).
func (u *RUU) HeadPC() (int, bool) {
	if u.count == 0 {
		return 0, false
	}
	return u.slots[u.head].pc, true
}
