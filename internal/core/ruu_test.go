package core_test

import (
	"testing"

	"ruu/internal/asm"
	"ruu/internal/core"
	"ruu/internal/exec"
	"ruu/internal/isa"
	"ruu/internal/issue"
	"ruu/internal/machine"
)

func newMachine(cfg core.Config, mcfg machine.Config) (*machine.Machine, *core.RUU) {
	u := core.New(cfg)
	return machine.New(u, mcfg), u
}

func runOn(t *testing.T, cfg core.Config, src string) (machine.Result, *exec.State, *core.RUU) {
	t.Helper()
	unit, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m, u := newMachine(cfg, machine.Config{})
	st := exec.NewState(unit.NewMemory())
	res, err := m.Run(unit.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	return res, st, u
}

func TestConfigDefaults(t *testing.T) {
	u := core.New(core.Config{})
	cfg := u.ConfigValue()
	if cfg.Size != 12 || cfg.CounterBits != 3 || cfg.CommitWidth != 1 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if u.Name() != "ruu-full" {
		t.Fatalf("name = %q", u.Name())
	}
	if core.New(core.Config{Bypass: core.BypassNone}).Name() != "ruu-none" {
		t.Fatal("bypass-none name")
	}
	if core.New(core.Config{CounterBits: 99}).ConfigValue().CounterBits != 8 {
		t.Fatal("counter width not clamped")
	}
}

func TestBypassStrings(t *testing.T) {
	if core.BypassFull.String() != "full" || core.BypassNone.String() != "none" ||
		core.BypassLimited.String() != "limited" || core.Bypass(9).String() != "bypass?" {
		t.Fatal("Bypass strings wrong")
	}
}

// TestQueueDisciplineAndDrain: after a run the RUU must be empty with
// head == tail.
func TestQueueDisciplineAndDrain(t *testing.T) {
	_, _, u := runOn(t, core.Config{Size: 4}, `
    lai  A1, 2
    lai  A2, 3
    adda A3, A1, A2
    mula A4, A3, A3
    halt
`)
	head, tail, count := u.Occupancy()
	if count != 0 || head != tail {
		t.Fatalf("queue not drained: head=%d tail=%d count=%d", head, tail, count)
	}
	if !u.Drained() {
		t.Fatal("Drained() false after run")
	}
	for i := 0; i < isa.NumRegs; i++ {
		if u.NI(isa.FromFlat(i)) != 0 {
			t.Fatalf("NI[%v] = %d after drain", isa.FromFlat(i), u.NI(isa.FromFlat(i)))
		}
	}
}

// TestCommitInOrder uses a program whose fast instruction follows a slow
// one: the fast result must not reach the register file before the slow
// one commits (the state between must never show the young result
// without the old one). We detect it via the architectural trap
// boundary: trap after the slow op, with the fast op younger.
func TestCommitInOrder(t *testing.T) {
	unit, err := asm.Assemble(`
    lai   A1, 4
    frecip S1, S2     ; slow (latency 14)
    adda  A2, A1, A1  ; fast (latency 2), younger
    trap              ; stops commit right after adda
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := newMachine(core.Config{Size: 8}, machine.Config{})
	sawTrap := false
	m.SetHandler(func(st *exec.State, ev machine.InterruptEvent) machine.InterruptAction {
		sawTrap = true
		// At the trap, frecip and adda must both have committed (they
		// are older), in order.
		if st.A[2] != 8 {
			t.Errorf("A2 = %d at trap, want 8", st.A[2])
		}
		return machine.InterruptAction{Resume: true, ResumePC: ev.Trap.PC + 1}
	})
	st := exec.NewState(unit.NewMemory())
	if _, err := m.Run(unit.Prog, st); err != nil {
		t.Fatal(err)
	}
	if !sawTrap {
		t.Fatal("trap not taken")
	}
}

// TestNICounterBlocksIssue: with 1-bit counters only one instance of a
// destination register may be in flight; the machine still completes
// correctly, and NI never exceeds 1.
func TestNICounterBlocksIssue(t *testing.T) {
	unit, err := asm.Assemble(`
    lai  A1, 1
    lai  A1, 2
    lai  A1, 3
    lai  A1, 4
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m, u := newMachine(core.Config{Size: 8, CounterBits: 1}, machine.Config{})
	st := exec.NewState(unit.NewMemory())
	res, err := m.Run(unit.Prog, st)
	if err != nil {
		t.Fatal(err)
	}
	if st.A[1] != 4 {
		t.Fatalf("A1 = %d", st.A[1])
	}
	if res.Stats.Stalls[issue.StallDest] == 0 {
		t.Fatal("expected dest-instance stalls with 1-bit counters")
	}
	_ = u
}

// TestManyInstancesWithWideCounters: the same program with 3-bit
// counters issues without instance stalls (the paper: "a 3-bit counter
// ensured that ... an instruction never blocked ... because an instance
// of a register was unavailable").
func TestManyInstancesWithWideCounters(t *testing.T) {
	res, st, _ := runOn(t, core.Config{Size: 8, CounterBits: 3}, `
    lai  A1, 1
    lai  A1, 2
    lai  A1, 3
    lai  A1, 4
    halt
`)
	if st.A[1] != 4 {
		t.Fatalf("A1 = %d", st.A[1])
	}
	if res.Stats.Stalls[issue.StallDest] != 0 {
		t.Fatalf("unexpected dest stalls: %d", res.Stats.Stalls[issue.StallDest])
	}
}

// TestEntryFullBlocksIssue: a tiny RUU records entry-full stalls.
func TestEntryFullBlocksIssue(t *testing.T) {
	res, _, _ := runOn(t, core.Config{Size: 3}, `
    frecip S1, S2
    frecip S3, S4
    frecip S5, S6
    lai  A1, 1
    lai  A2, 2
    lai  A3, 3
    halt
`)
	if res.Stats.Stalls[issue.StallEntry] == 0 {
		t.Fatal("no entry-full stalls on a 3-entry RUU")
	}
}

// TestBypassTiming: a crafted chain shows the paper's ordering
// full <= limited <= none in cycle count. The value S1 is produced, then
// a long gap, then read: in full-bypass the reader takes it from the
// RUU; without bypass it waits for the commit bus.
func TestBypassTiming(t *testing.T) {
	src := `
    frecip S3, S4      ; slow older work delays every younger commit
    frecip S5, S6
    lsi  S1, 42        ; producer: completes long before it can commit
    lai  A1, 1         ; independent padding so the reader issues after
    lai  A2, 2         ; the producer has executed
    lai  A3, 3
    frecip S7, S1      ; slow reader: its start time sets the end time
    halt
`
	unit, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := exec.Reference(unit.Prog, exec.NewState(unit.NewMemory()), 0)
	if err != nil {
		t.Fatal(err)
	}
	cycles := map[core.Bypass]int64{}
	for _, b := range []core.Bypass{core.BypassFull, core.BypassNone, core.BypassLimited} {
		res, st, _ := runOn(t, core.Config{Size: 10, Bypass: b}, src)
		if !st.EqualRegs(ref) {
			t.Fatalf("%v: wrong result: %v", b, st.DiffRegs(ref))
		}
		cycles[b] = res.Stats.Cycles
	}
	if !(cycles[core.BypassFull] < cycles[core.BypassNone]) {
		t.Errorf("full (%d) not faster than none (%d)", cycles[core.BypassFull], cycles[core.BypassNone])
	}
	// S registers are not covered by the limited (A future file) bypass,
	// so limited behaves like none here.
	if cycles[core.BypassLimited] != cycles[core.BypassNone] {
		t.Errorf("limited (%d) != none (%d) on an S-register chain", cycles[core.BypassLimited], cycles[core.BypassNone])
	}
}

// TestFutureFileHelpsARegisters: the same distance pattern through an A
// register is recovered by the limited bypass.
func TestFutureFileHelpsARegisters(t *testing.T) {
	src := `
    frecip S3, S4      ; slow older work delays every younger commit
    frecip S5, S6
    lai  A2, 42        ; producer
    lsi  S1, 1         ; independent padding
    lsi  S2, 2
    lsi  S7, 3
    mula A3, A2, A2    ; slow reader: its start time sets the end time
    halt
`
	cycles := map[core.Bypass]int64{}
	for _, b := range []core.Bypass{core.BypassFull, core.BypassNone, core.BypassLimited} {
		res, st, _ := runOn(t, core.Config{Size: 10, Bypass: b}, src)
		if st.A[3] != 42*42 {
			t.Fatalf("%v: A3 = %d", b, st.A[3])
		}
		cycles[b] = res.Stats.Cycles
	}
	if !(cycles[core.BypassLimited] < cycles[core.BypassNone]) {
		t.Errorf("future file did not help: limited=%d none=%d", cycles[core.BypassLimited], cycles[core.BypassNone])
	}
	if cycles[core.BypassFull] > cycles[core.BypassLimited] {
		t.Errorf("full (%d) slower than limited (%d)", cycles[core.BypassFull], cycles[core.BypassLimited])
	}
}

// TestCommitWidthTwoFasterOnCommitBound: widening the RUU-to-register
// path accelerates a commit-bound program.
func TestCommitWidthTwoFasterOnCommitBound(t *testing.T) {
	src := `
    lai  A1, 1
    lai  A2, 2
    lai  A3, 3
    lai  A4, 4
    lai  A5, 5
    lsi  S1, 1
    lsi  S2, 2
    lsi  S3, 3
    halt
`
	r1, _, _ := runOn(t, core.Config{Size: 16, CommitWidth: 1}, src)
	r2, _, _ := runOn(t, core.Config{Size: 16, CommitWidth: 2}, src)
	if r2.Stats.Cycles > r1.Stats.Cycles {
		t.Fatalf("commit width 2 slower: %d vs %d", r2.Stats.Cycles, r1.Stats.Cycles)
	}
}

// TestStoreCommitsToMemoryInOrder: a store younger than a trapping
// instruction must not be visible in memory at the trap.
func TestStoreCommitsToMemoryInOrder(t *testing.T) {
	unit, err := asm.Assemble(`
.word slot 0
    lai  A1, 7
    trap
    sta  A1, =slot(A7)
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := newMachine(core.Config{Size: 8}, machine.Config{})
	slot := unit.Symbols["slot"]
	m.SetHandler(func(st *exec.State, ev machine.InterruptEvent) machine.InterruptAction {
		if st.Mem.Peek(slot) != 0 {
			t.Errorf("younger store visible at trap")
		}
		return machine.InterruptAction{Resume: true, ResumePC: ev.Trap.PC + 1}
	})
	st := exec.NewState(unit.NewMemory())
	if _, err := m.Run(unit.Prog, st); err != nil {
		t.Fatal(err)
	}
	if st.Mem.Peek(slot) != 7 {
		t.Fatalf("store lost after resume: %d", st.Mem.Peek(slot))
	}
}

// TestStoreToLoadForwarding: a load from an address with a pending
// (uncommitted) store must see the store's data.
func TestStoreToLoadForwarding(t *testing.T) {
	_, st, _ := runOn(t, core.Config{Size: 12}, `
.word slot 5
    lai  A1, 9
    sta  A1, =slot(A7)   ; store, commits late
    lda  A2, =slot(A7)   ; load must forward 9, not read stale 5
    adda A3, A2, A2
    halt
`)
	if st.A[2] != 9 || st.A[3] != 18 {
		t.Fatalf("forwarding broken: A2=%d A3=%d", st.A[2], st.A[3])
	}
}

// TestLoadRegisterExhaustionStall: with one load register, back-to-back
// loads to distinct addresses serialize but complete correctly.
func TestLoadRegisterExhaustionStall(t *testing.T) {
	mcfg := machine.Config{LoadRegs: 1}
	unit, err := asm.Assemble(`
.array buf 8 3
    lai  A1, 0
    lds  S1, =buf(A1)
    lds  S2, =buf+1(A1)
    lds  S3, =buf+2(A1)
    fadd S4, S1, S2
    fadd S4, S4, S3
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := newMachine(core.Config{Size: 8}, mcfg)
	st := exec.NewState(unit.NewMemory())
	if _, err := m.Run(unit.Prog, st); err != nil {
		t.Fatal(err)
	}
	want := exec.Bits(exec.F64(3) + exec.F64(3) + exec.F64(3))
	if st.S[4] != want {
		t.Fatalf("S4 = %#x, want %#x", st.S[4], want)
	}
}

// TestFlushLeavesCleanState: Flush after arbitrary in-flight work leaves
// an engine that can run a fresh program.
func TestFlushLeavesCleanState(t *testing.T) {
	unit, err := asm.Assemble(`
    lai  A1, 3
    trap
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m, u := newMachine(core.Config{Size: 6}, machine.Config{})
	m.SetHandler(func(st *exec.State, ev machine.InterruptEvent) machine.InterruptAction {
		return machine.InterruptAction{Resume: true, ResumePC: ev.Trap.PC + 1}
	})
	st := exec.NewState(unit.NewMemory())
	if _, err := m.Run(unit.Prog, st); err != nil {
		t.Fatal(err)
	}
	if !u.Drained() || u.InFlight() != 0 {
		t.Fatal("engine not clean after flush+run")
	}
}

// TestSelfCheckEveryCycle runs a kernel-sized workload (including
// speculation and an interrupt) with per-cycle invariant validation.
func TestSelfCheckEveryCycle(t *testing.T) {
	unit, err := asm.Assemble(`
.array buf 16 3
    lai   A0, 10
    lai   A1, 0
loop:
    addai A0, A0, -1
    lda   A2, =buf(A1)
    adda  A3, A3, A2
    sta   A3, =buf(A1)
    addai A1, A1, 1
    janz  loop
    trap
    lai   A4, 5
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []bool{false, true} {
		for _, bypass := range []core.Bypass{core.BypassFull, core.BypassNone, core.BypassLimited} {
			u := core.New(core.Config{Size: 6, Bypass: bypass, SelfCheck: true})
			m := machine.New(u, machine.Config{Speculate: spec})
			m.SetHandler(func(st *exec.State, ev machine.InterruptEvent) machine.InterruptAction {
				return machine.InterruptAction{Resume: true, ResumePC: ev.Trap.PC + 1}
			})
			st := exec.NewState(unit.NewMemory())
			res, err := m.Run(unit.Prog, st)
			if err != nil {
				t.Fatalf("spec=%v %v: %v", spec, bypass, err)
			}
			if res.Trap != nil {
				t.Fatalf("spec=%v %v: %v", spec, bypass, res.Trap)
			}
			if err := u.SelfCheck(); err != nil {
				t.Fatalf("spec=%v %v: post-run: %v", spec, bypass, err)
			}
		}
	}
}
