package core

import "fmt"

// SelfCheck validates the RUU's structural invariants; tests run it
// after (and, with Config.SelfCheck, during) simulation:
//
//  1. count is consistent with the head/tail ring positions;
//  2. every used slot lies between head and tail, every free slot
//     outside ("RUU slots that do not lie between RUU_Head and RUU_Tail
//     are free");
//  3. for every register, NI equals the number of in-flight slots
//     destined for it, and NI never exceeds 2^n - 1;
//  4. the LI counter equals the youngest in-flight instance of each
//     register with NI > 0;
//  5. slot sequence numbers strictly increase from head to tail (commit
//     order is program order).
func (u *RUU) SelfCheck() error {
	// (1) + (2): ring shape.
	want := (u.tail - u.head + u.cfg.Size) % u.cfg.Size
	if want == 0 && u.count == u.cfg.Size {
		want = u.cfg.Size
	}
	if u.count != want {
		return fmt.Errorf("core: count=%d but head=%d tail=%d imply %d", u.count, u.head, u.tail, want)
	}
	inWindow := func(pos int) bool {
		if u.count == u.cfg.Size {
			return true
		}
		if u.head <= u.tail {
			return pos >= u.head && pos < u.tail
		}
		return pos >= u.head || pos < u.tail
	}
	for pos := range u.slots {
		if u.slots[pos].used != inWindow(pos) {
			return fmt.Errorf("core: slot %d used=%v but window [%d,%d) count=%d",
				pos, u.slots[pos].used, u.head, u.tail, u.count)
		}
	}

	// (3) + (4): instance counters.
	var ni [256]uint8
	var lastInst [256]uint8
	var lastSeq [256]int64
	u.forEach(func(_ int, s *slot) {
		if s.hasDest {
			f := s.dest.Flat()
			ni[f]++
			if s.seq >= lastSeq[f] {
				lastSeq[f] = s.seq
				lastInst[f] = s.destInst
			}
		}
	})
	for f := range u.ni {
		if u.ni[f] != ni[f] {
			return fmt.Errorf("core: NI[%d]=%d but %d in-flight producers", f, u.ni[f], ni[f])
		}
		if u.ni[f] > u.maxInstances() {
			return fmt.Errorf("core: NI[%d]=%d exceeds 2^n-1=%d", f, u.ni[f], u.maxInstances())
		}
		if ni[f] > 0 && u.li[f] != lastInst[f] {
			return fmt.Errorf("core: LI[%d]=%d but youngest in-flight instance is %d", f, u.li[f], lastInst[f])
		}
	}

	// (5): program order along the queue.
	prev := int64(-1)
	var orderErr error
	u.forEach(func(pos int, s *slot) {
		if orderErr != nil {
			return
		}
		if s.seq <= prev {
			// Invariant-violation path: runs at most once per simulation,
			// immediately before the run aborts, so the allocation cost is
			// irrelevant (SelfCheck is opt-in diagnostics, not cycle work).
			orderErr = fmt.Errorf("core: slot %d seq %d not after %d", pos, s.seq, prev) //ruulint:ok hotpathalloc diagnostic abort path
		}
		prev = s.seq
	})
	return orderErr
}
