package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promSampleRE matches one exposition sample line: a metric name, an
// optional label set, and a float value.
var promSampleRE = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

// validatePrometheus is a strict-enough parser for the text exposition
// format: every sample line must parse, every sample must follow its
// family's HELP/TYPE header, and histogram buckets must be cumulative.
// It returns the parsed samples keyed by full series (name + labels).
func validatePrometheus(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	var lastHist string
	var lastCum float64
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			f := strings.SplitN(line, " ", 4)
			if len(f) < 4 {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if f[1] == "TYPE" {
				switch f[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("line %d: unknown TYPE %q", ln+1, f[3])
				}
				types[f[2]] = f[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		m := promSampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: unparseable sample %q", ln+1, line)
		}
		name := m[1]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suffix); b != name && types[b] == "histogram" {
				base = b
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, name)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		series := name + m[2]
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, series)
		}
		samples[series] = v
		// Bucket monotonicity within one histogram's run of _bucket
		// lines.
		if strings.HasSuffix(name, "_bucket") && types[base] == "histogram" {
			key := name + labelsWithoutLe(m[2])
			if key == lastHist && v < lastCum {
				t.Fatalf("line %d: non-cumulative bucket %q: %v < %v", ln+1, series, v, lastCum)
			}
			lastHist, lastCum = key, v
		} else {
			lastHist, lastCum = "", 0
		}
	}
	return samples
}

func labelsWithoutLe(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, part := range strings.Split(inner, ",") {
		if !strings.HasPrefix(part, "le=") {
			kept = append(kept, part)
		}
	}
	return "{" + strings.Join(kept, ",") + "}"
}

func TestRegistryPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.", Label{"route", "GET /healthz"})
	c.Add(41)
	c.Inc()
	r.GaugeFunc("test_depth", "Queue depth.", func() float64 { return 3 })
	r.CollectFunc("test_jobs", "Jobs by state.", "gauge", func() []Point {
		return []Point{
			{Labels: []Label{{"state", "done"}}, Value: 2},
			{Labels: []Label{{"state", "running"}}, Value: 1},
		}
	})
	h := NewHist(10, 4)
	for _, v := range []int64{1, 12, 25, 999} {
		h.Observe(v)
	}
	r.HistogramFunc("test_latency_ms", "Latency.", func() []LabeledHist {
		return []LabeledHist{{Labels: []Label{{"engine", "ruu"}}, Snap: h.Snapshot()}}
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	samples := validatePrometheus(t, body)

	if got := samples[`test_requests_total{route="GET /healthz"}`]; got != 42 {
		t.Errorf("counter = %v, want 42", got)
	}
	if got := samples[`test_depth`]; got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
	if got := samples[`test_jobs{state="done"}`]; got != 2 {
		t.Errorf("jobs{done} = %v, want 2", got)
	}
	// Histogram: buckets cumulative, +Inf equals count, sum correct.
	if got := samples[`test_latency_ms_bucket{engine="ruu",le="10"}`]; got != 1 {
		t.Errorf("le=10 bucket = %v, want 1", got)
	}
	if got := samples[`test_latency_ms_bucket{engine="ruu",le="+Inf"}`]; got != 4 {
		t.Errorf("le=+Inf bucket = %v, want 4", got)
	}
	if got := samples[`test_latency_ms_count{engine="ruu"}`]; got != 4 {
		t.Errorf("count = %v, want 4", got)
	}
	if got := samples[`test_latency_ms_sum{engine="ruu"}`]; got != 1037 {
		t.Errorf("sum = %v, want 1037", got)
	}
	// Stability: two scrapes of unchanged state are byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != body {
		t.Error("scrape is not byte-stable for unchanged state")
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "0abc", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: expected panic", bad)
				}
			}()
			r.GaugeFunc(bad, "", func() float64 { return 0 })
		}()
	}
	r.GaugeFunc("ok_name", "", func() float64 { return 0 })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate name: expected panic")
			}
		}()
		r.GaugeFunc("ok_name", "", func() float64 { return 0 })
	}()
}

func TestRegistryEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("esc", "multi\nline \\help", func() float64 { return 1 },
		Label{"path", `C:\tmp "x"` + "\n"})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	if !strings.Contains(body, `# HELP esc multi\nline \\help`) {
		t.Errorf("help not escaped: %q", body)
	}
	validatePrometheus(t, body)
}
