package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args"`
}

func runTracer(t *testing.T, feed func(*ChromeTracer)) traceDoc {
	t.Helper()
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	feed(tr)
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestChromeTracerEmpty(t *testing.T) {
	doc := runTracer(t, func(*ChromeTracer) {})
	if len(doc.TraceEvents) != 0 {
		t.Errorf("empty run produced %d events", len(doc.TraceEvents))
	}
}

func TestChromeTracerTimeline(t *testing.T) {
	doc := runTracer(t, func(tr *ChromeTracer) {
		tr.SetDisasm(func(pc int) string { return "fadd S1, S2, S3" })
		tr.Event(Event{Kind: KindFetch, ID: 4, PC: 9, Cycle: 10})
		tr.Event(Event{Kind: KindDecode, ID: 4, PC: 9, Cycle: 11})
		tr.Event(Event{Kind: KindIssue, ID: 4, PC: 9, Cycle: 12})
		tr.Event(Event{Kind: KindExecute, ID: 4, PC: 9, Cycle: 14})
		tr.Event(Event{Kind: KindWriteback, ID: 4, PC: 9, Cycle: 18})
		tr.Event(Event{Kind: KindCommit, ID: 4, PC: 9, Cycle: 20})
		// Events with no instruction attach to nothing.
		tr.Event(Event{Kind: KindStall, ID: NoID, Cycle: 15})
	})

	var meta, slices, instants []traceEvent
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta = append(meta, e)
		case "X":
			slices = append(slices, e)
		case "i":
			instants = append(instants, e)
		}
	}
	if len(meta) != 1 {
		t.Fatalf("want 1 thread_name record, got %d", len(meta))
	}
	name, _ := meta[0].Args["name"].(string)
	if !strings.Contains(name, "I000004") || !strings.Contains(name, "pc=9") || !strings.Contains(name, "fadd") {
		t.Errorf("track name = %q", name)
	}
	// Five recorded stages → five slices, each ending where the next begins.
	if len(slices) != 5 {
		t.Fatalf("want 5 stage slices, got %d: %+v", len(slices), slices)
	}
	byName := map[string]traceEvent{}
	for _, s := range slices {
		if s.Tid != 4 {
			t.Errorf("slice %q on tid %d, want 4", s.Name, s.Tid)
		}
		byName[s.Name] = s
	}
	if s := byName["decode"]; s.Ts != 11 || s.Dur != 1 {
		t.Errorf("decode slice = ts %d dur %d, want 11/1", s.Ts, s.Dur)
	}
	if s := byName["issue"]; s.Ts != 12 || s.Dur != 2 {
		t.Errorf("issue slice = ts %d dur %d, want 12/2", s.Ts, s.Dur)
	}
	if s := byName["writeback"]; s.Ts != 18 || s.Dur != 2 {
		t.Errorf("writeback slice lasts to the commit: ts %d dur %d, want 18/2", s.Ts, s.Dur)
	}
	if len(instants) != 1 || instants[0].Name != "commit" || instants[0].Ts != 20 {
		t.Errorf("terminal instant = %+v", instants)
	}
}

func TestChromeTracerSquashAndLimit(t *testing.T) {
	doc := runTracer(t, func(tr *ChromeTracer) {
		tr.SetLimit(1)
		for id := int64(0); id < 3; id++ {
			tr.Event(Event{Kind: KindIssue, ID: id, PC: int(id), Cycle: id})
			tr.Event(Event{Kind: KindSquash, ID: id, PC: int(id), Cycle: id + 5})
		}
	})
	var meta []traceEvent
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			meta = append(meta, e)
		}
	}
	if len(meta) != 1 {
		t.Fatalf("limit 1 wrote %d tracks", len(meta))
	}
	name, _ := meta[0].Args["name"].(string)
	if !strings.Contains(name, "[squashed]") {
		t.Errorf("squashed track not marked: %q", name)
	}
}

func TestChromeTracerFlushesInFlightSorted(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	for _, id := range []int64{12, 4, 31, 8, 19, 2} {
		tr.Event(Event{Kind: KindIssue, ID: id, PC: int(id), Cycle: id})
		tr.Event(Event{Kind: KindExecute, ID: id, PC: int(id), Cycle: id + 3})
	}
	first := tr.Close()
	if first != nil {
		t.Fatalf("Close: %v", first)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var tids []int64
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			tids = append(tids, e.Tid)
			name, _ := e.Args["name"].(string)
			if !strings.Contains(name, "[in-flight]") {
				t.Errorf("track %d not marked in-flight: %q", e.Tid, name)
			}
		}
		if e.Ph == "i" {
			t.Errorf("in-flight instruction got a terminal instant: %+v", e)
		}
	}
	want := []int64{2, 4, 8, 12, 19, 31}
	if len(tids) != len(want) {
		t.Fatalf("flushed %d tracks (%v), want %v", len(tids), tids, want)
	}
	for i := range want {
		if tids[i] != want[i] {
			t.Fatalf("track order %v, want ascending %v", tids, want)
		}
	}
}

// TestChromeTracerDeterministicClose runs the same in-flight event feed
// twice and requires byte-identical output.
func TestChromeTracerDeterministicClose(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		tr := NewChromeTracer(&buf)
		for id := int64(0); id < 64; id++ {
			tr.Event(Event{Kind: KindIssue, ID: id, PC: int(id), Cycle: id})
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("trace output differs between identical runs:\n%s\n---\n%s", a, b)
	}
}
