package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the service-level metric registry: a minimal,
// dependency-free implementation of the Prometheus text exposition
// format (version 0.0.4) for the counters, gauges, and histograms the
// simulation service publishes at GET /metrics. It deliberately stays
// off the simulator's per-cycle hot path — pipeline-level metrics keep
// flowing through the Probe interface (metrics.go); the registry only
// snapshots service state at scrape time.

// Label is one name="value" pair attached to a metric sample.
type Label struct {
	Name  string
	Value string
}

// Point is one collected sample: a label set and its value.
type Point struct {
	Labels []Label
	Value  float64
}

// LabeledHist is one collected histogram: a label set and a snapshot of
// the observed distribution.
type LabeledHist struct {
	Labels []Label
	Snap   HistSnapshot
}

// Counter is a monotonically increasing metric, safe for concurrent
// use. The zero Counter is ready.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the exposition to stay
// monotonic; Add does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// family is one registered metric family; exactly one of points or
// hists is set, matching typ.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	points func() []Point
	hists  func() []LabeledHist
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Families render in registration order, and
// collectors are expected to return label sets in a stable order, so a
// scrape is byte-stable for unchanged state.
type Registry struct {
	mu       sync.Mutex
	families []*family
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register adds a family, panicking on an invalid or duplicate name —
// metric registration is static wiring, so a clash is a programming
// error, not a runtime condition.
func (r *Registry) register(f *family) {
	if !validMetricName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic(fmt.Sprintf("obs: duplicate metric name %q", f.name))
	}
	r.names[f.name] = true
	r.families = append(r.families, f)
}

// Counter registers a counter family with a fixed label set and
// returns its value cell.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter",
		points: func() []Point {
			return []Point{{Labels: labels, Value: float64(c.Value())}}
		}})
	return c
}

// CounterFunc registers a counter family whose value is read from f at
// scrape time (for counters maintained elsewhere, e.g. scheduler
// totals).
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...Label) {
	r.register(&family{name: name, help: help, typ: "counter",
		points: func() []Point {
			return []Point{{Labels: labels, Value: f()}}
		}})
}

// GaugeFunc registers a gauge family whose value is read from f at
// scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.register(&family{name: name, help: help, typ: "gauge",
		points: func() []Point {
			return []Point{{Labels: labels, Value: f()}}
		}})
}

// CollectFunc registers a counter or gauge family with a dynamic label
// set: collect runs at scrape time and returns one point per label set,
// in a stable order.
func (r *Registry) CollectFunc(name, help, typ string, collect func() []Point) {
	if typ != "counter" && typ != "gauge" {
		panic(fmt.Sprintf("obs: CollectFunc type must be counter or gauge, got %q", typ))
	}
	r.register(&family{name: name, help: help, typ: typ, points: collect})
}

// HistogramFunc registers a histogram family: collect runs at scrape
// time and returns one snapshot per label set, in a stable order.
func (r *Registry) HistogramFunc(name, help string, collect func() []LabeledHist) {
	r.register(&family{name: name, help: help, typ: "histogram", hists: collect})
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (the body of a GET /metrics scrape with
// Accept: text/plain).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.points != nil {
			for _, p := range f.points() {
				writeSample(&b, f.name, p.Labels, "", 0, p.Value)
			}
		}
		if f.hists != nil {
			for _, lh := range f.hists() {
				writeHist(&b, f.name, lh)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHist renders one histogram snapshot as cumulative le-labeled
// buckets plus _sum and _count series.
func writeHist(b *strings.Builder, name string, lh LabeledHist) {
	var cum int64
	for i, c := range lh.Snap.Counts {
		cum += c
		le := strconv.FormatInt(int64(i+1)*lh.Snap.Width, 10)
		writeSample(b, name+"_bucket", lh.Labels, "le", le, float64(cum))
	}
	writeSample(b, name+"_bucket", lh.Labels, "le", "+Inf", float64(lh.Snap.N))
	writeSample(b, name+"_sum", lh.Labels, "", 0, float64(lh.Snap.Sum))
	writeSample(b, name+"_count", lh.Labels, "", 0, float64(lh.Snap.N))
}

// writeSample renders one sample line; extraName/extraVal append a
// final label (the histogram "le" bound). extraVal's type any keeps one
// writer for both string bounds and absent extras.
func writeSample(b *strings.Builder, name string, labels []Label, extraName string, extraVal any, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		b.WriteByte('{')
		// Go's %q escaping covers the three escapes the exposition
		// format defines (backslash, double-quote, newline).
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", l.Name, l.Value)
		}
		if extraName != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", extraName, extraVal)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteByte('\n')
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// validMetricName reports whether name matches the Prometheus metric
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
