package obs

import (
	"strings"
	"testing"
)

func TestHistBuckets(t *testing.T) {
	h := NewHist(4, 3) // buckets: [0,4) [4,8) [8,+)
	for _, v := range []int64{0, 3, 4, 7, 8, 100} {
		h.Observe(v)
	}
	counts := h.Counts()
	if len(counts) != 3 || counts[0] != 2 || counts[1] != 2 || counts[2] != 2 {
		t.Errorf("Counts() = %v, want [2 2 2]", counts)
	}
	if h.N() != 6 {
		t.Errorf("N() = %d, want 6", h.N())
	}
	if h.Max() != 100 {
		t.Errorf("Max() = %d, want 100", h.Max())
	}
	if want := float64(0+3+4+7+8+100) / 6; h.Mean() != want {
		t.Errorf("Mean() = %v, want %v", h.Mean(), want)
	}
	if got := h.BucketLabel(0); got != "0-3" {
		t.Errorf("BucketLabel(0) = %q", got)
	}
	if got := h.BucketLabel(2); got != "8-11+" {
		t.Errorf("BucketLabel(2) = %q (overflow marker missing?)", got)
	}
}

func TestHistUnitWidthAndTrim(t *testing.T) {
	h := NewHist(1, 8)
	h.Observe(0)
	h.Observe(2)
	if got := h.Counts(); len(got) != 3 {
		t.Errorf("trailing zeros not trimmed: %v", got)
	}
	if got := h.BucketLabel(2); got != "2" {
		t.Errorf("BucketLabel(2) = %q, want \"2\"", got)
	}
	// Negative observations clamp into the first bucket.
	h.Observe(-5)
	if got := h.Counts(); got[0] != 2 {
		t.Errorf("negative observation not clamped: %v", got)
	}
}

func TestMetricsAccounting(t *testing.T) {
	m := NewMetrics([]string{"none", "operand", "dest"})

	// Instruction 1: issue at 10, commit at 25 → residency 15.
	m.Event(Event{Kind: KindIssue, ID: 1, Cycle: 10})
	m.Event(Event{Kind: KindCommit, ID: 1, Cycle: 25})
	// Instruction 2: issued then squashed → no residency sample.
	m.Event(Event{Kind: KindIssue, ID: 2, Cycle: 11})
	m.Event(Event{Kind: KindSquash, ID: 2, Cycle: 13})
	// Stalls: two "operand", one unknown code past the name table.
	m.Event(Event{Kind: KindStall, Stall: 1, Cycle: 12})
	m.Event(Event{Kind: KindStall, Stall: 1, Cycle: 13})
	m.Event(Event{Kind: KindStall, Stall: 9, Cycle: 14})

	if n := m.Residency.N(); n != 1 {
		t.Fatalf("residency observations = %d, want 1", n)
	}
	if max := m.Residency.Max(); max != 15 {
		t.Errorf("residency = %d, want 15", max)
	}
	st := m.Stalls()
	if st["operand"] != 2 {
		t.Errorf("stalls[operand] = %d, want 2", st["operand"])
	}
	if st["stall-9"] != 1 {
		t.Errorf("unknown stall code not rendered: %v", st)
	}
	if m.EventCount(KindIssue) != 2 || m.EventCount(KindCommit) != 1 {
		t.Errorf("event counts wrong: issue=%d commit=%d",
			m.EventCount(KindIssue), m.EventCount(KindCommit))
	}

	// Samples drive cycles, occupancy and bus utilisation.
	m.Sample(Sample{Cycle: 1, InFlight: 3, LoadRegs: 1, BusBusy: true})
	m.Sample(Sample{Cycle: 2, InFlight: 5, LoadRegs: 0, BusBusy: false})
	if m.Cycles() != 2 {
		t.Errorf("Cycles() = %d, want 2", m.Cycles())
	}
	if u := m.BusUtilization(); u != 0.5 {
		t.Errorf("BusUtilization() = %v, want 0.5", u)
	}
	if m.Occupancy.Max() != 5 {
		t.Errorf("occupancy max = %d, want 5", m.Occupancy.Max())
	}

	s := m.Summary()
	if s.Cycles != 2 || s.Stalls["operand"] != 2 || s.Residency.N != 1 {
		t.Errorf("summary inconsistent: %+v", s)
	}
	if s.Events["commit"] != 1 {
		t.Errorf("summary events = %v", s.Events)
	}

	var b strings.Builder
	for _, tb := range m.Tables() {
		tb.WriteText(&b)
	}
	out := b.String()
	for _, want := range []string{"Run overview", "occupancy", "Residency", "operand"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables output missing %q:\n%s", want, out)
		}
	}
}
