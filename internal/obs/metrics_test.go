package obs

import (
	"strings"
	"testing"
)

func TestHistBuckets(t *testing.T) {
	h := NewHist(4, 3) // buckets: [0,4) [4,8) [8,+)
	for _, v := range []int64{0, 3, 4, 7, 8, 100} {
		h.Observe(v)
	}
	counts := h.Counts()
	if len(counts) != 3 || counts[0] != 2 || counts[1] != 2 || counts[2] != 2 {
		t.Errorf("Counts() = %v, want [2 2 2]", counts)
	}
	if h.N() != 6 {
		t.Errorf("N() = %d, want 6", h.N())
	}
	if h.Max() != 100 {
		t.Errorf("Max() = %d, want 100", h.Max())
	}
	if want := float64(0+3+4+7+8+100) / 6; h.Mean() != want {
		t.Errorf("Mean() = %v, want %v", h.Mean(), want)
	}
	if got := h.BucketLabel(0); got != "0-3" {
		t.Errorf("BucketLabel(0) = %q", got)
	}
	if got := h.BucketLabel(2); got != "8-11+" {
		t.Errorf("BucketLabel(2) = %q (overflow marker missing?)", got)
	}
}

func TestHistUnitWidthAndTrim(t *testing.T) {
	h := NewHist(1, 8)
	h.Observe(0)
	h.Observe(2)
	if got := h.Counts(); len(got) != 3 {
		t.Errorf("trailing zeros not trimmed: %v", got)
	}
	if got := h.BucketLabel(2); got != "2" {
		t.Errorf("BucketLabel(2) = %q, want \"2\"", got)
	}
	// Negative observations clamp into the first bucket.
	h.Observe(-5)
	if got := h.Counts(); got[0] != 2 {
		t.Errorf("negative observation not clamped: %v", got)
	}
}

func TestMetricsAccounting(t *testing.T) {
	m := NewMetrics([]string{"none", "operand", "dest"})

	// Instruction 1: issue at 10, commit at 25 → residency 15.
	m.Event(Event{Kind: KindIssue, ID: 1, Cycle: 10})
	m.Event(Event{Kind: KindCommit, ID: 1, Cycle: 25})
	// Instruction 2: issued then squashed → no residency sample.
	m.Event(Event{Kind: KindIssue, ID: 2, Cycle: 11})
	m.Event(Event{Kind: KindSquash, ID: 2, Cycle: 13})
	// Stalls: two "operand", one unknown code past the name table.
	m.Event(Event{Kind: KindStall, Stall: 1, Cycle: 12})
	m.Event(Event{Kind: KindStall, Stall: 1, Cycle: 13})
	m.Event(Event{Kind: KindStall, Stall: 9, Cycle: 14})

	if n := m.Residency.N(); n != 1 {
		t.Fatalf("residency observations = %d, want 1", n)
	}
	if max := m.Residency.Max(); max != 15 {
		t.Errorf("residency = %d, want 15", max)
	}
	st := m.Stalls()
	if st["operand"] != 2 {
		t.Errorf("stalls[operand] = %d, want 2", st["operand"])
	}
	if st["stall-9"] != 1 {
		t.Errorf("unknown stall code not rendered: %v", st)
	}
	if m.EventCount(KindIssue) != 2 || m.EventCount(KindCommit) != 1 {
		t.Errorf("event counts wrong: issue=%d commit=%d",
			m.EventCount(KindIssue), m.EventCount(KindCommit))
	}

	// Samples drive cycles, occupancy and bus utilisation.
	m.Sample(Sample{Cycle: 1, InFlight: 3, LoadRegs: 1, BusBusy: true})
	m.Sample(Sample{Cycle: 2, InFlight: 5, LoadRegs: 0, BusBusy: false})
	if m.Cycles() != 2 {
		t.Errorf("Cycles() = %d, want 2", m.Cycles())
	}
	if u := m.BusUtilization(); u != 0.5 {
		t.Errorf("BusUtilization() = %v, want 0.5", u)
	}
	if m.Occupancy.Max() != 5 {
		t.Errorf("occupancy max = %d, want 5", m.Occupancy.Max())
	}

	s := m.Summary()
	if s.Cycles != 2 || s.Stalls["operand"] != 2 || s.Residency.N != 1 {
		t.Errorf("summary inconsistent: %+v", s)
	}
	if s.Events["commit"] != 1 {
		t.Errorf("summary events = %v", s.Events)
	}

	var b strings.Builder
	for _, tb := range m.Tables() {
		tb.WriteText(&b)
	}
	out := b.String()
	for _, want := range []string{"Run overview", "occupancy", "Residency", "operand"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables output missing %q:\n%s", want, out)
		}
	}
}

// TestHistQuantileEdgeCases pins the quantile bound on the shapes the
// exposition and dashboards rely on: the empty histogram, a histogram
// whose observations all share one bucket, and quantiles that land in
// the unbounded overflow bucket.
func TestHistQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every quantile is 0.
	h := NewHist(10, 4)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty hist Quantile(%v) = %d, want 0", q, got)
		}
	}

	// Single bucket (width 10, all values in [0,10)): the bound is the
	// observed max, not the bucket edge.
	h = NewHist(10, 4)
	for _, v := range []int64{1, 2, 7} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("single-bucket Quantile(0.5) = %d, want 7 (clamped to max)", got)
	}
	if got := h.Quantile(1); got != 7 {
		t.Errorf("single-bucket Quantile(1) = %d, want 7", got)
	}

	// A one-bucket histogram is all overflow: still the max.
	h = NewHist(5, 1)
	h.Observe(3)
	h.Observe(400)
	if got := h.Quantile(0.99); got != 400 {
		t.Errorf("one-bucket Quantile(0.99) = %d, want 400", got)
	}

	// Overflow bucket: the 4-bucket width-10 hist covers [0,40); 999
	// overflows, so high quantiles degrade to the observed max while
	// low quantiles keep their bucket-edge bound.
	h = NewHist(10, 4)
	for _, v := range []int64{1, 12, 25, 999} {
		h.Observe(v)
	}
	if got := h.Quantile(0.25); got != 9 {
		t.Errorf("Quantile(0.25) = %d, want 9 (first bucket upper edge)", got)
	}
	if got := h.Quantile(0.5); got != 19 {
		t.Errorf("Quantile(0.5) = %d, want 19", got)
	}
	if got := h.Quantile(1); got != 999 {
		t.Errorf("Quantile(1) = %d, want 999 (overflow -> max)", got)
	}
	// Clamping: q outside [0,1] behaves like the endpoints.
	if got := h.Quantile(-3); got != h.Quantile(0) {
		t.Errorf("Quantile(-3) = %d, want %d", got, h.Quantile(0))
	}
	if got := h.Quantile(9); got != 999 {
		t.Errorf("Quantile(9) = %d, want 999", got)
	}
}

// TestHistSnapshot checks the exposition snapshot: trimmed counts are
// copied (not aliased) and N/Sum/Max survive.
func TestHistSnapshot(t *testing.T) {
	h := NewHist(10, 8)
	for _, v := range []int64{1, 12, 25} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Width != 10 || s.N != 3 || s.Sum != 38 || s.Max != 25 {
		t.Errorf("snapshot = %+v", s)
	}
	if len(s.Counts) != 3 {
		t.Fatalf("trimmed counts = %v, want 3 buckets", s.Counts)
	}
	s.Counts[0] = 99
	if h.Counts()[0] != 1 {
		t.Error("snapshot counts alias the histogram")
	}
	// Empty histogram snapshots to zero counts.
	e := NewHist(1, 4).Snapshot()
	if e.N != 0 || len(e.Counts) != 0 {
		t.Errorf("empty snapshot = %+v", e)
	}
}
