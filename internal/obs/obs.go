// Package obs is the pipeline observability layer: a typed event stream
// describing the lifecycle of every dynamic instruction (fetch, decode,
// issue, dispatch, execute, writeback, commit, squash), per-cycle
// occupancy samples, and the decode-stage stall record. The machine loop
// (internal/machine) and the issue engines emit events through
// issue.Context; anything implementing Probe can consume them.
//
// The package ships three consumers:
//
//   - Metrics: fixed-bucket histograms for engine occupancy, load-register
//     occupancy and per-instruction residency (issue→commit latency),
//     plus stall-reason cycle counts and result-bus utilisation.
//   - ChromeTracer: a Chrome trace-event JSON exporter (one track per
//     dynamic instruction, one slice per pipeline stage) loadable in
//     Perfetto or chrome://tracing.
//   - PipeViewer: a Konata/gem5-O3-style textual pipeline timeline.
//
// A nil Probe disables observability entirely: the emission helpers on
// issue.Context branch on nil and allocate nothing (guarded by
// testing.AllocsPerRun in the test suite), so the hot path pays one
// predictable branch per would-be event.
//
// obs deliberately imports none of the simulator packages (the
// dependency runs the other way: issue → obs), so stall reasons appear
// here as raw codes; consumers that need names receive the name table at
// construction (see issue.StallNames).
package obs

// Kind classifies a pipeline lifecycle event.
type Kind uint8

const (
	// KindFetch: the instruction was fetched into the decode register.
	KindFetch Kind = iota
	// KindDecode: the decode stage first considered the instruction.
	KindDecode
	// KindIssue: the engine accepted the instruction (it occupies a
	// reservation station / RUU entry / ROB slot, or — for the simple
	// engine — went straight to a functional unit).
	KindIssue
	// KindDispatch: the instruction left its entry for a functional unit.
	KindDispatch
	// KindExecute: the functional unit began executing the operation.
	KindExecute
	// KindWriteback: the result appeared on the result bus (or the
	// operation completed without a register result, e.g. a store
	// buffering its data).
	KindWriteback
	// KindCommit: the instruction architecturally completed.
	KindCommit
	// KindSquash: the instruction was nullified (wrong-path entry behind
	// a mispredicted branch, or a provisional machine retirement
	// discarded by a precise interrupt).
	KindSquash
	// KindStall: the decode stage failed to make progress this cycle;
	// Event.Stall carries the reason code.
	KindStall
	// KindTrap: a trap reached the architectural boundary.
	KindTrap

	// NumKinds is the number of event kinds.
	NumKinds
)

var kindNames = [NumKinds]string{
	"fetch", "decode", "issue", "dispatch", "execute",
	"writeback", "commit", "squash", "stall", "trap",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// NoID marks events that are not tied to a dynamic instruction (fetch
// stalls on an empty decode register, traps delivered between
// instructions).
const NoID int64 = -1

// Event is one pipeline lifecycle occurrence. Events are delivered by
// value and never retained by the emitter, so probes may keep them
// without copying.
type Event struct {
	// Kind classifies the event.
	Kind Kind
	// Stall is the stall-reason code (an issue.StallReason) for
	// KindStall events; zero otherwise.
	Stall uint8
	// PC is the instruction's static program counter (instruction
	// index), or the trap PC for KindTrap.
	PC int
	// ID is the dynamic-instruction id assigned at fetch (NoID when the
	// event concerns no particular instruction).
	ID int64
	// Cycle is the simulation cycle the event occurred in.
	Cycle int64
}

// Sample is the per-cycle occupancy snapshot, emitted once per simulated
// cycle after all of the cycle's events.
type Sample struct {
	// Cycle is the simulation cycle.
	Cycle int64
	// InFlight is the engine occupancy (issued, not yet retired).
	InFlight int
	// LoadRegs is the number of busy load registers.
	LoadRegs int
	// BusBusy reports whether a result occupied the result bus this
	// cycle.
	BusBusy bool
}

// Probe consumes the event stream. Implementations are driven from the
// single-threaded machine loop and need no locking.
type Probe interface {
	// Event receives one lifecycle event.
	Event(Event)
	// Sample receives the per-cycle occupancy snapshot.
	Sample(Sample)
}

// Multi fans the stream out to several probes in order.
type Multi []Probe

// Event implements Probe.
func (m Multi) Event(e Event) {
	for _, p := range m {
		p.Event(e)
	}
}

// Sample implements Probe.
func (m Multi) Sample(s Sample) {
	for _, p := range m {
		p.Sample(s)
	}
}

// Combine returns a probe fanning out to all non-nil arguments: nil when
// none remain (preserving the nil fast path), the probe itself for one,
// and a Multi otherwise.
func Combine(probes ...Probe) Probe {
	var live []Probe
	for _, p := range probes {
		if p != nil {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return Multi(live)
	}
}
