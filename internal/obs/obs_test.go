package obs

import "testing"

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindFetch:     "fetch",
		KindDecode:    "decode",
		KindIssue:     "issue",
		KindDispatch:  "dispatch",
		KindExecute:   "execute",
		KindWriteback: "writeback",
		KindCommit:    "commit",
		KindSquash:    "squash",
		KindStall:     "stall",
		KindTrap:      "trap",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), name)
		}
	}
	if Kind(200).String() != "kind?" {
		t.Errorf("out-of-range kind renders as %q", Kind(200).String())
	}
}

func TestCombine(t *testing.T) {
	if Combine() != nil {
		t.Error("Combine() should be nil")
	}
	if Combine(nil, nil) != nil {
		t.Error("Combine(nil, nil) should be nil (preserving the fast path)")
	}
	r := NewRecorder()
	if got := Combine(nil, r, nil); got != Probe(r) {
		t.Errorf("Combine with one live probe should return it unchanged, got %T", got)
	}
	r2 := NewRecorder()
	m := Combine(r, nil, r2)
	if _, ok := m.(Multi); !ok {
		t.Fatalf("Combine with two live probes should return a Multi, got %T", m)
	}
	m.Event(Event{Kind: KindIssue, ID: 7, Cycle: 3})
	m.Sample(Sample{Cycle: 3, InFlight: 1})
	for i, rec := range []*Recorder{r, r2} {
		if len(rec.Events) != 1 || rec.Events[0].ID != 7 {
			t.Errorf("recorder %d missed the fanned-out event: %+v", i, rec.Events)
		}
		if len(rec.Samples) != 1 || rec.Samples[0].InFlight != 1 {
			t.Errorf("recorder %d missed the fanned-out sample: %+v", i, rec.Samples)
		}
	}
}

func TestRecorderHelpers(t *testing.T) {
	r := NewRecorder()
	r.Event(Event{Kind: KindIssue, ID: 1, Cycle: 2})
	r.Event(Event{Kind: KindCommit, ID: 1, Cycle: 9})
	r.Event(Event{Kind: KindIssue, ID: 2, Cycle: 3})
	r.Event(Event{Kind: KindSquash, ID: 2, Cycle: 5})

	if got := r.ByID(1); len(got) != 2 {
		t.Errorf("ByID(1) = %d events, want 2", len(got))
	}
	if c, ok := r.First(1, KindCommit); !ok || c != 9 {
		t.Errorf("First(1, commit) = %d, %v", c, ok)
	}
	if _, ok := r.First(1, KindSquash); ok {
		t.Error("First(1, squash) should not exist")
	}
	if n := r.Count(KindIssue); n != 2 {
		t.Errorf("Count(issue) = %d, want 2", n)
	}
	if got := r.Committed(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Committed() = %v", got)
	}
	if got := r.Squashed(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Squashed() = %v", got)
	}
}
