package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// stageOrder lists the stages rendered as timeline slices, oldest first.
var stageOrder = [...]Kind{KindFetch, KindDecode, KindIssue, KindDispatch, KindExecute, KindWriteback}

// timeline accumulates one dynamic instruction's stage stamps until it
// commits or is squashed.
type timeline struct {
	pc     int
	set    uint16 // bit per Kind
	stamps [NumKinds]int64
}

func (tl *timeline) stamp(k Kind, c int64) {
	if tl.set&(1<<k) == 0 {
		tl.set |= 1 << k
		tl.stamps[k] = c
	}
}

func (tl *timeline) has(k Kind) bool { return tl.set&(1<<k) != 0 }

// ChromeTracer is a probe that writes the event stream as Chrome
// trace-event JSON (the format Perfetto and chrome://tracing load): one
// track (thread) per dynamic instruction, one "X" slice per pipeline
// stage, and an instant event at commit or squash. Timestamps are in
// "microseconds", one microsecond per simulated cycle.
//
// A timeline is buffered per live instruction and written when the
// instruction commits or is squashed, so memory stays proportional to
// the number of in-flight instructions. Instructions still in flight
// when the run stops (e.g. at a trap) are flushed at Close in
// dynamic-id order, their tracks marked "[in-flight]".
type ChromeTracer struct {
	w        *bufio.Writer
	disasm   func(pc int) string
	live     map[int64]*timeline
	limit    int
	written  int
	started  bool
	fragment bool
	pid      int
	err      error
}

// NewChromeTracer returns a tracer writing to w. Call Close after the
// run to terminate the JSON document.
func NewChromeTracer(w io.Writer) *ChromeTracer {
	return &ChromeTracer{w: bufio.NewWriter(w), live: make(map[int64]*timeline)}
}

// NewChromeTracerFragment returns a tracer that emits only the event
// records — comma-separated, without the enclosing traceEvents
// envelope — under the given trace process id. Callers merge several
// fragments (e.g. one pipeline trace per sweep job, plus the
// scheduler's job spans) into one document; the caller owns the commas
// between fragments.
func NewChromeTracerFragment(w io.Writer, pid int) *ChromeTracer {
	return &ChromeTracer{w: bufio.NewWriter(w), live: make(map[int64]*timeline), fragment: true, pid: pid}
}

// SetProcessName labels the tracer's process track in the trace viewer
// (useful when merging fragments: each sweep job names its own
// process). Emit order is preserved, so call it before the run.
func (t *ChromeTracer) SetProcessName(name string) {
	t.emit(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":%s}}`, t.pid, strconv.Quote(name))
}

// SetDisasm installs a disassembler used to label instruction tracks
// (typically prog.Instructions[pc].String).
func (t *ChromeTracer) SetDisasm(f func(pc int) string) { t.disasm = f }

// SetLimit caps the number of instruction timelines written (0 means
// unlimited). Events past the limit are discarded, keeping trace files
// bounded on long runs.
func (t *ChromeTracer) SetLimit(n int) { t.limit = n }

// Event implements Probe.
func (t *ChromeTracer) Event(e Event) {
	if e.ID == NoID || t.err != nil {
		return
	}
	tl := t.live[e.ID]
	if tl == nil {
		if e.Kind == KindCommit || e.Kind == KindSquash || e.Kind == KindStall {
			return // no timeline to attach to (e.g. limit reached)
		}
		tl = &timeline{pc: e.PC}
		t.live[e.ID] = tl
	}
	switch e.Kind {
	case KindStall:
		// Stall cycles show up as width in the decode slice; nothing to
		// record per cycle.
	case KindCommit, KindSquash:
		tl.stamp(e.Kind, e.Cycle)
		delete(t.live, e.ID)
		if t.limit <= 0 || t.written < t.limit {
			t.flush(e.ID, tl)
			t.written++
		}
	default:
		tl.stamp(e.Kind, e.Cycle)
	}
}

// Sample implements Probe; the tracer ignores occupancy samples.
func (t *ChromeTracer) Sample(Sample) {}

func (t *ChromeTracer) emit(format string, args ...any) {
	if t.err != nil {
		return
	}
	if t.started {
		if _, err := t.w.WriteString(",\n"); err != nil {
			t.err = err
			return
		}
	} else {
		if !t.fragment {
			if _, err := t.w.WriteString("{\"traceEvents\":[\n"); err != nil {
				t.err = err
				return
			}
		}
		t.started = true
	}
	if _, err := fmt.Fprintf(t.w, format, args...); err != nil {
		t.err = err
	}
}

// flush writes one instruction's track: a thread_name metadata record,
// an "X" slice per recorded stage (lasting until the next recorded
// stage), and an instant event at the terminal commit/squash cycle.
func (t *ChromeTracer) flush(id int64, tl *timeline) {
	name := fmt.Sprintf("I%06d pc=%d", id, tl.pc)
	if t.disasm != nil {
		name += " " + t.disasm(tl.pc)
	}
	terminal := KindCommit
	switch {
	case tl.has(KindSquash):
		terminal = KindSquash
		name += " [squashed]"
	case tl.has(KindCommit):
	default:
		// Still in flight at Close (the run stopped, e.g. at a trap):
		// no terminal event; slices end at the last recorded stage.
		terminal = NumKinds
		name += " [in-flight]"
	}
	end := int64(0)
	if terminal != NumKinds {
		end = tl.stamps[terminal]
	} else {
		for k := Kind(0); k < NumKinds; k++ {
			if tl.has(k) && tl.stamps[k] > end {
				end = tl.stamps[k]
			}
		}
	}
	t.emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`, t.pid, id, strconv.Quote(name))

	for i, k := range stageOrder {
		if !tl.has(k) {
			continue
		}
		start := tl.stamps[k]
		// The slice lasts until the next recorded stage (or the
		// terminal event), with a minimum visible width of one cycle.
		next := end
		for _, k2 := range stageOrder[i+1:] {
			if tl.has(k2) {
				next = tl.stamps[k2]
				break
			}
		}
		dur := next - start
		if dur < 1 {
			dur = 1
		}
		t.emit(`{"name":%s,"ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"cycle":%d,"pc":%d}}`,
			strconv.Quote(k.String()), start, dur, t.pid, id, start, tl.pc)
	}
	if terminal != NumKinds {
		t.emit(`{"name":%s,"ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"cycle":%d}}`,
			strconv.Quote(terminal.String()), end, t.pid, id, end)
	}
}

// Close writes the timelines of instructions still in flight (never
// committed or squashed, e.g. cut off by a trap) in ascending
// dynamic-id order — map iteration order must never reach the output,
// so traces are byte-stable across runs — then terminates the JSON
// document and flushes the writer. Close does not close the underlying
// writer.
func (t *ChromeTracer) Close() error {
	ids := make([]int64, 0, len(t.live))
	for id := range t.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if t.limit > 0 && t.written >= t.limit {
			break
		}
		t.flush(id, t.live[id])
		t.written++
	}
	t.live = make(map[int64]*timeline)
	if t.err == nil && !t.fragment {
		if t.started {
			_, t.err = t.w.WriteString("\n]}\n")
		} else {
			_, t.err = t.w.WriteString("{\"traceEvents\":[]}\n")
		}
	}
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}
