package obs

import (
	"fmt"
	"math"
	"sort"

	"ruu/internal/report"
)

// Hist is a fixed-bucket histogram: a fixed number of buckets of fixed
// width, with the last bucket absorbing overflow. Fixed shape keeps the
// probe-on path allocation-free after construction.
type Hist struct {
	width  int64
	counts []int64
	n      int64
	sum    int64
	max    int64
}

// NewHist returns a histogram with the given bucket width and bucket
// count (minimums of 1 apply). Bucket i covers [i*width, (i+1)*width);
// the last bucket additionally absorbs everything beyond the range.
func NewHist(width int64, buckets int) *Hist {
	if width < 1 {
		width = 1
	}
	if buckets < 1 {
		buckets = 1
	}
	return &Hist{width: width, counts: make([]int64, buckets)}
}

// Observe records one value. Negative values clamp to the first bucket.
func (h *Hist) Observe(v int64) {
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	i := int64(0)
	if v > 0 {
		i = v / h.width
	}
	if i >= int64(len(h.counts)) {
		i = int64(len(h.counts)) - 1
	}
	h.counts[i]++
}

// N returns the number of observations.
func (h *Hist) N() int64 { return h.n }

// Max returns the largest observed value (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Sum returns the sum of all observed values.
func (h *Hist) Sum() int64 { return h.sum }

// Width returns the bucket width.
func (h *Hist) Width() int64 { return h.width }

// Quantile returns an upper bound on the q-th quantile: the upper edge
// of the bucket holding the ceil(q*n)-th smallest observation, clamped
// to the observed maximum. q is clamped to [0, 1]; an empty histogram
// returns 0. Observations that landed in the overflow bucket are only
// known to be at least its lower edge, so when the quantile falls
// there the bound degrades to the observed maximum.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i == len(h.counts)-1 {
				// Overflow bucket: unbounded above, so the max is the
				// only honest bound.
				return h.max
			}
			hi := int64(i+1)*h.width - 1
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// HistSnapshot is a point-in-time copy of a histogram's state, the
// input to the Prometheus exposition writer (registry.go).
type HistSnapshot struct {
	// Width is the bucket width; Counts the per-bucket counts with
	// trailing empties trimmed (bucket i covers [i*Width, (i+1)*Width)).
	Width  int64
	Counts []int64
	// N, Sum and Max summarise the observations.
	N   int64
	Sum int64
	Max int64
}

// Snapshot returns a copy of the histogram's current state (the counts
// slice is owned by the caller).
func (h *Hist) Snapshot() HistSnapshot {
	trimmed := h.Counts()
	counts := make([]int64, len(trimmed))
	copy(counts, trimmed)
	return HistSnapshot{Width: h.width, Counts: counts, N: h.n, Sum: h.sum, Max: h.max}
}

// Counts returns the bucket counts with trailing empty buckets trimmed.
// The returned slice aliases the histogram; treat it as read-only.
func (h *Hist) Counts() []int64 {
	end := len(h.counts)
	for end > 0 && h.counts[end-1] == 0 {
		end--
	}
	return h.counts[:end]
}

// BucketLabel renders bucket i's value range ("3" for unit-width
// buckets, "12-15" otherwise, with a "+" suffix on the overflow bucket).
func (h *Hist) BucketLabel(i int) string {
	lo := int64(i) * h.width
	overflow := ""
	if i == len(h.counts)-1 {
		overflow = "+"
	}
	if h.width == 1 {
		return fmt.Sprintf("%d%s", lo, overflow)
	}
	return fmt.Sprintf("%d-%d%s", lo, lo+h.width-1, overflow)
}

// HistSummary is the JSON-friendly rendering of a histogram.
type HistSummary struct {
	// BucketWidth is the value range covered by one bucket.
	BucketWidth int64 `json:"bucket_width"`
	// Counts are the bucket counts, trailing zeros trimmed; bucket i
	// covers [i*width, (i+1)*width).
	Counts []int64 `json:"counts"`
	// N is the number of observations.
	N int64 `json:"n"`
	// Mean is the arithmetic mean.
	Mean float64 `json:"mean"`
	// Max is the largest observation.
	Max int64 `json:"max"`
}

// Summary returns the JSON-friendly rendering.
func (h *Hist) Summary() HistSummary {
	return HistSummary{
		BucketWidth: h.width,
		Counts:      h.Counts(),
		N:           h.n,
		Mean:        h.Mean(),
		Max:         h.max,
	}
}

// Metrics is the metrics-collecting probe: occupancy and residency
// histograms, per-reason stall cycles, event counts, and result-bus
// utilisation.
type Metrics struct {
	stallNames []string

	cycles   int64
	busBusy  int64
	events   [NumKinds]int64
	stalls   []int64
	issuedAt map[int64]int64

	// Occupancy is the per-cycle engine occupancy (in-flight entries).
	Occupancy *Hist
	// LoadRegOccupancy is the per-cycle busy load-register count.
	LoadRegOccupancy *Hist
	// Residency is the per-committed-instruction issue→commit latency.
	Residency *Hist
}

// NewMetrics returns a metrics probe. stallNames maps stall-reason codes
// to names (issue.StallNames); unknown codes render as "stall-<code>".
func NewMetrics(stallNames []string) *Metrics {
	return &Metrics{
		stallNames:       stallNames,
		stalls:           make([]int64, len(stallNames)),
		issuedAt:         make(map[int64]int64),
		Occupancy:        NewHist(1, 64),
		LoadRegOccupancy: NewHist(1, 32),
		Residency:        NewHist(4, 64),
	}
}

// Event implements Probe.
func (m *Metrics) Event(e Event) {
	m.events[e.Kind]++
	switch e.Kind {
	case KindIssue:
		m.issuedAt[e.ID] = e.Cycle
	case KindCommit:
		if c, ok := m.issuedAt[e.ID]; ok {
			m.Residency.Observe(e.Cycle - c)
			delete(m.issuedAt, e.ID)
		}
	case KindSquash:
		delete(m.issuedAt, e.ID)
	case KindStall:
		for int(e.Stall) >= len(m.stalls) {
			m.stalls = append(m.stalls, 0)
		}
		m.stalls[e.Stall]++
	default:
		// Fetch/decode/dispatch/execute/writeback/trap only bump events[].
	}
}

// Sample implements Probe.
func (m *Metrics) Sample(s Sample) {
	m.cycles++
	if s.BusBusy {
		m.busBusy++
	}
	m.Occupancy.Observe(int64(s.InFlight))
	m.LoadRegOccupancy.Observe(int64(s.LoadRegs))
}

// Cycles returns the number of sampled cycles.
func (m *Metrics) Cycles() int64 { return m.cycles }

// EventCount returns the number of events of kind k.
func (m *Metrics) EventCount(k Kind) int64 { return m.events[k] }

// BusUtilization returns the fraction of sampled cycles in which the
// result bus carried a result.
func (m *Metrics) BusUtilization() float64 {
	if m.cycles == 0 {
		return 0
	}
	return float64(m.busBusy) / float64(m.cycles)
}

func (m *Metrics) stallName(code int) string {
	if code < len(m.stallNames) {
		return m.stallNames[code]
	}
	return fmt.Sprintf("stall-%d", code)
}

// Stalls returns the per-reason stall cycle counts, keyed by reason
// name; reasons with zero cycles are omitted.
func (m *Metrics) Stalls() map[string]int64 {
	out := make(map[string]int64)
	for code, n := range m.stalls {
		if n > 0 {
			out[m.stallName(code)] = n
		}
	}
	return out
}

// Summary is the JSON-friendly rendering of the collected metrics.
type Summary struct {
	Cycles           int64            `json:"cycles"`
	BusUtilization   float64          `json:"bus_utilization"`
	Stalls           map[string]int64 `json:"stalls"`
	Occupancy        HistSummary      `json:"occupancy"`
	LoadRegOccupancy HistSummary      `json:"loadreg_occupancy"`
	Residency        HistSummary      `json:"residency"`
	Events           map[string]int64 `json:"events"`
}

// Summary returns the JSON-friendly rendering.
func (m *Metrics) Summary() Summary {
	ev := make(map[string]int64)
	for k := Kind(0); k < NumKinds; k++ {
		if m.events[k] > 0 {
			ev[k.String()] = m.events[k]
		}
	}
	return Summary{
		Cycles:           m.cycles,
		BusUtilization:   m.BusUtilization(),
		Stalls:           m.Stalls(),
		Occupancy:        m.Occupancy.Summary(),
		LoadRegOccupancy: m.LoadRegOccupancy.Summary(),
		Residency:        m.Residency.Summary(),
		Events:           ev,
	}
}

// Tables renders the collected metrics as report tables (occupancy
// distribution, residency distribution, stall breakdown, and a one-row
// overview), for WriteText/WriteMarkdown/WriteCSV.
func (m *Metrics) Tables() []*report.Table {
	overview := report.New("Run overview",
		"Cycles", "Committed", "Squashed", "Bus Utilization", "Mean Occupancy", "Mean Residency")
	overview.Add(m.cycles, m.events[KindCommit], m.events[KindSquash],
		m.BusUtilization(), m.Occupancy.Mean(), m.Residency.Mean())

	occ := report.New("Engine occupancy (entries x cycles)", "Entries", "Cycles")
	for i, n := range m.Occupancy.Counts() {
		occ.Add(m.Occupancy.BucketLabel(i), n)
	}

	res := report.New("Residency (issue to commit, cycles x instructions)", "Cycles", "Instructions")
	for i, n := range m.Residency.Counts() {
		res.Add(m.Residency.BucketLabel(i), n)
	}

	// Rows sort by reason name, not by stall code: the rendered table
	// must be byte-stable even if the code numbering is reshuffled, and
	// named lookup is what readers diff across runs.
	st := report.New("Decode stalls by reason", "Reason", "Cycles")
	type stallRow struct {
		name string
		n    int64
	}
	rows := make([]stallRow, 0, len(m.stalls))
	for code, n := range m.stalls {
		if n > 0 {
			rows = append(rows, stallRow{m.stallName(code), n})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		st.Add(r.name, r.n)
	}

	return []*report.Table{overview, occ, res, st}
}
