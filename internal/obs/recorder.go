package obs

// Recorder is a probe that stores the whole stream in memory — test and
// debugging support for asserting on event ordering and occupancy.
type Recorder struct {
	// Events holds every delivered event in delivery order.
	Events []Event
	// Samples holds every per-cycle sample.
	Samples []Sample
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Event implements Probe.
func (r *Recorder) Event(e Event) { r.Events = append(r.Events, e) }

// Sample implements Probe.
func (r *Recorder) Sample(s Sample) { r.Samples = append(r.Samples, s) }

// ByID returns the events of one dynamic instruction, in delivery order.
func (r *Recorder) ByID(id int64) []Event {
	var out []Event
	for _, e := range r.Events {
		if e.ID == id {
			out = append(out, e)
		}
	}
	return out
}

// First returns the cycle of the first event of the given kind for the
// given instruction, and whether one exists.
func (r *Recorder) First(id int64, k Kind) (int64, bool) {
	for _, e := range r.Events {
		if e.ID == id && e.Kind == k {
			return e.Cycle, true
		}
	}
	return 0, false
}

// Count returns the number of events of kind k across all instructions.
func (r *Recorder) Count(k Kind) int {
	n := 0
	for _, e := range r.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Committed returns the ids of instructions with a commit event, in
// commit order.
func (r *Recorder) Committed() []int64 {
	var out []int64
	for _, e := range r.Events {
		if e.Kind == KindCommit {
			out = append(out, e.ID)
		}
	}
	return out
}

// Squashed returns the ids of instructions with a squash event, in
// squash order.
func (r *Recorder) Squashed() []int64 {
	var out []int64
	for _, e := range r.Events {
		if e.Kind == KindSquash {
			out = append(out, e.ID)
		}
	}
	return out
}
