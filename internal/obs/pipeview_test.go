package obs

import (
	"strings"
	"testing"
)

func TestPipeViewer(t *testing.T) {
	var b strings.Builder
	v := NewPipeViewer(&b, 0)
	v.SetDisasm(func(pc int) string { return "fmul S3, S1, S2" })
	v.Event(Event{Kind: KindFetch, ID: 7, PC: 5, Cycle: 40})
	v.Event(Event{Kind: KindDecode, ID: 7, PC: 5, Cycle: 41})
	v.Event(Event{Kind: KindIssue, ID: 7, PC: 5, Cycle: 42})
	v.Event(Event{Kind: KindExecute, ID: 7, PC: 5, Cycle: 44})
	v.Event(Event{Kind: KindWriteback, ID: 7, PC: 5, Cycle: 48})
	v.Event(Event{Kind: KindCommit, ID: 7, PC: 5, Cycle: 50})
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 { // header + one instruction
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	line := lines[1]
	if !strings.Contains(line, "I000007") || !strings.Contains(line, "pc=5") || !strings.Contains(line, "fmul") {
		t.Errorf("line = %q", line)
	}
	// Timeline spans fetch (40) to commit (50): 11 columns, stages at
	// their cycle offsets, '.' elsewhere.
	start := strings.Index(line, "|")
	end := strings.LastIndex(line, "|")
	tlStr := line[start+1 : end]
	if tlStr != "FDI.E...W.C" {
		t.Errorf("timeline = %q, want FDI.E...W.C", tlStr)
	}
}

func TestPipeViewerLimit(t *testing.T) {
	var b strings.Builder
	v := NewPipeViewer(&b, 2)
	for id := int64(0); id < 5; id++ {
		v.Event(Event{Kind: KindIssue, ID: id, Cycle: id})
		v.Event(Event{Kind: KindCommit, ID: id, Cycle: id + 3})
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 { // header + 2 instructions
		t.Errorf("limit 2 wrote %d lines:\n%s", len(lines), b.String())
	}
}

func TestPipeViewerSquash(t *testing.T) {
	var b strings.Builder
	v := NewPipeViewer(&b, 0)
	v.Event(Event{Kind: KindIssue, ID: 1, Cycle: 10})
	v.Event(Event{Kind: KindSquash, ID: 1, Cycle: 12})
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "I.X") {
		t.Errorf("squash timeline missing X:\n%s", b.String())
	}
}

func TestPipeViewerFlushesInFlightSorted(t *testing.T) {
	var b strings.Builder
	v := NewPipeViewer(&b, 0)
	// Issue events arrive for several ids that never commit: Close must
	// render them all, in ascending id order, marked in-flight.
	for _, id := range []int64{9, 3, 17, 5, 11, 2, 14, 7} {
		v.Event(Event{Kind: KindIssue, ID: id, PC: int(id), Cycle: id})
		v.Event(Event{Kind: KindExecute, ID: id, PC: int(id), Cycle: id + 2})
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 9 { // header + 8 instructions
		t.Fatalf("got %d lines:\n%s", len(lines), b.String())
	}
	wantOrder := []string{"I000002", "I000003", "I000005", "I000007", "I000009", "I000011", "I000014", "I000017"}
	for i, want := range wantOrder {
		line := lines[i+1]
		if !strings.HasPrefix(line, want) {
			t.Errorf("line %d = %q, want prefix %s (sorted id order)", i+1, line, want)
		}
		if !strings.Contains(line, "[in-flight]") {
			t.Errorf("line %d = %q, missing [in-flight] marker", i+1, line)
		}
	}
}

func TestPipeViewerCloseHonorsLimit(t *testing.T) {
	var b strings.Builder
	v := NewPipeViewer(&b, 3)
	v.Event(Event{Kind: KindIssue, ID: 0, Cycle: 1})
	v.Event(Event{Kind: KindCommit, ID: 0, Cycle: 2})
	for id := int64(1); id <= 5; id++ {
		v.Event(Event{Kind: KindIssue, ID: id, Cycle: id})
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 { // header + 1 committed + 2 in-flight (limit 3)
		t.Errorf("limit 3 wrote %d lines:\n%s", len(lines), b.String())
	}
}
