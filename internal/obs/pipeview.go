package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// stageChar is the timeline letter for each stage.
var stageChar = [NumKinds]byte{
	KindFetch:     'F',
	KindDecode:    'D',
	KindIssue:     'I',
	KindDispatch:  'P',
	KindExecute:   'E',
	KindWriteback: 'W',
	KindCommit:    'C',
	KindSquash:    'X',
}

// PipeViewer is a probe rendering a Konata / gem5-O3-pipeview-style
// textual pipeline timeline: one line per dynamic instruction, one
// column per cycle from fetch to commit:
//
//	I000007 @    42 |F.D.IPE..W...C| pc=5 fmul S3, S1, S2
//
// F=fetch D=decode I=issue P=dispatch E=execute W=writeback C=commit
// X=squash, '.' = waiting. The '@' column is the fetch cycle, so
// relative alignment between consecutive lines follows from the cycle
// numbers. Lines are written when the instruction commits or is
// squashed, in completion order; instructions still in flight when the
// run stops are written at Close in dynamic-id order (never in map
// order — output must be byte-stable across runs).
type PipeViewer struct {
	w       *bufio.Writer
	disasm  func(pc int) string
	live    map[int64]*timeline
	limit   int
	written int
	header  bool
	err     error
}

// NewPipeViewer returns a viewer writing to w, stopping after limit
// instructions (0 means unlimited). Call Close after the run.
func NewPipeViewer(w io.Writer, limit int) *PipeViewer {
	return &PipeViewer{w: bufio.NewWriter(w), limit: limit, live: make(map[int64]*timeline)}
}

// SetDisasm installs a disassembler used to label lines.
func (v *PipeViewer) SetDisasm(f func(pc int) string) { v.disasm = f }

// Event implements Probe.
func (v *PipeViewer) Event(e Event) {
	if e.ID == NoID || v.err != nil {
		return
	}
	if v.limit > 0 && v.written >= v.limit {
		return
	}
	tl := v.live[e.ID]
	if tl == nil {
		if e.Kind == KindCommit || e.Kind == KindSquash || e.Kind == KindStall {
			return
		}
		tl = &timeline{pc: e.PC}
		v.live[e.ID] = tl
	}
	switch e.Kind {
	case KindStall:
		// Stall cycles appear as '.' padding between stage letters.
	case KindCommit, KindSquash:
		tl.stamp(e.Kind, e.Cycle)
		delete(v.live, e.ID)
		v.render(e.ID, tl)
		v.written++
	default:
		tl.stamp(e.Kind, e.Cycle)
	}
}

// Sample implements Probe; the viewer ignores occupancy samples.
func (v *PipeViewer) Sample(Sample) {}

func (v *PipeViewer) render(id int64, tl *timeline) {
	if !v.header {
		v.header = true
		fmt.Fprintln(v.w, "pipeline timeline: F=fetch D=decode I=issue P=dispatch E=execute W=writeback C=commit X=squash ('@' = fetch cycle)")
	}
	// The line spans the earliest to the latest recorded stamp; for an
	// instruction cut off in flight there is no terminal letter.
	first := true
	var start, last int64
	for k := Kind(0); k < NumKinds; k++ {
		if !tl.has(k) {
			continue
		}
		if first || tl.stamps[k] < start {
			start = tl.stamps[k]
		}
		if first || tl.stamps[k] > last {
			last = tl.stamps[k]
		}
		first = false
	}
	if first {
		return // nothing recorded; no line to draw
	}
	width := int(last - start + 1)
	line := make([]byte, width)
	for i := range line {
		line[i] = '.'
	}
	for k := Kind(0); k < NumKinds; k++ {
		if tl.has(k) && stageChar[k] != 0 {
			line[tl.stamps[k]-start] = stageChar[k]
		}
	}
	label := ""
	if v.disasm != nil {
		label = " " + v.disasm(tl.pc)
	}
	if !tl.has(KindCommit) && !tl.has(KindSquash) {
		label += " [in-flight]"
	}
	_, err := fmt.Fprintf(v.w, "I%06d @%6d |%s| pc=%d%s\n", id, start, line, tl.pc, label)
	if err != nil {
		v.err = err
	}
}

// Close renders instructions still in flight (never committed or
// squashed, e.g. cut off by a trap) in ascending dynamic-id order, then
// flushes the viewer. Close does not close the underlying writer.
func (v *PipeViewer) Close() error {
	ids := make([]int64, 0, len(v.live))
	for id := range v.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if v.limit > 0 && v.written >= v.limit {
			break
		}
		v.render(id, v.live[id])
		v.written++
	}
	v.live = make(map[int64]*timeline)
	if err := v.w.Flush(); err != nil && v.err == nil {
		v.err = err
	}
	return v.err
}
