package obs

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// This file is the request-tracing half of service observability: a
// request ID and a job name travel through context from the HTTP layer
// into scheduler jobs, the scheduler reports one Span per executed job,
// and a SpanRecorder renders the collected spans as Chrome trace-event
// JSON — loadable in Perfetto next to the pipeline traces ChromeTracer
// writes, so a whole sweep is visible as scheduler activity above its
// per-instruction timelines.

// ctxKey is the private context-key namespace.
type ctxKey int

const (
	requestIDKey ctxKey = iota
	jobNameKey
)

// WithRequestID returns ctx carrying the request ID (unchanged when id
// is empty).
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the request ID carried by ctx ("" when none).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// WithJobName returns ctx carrying a human-readable job name for spans
// (unchanged when name is empty).
func WithJobName(ctx context.Context, name string) context.Context {
	if name == "" {
		return ctx
	}
	return context.WithValue(ctx, jobNameKey, name)
}

// JobNameFrom returns the job name carried by ctx ("" when none).
func JobNameFrom(ctx context.Context) string {
	name, _ := ctx.Value(jobNameKey).(string)
	return name
}

// Span is one scheduler job's service-side lifecycle: enqueue, start
// on a worker, finish. Timestamps are wall-clock nanoseconds — this is
// operational telemetry about the host process, never simulated time.
type Span struct {
	// Name is the job's display name (WithJobName); empty renders as
	// "job".
	Name string
	// RequestID is the originating request's ID (WithRequestID), if any.
	RequestID string
	// Worker is the index of the pool worker that ran the job.
	Worker int
	// EnqueueNS, StartNS and EndNS are wall-clock nanosecond stamps for
	// submission, execution start, and completion.
	EnqueueNS int64
	StartNS   int64
	EndNS     int64
	// Err reports whether the job finished with an error.
	Err bool
}

// QueueWaitNS returns the nanoseconds the job spent queued before a
// worker picked it up.
func (s Span) QueueWaitNS() int64 { return s.StartNS - s.EnqueueNS }

// SpanRecorder collects job spans; it is safe for concurrent use (the
// pool's workers report spans as jobs finish).
type SpanRecorder struct {
	mu    sync.Mutex
	spans []Span
	limit int
}

// NewSpanRecorder returns an empty recorder.
func NewSpanRecorder() *SpanRecorder { return &SpanRecorder{} }

// SetLimit caps the number of recorded spans (0 means unlimited);
// spans past the cap are dropped, keeping long-lived servers bounded.
func (r *SpanRecorder) SetLimit(n int) {
	r.mu.Lock()
	r.limit = n
	r.mu.Unlock()
}

// Record appends one span.
func (r *SpanRecorder) Record(s Span) {
	r.mu.Lock()
	if r.limit <= 0 || len(r.spans) < r.limit {
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (r *SpanRecorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Len returns the number of recorded spans.
func (r *SpanRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// WriteChromeTrace writes the recorded spans as a complete Chrome
// trace-event JSON document (open in Perfetto). Scheduler activity
// renders as process 0 ("scheduler") with one track per worker; each
// job is a "queued" slice from submission to execution start (when the
// wait is nonzero) followed by a run slice, both carrying the request
// ID. Timestamps are microseconds relative to the earliest submission.
func (r *SpanRecorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	wrote, err := r.writeChromeEvents(bw, true)
	if err != nil {
		return err
	}
	end := "\n]}\n"
	if !wrote {
		end = "]}\n"
	}
	if _, err := bw.WriteString(end); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTraceFragment writes the spans' trace events without the
// enclosing document, for callers merging them with other fragments
// (e.g. per-job pipeline traces) into one document. It reports whether
// anything was written; the caller owns the commas between fragments.
func (r *SpanRecorder) WriteChromeTraceFragment(w io.Writer) (bool, error) {
	bw := bufio.NewWriter(w)
	wrote, err := r.writeChromeEvents(bw, true)
	if err != nil {
		return wrote, err
	}
	return wrote, bw.Flush()
}

// writeChromeEvents emits the span events comma-separated; first is
// whether the next record is the document's first (no leading comma).
func (r *SpanRecorder) writeChromeEvents(w *bufio.Writer, first bool) (bool, error) {
	spans := r.Spans()
	if len(spans) == 0 {
		return false, nil
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].EnqueueNS != spans[j].EnqueueNS {
			return spans[i].EnqueueNS < spans[j].EnqueueNS
		}
		return spans[i].StartNS < spans[j].StartNS
	})
	epoch := spans[0].EnqueueNS
	var err error
	emit := func(format string, args ...any) {
		if err != nil {
			return
		}
		if !first {
			if _, err = w.WriteString(",\n"); err != nil {
				return
			}
		}
		first = false
		_, err = fmt.Fprintf(w, format, args...)
	}

	emit(`{"name":"process_name","ph":"M","pid":0,"args":{"name":"scheduler"}}`)
	workers := map[int]bool{}
	for _, s := range spans {
		if !workers[s.Worker] {
			workers[s.Worker] = true
		}
	}
	ids := make([]int, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		emit(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%s}}`,
			id, strconv.Quote(fmt.Sprintf("worker %d", id)))
	}

	us := func(ns int64) int64 { return (ns - epoch) / 1000 }
	for _, s := range spans {
		name := s.Name
		if name == "" {
			name = "job"
		}
		if wait := us(s.StartNS) - us(s.EnqueueNS); wait > 0 {
			emit(`{"name":%s,"ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":{"request_id":%s,"state":"queued"}}`,
				strconv.Quote(name+" (queued)"), us(s.EnqueueNS), wait, s.Worker, strconv.Quote(s.RequestID))
		}
		dur := us(s.EndNS) - us(s.StartNS)
		if dur < 1 {
			dur = 1
		}
		emit(`{"name":%s,"ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":{"request_id":%s,"queue_wait_us":%d,"error":%v}}`,
			strconv.Quote(name), us(s.StartNS), dur, s.Worker, strconv.Quote(s.RequestID), s.QueueWaitNS()/1000, s.Err)
	}
	return true, err
}
