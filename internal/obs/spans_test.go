package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestRequestIDAndJobNameContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestIDFrom(ctx); got != "" {
		t.Errorf("empty ctx request id = %q", got)
	}
	ctx = WithRequestID(ctx, "req-1")
	ctx = WithJobName(ctx, "sweep LLL3")
	if got := RequestIDFrom(ctx); got != "req-1" {
		t.Errorf("request id = %q, want req-1", got)
	}
	if got := JobNameFrom(ctx); got != "sweep LLL3" {
		t.Errorf("job name = %q, want sweep LLL3", got)
	}
	// Empty values leave the context untouched.
	if WithRequestID(ctx, "") != ctx || WithJobName(ctx, "") != ctx {
		t.Error("empty id/name should return ctx unchanged")
	}
}

func TestSpanRecorderChromeTrace(t *testing.T) {
	r := NewSpanRecorder()
	r.Record(Span{Name: "seed 2", RequestID: "req-9", Worker: 1,
		EnqueueNS: 2_000_000, StartNS: 5_000_000, EndNS: 9_000_000})
	r.Record(Span{Name: "seed 1", Worker: 0,
		EnqueueNS: 1_000_000, StartNS: 1_000_000, EndNS: 3_000_000, Err: true})

	var b bytes.Buffer
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, b.String())
	}
	var names []string
	for _, ev := range doc.TraceEvents {
		names = append(names, ev.Name)
		// Metadata records carry the display name in args.
		if n, ok := ev.Args["name"].(string); ok {
			names = append(names, n)
		}
	}
	joined := strings.Join(names, "|")
	for _, want := range []string{"process_name", "worker 0", "worker 1", "seed 1", "seed 2", "seed 2 (queued)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q in %v", want, names)
		}
	}
	// seed 1 had zero queue wait: no queued slice for it.
	if strings.Contains(joined, "seed 1 (queued)") {
		t.Error("zero-wait span should not render a queued slice")
	}
	// Spans sort by enqueue time, so epoch is seed 1's enqueue and
	// seed 2's run slice starts at (5ms-1ms) = 4000us.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "seed 2" {
			if ev.Ts != 4000 {
				t.Errorf("seed 2 ts = %v, want 4000", ev.Ts)
			}
			if ev.Args["request_id"] != "req-9" {
				t.Errorf("seed 2 request_id = %v", ev.Args["request_id"])
			}
		}
	}
}

func TestSpanRecorderEmptyAndLimit(t *testing.T) {
	r := NewSpanRecorder()
	var b bytes.Buffer
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("empty trace not valid JSON: %s", b.String())
	}
	var frag bytes.Buffer
	wrote, err := r.WriteChromeTraceFragment(&frag)
	if err != nil || wrote || frag.Len() != 0 {
		t.Fatalf("empty fragment: wrote=%v err=%v len=%d", wrote, err, frag.Len())
	}

	r.SetLimit(1)
	r.Record(Span{Name: "a"})
	r.Record(Span{Name: "b"})
	if n := r.Len(); n != 1 {
		t.Errorf("limited recorder kept %d spans, want 1", n)
	}
}

// TestMergedSweepTrace exercises the merge shape ruusim's sweep tracer
// produces: per-job pipeline fragments plus the scheduler's span
// fragment in one document.
func TestMergedSweepTrace(t *testing.T) {
	// Two per-job pipeline fragments under distinct pids.
	var f1, f2 bytes.Buffer
	tr1 := NewChromeTracerFragment(&f1, 1)
	tr1.SetProcessName("seed 1")
	tr1.Event(Event{Kind: KindFetch, ID: 1, PC: 0, Cycle: 0})
	tr1.Event(Event{Kind: KindCommit, ID: 1, PC: 0, Cycle: 3})
	if err := tr1.Close(); err != nil {
		t.Fatal(err)
	}
	tr2 := NewChromeTracerFragment(&f2, 2)
	tr2.SetProcessName("seed 2")
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}

	rec := NewSpanRecorder()
	rec.Record(Span{Name: "seed 1", Worker: 0, EnqueueNS: 0, StartNS: 1000, EndNS: 5000})

	var out bytes.Buffer
	out.WriteString("{\"traceEvents\":[\n")
	first := true
	for _, frag := range []*bytes.Buffer{&f1, &f2} {
		if frag.Len() == 0 {
			continue
		}
		if !first {
			out.WriteString(",\n")
		}
		out.Write(frag.Bytes())
		first = false
	}
	if rec.Len() > 0 {
		if !first {
			out.WriteString(",\n")
		}
		if _, err := rec.WriteChromeTraceFragment(&out); err != nil {
			t.Fatal(err)
		}
	}
	out.WriteString("\n]}\n")

	var doc traceDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace invalid: %v\n%s", err, out.String())
	}
	var sawScheduler, sawPipeline bool
	for _, ev := range doc.TraceEvents {
		if ev.Name == "process_name" && ev.Args["name"] == "scheduler" {
			sawScheduler = true
		}
		if ev.Name == "fetch" {
			sawPipeline = true
		}
	}
	if !sawScheduler || !sawPipeline {
		t.Errorf("merged trace missing scheduler (%v) or pipeline (%v) events", sawScheduler, sawPipeline)
	}
}
