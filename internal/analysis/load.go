package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Load parses and type-checks every non-test package of the module
// rooted at dir (the directory holding go.mod). Only the standard
// library and the module's own packages may be imported — by design the
// module carries no external dependencies, and the loader enforces it:
// an import outside both resolves through the source importer and fails
// if absent from GOROOT.
//
// Directories named "testdata", hidden directories, and directories
// without non-test Go files are skipped, as are files whose //go:build
// constraint is not satisfied for this host (see fileExcluded).
func Load(dir string) (*Module, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	dirOf := map[string]string{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		dirOf[imp] = path
		return nil
	})
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		dirOf:   dirOf,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	paths := make([]string, 0, len(dirOf))
	for p := range dirOf {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	mod := &Module{Path: modPath, Dir: root}
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		mod.Packages = append(mod.Packages, pkg)
	}
	return mod, nil
}

// LoadDir parses and type-checks a single standalone directory of Go
// files (test fixtures) under the given import path. Imports resolve
// against the standard library only.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		dirOf:   map[string]string{importPath: dir},
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	return l.load(importPath)
}

type loader struct {
	fset    *token.FileSet
	std     types.Importer
	dirOf   map[string]string // module import path → directory
	pkgs    map[string]*Package
	loading map[string]bool
}

// Import implements types.Importer: module-local packages are
// type-checked from source recursively, everything else is delegated to
// the standard-library source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirOf[path]; ok {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirOf[path]
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if fileExcluded(f) {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("%s: multiple packages in one directory (%s and %s)", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: every Go file is excluded by its build constraint", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		// Instances resolves uses of generic functions and methods to
		// their type arguments; without it the call graph and SSA
		// builder would see instantiation sites as bare generic
		// objects and could neither resolve nor version them.
		Instances: map[*ast.Ident]types.Instance{},
		Implicits: map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// fileExcluded reports whether a //go:build constraint above the
// package clause excludes the file for this host. The loader evaluates
// constraints the way `go build` would with no extra tags: the host's
// GOOS and GOARCH, the gc compiler, and every go1.N release tag are
// satisfied; any other tag (ignore, integration, a foreign GOOS) is
// not. Legacy // +build lines without a //go:build line are not
// interpreted — the repo predates none of its files, so every
// constrained file carries the modern form.
func fileExcluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return false // malformed constraint: let the type checker complain
			}
			return !expr.Eval(buildTagSatisfied)
		}
	}
	return false
}

// buildTagSatisfied is the loader's default tag set.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "unix":
		return true
	}
	// Release tags: the source importer resolves against the running
	// toolchain's GOROOT, so every go1.N it defines is satisfied.
	return strings.HasPrefix(tag, "go1.")
}

// goFileNames lists a directory's non-test Go files, sorted.
func goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}

// ModulePathOf reads the module path from dir's go.mod without loading
// anything — the cached lint path needs the pass set (whose scopes are
// module-path-prefixed) before it knows whether a load is necessary.
func ModulePathOf(dir string) (string, error) {
	return modulePath(filepath.Join(dir, "go.mod"))
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
