package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sarifTestFindings() []Finding {
	fs := []Finding{
		{Pass: "ctxflow", Pos: token.Position{Filename: "/repo/internal/sched/sched.go", Line: 75, Column: 2}, Message: "ctx in struct"},
		{Pass: "mutexguard", Pos: token.Position{Filename: "/repo/internal/server/server.go", Line: 10, Column: 4}, Message: "unguarded access"},
		{Pass: "httpcontract", Pos: token.Position{Filename: "/elsewhere/x.go", Line: 3, Column: 1}, Message: "outside root"},
	}
	SortFindings(fs)
	return fs
}

func sarifTestPasses() []*Pass {
	return []*Pass{
		{Name: "mutexguard", Doc: "guarded fields hold their lock"},
		{Name: "ctxflow", Doc: "context threads request paths"},
		{Name: "httpcontract", Doc: "one status per path"},
	}
}

// TestSARIFByteStable pins the byte-for-byte determinism the artifact
// cache and CI upload rely on.
func TestSARIFByteStable(t *testing.T) {
	a, err := MarshalSARIF(sarifTestFindings(), sarifTestPasses(), "/repo")
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalSARIF(sarifTestFindings(), sarifTestPasses(), "/repo")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two MarshalSARIF calls over the same findings differ")
	}
}

// TestSARIFShape validates the structural contract: version, driver,
// sorted rules, one result per finding with repo-relative URIs.
func TestSARIFShape(t *testing.T) {
	raw, err := MarshalSARIF(sarifTestFindings(), sarifTestPasses(), "/repo")
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema = %q / %q, want 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "ruulint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	for i := 1; i < len(run.Tool.Driver.Rules); i++ {
		if run.Tool.Driver.Rules[i-1].ID >= run.Tool.Driver.Rules[i].ID {
			t.Errorf("rules not sorted: %q >= %q", run.Tool.Driver.Rules[i-1].ID, run.Tool.Driver.Rules[i].ID)
		}
	}
	if len(run.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(run.Results))
	}
	for _, r := range run.Results {
		if r.Level != "error" || r.Message.Text == "" || len(r.Locations) != 1 {
			t.Errorf("malformed result %+v", r)
		}
		if strings.Contains(r.Locations[0].PhysicalLocation.ArtifactLocation.URI, "\\") {
			t.Errorf("URI %q not slash-separated", r.Locations[0].PhysicalLocation.ArtifactLocation.URI)
		}
		if r.Locations[0].PhysicalLocation.Region.StartLine < 1 {
			t.Errorf("region startLine %d < 1", r.Locations[0].PhysicalLocation.Region.StartLine)
		}
	}
	// Findings inside root are repo-relative; the outside one keeps its
	// absolute path.
	var uris []string
	for _, r := range run.Results {
		uris = append(uris, r.Locations[0].PhysicalLocation.ArtifactLocation.URI)
	}
	joined := strings.Join(uris, " ")
	if !strings.Contains(joined, "internal/sched/sched.go") || strings.Contains(joined, "/repo/internal") {
		t.Errorf("in-root URIs not relativized: %v", uris)
	}
	if !strings.Contains(joined, "/elsewhere/x.go") {
		t.Errorf("out-of-root URI lost: %v", uris)
	}
}

// TestSARIFEmpty keeps the empty log valid: results must be [], not
// null, for code scanning to accept a clean run.
func TestSARIFEmpty(t *testing.T) {
	raw, err := MarshalSARIF(nil, sarifTestPasses(), "/repo")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"results": []`)) {
		t.Errorf("empty findings must serialize as \"results\": [], got:\n%s", raw)
	}
}
