package analysis

import (
	"strings"
	"testing"
)

// TestHotPathAllocEscapeNotes pins the SSA upgrade to hotpathalloc:
// the escape analysis must reproduce every allocation finding (notes
// are append-only — no site gained or lost relative to the syntactic
// pass, which checkWants already pins) and must actually explain the
// sites whose values provably leave the frame.
func TestHotPathAllocEscapeNotes(t *testing.T) {
	pkg := loadFixture(t, "hotpathalloc")
	findings := Check([]*Package{pkg}, []*Pass{NewHotPathAlloc(fixtureHotConfig())})
	if len(findings) == 0 {
		t.Fatal("no findings on the hotpathalloc fixture")
	}

	// Sites whose allocations flow out of the frame in the fixture must
	// carry a value-flow route; frame-local ones must not.
	wantNote := map[string]bool{
		"&pair literal":  false, // p := &pair{...}; _ = p stays in-frame
		"make allocates": true,  // stored to the receiver field e.buf
		"new allocates":  false, // q stays local
	}
	noted := 0
	for _, f := range findings {
		hasNote := strings.Contains(f.Message, "; escapes: ")
		if hasNote {
			noted++
		}
		for prefix, want := range wantNote {
			if strings.Contains(f.Message, prefix) && hasNote != want {
				t.Errorf("site %q: escape note present=%v, want %v (%s)", prefix, hasNote, want, f.Message)
			}
		}
	}
	if noted == 0 {
		t.Error("no finding carries an escape note; the SSA layer is disconnected from hotpathalloc")
	}
}
