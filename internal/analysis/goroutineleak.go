package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NewGoroutineLeak returns the goroutineleak pass, restricted to the
// given import-path prefixes (the service packages).
//
// A leaked goroutine in a server is a slow resource exhaustion that no
// single test run observes; before the sweep fabric multiplies every
// spawn site across shards, each go statement must carry visible
// evidence that it terminates:
//
//   - registration with a tracked sync.WaitGroup (a Done call in the
//     body — the spawner's Add/Wait is then the shutdown path), or
//   - no unbounded loop at all (the body runs to completion on its
//     own; range over a channel counts as bounded, terminating when
//     the sender closes it), or
//   - every `for {}` loop containing a return reached from a
//     ctx.Done()/quit-channel receive.
//
// Independently, a send on an unbuffered channel from inside a
// goroutine is flagged unless it sits in a select with an escape arm:
// if the receiver has already given up (the classic ctx-timeout race),
// the send blocks forever and pins the goroutine. Buffering the
// channel (make(chan T, 1)) makes the send unconditional.
//
// The pass resolves `go f(...)` through package-local functions and
// methods; spawns of out-of-package callees are trusted (flagging what
// it cannot see would punish every stdlib helper).
func NewGoroutineLeak(scope ...string) *Pass {
	p := &Pass{
		Name: "goroutineleak",
		Doc:  "every go statement has a visible termination path; no unbuffered sends from goroutines",
	}
	p.Run = func(pkg *Package) []Finding {
		if !inScope(pkg.Path, scope) {
			return nil
		}
		var out []Finding
		add := func(n ast.Node, format string, args ...any) {
			out = append(out, Finding{Pass: p.Name, Pos: pkg.Pos(n), Message: fmt.Sprintf(format, args...)})
		}
		decls := declBodies(pkg)
		unbuffered := unbufferedChans(pkg)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body := spawnedBody(pkg, decls, g.Call)
				if body == nil {
					return true
				}
				checkTermination(pkg, g, body, add)
				checkGoroutineSends(pkg, body, unbuffered, add)
				return true
			})
		}
		return out
	}
	return p
}

// declBodies maps package-local function objects to their bodies.
func declBodies(pkg *Package) map[types.Object]*ast.BlockStmt {
	out := map[types.Object]*ast.BlockStmt{}
	for _, fd := range funcDecls(pkg) {
		if fd.Body != nil {
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				out[obj] = fd.Body
			}
		}
	}
	return out
}

// spawnedBody resolves the body a go statement runs: a literal's own
// body, or the declaration of a package-local callee.
func spawnedBody(pkg *Package, decls map[types.Object]*ast.BlockStmt, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		return decls[pkg.Info.Uses[fun]]
	case *ast.SelectorExpr:
		return decls[pkg.Info.Uses[fun.Sel]]
	}
	return nil
}

// checkTermination flags a spawned body with no visible termination
// path.
func checkTermination(pkg *Package, g *ast.GoStmt, body *ast.BlockStmt, add func(ast.Node, string, ...any)) {
	if callsWaitGroupDone(pkg, body) {
		return
	}
	for _, loop := range unboundedLoops(body) {
		if loopCanExit(loop) {
			continue
		}
		add(g, "goroutine loops forever (for at line %d) with no WaitGroup registration and no ctx/quit-driven return; it can never terminate",
			pkg.Pos(loop).Line)
	}
}

// callsWaitGroupDone reports a Done() call on a sync.WaitGroup in the
// body (outside nested literals): the goroutine is tracked, and the
// spawner's Wait is its shutdown path.
func callsWaitGroupDone(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if t := pkg.Info.TypeOf(sel.X); t != nil {
			if named, ok := derefType(t).(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// unboundedLoops collects `for {}` / `for true {}` loops in the body,
// not descending into nested function literals. Range loops — over a
// channel or anything else — are bounded: a channel range ends when
// the sender closes it, which is a visible termination contract.
func unboundedLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var out []*ast.ForStmt
	inspectShallow(body, func(n ast.Node) bool {
		f, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if f.Cond == nil {
			out = append(out, f)
		} else if id, ok := f.Cond.(*ast.Ident); ok && id.Name == "true" {
			out = append(out, f)
		}
		return true
	})
	return out
}

// loopCanExit reports a return statement (or a receive from a Done()
// channel, whose arm conventionally returns) inside the loop body.
func loopCanExit(loop *ast.ForStmt) bool {
	can := false
	inspectShallow(loop.Body, func(n ast.Node) bool {
		if can {
			return false
		}
		if _, ok := n.(*ast.ReturnStmt); ok {
			can = true
			return false
		}
		return true
	})
	return can
}

// checkGoroutineSends flags sends on unbuffered channels from inside
// the spawned body, outside a select with an escape arm.
func checkGoroutineSends(pkg *Package, body *ast.BlockStmt, unbuffered map[types.Object]bool, add func(ast.Node, string, ...any)) {
	guarded := map[*ast.SendStmt]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		escape := false
		for _, c := range sel.Body.List {
			if comm, ok := c.(*ast.CommClause); ok && comm.Comm == nil {
				escape = true // default
			}
		}
		for _, c := range sel.Body.List {
			comm, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := comm.Comm.(*ast.SendStmt); ok && (escape || len(sel.Body.List) > 1) {
				guarded[send] = true
			}
		}
		return true
	})
	inspectShallow(body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok || guarded[send] {
			return true
		}
		obj := chanObject(pkg, send.Chan)
		if obj != nil && unbuffered[obj] {
			add(send, "send on unbuffered channel %s from a goroutine blocks forever if the receiver has given up; buffer it (make(chan T, 1)) or select on cancellation",
				obj.Name())
		}
		return true
	})
}

// unbufferedChans maps channel objects to whether their make call has
// no capacity argument.
func unbufferedChans(pkg *Package) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(id *ast.Ident, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(pkg.Info, call, "make") {
			return
		}
		if t := pkg.Info.TypeOf(call); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				return
			}
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			out[obj] = len(call.Args) < 2
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							record(id, n.Rhs[i])
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, id := range n.Names {
						record(id, n.Values[i])
					}
				}
			}
			return true
		})
	}
	return out
}

// chanObject resolves the channel expression to a variable object.
func chanObject(pkg *Package, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[e.Sel]
	}
	return nil
}

// derefType strips one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// inspectShallow walks the node without descending into nested
// function literals (their goroutines and loops are analyzed at their
// own spawn sites).
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		return fn(c)
	})
}
