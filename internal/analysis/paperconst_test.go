package analysis

import "testing"

// fixturePaperSpec anchors the paperconst pass to values the fixture
// deliberately restates, drifts from, or derives.
func fixturePaperSpec() PaperSpec {
	return PaperSpec{
		CanonicalPath: "canonical", // not the fixture: the fixture is checked
		Anchors: map[string]PaperAnchor{
			"loadregs": {Value: 6, Ref: "isa.PaperLoadRegs"},
			"numt":     {Value: 64, Ref: "isa.PaperNumT"},
			"latmem":   {Value: 5, Ref: "isa.LatMem"},
		},
		Sweeps:     map[string][]int64{"ruusizes": {3, 4, 6}},
		UnitPrefix: "Unit",
		ScopePkgs:  []string{"paperconst"},
	}
}

func TestPaperConstFixtures(t *testing.T) {
	pkg := loadFixture(t, "paperconst")
	checkWants(t, pkg, NewPaperConst(fixturePaperSpec()))
}

func TestPaperConstCanonicalExempt(t *testing.T) {
	pkg := loadFixture(t, "paperconst")
	spec := fixturePaperSpec()
	// The canonical package is the one place the literals belong.
	spec.CanonicalPath = "paperconst"
	if fs := Check([]*Package{pkg}, []*Pass{NewPaperConst(spec)}); len(fs) != 0 {
		t.Errorf("canonical package produced %d findings: %v", len(fs), fs)
	}
}
