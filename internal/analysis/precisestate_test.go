package analysis

import "testing"

func TestPreciseStateFixtures(t *testing.T) {
	pkg := loadFixture(t, "precisestate")
	allow := Allowlist{"precisestate": {"commit"}}
	checkWants(t, pkg, NewPreciseState(allow))
}

func TestPreciseStateEmptyAllowlist(t *testing.T) {
	pkg := loadFixture(t, "precisestate")
	// With no allowlist even commit is flagged: the set is closed by
	// configuration, not by naming convention.
	findings := Check([]*Package{pkg}, []*Pass{NewPreciseState(nil)})
	sawCommit := false
	for _, f := range findings {
		if f.Pos.Line > 0 && f.Pass == "precisestate" {
			sawCommit = true
		}
	}
	if !sawCommit || len(findings) != 5 {
		// 3 in dispatch (bad.go) + 2 in commit (clean.go).
		t.Errorf("empty allowlist: got %d findings, want 5: %v", len(findings), findings)
	}
}
