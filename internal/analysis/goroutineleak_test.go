package analysis

import "testing"

func TestGoroutineLeakFixtures(t *testing.T) {
	pkg := loadFixture(t, "goroutineleak")
	checkWants(t, pkg, NewGoroutineLeak())
}
