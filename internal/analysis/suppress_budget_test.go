package analysis

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"
)

// TestSuppressionBudget pins the repo's suppression debt: exactly which
// files carry //ruulint:ok markers, for which passes, and how many.
// A new suppression anywhere — or a silently vanished one — fails this
// test, so spending the budget is a reviewed act (update the table in
// the same commit, with the justification in the marker).
func TestSuppressionBudget(t *testing.T) {
	mod := loadRepo(t)
	got := map[string]int{}
	total := 0
	for _, pkg := range mod.Packages {
		for _, m := range markersIn(pkg) {
			rel, err := filepath.Rel(mod.Dir, m.pos.Filename)
			if err != nil {
				rel = m.pos.Filename
			}
			for _, pass := range m.passes {
				got[fmt.Sprintf("%s %s", filepath.ToSlash(rel), pass)]++
				total++
			}
		}
	}

	// The full budget: 21 justified suppressions, all in the two
	// goroutine-bearing service packages (whose concurrency is
	// individually justified against simdeterminism/ctxflow) and at four
	// audited cold-path allocation sites.
	want := map[string]int{
		"internal/core/selfcheck.go hotpathalloc":   1,
		"internal/dfa/bound.go hotpathalloc":        1,
		"internal/sched/cache.go hotpathalloc":      1,
		"internal/sched/sched.go ctxflow":           1,
		"internal/sched/sched.go hotpathalloc":      1,
		"internal/sched/sched.go simdeterminism":    6,
		"internal/server/observe.go simdeterminism": 2,
		"internal/server/server.go ctxflow":         1,
		"internal/server/server.go simdeterminism":  7,
	}
	wantTotal := 0
	for _, n := range want {
		wantTotal += n
	}
	for key, n := range got {
		if want[key] != n {
			t.Errorf("suppressions for %q: got %d, want %d", key, n, want[key])
		}
	}
	for key, n := range want {
		if got[key] != n {
			t.Errorf("suppressions for %q: got %d, want %d", key, got[key], n)
		}
	}
	if total != wantTotal {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			t.Logf("census: %q: %d,", k, got[k])
		}
		t.Errorf("total suppressions: got %d, want %d", total, wantTotal)
	}
}
