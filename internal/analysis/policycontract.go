package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"ruu/internal/analysis/ssa"
)

// The policycontract pass enforces the engine/policy interface rules
// the pluggable-issue-logic refactor depends on. precisestate draws
// the first line — mutator calls only inside allowlisted functions —
// but an allowlist is a syntactic fence: it cannot tell architectural
// state from a scratch copy, and it says nothing about how a mutation
// site is reached. This pass adds the value-flow half of the
// contract, in three rules:
//
//  1. state-origin: every RegState/Memory mutation outside the
//     audited commit/writeback set must operate on state the function
//     built locally (a shadow copy for self-checking is legitimate).
//     The SSA layer traces the mutated receiver to its origin: a
//     receiver flowing in from the engine (method receiver, parameter,
//     or a field thereof) mutated outside the audited set is a
//     contract violation, reported with the call-graph path from the
//     engine entry point that reaches it.
//
//  2. probe-discipline: engines emit observability events through the
//     nil-guarded Context helpers (Observe/ObserveStall/
//     ObserveSample), never by calling .Probe.Event directly — the
//     direct call panics on a nil probe and skips the zero-allocation
//     fast path the noalloc claim is built on. Only the Context
//     helpers themselves may touch the field.
//
//  3. issue-order determinism: no map iteration anywhere in the issue
//     surface of an engine (its entry-point methods and everything
//     they reach inside the package). Map order is random per run;
//     submission-order determinism — the property the scheduler's
//     result cache and every golden test rely on — dies the moment
//     issue order depends on it. simdeterminism flags order-dependent
//     map ranges heuristically; inside an engine the rule is total.
//
// Engine identification reuses the probeemit fingerprint (the
// issue.Engine method set by name), so fixtures work without
// importing the real interface. See docs/ANALYSIS.md (v4).

// NewPolicyContract returns the policycontract pass over the given
// scope, sharing the audited-mutator allowlist with precisestate.
func NewPolicyContract(allow Allowlist, scope ...string) *Pass {
	var graph *CallGraph
	var prog *ssa.Program
	return &Pass{
		Name:    "policycontract",
		Doc:     "engine/policy interface rules: state-origin, probe discipline, issue-order determinism",
		Version: 1,
		Cache:   CacheModule,
		Init: func(snap *Snapshot) {
			graph = snap.Graph()
			prog = snap.ValueFlow()
		},
		Run: func(pkg *Package) []Finding {
			if graph == nil || !inScope(pkg.Path, scope) {
				return nil
			}
			var out []Finding
			out = append(out, checkStateOrigin(pkg, graph, prog, allow)...)
			out = append(out, checkProbeDiscipline(pkg)...)
			out = append(out, checkIssueOrderDeterminism(pkg)...)
			return out
		},
	}
}

// checkStateOrigin implements rule 1: mutations outside the audited
// set must target locally constructed state.
func checkStateOrigin(pkg *Package, graph *CallGraph, prog *ssa.Program, allow Allowlist) []Finding {
	var out []Finding
	for _, fd := range funcDecls(pkg) {
		if fd.Body == nil || allow.allowed(pkg.Path, fd.Name.Name) {
			continue
		}
		fd := fd
		var sf *ssa.Func // built lazily: most functions have no mutator calls
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, meth, ok := mutatorCall(pkg.Info, call)
			if !ok {
				return true
			}
			if sf == nil {
				sf = prog.FuncOf(ssa.Source{Decl: fd, Fset: pkg.Fset, Info: pkg.Info})
			}
			if receiverIsLocal(pkg, sf, call) {
				return true // a shadow copy built in this function: not architectural state
			}
			msg := fmt.Sprintf(
				"%s.%s mutates architectural state flowing in from outside %s, which is not in the audited commit/writeback set",
				recv, meth, fd.Name.Name)
			if path := entryPath(pkg, graph, fd); path != "" {
				msg += "; reachable from " + path
			}
			msg += "; route the write through the commit path or build the state locally"
			out = append(out, Finding{Pass: "policycontract", Pos: pkg.Pos(call), Message: msg})
			return true
		})
	}
	return out
}

// receiverIsLocal traces the mutator call's receiver through the SSA
// def-use chains: true only when every path to the receiver bottoms
// out in a value constructed inside the function (composite literal,
// &literal, or new). Parameters, the method receiver, fields, and
// anything unanalyzable count as flowing in from outside.
func receiverIsLocal(pkg *Package, f *ssa.Func, call *ast.CallExpr) bool {
	if f == nil || f.Approx {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base := baseIdent(sel.X)
	if base == nil {
		return false
	}
	d, ok := f.UseDef[base]
	if !ok {
		return false
	}
	return defIsLocalConstruction(f, d, map[*ssa.Def]bool{})
}

// baseIdent unwraps selectors, derefs, indexes, and parens down to the
// base identifier of a receiver expression (st in st.regs[i].SetReg).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func defIsLocalConstruction(f *ssa.Func, d *ssa.Def, seen map[*ssa.Def]bool) bool {
	if d == nil || seen[d] {
		return false
	}
	seen[d] = true
	switch d.Kind {
	case ssa.DefAssign:
		if d.Rhs == nil {
			return false
		}
		switch rhs := ast.Unparen(d.Rhs).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			_, isLit := ast.Unparen(rhs.X).(*ast.CompositeLit)
			return isLit
		case *ast.CallExpr:
			if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && (id.Name == "new" || id.Name == "make") {
				if _, isBuiltin := f.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
			return false
		case *ast.Ident:
			// Copied from another local: follow it.
			if d2, ok := f.UseDef[rhs]; ok {
				return defIsLocalConstruction(f, d2, seen)
			}
			return false
		default:
			return false
		}
	case ssa.DefZero:
		// var st RegState — a zero value declared here is local.
		return true
	case ssa.DefPhi:
		for _, a := range d.Args {
			if !defIsLocalConstruction(f, a, seen) {
				return false
			}
		}
		return len(d.Args) > 0
	default: // DefParam, DefRange: flows in from outside the function
		return false
	}
}

// entryPath renders the shortest call-graph route from an engine entry
// point to fd, e.g. "(*RUU).BeginCycle via tryWakeup -> broadcast".
// Empty when no engine entry point reaches fd.
func entryPath(pkg *Package, graph *CallGraph, fd *ast.FuncDecl) string {
	target, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if target == nil {
		return ""
	}
	entries := make([]string, 0, len(engineEntryPoints))
	for entry := range engineEntryPoints {
		entries = append(entries, entry)
	}
	sort.Strings(entries)
	var best []*types.Func
	var bestEntry *types.Func
	for _, tn := range engineTypeNames(pkg) {
		for _, entry := range entries {
			root := graph.Lookup(pkg.Path, tn, entry)
			if root == nil {
				continue
			}
			p := callPath(graph, root, target)
			if p != nil && (best == nil || len(p) < len(best)) {
				best, bestEntry = p, root
			}
		}
	}
	if best == nil {
		return ""
	}
	s := "(*" + namedRecvOf(bestEntry) + ")." + bestEntry.Name()
	if len(best) > 1 {
		via := make([]string, 0, len(best)-1)
		for _, fn := range best[1:] {
			via = append(via, fn.Name())
		}
		s += " via " + strings.Join(via, " -> ")
	}
	return s
}

// callPath BFSes the module call graph from root, returning the node
// sequence root..target (shortest, deterministic), or nil.
func callPath(graph *CallGraph, root, target *types.Func) []*types.Func {
	if root == target {
		return []*types.Func{root}
	}
	prev := map[*types.Func]*types.Func{root: root}
	queue := []*types.Func{root}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		n := graph.nodes[fn]
		if n == nil {
			continue
		}
		for _, e := range n.edges {
			if _, seen := prev[e.callee]; seen {
				continue
			}
			prev[e.callee] = fn
			if e.callee == target {
				var path []*types.Func
				for at := target; ; at = prev[at] {
					path = append([]*types.Func{at}, path...)
					if at == root {
						return path
					}
				}
			}
			queue = append(queue, e.callee)
		}
	}
	return nil
}

// checkProbeDiscipline implements rule 2: no direct method calls on a
// Probe field outside the Context nil-guard helpers.
func checkProbeDiscipline(pkg *Package) []Finding {
	var out []Finding
	for _, fd := range funcDecls(pkg) {
		if fd.Body == nil {
			continue
		}
		if recvTypeName(fd) == "Context" {
			continue // the nil-guard helpers themselves
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			probe, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok || !isProbeField(pkg.Info, probe) {
				return true
			}
			out = append(out, Finding{
				Pass: "policycontract",
				Pos:  pkg.Pos(call),
				Message: fmt.Sprintf(
					"direct %s call on the Probe field bypasses the nil-guard helpers (panics with no probe attached, and skips the zero-allocation fast path); use Context.Observe/ObserveStall/ObserveSample",
					sel.Sel.Name),
			})
			return true
		})
	}
	return out
}

// isProbeField reports whether sel selects an interface-typed struct
// field named Probe.
func isProbeField(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal || sel.Sel.Name != "Probe" {
		return false
	}
	return types.IsInterface(s.Obj().Type())
}

// checkIssueOrderDeterminism implements rule 3: no map ranges in the
// issue surface of an engine.
func checkIssueOrderDeterminism(pkg *Package) []Finding {
	engines := engineTypeNames(pkg)
	if len(engines) == 0 {
		return nil
	}
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, fd := range funcDecls(pkg) {
		if fd.Body == nil {
			continue
		}
		if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
			decls[fn] = fd
		}
	}
	// surface[fn] names the engine entry whose issue surface reaches
	// fn (first engine/entry found wins; one finding per site).
	surface := map[*types.Func]string{}
	var queue []*types.Func
	reach := func(fn *types.Func, via string) {
		if fn == nil || surface[fn] != "" {
			return
		}
		if _, here := decls[fn]; !here {
			return // out of package: its own package's pass covers it
		}
		surface[fn] = via
		queue = append(queue, fn)
	}
	for _, tn := range engines {
		for _, fd := range funcDecls(pkg) {
			if recvTypeName(fd) != tn || !engineEntryPoints[fd.Name.Name] {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			reach(fn, "(*"+tn+")."+fd.Name.Name)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		via := surface[fn]
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeFunc(pkg.Info, call); callee != nil {
				reach(callee, via)
			}
			return true
		})
	}

	var out []Finding
	fns := make([]*types.Func, 0, len(surface))
	for fn := range surface {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return decls[fns[i]].Pos() < decls[fns[j]].Pos() })
	for _, fn := range fns {
		via := surface[fn]
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			out = append(out, Finding{
				Pass: "policycontract",
				Pos:  pkg.Pos(rs),
				Message: fmt.Sprintf(
					"map iteration inside the issue surface of an engine (reached from %s): map order is randomized per run and breaks submission-order determinism; iterate a slice or sort the keys first",
					via),
			})
			return true
		})
	}
	return out
}
