package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// This file owns the suppression syntax. A finding is silenced in
// place with
//
//	//ruulint:ok <pass>[,<pass>...] <justification>
//
// on the offending line or the line above it. The pass name is
// mandatory: a marker suppresses only the passes it names, so a
// justification written for one rule can never silently swallow a
// finding from another. Bare markers (no pass name) suppress nothing
// and are themselves findings of the "suppression" meta-pass below, as
// are unknown pass names and markers without a justification.
//
// Documentation may mention the syntax without creating a live marker
// by using a placeholder pass name in angle brackets, as in
// "//ruulint:ok <pass>", which the parser ignores.

// okMarker is the literal suppression marker.
const okMarker = "ruulint:ok"

// suppressMarker is one parsed suppression-marker occurrence.
type suppressMarker struct {
	// pos is the marker's own position (not the comment group's).
	pos token.Position
	// passes are the comma-separated pass names following the marker;
	// empty for a bare marker.
	passes []string
	// justified reports whether the comment group carries prose beyond
	// the marker and its pass list.
	justified bool
}

// markersIn parses every suppression marker in the package.
// Placeholder markers ("<pass>") are skipped entirely.
func markersIn(pkg *Package) []suppressMarker {
	var out []suppressMarker
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			prose := groupProse(cg)
			for _, c := range cg.List {
				idx := strings.Index(c.Text, okMarker)
				if idx < 0 {
					continue
				}
				names, placeholder := parsePassList(c.Text[idx+len(okMarker):])
				if placeholder {
					continue
				}
				out = append(out, suppressMarker{
					pos:       pkg.Fset.Position(c.Pos() + token.Pos(idx)),
					passes:    names,
					justified: prose,
				})
			}
		}
	}
	return out
}

// parsePassList extracts the comma-separated pass names immediately
// following a marker. placeholder reports a documentation mention
// ("<pass>") that is not a live marker.
func parsePassList(rest string) (names []string, placeholder bool) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false // bare marker
	}
	first := fields[0]
	if strings.HasPrefix(first, "<") {
		return nil, true
	}
	for _, n := range strings.Split(first, ",") {
		n = strings.TrimSpace(n)
		if n != "" {
			names = append(names, n)
		}
	}
	return names, false
}

// groupProse reports whether the comment group carries justification
// prose: at least two words beyond every marker line's core (the
// marker token and its pass list). The justification may precede the
// marker in the same group (the prevailing style) or trail it on the
// marker line.
func groupProse(cg *ast.CommentGroup) bool {
	words := 0
	for _, c := range cg.List {
		text := strings.TrimLeft(c.Text, "/* ")
		text = strings.TrimRight(text, "*/ ")
		if idx := strings.Index(text, okMarker); idx >= 0 {
			before := text[:idx]
			before = strings.TrimRight(before, "/ ")
			after := text[idx+len(okMarker):]
			// Drop the pass list; the rest of the line is prose.
			if fields := strings.Fields(after); len(fields) > 0 && !strings.HasPrefix(fields[0], "<") {
				after = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(after), fields[0]))
			}
			words += len(strings.Fields(before)) + len(strings.Fields(after))
			continue
		}
		words += len(strings.Fields(text))
	}
	return words >= 2
}

// suppressedPasses collects, per file and line, the set of pass names
// suppressed there: each named marker covers its own line and the line
// after it (trailing or preceding-line placement). Bare markers cover
// nothing.
func suppressedPasses(pkg *Package) map[string]map[int]map[string]bool {
	out := map[string]map[int]map[string]bool{}
	add := func(file string, line int, pass string) {
		byLine := out[file]
		if byLine == nil {
			byLine = map[int]map[string]bool{}
			out[file] = byLine
		}
		set := byLine[line]
		if set == nil {
			set = map[string]bool{}
			byLine[line] = set
		}
		set[pass] = true
	}
	for _, m := range markersIn(pkg) {
		for _, pass := range m.passes {
			add(m.pos.Filename, m.pos.Line, pass)
			add(m.pos.Filename, m.pos.Line+1, pass)
		}
	}
	return out
}

// NewSuppressionCheck returns the lint-the-linter "suppression" pass:
// every suppression marker must name at least one pass, every named
// pass must exist (the known list is the wired pass set), and the
// marker's comment group must justify the suppression in prose. A bare
// or misspelled marker silences nothing, so without this pass it would
// fail silently; with it, it fails loudly.
func NewSuppressionCheck(known []string) *Pass {
	knownSet := map[string]bool{}
	for _, n := range known {
		knownSet[n] = true
	}
	p := &Pass{
		Name: "suppression",
		Doc:  "every //ruulint:ok names a known pass and carries a justification",
	}
	p.Run = func(pkg *Package) []Finding {
		var out []Finding
		add := func(pos token.Position, msg string) {
			out = append(out, Finding{Pass: p.Name, Pos: pos, Message: msg})
		}
		for _, m := range markersIn(pkg) {
			if len(m.passes) == 0 {
				add(m.pos, "bare //ruulint:ok suppresses nothing: name the pass, //ruulint:ok <pass> <justification>")
				continue
			}
			for _, name := range m.passes {
				if !knownSet[name] {
					add(m.pos, fmt.Sprintf("suppression names unknown pass %q (try ruulint -list)", name))
				}
			}
			if !m.justified {
				add(m.pos, "suppression carries no justification: say why the finding is acceptable here")
			}
		}
		return out
	}
	return p
}
