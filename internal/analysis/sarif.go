package analysis

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
)

// SARIFRule describes one rule of a SARIF-emitting tool for the shared
// writer below (ruulint passes, ruudfa program-lint rules).
type SARIFRule struct {
	// ID is the stable rule identifier (pass or rule name).
	ID string
	// Doc is the one-line rule description.
	Doc string
}

// SARIFResult is one finding for the shared writer.
type SARIFResult struct {
	// RuleID names the rule that produced the finding.
	RuleID string
	// Level is the SARIF severity ("error", "warning", "note"); empty
	// defaults to "error".
	Level string
	// Message is the human-readable diagnostic.
	Message string
	// URI locates the finding's file (absolute paths are relativized
	// against the writer's root).
	URI string
	// Line and Column are 1-based; non-positive values are clamped.
	Line, Column int
}

// MarshalSARIF renders ruulint findings as a SARIF 2.1.0 log via the
// shared writer (see MarshalSARIFLog for the format contract).
func MarshalSARIF(findings []Finding, passes []*Pass, root string) ([]byte, error) {
	rules := make([]SARIFRule, 0, len(passes))
	for _, p := range passes {
		rules = append(rules, SARIFRule{ID: p.Name, Doc: p.Doc})
	}
	results := make([]SARIFResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, SARIFResult{
			RuleID:  f.Pass,
			Level:   "error",
			Message: f.Message,
			URI:     f.Pos.Filename,
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
		})
	}
	return MarshalSARIFLog("ruulint", rules, results, root)
}

// MarshalSARIFLog renders findings as a SARIF 2.1.0 log, the
// interchange format GitHub code scanning ingests. The output is
// byte-stable: the same rules and results always serialize to the same
// bytes (results keep their given order — callers sort them — rules are
// sorted by ID here, and struct-driven encoding fixes the key order),
// so the artifact can be diffed and cached.
//
// File URIs are written relative to root (forward slashes, uriBaseId
// %SRCROOT%), matching the checkout-relative paths code scanning
// expects; findings outside root keep their absolute path.
func MarshalSARIFLog(tool string, rules []SARIFRule, results []SARIFResult, root string) ([]byte, error) {
	srules := make([]sarifRule, 0, len(rules))
	sorted := append([]SARIFRule(nil), rules...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, r := range sorted {
		srules = append(srules, sarifRule{
			ID:               r.ID,
			ShortDescription: sarifMessage{Text: r.Doc},
		})
	}

	sresults := make([]sarifResult, 0, len(results))
	for _, f := range results {
		uri := f.URI
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		region := sarifRegion{StartLine: f.Line, StartColumn: f.Column}
		if region.StartLine < 1 {
			region.StartLine = 1 // SARIF regions are 1-based; defend against zero positions
		}
		if region.StartColumn < 0 {
			region.StartColumn = 0
		}
		level := f.Level
		if level == "" {
			level = "error"
		}
		sresults = append(sresults, sarifResult{
			RuleID:  f.RuleID,
			Level:   level,
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(uri),
						URIBaseID: "%SRCROOT%",
					},
					Region: region,
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  tool,
				Rules: srules,
			}},
			ColumnKind: "utf16CodeUnits",
			Results:    sresults,
		}},
	}
	b, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// The SARIF 2.1.0 subset ruulint emits. Field order here is the key
// order in the output.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool       sarifTool     `json:"tool"`
	ColumnKind string        `json:"columnKind"`
	Results    []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}
