package analysis

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
)

// MarshalSARIF renders findings as a SARIF 2.1.0 log, the interchange
// format GitHub code scanning ingests. The output is byte-stable: the
// same findings and pass set always serialize to the same bytes
// (findings arrive in SortFindings order, rules are sorted by id, and
// struct-driven encoding fixes the key order), so the artifact can be
// diffed and cached.
//
// File URIs are written relative to root (forward slashes, uriBaseId
// %SRCROOT%), matching the checkout-relative paths code scanning
// expects; findings outside root keep their absolute path.
func MarshalSARIF(findings []Finding, passes []*Pass, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(passes))
	sorted := append([]*Pass(nil), passes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, p := range sorted {
		rules = append(rules, sarifRule{
			ID:               p.Name,
			ShortDescription: sarifMessage{Text: p.Doc},
		})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		region := sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column}
		if region.StartLine < 1 {
			region.StartLine = 1 // SARIF regions are 1-based; defend against zero positions
		}
		results = append(results, sarifResult{
			RuleID:  f.Pass,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(uri),
						URIBaseID: "%SRCROOT%",
					},
					Region: region,
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "ruulint",
				Rules: rules,
			}},
			ColumnKind: "utf16CodeUnits",
			Results:    results,
		}},
	}
	b, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// The SARIF 2.1.0 subset ruulint emits. Field order here is the key
// order in the output.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool       sarifTool     `json:"tool"`
	ColumnKind string        `json:"columnKind"`
	Results    []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}
