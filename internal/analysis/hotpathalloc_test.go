package analysis

import "testing"

// fixtureHotConfig wires the hotpathalloc pass to the fixture package's
// own cycle driver, mirroring the shape of the repo defaults.
func fixtureHotConfig() HotPathConfig {
	return HotPathConfig{
		Roots:     []HotRoot{{Pkg: "hotpathalloc", Recv: "Machine", Func: "Run", LoopOnly: true}},
		Scope:     []string{"hotpathalloc"},
		ColdTypes: []string{"Trap"},
		ColdFuncs: []string{"Flush"},
	}
}

func TestHotPathAllocFixtures(t *testing.T) {
	pkg := loadFixture(t, "hotpathalloc")
	checkWants(t, pkg, NewHotPathAlloc(fixtureHotConfig()))
}

func TestHotPathAllocScope(t *testing.T) {
	pkg := loadFixture(t, "hotpathalloc")
	cfg := fixtureHotConfig()
	// Reachable code outside the scope prefixes is not reported.
	cfg.Scope = []string{"ruu/internal/core"}
	if fs := Check([]*Package{pkg}, []*Pass{NewHotPathAlloc(cfg)}); len(fs) != 0 {
		t.Errorf("out-of-scope package produced %d findings: %v", len(fs), fs)
	}
	// With no root resolving, nothing is hot.
	cfg = fixtureHotConfig()
	cfg.Roots = []HotRoot{{Pkg: "hotpathalloc", Recv: "Machine", Func: "NoSuchFunc", LoopOnly: true}}
	if fs := Check([]*Package{pkg}, []*Pass{NewHotPathAlloc(cfg)}); len(fs) != 0 {
		t.Errorf("rootless graph produced %d findings: %v", len(fs), fs)
	}
}

// TestCallGraph checks the dataflow layer directly: static edges,
// interface dispatch, loop-rooted hotness, and cold boundaries.
func TestCallGraph(t *testing.T) {
	pkg := loadFixture(t, "hotpathalloc")
	g := BuildCallGraph([]*Package{pkg})

	run := g.Lookup("hotpathalloc", "Machine", "Run")
	if run == nil {
		t.Fatal("Lookup did not find (*Machine).Run")
	}
	hot := g.Hot([]HotRoot{{Pkg: "hotpathalloc", Recv: "Machine", Func: "Run", LoopOnly: true}}, []string{"Flush"})

	if hot[run] {
		t.Error("a LoopOnly root must not itself be in the hot set")
	}
	step := g.Lookup("hotpathalloc", "engine", "Step")
	if step == nil || !hot[step] {
		t.Error("interface dispatch from the cycle loop did not mark (*engine).Step hot")
	}
	box := g.Lookup("hotpathalloc", "engine", "box")
	if box == nil || !hot[box] {
		t.Error("static call from a hot method did not mark (*engine).box hot")
	}
	setup := g.Lookup("hotpathalloc", "Machine", "setupCold")
	if setup == nil || hot[setup] {
		t.Error("pre-loop setup must stay cold under a LoopOnly root")
	}
	flush := g.Lookup("hotpathalloc", "engine", "Flush")
	if flush == nil || hot[flush] {
		t.Error("Flush must be a cold traversal boundary")
	}
	cold := g.Lookup("hotpathalloc", "", "coldHelper")
	if cold == nil || hot[cold] {
		t.Error("unreachable function must stay cold")
	}
}
