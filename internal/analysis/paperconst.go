package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// The paperconst pass keeps the reproduction's model constants honest.
// The paper pins the model architecture down numerically — 8 A, 8 S,
// 64 B, 64 T registers, one result bus, 6 load registers, 3-bit NI/LI
// counters, the functional-unit latency ladder, the RSTU/RUU sweep
// sizes of Tables 2-6 — and internal/isa/paperconst.go declares each
// of those once. A magic number elsewhere that restates one of the
// anchors is latent drift (edit one copy, forget the other, and the
// tables silently stop reproducing); one that already disagrees is
// drift realized. Both are findings: the fix is always to reference
// the canonical constant.
//
// Anchored positions, checked in the configured scope (cmd/, the root
// experiment harness, and the machine/fu/memsys/core packages):
//
//   - const/var declarations whose name matches an anchor
//     (DefaultLoadRegs = 6);
//   - keyed struct-literal fields matching an anchor (LoadRegs: 6);
//   - flag defaults whose flag name matches an anchor
//     (flag.Int("loadregs", 6, ...));
//   - latency-table entries indexed by a Unit constant
//     (l[isa.UnitMem] = 5);
//   - int-slice declarations matching a sweep anchor
//     (RUUSizes = []int{...}), compared element-wise.
//
// Plain assignments to struct fields are deliberately not anchored:
// clamps and recomputations (c.CounterBits = 8 as a width limit) would
// false-positive. The canonical package itself is exempt — it is the
// one place the literals belong.

// PaperAnchor is one paper-pinned value.
type PaperAnchor struct {
	// Value is the paper's number.
	Value int64
	// Ref is how to cite the canonical constant in messages
	// ("isa.PaperLoadRegs").
	Ref string
}

// PaperSpec configures NewPaperConst.
type PaperSpec struct {
	// CanonicalPath is the package that defines the anchors; it is
	// exempt from the pass.
	CanonicalPath string
	// Anchors maps a normalized name (lowercase alphanumerics:
	// "loadregs") to the paper value. A declared name, struct key or
	// flag name matches an anchor exactly or with a "default"/"paper"
	// prefix.
	Anchors map[string]PaperAnchor
	// Sweeps maps a normalized name to an exact expected int list.
	Sweeps map[string][]int64
	// UnitPrefix names the enum type whose constants index latency
	// tables ("Unit"): l[UnitMem] = 5 anchors to "lat"+"mem".
	UnitPrefix string
	// ScopePkgs are exact package paths to check; ScopePrefixes are
	// checked with subpackages.
	ScopePkgs     []string
	ScopePrefixes []string
}

// NewPaperConst returns the paperconst pass for the given spec.
func NewPaperConst(spec PaperSpec) *Pass {
	return &Pass{
		Name: "paperconst",
		Doc:  "model constants match internal/isa/paperconst.go (no drifted or restated magic numbers)",
		Run: func(pkg *Package) []Finding {
			if pkg.Path == spec.CanonicalPath || !paperInScope(pkg.Path, spec) {
				return nil
			}
			c := &paperChecker{pkg: pkg, spec: spec}
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.ValueSpec:
						c.checkValueSpec(n)
					case *ast.KeyValueExpr:
						c.checkKeyValue(n)
					case *ast.CallExpr:
						c.checkFlagCall(n)
					case *ast.AssignStmt:
						c.checkLatencyAssign(n)
					}
					return true
				})
			}
			return c.out
		},
	}
}

func paperInScope(path string, spec PaperSpec) bool {
	for _, p := range spec.ScopePkgs {
		if path == p {
			return true
		}
	}
	return inScope(path, spec.ScopePrefixes)
}

type paperChecker struct {
	pkg  *Package
	spec PaperSpec
	out  []Finding
}

func (c *paperChecker) add(n ast.Node, format string, args ...any) {
	c.out = append(c.out, Finding{
		Pass:    "paperconst",
		Pos:     c.pkg.Pos(n),
		Message: fmt.Sprintf(format, args...),
	})
}

// normalize lowers a name to its alphanumeric core for anchor lookup.
func normalize(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		}
	}
	return b.String()
}

// anchorFor resolves a declared/keyed/flag name to an anchor, allowing
// the "default" and "paper" naming prefixes.
func (c *paperChecker) anchorFor(name string) (string, PaperAnchor, bool) {
	n := normalize(name)
	for _, key := range []string{n, strings.TrimPrefix(n, "default"), strings.TrimPrefix(n, "paper")} {
		if a, ok := c.spec.Anchors[key]; ok {
			return key, a, true
		}
	}
	return "", PaperAnchor{}, false
}

func (c *paperChecker) sweepFor(name string) (string, []int64, bool) {
	n := normalize(name)
	for _, key := range []string{n, strings.TrimPrefix(n, "default"), strings.TrimPrefix(n, "paper")} {
		if s, ok := c.spec.Sweeps[key]; ok {
			return key, s, true
		}
	}
	return "", nil, false
}

// intLit evaluates e to an integer constant if e is a literal (not a
// reference to a named constant — references are the fix, not drift).
func (c *paperChecker) intLit(e ast.Expr) (int64, bool) {
	if _, ok := ast.Unparen(e).(*ast.BasicLit); !ok {
		return 0, false
	}
	tv, ok := c.pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// checkLit reports a literal restating or drifting from an anchor.
func (c *paperChecker) checkLit(n ast.Node, name string, a PaperAnchor, v int64) {
	if v != a.Value {
		c.add(n, "%s literal %d drifts from the paper value %d; use %s", name, v, a.Value, a.Ref)
		return
	}
	c.add(n, "%s literal %d restates a paper constant; reference %s", name, v, a.Ref)
}

// checkValueSpec anchors const/var declarations by name.
func (c *paperChecker) checkValueSpec(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		if _, a, ok := c.anchorFor(name.Name); ok {
			if v, lit := c.intLit(vs.Values[i]); lit {
				c.checkLit(vs.Values[i], name.Name, a, v)
			}
			continue
		}
		if _, want, ok := c.sweepFor(name.Name); ok {
			c.checkSweepLit(name.Name, vs.Values[i], want)
		}
	}
}

// checkSweepLit compares an int-slice literal against a sweep anchor.
func (c *paperChecker) checkSweepLit(name string, e ast.Expr, want []int64) {
	cl, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return
	}
	tv, ok := c.pkg.Info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	if _, ok := tv.Type.Underlying().(*types.Slice); !ok {
		return
	}
	var got []int64
	for _, el := range cl.Elts {
		v, ok := c.intLit(el)
		if !ok {
			return // non-literal elements: already derived, not restated
		}
		got = append(got, v)
	}
	same := len(got) == len(want)
	for i := 0; same && i < len(got); i++ {
		same = got[i] == want[i]
	}
	if !same {
		c.add(cl, "%s sweep literal %v drifts from the paper's sizes %v; derive it from the canonical list", name, got, want)
		return
	}
	c.add(cl, "%s sweep literal restates the paper's sizes; derive it from the canonical list", name)
}

// checkKeyValue anchors keyed struct-literal fields (LoadRegs: 6).
func (c *paperChecker) checkKeyValue(kv *ast.KeyValueExpr) {
	key, ok := kv.Key.(*ast.Ident)
	if !ok {
		return
	}
	// Only struct fields: map literals key arbitrary data.
	if _, isField := c.pkg.Info.Uses[key].(*types.Var); !isField {
		return
	}
	if _, a, ok := c.anchorFor(key.Name); ok {
		if v, lit := c.intLit(kv.Value); lit {
			c.checkLit(kv.Value, key.Name, a, v)
		}
	}
}

// checkFlagCall anchors flag defaults: flag.Int("loadregs", 6, ...).
func (c *paperChecker) checkFlagCall(call *ast.CallExpr) {
	fn := calleeFunc(c.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "flag" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	name := strings.Trim(lit.Value, "`\"")
	if _, a, ok := c.anchorFor(name); ok {
		if v, isLit := c.intLit(call.Args[1]); isLit {
			c.checkLit(call.Args[1], "flag -"+name, a, v)
		}
	}
}

// checkLatencyAssign anchors latency-table entries indexed by a unit
// constant: l[isa.UnitMem] = 5 anchors to "lat"+"mem".
func (c *paperChecker) checkLatencyAssign(as *ast.AssignStmt) {
	if c.spec.UnitPrefix == "" || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	ix, ok := ast.Unparen(as.Lhs[0]).(*ast.IndexExpr)
	if !ok {
		return
	}
	obj := sliceRefObj(c.pkg.Info, ix.Index)
	cst, ok := obj.(*types.Const)
	if !ok || !strings.HasPrefix(cst.Name(), c.spec.UnitPrefix) {
		return
	}
	key := "lat" + normalize(strings.TrimPrefix(cst.Name(), c.spec.UnitPrefix))
	a, ok := c.spec.Anchors[key]
	if !ok {
		return
	}
	if v, lit := c.intLit(as.Rhs[0]); lit {
		c.checkLit(as.Rhs[0], "latency of "+cst.Name(), a, v)
	}
}
