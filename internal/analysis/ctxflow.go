package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// NewCtxFlow returns the ctxflow pass, restricted to the given
// import-path prefixes (the service packages).
//
// The 499/504 semantics the HTTP API promises (PR 5) only hold if
// cancellation provably propagates from the handler into every
// scheduler job: a dropped or detached context turns "client gave up"
// into a worker silently simulating for nobody. The pass enforces the
// conventions that keep the chain intact:
//
//   - context.Context is the first parameter (after the receiver), per
//     the stdlib convention — a buried ctx parameter is how call sites
//     end up threading the wrong one.
//   - context.Context never lives in a struct field: a stored context
//     outlives the request that created it. (The scheduler's queue
//     handoff is the one audited exception, suppressed in place.)
//   - context.Background()/context.TODO() below the handler boundary
//     severs the caller's cancellation; only func main may mint a root
//     context. Detaching on purpose (async jobs) takes a per-site
//     suppression with a justification.
//   - a blocking select inside a ctx-carrying function must have a
//     ctx.Done()/quit-channel arm or a default: otherwise cancellation
//     cannot interrupt it and the 499 path never fires.
func NewCtxFlow(scope ...string) *Pass {
	p := &Pass{
		Name: "ctxflow",
		Doc:  "context threads request paths: first param, never a struct field, no Background below main, no Done-less selects",
	}
	p.Run = func(pkg *Package) []Finding {
		if !inScope(pkg.Path, scope) {
			return nil
		}
		var out []Finding
		add := func(n ast.Node, format string, args ...any) {
			out = append(out, Finding{Pass: p.Name, Pos: pkg.Pos(n), Message: fmt.Sprintf(format, args...)})
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.GenDecl:
					checkCtxFields(pkg, d, add)
				case *ast.FuncDecl:
					checkCtxParamFirst(pkg, d.Name.Name, d.Type, add)
					if d.Body != nil {
						checkCtxBody(pkg, d, add)
					}
				}
			}
		}
		return out
	}
	return p
}

// checkCtxFields flags context.Context struct fields.
func checkCtxFields(pkg *Package, gd *ast.GenDecl, add func(ast.Node, string, ...any)) {
	if gd.Tok != token.TYPE {
		return
	}
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			if !isContextType(pkg.Info.TypeOf(field.Type)) {
				continue
			}
			name := "embedded"
			if len(field.Names) > 0 {
				name = field.Names[0].Name
			}
			add(field, "context.Context stored in struct field %s of %s outlives its request; pass ctx as a parameter instead",
				name, ts.Name.Name)
		}
	}
}

// checkCtxParamFirst flags a ctx parameter that is not first.
func checkCtxParamFirst(pkg *Package, fname string, ft *ast.FuncType, add func(ast.Node, string, ...any)) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pkg.Info.TypeOf(field.Type)) && idx != 0 {
			add(field, "context.Context must be the first parameter of %s (after the receiver), per the stdlib convention", fname)
		}
		idx += n
	}
}

// checkCtxBody flags Background/TODO below main and Done-less selects
// inside ctx-carrying functions, tracking the innermost function's
// signature across literals.
func checkCtxBody(pkg *Package, fd *ast.FuncDecl, add func(ast.Node, string, ...any)) {
	isMain := pkg.Types.Name() == "main" && fd.Recv == nil && fd.Name.Name == "main"
	var walk func(n ast.Node, hasCtx bool)
	walk = func(n ast.Node, hasCtx bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				checkCtxParamFirst(pkg, "the function literal", c.Type, add)
				walk(c.Body, funcTypeHasCtx(pkg, c.Type))
				return false
			case *ast.CallExpr:
				if pkgPath, name, ok := pkgLevelCallee(pkg.Info, c); ok && pkgPath == "context" {
					if (name == "Background" || name == "TODO") && !isMain {
						add(c, "context.%s below the handler boundary severs the caller's cancellation; thread the request ctx (only func main mints a root context)", name)
					}
				}
			case *ast.SelectStmt:
				if hasCtx && !selectHasEscape(pkg, c) {
					add(c, "select in a ctx-carrying function has no ctx.Done()/quit arm or default; cancellation cannot interrupt it")
				}
			}
			return true
		})
	}
	walk(fd.Body, funcTypeHasCtx(pkg, fd.Type))
}

// funcTypeHasCtx reports whether the signature takes a context.
func funcTypeHasCtx(pkg *Package, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(pkg.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// quitChanRE matches channel names that conventionally signal
// termination.
var quitChanRE = regexp.MustCompile(`(?i)done|quit|stop|close|cancel`)

// selectHasEscape reports whether a select can be interrupted: a
// default clause, an arm receiving from a Done() channel, or an arm
// receiving from a quit-conventional channel name.
func selectHasEscape(pkg *Package, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		comm, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if comm.Comm == nil {
			return true // default
		}
		var recv ast.Expr
		switch s := comm.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recv = u.X
			}
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recv = u.X
				}
			}
		}
		if recv == nil {
			continue
		}
		if call, ok := recv.(*ast.CallExpr); ok {
			if s, ok := call.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "Done" {
				return true
			}
		}
		if quitChanRE.MatchString(exprString(recv)) {
			return true
		}
	}
	return false
}

// isContextType reports the context.Context interface type.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
