// Package ctxflow fixtures: each function drops, buries, or detaches a
// context in one of the ways the ctxflow pass flags.
package ctxflow

import "context"

type holder struct {
	ctx context.Context // want `context\.Context stored in struct field ctx of holder outlives its request`
}

func buried(name string, ctx context.Context) string { // want `context\.Context must be the first parameter of buried`
	_ = ctx
	return name
}

func detached(ctx context.Context) context.Context {
	return context.Background() // want `context\.Background below the handler boundary severs the caller's cancellation`
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO below the handler boundary severs the caller's cancellation`
}

func stuck(ctx context.Context, c chan int) int {
	select { // want `select in a ctx-carrying function has no ctx\.Done\(\)/quit arm or default`
	case v := <-c:
		return v
	}
}
