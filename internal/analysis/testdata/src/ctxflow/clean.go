package ctxflow

import "context"

// relay threads the request ctx and every blocking select carries an
// escape arm, so cancellation can always interrupt it.
func relay(ctx context.Context, in, out chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			select {
			case out <- v:
			default:
			}
		}
	}
}

// quitStyle uses the quit-channel convention instead of a context.
func quitStyle(ctx context.Context, quit chan struct{}, work chan int) {
	select {
	case <-quit:
	case w := <-work:
		_ = w
	}
}

// derive builds child contexts from the caller's, never from a fresh
// root.
func derive(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}
