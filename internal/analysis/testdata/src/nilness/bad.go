// Package nilness holds fixtures for the nilness value-flow pass:
// provably-nil dereferences (straight-line, reassigned, phi-merged, and
// on the nil branch of the pointer's own nil check) and call statements
// that silently discard an error result.
package nilness

type node struct {
	next *node
	val  int
}

func doWork() error      { return nil }
func pair() (int, error) { return 0, nil }
func find() *node        { return nil }

// zeroDeref dereferences a pointer that still holds its zero value.
func zeroDeref() int {
	var p *node
	return p.val // want `p is provably nil here`
}

// assignedNil dereferences after an explicit nil assignment kills the
// earlier (unknown) definition.
func assignedNil() int {
	p := find()
	p = nil
	return p.val // want `p is provably nil here`
}

// starDeref: an explicit *p of a nil pointer.
func starDeref() {
	var p *int
	_ = *p // want `p is provably nil here`
}

// phiNil merges two nil definitions: the phi is provably nil too.
func phiNil(cond bool) int {
	var p *node
	if cond {
		p = nil
	}
	return p.val // want `p is provably nil here`
}

// nilBranch dereferences on the nil side of the pointer's own check —
// the definition is unknown, but the path makes it nil.
func nilBranch() int {
	p := find()
	if p == nil {
		return p.val // want `dereferenced on the nil branch`
	}
	return 0
}

// dropsError throws away error results on the floor.
func dropsError() {
	doWork() // want `silently discarded`
	pair()   // want `silently discarded`
}
