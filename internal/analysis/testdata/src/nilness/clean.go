package nilness

import (
	"fmt"
	"strings"
)

// guardedZero is why the dominating-guard rule exists: the definition
// is provably nil, but the deref sits under the non-nil edge of an
// explicit check, so it can never execute on the nil value.
func guardedZero() int {
	var p *node
	if p == nil {
		return 0
	}
	return p.val
}

// guardedNeq guards with the != form; the deref is on the true edge.
func guardedNeq() int {
	p := find()
	if p != nil {
		return p.val
	}
	return 0
}

// assignedReal dereferences a locally constructed value.
func assignedReal() int {
	p := &node{val: 3}
	return p.val
}

// explicitDrop makes the discard visible: not a finding.
func explicitDrop() {
	_ = doWork()
}

// fmtDrop: discarding fmt print errors is idiomatic.
func fmtDrop() {
	fmt.Println("ok")
}

// builderDrop: strings.Builder writes are documented to never fail.
func builderDrop() string {
	var b strings.Builder
	b.WriteString("x")
	return b.String()
}

// deferDrop: defer statements are a different node kind, out of scope.
func deferDrop() {
	defer doWork()
}
