// Package exhaustive holds fixtures for the exhaustive pass: switches
// over a small uint8 enum, covering the full/defaulted/missing cases
// and the out-of-scope shapes the pass must ignore.
package exhaustive

// Kind is an enum by the pass's rule: named, underlying uint8, with at
// least three constants in the declaring package.
type Kind uint8

const (
	KA Kind = iota
	KB
	KC
	NumKinds // count sentinel: not a required member
)

// KAlias shares KA's value; covering the value covers both names.
const KAlias = KA

// tiny has fewer than three members, so it is not an enum.
type tiny uint8

const (
	T0 tiny = iota
	T1
)

// wide is not uint8, so it is not an enum under the rule.
type wide int

const (
	W0 wide = iota
	W1
	W2
)

func full(k Kind) int {
	switch k { // every member covered: clean
	case KA:
		return 1
	case KB:
		return 2
	case KC:
		return 3
	}
	return 0
}

func defaulted(k Kind) int {
	switch k { // explicit default: clean
	case KA:
		return 1
	default:
		return 0
	}
}

func aliased(k Kind) int {
	switch k { // KAlias covers value 0, KB/KC the rest: clean
	case KAlias:
		return 1
	case KB, KC:
		return 2
	}
	return 0
}

func missing(k Kind) int {
	switch k { // want `missing KB, KC`
	case KA:
		return 1
	}
	return 0
}

func missingOne(k Kind) int {
	switch k { // want `missing KC`
	case KA, KB:
		return 1
	}
	return 0
}

func smallType(t tiny) int {
	switch t { // below the member threshold: clean
	case T0:
		return 1
	}
	return 0
}

func wideType(w wide) int {
	switch w { // not uint8: clean
	case W0:
		return 1
	}
	return 0
}

func typeSwitch(v any) int {
	switch v.(type) { // type switches are out of scope
	case Kind:
		return 1
	}
	return 0
}

func expressionless(k Kind) int {
	switch { // expressionless switches are out of scope
	case k == KA:
		return 1
	}
	return 0
}
