// Package httpcontract fixtures: handlers that break the response
// contract in each way the httpcontract pass flags.
package httpcontract

import (
	"context"
	"errors"
	"net/http"
)

// writeErr is the package's shared error writer: Content-Type first,
// one WriteHeader, one body write. The pass classifies it as an
// always-committing function.
func writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write([]byte(msg))
}

// doubleWrite forgets the return after the error branch, so the success
// path can stack a second status on a committed response.
func doubleWrite(w http.ResponseWriter, r *http.Request, bad bool) {
	if bad {
		writeErr(w, http.StatusBadRequest, `{"error":"bad"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK) // want `earlier call on this path \(line \d+\) may already have written the response`
}

// rawError bypasses the JSON error envelope.
func rawError(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusTeapot) // want `http\.Error writes text/plain, bypassing the shared JSON error envelope`
}

// lateType sets the header after the status line went out.
func lateType(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Header().Set("Content-Type", "text/plain") // want `Content-Type set after the response was committed`
}

// sniffed leaves the type to net/http's content sniffer.
func sniffed(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("hi")) // want `body written with no preceding Content-Type`
}

// wrongCancelStatus answers a client cancellation with a 500.
func wrongCancelStatus(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.Canceled) { // want `client cancellation answered with a status other than 499`
		writeErr(w, http.StatusInternalServerError, `{"error":"canceled"}`)
		return
	}
}

// loopWrite can emit one full response per item: the error write is
// not followed by a return, so a second bad size writes again.
func loopWrite(w http.ResponseWriter, items []string) {
	for _, it := range items { // want `response write inside this loop can run more than once per request`
		if it == "" {
			writeErr(w, http.StatusBadRequest, `{"error":"empty item"}`)
		}
	}
}
