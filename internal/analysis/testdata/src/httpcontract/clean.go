package httpcontract

import (
	"context"
	"errors"
	"net/http"
)

// writeOK mirrors the service's JSON writer.
func writeOK(w http.ResponseWriter, code int, body string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write([]byte(body))
}

// decode mirrors the service's request decoder: it writes the error
// response itself and reports success, so callers can use the guard
// idiom.
func decode(w http.ResponseWriter, r *http.Request) bool {
	if r.ContentLength == 0 {
		writeOK(w, http.StatusBadRequest, `{"error":"empty body"}`)
		return false
	}
	return true
}

// guarded is the single-statement guard idiom: the committing callee's
// result gates an immediate return.
func guarded(w http.ResponseWriter, r *http.Request) {
	if !decode(w, r) {
		return
	}
	writeOK(w, http.StatusOK, `{}`)
}

// lookup mirrors the service's job fetch: nil means the response was
// already written.
func lookup(w http.ResponseWriter, r *http.Request) *http.Request {
	if r.URL.Path == "" {
		writeOK(w, http.StatusNotFound, `{"error":"no such job"}`)
		return nil
	}
	return r
}

// twoStep is the two-statement guard idiom.
func twoStep(w http.ResponseWriter, r *http.Request) {
	j := lookup(w, r)
	if j == nil {
		return
	}
	writeOK(w, http.StatusOK, `{}`)
}

// cancelAware maps client cancellation to 499.
func cancelAware(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.Canceled) {
		writeOK(w, 499, `{"error":"client closed request"}`)
		return
	}
	writeOK(w, http.StatusOK, `{}`)
}

// perSize validates in a loop but returns after the in-loop write, so
// at most one response leaves the handler.
func perSize(w http.ResponseWriter, sizes []int) {
	for _, n := range sizes {
		if n < 1 {
			writeOK(w, http.StatusUnprocessableEntity, `{"error":"bad size"}`)
			return
		}
	}
	writeOK(w, http.StatusOK, `{}`)
}

// branches writes exactly once on every path.
func branches(w http.ResponseWriter, r *http.Request, err error) {
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeOK(w, http.StatusGatewayTimeout, `{"error":"timeout"}`)
		case errors.Is(err, context.Canceled):
			writeOK(w, 499, `{"error":"client closed request"}`)
		default:
			writeOK(w, http.StatusUnprocessableEntity, `{"error":"run"}`)
		}
		return
	}
	writeOK(w, http.StatusOK, `{}`)
}
