package precisestate

// commit is on the allowlist the test wires up: the audited
// architectural boundary.
func (e *Engine) commit() {
	e.st.SetReg(Reg{1}, 42)
	e.st.Mem.Write(4096, 1)
}

// bookkeeping that never touches architectural state is always fine.
func (e *Engine) occupancy() int {
	return int(e.st.Mem.Read(0))
}
