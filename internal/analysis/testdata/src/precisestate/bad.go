// Package precisestate holds fixtures for the precisestate pass:
// architectural register-file and memory mutations outside the audited
// commit/writeback set. The mutator shapes mirror exec.RegState /
// exec.State / memsys.Memory by name; the pass resolves receivers
// through the type checker, so promoted methods are seen too.
package precisestate

type Reg struct{ n int }

// RegState mirrors exec.RegState.
type RegState struct{ a [8]int64 }

func (r *RegState) SetReg(reg Reg, v int64) { r.a[reg.n] = v }

// Memory mirrors memsys.Memory.
type Memory struct{ words []int64 }

func (m *Memory) Write(addr, v int64)   { m.words[addr] = v }
func (m *Memory) Poke(addr, v int64)    { m.words[addr] = v }
func (m *Memory) Read(addr int64) int64 { return m.words[addr] }

// State mirrors exec.State (RegState promoted).
type State struct {
	RegState
	Mem *Memory
}

type Engine struct{ st *State }

// dispatch mutates architectural state from an execution-phase path:
// exactly the scribble the precise-interrupt discipline forbids.
func (e *Engine) dispatch() {
	e.st.SetReg(Reg{1}, 42) // want `RegState\.SetReg`
	e.st.Mem.Write(4096, 1) // want `Memory\.Write`
	e.st.Mem.Poke(4097, 2)  // want `Memory\.Poke`
	_ = e.st.Mem.Read(4096) // reads are always legal
}
