// Package hotpathalloc holds fixtures for the hotpathalloc pass: a
// cycle-loop driver (Machine.Run) whose loop body reaches deliberately
// allocating code, next to cold paths that must stay exempt. Each
// flagged line carries a want comment with a regexp the finding message
// must match.
package hotpathalloc

import "fmt"

// Engine is dispatched through an interface from the cycle loop, so the
// concrete engine's methods are hot only if the RTA resolution works.
type Engine interface {
	Step(c int64)
	Flush()
}

// Probe mirrors the obs.Probe nil-fast-path idiom.
type Probe interface {
	Event(k int)
}

// Trap is a cold type: constructing one ends or interrupts a run.
type Trap struct{ PC int }

type pair struct{ a, b int }

type Machine struct {
	eng   Engine
	probe Probe
	setup []int
}

// Run is the loop root: straight-line setup above the loop stays cold,
// everything the loop body reaches is hot.
func (m *Machine) Run(n int) {
	m.setup = make([]int, 8) // cold: per-run setup above the loop
	m.setupCold()
	for c := 0; c < n; c++ {
		ids := []int{c} // want `slice literal allocates`
		_ = ids
		m.eng.Step(int64(c))
		m.observe(c)
		m.guarded(c)
	}
}

func (m *Machine) setupCold() {
	_ = make([]int, 4) // cold: only called before the loop
}

// observe is the nil-probe fast path: the leading nil check makes the
// whole function exempt (it models obs emission, compiled away when no
// probe is attached).
func (m *Machine) observe(c int) {
	if m.probe == nil {
		return
	}
	evs := []int{c} // exempt: nil-probe fast path
	m.probe.Event(evs[0])
}

// guarded allocates only under an interface non-nil guard, which is the
// same slow path in block form.
func (m *Machine) guarded(c int) {
	if m.probe != nil {
		evs := []int{c} // exempt: interface non-nil guard
		m.probe.Event(evs[0])
	}
}

// engine's methods become hot via interface dispatch from Run's loop.
type engine struct {
	queue []int
	buf   []byte
}

func (e *engine) Step(c int64) {
	p := &pair{a: int(c)} // want `&pair literal escapes`
	_ = p
	m := map[int]int{int(c): 1} // want `map literal allocates`
	_ = m
	e.buf = make([]byte, 4) // want `make allocates`
	q := new(int)           // want `new allocates`
	_ = q
	e.box(c)
	e.concat("x")
	e.loopClosure(int(c))
	e.pump(int(c))
	e.drain()
	e.report(c)
	e.check(c)
	_ = e.fault(int(c))
	if c == 0 {
		e.Flush()
	}
}

// Flush is a cold boundary (trap recovery runs at interrupt rate, not
// cycle rate), so its allocations are not findings.
func (e *engine) Flush() {
	e.queue = make([]int, 0, 8) // cold: Flush boundary
}

func sink(v any) { _ = v }

func (e *engine) box(c int64) {
	sink(c) // want `boxes int64 into any`
}

func (e *engine) concat(s string) {
	v := "eng:" + s // want `string concatenation allocates`
	_ = v
}

func (e *engine) loopClosure(n int) {
	for i := 0; i < n; i++ {
		f := func() int { return i } // want `function literal declared inside a loop`
		_ = f()
	}
}

func (e *engine) pump(v int) {
	e.queue = append(e.queue, v) // want `append to queue, which is front-popped`
}

func (e *engine) drain() {
	if len(e.queue) > 0 {
		e.queue = e.queue[1:]
	}
}

func (e *engine) report(c int64) {
	fmt.Println("cycle", c) // want `on the per-cycle path`
}

func (e *engine) check(c int64) {
	if c < 0 {
		panic(fmt.Sprintf("negative cycle %d", c)) // exempt: panic argument
	}
}

func (e *engine) fault(pc int) *Trap {
	return &Trap{PC: pc} // exempt: cold type in return context
}

// coldHelper is unreachable from the cycle loop.
func coldHelper() {
	xs := make([]int, 4) // cold: not reachable from the root
	_ = xs
}
