// Package goroutineleak fixtures: a leaky HTTP-style handler and the
// spawn shapes the goroutineleak pass flags.
package goroutineleak

// leakyHandler is the classic leak: a per-request goroutine that loops
// forever with no WaitGroup registration and no quit-driven return. The
// handler returns; the goroutine stays.
func leakyHandler(events chan int) {
	go func() { // want `goroutine loops forever \(for at line \d+\) with no WaitGroup registration`
		for {
			select {
			case v := <-events:
				_ = v
			}
		}
	}()
}

func spin() {
	for {
	}
}

// spawnSpin leaks through a named callee: the pass resolves the body of
// package-local functions spawned with go.
func spawnSpin() {
	go spin() // want `goroutine loops forever \(for at line \d+\) with no WaitGroup registration`
}

func compute() int { return 42 }

// abandonedResult races the receiver: if the caller gives up before
// reading, the send blocks forever and pins the goroutine.
func abandonedResult() chan int {
	out := make(chan int)
	go func() {
		out <- compute() // want `send on unbuffered channel out from a goroutine blocks forever`
	}()
	return out
}
