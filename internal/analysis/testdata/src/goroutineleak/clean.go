package goroutineleak

import "sync"

// workers is the tracked shape: every goroutine registers with the
// WaitGroup, so the spawner's Wait is the shutdown path, and the range
// over jobs ends when the sender closes the channel.
func workers(jobs chan int, n int) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				_ = j
			}
		}()
	}
	return &wg
}

// oneShot runs to completion on its own, and the result channel is
// buffered so the send cannot pin the goroutine.
func oneShot() chan int {
	out := make(chan int, 1)
	go func() {
		out <- compute()
	}()
	return out
}

// quitting loops forever but every iteration can reach a return
// through the quit arm.
func quitting(quit chan struct{}, ticks chan int) {
	go func() {
		for {
			select {
			case <-quit:
				return
			case t := <-ticks:
				_ = t
			}
		}
	}()
}

// guardedSend sends from a goroutine on an unbuffered channel, but
// inside a select whose other arm lets the goroutine escape.
func guardedSend(quit chan struct{}) chan int {
	out := make(chan int)
	go func() {
		select {
		case out <- compute():
		case <-quit:
		}
	}()
	return out
}
