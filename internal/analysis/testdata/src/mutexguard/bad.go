// Package mutexguard fixtures: a deliberately racy miniature worker
// pool. Every want comment pins one finding of the mutexguard pass.
package mutexguard

import "sync"

// pool is the racy worker pool: queue is locked at a majority of its
// access sites (so the guard is inferred), closed is pinned by an
// explicit annotation, and plain is never locked anywhere (so no
// relation exists to enforce).
type pool struct {
	mu sync.Mutex

	queue []int

	// guardedby: mu
	closed bool

	plain int
}

func (p *pool) Submit(v int) {
	p.mu.Lock()
	p.queue = append(p.queue, v)
	p.mu.Unlock()
}

func (p *pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

func (p *pool) SubmitFast(v int) {
	p.queue = append(p.queue, v) // want `pool\.queue is guarded by mu \(inferred from the other sites`
}

func (p *pool) IsClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

func (p *pool) Close() {
	p.closed = true // want `pool\.closed is guarded by mu \(declared by its guardedby: comment`
}

func (p *pool) Bump() {
	p.plain++ // no relation: never locked anywhere, so no finding
}

func (p *pool) DoubleLock() {
	p.mu.Lock()
	p.mu.Lock() // want `mu\.Lock while already holding it deadlocks`
	p.mu.Unlock()
}

func (p *pool) StrayUnlock() {
	p.mu.Unlock() // want `mu\.Unlock on a path where the walker sees no matching Lock`
}

func (p pool) Snapshot() int { // want `method Snapshot has a value receiver, copying .*pool's mutex`
	return p.plain
}

func clonePool(p *pool) pool {
	q := *p // want `dereferencing copy of lock-bearing struct`
	return q
}

func drainAll(ps []pool) int {
	n := 0
	for _, p := range ps { // want `range copies lock-bearing struct`
		n += p.plain
	}
	return n
}
