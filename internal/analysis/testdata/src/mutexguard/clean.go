package mutexguard

import "sync"

// counter is the pool done right: every access to n holds the lock,
// through both the defer idiom and explicit unlocks across branches.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) Add(delta int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += delta
}

func (c *counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) AddIf(ok bool) {
	c.mu.Lock()
	if ok {
		c.n++
	}
	c.mu.Unlock()
}

// table exercises the read side: RLock counts as holding the guard.
type table struct {
	mu sync.RWMutex
	m  map[string]int
}

func (t *table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) Put(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = map[string]int{}
	}
	t.m[k] = v
}
