package policycontract

// commit is on the allowlist the test wires up: the audited
// architectural boundary mutates freely.
func (e *Engine) commit() {
	e.st.SetReg(Reg{0}, 1)
	e.ctx.Mem.Write(4096, 2)
}

// selfCheck mutates only state it constructed itself — a shadow copy
// for cross-checking, not architectural state. The SSA receiver trace
// is what tells this apart from writeback above.
func (e *Engine) selfCheck() bool {
	st := &RegState{}
	st.SetReg(Reg{1}, 9)
	var shadow RegState
	shadow.SetReg(Reg{2}, 3)
	copied := st
	copied.SetReg(Reg{3}, 4)
	return st.a[1] == e.st.a[1] && shadow.a[2] == 3
}

// observe routes events through the Context helper: the sanctioned
// probe path.
func (e *Engine) observe() {
	e.ctx.Observe(Event{2})
}

// drain ranges over a slice on the issue surface: deterministic, fine.
func (e *Engine) Dispatch() {
	for _, id := range e.pending {
		_ = id
	}
}
