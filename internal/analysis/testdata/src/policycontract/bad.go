// Package policycontract holds fixtures for the policycontract pass:
// the engine/policy interface contract. The type shapes mirror the real
// repo by name — RegState/Memory mutators, a Probe interface behind a
// Context with nil-guard helpers, and an Engine carrying the
// issue-engine method-set fingerprint — because the pass fingerprints
// structurally, never by import.
package policycontract

type Reg struct{ n int }

// RegState mirrors exec.RegState.
type RegState struct{ a [8]int64 }

func (r *RegState) SetReg(reg Reg, v int64) { r.a[reg.n] = v }

// Memory mirrors memsys.Memory.
type Memory struct{ words []int64 }

func (m *Memory) Write(addr, v int64) { m.words[addr] = v }
func (m *Memory) Poke(addr, v int64)  { m.words[addr] = v }

// Event and Probe mirror the obs observability surface.
type Event struct{ Kind int }

type Probe interface{ Event(e Event) }

// Context mirrors issue.Context: the nil-guard observability helpers.
type Context struct {
	Probe Probe
	Regs  *RegState
	Mem   *Memory
}

// Observe is the sanctioned path to the probe; the receiver-name
// exemption covers it.
func (c *Context) Observe(e Event) {
	if c.Probe != nil {
		c.Probe.Event(e)
	}
}

// Engine carries the issue-engine method-set fingerprint (BeginCycle,
// TryIssue, Flush, Retired, InFlight, Drained).
type Engine struct {
	ctx     *Context
	st      *RegState
	ready   map[int]bool
	pending []int
}

func (e *Engine) BeginCycle() {
	e.writeback()
	for id := range e.ready { // want `map iteration inside the issue surface`
		_ = id
	}
}

func (e *Engine) TryIssue() bool {
	e.wakeup()
	e.ctx.Probe.Event(Event{1}) // want `bypasses the nil-guard helpers`
	return false
}

func (e *Engine) Flush()        {}
func (e *Engine) Retired() int  { return 0 }
func (e *Engine) InFlight() int { return 0 }
func (e *Engine) Drained() bool { return true }

// writeback mutates architectural state off the audited set, reached
// from the BeginCycle entry point.
func (e *Engine) writeback() {
	e.st.SetReg(Reg{1}, 42) // want `mutates architectural state .* reachable from \(\*Engine\)\.BeginCycle via writeback`
}

// wakeup is pulled into the issue surface by TryIssue.
func (e *Engine) wakeup() {
	for id := range e.ready { // want `map iteration inside the issue surface .*reached from \(\*Engine\)\.TryIssue`
		_ = id
	}
}

// scribble takes architectural state as a parameter: flows in from
// outside, even though no entry point reaches it.
func scribble(st *RegState) {
	st.SetReg(Reg{0}, 7) // want `mutates architectural state`
}
