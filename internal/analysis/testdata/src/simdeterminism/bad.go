// Package simdeterminism holds deliberately violating fixtures for the
// simdeterminism pass; each flagged line carries a want comment with a
// regexp the finding message must match.
package simdeterminism

import (
	"math/rand"
	"time"
)

type sim struct {
	cycle int64
	live  map[int64]int
	out   []string
}

func emit(string) {}

func (s *sim) wallClock() {
	start := time.Now()   // want `time\.Now`
	_ = time.Since(start) // want `time\.Since`
}

func (s *sim) globalRand() int {
	return rand.Intn(8) // want `math/rand`
}

func (s *sim) goroutine(ch chan int) {
	go func() { ch <- 1 }() // want `single-threaded`
	select {                // want `scheduling-dependent`
	case <-ch:
	default:
	}
}

// rangeEmit flushes a map in iteration order: the archetypal
// nondeterministic trace writer.
func (s *sim) rangeEmit(names map[int64]string) {
	for _, name := range names { // want `order-dependent`
		emit(name)
	}
}

// rangeAppendValues collects values (not a sortable key set) and a
// plain write to outer state — order reaches s.out.
func (s *sim) rangeWrite() {
	last := ""
	for _, v := range s.live { // want `order-dependent`
		last = string(rune(v))
	}
	s.out = append(s.out, last)
}
