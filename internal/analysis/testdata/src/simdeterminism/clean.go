package simdeterminism

import (
	"math/rand"
	"sort"
)

// seededRand: randomness through an explicitly seeded *rand.Rand is the
// sanctioned pattern.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// sortedFlush: collect keys (self-append is order-insensitive as a
// set), sort, then iterate the slice.
func (s *sim) sortedFlush(names map[int64]string) {
	ids := make([]int64, 0, len(names))
	for id := range names {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		emit(names[id])
	}
}

// aggregate: counters, map-to-map copies, delete, and max-free
// accumulation are order-insensitive.
func (s *sim) aggregate(src map[string]int) (int, map[string]int) {
	total := 0
	dst := map[string]int{}
	for k, v := range src {
		total += v
		dst[k] = v
		if v == 0 {
			delete(dst, k)
		}
	}
	return total, dst
}

// suppressed: the escape hatch for an audited order-dependent loop.
func (s *sim) suppressed(m map[int]int) {
	for _, v := range m { //ruulint:ok simdeterminism summing into a fresh slice, order checked by the caller
		emit(string(rune(v)))
	}
}
