package probeemit

// GoodEngine retires and squashes with the matching emissions, partly
// through helpers — the pass follows the same-receiver call graph.
type GoodEngine struct {
	ctx     *ctx
	retired int64
	entries []struct{ squashed bool }
}

func (e *GoodEngine) Name() string      { return "good" }
func (e *GoodEngine) Flush()            {}
func (e *GoodEngine) Retired() int64    { return e.retired }
func (e *GoodEngine) InFlight() int     { return 0 }
func (e *GoodEngine) Drained() bool     { return true }
func (e *GoodEngine) TryReadCond() bool { return false }

// Reset clears the counter; a zero-assign is not a retirement.
func (e *GoodEngine) Reset() {
	e.retired = 0
}

func (e *GoodEngine) BeginCycle(c int64) {
	e.ctx.Observe(KindCommit, c, 1, 0)
	e.retired++
}

func (e *GoodEngine) TryIssue(c int64, pc int) bool {
	e.squashWrongPath(c)
	return true
}

// Dispatch retires via a helper that itself emits.
func (e *GoodEngine) Dispatch(c int64) {
	e.release(c)
}

func (e *GoodEngine) release(c int64) {
	e.ctx.Observe(KindCommit, c, 1, 0)
	e.retired++
}

func (e *GoodEngine) squashWrongPath(c int64) {
	for i := range e.entries {
		e.entries[i].squashed = true
		e.ctx.Observe(KindSquash, c, int64(i), 0)
	}
}

// NotAnEngine lacks the engine method set: retiring without events is
// not this pass's business.
type NotAnEngine struct{ retired int64 }

func (n *NotAnEngine) BeginCycle(c int64) { n.retired++ }
