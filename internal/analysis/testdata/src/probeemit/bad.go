// Package probeemit holds fixtures for the probeemit pass: engine
// types (identified by the issue.Engine method-set fingerprint) whose
// entry points retire or squash instructions without emitting the
// matching obs lifecycle event.
package probeemit

// Kind mirrors obs.Kind; the pass matches the Kind* identifiers by
// name so fixtures need not import the real package.
type Kind uint8

const (
	KindCommit Kind = iota
	KindSquash
)

type ctx struct{}

func (c *ctx) Observe(k Kind, cycle, id int64, pc int) {}

// BadEngine retires and squashes without emitting events.
type BadEngine struct {
	ctx     *ctx
	retired int64
	entries []struct{ squashed bool }
}

func (e *BadEngine) Name() string      { return "bad" }
func (e *BadEngine) Flush()            {}
func (e *BadEngine) Retired() int64    { return e.retired }
func (e *BadEngine) InFlight() int     { return 0 }
func (e *BadEngine) Drained() bool     { return true }
func (e *BadEngine) TryReadCond() bool { return false }

func (e *BadEngine) BeginCycle(c int64) { // want `retires.*KindCommit`
	e.retired++
}

func (e *BadEngine) TryIssue(c int64, pc int) bool { // want `squashes.*KindSquash`
	e.squashWrongPath()
	return true
}

// Dispatch retires through a helper; the obligation propagates up the
// call graph to the entry point.
func (e *BadEngine) Dispatch(c int64) { // want `retires.*KindCommit`
	e.release()
}

func (e *BadEngine) release() {
	e.retired += 2
}

func (e *BadEngine) squashWrongPath() {
	for i := range e.entries {
		e.entries[i].squashed = true
	}
}
