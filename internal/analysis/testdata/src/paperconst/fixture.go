// Package paperconst holds fixtures for the paperconst pass, checked
// against an injected spec (see paperconst_test.go): anchors loadregs=6,
// numt=64, latmem=5, sweep ruusizes={3,4,6}.
package paperconst

import "flag"

const (
	// DefaultLoadRegs restates the paper value under the "default"
	// naming prefix.
	DefaultLoadRegs = 6 // want `restates a paper constant; reference isa\.PaperLoadRegs`
	// NumT drifted from the paper's 64.
	NumT = 63 // want `drifts from the paper value 64`
	// unrelated matches no anchor.
	unrelated = 7
)

// Unit indexes the latency table, mirroring isa.Unit.
type Unit uint8

const UnitMem Unit = 0

var lat [1]int

func setLatencies() {
	lat[UnitMem] = 4 // want `latency of UnitMem literal 4 drifts from the paper value 5`
}

type Config struct {
	LoadRegs int
	Entries  int
}

var cfg = Config{
	LoadRegs: 6, // want `restates a paper constant`
	Entries:  12,
}

// derived references a named constant instead of a literal: that is the
// fix, not a finding.
var derived = Config{LoadRegs: DefaultLoadRegs}

var (
	// RUUSizes drifted: the paper sweep is {3,4,6}.
	RUUSizes = []int{3, 4, 5} // want `sweep literal \[3 4 5\] drifts`
	// DefaultRUUSizes matches the sweep exactly, which is still a copy.
	DefaultRUUSizes = []int{3, 4, 6} // want `sweep literal restates`
)

var flagLoadRegs = flag.Int("loadregs", 5, "load registers") // want `flag -loadregs literal 5 drifts`

func use() {
	setLatencies()
	_ = unrelated
	_ = cfg
	_ = derived
	_ = RUUSizes
	_ = DefaultRUUSizes
	_ = flagLoadRegs
}
