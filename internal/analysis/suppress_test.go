package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixturePkg materialises an on-disk package for loader-level
// tests (suppression markers only exist in comments, so they cannot be
// built in-memory).
func writeFixturePkg(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// loadTemp loads a temp-dir package under the given import path.
func loadTemp(t *testing.T, dir, path string) *Package {
	t.Helper()
	pkg, err := LoadDir(dir, path)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg
}

// TestSuppressionCheck exercises the lint-the-linter pass: bare
// markers, unknown pass names, and missing justifications are findings;
// a named, justified marker and a documentation placeholder are not.
func TestSuppressionCheck(t *testing.T) {
	src := `package fix

// The fixture needs this exact shape, and the pass cannot see why:
// the harness replays it. //ruulint:ok fakepass
func a() {}

func b() {} //ruulint:ok

func c() {} //ruulint:ok nosuchpass misspelled on purpose

func d() {} //ruulint:ok fakepass

// Documentation may show the //ruulint:ok <pass> form without creating
// a live marker.
func e() {}
`
	dir := writeFixturePkg(t, map[string]string{"fix.go": src})
	pkg := loadTemp(t, dir, "fix")
	findings := Check([]*Package{pkg}, []*Pass{NewSuppressionCheck([]string{"fakepass"})})

	var got []string
	for _, f := range findings {
		got = append(got, f.Message)
	}
	wants := []string{
		"bare //ruulint:ok suppresses nothing",
		`unknown pass "nosuchpass"`,
		"carries no justification",
	}
	if len(findings) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(wants), strings.Join(got, "\n"))
	}
	for i, w := range wants {
		if !strings.Contains(got[i], w) {
			t.Errorf("finding %d = %q, want substring %q", i, got[i], w)
		}
	}
}

// TestNamedSuppressionCoverage verifies a named marker silences the
// named pass on its own line and the next — and nothing else.
func TestNamedSuppressionCoverage(t *testing.T) {
	src := `package fix

// The preceding-line placement: covers func a. //ruulint:ok fakepass
func a() {}

func b() {} //ruulint:ok fakepass trailing placement covers this line

func c() {}
`
	dir := writeFixturePkg(t, map[string]string{"fix.go": src})
	pkg := loadTemp(t, dir, "fix")
	flagEveryFunc := func(name string) *Pass {
		return &Pass{
			Name: name,
			Run: func(pkg *Package) []Finding {
				var out []Finding
				for _, fd := range funcDecls(pkg) {
					out = append(out, Finding{Pass: name, Pos: pkg.Pos(fd), Message: "flagged " + fd.Name.Name})
				}
				return out
			},
		}
	}

	findings := Check([]*Package{pkg}, []*Pass{flagEveryFunc("fakepass")})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "flagged c") {
		t.Errorf("fakepass findings = %v, want only func c flagged", findings)
	}

	// The marker names fakepass, so another pass's findings on the same
	// lines survive.
	findings = Check([]*Package{pkg}, []*Pass{flagEveryFunc("otherpass")})
	if len(findings) != 3 {
		t.Errorf("otherpass findings = %d, want 3 (markers name a different pass)", len(findings))
	}
}

// TestParsePassList pins the marker grammar: comma lists, placeholders,
// and bare markers.
func TestParsePassList(t *testing.T) {
	cases := []struct {
		rest        string
		names       []string
		placeholder bool
	}{
		{" simdeterminism telemetry clock", []string{"simdeterminism"}, false},
		{" ctxflow,goroutineleak queue handoff", []string{"ctxflow", "goroutineleak"}, false},
		{" <pass> marker", nil, true},
		{"", nil, false},
		{"   ", nil, false},
	}
	for _, c := range cases {
		names, placeholder := parsePassList(c.rest)
		if placeholder != c.placeholder {
			t.Errorf("parsePassList(%q) placeholder = %v, want %v", c.rest, placeholder, c.placeholder)
		}
		if len(names) != len(c.names) {
			t.Errorf("parsePassList(%q) = %v, want %v", c.rest, names, c.names)
			continue
		}
		for i := range names {
			if names[i] != c.names[i] {
				t.Errorf("parsePassList(%q) = %v, want %v", c.rest, names, c.names)
			}
		}
	}
}
