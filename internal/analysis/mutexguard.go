package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The mutexguard pass, restricted to the given import-path prefixes
// (the service packages).
//
// The service layer guards shared state with sync.Mutex by convention,
// but the convention is only as strong as its weakest access site: one
// forgotten Lock is a data race the -race job may never schedule. The
// pass recovers the guarded-by relation from the code itself and holds
// every access to it:
//
//   - a struct field locked under the same mutex at a strict majority
//     of its access sites is inferred to be guarded by it, and every
//     remaining unguarded site is a finding. An explicit
//     "guardedby: mu" field comment pins the relation regardless of
//     majority (and documents it for readers).
//   - Unlock (or RUnlock) on a path where the walker cannot see the
//     matching Lock is a finding, as is Lock while already held (a
//     sync.Mutex self-deadlock).
//   - copying a lock-bearing struct by value — value receiver,
//     dereferencing assignment, or range over a slice of values —
//     duplicates the mutex and silently splits the critical section.
//
// The lock-state walker is flow-aware but intraprocedural and
// method-scoped: it tracks the receiver's own mutex fields through
// branches (merging by intersection, with terminating branches dropped
// from the merge), treats deferred Unlock as held-to-return, and gives
// function literals spawned via go/defer a fresh (empty) lock state
// while literals called inline inherit the current one. Constructors
// and other plain functions are out of scope — a value still local to
// its creating function needs no lock. RLock counts as holding the
// guard (the pass does not separate read from write sites).
type mutexGuardPass struct {
	name  string
	scope []string
}

// NewMutexGuard returns the mutexguard pass over the scope prefixes.
func NewMutexGuard(scope ...string) *Pass {
	mg := &mutexGuardPass{name: "mutexguard", scope: scope}
	return &Pass{
		Name: mg.name,
		Doc:  "every access to a mutex-guarded field holds the lock; no lock copies or unlock-without-lock",
		Run:  mg.run,
	}
}

// mgStruct is one lock-bearing struct under analysis.
type mgStruct struct {
	name    string
	mutexes map[string]bool   // mutex-typed field names
	data    map[string]bool   // guardable field names
	guarded map[string]string // explicit guardedby: annotations
}

// mgSite is one access to a guardable field.
type mgSite struct {
	field string
	pos   token.Position
	held  map[string]bool // mutex fields held at the access
}

func (mg *mutexGuardPass) run(pkg *Package) []Finding {
	if !inScope(pkg.Path, mg.scope) {
		return nil
	}
	structs := mg.collectStructs(pkg)
	var out []Finding
	add := func(pos token.Position, format string, args ...any) {
		out = append(out, Finding{Pass: mg.name, Pos: pos, Message: fmt.Sprintf(format, args...)})
	}

	sites := map[string][]mgSite{} // "Struct.field" -> accesses
	for _, fd := range funcDecls(pkg) {
		mg.checkCopies(pkg, fd, structs, add)
		if fd.Body == nil {
			continue
		}
		si := structs[recvTypeName(fd)]
		if si == nil {
			continue
		}
		recv := recvObject(pkg, fd)
		if recv == nil {
			continue
		}
		w := &mgWalker{pkg: pkg, si: si, recv: recv, add: add}
		w.stmt(fd.Body, map[string]bool{})
		for _, s := range w.sites {
			k := si.name + "." + s.field
			sites[k] = append(sites[k], s)
		}
	}

	// Decide the guard per field and flag the sites that miss it.
	for _, si := range structs {
		for field := range si.data {
			key := si.name + "." + field
			ss := sites[key]
			if len(ss) == 0 {
				continue
			}
			guard, lockedN := si.guarded[field], 0
			if guard == "" {
				guard, lockedN = majorityGuard(ss)
				if guard == "" {
					continue // no inferred relation
				}
			} else {
				for _, s := range ss {
					if s.held[guard] {
						lockedN++
					}
				}
			}
			for _, s := range ss {
				if s.held[guard] {
					continue
				}
				how := "inferred from the other sites"
				if si.guarded[field] != "" {
					how = "declared by its guardedby: comment"
				}
				add(s.pos, "%s is guarded by %s (%s; held at %d of %d access sites) but not here; hold %s.%s across this access",
					key, guard, how, lockedN, len(ss), si.name, guard)
			}
		}
	}
	return out
}

// collectStructs finds the package's lock-bearing struct types and
// their guardedby: annotations.
func (mg *mutexGuardPass) collectStructs(pkg *Package) map[string]*mgStruct {
	out := map[string]*mgStruct{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				si := &mgStruct{
					name:    ts.Name.Name,
					mutexes: map[string]bool{},
					data:    map[string]bool{},
					guarded: map[string]string{},
				}
				for _, field := range st.Fields.List {
					t := pkg.Info.TypeOf(field.Type)
					guard := guardAnnotation(field)
					for _, id := range field.Names {
						switch {
						case isMutexType(t):
							si.mutexes[id.Name] = true
						case isSelfSyncType(t):
							// WaitGroup, Once, atomics: self-synchronized.
						default:
							si.data[id.Name] = true
							if guard != "" {
								si.guarded[id.Name] = guard
							}
						}
					}
				}
				if len(si.mutexes) > 0 {
					out[si.name] = si
				}
			}
		}
	}
	return out
}

// checkCopies flags by-value copies of lock-bearing structs.
func (mg *mutexGuardPass) checkCopies(pkg *Package, fd *ast.FuncDecl, structs map[string]*mgStruct, add func(token.Position, string, ...any)) {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if t := pkg.Info.TypeOf(fd.Recv.List[0].Type); t != nil {
			if _, isPtr := t.(*types.Pointer); !isPtr && lockBearing(t, structs) {
				add(pkg.Pos(fd.Recv.List[0].Type),
					"method %s has a value receiver, copying %s's mutex on every call; use a pointer receiver",
					fd.Name.Name, t)
			}
		}
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if star, ok := rhs.(*ast.StarExpr); ok {
					if t := pkg.Info.TypeOf(star); t != nil && lockBearing(t, structs) {
						add(pkg.Pos(rhs), "dereferencing copy of lock-bearing struct %s duplicates its mutex; keep the pointer", t)
					}
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := pkg.Info.TypeOf(n.Value); t != nil && lockBearing(t, structs) {
					add(pkg.Pos(n.Value), "range copies lock-bearing struct %s by value; range over pointers (or index)", t)
				}
			}
		}
		return true
	})
}

// lockBearing reports whether t is (or points at nothing but) a struct
// type with a direct mutex field — either one declared in this package
// or any struct type carrying a sync.Mutex/sync.RWMutex field.
func lockBearing(t types.Type, structs map[string]*mgStruct) bool {
	if named, ok := t.(*types.Named); ok {
		if structs[named.Obj().Name()] != nil {
			return true
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// guardAnnotation extracts the guard name from a field's
// "guardedby: mu" doc or trailing comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if _, rest, ok := strings.Cut(c.Text, "guardedby:"); ok {
				if fields := strings.Fields(rest); len(fields) > 0 {
					return fields[0]
				}
			}
		}
	}
	return ""
}

// majorityGuard returns the mutex held at a strict majority of the
// sites (and how many hold it), or "" when no mutex reaches one.
func majorityGuard(ss []mgSite) (string, int) {
	counts := map[string]int{}
	for _, s := range ss {
		for g := range s.held {
			counts[g]++
		}
	}
	best, bestN := "", 0
	for g, n := range counts {
		if n > bestN || (n == bestN && g < best) {
			best, bestN = g, n
		}
	}
	if bestN*2 > len(ss) {
		return best, bestN
	}
	return "", 0
}

// isMutexType reports sync.Mutex / sync.RWMutex (by value).
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isSelfSyncType reports types that synchronize themselves (sync.* and
// sync/atomic.*), which mutexguard never treats as guardable data.
func isSelfSyncType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}

// recvObject resolves the receiver variable's object.
func recvObject(pkg *Package, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.Defs[fd.Recv.List[0].Names[0]]
}

// mgWalker tracks the receiver's lock state through one method body.
type mgWalker struct {
	pkg   *Package
	si    *mgStruct
	recv  types.Object
	add   func(token.Position, string, ...any)
	sites []mgSite
}

const (
	mgNoOp = iota
	mgLock
	mgUnlock
)

// stmt walks one statement under the held set, returning the state
// after it and whether the path terminates (return/branch/panic-free
// fallthrough analysis: branches that end a path drop out of merges).
func (w *mgWalker) stmt(n ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	switch n := n.(type) {
	case nil:
		return held, false
	case *ast.BlockStmt:
		term := false
		for _, c := range n.List {
			held, term = w.stmt(c, held)
			if term {
				break
			}
		}
		return held, term
	case *ast.ExprStmt:
		if mu, op := w.lockOp(n.X); op != mgNoOp {
			return w.applyLockOp(n.X, mu, op, held), false
		}
		w.scan(n.X, held, false)
		return held, false
	case *ast.DeferStmt:
		if mu, op := w.lockOp(n.Call); op == mgUnlock {
			if !held[mu] {
				w.add(w.pkg.Pos(n), "deferred %s.Unlock on a path where the lock is not held", mu)
			}
			// The deferred unlock runs at return: the lock stays held
			// for the rest of the body, which is the point of the idiom.
			return held, false
		}
		w.scan(n.Call, held, true)
		return held, false
	case *ast.GoStmt:
		w.scan(n.Call, held, true)
		return held, false
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			w.scan(r, held, false)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.IfStmt:
		held, _ = w.stmt(n.Init, held)
		w.scan(n.Cond, held, false)
		bodyH, bodyT := w.stmt(n.Body, cloneHeld(held))
		elseH, elseT := cloneHeld(held), false
		if n.Else != nil {
			elseH, elseT = w.stmt(n.Else, cloneHeld(held))
		}
		switch {
		case bodyT && elseT:
			return held, true
		case bodyT:
			return elseH, false
		case elseT:
			return bodyH, false
		default:
			return intersectHeld(bodyH, elseH), false
		}
	case *ast.ForStmt:
		held, _ = w.stmt(n.Init, held)
		if n.Cond != nil {
			w.scan(n.Cond, held, false)
		}
		body := cloneHeld(held)
		body, _ = w.stmt(n.Body, body)
		w.stmt(n.Post, body)
		return held, false
	case *ast.RangeStmt:
		w.scan(n.X, held, false)
		w.stmt(n.Body, cloneHeld(held))
		return held, false
	case *ast.SwitchStmt:
		held, _ = w.stmt(n.Init, held)
		if n.Tag != nil {
			w.scan(n.Tag, held, false)
		}
		return w.clauses(n.Body, held, true)
	case *ast.TypeSwitchStmt:
		held, _ = w.stmt(n.Init, held)
		w.stmt(n.Assign, held)
		return w.clauses(n.Body, held, true)
	case *ast.SelectStmt:
		return w.clauses(n.Body, held, false)
	case *ast.LabeledStmt:
		return w.stmt(n.Stmt, held)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			w.scan(e, held, false)
		}
		for _, e := range n.Lhs {
			w.scan(e, held, false)
		}
		return held, false
	default:
		w.scan(n, held, false)
		return held, false
	}
}

// clauses merges a switch/select body: the state after is the
// intersection of every non-terminating clause (plus the entry state
// for a switch that may match nothing — hasZeroPath).
func (w *mgWalker) clauses(body *ast.BlockStmt, held map[string]bool, hasZeroPath bool) (map[string]bool, bool) {
	var exits []map[string]bool
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.scan(e, held, false)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.stmt(c.Comm, cloneHeld(held))
			}
			stmts = c.Body
		}
		h, t := w.stmt(&ast.BlockStmt{List: stmts}, cloneHeld(held))
		if !t {
			exits = append(exits, h)
		}
	}
	if hasZeroPath && !hasDefault {
		exits = append(exits, cloneHeld(held))
	}
	if len(exits) == 0 {
		return held, true
	}
	merged := exits[0]
	for _, e := range exits[1:] {
		merged = intersectHeld(merged, e)
	}
	return merged, false
}

// applyLockOp updates the held set for recv.mu.Lock()/Unlock().
func (w *mgWalker) applyLockOp(at ast.Expr, mu string, op int, held map[string]bool) map[string]bool {
	held = cloneHeld(held)
	if op == mgLock {
		if held[mu] {
			w.add(w.pkg.Pos(at), "%s.Lock while already holding it deadlocks (sync mutexes are not reentrant)", mu)
		}
		held[mu] = true
		return held
	}
	if !held[mu] {
		w.add(w.pkg.Pos(at), "%s.Unlock on a path where the walker sees no matching Lock", mu)
	}
	delete(held, mu)
	return held
}

// lockOp matches recv.<mutexField>.{Lock,RLock,Unlock,RUnlock}().
func (w *mgWalker) lockOp(e ast.Expr) (string, int) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", mgNoOp
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", mgNoOp
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", mgNoOp
	}
	id, ok := inner.X.(*ast.Ident)
	if !ok || w.pkg.Info.Uses[id] != w.recv || !w.si.mutexes[inner.Sel.Name] {
		return "", mgNoOp
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return inner.Sel.Name, mgLock
	case "Unlock", "RUnlock":
		return inner.Sel.Name, mgUnlock
	}
	return "", mgNoOp
}

// scan records receiver-field accesses in an expression (or any
// non-control statement), recursing into inline function literals with
// the current lock state; freshLits gives literals an empty state (go
// and defer run after the spawning statement released or kept locks —
// either way, not necessarily under them).
func (w *mgWalker) scan(n ast.Node, held map[string]bool, freshLits bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			state := cloneHeld(held)
			if freshLits {
				state = map[string]bool{}
			}
			w.stmt(c.Body, state)
			return false
		case *ast.SelectorExpr:
			id, ok := c.X.(*ast.Ident)
			if ok && w.pkg.Info.Uses[id] == w.recv && w.si.data[c.Sel.Name] {
				w.sites = append(w.sites, mgSite{
					field: c.Sel.Name,
					pos:   w.pkg.Pos(c),
					held:  cloneHeld(held),
				})
			}
		}
		return true
	})
}

func cloneHeld(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func intersectHeld(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}
