package analysis

import (
	"os/exec"
	"testing"
)

// TestRepoTreeClean is the gate the Makefile's lint target enforces:
// the real tree must carry zero findings, so every convention the
// passes encode is live, not aspirational.
func TestRepoTreeClean(t *testing.T) {
	mod := loadRepo(t)
	if mod.Path != "ruu" {
		t.Fatalf("module path = %q, want ruu", mod.Path)
	}
	if len(mod.Packages) < 15 {
		t.Fatalf("loaded only %d packages; loader is skipping the tree", len(mod.Packages))
	}
	for _, f := range Check(mod.Packages, DefaultPasses(mod.Path)) {
		t.Errorf("finding on the real tree: %s", f)
	}

	// The engine fingerprint must recognise the real engines — if it
	// stops matching, probeemit silently checks nothing.
	engines := map[string][]string{
		"ruu/internal/core":          {"RUU"},
		"ruu/internal/issue/simple":  {"Engine"},
		"ruu/internal/issue/rstu":    {"Engine"},
		"ruu/internal/issue/tagunit": {"Engine"},
		"ruu/internal/issue/reorder": {"Engine"},
	}
	byPath := map[string]*Package{}
	for _, p := range mod.Packages {
		byPath[p.Path] = p
	}
	for path, want := range engines {
		pkg := byPath[path]
		if pkg == nil {
			t.Errorf("package %s not loaded", path)
			continue
		}
		got := engineTypeNames(pkg)
		if len(got) == 0 {
			t.Errorf("%s: no engine types recognised, want %v", path, want)
			continue
		}
		for _, w := range want {
			found := false
			for _, g := range got {
				if g == w {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: engine types %v missing %s", path, got, w)
			}
		}
	}
}

// TestRuulintCommandExitsZero runs the actual CLI over the real tree.
func TestRuulintCommandExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go run subprocess")
	}
	root := repoRoot(t)
	cmd := exec.Command("go", "run", "./cmd/ruulint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ruulint ./... failed: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Errorf("ruulint ./... produced output on a clean tree:\n%s", out)
	}
}
