package analysis

import "ruu/internal/isa"

// SimPackages lists the simulation packages (relative to the module
// path) whose behaviour must be bit-for-bit reproducible; the
// simdeterminism pass runs over these. internal/sched and
// internal/server are deliberately in scope even though they are the
// module's two goroutine-bearing packages: every goroutine, select, and
// time.Now they contain must carry an individually justified
// //ruulint:ok <pass> marker (no blanket suppression), so any new
// concurrency added there without a written justification is a lint
// failure.
var SimPackages = []string{
	"internal/core",
	"internal/issue",
	"internal/machine",
	"internal/memsys",
	"internal/fu",
	"internal/obs",
	"internal/sched",
	"internal/server",
}

// ServicePackages lists the concurrent service-layer packages
// (relative to the module path): the worker pool, the HTTP API, the
// metrics registry, the serving binary, and the distributed sweep
// fabric (the persistent result store and the consistent-hash
// coordinator). The mutexguard, ctxflow, and goroutineleak passes run
// over these — the layer where a concurrency bug multiplies across
// shards instead of staying a local curiosity. internal/store and
// internal/fabric are deliberately NOT in SimPackages: the store does
// wall-clock-free disk I/O, and the coordinator legitimately uses
// timers, jittered backoff, and health-check tickers — none of which
// can influence simulation results, which stay content-addressed.
var ServicePackages = []string{
	"internal/sched",
	"internal/server",
	"internal/obs",
	"internal/store",
	"internal/fabric",
	"cmd/ruuserve",
}

// NilnessPackages lists the packages (relative to the module path) the
// nilness value-flow pass runs over: the service layer and the command
// binaries, where pointers and errors cross API boundaries. The
// simulation core is excluded by design — its invariants are enforced
// by the engine-specific passes, and its inner loops use nil probes and
// nil tables as deliberate sentinels.
var NilnessPackages = []string{
	"internal/sched",
	"internal/server",
	"internal/obs",
	"cmd",
}

// EnginePackages lists the packages holding issue engines (relative to
// the module path); the probeemit and precisestate passes run over
// these.
var EnginePackages = []string{
	"internal/core",
	"internal/issue",
	"internal/machine",
}

// DefaultPreciseStateAllow is the audited set of architectural-state
// mutator functions, per package (relative to the module path). The
// RUU and the reorder buffer mutate only at commit (the precise
// discipline); the imprecise engines mutate at completion, from the
// result-broadcast and memory-op paths audited here. Extending this
// list is an explicit, reviewed act — see docs/ANALYSIS.md.
var DefaultPreciseStateAllow = map[string][]string{
	// RUU (§5): all architectural writes happen at the head, in commit.
	"internal/core": {"commit"},
	// Reorder buffer variants: likewise commit-only.
	"internal/issue/reorder": {"commit"},
	// Simple in-order issue: registers update at result writeback in
	// BeginCycle; stores write memory at issue (no store buffering).
	"internal/issue/simple": {"BeginCycle", "TryIssue"},
	// RSTU: register writeback in BeginCycle, stores from tryMemOp.
	"internal/issue/rstu": {"BeginCycle", "tryMemOp"},
	// Tomasulo / Tag Unit: register writeback in BeginCycle, stores
	// from tryMemOp.
	"internal/issue/tagunit": {"BeginCycle", "tryMemOp"},
}

// HotPathPackages lists the packages (relative to the module path)
// whose code runs on the machine's per-cycle step; the hotpathalloc
// pass reports allocation sites reachable from the cycle loop here.
var HotPathPackages = []string{
	"internal/core",
	"internal/issue",
	"internal/machine",
	"internal/memsys",
	"internal/fu",
	"internal/exec",
	"internal/dfa",
	"internal/sched",
}

// DefaultHotRoots seed hot-path reachability: the cycle loop of
// (*machine.Machine).Run, and the per-instruction replay loops of the
// dataflow oracle (the oracle walks the same dynamic stream as the
// machine, once per oracle test, so its loop bodies are held to the
// same allocation-freedom bar). LoopOnly keeps the per-run setup above
// each loop cold; everything the loop bodies reach — through the
// issue.Engine interface into every engine, and onward into
// exec/fu/memsys — is hot.
func DefaultHotRoots(modulePath string) []HotRoot {
	return []HotRoot{
		{Pkg: modulePath + "/internal/machine", Recv: "Machine", Func: "Run", LoopOnly: true},
		{Pkg: modulePath + "/internal/dfa", Func: "ComputeBound", LoopOnly: true},
		{Pkg: modulePath + "/internal/dfa", Func: "ComputeCensus", LoopOnly: true},
		// The scheduler's per-job dispatch loop: job bodies allocate
		// freely (they run whole simulations), but the dispatch path
		// itself must not.
		{Pkg: modulePath + "/internal/sched", Recv: "Pool", Func: "worker", LoopOnly: true},
	}
}

// DefaultColdTypes are types whose construction ends or interrupts a
// run; allocating them is off the per-cycle fast path.
var DefaultColdTypes = []string{"Trap", "Fault"}

// DefaultColdFuncs are functions the hot-path traversal treats as
// cold boundaries: wholesale flush/reset runs once per interrupt or
// misprediction recovery, not once per cycle (the same boundary
// probeemit draws).
var DefaultColdFuncs = []string{"Flush", "Reset"}

// DefaultPaperSpec anchors the paperconst pass to
// internal/isa/paperconst.go, the single source of truth for the
// paper's model constants.
func DefaultPaperSpec(modulePath string) PaperSpec {
	return PaperSpec{
		CanonicalPath: modulePath + "/internal/isa",
		Anchors: map[string]PaperAnchor{
			"numa":        {isa.PaperNumA, "isa.PaperNumA"},
			"nums":        {isa.PaperNumS, "isa.PaperNumS"},
			"numb":        {isa.PaperNumB, "isa.PaperNumB"},
			"numt":        {isa.PaperNumT, "isa.PaperNumT"},
			"resultbuses": {isa.PaperResultBuses, "isa.PaperResultBuses"},
			"loadregs":    {isa.PaperLoadRegs, "isa.PaperLoadRegs"},
			"counterbits": {isa.PaperCounterBits, "isa.PaperCounterBits"},
			"commitwidth": {isa.PaperCommitWidth, "isa.PaperCommitWidth"},
			"lataint":     {isa.LatAInt, "isa.LatAInt"},
			"latamul":     {isa.LatAMul, "isa.LatAMul"},
			"latslog":     {isa.LatSLog, "isa.LatSLog"},
			"latsshift":   {isa.LatSShift, "isa.LatSShift"},
			"latsadd":     {isa.LatSAdd, "isa.LatSAdd"},
			"latfadd":     {isa.LatFAdd, "isa.LatFAdd"},
			"latfmul":     {isa.LatFMul, "isa.LatFMul"},
			"latfrecip":   {isa.LatFRecip, "isa.LatFRecip"},
			"latmem":      {isa.LatMem, "isa.LatMem"},
			"latmove":     {isa.LatMove, "isa.LatMove"},
		},
		Sweeps: map[string][]int64{
			"rstusizes": toInt64(isa.PaperRSTUSizes[:]),
			"ruusizes":  toInt64(isa.PaperRUUSizes[:]),
		},
		UnitPrefix: "Unit",
		ScopePkgs: []string{
			modulePath, // tables.go and the public configuration API
			modulePath + "/internal/machine",
			modulePath + "/internal/memsys",
			modulePath + "/internal/fu",
			modulePath + "/internal/core",
		},
		ScopePrefixes: []string{modulePath + "/cmd"},
	}
}

// DefaultPasses returns the repository's pass set wired with the
// default scopes and allowlist, for a module with the given path
// ("ruu").
func DefaultPasses(modulePath string) []*Pass {
	prefix := func(rels []string) []string {
		out := make([]string, len(rels))
		for i, r := range rels {
			out[i] = modulePath + "/" + r
		}
		return out
	}
	allow := Allowlist{}
	for rel, fns := range DefaultPreciseStateAllow {
		allow[modulePath+"/"+rel] = fns
	}
	passes := []*Pass{
		NewSimDeterminism(prefix(SimPackages)...),
		NewProbeEmit(prefix(EnginePackages)...),
		NewPreciseState(allow, prefix(EnginePackages)...),
		NewHotPathAlloc(HotPathConfig{
			Roots:     DefaultHotRoots(modulePath),
			Scope:     prefix(HotPathPackages),
			ColdTypes: DefaultColdTypes,
			ColdFuncs: DefaultColdFuncs,
		}),
		NewExhaustive([]string{modulePath}),
		NewPaperConst(DefaultPaperSpec(modulePath)),
		NewMutexGuard(prefix(ServicePackages)...),
		NewCtxFlow(prefix(ServicePackages)...),
		NewGoroutineLeak(prefix(ServicePackages)...),
		NewHTTPContract(modulePath + "/internal/server"),
		NewNilness(prefix(NilnessPackages)),
		NewPolicyContract(allow, prefix(EnginePackages)...),
	}
	names := make([]string, 0, len(passes)+1)
	for _, p := range passes {
		names = append(names, p.Name)
	}
	names = append(names, "suppression")
	return append(passes, NewSuppressionCheck(names))
}

// toInt64 widens a sweep list for the spec.
func toInt64(xs []int) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = int64(x)
	}
	return out
}
