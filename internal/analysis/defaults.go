package analysis

// SimPackages lists the simulation packages (relative to the module
// path) whose behaviour must be bit-for-bit reproducible; the
// simdeterminism pass runs over these.
var SimPackages = []string{
	"internal/core",
	"internal/issue",
	"internal/machine",
	"internal/memsys",
	"internal/fu",
	"internal/obs",
}

// EnginePackages lists the packages holding issue engines (relative to
// the module path); the probeemit and precisestate passes run over
// these.
var EnginePackages = []string{
	"internal/core",
	"internal/issue",
	"internal/machine",
}

// DefaultPreciseStateAllow is the audited set of architectural-state
// mutator functions, per package (relative to the module path). The
// RUU and the reorder buffer mutate only at commit (the precise
// discipline); the imprecise engines mutate at completion, from the
// result-broadcast and memory-op paths audited here. Extending this
// list is an explicit, reviewed act — see docs/ANALYSIS.md.
var DefaultPreciseStateAllow = map[string][]string{
	// RUU (§5): all architectural writes happen at the head, in commit.
	"internal/core": {"commit"},
	// Reorder buffer variants: likewise commit-only.
	"internal/issue/reorder": {"commit"},
	// Simple in-order issue: registers update at result writeback in
	// BeginCycle; stores write memory at issue (no store buffering).
	"internal/issue/simple": {"BeginCycle", "TryIssue"},
	// RSTU: register writeback in BeginCycle, stores from tryMemOp.
	"internal/issue/rstu": {"BeginCycle", "tryMemOp"},
	// Tomasulo / Tag Unit: register writeback in BeginCycle, stores
	// from tryMemOp.
	"internal/issue/tagunit": {"BeginCycle", "tryMemOp"},
}

// DefaultPasses returns the repository's pass set wired with the
// default scopes and allowlist, for a module with the given path
// ("ruu").
func DefaultPasses(modulePath string) []*Pass {
	prefix := func(rels []string) []string {
		out := make([]string, len(rels))
		for i, r := range rels {
			out[i] = modulePath + "/" + r
		}
		return out
	}
	allow := Allowlist{}
	for rel, fns := range DefaultPreciseStateAllow {
		allow[modulePath+"/"+rel] = fns
	}
	return []*Pass{
		NewSimDeterminism(prefix(SimPackages)...),
		NewProbeEmit(prefix(EnginePackages)...),
		NewPreciseState(allow, prefix(EnginePackages)...),
	}
}
